package aplus

import (
	"fmt"

	"github.com/aplusdb/aplus/internal/advisor"
	"github.com/aplusdb/aplus/internal/query"
)

// Recommendation is a suggested secondary A+ index for a workload.
type Recommendation struct {
	// DDL is the CREATE command that installs the index (pass to Exec).
	DDL string
	// Benefit is the estimated total i-cost reduction across the workload.
	Benefit float64
	// MemBytes is the measured footprint of the candidate.
	MemBytes int64
}

// Advise analyses a workload of queries and recommends secondary indexes,
// in the style of classic "what-if" index advisors (the paper's Section
// IV-D): each candidate is derived from the workload's predicates, built,
// scored by re-optimizing every query, then dropped. budgetBytes limits
// the combined footprint of the selection (0 = unlimited). The database is
// left unchanged: the trial indexes are built and dropped on a private
// rebuilt copy of the store, so published snapshots stay frozen and
// concurrent queries are never disturbed. Advise counts as a write for the
// Query-callback guard (it is heavyweight and order-sensitive).
func (db *DB) Advise(workload []string, budgetBytes int64) ([]Recommendation, error) {
	if err := db.writeGuard(); err != nil {
		return nil, err
	}
	mgr, err := db.ensureManager()
	if err != nil {
		return nil, err
	}
	// Fold pending writes so the advisor sees every committed edge, then
	// rebuild a private store over a private graph clone (index builds
	// cache categorical encodings on the graph, which must not race the
	// published one's readers).
	if err := mgr.Merge(); err != nil {
		return nil, err
	}
	sn := mgr.Acquire()
	defer sn.Release()
	// A writer may have committed between the Merge and the Acquire; fold
	// any pending deletes into the private clone so candidates are sized
	// and scored over exactly the snapshot's live edges.
	g2 := sn.Graph().Clone()
	g2.ApplyTombstones(sn.Delta().DeletedEdges())
	s, err := sn.Store().CloneRebuilt(g2, sn.Store().Primary().Config())
	if err != nil {
		return nil, err
	}
	var qs []*query.Graph
	for _, src := range workload {
		q, err := query.Parse(src)
		if err != nil {
			return nil, fmt.Errorf("aplus: workload query %q: %w", src, err)
		}
		qs = append(qs, q)
	}
	cands, err := advisor.Recommend(s, qs, budgetBytes)
	if err != nil {
		return nil, err
	}
	out := make([]Recommendation, len(cands))
	for i, c := range cands {
		out[i] = Recommendation{DDL: c.DDL, Benefit: c.Benefit, MemBytes: c.MemBytes}
	}
	return out, nil
}
