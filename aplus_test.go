package aplus

import (
	"strings"
	"testing"
)

// buildExampleDB loads the paper's Figure 1 running example through the
// public API.
func buildExampleDB(t *testing.T) *DB {
	t.Helper()
	db := New()
	type acct struct{ acc, city string }
	var accounts []VertexID
	for _, a := range []acct{{"SV", "SF"}, {"CQ", "SF"}, {"SV", "BOS"}, {"CQ", "BOS"}, {"SV", "LA"}} {
		v, err := db.AddVertex("Account", Props{"acc": a.acc, "city": a.city})
		if err != nil {
			t.Fatal(err)
		}
		accounts = append(accounts, v)
	}
	var customers []VertexID
	for _, name := range []string{"Charles", "Alice", "Bob"} {
		v, err := db.AddVertex("Customer", Props{"name": name})
		if err != nil {
			t.Fatal(err)
		}
		customers = append(customers, v)
	}
	for _, o := range [][2]int{{0, 2}, {0, 3}, {1, 0}, {1, 1}, {2, 4}} {
		if _, err := db.AddEdge(customers[o[0]], accounts[o[1]], "O", nil); err != nil {
			t.Fatal(err)
		}
	}
	type tfr struct {
		src, dst  int
		label     string
		amt, date int
		currency  string
	}
	for _, tr := range []tfr{
		{0, 2, "W", 200, 4, "EUR"},
		{0, 1, "W", 25, 17, "EUR"},
		{0, 4, "DD", 30, 18, "EUR"},
		{0, 3, "W", 80, 20, "USD"},
		{1, 2, "DD", 75, 7, "USD"},
		{1, 3, "W", 75, 8, "USD"},
		{1, 4, "DD", 10, 13, "GBP"},
		{4, 2, "W", 5, 19, "GBP"},
	} {
		if _, err := db.AddEdge(accounts[tr.src], accounts[tr.dst], tr.label,
			Props{"amt": tr.amt, "date": tr.date, "currency": tr.currency}); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

func TestPublicAPIQuickstartFlow(t *testing.T) {
	db := buildExampleDB(t)
	n, err := db.Count("MATCH (c:Customer)-[r1:O]->(a1:Account)-[r2:W]->(a2:Account) WHERE c.name = 'Alice'")
	if err != nil {
		t.Fatal(err)
	}
	if n != 4 {
		t.Errorf("count = %d, want 4", n)
	}
	// Reconfigure (Example 4) and requery with a currency predicate.
	if err := db.Exec("RECONFIGURE PRIMARY INDEXES PARTITION BY eadj.label, eadj.currency SORT BY vnbr.city"); err != nil {
		t.Fatal(err)
	}
	n, m, err := db.CountProfiled(
		"MATCH (c:Customer)-[r1:O]->(a1:Account)-[r2:W]->(a2:Account) WHERE c.name = 'Alice', r2.currency = 'EUR'")
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Errorf("EUR count = %d, want 2", n)
	}
	if m.ICost <= 0 {
		t.Error("metrics missing")
	}
}

func TestPublicAPISecondaryIndexes(t *testing.T) {
	db := buildExampleDB(t)
	if err := db.Exec(`CREATE 1-HOP VIEW LargeEUR
		MATCH vs-[eadj]->vd
		WHERE eadj.currency = 'EUR', eadj.amt > 20
		INDEX AS FW-BW PARTITION BY eadj.label`); err != nil {
		t.Fatal(err)
	}
	q := "MATCH a1-[e]->a2 WHERE e.currency = 'EUR', e.amt > 20"
	plan, err := db.Explain(q)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan, "LargeEUR") {
		t.Errorf("plan should use the view:\n%s", plan)
	}
	n, err := db.Count(q)
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 { // t4 (200 EUR), t17-equivalent (25 EUR), t18-equivalent (30 EUR)
		t.Errorf("count = %d, want 3", n)
	}
	if !db.DropIndex("LargeEUR") {
		t.Error("drop failed")
	}
	if n2, _ := db.Count(q); n2 != n {
		t.Error("dropping the index changed results")
	}
}

func TestPublicAPIEdgePartitioned(t *testing.T) {
	db := buildExampleDB(t)
	if err := db.Exec(`CREATE 2-HOP VIEW Flow
		MATCH vs-[eb]->vd-[eadj]->vnbr
		WHERE eb.date < eadj.date, eadj.amt < eb.amt
		INDEX AS PARTITION BY eadj.label SORT BY vnbr.city`); err != nil {
		t.Fatal(err)
	}
	q := "MATCH a1-[e1]->a2-[e2]->a3 WHERE e1.date < e2.date, e2.amt < e1.amt"
	plan, err := db.Explain(q)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan, "Flow") {
		t.Errorf("plan should use the 2-hop view:\n%s", plan)
	}
	if _, err := db.Count(q); err != nil {
		t.Fatal(err)
	}
}

func TestPublicAPIQueryRows(t *testing.T) {
	db := buildExampleDB(t)
	var rows int
	err := db.Query("MATCH (c:Customer)-[r:O]->(a:Account)", func(r Row) bool {
		if _, ok := r.Vertices["c"]; !ok {
			t.Error("missing vertex binding")
		}
		if _, ok := r.Edges["r"]; !ok {
			t.Error("missing edge binding")
		}
		rows++
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if rows != 5 {
		t.Errorf("rows = %d, want 5", rows)
	}
}

func TestPublicAPIInsertAfterQuery(t *testing.T) {
	db := buildExampleDB(t)
	before, err := db.Count("MATCH a-[e:W]->b")
	if err != nil {
		t.Fatal(err)
	}
	// This insert goes through index maintenance.
	if _, err := db.AddEdge(0, 4, "W", Props{"amt": 7, "date": 21}); err != nil {
		t.Fatal(err)
	}
	after, err := db.Count("MATCH a-[e:W]->b")
	if err != nil {
		t.Fatal(err)
	}
	if after != before+1 {
		t.Errorf("count after insert = %d, want %d", after, before+1)
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	if n, _ := db.Count("MATCH a-[e:W]->b"); n != after {
		t.Error("flush changed results")
	}
}

func TestPublicAPIDelete(t *testing.T) {
	db := buildExampleDB(t)
	var wire EdgeID
	found := false
	err := db.Query("MATCH a-[e:W]->b", func(r Row) bool {
		wire = r.Edges["e"]
		found = true
		return false
	})
	if err != nil || !found {
		t.Fatal("no wire edge found")
	}
	before, _ := db.Count("MATCH a-[e:W]->b")
	if err := db.DeleteEdge(wire); err != nil {
		t.Fatal(err)
	}
	after, _ := db.Count("MATCH a-[e:W]->b")
	if after != before-1 {
		t.Errorf("count after delete = %d, want %d", after, before-1)
	}
}

func TestPublicAPIPlannerOptions(t *testing.T) {
	db := buildExampleDB(t)
	q := "MATCH a1-[r1:W]->a2-[r2:W]->a3, a3-[r3:W]->a1"
	nFull, err := db.Count(q)
	if err != nil {
		t.Fatal(err)
	}
	db.Planner = PlannerOptions{BinaryJoinsOnly: true}
	nBinary, err := db.Count(q)
	if err != nil {
		t.Fatal(err)
	}
	if nFull != nBinary {
		t.Errorf("plan space changed results: %d vs %d", nFull, nBinary)
	}
}

func TestGenerate(t *testing.T) {
	db, err := Generate(DatasetConfig{Preset: "berkstan", Scale: 0.2, Financial: true, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	st := db.Stats()
	if st.NumVertices == 0 || st.NumEdges == 0 {
		t.Fatal("empty dataset")
	}
	if _, ok := db.PropertyPercentile("amt", 50); !ok {
		t.Error("percentile missing")
	}
	if _, err := Generate(DatasetConfig{Preset: "nope"}); err == nil {
		t.Error("unknown preset accepted")
	}
	if _, err := Generate(DatasetConfig{}); err == nil {
		t.Error("empty config accepted")
	}
}

func TestStatsBeforeAndAfterIndexes(t *testing.T) {
	db := buildExampleDB(t)
	st := db.Stats()
	if st.PrimaryIDListBytes != 0 {
		t.Error("index stats should be zero before first query")
	}
	if _, err := db.Count("MATCH a-[e]->b"); err != nil {
		t.Fatal(err)
	}
	st = db.Stats()
	if st.PrimaryIDListBytes <= 0 {
		t.Error("index stats missing after first query")
	}
}

func TestPropsAccessors(t *testing.T) {
	db := New()
	v, err := db.AddVertex("X", Props{"a": 1, "b": 2.5, "c": "s", "d": true})
	if err != nil {
		t.Fatal(err)
	}
	if db.VertexProp(v, "a") != int64(1) || db.VertexProp(v, "b") != 2.5 ||
		db.VertexProp(v, "c") != "s" || db.VertexProp(v, "d") != true {
		t.Error("prop round trip broken")
	}
	if db.VertexProp(v, "missing") != nil {
		t.Error("missing prop should be nil")
	}
	if _, err := db.AddVertex("X", Props{"bad": []int{1}}); err == nil {
		t.Error("unsupported type accepted")
	}
}

func TestAdviseEndToEnd(t *testing.T) {
	db, err := Generate(DatasetConfig{Preset: "berkstan", Scale: 0.5, Financial: true, Time: true, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	workload := []string{
		"MATCH a1-[e1]->a2, a1-[e2]->a3 WHERE a2.city = a3.city",
		"MATCH a1-[e1]->a2-[e2]->a3 WHERE e1.date < e2.date, e1.amt > e2.amt, a1.ID < 30",
	}
	recs, err := db.Advise(workload, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) == 0 {
		t.Fatal("no recommendations for an index-friendly workload")
	}
	// The top recommendation's DDL must be installable and must not change
	// results.
	before := make([]int64, len(workload))
	for i, q := range workload {
		n, err := db.Count(q)
		if err != nil {
			t.Fatal(err)
		}
		before[i] = n
	}
	if err := db.Exec(recs[0].DDL); err != nil {
		t.Fatalf("installing %q: %v", recs[0].DDL, err)
	}
	for i, q := range workload {
		n, err := db.Count(q)
		if err != nil {
			t.Fatal(err)
		}
		if n != before[i] {
			t.Errorf("recommendation changed results of %q: %d vs %d", q, n, before[i])
		}
	}
}

func TestBandedPredicateEndToEnd(t *testing.T) {
	db := buildExampleDB(t)
	// Add a 2-path whose amounts differ by more than the tight band: a
	// 200-then-5 chain through the BOS account.
	if _, err := db.AddEdge(2, 4, "DD", Props{"amt": 5, "date": 22}); err != nil {
		t.Fatal(err)
	}
	// amt within a band of another edge's amount.
	n, err := db.Count("MATCH a1-[e1]->a2-[e2]->a3 WHERE e1.amt > e2.amt, e1.amt < e2.amt + 50")
	if err != nil {
		t.Fatal(err)
	}
	wide, err := db.Count("MATCH a1-[e1]->a2-[e2]->a3 WHERE e1.amt > e2.amt, e1.amt < e2.amt + 5000")
	if err != nil {
		t.Fatal(err)
	}
	if n >= wide {
		t.Errorf("tight band (%d) should match fewer than wide band (%d)", n, wide)
	}
	if n == 0 {
		t.Error("band should match something in the example graph")
	}
}
