module github.com/aplusdb/aplus

go 1.22
