package aplus

// Benchmarks regenerating the paper's evaluation artifacts. One benchmark
// per table plus the Section V-F maintenance micro-benchmark; each reports
// the average speedup of the tuned configuration over the default D as a
// custom metric, which is the paper's headline comparison. The underlying
// per-query rows are printed by cmd/aplusbench.
//
// The benchmarks run the scaled datasets at a further reduced factor so a
// full -bench=. pass stays in the minutes range; cmd/aplusbench runs the
// full scaled presets.

import (
	"fmt"
	"math"
	"runtime"
	"testing"

	"github.com/aplusdb/aplus/internal/harness"
)

const benchScale = 0.25

// geoMeanSpeedup returns the geometric-mean runtime speedup of the tuned
// configuration over the base across all (dataset, query) pairs.
func geoMeanSpeedup(rows []harness.Row, base, tuned string) float64 {
	baseline := map[string]float64{}
	for _, r := range rows {
		if r.Config == base {
			baseline[r.Dataset+"/"+r.Query] = r.Seconds
		}
	}
	logSum, n := 0.0, 0
	for _, r := range rows {
		if r.Config != tuned {
			continue
		}
		if b, ok := baseline[r.Dataset+"/"+r.Query]; ok && r.Seconds > 0 && b > 0 {
			logSum += math.Log(b / r.Seconds)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Exp(logSum / float64(n))
}

// BenchmarkTable1Datasets regenerates Table I (dataset statistics).
func BenchmarkTable1Datasets(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := harness.Table1(harness.Options{Scale: benchScale})
		if len(rows) != 4 {
			b.Fatal("expected 4 datasets")
		}
	}
}

// BenchmarkTable2PrimaryReconfig regenerates Table II: SQ1–SQ13 under the
// D, Ds and Dp primary-index configurations.
func BenchmarkTable2PrimaryReconfig(b *testing.B) {
	var rows []harness.Row
	for i := 0; i < b.N; i++ {
		rows = harness.Table2(harness.Options{Scale: benchScale, Verify: true})
	}
	b.ReportMetric(geoMeanSpeedup(rows, "D", "Ds"), "Ds-speedup")
	b.ReportMetric(geoMeanSpeedup(rows, "D", "Dp"), "Dp-speedup")
}

// BenchmarkTable3MagicRecs regenerates Table III: MR1–MR3 under D and
// D+VPt.
func BenchmarkTable3MagicRecs(b *testing.B) {
	var rows []harness.Row
	for i := 0; i < b.N; i++ {
		rows = harness.Table3(harness.Options{Scale: benchScale, Verify: true})
	}
	b.ReportMetric(geoMeanSpeedup(rows, "D", "D+VPt"), "VPt-speedup")
}

// BenchmarkTable4FraudDetection regenerates Table IV: MF1–MF5 under D,
// D+VPc and D+VPc+EPc.
func BenchmarkTable4FraudDetection(b *testing.B) {
	var rows []harness.Row
	for i := 0; i < b.N; i++ {
		rows = harness.Table4(harness.Options{Scale: benchScale, Verify: true})
	}
	b.ReportMetric(geoMeanSpeedup(rows, "D", "D+VPc"), "VPc-speedup")
	b.ReportMetric(geoMeanSpeedup(rows, "D", "D+VPc+EPc"), "EPc-speedup")
}

// BenchmarkTable5Baselines regenerates Table V: GraphflowDB D/Dp versus
// fixed-index binary-join baselines.
func BenchmarkTable5Baselines(b *testing.B) {
	var rows []harness.Row
	for i := 0; i < b.N; i++ {
		rows = harness.Table5(harness.Options{Scale: benchScale, Verify: true})
	}
	b.ReportMetric(geoMeanSpeedup(rows, "TG", "D"), "D-vs-TG")
	b.ReportMetric(geoMeanSpeedup(rows, "N4", "D"), "D-vs-N4")
}

// BenchmarkParallelScaling measures morsel-driven intra-query parallelism
// on multi-hop Table II queries (scaled LiveJournal), reporting the
// geometric-mean speedup of the widest worker pool over 1 worker as a
// custom metric. On a multi-core machine the speedup approaches the core
// count; on one core it stays ~1x, which doubles as a check that the
// parallel path adds no serial regression.
func BenchmarkParallelScaling(b *testing.B) {
	workers := runtime.GOMAXPROCS(0)
	if workers < 4 {
		workers = 4 // exercise a real pool even on small CI machines
	}
	var rows []harness.Row
	for i := 0; i < b.N; i++ {
		rows = harness.ParallelScaling(harness.Options{Scale: benchScale, Verify: true, Workers: workers})
	}
	b.ReportMetric(geoMeanSpeedup(rows, "1w", fmt.Sprintf("%dw", workers)), "speedup-vs-1w")
	b.ReportMetric(float64(workers), "workers")
}

// BenchmarkMaintenance regenerates the Section V-F insert-throughput
// micro-benchmark.
func BenchmarkMaintenance(b *testing.B) {
	var rows []harness.Row
	for i := 0; i < b.N; i++ {
		rows = harness.Maintenance(harness.Options{Scale: 0.2})
	}
	// Report LJ insert rates for the lightest and heaviest configurations.
	for _, r := range rows {
		if r.Dataset == "LJ2,4" && (r.Config == "Ds" || r.Config == "Dps+EPt") {
			b.ReportMetric(float64(r.Count)/r.Seconds, r.Config+"-edges/s")
		}
	}
}

// BenchmarkMixedWorkload runs the snapshot-isolation mixed experiment:
// readers counting over pinned snapshots while a writer commits batches
// and the background merger folds deltas. The custom metrics report read
// tail latency with and without concurrent writes — the snapshot design's
// contract is that the ratio stays small (readers take no lock a writer
// could hold). -benchtime=1x makes this the CI smoke for the mixed path.
func BenchmarkMixedWorkload(b *testing.B) {
	var rows []harness.Row
	for i := 0; i < b.N; i++ {
		rows = harness.Mixed(harness.Options{Scale: benchScale, MixedReads: 50})
	}
	p99 := map[string]float64{}
	for _, r := range rows {
		if r.Query == "p99" {
			if len(r.Config) >= 5 && r.Config[:5] == "mixed" {
				p99["mixed"] = r.Seconds
			} else {
				p99["readonly"] = r.Seconds
			}
		}
	}
	if p99["readonly"] > 0 {
		b.ReportMetric(p99["mixed"]/p99["readonly"], "p99-ratio-mixed-vs-readonly")
	}
}
