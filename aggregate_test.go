package aplus

import (
	"context"
	"errors"
	"testing"
)

// aggTestDB builds a fan-out graph with an integer "x" vertex property,
// leaving every fifth vertex NULL so null handling is part of the contract.
func aggTestDB(t *testing.T) *DB {
	t.Helper()
	db := New()
	const nv = 60
	for i := 0; i < nv; i++ {
		var p Props
		if i%5 != 4 {
			p = Props{"x": i*7%53 - 20}
		}
		if _, err := db.AddVertex("P", p); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < nv; i++ {
		for _, d := range []int{1, 3, 11} {
			if _, err := db.AddEdge(VertexID(i), VertexID((i+d)%nv), "K", nil); err != nil {
				t.Fatal(err)
			}
		}
	}
	return db
}

// TestAggregateMatchesEnumeration pins the public aggregate contract: each
// function agrees exactly with a streamed enumeration that reads the same
// property, at Parallelism 1 and 8 (the parallel path merges per-worker and
// stolen partials), with NULLs excluded from the value but counted in Rows.
func TestAggregateMatchesEnumeration(t *testing.T) {
	db := aggTestDB(t)
	const q = "MATCH a-[e1]->b, b-[e2]->c"
	var rows, sum, min, max, nonNull int64
	if err := db.Query(q, func(r Row) bool {
		rows++
		v, ok := db.VertexProp(r.Vertices["c"], "x").(int64)
		if !ok {
			return true
		}
		if nonNull == 0 || v < min {
			min = v
		}
		if nonNull == 0 || v > max {
			max = v
		}
		sum += v
		nonNull++
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if rows == 0 || nonNull == 0 || nonNull == rows {
		t.Fatalf("degenerate aggregate fixture: rows=%d nonNull=%d", rows, nonNull)
	}
	wants := map[AggFunc]AggValue{
		AggCount: {Rows: rows, Value: rows, Valid: true},
		AggSum:   {Rows: rows, Value: sum, Valid: true},
		AggMin:   {Rows: rows, Value: min, Valid: true},
		AggMax:   {Rows: rows, Value: max, Valid: true},
	}
	for _, workers := range []int{1, 8} {
		db.Parallelism = workers
		for fn, want := range wants {
			got, err := db.Aggregate(q, fn, "c", "x")
			if err != nil {
				t.Fatalf("workers=%d %s: %v", workers, fn, err)
			}
			if got != want {
				t.Errorf("workers=%d %s(c.x) = %+v, want %+v", workers, fn, got, want)
			}
		}
	}
}

// TestAggregateAllNulls pins the Valid flag: aggregating a property no
// vertex carries yields Valid=false with the row count intact.
func TestAggregateAllNulls(t *testing.T) {
	db := aggTestDB(t)
	got, err := db.Aggregate("MATCH a-[e1]->b", AggSum, "b", "missing")
	if err != nil {
		t.Fatal(err)
	}
	if got.Valid || got.Value != 0 || got.Rows == 0 {
		t.Errorf("all-null SUM = %+v, want Valid=false, Value=0, Rows>0", got)
	}
}

// TestAggregateErrors covers the argument contract: unknown function names,
// unknown variables, and a missing property for value aggregates all error;
// COUNT ignores both.
func TestAggregateErrors(t *testing.T) {
	db := aggTestDB(t)
	const q = "MATCH a-[e1]->b"
	if _, err := ParseAggFunc("median"); err == nil {
		t.Error("ParseAggFunc accepted an unknown function")
	}
	if fn, err := ParseAggFunc("SUM"); err != nil || fn != AggSum {
		t.Errorf("ParseAggFunc(SUM) = %v, %v", fn, err)
	}
	if _, err := db.Aggregate(q, AggSum, "z", "x"); err == nil {
		t.Error("aggregate over an unbound variable did not error")
	}
	if _, err := db.Aggregate(q, AggSum, "b", ""); err == nil {
		t.Error("value aggregate without a property did not error")
	}
	if _, err := db.Aggregate(q, AggCount, "", ""); err != nil {
		t.Errorf("COUNT with no variable/property errored: %v", err)
	}
}

// TestAggregateGoverned routes the aggregate through governance: an i-cost
// budget trips with the same sentinel as Count, and a canceled context is
// honored up front.
func TestAggregateGoverned(t *testing.T) {
	db := aggTestDB(t)
	const q = "MATCH a-[e1]->b, b-[e2]->c"
	if _, _, err := db.AggregateLimited(context.Background(), q, AggSum, "c", "x", QueryLimits{MaxICost: 1}); !errors.Is(err, ErrBudgetExceeded) {
		t.Errorf("budget trip err = %v, want ErrBudgetExceeded", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := db.AggregateCtx(ctx, q, AggCount, "", ""); !errors.Is(err, ErrQueryCanceled) {
		t.Errorf("canceled ctx err = %v, want ErrQueryCanceled", err)
	}
	// An ungoverned-equivalent run through the limited path agrees with the
	// plain one, and reports metrics.
	want, err := db.Aggregate(q, AggMax, "c", "x")
	if err != nil {
		t.Fatal(err)
	}
	got, m, err := db.AggregateLimited(context.Background(), q, AggMax, "c", "x", QueryLimits{})
	if err != nil {
		t.Fatal(err)
	}
	if got != want || m.ICost == 0 {
		t.Errorf("limited aggregate = %+v (icost %d), plain %+v", got, m.ICost, want)
	}
}
