package aplus

// Durable databases. Open turns a directory into a crash-safe database:
// every committed batch is appended to a write-ahead log before its
// snapshot is published (a commit is durable if and only if its record is
// fully on disk), background folds additionally serialize the frozen base
// to checkpoint files and truncate the covered WAL prefix, and Open
// recovers by loading the newest valid checkpoint and replaying the WAL
// tail through the ordinary commit path — so the recovered state is
// bit-identical to the last durable commit by construction, with a torn
// final record discarded and corrupt checkpoints quarantined.

import (
	"errors"
	"fmt"
	"time"

	"github.com/aplusdb/aplus/internal/index"
	"github.com/aplusdb/aplus/internal/snap"
	"github.com/aplusdb/aplus/internal/storage"
	"github.com/aplusdb/aplus/internal/vfs"
	"github.com/aplusdb/aplus/internal/wal"
)

// ErrClosed is returned by every read and write entry point after Close.
var ErrClosed = errors.New("aplus: database is closed")

// ErrDegraded is reported (wrapped) by every write after a failed WAL
// fsync has poisoned the log. The database stays up in degraded read-only
// mode — reads keep serving the last published snapshot — but no further
// write can be made durable, so all of them fail fast with this error
// until the process reopens the database and recovers from the durable
// prefix. Match with errors.Is; Stats().Degraded and DegradedCause carry
// the details.
var ErrDegraded = wal.ErrDegraded

// OpenOptions tune a durable database at open time.
type OpenOptions struct {
	// MergeThreshold is the number of pending delta ops after which a
	// commit schedules a background fold — which, for durable databases,
	// is also the checkpoint cadence (0 = the engine default). Unlike the
	// in-memory DB field, it must be fixed at Open, since the durable
	// engine exists from the first write.
	MergeThreshold int
	// NoFsync disables the per-commit and per-checkpoint fsync calls.
	// Writes still reach the OS page cache, so a process crash loses
	// nothing, but a machine crash may. For tests and benchmarks of the
	// non-sync costs.
	NoFsync bool
	// FoldWALBytes bounds the write-ahead log's un-checkpointed tail: when
	// the bytes past the newest checkpoint's coverage reach this size, a
	// commit schedules a fold even before MergeThreshold pending ops
	// accumulate, and the checkpoint that follows re-covers the tail —
	// capping what recovery has to replay (0 = snap.DefaultFoldWALBytes).
	FoldWALBytes int64
	// VFS selects the filesystem the durability stack runs on. nil means
	// the real one (vfs.OS). Tests and the fault-sweep harness pass
	// vfs.NewMem() or a vfs.Faulty wrapper to script crashes and faults.
	VFS vfs.FS
	// RetryBackoff is the initial delay between background retries of a
	// failed fold or checkpoint (0 = snap.DefaultRetryBackoff). Each
	// failure doubles it, capped at 50x, with jitter.
	RetryBackoff time.Duration

	// QueryTimeout is the default per-query deadline (0 = none); see
	// DB.QueryTimeout.
	QueryTimeout time.Duration
	// MaxConcurrentQueries gates concurrent top-level reads (0 = unlimited)
	// under AdmissionPolicy; see DB.MaxConcurrentQueries.
	MaxConcurrentQueries int
	// AdmissionPolicy picks queue-or-reject behavior at the gate.
	AdmissionPolicy AdmissionPolicy
	// SlowQueryThreshold feeds Stats().SlowQueries (0 = disabled).
	SlowQueryThreshold time.Duration
}

// Open opens (creating if necessary) a durable database in dir with
// default options. See OpenOptions.Open.
func Open(dir string) (*DB, error) { return OpenOptions{}.Open(dir) }

// Open opens (creating if necessary) a durable database in dir: it loads
// the newest valid checkpoint — quarantining corrupt ones and falling back
// to the previous — replays the write-ahead-log tail as ordinary commits,
// discards a torn final record, and returns a DB whose every subsequent
// commit is durable before it becomes visible. Close releases the
// directory; the same directory must not be opened by two live DBs at
// once.
func (o OpenOptions) Open(dir string) (*DB, error) {
	eng, rec, err := wal.Open(dir, !o.NoFsync, o.VFS)
	if err != nil {
		return nil, err
	}
	db := &DB{
		eng:                  eng,
		MergeThreshold:       o.MergeThreshold,
		QueryTimeout:         o.QueryTimeout,
		MaxConcurrentQueries: o.MaxConcurrentQueries,
		AdmissionPolicy:      o.AdmissionPolicy,
		SlowQueryThreshold:   o.SlowQueryThreshold,
	}
	var m *snap.Manager
	sopts := snap.Options{
		MergeThreshold: o.MergeThreshold,
		WALAppend:      eng.Append,
		WALTailBytes:   eng.WALTailBytes,
		FoldWALBytes:   o.FoldWALBytes,
		RetryBackoff:   o.RetryBackoff,
		StartSeq:       rec.Seq,
		StartEpoch:     rec.Epoch,
		// Checkpointing: after every successful fold, serialize the fold's
		// delta-free snapshot and truncate the WAL behind it. The engine
		// skips the call until SetReady (no checkpoints of half-replayed
		// state) and records failures for Stats().LastCheckpointError; a
		// returned error makes the merger retry with backoff while the
		// delta overlay keeps serving.
		AfterFold: eng.CheckpointSnapshot,
	}
	if rec.Store != nil {
		db.g = rec.Graph
		m = snap.NewManagerFromStore(rec.Store, rec.Graph, sopts)
	} else {
		db.g = storage.NewGraph()
		m, err = snap.NewManager(db.g, index.DefaultConfig(), sopts)
		if err != nil {
			eng.Close()
			return nil, err
		}
	}
	db.mgr.Store(m)
	// Replay the WAL tail through the ordinary commit path; the engine
	// skips re-appending records it already holds, and every replayed op's
	// assigned entity id is validated against the recorded one.
	replayed, err := wal.Replay(m, rec.Tail)
	db.replayedOps = replayed
	if err != nil {
		m.Close()
		eng.Close()
		return nil, fmt.Errorf("aplus: recovery of %s failed: %w", dir, err)
	}
	eng.SetReady()
	return db, nil
}

// Close flushes nothing (every visible commit is already durable), stops
// the background merger, syncs and closes the write-ahead log, and makes
// every subsequent read or write fail with ErrClosed. It is idempotent.
// For in-memory databases it stops the merger and marks the DB closed.
func (db *DB) Close() error {
	if db.closed.Swap(true) {
		return nil
	}
	if mgr := db.mgr.Load(); mgr != nil {
		mgr.Close()
	}
	if db.eng != nil {
		return db.eng.Close()
	}
	return nil
}
