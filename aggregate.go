package aplus

// Public aggregate API: COUNT/SUM/MIN/MAX over an integer vertex property,
// evaluated with factorized aggregate pushdown (see internal/exec/agg.go).
// Aggregates route through the same machinery as counts — governance,
// admission, the plan cache, morsel parallelism with work stealing, and
// shard fan-out — and their match count and i-cost are bit-identical to
// full enumeration.

import (
	"context"
	"fmt"
	"strings"

	"github.com/aplusdb/aplus/internal/exec"
)

// AggFunc names an aggregate function for DB.Aggregate.
type AggFunc string

const (
	// AggCount counts matches; the variable and property are ignored.
	AggCount AggFunc = "count"
	// AggSum sums an integer vertex property over all matches.
	AggSum AggFunc = "sum"
	// AggMin takes the minimum of an integer vertex property over matches.
	AggMin AggFunc = "min"
	// AggMax takes the maximum of an integer vertex property over matches.
	AggMax AggFunc = "max"
)

// ParseAggFunc resolves a case-insensitive aggregate-function name.
func ParseAggFunc(s string) (AggFunc, error) {
	switch AggFunc(strings.ToLower(strings.TrimSpace(s))) {
	case AggCount:
		return AggCount, nil
	case AggSum:
		return AggSum, nil
	case AggMin:
		return AggMin, nil
	case AggMax:
		return AggMax, nil
	}
	return "", fmt.Errorf("aplus: unknown aggregate function %q (want count, sum, min, or max)", s)
}

// AggValue is an aggregate query's result. Matches whose property is
// missing or non-integer are NULLs: they count toward Rows but contribute
// nothing to Value; Valid reports whether any non-null value was seen
// (always true for AggCount). Aggregates are integer-exact — any
// partitioning of the work across workers, stolen sub-morsels, or shards
// yields a bit-identical AggValue.
type AggValue struct {
	// Rows is the number of matches.
	Rows int64
	// Value is the aggregate (the match count itself for AggCount).
	Value int64
	// Valid reports whether Value is meaningful (some non-null input).
	Valid bool
}

// Merge folds another partition's aggregate (same query, same function)
// into v — exact for every AggFunc: counts and sums add, extrema compare,
// validity ORs. The shard fan-out uses it for the cross-shard merge.
func (v *AggValue) Merge(fn AggFunc, o AggValue) {
	v.Rows += o.Rows
	switch fn {
	case AggCount:
		v.Value += o.Value
		v.Valid = true
	case AggSum:
		v.Value += o.Value
		v.Valid = v.Valid || o.Valid
	case AggMin:
		if o.Valid && (!v.Valid || o.Value < v.Value) {
			v.Value = o.Value
		}
		v.Valid = v.Valid || o.Valid
	case AggMax:
		if o.Valid && (!v.Valid || o.Value > v.Value) {
			v.Value = o.Value
		}
		v.Valid = v.Valid || o.Valid
	}
}

// Aggregate evaluates fn over the matches of cypher: AggCount counts them;
// AggSum/AggMin/AggMax aggregate the integer property prop of the query
// vertex named variable (e.g. Aggregate(q, AggSum, "a2", "amt")). Trailing
// independent fan-outs are folded arithmetically rather than enumerated, so
// aggregates over star-shaped tails cost what a Count does.
func (db *DB) Aggregate(cypher string, fn AggFunc, variable, prop string) (AggValue, error) {
	v, _, err := db.aggregateGoverned(context.Background(), cypher, fn, variable, prop, db.Limits)
	return v, err
}

// AggregateCtx is Aggregate with cancellation (see CountCtx): deadlines,
// cancellation, and database-default budgets apply with latency bounded by
// one morsel of work.
func (db *DB) AggregateCtx(ctx context.Context, cypher string, fn AggFunc, variable, prop string) (AggValue, error) {
	v, _, err := db.aggregateGoverned(ctx, cypher, fn, variable, prop, db.Limits)
	return v, err
}

// AggregateLimited runs an aggregate under explicit per-query limits,
// returning the profiled metrics alongside the value.
func (db *DB) AggregateLimited(ctx context.Context, cypher string, fn AggFunc, variable, prop string, limits QueryLimits) (AggValue, Metrics, error) {
	return db.aggregateGoverned(ctx, cypher, fn, variable, prop, limits)
}

// aggregateGoverned is the governed core of every Aggregate variant,
// mirroring countGoverned.
func (db *DB) aggregateGoverned(ctx context.Context, cypher string, fn AggFunc, variable, prop string, limits QueryLimits) (AggValue, Metrics, error) {
	run, ctx, err := db.beginGoverned(ctx, limits)
	if err != nil {
		return AggValue{}, Metrics{}, err
	}
	defer run.finish()
	run.cypher = cypher
	s, err := db.pin()
	if err != nil {
		return AggValue{}, Metrics{}, err
	}
	defer s.Release()
	plan, rt, err := db.planSnap(s, cypher)
	if err != nil {
		return AggValue{}, Metrics{}, err
	}
	run.plan = plan
	spec, err := aggSpecFor(plan, fn, variable, prop)
	if err != nil {
		return AggValue{}, Metrics{}, err
	}
	rt.Gov = run.gov
	opts := db.parallelOptions()
	opts.InjectWorkerFault = db.injectWorkerFault
	res, err := plan.AggregateParallel(rt, opts, spec)
	run.rows, run.icost = res.Rows, rt.ICost
	m := Metrics{ICost: rt.ICost, PredEvals: rt.PredEvals, EstimatedICost: plan.EstimatedICost}
	if err != nil {
		run.outcome = "panic"
		return AggValue{}, m, db.recordPanic(err)
	}
	if run.gov != nil && run.gov.Stopped() {
		run.outcome = run.gov.Reason().String()
		return AggValue{}, m, db.govError(run.gov, limits, m, res.Rows)
	}
	return aggValueOf(fn, res), m, nil
}

// aggSpecFor resolves the public (function, variable, property) triple to
// an exec spec against the plan's binding slots.
func aggSpecFor(plan *exec.Plan, fn AggFunc, variable, prop string) (exec.AggSpec, error) {
	var kind exec.AggKind
	switch fn {
	case AggCount:
		return exec.AggSpec{Kind: exec.AggCount, Slot: -1}, nil
	case AggSum:
		kind = exec.AggSum
	case AggMin:
		kind = exec.AggMin
	case AggMax:
		kind = exec.AggMax
	default:
		return exec.AggSpec{}, fmt.Errorf("aplus: unknown aggregate function %q", fn)
	}
	if prop == "" {
		return exec.AggSpec{}, fmt.Errorf("aplus: aggregate %s needs a vertex variable and property", fn)
	}
	for i, name := range plan.VertexNames {
		if name == variable {
			return exec.AggSpec{Kind: kind, Slot: i, Prop: prop}, nil
		}
	}
	return exec.AggSpec{}, fmt.Errorf("aplus: aggregate variable %q is not a vertex variable of the query", variable)
}

// aggValueOf projects the exec accumulator onto the requested function.
func aggValueOf(fn AggFunc, r exec.AggResult) AggValue {
	switch fn {
	case AggCount:
		return AggValue{Rows: r.Rows, Value: r.Rows, Valid: true}
	case AggSum:
		return AggValue{Rows: r.Rows, Value: r.Sum, Valid: r.NonNull > 0}
	case AggMin:
		return AggValue{Rows: r.Rows, Value: r.Min, Valid: r.NonNull > 0}
	case AggMax:
		return AggValue{Rows: r.Rows, Value: r.Max, Valid: r.NonNull > 0}
	}
	return AggValue{}
}
