package aplus

// Query governance: deadlines, cancellation, resource budgets, admission
// control, and panic isolation for the read path. Every governed query
// shares one exec.Governor across its worker pool; workers poll it at every
// morsel boundary and every Governor.CheckEvery sink tuples, so
// cancellation latency is bounded by one morsel of work without adding
// allocations (or more than counter arithmetic) to the steady-state loop.
// A context deadline/cancel is relayed into the governor by a watcher
// goroutine that is only spawned when the context is actually cancelable
// and always reaped before the query returns.

import (
	"context"
	"errors"
	"fmt"
	"time"

	"github.com/aplusdb/aplus/internal/exec"
)

// ErrQueryCanceled is reported (wrapped) by a governed query whose context
// was canceled. The query's snapshot is always unpinned and its workers
// fully drained before the error is returned. Match with errors.Is.
var ErrQueryCanceled = errors.New("aplus: query canceled")

// ErrQueryTimeout is reported (wrapped) when a query exceeds its deadline —
// the context's, QueryLimits.MaxDuration, or the database-wide
// OpenOptions.QueryTimeout / DB.QueryTimeout default. Match with errors.Is.
var ErrQueryTimeout = errors.New("aplus: query deadline exceeded")

// ErrBudgetExceeded is reported (wrapped, as a *BudgetError carrying the
// partial metrics) when a query exceeds its i-cost or row budget. Match
// with errors.Is; errors.As against *BudgetError recovers the detail.
var ErrBudgetExceeded = errors.New("aplus: query resource budget exceeded")

// ErrAdmissionRejected is reported (wrapped) when AdmissionPolicy is
// AdmitReject and the query arrives while MaxConcurrentQueries queries are
// already in flight. Match with errors.Is.
var ErrAdmissionRejected = errors.New("aplus: query rejected by admission control")

// ErrQueryPanic is reported (wrapped, as a *QueryPanicError carrying the
// recovered value and stack) when query execution panics inside the
// engine. The panic is confined to the failing query: its workers drain,
// its snapshot is unpinned, and the database remains fully usable. Match
// with errors.Is.
var ErrQueryPanic = errors.New("aplus: query execution panicked")

// QueryLimits are per-query resource budgets; zero fields are unlimited.
type QueryLimits struct {
	// MaxICost bounds the adjacency-list entries the query may read across
	// all of its workers; exceeding it fails the query with a *BudgetError.
	// Enforcement granularity is one governor flush (at most one morsel of
	// work per worker past the budget).
	MaxICost int64
	// MaxRows bounds the matches produced (counted matches for Count,
	// emitted rows for Query), with the same granularity as MaxICost.
	MaxRows int64
	// MaxDuration bounds the query's wall-clock time; exceeding it fails
	// the query with a wrapped ErrQueryTimeout. When zero, the database
	// default (DB.QueryTimeout) applies.
	MaxDuration time.Duration
}

func (l QueryLimits) unlimited() bool { return l == QueryLimits{} }

// AdmissionPolicy says what happens to a query arriving while
// MaxConcurrentQueries queries are already in flight.
type AdmissionPolicy int

const (
	// AdmitQueue (the default) blocks the query until a slot frees or its
	// context is canceled.
	AdmitQueue AdmissionPolicy = iota
	// AdmitReject fails the query fast with a wrapped ErrAdmissionRejected.
	AdmitReject
)

// BudgetError reports which resource budget a query exceeded and the
// profiled metrics it had accumulated by then, so callers can see why.
// errors.Is(err, ErrBudgetExceeded) matches it.
type BudgetError struct {
	// Exceeded is the budget that tripped: "i-cost" or "rows".
	Exceeded string
	// Limits are the budgets the query ran under.
	Limits QueryLimits
	// Partial holds the metrics accumulated up to the abort (the flushed
	// totals of all workers, merged exactly as a successful run would).
	Partial Metrics
	// PartialRows is the number of matches counted/emitted before the abort.
	PartialRows int64
}

// Error implements error.
func (e *BudgetError) Error() string {
	spent, limit := e.Partial.ICost, e.Limits.MaxICost
	if e.Exceeded == "rows" {
		spent, limit = e.PartialRows, e.Limits.MaxRows
	}
	return fmt.Sprintf("%v: %s %d > budget %d", ErrBudgetExceeded, e.Exceeded, spent, limit)
}

// Unwrap makes errors.Is(err, ErrBudgetExceeded) match.
func (e *BudgetError) Unwrap() error { return ErrBudgetExceeded }

// QueryPanicError is an engine panic recovered from a query's worker pool
// (or its serial path), carrying the panicking goroutine's stack.
// errors.Is(err, ErrQueryPanic) matches it.
type QueryPanicError struct {
	// Value is the recovered panic value.
	Value any
	// Stack is the panicking goroutine's stack at recovery time.
	Stack []byte
}

// Error implements error.
func (e *QueryPanicError) Error() string {
	return fmt.Sprintf("%v: %v", ErrQueryPanic, e.Value)
}

// Unwrap makes errors.Is(err, ErrQueryPanic) match.
func (e *QueryPanicError) Unwrap() error { return ErrQueryPanic }

// CountCtx is Count with cancellation: the query observes ctx's cancel and
// deadline (plus the database defaults DB.QueryTimeout and DB.Limits) with
// latency bounded by one morsel of work, returning a wrapped
// ErrQueryCanceled/ErrQueryTimeout with the snapshot unpinned and every
// worker drained.
func (db *DB) CountCtx(ctx context.Context, cypher string) (int64, error) {
	n, _, err := db.CountProfiledCtx(ctx, cypher)
	return n, err
}

// CountProfiledCtx is CountProfiled with cancellation (see CountCtx). On a
// budget or deadline abort the returned Metrics hold the partial totals
// accumulated up to the stop.
func (db *DB) CountProfiledCtx(ctx context.Context, cypher string) (int64, Metrics, error) {
	return db.countGoverned(ctx, cypher, db.Limits)
}

// CountProfiledLimited runs a count under explicit per-query limits,
// overriding the database-wide DB.Limits default.
func (db *DB) CountProfiledLimited(ctx context.Context, cypher string, limits QueryLimits) (int64, Metrics, error) {
	return db.countGoverned(ctx, cypher, limits)
}

// QueryCtx is Query with cancellation (see CountCtx): a canceled or
// timed-out query stops emitting within one morsel, drains its workers,
// unpins its snapshot, and returns the wrapped sentinel.
func (db *DB) QueryCtx(ctx context.Context, cypher string, fn func(Row) bool) error {
	return db.queryGoverned(ctx, cypher, db.Limits, fn)
}

// QueryLimited runs a streaming query under explicit per-query limits,
// overriding the database-wide DB.Limits default.
func (db *DB) QueryLimited(ctx context.Context, cypher string, limits QueryLimits, fn func(Row) bool) error {
	return db.queryGoverned(ctx, cypher, limits, fn)
}

// governedRun carries the per-query governance state from admission to
// teardown.
type governedRun struct {
	db      *DB
	gov     *exec.Governor // nil when the query runs ungoverned
	release func()         // admission slot (nil when ungated)
	cancel  context.CancelFunc
	stopW   func() // context-watcher reaper
	start   time.Time

	// Observability context, filled in as the run progresses so finish()
	// can describe the query when it turns out slow (see noteSlowQuery):
	// the query text and plan, the rows/i-cost accumulated, and how the
	// run ended ("" = ok).
	cypher  string
	plan    *exec.Plan
	rows    int64
	icost   int64
	outcome string
}

// beginGoverned admits the query, applies the deadline, and arms the
// governor and its context watcher. On success the caller must defer
// run.finish(). The returned context carries the effective deadline.
func (db *DB) beginGoverned(ctx context.Context, limits QueryLimits) (*governedRun, context.Context, error) {
	if db.closed.Load() {
		return nil, nil, ErrClosed
	}
	// A context that is already dead never admits or pins anything.
	if err := ctx.Err(); err != nil {
		return nil, nil, db.ctxError(ctx)
	}
	arrived := time.Now()
	release, err := db.admit(ctx)
	if err != nil {
		return nil, nil, err
	}
	db.admissionWait.RecordSince(arrived)
	run := &governedRun{db: db, release: release, start: time.Now()}
	db.queriesInFlight.Add(1)
	timeout := limits.MaxDuration
	if timeout <= 0 {
		timeout = db.QueryTimeout
	}
	if timeout > 0 {
		ctx, run.cancel = context.WithTimeout(ctx, timeout)
	}
	if ctx.Done() != nil || !limits.unlimited() {
		run.gov = &exec.Governor{MaxICost: limits.MaxICost, MaxRows: limits.MaxRows}
		run.stopW = watchContext(ctx, run.gov)
	}
	return run, ctx, nil
}

// finish tears a governed run down: reaps the context watcher, releases the
// deadline timer and the admission slot, maintains the in-flight counter,
// records the query's latency, and captures the slow-query record when the
// run crossed the threshold. It must run on every exit path, including
// panics.
func (run *governedRun) finish() {
	if run.stopW != nil {
		run.stopW()
	}
	if run.cancel != nil {
		run.cancel()
	}
	if run.release != nil {
		run.release()
	}
	run.db.queriesInFlight.Add(-1)
	elapsed := time.Since(run.start)
	run.db.queryLatency.Record(int64(elapsed))
	if t := run.db.SlowQueryThreshold; t > 0 && elapsed >= t {
		run.db.noteSlowQuery(run, elapsed)
	}
}

// watchContext relays ctx's cancellation into the governor from a watcher
// goroutine and returns its reaper. The goroutine exists only while the
// query runs; the reaper must be called (and is idempotent via finish's
// single call site) before the query returns so no goroutine outlives it.
func watchContext(ctx context.Context, gov *exec.Governor) func() {
	if ctx.Done() == nil {
		return nil
	}
	stopped := make(chan struct{})
	go func() {
		select {
		case <-ctx.Done():
			if errors.Is(ctx.Err(), context.DeadlineExceeded) {
				gov.Trip(exec.StopTimeout)
			} else {
				gov.Trip(exec.StopCanceled)
			}
		case <-stopped:
		}
	}()
	return func() { close(stopped) }
}

// admit acquires an admission slot when MaxConcurrentQueries gates the
// database, honoring the queue-or-reject policy. Nested reads issued from
// inside a Query callback bypass the gate: the outer query already holds a
// slot, so blocking here would self-deadlock at MaxConcurrentQueries=1.
func (db *DB) admit(ctx context.Context) (func(), error) {
	max := db.MaxConcurrentQueries
	if max <= 0 {
		return nil, nil
	}
	if db.activeQueries.Load() > 0 {
		if _, ok := db.cbGoroutines.Load(gid()); ok {
			return nil, nil
		}
	}
	gate := db.admissionGate(max)
	select {
	case gate <- struct{}{}:
	default:
		if db.AdmissionPolicy == AdmitReject {
			db.queriesRejected.Add(1)
			return nil, fmt.Errorf("%w (MaxConcurrentQueries=%d)", ErrAdmissionRejected, max)
		}
		select {
		case gate <- struct{}{}:
		case <-ctx.Done():
			return nil, db.ctxError(ctx)
		}
	}
	return func() { <-gate }, nil
}

// admissionGate lazily creates the semaphore channel. Its capacity is fixed
// by the MaxConcurrentQueries value in force at the first gated query;
// change the field only before issuing queries.
func (db *DB) admissionGate(max int) chan struct{} {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.admitCh == nil {
		db.admitCh = make(chan struct{}, max)
	}
	return db.admitCh
}

// ctxError maps a dead context to the matching sentinel and counts it.
func (db *DB) ctxError(ctx context.Context) error {
	if errors.Is(ctx.Err(), context.DeadlineExceeded) {
		db.queriesTimedOut.Add(1)
		return fmt.Errorf("%w: %v", ErrQueryTimeout, ctx.Err())
	}
	db.queriesCanceled.Add(1)
	return fmt.Errorf("%w: %v", ErrQueryCanceled, ctx.Err())
}

// govError maps a tripped governor to the public error, counting it and
// attaching the partial metrics where the contract calls for them.
func (db *DB) govError(gov *exec.Governor, limits QueryLimits, m Metrics, rows int64) error {
	switch gov.Reason() {
	case exec.StopTimeout:
		db.queriesTimedOut.Add(1)
		return fmt.Errorf("%w (partial i-cost %d)", ErrQueryTimeout, m.ICost)
	case exec.StopICost:
		return &BudgetError{Exceeded: "i-cost", Limits: limits, Partial: m, PartialRows: rows}
	case exec.StopRows:
		return &BudgetError{Exceeded: "rows", Limits: limits, Partial: m, PartialRows: rows}
	default: // StopCanceled, or a trip with no recorded reason
		db.queriesCanceled.Add(1)
		return fmt.Errorf("%w (partial i-cost %d)", ErrQueryCanceled, m.ICost)
	}
}

// recordPanic converts an exec-layer panic error into the public
// *QueryPanicError and records it in the governance counters.
func (db *DB) recordPanic(err error) error {
	var pe *exec.PanicError
	if !errors.As(err, &pe) {
		return err
	}
	db.queriesPanicked.Add(1)
	msg := fmt.Sprintf("%v", pe.Value)
	db.lastQueryPanic.Store(&msg)
	return &QueryPanicError{Value: pe.Value, Stack: pe.Stack}
}

// countGoverned is the governed core of every Count variant.
func (db *DB) countGoverned(ctx context.Context, cypher string, limits QueryLimits) (int64, Metrics, error) {
	run, ctx, err := db.beginGoverned(ctx, limits)
	if err != nil {
		return 0, Metrics{}, err
	}
	defer run.finish()
	run.cypher = cypher
	s, err := db.pin()
	if err != nil {
		return 0, Metrics{}, err
	}
	defer s.Release()
	plan, rt, err := db.planSnap(s, cypher)
	if err != nil {
		return 0, Metrics{}, err
	}
	run.plan = plan
	rt.Gov = run.gov
	opts := db.parallelOptions()
	opts.InjectWorkerFault = db.injectWorkerFault
	n, err := plan.CountParallel(rt, opts)
	run.rows, run.icost = n, rt.ICost
	m := Metrics{ICost: rt.ICost, PredEvals: rt.PredEvals, EstimatedICost: plan.EstimatedICost}
	if err != nil {
		run.outcome = "panic"
		return 0, m, db.recordPanic(err)
	}
	if run.gov != nil && run.gov.Stopped() {
		run.outcome = run.gov.Reason().String()
		return 0, m, db.govError(run.gov, limits, m, n)
	}
	return n, m, nil
}

// queryGoverned is the governed core of every streaming Query variant. A
// panic inside the user callback fn (which may run on a worker goroutine)
// is recovered there, drains the pool, and is re-raised on the calling
// goroutine — preserving ordinary Go panic semantics while guaranteeing the
// snapshot pin and admission slot are released during the unwind.
func (db *DB) queryGoverned(ctx context.Context, cypher string, limits QueryLimits, fn func(Row) bool) error {
	run, ctx, err := db.beginGoverned(ctx, limits)
	if err != nil {
		return err
	}
	defer run.finish()
	run.cypher = cypher
	s, err := db.pin()
	if err != nil {
		return err
	}
	defer s.Release()
	plan, rt, err := db.planSnap(s, cypher)
	if err != nil {
		return err
	}
	run.plan = plan
	db.activeQueries.Add(1)
	defer db.activeQueries.Add(-1)
	// Mark the goroutines that may run fn — this one (serial path and
	// non-partitionable fallback) and every pool worker — so writeGuard can
	// reject writes issued from inside the callback.
	unmark := db.markCallbackGoroutine()
	defer unmark()
	opts := db.parallelOptions()
	opts.OnWorkerStart = db.markCallbackGoroutine
	opts.InjectWorkerFault = db.injectWorkerFault
	rt.Gov = run.gov
	g := s.Graph()
	// Calls to the emit wrapper are serialized by ExecuteParallel, so the
	// callback-panic slot needs no lock.
	var cbPanic any
	cbPanicked := false
	err = plan.ExecuteParallel(rt, opts, func(b *exec.Binding) bool {
		row := Row{g: g, Vertices: make(map[string]VertexID), Edges: make(map[string]EdgeID)}
		for i, name := range plan.VertexNames {
			row.Vertices[name] = b.V[i]
		}
		for i, name := range plan.EdgeNames {
			row.Edges[name] = b.E[i]
		}
		ok, pv, panicked := callRow(fn, row)
		if panicked {
			if !cbPanicked {
				cbPanicked, cbPanic = true, pv
			}
			return false
		}
		run.rows++ // serialized with other emit calls
		return ok
	})
	run.icost = rt.ICost
	if cbPanicked {
		// The pool has drained (ExecuteParallel returned); re-raise the
		// user's panic here so it surfaces on the goroutine that called
		// QueryCtx, with the deferred Release/unmark/finish running during
		// the unwind exactly as for any other panic.
		run.outcome = "callback-panic"
		panic(cbPanic)
	}
	if err != nil {
		run.outcome = "panic"
		return db.recordPanic(err)
	}
	if run.gov != nil && run.gov.Stopped() {
		run.outcome = run.gov.Reason().String()
		m := Metrics{ICost: rt.ICost, PredEvals: rt.PredEvals, EstimatedICost: plan.EstimatedICost}
		return db.govError(run.gov, limits, m, run.gov.RowsSeen())
	}
	return nil
}

// callRow invokes the user callback under a recover, reporting a panic
// instead of letting it unwind a worker goroutine (which would kill the
// process).
func callRow(fn func(Row) bool, r Row) (ok bool, pv any, panicked bool) {
	defer func() {
		if rec := recover(); rec != nil {
			ok, pv, panicked = false, rec, true
		}
	}()
	return fn(r), nil, false
}

// governanceStats fills the governance fields of st.
func (db *DB) governanceStats(st *Stats) {
	st.QueriesInFlight = db.queriesInFlight.Load()
	st.QueriesRejected = db.queriesRejected.Load()
	st.QueriesCanceled = db.queriesCanceled.Load()
	st.QueriesTimedOut = db.queriesTimedOut.Load()
	st.SlowQueries = db.slowQueries.Load()
	st.QueriesPanicked = db.queriesPanicked.Load()
	if p := db.lastQueryPanic.Load(); p != nil {
		st.LastQueryPanic = *p
	}
	st.QueryLatency = db.queryLatency.Snapshot()
	st.AdmissionWait = db.admissionWait.Snapshot()
	st.LastSlowQuery = db.lastSlowQuery.Load()
}
