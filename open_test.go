package aplus

import (
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
)

// durableQueries is the reference query set for recovery-parity checks.
var durableQueries = []string{
	"MATCH (a:Account)-[:W]->(b:Account)",
	"MATCH (a:Account)-[:W]->(b:Account)-[:W]->(c:Account)",
	"MATCH (a:Account)-[e:W]->(b:Account) WHERE e.amt > 40",
	"MATCH (a:Account)-[:W]->(b), (a)-[:DD]->(b)",
}

// profile captures CountProfiled results for the reference set.
func profile(t *testing.T, db *DB) [][2]int64 {
	t.Helper()
	out := make([][2]int64, len(durableQueries))
	for i, q := range durableQueries {
		n, m, err := db.CountProfiled(q)
		if err != nil {
			t.Fatalf("query %q: %v", q, err)
		}
		out[i] = [2]int64{n, m.ICost}
	}
	return out
}

func expectProfile(t *testing.T, db *DB, want [][2]int64, what string) {
	t.Helper()
	got := profile(t, db)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s: query %q: (count,icost) = %v, want %v", what, durableQueries[i], got[i], want[i])
		}
	}
}

// commitRandomBatch commits one batch of b ops: ~80% edges between existing
// vertices, ~10% new vertices, ~10% deletes of a random live edge.
func commitRandomBatch(t *testing.T, db *DB, rng *rand.Rand, vertices *[]VertexID, edges *[]EdgeID, nOps int) {
	t.Helper()
	err := db.Batch(func(b *Batch) error {
		for i := 0; i < nOps; i++ {
			switch r := rng.Intn(10); {
			case r == 0 || len(*vertices) < 2:
				v, err := b.AddVertex("Account", Props{"city": []string{"SF", "BOS", "LA"}[rng.Intn(3)]})
				if err != nil {
					return err
				}
				*vertices = append(*vertices, v)
			case r == 1 && len(*edges) > 0:
				if err := b.DeleteEdge((*edges)[rng.Intn(len(*edges))]); err != nil {
					return err
				}
			default:
				src := (*vertices)[rng.Intn(len(*vertices))]
				dst := (*vertices)[rng.Intn(len(*vertices))]
				label := "W"
				if rng.Intn(4) == 0 {
					label = "DD"
				}
				e, err := b.AddEdge(src, dst, label, Props{"amt": rng.Intn(100)})
				if err != nil {
					return err
				}
				*edges = append(*edges, e)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestOpenWriteReopenVerify(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	var vs []VertexID
	var es []EdgeID
	for i := 0; i < 6; i++ {
		commitRandomBatch(t, db, rng, &vs, &es, 25)
	}
	a, err := db.AddVertex("Account", Props{"city": "SF"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.AddEdge(a, vs[0], "W", Props{"amt": 55}); err != nil {
		t.Fatal(err)
	}
	want := profile(t, db)
	wantCity := db.VertexProp(a, "city")
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	expectProfile(t, db2, want, "reopen")
	if got := db2.VertexProp(a, "city"); got != wantCity {
		t.Fatalf("vertex prop after reopen: %v want %v", got, wantCity)
	}
	st := db2.Stats()
	if st.ReplayedOps == 0 {
		t.Fatal("expected WAL replay on reopen (no checkpoint was forced)")
	}
	// The durable database keeps accepting writes after recovery.
	if _, err := db2.AddEdge(a, vs[1], "DD", Props{"amt": 1}); err != nil {
		t.Fatal(err)
	}
}

func TestDurableFlushCheckpointsAndTruncates(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(8))
	var vs []VertexID
	var es []EdgeID
	for i := 0; i < 4; i++ {
		commitRandomBatch(t, db, rng, &vs, &es, 30)
	}
	grown := db.Stats().WALBytes
	if grown == 0 {
		t.Fatal("WAL did not grow")
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	st := db.Stats()
	if st.CheckpointEpoch == 0 {
		t.Fatalf("flush did not checkpoint: %+v", st)
	}
	if st.LastCheckpointError != "" {
		t.Fatalf("checkpoint error: %s", st.LastCheckpointError)
	}
	// The first-ever checkpoint keeps the whole WAL (it is its own only
	// fallback); a second fold truncates the prefix the older checkpoint
	// covers.
	firstEpoch := st.CheckpointEpoch
	commitRandomBatch(t, db, rng, &vs, &es, 30)
	grown = db.Stats().WALBytes
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	st = db.Stats()
	if st.CheckpointEpoch <= firstEpoch {
		t.Fatalf("second flush did not checkpoint: %+v", st)
	}
	if st.WALBytes >= grown {
		t.Fatalf("WAL not truncated: %d -> %d", grown, st.WALBytes)
	}
	want := profile(t, db)
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	// Clean shutdown with a full checkpoint: reopen replays nothing.
	db2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if got := db2.Stats().ReplayedOps; got != 0 {
		t.Fatalf("replayed %d ops after checkpointed shutdown", got)
	}
	expectProfile(t, db2, want, "checkpointed reopen")
}

// TestDurableTornWriteSweep is the recovery-parity acceptance test: a
// randomized workload is committed, the WAL is truncated at every byte
// offset of the final record, and each truncated image must open to a
// state whose CountProfiled results (count AND i-cost) are bit-identical
// to the blessed values of the last fully durable commit — the final batch
// when its record survived whole, the penultimate state otherwise.
func TestDurableTornWriteSweep(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(42))
	var vs []VertexID
	var es []EdgeID
	for i := 0; i < 5; i++ {
		commitRandomBatch(t, db, rng, &vs, &es, 20)
	}
	walPath := filepath.Join(dir, "wal.log")
	sizeBefore := fileSize(t, walPath)
	wantPrev := profile(t, db)
	// The final, possibly-torn batch: small, with a delete and an edge.
	err = db.Batch(func(b *Batch) error {
		if err := b.DeleteEdge(es[3]); err != nil {
			return err
		}
		_, err := b.AddEdge(vs[0], vs[1], "W", Props{"amt": 77})
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	sizeAfter := fileSize(t, walPath)
	wantLast := profile(t, db)
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	full, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(full)) != sizeAfter || sizeAfter <= sizeBefore {
		t.Fatalf("unexpected WAL sizes: %d -> %d (file %d)", sizeBefore, sizeAfter, len(full))
	}

	for cut := sizeBefore; cut <= sizeAfter; cut++ {
		sub := t.TempDir()
		if err := os.WriteFile(filepath.Join(sub, "wal.log"), full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		db2, err := Open(sub)
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		want := wantPrev
		what := "torn tail discarded"
		if cut == sizeAfter {
			want = wantLast
			what = "complete record kept"
		}
		expectProfile(t, db2, want, what)
		// Recovered databases accept further writes.
		if _, err := db2.AddVertex("Account", nil); err != nil {
			t.Fatalf("cut %d: write after recovery: %v", cut, err)
		}
		if err := db2.Close(); err != nil {
			t.Fatalf("cut %d: close: %v", cut, err)
		}
	}
}

// TestKillBetweenCommitAndCheckpoint images the database directory at a
// moment when durable commits sit in the WAL past the newest checkpoint —
// the classic crash window — and verifies the image opens to the blessed
// state by replaying exactly those commits.
func TestKillBetweenCommitAndCheckpoint(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(99))
	var vs []VertexID
	var es []EdgeID
	for i := 0; i < 4; i++ {
		commitRandomBatch(t, db, rng, &vs, &es, 25)
	}
	if err := db.Flush(); err != nil { // fold + checkpoint
		t.Fatal(err)
	}
	if db.Stats().CheckpointEpoch == 0 {
		t.Fatal("no checkpoint after flush")
	}
	// Two commits after the checkpoint: durable in the WAL only.
	commitRandomBatch(t, db, rng, &vs, &es, 15)
	commitRandomBatch(t, db, rng, &vs, &es, 15)
	want := profile(t, db)

	// "Kill": image every file as it is on disk, while the DB is open.
	image := t.TempDir()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, ent := range ents {
		data, err := os.ReadFile(filepath.Join(dir, ent.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(image, ent.Name()), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}

	db2, err := Open(image)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	expectProfile(t, db2, want, "post-kill image")
	if got := db2.Stats().ReplayedOps; got != 30 {
		t.Fatalf("replayed %d ops, want the 30 committed past the checkpoint", got)
	}
	db.Close()
}

func TestDurableDDLSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	var vs []VertexID
	var es []EdgeID
	commitRandomBatch(t, db, rng, &vs, &es, 40)
	ddl := "CREATE 1-HOP VIEW BigW MATCH vs-[eadj]->vd WHERE eadj.amt > 50 INDEX AS FW PARTITION BY eadj.label"
	if err := db.Exec(ddl); err != nil {
		t.Fatal(err)
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	want := profile(t, db)
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	expectProfile(t, db2, want, "reopen with view")
	// The view survived: creating it again must collide.
	if err := db2.Exec(ddl); err == nil {
		t.Fatal("view did not survive reopen")
	}
	if err := db2.Exec("DROP VIEW BigW"); err != nil {
		t.Fatalf("drop after reopen failed: %v", err)
	}
	if err := db2.Exec("DROP VIEW BigW"); err == nil {
		t.Fatal("double drop must error")
	}
}

func TestCloseSemantics(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	v, err := db.AddVertex("V", Props{"x": 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal("second close must be a no-op")
	}
	if _, err := db.Count("MATCH (a:V)"); !errors.Is(err, ErrClosed) {
		t.Fatalf("count after close: %v", err)
	}
	if err := db.Query("MATCH (a:V)", func(Row) bool { return true }); !errors.Is(err, ErrClosed) {
		t.Fatalf("query after close: %v", err)
	}
	if _, err := db.AddVertex("V", nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("write after close: %v", err)
	}
	if err := db.Batch(func(*Batch) error { return nil }); !errors.Is(err, ErrClosed) {
		t.Fatalf("batch after close: %v", err)
	}
	if err := db.Flush(); !errors.Is(err, ErrClosed) {
		t.Fatalf("flush after close: %v", err)
	}
	if err := db.Exec("RECONFIGURE PRIMARY INDEXES PARTITION BY eadj.label"); !errors.Is(err, ErrClosed) {
		t.Fatalf("exec after close: %v", err)
	}
	if got := db.VertexProp(v, "x"); got != nil {
		t.Fatalf("vertex prop after close: %v", got)
	}

	// In-memory databases close too.
	mem := New()
	if _, err := mem.AddVertex("V", nil); err != nil {
		t.Fatal(err)
	}
	if _, err := mem.Count("MATCH (a:V)"); err != nil {
		t.Fatal(err)
	}
	if err := mem.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := mem.Count("MATCH (a:V)"); !errors.Is(err, ErrClosed) {
		t.Fatalf("in-memory count after close: %v", err)
	}
}

// TestDurableConcurrentReadersDuringCheckpoints stresses readers pinning
// snapshots while a writer commits durable batches and the background
// merger folds and checkpoints — run under -race in CI.
func TestDurableConcurrentReadersDuringCheckpoints(t *testing.T) {
	dir := t.TempDir()
	db, err := OpenOptions{MergeThreshold: 64, NoFsync: true}.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	var vs []VertexID
	var es []EdgeID
	commitRandomBatch(t, db, rng, &vs, &es, 50)

	var stop atomic.Bool
	var wg sync.WaitGroup
	errCh := make(chan error, 8)
	for r := 0; r < 6; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				if _, _, err := db.CountProfiled(durableQueries[0]); err != nil {
					errCh <- err
					return
				}
			}
		}()
	}
	for i := 0; i < 30; i++ {
		commitRandomBatch(t, db, rng, &vs, &es, 40)
	}
	stop.Store(true)
	wg.Wait()
	select {
	case err := <-errCh:
		t.Fatal(err)
	default:
	}
	// A background fold may still be in flight; force one synchronously so
	// the checkpoint assertion does not race it.
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	if db.Stats().CheckpointEpoch == 0 {
		t.Fatal("no checkpoint happened under load")
	}
	want := profile(t, db)
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	expectProfile(t, db2, want, "reopen after stress")
}

func fileSize(t *testing.T, path string) int64 {
	t.Helper()
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	return fi.Size()
}
