package aplus

// Observability: per-operator query tracing (EXPLAIN ANALYZE), latency
// histograms, and the slow-query log. Tracing follows the governor pattern —
// an opt-in hook that is a nil pointer when disarmed, so the steady-state
// query path pays one pointer test and zero allocations (pinned by
// TestZeroAllocDisarmedTrace). An armed trace records a span per plan
// operator, merged across workers exactly like the profiled metrics, so the
// span sums are bit-identical to CountProfiled at any worker count.

import (
	"context"
	"fmt"
	"log/slog"
	"strings"
	"time"

	"github.com/aplusdb/aplus/internal/exec"
	"github.com/aplusdb/aplus/internal/obs"
)

// LatencyStats is a merged latency-histogram snapshot: sample count, sum,
// max, and log-bucketed p50/p95/p99 (quantiles carry the histogram's
// factor-of-two resolution). Merge combines snapshots across shards.
type LatencyStats = obs.HistStats

// TraceSpan is one plan operator's exclusive measurements in a QueryTrace:
// what the operator itself did, with its downstream chain's share subtracted
// out, so summing ICost (or PredEvals) over all spans reproduces the query's
// total bit-identically.
type TraceSpan struct {
	// Op is the operator's EXPLAIN rendering ("count sink" for the final
	// fold/emit span).
	Op string `json:"op"`
	// Folded marks operators executed arithmetically by count pushdown
	// rather than tuple-at-a-time.
	Folded bool `json:"folded,omitempty"`
	// Calls is how many times the operator ran: tuples consumed, morsels for
	// the root scan of a parallel run, fetches for a folded operator.
	Calls int64 `json:"calls"`
	// Rows is the number of tuples the operator produced.
	Rows int64 `json:"rows"`
	// ICost and PredEvals are the adjacency entries read and predicates
	// evaluated by this operator alone.
	ICost     int64 `json:"icost"`
	PredEvals int64 `json:"pred_evals"`
	// Nanos is wall time attributed to this operator (approximate — clock
	// resolution and clamping make it advisory, unlike the exact counters).
	Nanos int64 `json:"nanos"`
}

// WorkerTrace is one worker's share of a traced execution.
type WorkerTrace struct {
	// Shard is the owning database's shard index (0 when unsharded).
	Shard int `json:"shard"`
	// Worker is the pool index within its shard.
	Worker int `json:"worker"`
	// Morsels is the number of root-scan morsels the worker processed.
	Morsels int64 `json:"morsels"`
	// Stolen is the number of stolen sub-morsels the worker executed (work
	// another worker re-partitioned off an oversized adjacency list).
	Stolen    int64 `json:"stolen,omitempty"`
	Rows      int64 `json:"rows"`
	ICost     int64 `json:"icost"`
	PredEvals int64 `json:"pred_evals"`
	Nanos     int64 `json:"nanos"`
}

// QueryTrace is the result of an EXPLAIN ANALYZE execution: the real count
// and metrics of a full run plus the per-operator and per-worker split.
// Traces from the shards of a cluster merge with Merge; Render formats the
// tree for humans.
type QueryTrace struct {
	// Query is the traced query text.
	Query string `json:"query"`
	// Count is the number of matches (the same count Count would return).
	Count int64 `json:"count"`
	// Metrics are the merged profiled metrics, bit-identical to
	// CountProfiled on the same snapshot.
	Metrics Metrics `json:"metrics"`
	// Nanos is the execution's wall time (max across shards after Merge,
	// since shards run concurrently).
	Nanos int64 `json:"nanos"`
	// Morsels is the total number of root-scan morsels processed.
	Morsels int64 `json:"morsels"`
	// Stolen is the total number of stolen sub-morsels executed by the work
	// stealer (0 when no oversized adjacency lists were re-partitioned).
	Stolen int64 `json:"stolen,omitempty"`
	// FoldStart is the index of the first operator folded by count pushdown
	// (== the operator count when nothing folded).
	FoldStart int `json:"fold_start"`
	// Spans holds one exclusive span per plan operator plus a final span for
	// the counting sink.
	Spans []TraceSpan `json:"spans"`
	// Workers is the per-worker split, tagged with the owning shard (empty
	// for serial runs).
	Workers []WorkerTrace `json:"workers,omitempty"`
	// Stopped is the governance stop reason when the trace is partial
	// ("timeout", "i-cost budget", ...); empty for a completed run.
	Stopped string `json:"stopped,omitempty"`
}

// Merge folds another shard's trace of the same query into t, tagging its
// worker split with the shard index. Counts, metrics, and span counters sum
// (the sharded invariant: per-shard sums are bit-identical to an unsharded
// run); wall time takes the max, since shards execute concurrently. An
// empty receiver adopts o wholesale.
func (t *QueryTrace) Merge(o *QueryTrace, shard int) {
	if o == nil {
		return
	}
	if len(t.Spans) == 0 {
		*t = *o
		t.Spans = append([]TraceSpan(nil), o.Spans...)
		t.Workers = append([]WorkerTrace(nil), o.Workers...)
		for i := range t.Workers {
			t.Workers[i].Shard = shard
		}
		return
	}
	t.Count += o.Count
	t.Metrics.ICost += o.Metrics.ICost
	t.Metrics.PredEvals += o.Metrics.PredEvals
	t.Morsels += o.Morsels
	t.Stolen += o.Stolen
	if o.Nanos > t.Nanos {
		t.Nanos = o.Nanos
	}
	for i := range t.Spans {
		if i >= len(o.Spans) {
			break
		}
		sp := o.Spans[i]
		t.Spans[i].Calls += sp.Calls
		t.Spans[i].Rows += sp.Rows
		t.Spans[i].ICost += sp.ICost
		t.Spans[i].PredEvals += sp.PredEvals
		t.Spans[i].Nanos += sp.Nanos
	}
	for _, w := range o.Workers {
		w.Shard = shard
		t.Workers = append(t.Workers, w)
	}
	if t.Stopped == "" {
		t.Stopped = o.Stopped
	}
}

// Render formats the trace as an EXPLAIN ANALYZE tree: a header with the
// run's totals, one line per operator with its exclusive metrics and share
// of the total i-cost, and the per-worker split.
func (t *QueryTrace) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "EXPLAIN ANALYZE  count=%d  time=%v  i-cost=%d (est %.1f)  pred-evals=%d  morsels=%d",
		t.Count, time.Duration(t.Nanos).Round(time.Microsecond), t.Metrics.ICost,
		t.Metrics.EstimatedICost, t.Metrics.PredEvals, t.Morsels)
	if t.Stolen > 0 {
		fmt.Fprintf(&b, "  stolen=%d", t.Stolen)
	}
	b.WriteByte('\n')
	if t.Stopped != "" {
		fmt.Fprintf(&b, "  (partial: stopped by %s)\n", t.Stopped)
	}
	for i, sp := range t.Spans {
		label := sp.Op
		switch {
		case i == len(t.Spans)-1:
			label = "Σ " + label
		case sp.Folded:
			label += " [folded]"
		}
		pct := 0.0
		if t.Metrics.ICost > 0 {
			pct = 100 * float64(sp.ICost) / float64(t.Metrics.ICost)
		}
		fmt.Fprintf(&b, "%s%2d. %-40s calls=%-8d rows=%-8d icost=%-8d (%5.1f%%)  preds=%-6d time=%v\n",
			strings.Repeat(" ", i), i+1, label, sp.Calls, sp.Rows, sp.ICost, pct,
			sp.PredEvals, time.Duration(sp.Nanos).Round(time.Microsecond))
	}
	for _, w := range t.Workers {
		fmt.Fprintf(&b, "  worker shard=%d w=%d: morsels=%d", w.Shard, w.Worker, w.Morsels)
		if w.Stolen > 0 {
			fmt.Fprintf(&b, " stolen=%d", w.Stolen)
		}
		fmt.Fprintf(&b, " rows=%d icost=%d preds=%d time=%v\n",
			w.Rows, w.ICost, w.PredEvals,
			time.Duration(w.Nanos).Round(time.Microsecond))
	}
	return b.String()
}

// ExplainAnalyze runs the query for real with per-operator tracing armed and
// returns the span tree: the EXPLAIN ANALYZE counterpart of Explain. The
// count and metrics in the trace are bit-identical to what CountProfiled
// would report on the same snapshot; tracing adds wall-time measurement but
// never changes what the query computes. Governance defaults (DB.Limits,
// DB.QueryTimeout, admission control) apply exactly as in Count.
func (db *DB) ExplainAnalyze(cypher string) (*QueryTrace, error) {
	return db.ExplainAnalyzeLimited(context.Background(), cypher, db.Limits)
}

// ExplainAnalyzeLimited is ExplainAnalyze with a context and explicit
// per-query limits. When governance stops the run (deadline, budget,
// cancellation) the partial trace accumulated up to the stop is returned
// alongside the governance error, with Stopped set to the reason.
func (db *DB) ExplainAnalyzeLimited(ctx context.Context, cypher string, limits QueryLimits) (*QueryTrace, error) {
	run, ctx, err := db.beginGoverned(ctx, limits)
	if err != nil {
		return nil, err
	}
	defer run.finish()
	run.cypher = cypher
	s, err := db.pin()
	if err != nil {
		return nil, err
	}
	defer s.Release()
	plan, rt, err := db.planSnap(s, cypher)
	if err != nil {
		return nil, err
	}
	run.plan = plan
	rt.Gov = run.gov
	rt.Trace = &exec.Trace{}
	opts := db.parallelOptions()
	opts.InjectWorkerFault = db.injectWorkerFault
	t0 := time.Now()
	n, err := plan.CountParallel(rt, opts)
	elapsed := time.Since(t0)
	run.rows, run.icost = n, rt.ICost
	m := Metrics{ICost: rt.ICost, PredEvals: rt.PredEvals, EstimatedICost: plan.EstimatedICost}
	if err != nil {
		run.outcome = "panic"
		return nil, db.recordPanic(err)
	}
	qt := buildQueryTrace(cypher, plan, rt, n, elapsed, db.Shard.Index)
	qt.Metrics = m
	if run.gov != nil && run.gov.Stopped() {
		run.outcome = run.gov.Reason().String()
		qt.Stopped = run.outcome
		return qt, db.govError(run.gov, limits, m, n)
	}
	return qt, nil
}

// buildQueryTrace converts the exec layer's raw trace into the public form.
func buildQueryTrace(cypher string, plan *exec.Plan, rt *exec.Runtime, n int64, elapsed time.Duration, shard int) *QueryTrace {
	qt := &QueryTrace{
		Query: cypher, Count: n,
		Nanos: int64(elapsed), Morsels: rt.Trace.Morsels, Stolen: rt.Trace.Stolen,
		FoldStart: rt.Trace.FoldStart(),
	}
	names := plan.OpNames()
	for i, sp := range rt.Trace.Report() {
		ts := TraceSpan{
			Calls: sp.Calls, Rows: sp.Rows, ICost: sp.ICost,
			PredEvals: sp.PredEvals, Nanos: sp.Nanos,
		}
		if i < len(names) {
			ts.Op = names[i]
			ts.Folded = i >= qt.FoldStart
		} else {
			ts.Op = "count sink"
		}
		qt.Spans = append(qt.Spans, ts)
	}
	for _, w := range rt.Trace.Workers {
		qt.Workers = append(qt.Workers, WorkerTrace{
			Shard: shard, Worker: w.Worker, Morsels: w.Morsels, Stolen: w.Stolen,
			Rows: w.Rows, ICost: w.ICost, PredEvals: w.PredEvals, Nanos: w.Nanos,
		})
	}
	return qt
}

// SlowQuery describes one read that ran at least SlowQueryThreshold: what
// ran, how long and how much it cost, how it ended, and the plan it used.
// The most recent one is surfaced in Stats.LastSlowQuery and, when
// DB.SlowQueryLog is set, logged structurally as it happens.
type SlowQuery struct {
	Query    string        `json:"query"`
	Duration time.Duration `json:"duration"`
	ICost    int64         `json:"icost"`
	Rows     int64         `json:"rows"`
	// Outcome is "ok" for a completed read, a governance stop reason
	// ("timeout", "i-cost budget", ...), or "panic".
	Outcome string `json:"outcome"`
	// Plan is the physical plan's EXPLAIN rendering ("" when planning
	// itself was the slow part).
	Plan string    `json:"plan,omitempty"`
	When time.Time `json:"when"`
}

// noteSlowQuery records a slow read: counts it, publishes it as
// Stats.LastSlowQuery, and emits the structured log record. The plan is
// rendered only here — on the slow path — never per query.
func (db *DB) noteSlowQuery(run *governedRun, elapsed time.Duration) {
	db.slowQueries.Add(1)
	sq := &SlowQuery{
		Query: run.cypher, Duration: elapsed, ICost: run.icost, Rows: run.rows,
		Outcome: run.outcome, When: time.Now(),
	}
	if sq.Outcome == "" {
		sq.Outcome = "ok"
	}
	if run.plan != nil {
		sq.Plan = run.plan.Explain()
	}
	db.lastSlowQuery.Store(sq)
	if lg := db.SlowQueryLog; lg != nil {
		lg.Warn("slow query",
			slog.String("query", sq.Query),
			slog.Duration("duration", sq.Duration),
			slog.Int64("icost", sq.ICost),
			slog.Int64("rows", sq.Rows),
			slog.String("outcome", sq.Outcome),
			slog.String("plan", sq.Plan),
		)
	}
}
