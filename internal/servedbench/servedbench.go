// Package servedbench measures the serving layer end to end: the latency
// of a remote (aplusd wire protocol over TCP loopback) triangle count
// against the same count on an embedded database holding identical data,
// and the compiled-plan cache's cold-vs-warm effect on the served path.
// Before timing anything it asserts parity — the served cluster and the
// embedded reference must agree on counts and summed i-cost, or the
// numbers mean nothing.
//
// Like govbench and the fault sweep, it lives outside internal/harness
// because it drives the public aplus package; its rows are excluded from
// "-exp all" and stored-baseline gating (loopback RTT and scheduler noise
// dominate, so they are advisory).
package servedbench

import (
	"context"
	"fmt"
	"io"
	"sort"
	"time"

	aplus "github.com/aplusdb/aplus"
	"github.com/aplusdb/aplus/internal/client"
	"github.com/aplusdb/aplus/internal/harness"
	"github.com/aplusdb/aplus/internal/server"
	"github.com/aplusdb/aplus/internal/shard"
)

const triangleQ = "MATCH a1-[e1]->a2-[e2]->a3, a3-[e3]->a1"

// servedShards is the cluster size under test: the smallest fan-out that
// exercises cross-shard merge and sibling cancellation.
const servedShards = 2

// Served runs the serving-layer experiment and returns advisory rows.
func Served(o harness.Options) []harness.Row {
	w := io.Writer(io.Discard)
	if o.Out != nil {
		w = o.Out
	}
	scale := o.Scale
	if scale <= 0 {
		scale = 1.0
	}
	n := int(1200 * scale)
	if n < 64 {
		n = 64
	}
	fmt.Fprintf(w, "\n=== Served vs embedded: triangle, %d shards, %d vertices ===\n", servedShards, n)

	ref := aplus.New()
	seedGraph(ref, n)

	cluster, err := shard.New(shard.Options{Shards: servedShards, Parallelism: o.Workers})
	if err != nil {
		panic(err)
	}
	defer cluster.Close()
	seedGraph(cluster, n)

	srv := server.New(cluster, server.Options{Addr: "127.0.0.1:0"})
	if err := srv.Start(); err != nil {
		panic(err)
	}
	defer srv.Close()
	cl, err := client.Dial(srv.Addr())
	if err != nil {
		panic(err)
	}
	defer cl.Close()

	ctx := context.Background()

	// Cold run on the served path: every shard compiles the plan. Timed
	// before the parity check below warms anything.
	coldStart := time.Now()
	servedN, err := cl.Count(ctx, triangleQ)
	if err != nil {
		panic(err)
	}
	cold := time.Since(coldStart)

	// Parity gate: identical data, identical counts and summed metrics.
	wantN, wantM, err := ref.CountProfiledCtx(ctx, triangleQ)
	if err != nil {
		panic(err)
	}
	gotN, gotM, err := cl.CountProfiled(ctx, triangleQ)
	if err != nil {
		panic(err)
	}
	if servedN != wantN || gotN != wantN || gotM.ICost != wantM.ICost {
		panic(fmt.Sprintf("served/embedded parity: served %d (i-cost %d), embedded %d (i-cost %d)",
			gotN, gotM.ICost, wantN, wantM.ICost))
	}

	// Interleave warm reps rep by rep, like the governance overhead bench,
	// so noise hits both distributions alike.
	const reps = 15
	embLat := make([]time.Duration, reps)
	srvLat := make([]time.Duration, reps)
	for i := 0; i < reps; i++ {
		start := time.Now()
		if got, err := ref.CountCtx(ctx, triangleQ); err != nil || got != wantN {
			panic(fmt.Sprintf("embedded rep: n=%d err=%v", got, err))
		}
		embLat[i] = time.Since(start)
		start = time.Now()
		if got, err := cl.Count(ctx, triangleQ); err != nil || got != wantN {
			panic(fmt.Sprintf("served rep: n=%d err=%v", got, err))
		}
		srvLat[i] = time.Since(start)
	}
	emb, srvMin := minOf(embLat), minOf(srvLat)
	fmt.Fprintf(w, "embedded %12v   served %12v   wire+fanout overhead %+.2fx\n",
		emb, srvMin, srvMin.Seconds()/emb.Seconds()-1)

	// Plan-cache effect on the served path: the cold run compiled on every
	// shard; warm runs must be all hits.
	st, err := cl.Stats()
	if err != nil {
		panic(err)
	}
	if st.Aggregate.PlanCacheHits == 0 {
		panic("served warm runs recorded no plan-cache hits")
	}
	fmt.Fprintf(w, "plan cache: cold %12v   warm %12v   speedup %.2fx   (aggregate hits=%d misses=%d)\n",
		cold, srvMin, cold.Seconds()/srvMin.Seconds(),
		st.Aggregate.PlanCacheHits, st.Aggregate.PlanCacheMisses)

	return []harness.Row{
		{Table: "served", Dataset: "ring", Config: "embedded", Query: "triangle", Seconds: emb.Seconds(), Count: wantN, ICost: wantM.ICost},
		{Table: "served", Dataset: "ring", Config: "served", Query: "triangle", Seconds: srvMin.Seconds(), Count: wantN, ICost: gotM.ICost},
		{Table: "served", Dataset: "ring", Config: "plancache-cold", Query: "triangle", Seconds: cold.Seconds(), Count: wantN},
		{Table: "served", Dataset: "ring", Config: "plancache-warm", Query: "triangle", Seconds: srvMin.Seconds(), Count: wantN},
	}
}

type writer interface {
	AddVertex(label string, props aplus.Props) (aplus.VertexID, error)
	AddEdge(src, dst aplus.VertexID, label string, props aplus.Props) (aplus.EdgeID, error)
}

// seedGraph writes the same deterministic ring-with-chords graph through
// any write path (embedded DB or cluster), so replicas and the reference
// hold bit-identical data.
func seedGraph(g writer, n int) {
	for i := 0; i < n; i++ {
		if _, err := g.AddVertex("P", nil); err != nil {
			panic(err)
		}
	}
	for i := 0; i < n; i++ {
		for _, d := range []int{1, 2, 3, 7} {
			if _, err := g.AddEdge(aplus.VertexID(i), aplus.VertexID((i+d)%n), "K", nil); err != nil {
				panic(err)
			}
		}
	}
}

func minOf(ds []time.Duration) time.Duration {
	sorted := append([]time.Duration(nil), ds...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	return sorted[0]
}
