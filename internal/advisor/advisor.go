// Package advisor implements the index-selection helper sketched in
// Section IV-D of the paper: given a workload, it enumerates the space of
// A+ indexes that could serve it — equality predicates on categorical
// properties become partitioning-level candidates, non-equality predicates
// become sorting candidates, inter-edge predicates become 2-hop view
// candidates — and scores each candidate with a "what-if" analysis in the
// style of AutoAdmin: the candidate is built, every workload query is
// re-optimized (not executed), and the improvement in estimated i-cost is
// the candidate's benefit. A greedy pass then picks candidates under a
// space budget.
package advisor

import (
	"fmt"
	"sort"

	"github.com/aplusdb/aplus/internal/index"
	"github.com/aplusdb/aplus/internal/opt"
	"github.com/aplusdb/aplus/internal/pred"
	"github.com/aplusdb/aplus/internal/query"
)

// Candidate is one recommended secondary index.
type Candidate struct {
	// VP or EP holds the definition (exactly one is set).
	VP *index.VPDef
	EP *index.EPDef
	// DDL renders the candidate as the paper's CREATE command.
	DDL string
	// Benefit is the total reduction in estimated i-cost across the
	// workload.
	Benefit float64
	// MemBytes is the measured footprint of the built candidate.
	MemBytes int64
}

// Name returns the candidate's view name.
func (c Candidate) Name() string {
	if c.VP != nil {
		return c.VP.View.Name
	}
	return c.EP.View.Name
}

// Recommend enumerates and scores candidates for the workload and returns
// the greedy selection fitting in budgetBytes (0 = unlimited), ordered by
// benefit. The store is left unchanged: every candidate index is dropped
// after scoring.
func Recommend(s *index.Store, workload []*query.Graph, budgetBytes int64) ([]Candidate, error) {
	base, err := totalCost(s, workload)
	if err != nil {
		return nil, err
	}
	var out []Candidate
	for _, cand := range enumerate(workload) {
		mem, err := build(s, cand)
		if err != nil {
			// Candidates that cannot be built (e.g. property missing from
			// the data) are skipped, not fatal.
			continue
		}
		cost, err := totalCost(s, workload)
		drop(s, cand)
		if err != nil {
			return nil, err
		}
		if benefit := base - cost; benefit > 0 {
			cand.Benefit = benefit
			cand.MemBytes = mem
			out = append(out, cand)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Benefit > out[j].Benefit })
	// Greedy selection under the budget.
	if budgetBytes > 0 {
		var picked []Candidate
		var used int64
		for _, c := range out {
			if used+c.MemBytes <= budgetBytes {
				picked = append(picked, c)
				used += c.MemBytes
			}
		}
		out = picked
	}
	return out, nil
}

func totalCost(s *index.Store, workload []*query.Graph) (float64, error) {
	// Optimization reads index metadata and graph statistics; take the
	// store's read lock so what-if scoring can run alongside writers (the
	// build/drop steps take the write lock internally).
	s.RLock()
	defer s.RUnlock()
	var total float64
	for _, q := range workload {
		plan, err := opt.Optimize(s, q, opt.ModeDefault)
		if err != nil {
			return 0, err
		}
		total += plan.EstimatedICost
	}
	return total, nil
}

func build(s *index.Store, c Candidate) (int64, error) {
	if c.VP != nil {
		v, err := s.CreateVertexPartitioned(*c.VP)
		if err != nil {
			return 0, err
		}
		return v.MemoryBytes(), nil
	}
	e, err := s.CreateEdgePartitioned(*c.EP)
	if err != nil {
		return 0, err
	}
	return e.MemoryBytes(), nil
}

func drop(s *index.Store, c Candidate) {
	s.DropIndex(c.Name())
}

// enumerate derives candidate definitions from the workload's predicates
// (Section IV-D: "enumerating each 1-hop and 2-hop sub-query ... equality
// predicates on categorical properties ... are candidates for partitioning
// levels, and non-equality predicates on other properties ... candidates
// for sorting criterion").
func enumerate(workload []*query.Graph) []Candidate {
	var out []Candidate
	seen := map[string]bool{}
	add := func(c Candidate) {
		if !seen[c.DDL] {
			seen[c.DDL] = true
			out = append(out, c)
		}
	}
	n := 0
	for _, q := range workload {
		for _, p := range q.Preds {
			switch {
			case !p.IsConst() && q.IsVertexVar(p.LeftVar) && q.IsVertexVar(p.RightVar) &&
				p.Op == pred.EQ && p.LeftProp == p.RightProp:
				// vertex-property equality join -> vnbr-sorted VP.
				n++
				add(vpSortedOnNbr(fmt.Sprintf("adv_vp%d", n), p.LeftProp))
			case p.IsConst() && q.IsEdgeVar(p.LeftVar) && p.Op != pred.EQ && p.Op != pred.NE:
				// range predicate on an edge property -> eadj-sorted VP.
				n++
				add(vpSortedOnEdge(fmt.Sprintf("adv_vp%d", n), p.LeftProp))
			case !p.IsConst() && q.IsEdgeVar(p.LeftVar) && q.IsEdgeVar(p.RightVar):
				// inter-edge predicate -> candidate 2-hop view when the two
				// query edges are consecutive (share a vertex head-to-tail).
				if epd := epFromPair(q, p, fmt.Sprintf("adv_ep%d", n+1)); epd != nil {
					n++
					add(*epd)
				}
			}
		}
	}
	return out
}

func vpSortedOnNbr(name, prop string) Candidate {
	def := index.VPDef{
		View: index.View1Hop{Name: name},
		Dirs: []index.Direction{index.FW, index.BW},
		Cfg: index.Config{
			Partitions: index.DefaultConfig().Partitions,
			Sorts:      []index.SortKey{{Var: pred.VarNbr, Prop: prop}},
		},
	}
	return Candidate{
		VP: &def,
		DDL: fmt.Sprintf("CREATE 1-HOP VIEW %s MATCH vs-[eadj]->vd INDEX AS FW-BW PARTITION BY eadj.label SORT BY vnbr.%s",
			name, prop),
	}
}

func vpSortedOnEdge(name, prop string) Candidate {
	def := index.VPDef{
		View: index.View1Hop{Name: name},
		Dirs: []index.Direction{index.FW},
		Cfg: index.Config{
			Partitions: index.DefaultConfig().Partitions,
			Sorts:      []index.SortKey{{Var: pred.VarAdj, Prop: prop}},
		},
	}
	return Candidate{
		VP: &def,
		DDL: fmt.Sprintf("CREATE 1-HOP VIEW %s MATCH vs-[eadj]->vd INDEX AS FW PARTITION BY eadj.label SORT BY eadj.%s",
			name, prop),
	}
}

// epFromPair builds a Destination-FW 2-hop view candidate from an
// inter-edge predicate between consecutive query edges, collecting every
// inter-edge term of the pair so the view predicate matches the workload's
// full Pf conjunction.
func epFromPair(q *query.Graph, p query.Pred, name string) *Candidate {
	li, _ := q.EdgeIndex(p.LeftVar)
	ri, _ := q.EdgeIndex(p.RightVar)
	le, re := q.Edges[li], q.Edges[ri]
	// Orient so eb's destination is eadj's source.
	var eb, eadj query.Edge
	switch {
	case le.Dst == re.Src:
		eb, eadj = le, re
	case re.Dst == le.Src:
		eb, eadj = re, le
	default:
		return nil
	}
	var viewPred pred.Predicate
	for _, t := range q.Preds {
		if t.IsConst() {
			continue
		}
		var term pred.Term
		switch {
		case t.LeftVar == eb.Name && t.RightVar == eadj.Name:
			term = pred.VarTermShift(pred.VarBound, t.LeftProp, t.Op, pred.VarAdj, t.RightProp, t.RightShift)
		case t.LeftVar == eadj.Name && t.RightVar == eb.Name:
			term = pred.VarTermShift(pred.VarAdj, t.LeftProp, t.Op, pred.VarBound, t.RightProp, t.RightShift)
		default:
			continue
		}
		viewPred = viewPred.And(term)
	}
	if viewPred.IsTrue() {
		return nil
	}
	def := index.EPDef{
		View: index.View2Hop{Name: name, Dir: index.DestinationFW, Pred: viewPred},
		Cfg:  index.DefaultConfig(),
	}
	return &Candidate{
		EP:  &def,
		DDL: fmt.Sprintf("CREATE 2-HOP VIEW %s MATCH vs-[eb]->vd-[eadj]->vnbr WHERE %s INDEX AS PARTITION BY eadj.label", name, viewPred),
	}
}
