package advisor

import (
	"strings"
	"testing"

	"github.com/aplusdb/aplus/internal/exec"
	"github.com/aplusdb/aplus/internal/gen"
	"github.com/aplusdb/aplus/internal/index"
	"github.com/aplusdb/aplus/internal/opt"
	"github.com/aplusdb/aplus/internal/query"
)

func testStore(t *testing.T) *index.Store {
	t.Helper()
	cfg := gen.BerkStan
	cfg.NumVertices = 300
	cfg.Financial = true
	cfg.Time = true
	cfg.Seed = 5
	s, err := index.NewStore(gen.Build(cfg), index.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func parseAll(t *testing.T, srcs ...string) []*query.Graph {
	t.Helper()
	var out []*query.Graph
	for _, src := range srcs {
		q, err := query.Parse(src)
		if err != nil {
			t.Fatalf("%s: %v", src, err)
		}
		out = append(out, q)
	}
	return out
}

func TestRecommendCityEquality(t *testing.T) {
	s := testStore(t)
	w := parseAll(t,
		"MATCH a1-[e1]->a2, a1-[e2]->a3 WHERE a2.city = a3.city",
	)
	recs, err := Recommend(s, w, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) == 0 {
		t.Fatal("expected a recommendation for the city-equality workload")
	}
	found := false
	for _, r := range recs {
		if r.VP != nil && len(r.VP.Cfg.Sorts) == 1 && r.VP.Cfg.Sorts[0].Prop == "city" {
			found = true
			if r.Benefit <= 0 || r.MemBytes <= 0 {
				t.Error("benefit/memory not measured")
			}
			if !strings.Contains(r.DDL, "SORT BY vnbr.city") {
				t.Errorf("DDL = %s", r.DDL)
			}
		}
	}
	if !found {
		t.Error("city-sorted VP candidate missing")
	}
	// The store must be left unchanged.
	if len(s.VertexIndexes()) != 0 || len(s.EdgeIndexes()) != 0 {
		t.Error("recommendation run leaked indexes into the store")
	}
}

func TestRecommendTimeRange(t *testing.T) {
	s := testStore(t)
	w := parseAll(t,
		"MATCH a1-[e1]->a2 WHERE e1.time < 50000, a1.ID < 30",
	)
	recs, err := Recommend(s, w, 0)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, r := range recs {
		if r.VP != nil && len(r.VP.Cfg.Sorts) == 1 && r.VP.Cfg.Sorts[0].Prop == "time" {
			found = true
		}
	}
	if !found {
		t.Errorf("time-sorted VP candidate missing; got %d candidates", len(recs))
	}
}

func TestRecommendInterEdgePredicate(t *testing.T) {
	s := testStore(t)
	w := parseAll(t,
		"MATCH a1-[e1]->a2-[e2]->a3 WHERE e1.date < e2.date, e1.amt > e2.amt, a1.ID < 30",
	)
	recs, err := Recommend(s, w, 0)
	if err != nil {
		t.Fatal(err)
	}
	var ep *Candidate
	for i := range recs {
		if recs[i].EP != nil {
			ep = &recs[i]
		}
	}
	if ep == nil {
		t.Fatal("2-hop view candidate missing")
	}
	if ep.EP.View.Dir != index.DestinationFW || len(ep.EP.View.Pred.Terms) != 2 {
		t.Errorf("EP candidate malformed: %+v", ep.EP.View)
	}
	// Applying the top EP recommendation must actually reduce measured
	// i-cost on the workload.
	qg := w[0]
	planBefore, err := opt.Optimize(s, qg, opt.ModeDefault)
	if err != nil {
		t.Fatal(err)
	}
	rtBefore := exec.NewRuntime(s)
	nBefore := planBefore.Count(rtBefore)
	if _, err := s.CreateEdgePartitioned(*ep.EP); err != nil {
		t.Fatal(err)
	}
	planAfter, err := opt.Optimize(s, qg, opt.ModeDefault)
	if err != nil {
		t.Fatal(err)
	}
	rtAfter := exec.NewRuntime(s)
	nAfter := planAfter.Count(rtAfter)
	if nBefore != nAfter {
		t.Fatalf("recommendation changed results: %d vs %d", nBefore, nAfter)
	}
	if rtAfter.ICost >= rtBefore.ICost {
		t.Errorf("recommended index did not reduce i-cost: %d -> %d", rtBefore.ICost, rtAfter.ICost)
	}
}

func TestRecommendBudget(t *testing.T) {
	s := testStore(t)
	w := parseAll(t,
		"MATCH a1-[e1]->a2, a1-[e2]->a3 WHERE a2.city = a3.city",
		"MATCH a1-[e1]->a2 WHERE e1.time < 50000, a1.ID < 30",
	)
	all, err := Recommend(s, w, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) < 2 {
		t.Skip("not enough candidates to exercise the budget")
	}
	budget := all[0].MemBytes // room for exactly the best one
	picked, err := Recommend(s, w, budget)
	if err != nil {
		t.Fatal(err)
	}
	var used int64
	for _, r := range picked {
		used += r.MemBytes
	}
	if used > budget {
		t.Errorf("budget exceeded: %d > %d", used, budget)
	}
	if len(picked) == 0 {
		t.Error("budget fitting the best candidate selected nothing")
	}
}

func TestRecommendNoOpportunities(t *testing.T) {
	s := testStore(t)
	w := parseAll(t, "MATCH a1-[e1]->a2")
	recs, err := Recommend(s, w, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Errorf("plain scan workload should yield no candidates, got %d", len(recs))
	}
}
