package storage

import "fmt"

// Example labels and property names used by the paper's running example
// (Figure 1): a financial graph of Customer and Account vertices, Owns
// edges, and Wire / Dir-Deposit transfer edges carrying amount, currency and
// date properties.
const (
	LabelAccount  = "Account"
	LabelCustomer = "Customer"
	LabelOwns     = "O"
	LabelWire     = "W"
	LabelDeposit  = "DD"

	PropAcc      = "acc"
	PropCity     = "city"
	PropName     = "name"
	PropAmount   = "amt"
	PropCurrency = "currency"
	PropDate     = "date"
)

// ExampleGraph reconstructs the running example of the paper (Figure 1).
//
// The paper's figure does not list every edge endpoint; the topology below
// satisfies every fact the text states explicitly:
//
//   - t13 is a Dir-Deposit from v2 to v5 (Example 7);
//   - v2's incoming transfers are {t5, t6, t15, t17} and its outgoing
//     transfers are {t7, t8, t13} (Section III-B2, "Redundant" discussion);
//   - v5 has nine outgoing transfers, so a vertex-partitioned scan after
//     matching t13 touches 9 edges (Example 7);
//   - the MoneyFlow view (eb.date < eadj.date, eb.amt > eadj.amt,
//     Destination-FW) stores exactly {t19} for t13 (Example 7);
//   - t17 appears in the MoneyFlow lists of both t1 and t16 (Section
//     III-B2's multiple-membership observation);
//   - v1's forward edges are t4, t17, t18, t20 reaching v3, v2, v5, v4
//     (Figure 3a);
//   - ti.date < tj.date iff i < j (dates are the transfer's index).
//
// Vertices v1..v5 are Accounts (IDs 0..4) and v6..v8 are the Customers
// Charles, Alice, Bob (IDs 5..7). Transfer ti has EdgeID i-1; Owns edges
// follow the transfers.
func ExampleGraph() *Graph {
	g := NewGraph()

	type vtx struct {
		acc, city string
	}
	accounts := []vtx{
		{"SV", "SF"},  // v1
		{"CQ", "SF"},  // v2
		{"SV", "BOS"}, // v3
		{"CQ", "BOS"}, // v4
		{"SV", "LA"},  // v5
	}
	for _, a := range accounts {
		v := g.AddVertex(LabelAccount)
		must(g.SetVertexProp(v, PropAcc, Str(a.acc)))
		must(g.SetVertexProp(v, PropCity, Str(a.city)))
	}
	for _, name := range []string{"Charles", "Alice", "Bob"} {
		v := g.AddVertex(LabelCustomer)
		must(g.SetVertexProp(v, PropName, Str(name)))
	}

	type tfr struct {
		src, dst VertexID // 0-based account IDs
		label    string
		amt      int64
		currency string
	}
	// Transfer ti is transfers[i-1]; date = i.
	transfers := []tfr{
		{4, 0, LabelDeposit, 40, "$"},  // t1
		{4, 3, LabelDeposit, 20, "£"},  // t2
		{4, 0, LabelDeposit, 200, "$"}, // t3
		{0, 2, LabelWire, 200, "€"},    // t4
		{2, 1, LabelWire, 50, "$"},     // t5
		{3, 1, LabelDeposit, 70, "$"},  // t6
		{1, 2, LabelDeposit, 75, "$"},  // t7
		{1, 3, LabelWire, 75, "$"},     // t8
		{4, 2, LabelWire, 75, "$"},     // t9
		{4, 3, LabelDeposit, 80, "$"},  // t10
		{4, 3, LabelWire, 5, "€"},      // t11
		{2, 3, LabelDeposit, 50, "$"},  // t12
		{1, 4, LabelDeposit, 10, "£"},  // t13
		{4, 0, LabelWire, 10, "$"},     // t14
		{4, 1, LabelDeposit, 25, "$"},  // t15
		{3, 0, LabelDeposit, 195, "$"}, // t16
		{0, 1, LabelWire, 25, "€"},     // t17
		{0, 4, LabelDeposit, 30, "€"},  // t18
		{4, 2, LabelWire, 5, "£"},      // t19
		{0, 3, LabelWire, 80, "$"},     // t20
	}
	for i, t := range transfers {
		e, err := g.AddEdge(t.src, t.dst, t.label)
		must(err)
		must(g.SetEdgeProp(e, PropAmount, Int(t.amt)))
		must(g.SetEdgeProp(e, PropCurrency, Str(t.currency)))
		must(g.SetEdgeProp(e, PropDate, Int(int64(i+1))))
	}

	// Owns edges: Charles owns v3, v4; Alice owns v1, v2; Bob owns v5.
	owns := [][2]VertexID{{5, 2}, {5, 3}, {6, 0}, {6, 1}, {7, 4}}
	for _, o := range owns {
		if _, err := g.AddEdge(o[0], o[1], LabelOwns); err != nil {
			must(err)
		}
	}
	return g
}

// Transfer returns the EdgeID of transfer ti in the example graph.
func Transfer(i int) EdgeID {
	if i < 1 || i > 20 {
		panic(fmt.Sprintf("storage: no transfer t%d in the running example", i))
	}
	return EdgeID(i - 1)
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}
