package storage

import (
	"sort"
	"testing"
	"testing/quick"
)

func TestDictRoundTrip(t *testing.T) {
	d := NewDict()
	a := d.Code("alpha")
	b := d.Code("beta")
	if a == b {
		t.Fatal("distinct strings share a code")
	}
	if d.Code("alpha") != a {
		t.Error("re-interning changed the code")
	}
	if d.String(a) != "alpha" || d.String(b) != "beta" {
		t.Error("decode mismatch")
	}
	if d.Len() != 2 {
		t.Errorf("Len = %d, want 2", d.Len())
	}
	if _, ok := d.Lookup("gamma"); ok {
		t.Error("Lookup found an uninterned string")
	}
}

func TestDictRankMatchesLexOrder(t *testing.T) {
	f := func(words []string) bool {
		d := NewDict()
		for _, w := range words {
			d.Code(w)
		}
		// Ranks must order codes identically to the strings.
		codes := make([]uint32, d.Len())
		for i := range codes {
			codes[i] = uint32(i)
		}
		byRank := append([]uint32(nil), codes...)
		sort.Slice(byRank, func(i, j int) bool { return d.Rank(byRank[i]) < d.Rank(byRank[j]) })
		for i := 1; i < len(byRank); i++ {
			if d.String(byRank[i-1]) > d.String(byRank[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestDictRankInvalidatedOnInsert(t *testing.T) {
	d := NewDict()
	z := d.Code("z")
	if d.Rank(z) != 0 {
		t.Fatal("single entry should have rank 0")
	}
	a := d.Code("a")
	if d.Rank(a) != 0 || d.Rank(z) != 1 {
		t.Error("ranks not recomputed after insert")
	}
}
