package storage

import "sort"

// Dict is an insertion-ordered string dictionary. Codes are dense uint32s in
// insertion order; Rank provides the lexicographic rank of each code so that
// dictionary-coded columns can be sorted without touching the strings.
type Dict struct {
	codes map[string]uint32
	strs  []string
	ranks []uint32 // lazily computed; invalidated on insert
}

// NewDict returns an empty dictionary.
func NewDict() *Dict {
	return &Dict{codes: make(map[string]uint32)}
}

// Code interns s and returns its code.
func (d *Dict) Code(s string) uint32 {
	if c, ok := d.codes[s]; ok {
		return c
	}
	c := uint32(len(d.strs))
	d.codes[s] = c
	d.strs = append(d.strs, s)
	d.ranks = nil
	return c
}

// Lookup returns the code for s if it has been interned.
func (d *Dict) Lookup(s string) (uint32, bool) {
	c, ok := d.codes[s]
	return c, ok
}

// String returns the string for code c.
func (d *Dict) String(c uint32) string { return d.strs[c] }

// Len returns the number of distinct strings interned.
func (d *Dict) Len() int { return len(d.strs) }

// Rank returns the lexicographic rank of code c among all interned strings.
// Sorting by Rank is equivalent to sorting by the decoded strings.
func (d *Dict) Rank(c uint32) uint32 {
	if d.ranks == nil {
		d.computeRanks()
	}
	return d.ranks[c]
}

func (d *Dict) computeRanks() {
	order := make([]uint32, len(d.strs))
	for i := range order {
		order[i] = uint32(i)
	}
	sort.Slice(order, func(i, j int) bool { return d.strs[order[i]] < d.strs[order[j]] })
	d.ranks = make([]uint32, len(d.strs))
	for rank, code := range order {
		d.ranks[code] = uint32(rank)
	}
}
