package storage

import (
	"sort"
	"sync/atomic"
)

// Dict is an insertion-ordered string dictionary. Codes are dense uint32s in
// insertion order; Rank provides the lexicographic rank of each code so that
// dictionary-coded columns can be sorted without touching the strings.
//
// Inserts (Code) must be externally serialized against each other and
// against readers, as for the rest of the storage layer. Read-side methods
// — including the lazily materialized Rank — are safe to call from
// concurrent query workers.
type Dict struct {
	codes map[string]uint32
	strs  []string
	// ranks is computed lazily on first Rank call and invalidated on
	// insert. It is an atomic pointer so that concurrent readers racing to
	// materialize it are safe: each computes an identical table and the
	// last store wins.
	ranks atomic.Pointer[[]uint32]
}

// NewDict returns an empty dictionary.
func NewDict() *Dict {
	return &Dict{codes: make(map[string]uint32)}
}

// Code interns s and returns its code.
func (d *Dict) Code(s string) uint32 {
	if c, ok := d.codes[s]; ok {
		return c
	}
	c := uint32(len(d.strs))
	d.codes[s] = c
	d.strs = append(d.strs, s)
	d.ranks.Store(nil)
	return c
}

// Clone returns a copy-on-write duplicate for the snapshot write path: the
// code map is copied (inserts mutate it in place), the string array is
// shared (a serialized writer only appends past the parent's length), and
// any materialized rank table carries over. The parent must never be
// mutated again through the clone.
func (d *Dict) Clone() *Dict {
	nd := &Dict{codes: make(map[string]uint32, len(d.codes)), strs: d.strs}
	for k, v := range d.codes {
		nd.codes[k] = v
	}
	if r := d.ranks.Load(); r != nil {
		nd.ranks.Store(r)
	}
	return nd
}

// Lookup returns the code for s if it has been interned.
func (d *Dict) Lookup(s string) (uint32, bool) {
	c, ok := d.codes[s]
	return c, ok
}

// String returns the string for code c.
func (d *Dict) String(c uint32) string { return d.strs[c] }

// Len returns the number of distinct strings interned.
func (d *Dict) Len() int { return len(d.strs) }

// Rank returns the lexicographic rank of code c among all interned strings.
// Sorting by Rank is equivalent to sorting by the decoded strings.
func (d *Dict) Rank(c uint32) uint32 {
	if r := d.ranks.Load(); r != nil {
		return (*r)[c]
	}
	ranks := d.computeRanks()
	d.ranks.Store(&ranks)
	return ranks[c]
}

func (d *Dict) computeRanks() []uint32 {
	order := make([]uint32, len(d.strs))
	for i := range order {
		order[i] = uint32(i)
	}
	sort.Slice(order, func(i, j int) bool { return d.strs[order[i]] < d.strs[order[j]] })
	ranks := make([]uint32, len(d.strs))
	for rank, code := range order {
		ranks[code] = uint32(rank)
	}
	return ranks
}
