package storage

import "fmt"

// Catalog maps human-readable label and property names to the small integer
// identifiers used throughout the engine. Label 0 is reserved for "no label".
type Catalog struct {
	vertexLabels *Dict
	edgeLabels   *Dict
}

// NewCatalog returns a catalog with the reserved empty label interned as 0.
func NewCatalog() *Catalog {
	c := &Catalog{vertexLabels: NewDict(), edgeLabels: NewDict()}
	c.vertexLabels.Code("") // LabelID 0
	c.edgeLabels.Code("")
	return c
}

// Clone returns a copy-on-write duplicate for the snapshot write path:
// interning a new label mutates the dictionaries, so a batch clone gets
// private ones (label sets are small, so the copy is cheap).
func (c *Catalog) Clone() *Catalog {
	return &Catalog{vertexLabels: c.vertexLabels.Clone(), edgeLabels: c.edgeLabels.Clone()}
}

// VertexLabel interns a vertex label name.
func (c *Catalog) VertexLabel(name string) LabelID {
	return LabelID(c.vertexLabels.Code(name))
}

// EdgeLabel interns an edge label name.
func (c *Catalog) EdgeLabel(name string) LabelID {
	return LabelID(c.edgeLabels.Code(name))
}

// LookupVertexLabel resolves a vertex label name without interning.
func (c *Catalog) LookupVertexLabel(name string) (LabelID, bool) {
	id, ok := c.vertexLabels.Lookup(name)
	return LabelID(id), ok
}

// LookupEdgeLabel resolves an edge label name without interning.
func (c *Catalog) LookupEdgeLabel(name string) (LabelID, bool) {
	id, ok := c.edgeLabels.Lookup(name)
	return LabelID(id), ok
}

// VertexLabelName returns the name of a vertex label.
func (c *Catalog) VertexLabelName(id LabelID) string { return c.vertexLabels.String(uint32(id)) }

// EdgeLabelName returns the name of an edge label.
func (c *Catalog) EdgeLabelName(id LabelID) string { return c.edgeLabels.String(uint32(id)) }

// NumVertexLabels returns the number of interned vertex labels including the
// reserved empty label.
func (c *Catalog) NumVertexLabels() int { return c.vertexLabels.Len() }

// NumEdgeLabels returns the number of interned edge labels including the
// reserved empty label.
func (c *Catalog) NumEdgeLabels() int { return c.edgeLabels.Len() }

// String implements fmt.Stringer.
func (c *Catalog) String() string {
	return fmt.Sprintf("catalog{vertexLabels=%d edgeLabels=%d}", c.NumVertexLabels(), c.NumEdgeLabels())
}
