package storage

import (
	"fmt"
	"sort"
)

// Graph is an in-memory property graph. Vertices and edges are identified by
// dense IDs; edge i's endpoints and label live at index i of the src/dst/
// label arrays. The graph is mutable (AddVertex/AddEdge/DeleteEdge) to
// support the index-maintenance experiments, but the engine is
// read-optimized like GraphflowDB.
type Graph struct {
	catalog *Catalog

	vertexLabels []LabelID
	// labelVertices[l] lists the vertices of label l in ascending ID order,
	// so labeled scans touch only the matching bucket instead of probing
	// every vertex's label.
	labelVertices [][]VertexID

	src        []VertexID
	dst        []VertexID
	edgeLabels []LabelID
	deleted    bitset // tombstoned edges
	numDeleted int

	vertexProps map[string]*Column
	edgeProps   map[string]*Column

	// cowVCols/cowECols name the property columns still shared with the
	// parent of a Clone; they are copied before their first mutation so the
	// parent's readers never observe a write (see Clone in clone.go). Both
	// are nil for graphs that are not clones.
	cowVCols map[string]struct{}
	cowECols map[string]struct{}

	// categorical encodings are cached per (entity, property) pair; they are
	// invalidated on mutation of the underlying column.
	catCache map[string]*Categorical
}

// NewGraph returns an empty graph with a fresh catalog.
func NewGraph() *Graph {
	return &Graph{
		catalog:     NewCatalog(),
		vertexProps: make(map[string]*Column),
		edgeProps:   make(map[string]*Column),
		catCache:    make(map[string]*Categorical),
	}
}

// Catalog returns the graph's label catalog.
func (g *Graph) Catalog() *Catalog { return g.catalog }

// NumVertices returns the number of vertices.
func (g *Graph) NumVertices() int { return len(g.vertexLabels) }

// NumEdges returns the number of edge slots, including tombstoned edges.
func (g *Graph) NumEdges() int { return len(g.src) }

// NumLiveEdges returns the number of non-deleted edges.
func (g *Graph) NumLiveEdges() int { return len(g.src) - g.numDeleted }

// AddVertex appends a vertex with the given label name and returns its ID.
func (g *Graph) AddVertex(label string) VertexID {
	id := VertexID(len(g.vertexLabels))
	lid := g.catalog.VertexLabel(label)
	g.vertexLabels = append(g.vertexLabels, lid)
	g.addToLabelList(lid, id)
	return id
}

// AddVertices appends n vertices sharing one label and returns the first ID.
func (g *Graph) AddVertices(n int, label string) VertexID {
	first := VertexID(len(g.vertexLabels))
	lid := g.catalog.VertexLabel(label)
	for i := 0; i < n; i++ {
		id := VertexID(len(g.vertexLabels))
		g.vertexLabels = append(g.vertexLabels, lid)
		g.addToLabelList(lid, id)
	}
	return first
}

func (g *Graph) addToLabelList(l LabelID, v VertexID) {
	for int(l) >= len(g.labelVertices) {
		g.labelVertices = append(g.labelVertices, nil)
	}
	g.labelVertices[l] = append(g.labelVertices[l], v)
}

// VerticesWithLabel returns the vertices carrying label l in ascending ID
// order. The slice is owned by the graph and must not be mutated; it is
// stable between mutations, so concurrent readers are safe.
func (g *Graph) VerticesWithLabel(l LabelID) []VertexID {
	if int(l) >= len(g.labelVertices) {
		return nil
	}
	return g.labelVertices[l]
}

// AddEdge appends an edge and returns its ID.
func (g *Graph) AddEdge(src, dst VertexID, label string) (EdgeID, error) {
	n := VertexID(len(g.vertexLabels))
	if src >= n || dst >= n {
		return 0, fmt.Errorf("storage: edge endpoints (%d,%d) out of range [0,%d)", src, dst, n)
	}
	id := EdgeID(len(g.src))
	g.src = append(g.src, src)
	g.dst = append(g.dst, dst)
	g.edgeLabels = append(g.edgeLabels, g.catalog.EdgeLabel(label))
	g.deleted.grow(len(g.src))
	g.invalidateCategoricals()
	return id, nil
}

// DeleteEdge tombstones an edge. It remains addressable but is excluded from
// NumLiveEdges and index rebuilds.
func (g *Graph) DeleteEdge(e EdgeID) error {
	if int(e) >= len(g.src) {
		return fmt.Errorf("storage: edge %d out of range", e)
	}
	if !g.deleted.has(int(e)) {
		g.deleted.put(int(e))
		g.numDeleted++
	}
	return nil
}

// EdgeDeleted reports whether e has been tombstoned.
func (g *Graph) EdgeDeleted(e EdgeID) bool { return g.deleted.has(int(e)) }

// VertexLabel returns the label of v.
func (g *Graph) VertexLabel(v VertexID) LabelID { return g.vertexLabels[v] }

// EdgeLabel returns the label of e.
func (g *Graph) EdgeLabel(e EdgeID) LabelID { return g.edgeLabels[e] }

// Src returns the source vertex of e.
func (g *Graph) Src(e EdgeID) VertexID { return g.src[e] }

// Dst returns the destination vertex of e.
func (g *Graph) Dst(e EdgeID) VertexID { return g.dst[e] }

// SetVertexProp sets a property on a vertex, creating the column on first
// use with the kind of v.
func (g *Graph) SetVertexProp(id VertexID, key string, v Value) error {
	col, err := g.ensureColumn(g.vertexProps, g.cowVCols, key, v, g.NumVertices())
	if err != nil {
		return err
	}
	col.Grow(g.NumVertices())
	return col.Set(int(id), v)
}

// SetEdgeProp sets a property on an edge, creating the column on first use.
func (g *Graph) SetEdgeProp(id EdgeID, key string, v Value) error {
	col, err := g.ensureColumn(g.edgeProps, g.cowECols, key, v, g.NumEdges())
	if err != nil {
		return err
	}
	col.Grow(g.NumEdges())
	g.invalidateCategoricals()
	return col.Set(int(id), v)
}

func (g *Graph) ensureColumn(m map[string]*Column, cow map[string]struct{}, key string, v Value, n int) (*Column, error) {
	if col, ok := m[key]; ok {
		if _, shared := cow[key]; shared {
			// First write to a column inherited from a Clone parent: detach
			// a private copy so the parent's readers never see the write.
			col = col.cloneForWrite()
			m[key] = col
			delete(cow, key)
		}
		return col, nil
	}
	if v.IsNull() {
		return nil, fmt.Errorf("storage: cannot infer column kind for %q from NULL", key)
	}
	kind := v.Kind
	col := NewColumn(key, kind, n)
	m[key] = col
	return col, nil
}

// VertexProp returns the value of a vertex property (NULL if absent).
func (g *Graph) VertexProp(id VertexID, key string) Value {
	if col, ok := g.vertexProps[key]; ok {
		return col.Get(int(id))
	}
	return NullValue
}

// EdgeProp returns the value of an edge property (NULL if absent).
func (g *Graph) EdgeProp(id EdgeID, key string) Value {
	if col, ok := g.edgeProps[key]; ok {
		return col.Get(int(id))
	}
	return NullValue
}

// VertexColumn returns the column backing a vertex property.
func (g *Graph) VertexColumn(key string) (*Column, bool) {
	c, ok := g.vertexProps[key]
	return c, ok
}

// EdgeColumn returns the column backing an edge property.
func (g *Graph) EdgeColumn(key string) (*Column, bool) {
	c, ok := g.edgeProps[key]
	return c, ok
}

// OutDegree returns the number of live out-edges of v. It is O(|E|) and is
// meant for tests and stats, not the hot path (indexes answer degree queries
// in O(1)).
func (g *Graph) OutDegree(v VertexID) int {
	n := 0
	for i, s := range g.src {
		if s == v && !g.deleted.has(i) {
			n++
		}
	}
	return n
}

// AvgDegree returns the average out-degree over live edges.
func (g *Graph) AvgDegree() float64 {
	if g.NumVertices() == 0 {
		return 0
	}
	return float64(g.NumLiveEdges()) / float64(g.NumVertices())
}

// MemoryBytes estimates the heap footprint of the graph's topology and
// property columns.
func (g *Graph) MemoryBytes() int64 {
	b := int64(len(g.vertexLabels))*2 + int64(len(g.src))*4 + int64(len(g.dst))*4 + int64(len(g.edgeLabels))*2
	for _, vs := range g.labelVertices {
		b += int64(len(vs)) * 4
	}
	for _, c := range g.vertexProps {
		b += c.MemoryBytes()
	}
	for _, c := range g.edgeProps {
		b += c.MemoryBytes()
	}
	return b
}

func (g *Graph) invalidateCategoricals() {
	if len(g.catCache) > 0 {
		g.catCache = make(map[string]*Categorical)
	}
}

// Categorical is a dense small-integer encoding of a categorical property
// (or label) used as a CSR partitioning level. Cardinality includes one
// trailing bucket for NULL values (paper: "Edges with null property values
// form a special partition").
type Categorical struct {
	// Codes[i] is the bucket of entity i, in [0, Cardinality).
	Codes []uint16
	// Cardinality is the number of buckets including the NULL bucket.
	Cardinality int
	// Values[b] is the representative value of bucket b (NULL for the last).
	Values []Value
}

// NullBucket returns the bucket index reserved for NULL.
func (c *Categorical) NullBucket() uint16 { return uint16(c.Cardinality - 1) }

// BucketOf returns the bucket for value v, or false if v never occurs.
func (c *Categorical) BucketOf(v Value) (uint16, bool) {
	if v.IsNull() {
		return c.NullBucket(), true
	}
	for b, rep := range c.Values {
		if !rep.IsNull() && rep.Equal(v) {
			return uint16(b), true
		}
	}
	return 0, false
}

// EdgeLabelCategorical encodes edge labels as a partitioning level.
func (g *Graph) EdgeLabelCategorical() *Categorical {
	key := "edge\x00label"
	if c, ok := g.catCache[key]; ok {
		return c
	}
	card := g.catalog.NumEdgeLabels()
	c := &Categorical{Codes: make([]uint16, len(g.edgeLabels)), Cardinality: card + 1}
	for i, l := range g.edgeLabels {
		c.Codes[i] = uint16(l)
	}
	c.Values = make([]Value, card+1)
	for i := 0; i < card; i++ {
		c.Values[i] = Str(g.catalog.EdgeLabelName(LabelID(i)))
	}
	g.catCache[key] = c
	return c
}

// VertexLabelCategorical encodes vertex labels as a partitioning level.
func (g *Graph) VertexLabelCategorical() *Categorical {
	key := "vertex\x00label"
	if c, ok := g.catCache[key]; ok {
		return c
	}
	card := g.catalog.NumVertexLabels()
	c := &Categorical{Codes: make([]uint16, len(g.vertexLabels)), Cardinality: card + 1}
	for i, l := range g.vertexLabels {
		c.Codes[i] = uint16(l)
	}
	c.Values = make([]Value, card+1)
	for i := 0; i < card; i++ {
		c.Values[i] = Str(g.catalog.VertexLabelName(LabelID(i)))
	}
	g.catCache[key] = c
	return c
}

// EdgePropCategorical builds a categorical encoding of an edge property. The
// property's distinct values are enumerated and mapped to dense codes; an
// error is returned if there are more than 4096 distinct values, which would
// make a partitioning level impractically wide (Section III-A1 restricts
// partitioning to categorical properties mapped to small integers).
func (g *Graph) EdgePropCategorical(key string) (*Categorical, error) {
	return g.propCategorical("edge\x00"+key, g.edgeProps[key], g.NumEdges())
}

// VertexPropCategorical builds a categorical encoding of a vertex property.
func (g *Graph) VertexPropCategorical(key string) (*Categorical, error) {
	return g.propCategorical("vertex\x00"+key, g.vertexProps[key], g.NumVertices())
}

const maxCategoricalCardinality = 4096

func (g *Graph) propCategorical(cacheKey string, col *Column, n int) (*Categorical, error) {
	if c, ok := g.catCache[cacheKey]; ok {
		return c, nil
	}
	if col == nil {
		return nil, fmt.Errorf("storage: no such property column %q", cacheKey)
	}
	type bucketVal struct {
		v Value
	}
	distinct := make(map[string]uint16)
	var values []Value
	codes := make([]uint16, n)
	for i := 0; i < n; i++ {
		v := col.Get(i)
		if v.IsNull() {
			codes[i] = 0xffff // patched to the null bucket below
			continue
		}
		k := v.String()
		b, ok := distinct[k]
		if !ok {
			if len(values) >= maxCategoricalCardinality {
				return nil, fmt.Errorf("storage: property %q has too many distinct values for a partitioning level", col.Key)
			}
			b = uint16(len(values))
			distinct[k] = b
			values = append(values, v)
		}
		codes[i] = b
	}
	// Re-map buckets into sorted value order so that partition iteration is
	// deterministic regardless of insertion order.
	order := make([]uint16, len(values))
	for i := range order {
		order[i] = uint16(i)
	}
	sort.Slice(order, func(i, j int) bool { return values[order[i]].Compare(values[order[j]]) < 0 })
	remap := make([]uint16, len(values))
	sortedValues := make([]Value, len(values)+1)
	for newB, oldB := range order {
		remap[oldB] = uint16(newB)
		sortedValues[newB] = values[oldB]
	}
	nullBucket := uint16(len(values))
	for i := range codes {
		if codes[i] == 0xffff {
			codes[i] = nullBucket
		} else {
			codes[i] = remap[codes[i]]
		}
	}
	c := &Categorical{Codes: codes, Cardinality: len(values) + 1, Values: sortedValues}
	g.catCache[cacheKey] = c
	return c, nil
}
