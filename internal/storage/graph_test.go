package storage

import (
	"testing"
	"testing/quick"
)

func TestGraphBasics(t *testing.T) {
	g := NewGraph()
	a := g.AddVertex("Account")
	b := g.AddVertex("Account")
	c := g.AddVertex("Customer")
	if g.NumVertices() != 3 {
		t.Fatalf("NumVertices = %d, want 3", g.NumVertices())
	}
	if g.VertexLabel(a) != g.VertexLabel(b) {
		t.Error("same label name mapped to different IDs")
	}
	if g.VertexLabel(a) == g.VertexLabel(c) {
		t.Error("different labels mapped to same ID")
	}

	e, err := g.AddEdge(a, b, "W")
	if err != nil {
		t.Fatal(err)
	}
	if g.Src(e) != a || g.Dst(e) != b {
		t.Error("edge endpoints wrong")
	}
	if _, err := g.AddEdge(a, 99, "W"); err == nil {
		t.Error("out-of-range endpoint accepted")
	}
}

func TestGraphProperties(t *testing.T) {
	g := NewGraph()
	v := g.AddVertex("Account")
	if err := g.SetVertexProp(v, "city", Str("SF")); err != nil {
		t.Fatal(err)
	}
	if got := g.VertexProp(v, "city"); !got.Equal(Str("SF")) {
		t.Errorf("city = %v, want SF", got)
	}
	if got := g.VertexProp(v, "missing"); !got.IsNull() {
		t.Errorf("missing prop = %v, want NULL", got)
	}
	// Kind mismatch is rejected.
	if err := g.SetVertexProp(v, "city", Int(1)); err == nil {
		t.Error("kind mismatch accepted")
	}
	// Properties on later vertices grow the column.
	w := g.AddVertex("Account")
	if err := g.SetVertexProp(w, "city", Str("LA")); err != nil {
		t.Fatal(err)
	}
	if !g.VertexProp(v, "city").Equal(Str("SF")) {
		t.Error("grow corrupted earlier value")
	}
}

func TestGraphDeleteEdge(t *testing.T) {
	g := NewGraph()
	a := g.AddVertex("")
	b := g.AddVertex("")
	e, _ := g.AddEdge(a, b, "W")
	if g.NumLiveEdges() != 1 {
		t.Fatal("live edges")
	}
	if err := g.DeleteEdge(e); err != nil {
		t.Fatal(err)
	}
	if !g.EdgeDeleted(e) || g.NumLiveEdges() != 0 {
		t.Error("tombstone not applied")
	}
	// Deleting twice is idempotent.
	if err := g.DeleteEdge(e); err != nil {
		t.Fatal(err)
	}
	if g.NumLiveEdges() != 0 {
		t.Error("double delete changed count")
	}
}

func TestExampleGraphFacts(t *testing.T) {
	g := ExampleGraph()
	if g.NumVertices() != 8 {
		t.Fatalf("NumVertices = %d, want 8", g.NumVertices())
	}
	if g.NumEdges() != 25 {
		t.Fatalf("NumEdges = %d, want 25 (20 transfers + 5 owns)", g.NumEdges())
	}
	// t13 is v2 -> v5 (0-based: 1 -> 4) with label DD.
	t13 := Transfer(13)
	if g.Src(t13) != 1 || g.Dst(t13) != 4 {
		t.Errorf("t13 endpoints = (%d,%d), want (1,4)", g.Src(t13), g.Dst(t13))
	}
	if g.Catalog().EdgeLabelName(g.EdgeLabel(t13)) != LabelDeposit {
		t.Error("t13 should be a Dir-Deposit")
	}
	// v2 (ID 1) incoming = {t5,t6,t15,t17}, outgoing = {t7,t8,t13}.
	var in, out []int
	for i := 0; i < 20; i++ {
		e := EdgeID(i)
		if g.Dst(e) == 1 {
			in = append(in, i+1)
		}
		if g.Src(e) == 1 {
			out = append(out, i+1)
		}
	}
	wantIn := []int{5, 6, 15, 17}
	wantOut := []int{7, 8, 13}
	if !equalInts(in, wantIn) {
		t.Errorf("v2 incoming = %v, want %v", in, wantIn)
	}
	if !equalInts(out, wantOut) {
		t.Errorf("v2 outgoing = %v, want %v", out, wantOut)
	}
	// v5 (ID 4) has 9 outgoing transfers.
	if d := g.OutDegree(4); d != 9 {
		t.Errorf("v5 out-degree = %d, want 9", d)
	}
	// Dates follow the transfer index.
	for i := 1; i <= 20; i++ {
		if got := g.EdgeProp(Transfer(i), PropDate); !got.Equal(Int(int64(i))) {
			t.Errorf("t%d.date = %v, want %d", i, got, i)
		}
	}
	// Alice's name property.
	if !g.VertexProp(6, PropName).Equal(Str("Alice")) {
		t.Error("v7 should be Alice")
	}
}

func TestExampleGraphMoneyFlowFacts(t *testing.T) {
	g := ExampleGraph()
	// The MoneyFlow Destination-FW view for t13 must contain exactly t19:
	// forward edges of v5 with a later date and a smaller amount than t13.
	t13 := Transfer(13)
	amt13 := g.EdgeProp(t13, PropAmount)
	date13 := g.EdgeProp(t13, PropDate)
	var members []int
	for i := 1; i <= 20; i++ {
		e := Transfer(i)
		if g.Src(e) != g.Dst(t13) {
			continue
		}
		if g.EdgeProp(e, PropDate).Compare(date13) > 0 && g.EdgeProp(e, PropAmount).Compare(amt13) < 0 {
			members = append(members, i)
		}
	}
	if !equalInts(members, []int{19}) {
		t.Errorf("MoneyFlow(t13) = t%v, want [t19]", members)
	}
	// t17 is a MoneyFlow member for both t1 and t16.
	for _, bound := range []int{1, 16} {
		eb := Transfer(bound)
		amtB := g.EdgeProp(eb, PropAmount)
		dateB := g.EdgeProp(eb, PropDate)
		t17 := Transfer(17)
		if g.Src(t17) != g.Dst(eb) {
			t.Fatalf("t17 is not adjacent to t%d's destination", bound)
		}
		if !(g.EdgeProp(t17, PropDate).Compare(dateB) > 0 && g.EdgeProp(t17, PropAmount).Compare(amtB) < 0) {
			t.Errorf("t17 should satisfy the MoneyFlow predicate for t%d", bound)
		}
	}
}

func TestEdgeLabelCategorical(t *testing.T) {
	g := ExampleGraph()
	c := g.EdgeLabelCategorical()
	if len(c.Codes) != g.NumEdges() {
		t.Fatal("codes length mismatch")
	}
	// Cardinality = 4 interned labels ("", W, DD, O) + null bucket.
	if c.Cardinality != g.Catalog().NumEdgeLabels()+1 {
		t.Errorf("cardinality = %d", c.Cardinality)
	}
	for i := 0; i < g.NumEdges(); i++ {
		if LabelID(c.Codes[i]) != g.EdgeLabel(EdgeID(i)) {
			t.Fatalf("edge %d code mismatch", i)
		}
	}
}

func TestEdgePropCategorical(t *testing.T) {
	g := ExampleGraph()
	c, err := g.EdgePropCategorical(PropCurrency)
	if err != nil {
		t.Fatal(err)
	}
	// Currencies are $, €, £ -> 3 distinct + null bucket.
	if c.Cardinality != 4 {
		t.Fatalf("cardinality = %d, want 4", c.Cardinality)
	}
	// Owns edges have no currency and must land in the null bucket.
	ownsEdge := EdgeID(20)
	if c.Codes[ownsEdge] != c.NullBucket() {
		t.Error("owns edge not in null bucket")
	}
	// Bucket values are sorted, deterministic.
	for b := 1; b < c.Cardinality-1; b++ {
		if c.Values[b-1].Compare(c.Values[b]) >= 0 {
			t.Error("bucket values not sorted")
		}
	}
	// BucketOf round-trips.
	for i := 1; i <= 20; i++ {
		v := g.EdgeProp(Transfer(i), PropCurrency)
		b, ok := c.BucketOf(v)
		if !ok || b != c.Codes[Transfer(i)] {
			t.Fatalf("BucketOf(%v) mismatch for t%d", v, i)
		}
	}
}

func TestCategoricalCacheInvalidation(t *testing.T) {
	g := ExampleGraph()
	c1, err := g.EdgePropCategorical(PropCurrency)
	if err != nil {
		t.Fatal(err)
	}
	e, _ := g.AddEdge(0, 1, LabelWire)
	if err := g.SetEdgeProp(e, PropCurrency, Str("¥")); err != nil {
		t.Fatal(err)
	}
	c2, err := g.EdgePropCategorical(PropCurrency)
	if err != nil {
		t.Fatal(err)
	}
	if c2 == c1 {
		t.Error("categorical cache not invalidated after mutation")
	}
	if c2.Cardinality != 5 {
		t.Errorf("new cardinality = %d, want 5", c2.Cardinality)
	}
}

func TestColumnSortOrdinal(t *testing.T) {
	col := NewColumn("x", KindInt, 4)
	mustSet(t, col, 0, Int(-5))
	mustSet(t, col, 1, Int(3))
	// index 2 stays NULL
	mustSet(t, col, 3, Int(0))
	if !(col.SortOrdinal(0) < col.SortOrdinal(3) && col.SortOrdinal(3) < col.SortOrdinal(1)) {
		t.Error("int ordinals not order-preserving")
	}
	if col.SortOrdinal(2) != ^uint64(0) {
		t.Error("NULL ordinal should be max (nulls last)")
	}
}

func TestColumnSortOrdinalStrings(t *testing.T) {
	col := NewColumn("city", KindString, 3)
	mustSet(t, col, 0, Str("SF"))
	mustSet(t, col, 1, Str("BOS"))
	mustSet(t, col, 2, Str("LA"))
	if !(col.SortOrdinal(1) < col.SortOrdinal(2) && col.SortOrdinal(2) < col.SortOrdinal(0)) {
		t.Error("string ordinals not lexicographic")
	}
}

func TestColumnOrdinalQuick(t *testing.T) {
	f := func(a, b int64) bool {
		col := NewColumn("x", KindInt, 2)
		col.Set(0, Int(a))
		col.Set(1, Int(b))
		switch {
		case a < b:
			return col.SortOrdinal(0) < col.SortOrdinal(1)
		case a > b:
			return col.SortOrdinal(0) > col.SortOrdinal(1)
		}
		return col.SortOrdinal(0) == col.SortOrdinal(1)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMemoryBytesPositive(t *testing.T) {
	g := ExampleGraph()
	if g.MemoryBytes() <= 0 {
		t.Error("memory estimate should be positive")
	}
}

func mustSet(t *testing.T, c *Column, i int, v Value) {
	t.Helper()
	if err := c.Set(i, v); err != nil {
		t.Fatal(err)
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
