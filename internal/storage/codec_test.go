package storage

import (
	"testing"

	"github.com/aplusdb/aplus/internal/enc"
)

func buildCodecGraph(t *testing.T) *Graph {
	t.Helper()
	g := NewGraph()
	a := g.AddVertex("Account")
	b := g.AddVertex("Account")
	c := g.AddVertex("Customer")
	_ = g.AddVertex("") // unlabeled
	if err := g.SetVertexProp(a, "city", Str("SF")); err != nil {
		t.Fatal(err)
	}
	if err := g.SetVertexProp(b, "city", Str("BOS")); err != nil {
		t.Fatal(err)
	}
	if err := g.SetVertexProp(c, "age", Int(41)); err != nil {
		t.Fatal(err)
	}
	if err := g.SetVertexProp(c, "vip", Bool(true)); err != nil {
		t.Fatal(err)
	}
	e0, _ := g.AddEdge(a, b, "W")
	e1, _ := g.AddEdge(b, c, "DD")
	e2, _ := g.AddEdge(c, a, "W")
	if err := g.SetEdgeProp(e0, "amt", Float(12.5)); err != nil {
		t.Fatal(err)
	}
	if err := g.SetEdgeProp(e1, "amt", Float(99)); err != nil {
		t.Fatal(err)
	}
	if err := g.SetEdgeProp(e1, "currency", Str("EUR")); err != nil {
		t.Fatal(err)
	}
	if err := g.DeleteEdge(e2); err != nil {
		t.Fatal(err)
	}
	return g
}

func TestGraphCodecRoundTrip(t *testing.T) {
	g := buildCodecGraph(t)
	w := enc.NewWriter()
	EncodeGraph(w, g)
	g2, err := DecodeGraph(enc.NewReader(w.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumVertices() != g.NumVertices() || g2.NumEdges() != g.NumEdges() || g2.NumLiveEdges() != g.NumLiveEdges() {
		t.Fatalf("shape mismatch: %d/%d/%d vs %d/%d/%d",
			g2.NumVertices(), g2.NumEdges(), g2.NumLiveEdges(),
			g.NumVertices(), g.NumEdges(), g.NumLiveEdges())
	}
	for v := 0; v < g.NumVertices(); v++ {
		if g2.VertexLabel(VertexID(v)) != g.VertexLabel(VertexID(v)) {
			t.Fatalf("vertex %d label mismatch", v)
		}
		for _, key := range []string{"city", "age", "vip"} {
			a, b := g.VertexProp(VertexID(v), key), g2.VertexProp(VertexID(v), key)
			if a.Kind != b.Kind || a.Compare(b) != 0 && !(a.IsNull() && b.IsNull()) {
				t.Fatalf("vertex %d prop %q: %v vs %v", v, key, a, b)
			}
		}
	}
	for e := 0; e < g.NumEdges(); e++ {
		id := EdgeID(e)
		if g2.Src(id) != g.Src(id) || g2.Dst(id) != g.Dst(id) ||
			g2.EdgeLabel(id) != g.EdgeLabel(id) || g2.EdgeDeleted(id) != g.EdgeDeleted(id) {
			t.Fatalf("edge %d topology mismatch", e)
		}
		for _, key := range []string{"amt", "currency"} {
			a, b := g.EdgeProp(id, key), g2.EdgeProp(id, key)
			if a.Kind != b.Kind || a.Compare(b) != 0 && !(a.IsNull() && b.IsNull()) {
				t.Fatalf("edge %d prop %q: %v vs %v", e, key, a, b)
			}
		}
	}
	// Catalog names survive with identical ids.
	if g2.Catalog().VertexLabelName(g.Catalog().VertexLabel("Customer")) != "Customer" {
		t.Fatal("catalog mismatch")
	}
	if g2.Catalog().EdgeLabelName(g.Catalog().EdgeLabel("DD")) != "DD" {
		t.Fatal("catalog mismatch")
	}
	// Per-label scan lists are rebuilt.
	l, _ := g.Catalog().LookupVertexLabel("Account")
	if len(g2.VerticesWithLabel(l)) != 2 {
		t.Fatalf("label list mismatch: %v", g2.VerticesWithLabel(l))
	}
	// Derived categorical encodings agree (bucket order is content-defined).
	c1 := g.EdgeLabelCategorical()
	c2 := g2.EdgeLabelCategorical()
	if c1.Cardinality != c2.Cardinality {
		t.Fatalf("categorical cardinality %d vs %d", c1.Cardinality, c2.Cardinality)
	}
	for i := range c1.Codes {
		if c1.Codes[i] != c2.Codes[i] {
			t.Fatalf("categorical code mismatch at %d", i)
		}
	}
}

func TestGraphCodecTruncation(t *testing.T) {
	g := buildCodecGraph(t)
	w := enc.NewWriter()
	EncodeGraph(w, g)
	full := w.Bytes()
	for _, cut := range []int{0, 1, len(full) / 3, len(full) / 2, len(full) - 1} {
		if _, err := DecodeGraph(enc.NewReader(full[:cut])); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}

func TestGraphCodecEmpty(t *testing.T) {
	w := enc.NewWriter()
	EncodeGraph(w, NewGraph())
	g2, err := DecodeGraph(enc.NewReader(w.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumVertices() != 0 || g2.NumEdges() != 0 {
		t.Fatal("empty graph roundtrip")
	}
}
