package storage

// Checkpoint serialization of the storage layer. EncodeGraph writes a
// self-contained image of a graph — catalog, labels, topology, tombstones,
// and every property column including its NULL bitset and string dictionary
// — and DecodeGraph reconstructs an identical graph from it. The format uses
// the internal/enc primitives; framing, checksums, and file handling belong
// to internal/wal.
//
// Derived read-side state is not serialized: the per-label vertex lists are
// recomputed from the label array (ascending-ID order, exactly how AddVertex
// maintains them) and categorical encodings are rebuilt lazily on demand,
// both deterministic functions of the encoded content.

import (
	"fmt"

	"github.com/aplusdb/aplus/internal/enc"
)

// EncodeValue appends one property value.
func EncodeValue(w *enc.Writer, v Value) {
	w.U8(uint8(v.Kind))
	switch v.Kind {
	case KindInt, KindBool:
		w.Varint(v.I)
	case KindFloat:
		w.F64(v.F)
	case KindString:
		w.String(v.S)
	}
}

// DecodeValue reads one property value.
func DecodeValue(r *enc.Reader) Value {
	k := Kind(r.U8())
	switch k {
	case KindNull:
		return NullValue
	case KindInt:
		return Int(r.Varint())
	case KindBool:
		return Bool(r.Varint() != 0)
	case KindFloat:
		return Float(r.F64())
	case KindString:
		return Str(r.String())
	default:
		return NullValue
	}
}

// encodeDict writes a dictionary as its strings in insertion (code) order.
func encodeDict(w *enc.Writer, d *Dict) {
	w.Uvarint(uint64(len(d.strs)))
	for _, s := range d.strs {
		w.String(s)
	}
}

// decodeDict reads a dictionary, rebuilding the code map.
func decodeDict(r *enc.Reader) *Dict {
	n := r.Len(1)
	d := &Dict{codes: make(map[string]uint32, n), strs: make([]string, 0, n)}
	for i := 0; i < n; i++ {
		d.Code(r.String())
	}
	return d
}

func encodeColumn(w *enc.Writer, c *Column) {
	w.String(c.Key)
	w.U8(uint8(c.Kind))
	w.Uvarint(uint64(c.n))
	w.U64s(c.set)
	switch c.Kind {
	case KindInt, KindBool:
		w.I64s(c.ints[:c.n])
	case KindFloat:
		w.F64s(c.floats[:c.n])
	case KindString:
		w.U32s(c.codes[:c.n])
		encodeDict(w, c.dict)
	}
}

func decodeColumn(r *enc.Reader) (*Column, error) {
	c := &Column{Key: r.String(), Kind: Kind(r.U8())}
	c.n = int(r.Uvarint())
	c.set = r.U64s()
	c.set.grow(c.n)
	switch c.Kind {
	case KindInt, KindBool:
		c.ints = r.I64s()
		if c.ints == nil {
			c.ints = make([]int64, c.n)
		}
	case KindFloat:
		c.floats = r.F64s()
		if c.floats == nil {
			c.floats = make([]float64, c.n)
		}
	case KindString:
		c.codes = r.U32s()
		if c.codes == nil {
			c.codes = make([]uint32, c.n)
		}
		c.dict = decodeDict(r)
	default:
		return nil, fmt.Errorf("storage: column %q has invalid kind %d", c.Key, c.Kind)
	}
	if r.Err() != nil {
		return nil, r.Err()
	}
	if len(c.ints) != c.n && len(c.floats) != c.n && len(c.codes) != c.n {
		return nil, fmt.Errorf("storage: column %q payload length mismatch", c.Key)
	}
	return c, nil
}

func encodeColumns(w *enc.Writer, m map[string]*Column) {
	w.Uvarint(uint64(len(m)))
	for _, k := range sortedKeys(m) {
		encodeColumn(w, m[k])
	}
}

func decodeColumns(r *enc.Reader) (map[string]*Column, error) {
	n := r.Len(1)
	m := make(map[string]*Column, n)
	for i := 0; i < n; i++ {
		c, err := decodeColumn(r)
		if err != nil {
			return nil, err
		}
		m[c.Key] = c
	}
	return m, nil
}

func sortedKeys(m map[string]*Column) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	for i := 1; i < len(keys); i++ { // insertion sort; property sets are small
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	return keys
}

// EncodeGraph appends a complete image of g. The graph must not be mutated
// during encoding (checkpoint callers hand in a frozen snapshot graph).
func EncodeGraph(w *enc.Writer, g *Graph) {
	encodeDict(w, g.catalog.vertexLabels)
	encodeDict(w, g.catalog.edgeLabels)
	vl := make([]uint16, len(g.vertexLabels))
	for i, l := range g.vertexLabels {
		vl[i] = uint16(l)
	}
	w.U16s(vl)
	src := make([]uint32, len(g.src))
	dst := make([]uint32, len(g.dst))
	for i := range g.src {
		src[i], dst[i] = uint32(g.src[i]), uint32(g.dst[i])
	}
	w.U32s(src)
	w.U32s(dst)
	el := make([]uint16, len(g.edgeLabels))
	for i, l := range g.edgeLabels {
		el[i] = uint16(l)
	}
	w.U16s(el)
	w.U64s(g.deleted)
	w.Uvarint(uint64(g.numDeleted))
	encodeColumns(w, g.vertexProps)
	encodeColumns(w, g.edgeProps)
}

// DecodeGraph reconstructs a graph from an EncodeGraph image.
func DecodeGraph(r *enc.Reader) (*Graph, error) {
	g := NewGraph()
	g.catalog = &Catalog{vertexLabels: decodeDict(r), edgeLabels: decodeDict(r)}
	if g.catalog.vertexLabels.Len() == 0 || g.catalog.edgeLabels.Len() == 0 {
		if r.Err() != nil {
			return nil, r.Err()
		}
		return nil, fmt.Errorf("storage: decoded catalog lacks the reserved empty label")
	}
	for _, lid := range r.U16s() {
		if int(lid) >= g.catalog.NumVertexLabels() {
			return nil, fmt.Errorf("storage: vertex label id %d out of catalog range", lid)
		}
		id := VertexID(len(g.vertexLabels))
		g.vertexLabels = append(g.vertexLabels, LabelID(lid))
		g.addToLabelList(LabelID(lid), id)
	}
	src, dst := r.U32s(), r.U32s()
	if len(src) != len(dst) {
		if r.Err() != nil {
			return nil, r.Err()
		}
		return nil, fmt.Errorf("storage: src/dst length mismatch (%d vs %d)", len(src), len(dst))
	}
	g.src = make([]VertexID, len(src))
	g.dst = make([]VertexID, len(dst))
	n := VertexID(len(g.vertexLabels))
	for i := range src {
		if VertexID(src[i]) >= n || VertexID(dst[i]) >= n {
			return nil, fmt.Errorf("storage: edge %d endpoints (%d,%d) out of range [0,%d)", i, src[i], dst[i], n)
		}
		g.src[i], g.dst[i] = VertexID(src[i]), VertexID(dst[i])
	}
	el := r.U16s()
	if len(el) != len(src) {
		if r.Err() != nil {
			return nil, r.Err()
		}
		return nil, fmt.Errorf("storage: edge label length mismatch (%d vs %d)", len(el), len(src))
	}
	g.edgeLabels = make([]LabelID, len(el))
	for i, lid := range el {
		if int(lid) >= g.catalog.NumEdgeLabels() {
			return nil, fmt.Errorf("storage: edge label id %d out of catalog range", lid)
		}
		g.edgeLabels[i] = LabelID(lid)
	}
	g.deleted = r.U64s()
	g.deleted.grow(len(g.src))
	g.numDeleted = int(r.Uvarint())
	var err error
	if g.vertexProps, err = decodeColumns(r); err != nil {
		return nil, err
	}
	if g.edgeProps, err = decodeColumns(r); err != nil {
		return nil, err
	}
	if r.Err() != nil {
		return nil, r.Err()
	}
	return g, nil
}
