package storage

import (
	"testing"
	"testing/quick"
)

func TestValueCompareOrdering(t *testing.T) {
	cases := []struct {
		a, b Value
		want int
	}{
		{Int(1), Int(2), -1},
		{Int(2), Int(1), 1},
		{Int(5), Int(5), 0},
		{Int(1), Float(1.5), -1},
		{Float(2.5), Int(2), 1},
		{Str("BOS"), Str("SF"), -1},
		{Str("SF"), Str("SF"), 0},
		{Bool(false), Bool(true), -1},
		{Int(1), NullValue, -1}, // nulls last
		{NullValue, Int(1), 1},
		{NullValue, NullValue, 0},
	}
	for _, c := range cases {
		if got := c.a.Compare(c.b); got != c.want {
			t.Errorf("Compare(%v, %v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestValueCompareAntisymmetric(t *testing.T) {
	f := func(a, b int64) bool {
		return Int(a).Compare(Int(b)) == -Int(b).Compare(Int(a))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestValueCompareTransitiveOnInts(t *testing.T) {
	f := func(a, b, c int64) bool {
		va, vb, vc := Int(a), Int(b), Int(c)
		if va.Compare(vb) <= 0 && vb.Compare(vc) <= 0 {
			return va.Compare(vc) <= 0
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNullEqualsNothing(t *testing.T) {
	if NullValue.Equal(NullValue) {
		t.Error("NULL should not equal NULL")
	}
	if NullValue.Equal(Int(0)) || Int(0).Equal(NullValue) {
		t.Error("NULL should not equal 0")
	}
}

func TestFloatOrdinalMonotone(t *testing.T) {
	f := func(a, b float64) bool {
		if a != a || b != b { // skip NaN
			return true
		}
		if a < b {
			return FloatOrdinal(a) < FloatOrdinal(b)
		}
		if a > b {
			return FloatOrdinal(a) > FloatOrdinal(b)
		}
		return FloatOrdinal(a) == FloatOrdinal(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestValueString(t *testing.T) {
	cases := map[string]Value{
		"NULL": NullValue,
		"42":   Int(42),
		"SF":   Str("SF"),
		"true": Bool(true),
	}
	for want, v := range cases {
		if got := v.String(); got != want {
			t.Errorf("%#v.String() = %q, want %q", v, got, want)
		}
	}
}

func TestKindString(t *testing.T) {
	if KindInt.String() != "int" || KindNull.String() != "null" {
		t.Error("Kind.String mismatch")
	}
}
