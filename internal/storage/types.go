// Package storage implements the property-graph storage substrate that the
// A+ index subsystem is built on: vertex and edge tables, a label catalog,
// and typed property columns with null tracking and dictionary-encoded
// strings.
//
// The physical sizes follow the paper (Section IV-B): neighbour vertex IDs
// are 4-byte integers and edge IDs are 8-byte integers, so memory accounting
// of ID lists versus offset lists is directly comparable to the reported
// numbers.
package storage

import "fmt"

// VertexID identifies a vertex. IDs are assigned consecutively from 0, which
// the CSR layout depends on (Section IV-B: "Vertex IDs are assigned
// consecutively starting from 0").
type VertexID uint32

// EdgeID identifies an edge. Edge IDs are assigned consecutively from 0 in
// insertion order; the paper's running example relies on insertion order
// corresponding to the date order of transfers.
type EdgeID uint64

// LabelID identifies a vertex or edge label. Labels are categorical and map
// to small integers (Section III-A1).
type LabelID uint16

// NoLabel is the label of vertices or edges that were given none.
const NoLabel LabelID = 0

// Kind enumerates the runtime types a property value can take.
type Kind uint8

const (
	// KindNull is the kind of the zero Value.
	KindNull Kind = iota
	// KindInt is a 64-bit signed integer.
	KindInt
	// KindFloat is a 64-bit float.
	KindFloat
	// KindString is a dictionary-encoded string.
	KindString
	// KindBool is a boolean.
	KindBool
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "null"
	case KindInt:
		return "int"
	case KindFloat:
		return "float"
	case KindString:
		return "string"
	case KindBool:
		return "bool"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Value is a dynamically typed property value. The zero Value is NULL.
type Value struct {
	Kind Kind
	I    int64
	F    float64
	S    string
}

// NullValue is the NULL property value.
var NullValue = Value{}

// Int returns an integer Value.
func Int(i int64) Value { return Value{Kind: KindInt, I: i} }

// Float returns a float Value.
func Float(f float64) Value { return Value{Kind: KindFloat, F: f} }

// Str returns a string Value.
func Str(s string) Value { return Value{Kind: KindString, S: s} }

// Bool returns a boolean Value.
func Bool(b bool) Value {
	v := Value{Kind: KindBool}
	if b {
		v.I = 1
	}
	return v
}

// IsNull reports whether v is NULL.
func (v Value) IsNull() bool { return v.Kind == KindNull }

// Compare orders two values. NULLs order last (the paper orders edges with
// null sort-property values last). Numeric kinds compare numerically across
// int/float; otherwise values of different kinds compare by kind.
func (v Value) Compare(o Value) int {
	if v.Kind == KindNull || o.Kind == KindNull {
		switch {
		case v.Kind == o.Kind:
			return 0
		case v.Kind == KindNull:
			return 1 // nulls last
		default:
			return -1
		}
	}
	if isNumeric(v.Kind) && isNumeric(o.Kind) {
		a, b := v.asFloat(), o.asFloat()
		switch {
		case a < b:
			return -1
		case a > b:
			return 1
		}
		return 0
	}
	if v.Kind != o.Kind {
		if v.Kind < o.Kind {
			return -1
		}
		return 1
	}
	switch v.Kind {
	case KindString:
		switch {
		case v.S < o.S:
			return -1
		case v.S > o.S:
			return 1
		}
		return 0
	case KindBool:
		switch {
		case v.I < o.I:
			return -1
		case v.I > o.I:
			return 1
		}
		return 0
	}
	return 0
}

// Equal reports whether two values compare equal.
func (v Value) Equal(o Value) bool {
	if v.IsNull() || o.IsNull() {
		return false // SQL-style: NULL equals nothing
	}
	return v.Compare(o) == 0
}

func isNumeric(k Kind) bool { return k == KindInt || k == KindFloat }

func (v Value) asFloat() float64 {
	if v.Kind == KindFloat {
		return v.F
	}
	return float64(v.I)
}

// String implements fmt.Stringer.
func (v Value) String() string {
	switch v.Kind {
	case KindNull:
		return "NULL"
	case KindInt:
		return fmt.Sprintf("%d", v.I)
	case KindFloat:
		return fmt.Sprintf("%g", v.F)
	case KindString:
		return v.S
	case KindBool:
		if v.I != 0 {
			return "true"
		}
		return "false"
	}
	return "?"
}
