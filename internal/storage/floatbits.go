package storage

import "math"

func floatBits(f float64) uint64 { return math.Float64bits(f) }
