package storage

import "math"

func floatBits(f float64) uint64 { return math.Float64bits(f) }

// FloatOrdinal maps a float to the order-preserving unsigned ordinal space
// float columns sort in (Column.SortOrdinal); exposed so constants can be
// located inside float-sorted lists.
func FloatOrdinal(f float64) uint64 {
	bits := floatBits(f)
	if bits&(1<<63) != 0 {
		return ^bits
	}
	return bits | (1 << 63)
}
