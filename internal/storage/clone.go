package storage

// Snapshot-writer support: Clone produces a copy-on-write view of a graph
// that a single serialized writer can extend while any number of readers
// keep using the parent. The discipline the snapshot subsystem
// (internal/snap) follows is:
//
//   - exactly one clone is mutated at a time, always taken from the most
//     recently published graph, so sibling clones never append into the
//     same backing array slot;
//   - mutations are appends (AddVertex/AddVertices/AddEdge) and property
//     sets on entities created after the clone — never on entities the
//     parent already exposes;
//   - edge deletion goes through ApplyTombstones (which copies the bitmap),
//     never DeleteEdge, whose in-place bit writes would race readers.
//
// Under that discipline every write lands either in clone-private memory
// (copied maps, the tombstone bitmap, cloned columns' NULL bitsets) or in
// shared backing arrays strictly past the parent's visible length, which
// the parent's readers never index. Aborting a batch simply drops the
// clone: slots past the parent's lengths may have been scribbled on, but
// the next clone of the same parent re-appends from the parent's lengths.

// Clone returns a copy-on-write duplicate of the graph for a snapshot
// writer (see the package discipline above). The clone is fully readable
// immediately; the parent must never be mutated again.
func (g *Graph) Clone() *Graph {
	ng := &Graph{
		catalog:       g.catalog.Clone(),
		vertexLabels:  g.vertexLabels,
		labelVertices: append([][]VertexID(nil), g.labelVertices...),
		src:           g.src,
		dst:           g.dst,
		edgeLabels:    g.edgeLabels,
		deleted:       g.deleted,
		numDeleted:    g.numDeleted,
		vertexProps:   make(map[string]*Column, len(g.vertexProps)),
		edgeProps:     make(map[string]*Column, len(g.edgeProps)),
		cowVCols:      make(map[string]struct{}, len(g.vertexProps)),
		cowECols:      make(map[string]struct{}, len(g.edgeProps)),
		catCache:      make(map[string]*Categorical),
	}
	for k, c := range g.vertexProps {
		ng.vertexProps[k] = c
		ng.cowVCols[k] = struct{}{}
	}
	for k, c := range g.edgeProps {
		ng.edgeProps[k] = c
		ng.cowECols[k] = struct{}{}
	}
	return ng
}

// ApplyTombstones marks the given edges deleted on a private copy of the
// tombstone bitmap, so readers of the graph this one was cloned from are
// unaffected. Unknown or already-deleted edges are ignored. This is the
// only legal way to delete edges from a clone; it is used when folding a
// snapshot delta's delete set into a fresh base.
func (g *Graph) ApplyTombstones(dead []EdgeID) {
	if len(dead) == 0 {
		return
	}
	nb := make(bitset, len(g.deleted))
	copy(nb, g.deleted)
	g.deleted = nb
	g.deleted.grow(len(g.src))
	for _, e := range dead {
		if int(e) < len(g.src) && !g.deleted.has(int(e)) {
			g.deleted.put(int(e))
			g.numDeleted++
		}
	}
}
