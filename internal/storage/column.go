package storage

import "fmt"

// Column is a typed property column over a table of entities (vertices or
// edges). Values are stored unboxed per kind; strings are dictionary-encoded.
// A bitset tracks NULLs, so the zero value of the backing array never leaks
// as a real value.
type Column struct {
	Key  string
	Kind Kind

	ints   []int64
	floats []float64
	codes  []uint32
	dict   *Dict
	set    bitset
	n      int

	// dictShared marks a string column cloned for write whose dictionary is
	// still shared with the clone parent; interning a new string must copy
	// the dictionary first (lookups of existing strings stay shared).
	dictShared bool
}

// NewColumn returns a column for n entities, all NULL.
func NewColumn(key string, kind Kind, n int) *Column {
	c := &Column{Key: key, Kind: kind, n: n, set: newBitset(n)}
	switch kind {
	case KindInt, KindBool:
		c.ints = make([]int64, n)
	case KindFloat:
		c.floats = make([]float64, n)
	case KindString:
		c.codes = make([]uint32, n)
		c.dict = NewDict()
	default:
		panic(fmt.Sprintf("storage: cannot create column of kind %v", kind))
	}
	return c
}

// Len returns the number of entities covered by the column.
func (c *Column) Len() int { return c.n }

// Grow extends the column to cover n entities, keeping existing values.
func (c *Column) Grow(n int) {
	if n <= c.n {
		return
	}
	switch c.Kind {
	case KindInt, KindBool:
		c.ints = append(c.ints, make([]int64, n-c.n)...)
	case KindFloat:
		c.floats = append(c.floats, make([]float64, n-c.n)...)
	case KindString:
		c.codes = append(c.codes, make([]uint32, n-c.n)...)
	}
	c.set.grow(n)
	c.n = n
}

// Set stores v at index i. Setting NULL clears the slot.
func (c *Column) Set(i int, v Value) error {
	if v.IsNull() {
		c.set.clear(i)
		return nil
	}
	switch c.Kind {
	case KindInt, KindBool:
		if v.Kind != KindInt && v.Kind != KindBool {
			return fmt.Errorf("storage: column %q holds %v, got %v", c.Key, c.Kind, v.Kind)
		}
		c.ints[i] = v.I
	case KindFloat:
		switch v.Kind {
		case KindFloat:
			c.floats[i] = v.F
		case KindInt:
			c.floats[i] = float64(v.I)
		default:
			return fmt.Errorf("storage: column %q holds %v, got %v", c.Key, c.Kind, v.Kind)
		}
	case KindString:
		if v.Kind != KindString {
			return fmt.Errorf("storage: column %q holds %v, got %v", c.Key, c.Kind, v.Kind)
		}
		if c.dictShared {
			if code, ok := c.dict.Lookup(v.S); ok {
				c.codes[i] = code
				break
			}
			// A new string must be interned, which mutates the dictionary:
			// detach a private copy first (the parent's readers keep using
			// the shared one).
			c.dict = c.dict.Clone()
			c.dictShared = false
			c.codes[i] = c.dict.Code(v.S)
			break
		}
		c.codes[i] = c.dict.Code(v.S)
	}
	c.set.put(i)
	return nil
}

// cloneForWrite returns a copy-on-write duplicate of the column for the
// snapshot write path: the payload arrays are shared (a serialized writer
// only appends past the parent's length, which the parent's readers never
// index), while the NULL bitset is copied outright — its words straddle
// entity boundaries, so even an append-only write could touch a word a
// concurrent reader of the parent is loading. String dictionaries stay
// shared until a new string must be interned (see Set).
func (c *Column) cloneForWrite() *Column {
	nc := *c
	nc.set = append(bitset(nil), c.set...)
	if c.Kind == KindString {
		nc.dictShared = true
	}
	return &nc
}

// Get returns the value at index i (NULL if unset).
func (c *Column) Get(i int) Value {
	if i >= c.n || !c.set.has(i) {
		return NullValue
	}
	switch c.Kind {
	case KindInt:
		return Int(c.ints[i])
	case KindBool:
		return Value{Kind: KindBool, I: c.ints[i]}
	case KindFloat:
		return Float(c.floats[i])
	case KindString:
		return Str(c.dict.String(c.codes[i]))
	}
	return NullValue
}

// IsNull reports whether the value at i is NULL.
func (c *Column) IsNull(i int) bool { return i >= c.n || !c.set.has(i) }

// SortOrdinal returns an integer that orders entities identically to
// Value.Compare for this column's kind, with NULLs mapped to the maximum
// ordinal (nulls order last). Float columns fall back to bit-manipulated
// ordering of the float value.
func (c *Column) SortOrdinal(i int) uint64 {
	if c.IsNull(i) {
		return ^uint64(0)
	}
	switch c.Kind {
	case KindInt, KindBool:
		return uint64(c.ints[i]) ^ (1 << 63) // order-preserving for signed ints
	case KindFloat:
		return FloatOrdinal(c.floats[i])
	case KindString:
		return uint64(c.dict.Rank(c.codes[i]))
	}
	return ^uint64(0)
}

// Dict exposes the string dictionary (nil for non-string columns).
func (c *Column) Dict() *Dict { return c.dict }

// Code returns the dictionary code at i for string columns; ok is false for
// NULLs or non-string columns.
func (c *Column) Code(i int) (uint32, bool) {
	if c.Kind != KindString || c.IsNull(i) {
		return 0, false
	}
	return c.codes[i], true
}

// IntAt returns the raw int payload at i; ok is false for NULLs or
// non-integer columns.
func (c *Column) IntAt(i int) (int64, bool) {
	if (c.Kind != KindInt && c.Kind != KindBool) || c.IsNull(i) {
		return 0, false
	}
	return c.ints[i], true
}

// MemoryBytes estimates the heap footprint of the column payload.
func (c *Column) MemoryBytes() int64 {
	var b int64
	b += int64(len(c.ints)) * 8
	b += int64(len(c.floats)) * 8
	b += int64(len(c.codes)) * 4
	b += int64(len(c.set)) * 8
	if c.dict != nil {
		for _, s := range c.dict.strs {
			b += int64(len(s)) + 16
		}
	}
	return b
}

// bitset is a simple fixed-size bitmap.
type bitset []uint64

func newBitset(n int) bitset { return make(bitset, (n+63)/64) }

func (b *bitset) grow(n int) {
	need := (n + 63) / 64
	if need > len(*b) {
		*b = append(*b, make([]uint64, need-len(*b))...)
	}
}

func (b bitset) put(i int)      { b[i/64] |= 1 << (uint(i) % 64) }
func (b bitset) clear(i int)    { b[i/64] &^= 1 << (uint(i) % 64) }
func (b bitset) has(i int) bool { return b[i/64]&(1<<(uint(i)%64)) != 0 }
