package pred

import (
	"testing"
	"testing/quick"

	"github.com/aplusdb/aplus/internal/storage"
)

func TestTermImpliesIdentical(t *testing.T) {
	a := VarTerm(VarBound, "date", LT, VarAdj, "date")
	b := VarTerm(VarBound, "date", LT, VarAdj, "date")
	if !TermImplies(a, b) {
		t.Error("identical var-var terms should imply each other")
	}
	// Flipped form is identical after normalization.
	c := VarTerm(VarAdj, "date", GT, VarBound, "date")
	if !TermImplies(c, b) {
		t.Error("flipped term should normalize to identical")
	}
}

func TestTermImpliesRange(t *testing.T) {
	amt := func(op Op, v int64) Term { return ConstTerm(VarAdj, "amt", op, storage.Int(v)) }
	cases := []struct {
		t, u Term
		want bool
	}{
		// The paper's example: amt>15000 implies amt>10000.
		{amt(GT, 15000), amt(GT, 10000), true},
		{amt(GT, 10000), amt(GT, 15000), false},
		{amt(GT, 10000), amt(GT, 10000), true},
		{amt(GE, 10000), amt(GT, 10000), false}, // >=10000 allows 10000
		{amt(GT, 10000), amt(GE, 10000), true},
		{amt(EQ, 12000), amt(GT, 10000), true},
		{amt(EQ, 9000), amt(GT, 10000), false},
		{amt(LT, 5), amt(LT, 10), true},
		{amt(LT, 10), amt(LT, 5), false},
		{amt(LE, 10), amt(LT, 10), false},
		{amt(LT, 10), amt(LE, 10), true},
		{amt(EQ, 7), amt(EQ, 7), true},
		{amt(EQ, 7), amt(EQ, 8), false},
		// Different properties never imply.
		{ConstTerm(VarAdj, "amt", GT, storage.Int(5)), ConstTerm(VarAdj, "date", GT, storage.Int(1)), false},
		// Different vars never imply.
		{ConstTerm(VarAdj, "amt", GT, storage.Int(5)), ConstTerm(VarBound, "amt", GT, storage.Int(1)), false},
		// NE only via identity.
		{amt(NE, 5), amt(NE, 5), true},
		{amt(NE, 5), amt(NE, 6), false},
	}
	for _, c := range cases {
		if got := TermImplies(c.t, c.u); got != c.want {
			t.Errorf("TermImplies(%v, %v) = %v, want %v", c.t, c.u, got, c.want)
		}
	}
}

// TestTermImpliesSemanticQuick cross-checks TermImplies against brute-force
// evaluation over a sample of values: if t implies u, every value
// satisfying t must satisfy u.
func TestTermImpliesSemanticQuick(t *testing.T) {
	ops := []Op{EQ, LT, LE, GT, GE}
	f := func(aOp, bOp uint8, aC, bC int8, sample int16) bool {
		ta := ConstTerm(VarAdj, "x", ops[int(aOp)%len(ops)], storage.Int(int64(aC)))
		tb := ConstTerm(VarAdj, "x", ops[int(bOp)%len(ops)], storage.Int(int64(bC)))
		if !TermImplies(ta, tb) {
			return true // only soundness is asserted
		}
		v := storage.Int(int64(sample))
		satA := Compare(v, ta.Op, ta.Const)
		satB := Compare(v, tb.Op, tb.Const)
		return !satA || satB
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestSubsumes(t *testing.T) {
	idx := Predicate{}.
		And(ConstTerm(VarAdj, "currency", EQ, storage.Str("USD"))).
		And(ConstTerm(VarAdj, "amt", GT, storage.Int(10000)))
	// Query with a tighter range subsumes.
	q := Predicate{}.
		And(ConstTerm(VarAdj, "currency", EQ, storage.Str("USD"))).
		And(ConstTerm(VarAdj, "amt", GT, storage.Int(15000)))
	if !Subsumes(idx, q) {
		t.Error("index should serve the tighter query")
	}
	// Query missing the currency term cannot use the index.
	q2 := Predicate{}.And(ConstTerm(VarAdj, "amt", GT, storage.Int(15000)))
	if Subsumes(idx, q2) {
		t.Error("index must not serve a query without the currency constraint")
	}
	// Query with a looser range cannot use the index.
	q3 := Predicate{}.
		And(ConstTerm(VarAdj, "currency", EQ, storage.Str("USD"))).
		And(ConstTerm(VarAdj, "amt", GT, storage.Int(5000)))
	if Subsumes(idx, q3) {
		t.Error("looser query range must not be served")
	}
	// The trivial index (no predicate) serves everything.
	if !Subsumes(Predicate{}, q2) {
		t.Error("empty index predicate subsumes all queries")
	}
}

func TestResidual(t *testing.T) {
	idx := Predicate{}.And(ConstTerm(VarAdj, "amt", GT, storage.Int(10000)))
	q := Predicate{}.
		And(ConstTerm(VarAdj, "amt", GT, storage.Int(15000))).
		And(ConstTerm(VarAdj, "currency", EQ, storage.Str("USD")))
	r := Residual(q, idx)
	// amt>15000 is NOT guaranteed by amt>10000, so both terms remain.
	if len(r.Terms) != 2 {
		t.Fatalf("residual = %v, want both terms", r)
	}
	// With an exactly matching index term, only currency remains.
	idx2 := Predicate{}.And(ConstTerm(VarAdj, "amt", GT, storage.Int(15000)))
	r2 := Residual(q, idx2)
	if len(r2.Terms) != 1 || r2.Terms[0].Left.Prop != "currency" {
		t.Fatalf("residual = %v, want currency only", r2)
	}
	// Index term amt>20000 implies amt>15000: the query term is guaranteed.
	idx3 := Predicate{}.And(ConstTerm(VarAdj, "amt", GT, storage.Int(20000)))
	r3 := Residual(q, idx3)
	if len(r3.Terms) != 1 {
		t.Fatalf("residual = %v, want currency only", r3)
	}
}

func TestSubsumesVarVarTerms(t *testing.T) {
	moneyFlow := Predicate{}.
		And(VarTerm(VarBound, "date", LT, VarAdj, "date")).
		And(VarTerm(VarBound, "amt", GT, VarAdj, "amt"))
	q := Predicate{}.
		And(VarTerm(VarBound, "date", LT, VarAdj, "date")).
		And(VarTerm(VarBound, "amt", GT, VarAdj, "amt")).
		And(ConstTerm(VarAdj, "amt", LT, storage.Int(100)))
	if !Subsumes(moneyFlow, q) {
		t.Error("MoneyFlow index should serve the query with extra terms")
	}
	if Subsumes(q, moneyFlow) {
		t.Error("reverse direction must fail")
	}
	res := Residual(q, moneyFlow)
	if len(res.Terms) != 1 || res.Terms[0].Op != LT {
		t.Errorf("residual = %v, want the amt<100 term", res)
	}
}

func TestIntervalWithin(t *testing.T) {
	mk := func(lo, hi int64, loOpen, hiOpen bool) ivl {
		return ivl{lo: storage.Int(lo), hi: storage.Int(hi), loOpen: loOpen, hiOpen: hiOpen}
	}
	if !mk(5, 10, false, false).within(ivl{lo: storage.Int(0)}) {
		t.Error("[5,10] should be within [0,inf)")
	}
	if mk(5, 10, false, false).within(ivl{lo: storage.Int(6)}) {
		t.Error("[5,10] should not be within [6,inf)")
	}
}
