package pred

import (
	"testing"

	"github.com/aplusdb/aplus/internal/storage"
)

func TestEvalConstTerms(t *testing.T) {
	g := storage.ExampleGraph()
	// t4 is a Wire of 200 EUR from v1.
	ctx := EdgeCtx{G: g, Adj: storage.Transfer(4)}
	cases := []struct {
		term Term
		want bool
	}{
		{ConstTerm(VarAdj, "amt", GT, storage.Int(100)), true},
		{ConstTerm(VarAdj, "amt", GT, storage.Int(200)), false},
		{ConstTerm(VarAdj, "amt", GE, storage.Int(200)), true},
		{ConstTerm(VarAdj, "currency", EQ, storage.Str("€")), true},
		{ConstTerm(VarAdj, PropLabel, EQ, storage.Str(storage.LabelWire)), true},
		{ConstTerm(VarAdj, PropLabel, EQ, storage.Str(storage.LabelDeposit)), false},
		{ConstTerm(VarSrc, "city", EQ, storage.Str("SF")), true},
		{ConstTerm(VarDst, "city", EQ, storage.Str("BOS")), true},
		{ConstTerm(VarSrc, PropID, LT, storage.Int(3)), true},
		{ConstTerm(VarAdj, "missing", EQ, storage.Int(1)), false}, // NULL fails
	}
	for _, c := range cases {
		p := Predicate{}.And(c.term)
		if got := p.Eval(ctx); got != c.want {
			t.Errorf("Eval(%v) = %v, want %v", c.term, got, c.want)
		}
	}
}

func TestEvalBoundEdgeTerms(t *testing.T) {
	g := storage.ExampleGraph()
	// MoneyFlow predicate: eb.date < eadj.date AND eb.amt > eadj.amt.
	p := Predicate{}.
		And(VarTerm(VarBound, "date", LT, VarAdj, "date")).
		And(VarTerm(VarBound, "amt", GT, VarAdj, "amt"))
	// t13 bound, t19 adjacent: satisfied.
	ctx := EdgeCtx{G: g, Adj: storage.Transfer(19), Bound: storage.Transfer(13), HasBound: true}
	if !p.Eval(ctx) {
		t.Error("t19 should satisfy the MoneyFlow predicate for t13")
	}
	// t13 bound, t14 adjacent: amount 10 is not < 10.
	ctx.Adj = storage.Transfer(14)
	if p.Eval(ctx) {
		t.Error("t14 should not satisfy (amount not smaller)")
	}
	// Without a bound edge, bound terms are NULL and fail.
	ctx.HasBound = false
	if p.Eval(ctx) {
		t.Error("missing bound edge must fail")
	}
}

func TestResolveNbr(t *testing.T) {
	p := Predicate{}.And(ConstTerm(VarNbr, "city", EQ, storage.Str("SF")))
	fw := p.ResolveNbr(true)
	if fw.Terms[0].Left.Var != VarDst {
		t.Errorf("forward vnbr should resolve to vd, got %v", fw.Terms[0].Left.Var)
	}
	bw := p.ResolveNbr(false)
	if bw.Terms[0].Left.Var != VarSrc {
		t.Errorf("backward vnbr should resolve to vs, got %v", bw.Terms[0].Left.Var)
	}
	// Variable-variable term with vnbr on the right.
	q := Predicate{}.And(VarTerm(VarBound, "amt", GT, VarNbr, "x"))
	r := q.ResolveNbr(true)
	found := false
	for _, term := range r.Terms {
		if term.Left.Var == VarDst || term.Right.Var == VarDst {
			found = true
		}
		if term.Left.Var == VarNbr || term.Right.Var == VarNbr {
			t.Error("vnbr survived resolution")
		}
	}
	if !found {
		t.Error("vd not substituted")
	}
}

func TestNormalizeFlipsSides(t *testing.T) {
	// eadj.date > eb.date normalizes to eb.date < eadj.date (lower Var left).
	term := VarTerm(VarAdj, "date", GT, VarBound, "date")
	n := term.Normalize()
	if n.Left.Var != VarAdj {
		// VarAdj(1) < VarBound(5): left should stay VarAdj.
		t.Fatalf("unexpected normalize result %v", n)
	}
	term2 := VarTerm(VarBound, "date", LT, VarAdj, "date")
	n2 := term2.Normalize()
	if !termEqual(n.Normalize(), n2.Normalize()) {
		t.Errorf("normalized forms differ: %v vs %v", n, n2)
	}
}

func TestPredicateString(t *testing.T) {
	p := Predicate{}.
		And(ConstTerm(VarAdj, "amt", GT, storage.Int(5))).
		And(VarTerm(VarBound, "date", LT, VarAdj, "date"))
	if p.String() == "" || (Predicate{}).String() != "true" {
		t.Error("String rendering broken")
	}
}

func TestCompareNullStrict(t *testing.T) {
	if Compare(storage.NullValue, EQ, storage.NullValue) {
		t.Error("NULL = NULL must be false")
	}
	if Compare(storage.Int(1), NE, storage.NullValue) {
		t.Error("1 <> NULL must be false (strict)")
	}
}
