package pred

import "github.com/aplusdb/aplus/internal/storage"

// TermImplies reports whether term t logically implies term u (every
// binding satisfying t satisfies u). Two forms are recognised, mirroring
// the paper's "limited form of predicate subsumption checking":
//
//   - identical (normalized) terms;
//   - range subsumption between two variable-vs-constant comparisons on the
//     same property: e.g. amt > 15000 implies amt > 10000.
func TermImplies(t, u Term) bool {
	t, u = t.Normalize(), u.Normalize()
	if termEqual(t, u) {
		return true
	}
	// Banded variable-variable range subsumption on the same references:
	// L < R+a implies L < R+b when a <= b, and symmetrically for >.
	if !t.IsConst() && !u.IsConst() && t.Left == u.Left && t.Right == u.Right {
		return shiftImplies(t.Op, t.Shift, u.Op, u.Shift)
	}
	if !t.IsConst() || !u.IsConst() || t.Left != u.Left {
		return false
	}
	ti, ok := interval(t)
	if !ok {
		return false
	}
	ui, ok := interval(u)
	if !ok {
		return false
	}
	return ti.within(ui)
}

func termEqual(a, b Term) bool {
	if a.Left != b.Left || a.Op != b.Op || a.Right != b.Right {
		return false
	}
	if a.IsConst() {
		return a.Const.Compare(b.Const) == 0 && a.Const.Kind == b.Const.Kind
	}
	return a.Shift == b.Shift
}

// shiftImplies decides implication between banded comparisons L op (R + s).
func shiftImplies(tOp Op, tS int64, uOp Op, uS int64) bool {
	switch tOp {
	case LT:
		switch uOp {
		case LT, LE:
			return tS <= uS
		}
	case LE:
		switch uOp {
		case LE:
			return tS <= uS
		case LT:
			return tS < uS
		}
	case GT:
		switch uOp {
		case GT, GE:
			return tS >= uS
		}
	case GE:
		switch uOp {
		case GE:
			return tS >= uS
		case GT:
			return tS > uS
		}
	case EQ:
		switch uOp {
		case LE:
			return tS <= uS
		case GE:
			return tS >= uS
		case LT:
			return tS < uS
		case GT:
			return tS > uS
		}
	}
	return false
}

// ivl is a possibly open-ended interval over values.
type ivl struct {
	lo, hi         storage.Value // NULL = unbounded
	loOpen, hiOpen bool
}

func interval(t Term) (ivl, bool) {
	c := t.Const
	switch t.Op {
	case EQ:
		return ivl{lo: c, hi: c}, true
	case LT:
		return ivl{hi: c, hiOpen: true}, true
	case LE:
		return ivl{hi: c}, true
	case GT:
		return ivl{lo: c, loOpen: true}, true
	case GE:
		return ivl{lo: c}, true
	default: // NE is not an interval
		return ivl{}, false
	}
}

// within reports whether a ⊆ b.
func (a ivl) within(b ivl) bool {
	if !b.lo.IsNull() {
		if a.lo.IsNull() {
			return false
		}
		switch a.lo.Compare(b.lo) {
		case -1:
			return false
		case 0:
			if b.loOpen && !a.loOpen {
				return false
			}
		}
	}
	if !b.hi.IsNull() {
		if a.hi.IsNull() {
			return false
		}
		switch a.hi.Compare(b.hi) {
		case 1:
			return false
		case 0:
			if b.hiOpen && !a.hiOpen {
				return false
			}
		}
	}
	return true
}

// Implies reports whether conjunction p implies term u: some term of p
// implies u.
func (p Predicate) Implies(u Term) bool {
	for _, t := range p.Terms {
		if TermImplies(t, u) {
			return true
		}
	}
	return false
}

// Subsumes reports whether an index whose lists satisfy p can serve a query
// extension with predicate q: q must imply every term of p, i.e. no edge
// that q needs is missing from the index (Section IV-A: "the predicates
// p_l,j satisfied in these lists subsume the predicate p_Q").
func Subsumes(indexPred, queryPred Predicate) bool {
	for _, t := range indexPred.Terms {
		if !queryPred.Implies(t) {
			return false
		}
	}
	return true
}

// Residual returns the query terms not already guaranteed by the index
// predicate — the terms a FILTER operator still has to evaluate after the
// index lookup.
func Residual(queryPred, indexPred Predicate) Predicate {
	var out Predicate
	for _, u := range queryPred.Terms {
		if !indexPred.Implies(u) {
			out.Terms = append(out.Terms, u)
		}
	}
	return out
}
