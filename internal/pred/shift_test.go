package pred

import (
	"testing"
	"testing/quick"

	"github.com/aplusdb/aplus/internal/storage"
)

func TestShiftEval(t *testing.T) {
	g := storage.ExampleGraph()
	// t13: amt 10, date 13. t19: amt 5, date 19.
	// eb.amt < eadj.amt + 100  with eb=t13 (10), eadj=t19 (5): 10 < 105.
	p := Predicate{}.And(VarTermShift(VarBound, storage.PropAmount, LT, VarAdj, storage.PropAmount, 100))
	ctx := EdgeCtx{G: g, Adj: storage.Transfer(19), Bound: storage.Transfer(13), HasBound: true}
	if !p.Eval(ctx) {
		t.Error("banded predicate should hold")
	}
	// With shift 4: 10 < 9 fails.
	p2 := Predicate{}.And(VarTermShift(VarBound, storage.PropAmount, LT, VarAdj, storage.PropAmount, 4))
	if p2.Eval(ctx) {
		t.Error("tight band should fail")
	}
}

func TestShiftNormalizeRoundTrip(t *testing.T) {
	// L < R+s  <=>  R > L-s: normalized forms of both must be equal.
	a := VarTermShift(VarBound, "amt", LT, VarAdj, "amt", 100)  // eb.amt < eadj.amt+100
	b := VarTermShift(VarAdj, "amt", GT, VarBound, "amt", -100) // eadj.amt > eb.amt-100
	if !termEqual(a.Normalize(), b.Normalize()) {
		t.Errorf("normalized forms differ: %v vs %v", a.Normalize(), b.Normalize())
	}
}

func TestShiftImplication(t *testing.T) {
	band := func(op Op, s int64) Term { return VarTermShift(VarBound, "amt", op, VarAdj, "amt", s) }
	cases := []struct {
		t, u Term
		want bool
	}{
		// Tighter bands imply looser ones.
		{band(LT, 50), band(LT, 100), true},
		{band(LT, 100), band(LT, 50), false},
		{band(LT, 100), band(LT, 100), true},
		{band(LE, 50), band(LT, 100), true},
		{band(LE, 100), band(LT, 100), false},
		{band(LT, 100), band(LE, 100), true},
		{band(GT, 100), band(GT, 50), true},
		{band(GT, 50), band(GT, 100), false},
		{band(GE, 100), band(GT, 50), true},
		{band(EQ, 50), band(LT, 100), true},
		{band(EQ, 50), band(GT, 100), false},
		{band(EQ, 50), band(LE, 50), true},
		{band(EQ, 50), band(GE, 50), true},
	}
	for _, c := range cases {
		if got := TermImplies(c.t, c.u); got != c.want {
			t.Errorf("TermImplies(%v, %v) = %v, want %v", c.t, c.u, got, c.want)
		}
	}
}

// TestShiftImpliesSemanticQuick checks soundness of banded implications by
// evaluating both terms over sampled value pairs.
func TestShiftImpliesSemanticQuick(t *testing.T) {
	ops := []Op{EQ, LT, LE, GT, GE}
	f := func(aOp, bOp uint8, aS, bS int8, x, y int16) bool {
		ta := VarTermShift(VarBound, "v", ops[int(aOp)%len(ops)], VarAdj, "v", int64(aS))
		tb := VarTermShift(VarBound, "v", ops[int(bOp)%len(ops)], VarAdj, "v", int64(bS))
		if !TermImplies(ta, tb) {
			return true
		}
		l, r := storage.Int(int64(x)), storage.Int(int64(y))
		satA := Compare(l, ta.Op, ApplyShift(r, ta.Shift))
		satB := Compare(l, tb.Op, ApplyShift(r, tb.Shift))
		return !satA || satB
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Error(err)
	}
}

func TestApplyShift(t *testing.T) {
	if v := ApplyShift(storage.Int(5), 3); !v.Equal(storage.Int(8)) {
		t.Error("int shift")
	}
	if v := ApplyShift(storage.Float(1.5), 2); !v.Equal(storage.Float(3.5)) {
		t.Error("float shift")
	}
	if v := ApplyShift(storage.Str("x"), 2); !v.Equal(storage.Str("x")) {
		t.Error("string shift should pass through")
	}
	if v := ApplyShift(storage.NullValue, 2); !v.IsNull() {
		t.Error("null shift should stay null")
	}
}

func TestShiftString(t *testing.T) {
	term := VarTermShift(VarBound, "amt", LT, VarAdj, "amt", 100)
	if s := term.String(); s != "eb.amt < eadj.amt+100" {
		t.Errorf("String = %q", s)
	}
}
