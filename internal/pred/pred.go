// Package pred implements the predicate language of A+ index views and
// queries: conjunctions of comparisons over properties of the adjacent edge,
// its endpoint vertices, and (for 2-hop views) the bound edge. It also
// implements the two predicate-subsumption checks the paper's optimizer uses
// to decide whether an index can answer a query extension (Section IV-A):
// conjunctive subsumption and range subsumption.
package pred

import (
	"fmt"
	"strings"

	"github.com/aplusdb/aplus/internal/storage"
)

// Var identifies which entity a term's operand belongs to, using the
// paper's reserved keywords.
type Var uint8

const (
	// VarNone marks a constant operand.
	VarNone Var = iota
	// VarAdj is the adjacent edge (the paper's "eadj").
	VarAdj
	// VarNbr is the neighbour vertex ("vnbr").
	VarNbr
	// VarSrc is the source vertex of the adjacent edge ("vs").
	VarSrc
	// VarDst is the destination vertex of the adjacent edge ("vd").
	VarDst
	// VarBound is the bound edge of a 2-hop view ("eb").
	VarBound
)

// String implements fmt.Stringer.
func (v Var) String() string {
	switch v {
	case VarAdj:
		return "eadj"
	case VarNbr:
		return "vnbr"
	case VarSrc:
		return "vs"
	case VarDst:
		return "vd"
	case VarBound:
		return "eb"
	default:
		return "const"
	}
}

// PropLabel is the pseudo-property that resolves to the entity's label.
const PropLabel = "label"

// PropID is the pseudo-property that resolves to the entity's ID.
const PropID = "ID"

// Op is a comparison operator.
type Op uint8

// Comparison operators.
const (
	EQ Op = iota
	NE
	LT
	LE
	GT
	GE
)

// String implements fmt.Stringer.
func (o Op) String() string {
	switch o {
	case EQ:
		return "="
	case NE:
		return "<>"
	case LT:
		return "<"
	case LE:
		return "<="
	case GT:
		return ">"
	case GE:
		return ">="
	}
	return "?"
}

// Flip returns the operator with sides exchanged (a < b  <=>  b > a).
func (o Op) Flip() Op {
	switch o {
	case LT:
		return GT
	case LE:
		return GE
	case GT:
		return LT
	case GE:
		return LE
	}
	return o
}

// Ref names one side of a comparison: a property of a variable.
type Ref struct {
	Var  Var
	Prop string
}

// String implements fmt.Stringer.
func (r Ref) String() string { return r.Var.String() + "." + r.Prop }

// Term is a single comparison. Either Right (a variable reference) or Const
// is the right operand; Right.Var == VarNone selects Const. Shift adds a
// constant to the right variable's numeric value, supporting the paper's
// banded predicates like "eb.amt < eadj.amt + α".
type Term struct {
	Left  Ref
	Op    Op
	Right Ref
	Const storage.Value
	Shift int64
}

// ConstTerm builds a variable-vs-constant comparison.
func ConstTerm(v Var, prop string, op Op, c storage.Value) Term {
	return Term{Left: Ref{v, prop}, Op: op, Const: c}
}

// VarTerm builds a variable-vs-variable comparison.
func VarTerm(lv Var, lprop string, op Op, rv Var, rprop string) Term {
	return Term{Left: Ref{lv, lprop}, Op: op, Right: Ref{rv, rprop}}
}

// VarTermShift builds a banded variable-vs-variable comparison:
// left op (right + shift).
func VarTermShift(lv Var, lprop string, op Op, rv Var, rprop string, shift int64) Term {
	return Term{Left: Ref{lv, lprop}, Op: op, Right: Ref{rv, rprop}, Shift: shift}
}

// IsConst reports whether the right operand is a constant.
func (t Term) IsConst() bool { return t.Right.Var == VarNone }

// UsesBound reports whether the term references the bound edge — required
// of every edge-partitioned view predicate (Section III-B2).
func (t Term) UsesBound() bool {
	return t.Left.Var == VarBound || t.Right.Var == VarBound
}

// Normalize rewrites the term so constants sit on the right and, for
// variable-variable terms, the lower (Var, Prop) reference sits on the
// left. Subsumption and equality checks assume normalized terms.
// Flipping moves the shift to the other side with its sign negated:
// L op R+s  <=>  R op' L-s.
func (t Term) Normalize() Term {
	if t.IsConst() {
		return t
	}
	if t.Right.Var < t.Left.Var || (t.Right.Var == t.Left.Var && t.Right.Prop < t.Left.Prop) {
		return Term{Left: t.Right, Op: t.Op.Flip(), Right: t.Left, Shift: -t.Shift}
	}
	return t
}

// String implements fmt.Stringer.
func (t Term) String() string {
	if t.IsConst() {
		return fmt.Sprintf("%s %s %s", t.Left, t.Op, t.Const)
	}
	if t.Shift != 0 {
		return fmt.Sprintf("%s %s %s%+d", t.Left, t.Op, t.Right, t.Shift)
	}
	return fmt.Sprintf("%s %s %s", t.Left, t.Op, t.Right)
}

// Predicate is a conjunction of terms. The zero value is the always-true
// predicate.
type Predicate struct {
	Terms []Term
}

// And returns a predicate with t appended.
func (p Predicate) And(t Term) Predicate {
	terms := make([]Term, len(p.Terms)+1)
	copy(terms, p.Terms)
	terms[len(p.Terms)] = t.Normalize()
	return Predicate{Terms: terms}
}

// IsTrue reports whether the predicate has no terms.
func (p Predicate) IsTrue() bool { return len(p.Terms) == 0 }

// String implements fmt.Stringer.
func (p Predicate) String() string {
	if p.IsTrue() {
		return "true"
	}
	parts := make([]string, len(p.Terms))
	for i, t := range p.Terms {
		parts[i] = t.String()
	}
	return strings.Join(parts, " AND ")
}

// EdgeCtx supplies the entity bindings needed to evaluate a predicate
// against one adjacency entry.
type EdgeCtx struct {
	G   *storage.Graph
	Adj storage.EdgeID
	// Bound is the bound edge for 2-hop views; HasBound gates it.
	Bound    storage.EdgeID
	HasBound bool
}

// value resolves a variable reference.
func (c EdgeCtx) value(r Ref) storage.Value {
	switch r.Var {
	case VarAdj:
		return edgeValue(c.G, c.Adj, r.Prop)
	case VarBound:
		if !c.HasBound {
			return storage.NullValue
		}
		return edgeValue(c.G, c.Bound, r.Prop)
	case VarSrc:
		return vertexValue(c.G, c.G.Src(c.Adj), r.Prop)
	case VarDst:
		return vertexValue(c.G, c.G.Dst(c.Adj), r.Prop)
	case VarNbr:
		// The neighbour of an adjacency entry depends on direction; the
		// index layer resolves VarNbr to VarSrc or VarDst before
		// evaluation. Seeing it here is a bug.
		panic("pred: unresolved vnbr reference; resolve direction first")
	}
	return storage.NullValue
}

func edgeValue(g *storage.Graph, e storage.EdgeID, prop string) storage.Value {
	switch prop {
	case PropLabel:
		return storage.Str(g.Catalog().EdgeLabelName(g.EdgeLabel(e)))
	case PropID:
		return storage.Int(int64(e))
	default:
		return g.EdgeProp(e, prop)
	}
}

func vertexValue(g *storage.Graph, v storage.VertexID, prop string) storage.Value {
	switch prop {
	case PropLabel:
		return storage.Str(g.Catalog().VertexLabelName(g.VertexLabel(v)))
	case PropID:
		return storage.Int(int64(v))
	default:
		return g.VertexProp(v, prop)
	}
}

// Eval evaluates the predicate under ctx. NULL operands fail every
// comparison except NE-against-non-null semantics are deliberately strict:
// any NULL operand makes the term false.
func (p Predicate) Eval(ctx EdgeCtx) bool {
	for _, t := range p.Terms {
		if !evalTerm(t, ctx) {
			return false
		}
	}
	return true
}

func evalTerm(t Term, ctx EdgeCtx) bool {
	l := ctx.value(t.Left)
	var r storage.Value
	if t.IsConst() {
		r = t.Const
	} else {
		r = ApplyShift(ctx.value(t.Right), t.Shift)
	}
	return Compare(l, t.Op, r)
}

// ApplyShift adds a constant to a numeric value (NULL and non-numeric
// values pass through and will fail the comparison).
func ApplyShift(v storage.Value, shift int64) storage.Value {
	if shift == 0 {
		return v
	}
	switch v.Kind {
	case storage.KindInt:
		return storage.Int(v.I + shift)
	case storage.KindFloat:
		return storage.Float(v.F + float64(shift))
	default:
		return v
	}
}

// Compare applies op to two values with NULL-strict semantics.
func Compare(l storage.Value, op Op, r storage.Value) bool {
	if l.IsNull() || r.IsNull() {
		return false
	}
	c := l.Compare(r)
	switch op {
	case EQ:
		return c == 0
	case NE:
		return c != 0
	case LT:
		return c < 0
	case LE:
		return c <= 0
	case GT:
		return c > 0
	case GE:
		return c >= 0
	}
	return false
}

// ResolveNbr rewrites VarNbr references to the concrete endpoint var: VarDst
// when the adjacency is forward (neighbour is the edge's destination) or
// VarSrc when backward. Index definitions keep VarNbr; evaluation paths use
// the resolved form.
func (p Predicate) ResolveNbr(forward bool) Predicate {
	target := VarDst
	if !forward {
		target = VarSrc
	}
	out := Predicate{Terms: make([]Term, len(p.Terms))}
	for i, t := range p.Terms {
		if t.Left.Var == VarNbr {
			t.Left.Var = target
		}
		if t.Right.Var == VarNbr {
			t.Right.Var = target
		}
		out.Terms[i] = t.Normalize()
	}
	return out
}
