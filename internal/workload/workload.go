// Package workload defines the three evaluation workloads of the paper:
// labelled subgraph queries SQ1–SQ13 (Section V-B), the Twitter MagicRecs
// recommendation queries MR1–MR3 (Section V-C1, Figure 4), and the
// financial fraud-detection queries MF1–MF5 (Section V-C2/V-D, Figure 5).
package workload

import "fmt"

// Query is a named openCypher query.
type Query struct {
	Name   string
	Cypher string
}

// SQ returns the labelled subgraph query workload. Every query vertex and
// edge carries a label (the Table II workload "also fixes vertex labels");
// labels are assigned cyclically from the dataset's V0..V(i-1) / E0..E(j-1)
// pools so that the same queries run against any G_{i,j}.
func SQ(vLabels, eLabels int) []Query {
	vl := func(i int) string { return fmt.Sprintf("V%d", i%max(vLabels, 1)) }
	el := func(i int) string { return fmt.Sprintf("E%d", i%max(eLabels, 1)) }
	return []Query{
		{"SQ1", fmt.Sprintf("MATCH (a:%s)-[e1:%s]->(b:%s)", vl(0), el(0), vl(1))},
		{"SQ2", fmt.Sprintf("MATCH (a:%s)-[e1:%s]->(b:%s)-[e2:%s]->(c:%s)", vl(0), el(0), vl(1), el(1), vl(0))},
		{"SQ3", fmt.Sprintf("MATCH (a:%s)-[e1:%s]->(b:%s)<-[e2:%s]-(c:%s)", vl(0), el(0), vl(1), el(0), vl(1))},
		{"SQ4", fmt.Sprintf("MATCH (a:%s)-[e1:%s]->(b:%s), (a)-[e2:%s]->(c:%s), (a)-[e3:%s]->(d:%s)",
			vl(0), el(0), vl(1), el(1), vl(0), el(0), vl(1))},
		{"SQ5", fmt.Sprintf("MATCH (a:%s)-[e1:%s]->(b:%s)-[e2:%s]->(c:%s)-[e3:%s]->(d:%s)",
			vl(0), el(0), vl(1), el(1), vl(0), el(0), vl(1))},
		{"SQ6", fmt.Sprintf("MATCH (a:%s)-[e1:%s]->(b:%s), (a)-[e2:%s]->(c:%s), (b)-[e3:%s]->(d:%s)",
			vl(0), el(0), vl(1), el(1), vl(0), el(1), vl(1))},
		{"SQ7", fmt.Sprintf("MATCH (a:%s)-[e1:%s]->(b:%s), (a)-[e2:%s]->(c:%s), (b)-[e3:%s]->(d:%s), (c)-[e4:%s]->(d)",
			vl(0), el(0), vl(1), el(0), vl(1), el(1), vl(0), el(1))},
		{"SQ8", fmt.Sprintf("MATCH (a:%s)-[e1:%s]->(b:%s)-[e2:%s]->(c:%s), (c)-[e3:%s]->(a)",
			vl(0), el(0), vl(0), el(0), vl(0), el(0))},
		{"SQ9", fmt.Sprintf("MATCH (a:%s)-[e1:%s]->(b:%s)-[e2:%s]->(c:%s), (c)-[e3:%s]->(a), (c)-[e4:%s]->(d:%s)",
			vl(0), el(0), vl(0), el(0), vl(0), el(0), el(1), vl(1))},
		{"SQ10", fmt.Sprintf("MATCH (a:%s)-[e1:%s]->(b:%s)-[e2:%s]->(c:%s)-[e3:%s]->(d:%s), (d)-[e4:%s]->(a)",
			vl(0), el(0), vl(1), el(0), vl(0), el(0), vl(1), el(0))},
		{"SQ11", fmt.Sprintf("MATCH (a:%s)-[e1:%s]->(b:%s)-[e2:%s]->(c:%s), (a)-[e3:%s]->(c), (b)-[e4:%s]->(d:%s), (c)-[e5:%s]->(d)",
			vl(0), el(0), vl(0), el(0), vl(0), el(0), el(0), vl(0), el(0))},
		{"SQ12", fmt.Sprintf("MATCH (a:%s)-[e1:%s]->(b:%s)-[e2:%s]->(c:%s)-[e3:%s]->(d:%s)-[e4:%s]->(f:%s), (f)-[e5:%s]->(a)",
			vl(0), el(0), vl(0), el(0), vl(0), el(0), vl(0), el(0), vl(0), el(0))},
		{"SQ13", fmt.Sprintf("MATCH (a:%s)-[e1:%s]->(b:%s)-[e2:%s]->(c:%s)-[e3:%s]->(d:%s)-[e4:%s]->(f:%s)-[e5:%s]->(h:%s)",
			vl(0), el(0), vl(1), el(1), vl(0), el(0), vl(1), el(1), vl(0), el(0), vl(1))},
	}
}

// MR returns the MagicRecs workload (Figure 4): a user a1 recently followed
// a2..ak (edges with time < alpha), and the queries look for their common
// followers. a1MaxID > 0 anchors a1 to the first a1MaxID vertices; the
// paper anchors MR3 on its larger datasets, and at this reproduction's
// reduced scale (which preserves average degree, hence much higher density)
// the anchor keeps all three queries' result sizes proportionate.
func MR(alpha int64, a1MaxID int64) []Query {
	qs := []Query{
		{"MR1", fmt.Sprintf(
			"MATCH a1-[e1]->a2, a3-[e2]->a2 WHERE e1.time < %d, e2.time < %d", alpha, alpha)},
		{"MR2", fmt.Sprintf(
			"MATCH a1-[e1]->a2, a1-[e2]->a3, a4-[e3]->a2, a4-[e4]->a3 WHERE e1.time < %d, e2.time < %d", alpha, alpha)},
		{"MR3", fmt.Sprintf(
			"MATCH a1-[e1]->a2, a1-[e2]->a3, a1-[e3]->a4, a5-[e4]->a2, a5-[e5]->a3, a5-[e6]->a4 "+
				"WHERE e1.time < %d, e2.time < %d, e3.time < %d", alpha, alpha, alpha)},
	}
	if a1MaxID > 0 {
		for i := range qs {
			qs[i].Cypher += fmt.Sprintf(", a1.ID < %d", a1MaxID)
		}
	}
	return qs
}

// MFParams parameterizes the fraud workload: Alpha is the "intermediate
// cut" bound of Pf picked at 5% selectivity, City is MF4's β constant,
// A3MaxID / A1MaxID anchor MF3 and MF5 as in Figure 5.
type MFParams struct {
	Alpha   int64
	City    string
	A3MaxID int64
	A1MaxID int64
}

// pf renders Pf(ei, ej) = ei.date < ej.date, ei.amt > ej.amt,
// ei.amt < ej.amt + alpha.
func pf(ei, ej string, alpha int64) string {
	return fmt.Sprintf("%s.date < %s.date, %s.amt > %s.amt, %s.amt < %s.amt + %d",
		ei, ej, ei, ej, ei, ej, alpha)
}

// MF returns the fraud-detection workload (Figure 5).
func MF(p MFParams) []Query {
	return []Query{
		{"MF1",
			"MATCH a1-[e1]->a2-[e2]->a3-[e3]->a4-[e4]->a1 " +
				"WHERE a1.acc = 'CQ', a2.acc = 'CQ', a3.acc = 'CQ', a4.acc = 'CQ', a2.city = a4.city"},
		{"MF2",
			"MATCH a1-[e1]->a2-[e2]->a3-[e3]->a4 " +
				"WHERE a1.city = a2.city, a2.city = a3.city, a3.city = a4.city"},
		{"MF3", fmt.Sprintf(
			"MATCH a1-[e1]->a2, a1-[e2]->a3, a1-[e4]->a4, a3-[e3]->a5 "+
				"WHERE a2.city = a4.city, a4.city = a5.city, a3.ID < %d, "+
				"a1.acc = 'CQ', a2.acc = 'CQ', a3.acc = 'CQ', a4.acc = 'CQ', a5.acc = 'SV', %s",
			p.A3MaxID, pf("e2", "e3", p.Alpha))},
		{"MF4", fmt.Sprintf(
			"MATCH a1-[e1]->a2-[e2]->a3, a1-[e3]->a4-[e4]->a5 "+
				"WHERE a1.city = '%s', a2.city = a4.city, a2.acc = 'CQ', a3.acc = 'CQ', "+
				"a4.acc = 'SV', a5.acc = 'SV', %s, %s",
			p.City, pf("e1", "e2", p.Alpha), pf("e3", "e4", p.Alpha))},
		{"MF5", fmt.Sprintf(
			"MATCH a1-[e1]->a2-[e2]->a3-[e3]->a4-[e4]->a5 "+
				"WHERE a1.ID < %d, a1.acc = 'CQ', a2.acc = 'CQ', a3.acc = 'CQ', a4.acc = 'CQ', a5.acc = 'CQ', "+
				"%s, %s, %s",
			p.A1MaxID, pf("e1", "e2", p.Alpha), pf("e2", "e3", p.Alpha), pf("e3", "e4", p.Alpha))},
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
