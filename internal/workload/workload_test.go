package workload

import (
	"strings"
	"testing"

	"github.com/aplusdb/aplus/internal/query"
)

func TestSQQueriesParseAndValidate(t *testing.T) {
	for _, labels := range [][2]int{{1, 1}, {2, 4}, {8, 2}, {4, 2}, {12, 2}} {
		qs := SQ(labels[0], labels[1])
		if len(qs) != 13 {
			t.Fatalf("SQ(%v) returned %d queries, want 13", labels, len(qs))
		}
		for _, q := range qs {
			qg, err := query.Parse(q.Cypher)
			if err != nil {
				t.Errorf("%s (labels %v): %v\n%s", q.Name, labels, err, q.Cypher)
				continue
			}
			// Every vertex and edge must carry a label (the Table II
			// workload fixes both).
			for _, v := range qg.Vertices {
				if v.Label == "" {
					t.Errorf("%s: unlabelled vertex %s", q.Name, v.Name)
				}
			}
			for _, e := range qg.Edges {
				if e.Label == "" {
					t.Errorf("%s: unlabelled edge %s", q.Name, e.Name)
				}
			}
		}
	}
}

func TestSQShapes(t *testing.T) {
	qs := SQ(2, 2)
	shapes := map[string]struct{ v, e int }{
		"SQ1":  {2, 1},
		"SQ2":  {3, 2},
		"SQ5":  {4, 3},
		"SQ7":  {4, 4}, // diamond
		"SQ8":  {3, 3}, // triangle
		"SQ10": {4, 4}, // square
		"SQ12": {5, 5}, // 5-cycle
		"SQ13": {6, 5}, // 5-path
	}
	for _, q := range qs {
		want, ok := shapes[q.Name]
		if !ok {
			continue
		}
		qg, err := query.Parse(q.Cypher)
		if err != nil {
			t.Fatalf("%s: %v", q.Name, err)
		}
		if len(qg.Vertices) != want.v || len(qg.Edges) != want.e {
			t.Errorf("%s: shape (%d,%d), want (%d,%d)",
				q.Name, len(qg.Vertices), len(qg.Edges), want.v, want.e)
		}
	}
}

func TestMRQueries(t *testing.T) {
	qs := MR(12345, 100)
	if len(qs) != 3 {
		t.Fatalf("MR returned %d queries", len(qs))
	}
	for i, q := range qs {
		qg, err := query.Parse(q.Cypher)
		if err != nil {
			t.Fatalf("%s: %v", q.Name, err)
		}
		// MRk has k recently-followed users: vertices = 1 + k + 1.
		wantV := 3 + i
		if i > 0 {
			wantV = 2*(i+1) + 1 - i // MR2: 4, MR3: 5
		}
		switch q.Name {
		case "MR1":
			wantV = 3
		case "MR2":
			wantV = 4
		case "MR3":
			wantV = 5
		}
		if len(qg.Vertices) != wantV {
			t.Errorf("%s: %d vertices, want %d", q.Name, len(qg.Vertices), wantV)
		}
		if !strings.Contains(q.Cypher, "a1.ID < 100") {
			t.Errorf("%s: anchor missing", q.Name)
		}
		if !strings.Contains(q.Cypher, "e1.time < 12345") {
			t.Errorf("%s: time predicate missing", q.Name)
		}
	}
	// Without anchor.
	for _, q := range MR(5, 0) {
		if strings.Contains(q.Cypher, "a1.ID") {
			t.Errorf("%s: unexpected anchor", q.Name)
		}
	}
}

func TestMFQueries(t *testing.T) {
	qs := MF(MFParams{Alpha: 100, City: "C7", A3MaxID: 50, A1MaxID: 60})
	if len(qs) != 5 {
		t.Fatalf("MF returned %d queries", len(qs))
	}
	for _, q := range qs {
		if _, err := query.Parse(q.Cypher); err != nil {
			t.Errorf("%s: %v\n%s", q.Name, err, q.Cypher)
		}
	}
	// The banded Pf term must appear wherever Pf is used.
	for _, name := range []string{"MF3", "MF4", "MF5"} {
		var cy string
		for _, q := range qs {
			if q.Name == name {
				cy = q.Cypher
			}
		}
		if !strings.Contains(cy, "+ 100") {
			t.Errorf("%s: banded alpha term missing", name)
		}
	}
	// MF1 carries the city equality; MF2 chains three.
	if !strings.Contains(qs[0].Cypher, "a2.city = a4.city") {
		t.Error("MF1 city equality missing")
	}
	if strings.Count(qs[1].Cypher, ".city = ") != 3 {
		t.Error("MF2 should chain three city equalities")
	}
}
