package exec

import (
	"fmt"
	"runtime/debug"
	"sync/atomic"
)

// StopReason says why a Governor stopped a query execution early.
type StopReason int32

const (
	// StopNone: the execution ran (or is running) to completion.
	StopNone StopReason = iota
	// StopCanceled: the caller's context was canceled.
	StopCanceled
	// StopTimeout: the query deadline (context deadline or MaxDuration)
	// expired.
	StopTimeout
	// StopICost: the execution read more adjacency-list entries than its
	// i-cost budget allows.
	StopICost
	// StopRows: the execution produced more matches than its row budget
	// allows.
	StopRows
)

// String implements fmt.Stringer.
func (r StopReason) String() string {
	switch r {
	case StopNone:
		return "none"
	case StopCanceled:
		return "canceled"
	case StopTimeout:
		return "timeout"
	case StopICost:
		return "i-cost budget"
	case StopRows:
		return "row budget"
	}
	return fmt.Sprintf("StopReason(%d)", int32(r))
}

// DefaultCheckEvery is the number of sink tuples a pipeline processes
// between governor polls. The poll itself is a handful of atomic ops, so
// the interval only has to keep the steady-state loop branch-light while
// bounding how far past a trip a hub-dominated tail can run.
const DefaultCheckEvery = 1024

// Governor coordinates cancellation, deadlines, and resource budgets for
// one query execution across all of its workers. A single Governor is
// shared by every worker Runtime of the execution: workers flush their
// locally accumulated i-cost and row counts into it at morsel boundaries
// and every CheckEvery sink tuples, check the budgets, and poll the stop
// flag — so cancellation latency is bounded by one morsel (plus CheckEvery
// tuples of a hub-dominated tail) and the steady-state loop stays
// allocation-free.
//
// The zero value of every field is "no limit"; a nil *Governor disables
// governance entirely (the default for direct exec callers).
type Governor struct {
	// MaxICost bounds the total adjacency-list entries the execution may
	// read across all workers (0 = unlimited). Enforcement granularity is
	// one flush interval, so a query may overshoot by up to one morsel's
	// work per worker before stopping.
	MaxICost int64
	// MaxRows bounds the total matches produced (counted matches for Count,
	// emitted rows for Execute; 0 = unlimited).
	MaxRows int64
	// CheckEvery overrides the number of sink tuples between governor polls
	// (0 = DefaultCheckEvery).
	CheckEvery int

	stop   atomic.Bool
	reason atomic.Int32
	icost  atomic.Int64
	rows   atomic.Int64
}

func (g *Governor) checkEvery() int {
	if g.CheckEvery <= 0 {
		return DefaultCheckEvery
	}
	return g.CheckEvery
}

// Trip requests that the execution stop with the given reason. The first
// trip wins; later ones keep the original reason. Safe from any goroutine
// (deadline watchers, admission controllers, the workers themselves).
func (g *Governor) Trip(r StopReason) {
	g.reason.CompareAndSwap(int32(StopNone), int32(r))
	g.stop.Store(true)
}

// Stopped reports whether the execution was (or is being) stopped early.
func (g *Governor) Stopped() bool { return g.stop.Load() }

// Reason returns why the execution stopped (StopNone when it was never
// tripped).
func (g *Governor) Reason() StopReason { return StopReason(g.reason.Load()) }

// ICostSeen returns the total i-cost flushed into the governor so far.
// After the pool drains it equals the execution's (possibly partial)
// i-cost; mid-flight it trails the true total by at most one flush
// interval per worker.
func (g *Governor) ICostSeen() int64 { return g.icost.Load() }

// RowsSeen returns the total produced rows flushed into the governor so
// far, with the same staleness bound as ICostSeen.
func (g *Governor) RowsSeen() int64 { return g.rows.Load() }

// addICost publishes a worker's i-cost delta and enforces MaxICost.
func (g *Governor) addICost(delta int64) {
	if t := g.icost.Add(delta); g.MaxICost > 0 && t > g.MaxICost {
		g.Trip(StopICost)
	}
}

// addRows publishes a worker's produced-row delta and enforces MaxRows.
func (g *Governor) addRows(delta int64) {
	if t := g.rows.Add(delta); g.MaxRows > 0 && t > g.MaxRows {
		g.Trip(StopRows)
	}
}

// PanicError is a panic recovered from a worker goroutine (or the serial
// execution path), converted to an error so a poisoned query surfaces as a
// failed call instead of a crashed process. Value is the recovered panic
// value and Stack the panicking goroutine's stack at recovery time.
type PanicError struct {
	Value any
	Stack []byte
}

// Error implements error.
func (e *PanicError) Error() string {
	return fmt.Sprintf("exec: query execution panicked: %v", e.Value)
}

// newPanicError captures the recovered value r and the current goroutine's
// stack. It must be called from inside the recovering deferred function.
func newPanicError(r any) *PanicError {
	return &PanicError{Value: r, Stack: debug.Stack()}
}
