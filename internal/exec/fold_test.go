package exec

// Tests for count pushdown: when a plan ends in pure unfiltered EXTENDs
// over slots bound earlier, Count folds the product of list lengths instead
// of enumerating. The fold must be invisible — identical counts AND
// identical i-cost versus full enumeration, at any worker count.

import (
	"testing"

	"github.com/aplusdb/aplus/internal/index"
	"github.com/aplusdb/aplus/internal/pred"
	"github.com/aplusdb/aplus/internal/storage"
)

// enumerate counts matches by streaming every binding (Execute never folds).
func enumerate(rt *Runtime, p *Plan) int64 {
	var n int64
	p.Execute(rt, func(*Binding) bool {
		n++
		return true
	})
	return n
}

// assertFoldParity checks Count (folded), Execute (enumerated), and
// CountParallel at 8 workers against each other, including i-cost.
func assertFoldParity(t *testing.T, s *index.Store, p *Plan) {
	t.Helper()
	rtEnum := NewRuntime(s)
	want := enumerate(rtEnum, p)

	rtFold := NewRuntime(s)
	got := p.Count(rtFold)
	if got != want {
		t.Errorf("folded Count = %d, enumerated = %d", got, want)
	}
	if rtFold.ICost != rtEnum.ICost {
		t.Errorf("folded ICost = %d, enumerated = %d", rtFold.ICost, rtEnum.ICost)
	}
	if rtFold.PredEvals != rtEnum.PredEvals {
		t.Errorf("folded PredEvals = %d, enumerated = %d", rtFold.PredEvals, rtEnum.PredEvals)
	}

	for _, workers := range []int{1, 8} {
		rtPar := NewRuntime(s)
		gotPar, err := p.CountParallel(rtPar, ParallelOptions{Workers: workers, MorselSize: 4})
		if err != nil {
			t.Fatalf("CountParallel(%d workers): %v", workers, err)
		}
		if gotPar != want {
			t.Errorf("CountParallel(%d workers) = %d, want %d", workers, gotPar, want)
		}
		if rtPar.ICost != rtEnum.ICost {
			t.Errorf("CountParallel(%d workers) ICost = %d, want %d", workers, rtPar.ICost, rtEnum.ICost)
		}
	}
}

// foldGraph has skewed fan-out and parallel edges so products and
// duplicate runs both matter.
func foldGraph(t testing.TB) *storage.Graph {
	t.Helper()
	g := storage.NewGraph()
	g.AddVertices(24, "A")
	add := func(src, dst int) {
		if _, err := g.AddEdge(storage.VertexID(src), storage.VertexID(dst), "W"); err != nil {
			t.Fatal(err)
		}
	}
	for v := 0; v < 24; v++ {
		deg := v % 5 // some vertices have empty lists
		for d := 1; d <= deg; d++ {
			add(v, (v+d)%24)
		}
	}
	// Parallel edges on a few hubs.
	add(3, 4)
	add(3, 4)
	add(7, 8)
	return g
}

func extend(owner, target, edge int) *ExtendIntersectOp {
	return &ExtendIntersectOp{TargetSlot: target, Lists: []ListRef{
		{Kind: ListPrimary, Dir: index.FW, OwnerVertexSlot: owner, EdgeSlot: edge},
	}}
}

func TestCountFoldStar(t *testing.T) {
	s, err := index.NewStore(foldGraph(t), index.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Star: every extension hangs off the scanned vertex — the whole tail
	// folds into a product of list lengths.
	p := &Plan{
		NumV: 4, NumE: 3,
		Ops: []Op{
			&ScanVertexOp{Slot: 0},
			extend(0, 1, 0),
			extend(0, 2, 1),
			extend(0, 3, 2),
		},
	}
	if got := p.countFoldStart(); got != 1 {
		t.Errorf("countFoldStart = %d, want 1", got)
	}
	assertFoldParity(t, s, p)
}

func TestCountFoldPathSuffix(t *testing.T) {
	s, err := index.NewStore(foldGraph(t), index.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Path: each extend depends on the previous one's target, so only the
	// last operator folds.
	p := &Plan{
		NumV: 4, NumE: 3,
		Ops: []Op{
			&ScanVertexOp{Slot: 0},
			extend(0, 1, 0),
			extend(1, 2, 1),
			extend(2, 3, 2),
		},
	}
	if got := p.countFoldStart(); got != 3 {
		t.Errorf("countFoldStart = %d, want 3", got)
	}
	assertFoldParity(t, s, p)
}

func TestCountFoldBlockedBySuffixOps(t *testing.T) {
	p := &Plan{
		NumV: 4, NumE: 3,
		Ops: []Op{
			&ScanVertexOp{Slot: 0},
			extend(0, 1, 0),
			&FilterOp{Terms: nil},
		},
	}
	// A trailing FILTER blocks folding entirely.
	if got := p.countFoldStart(); got != 3 {
		t.Errorf("countFoldStart with trailing filter = %d, want 3", got)
	}
	// An E/I (2 lists) never folds.
	p2 := &Plan{
		NumV: 3, NumE: 2,
		Ops: []Op{
			&ScanVertexOp{Slot: 0},
			&ExtendIntersectOp{TargetSlot: 1, Lists: []ListRef{
				{Kind: ListPrimary, Dir: index.FW, OwnerVertexSlot: 0, EdgeSlot: 0},
				{Kind: ListPrimary, Dir: index.BW, OwnerVertexSlot: 0, EdgeSlot: 1},
			}},
		},
	}
	if got := p2.countFoldStart(); got != 2 {
		t.Errorf("countFoldStart with E/I tail = %d, want 2", got)
	}
}

func TestCountFoldTriangleThenFanOut(t *testing.T) {
	s, err := index.NewStore(foldGraph(t), index.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// A triangle core followed by two independent fan-out extends: the two
	// trailing extends fold, the E/I does not.
	p := &Plan{
		NumV: 5, NumE: 5,
		Ops: []Op{
			&ScanVertexOp{Slot: 0},
			extend(0, 1, 0),
			&ExtendIntersectOp{TargetSlot: 2, Lists: []ListRef{
				{Kind: ListPrimary, Dir: index.FW, OwnerVertexSlot: 1, EdgeSlot: 1},
				{Kind: ListPrimary, Dir: index.BW, OwnerVertexSlot: 0, EdgeSlot: 2},
			}},
			extend(1, 3, 3),
			extend(2, 4, 4),
		},
	}
	if got := p.countFoldStart(); got != 3 {
		t.Errorf("countFoldStart = %d, want 3", got)
	}
	assertFoldParity(t, s, p)
}

func TestCountFoldParallelEdges(t *testing.T) {
	// Dedicated parallel-edge graph: every multiplicity must be counted.
	g := storage.NewGraph()
	g.AddVertices(3, "A")
	for i := 0; i < 3; i++ {
		g.AddEdge(0, 1, "W")
	}
	for i := 0; i < 2; i++ {
		g.AddEdge(0, 2, "W")
	}
	s, err := index.NewStore(g, index.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	p := &Plan{
		NumV: 3, NumE: 2,
		Ops: []Op{
			&ScanVertexOp{Slot: 0},
			extend(0, 1, 0),
			extend(0, 2, 1),
		},
	}
	rt := NewRuntime(s)
	// 5 out-edges of v0, squared: 25.
	if got := p.Count(rt); got != 25 {
		t.Errorf("folded parallel-edge count = %d, want 25", got)
	}
	assertFoldParity(t, s, p)
}

func TestCountFoldEPOwnerDependency(t *testing.T) {
	// An EP extend whose owner edge slot is bound by the previous suffix
	// op must break the fold there.
	s, err := index.NewStore(storage.ExampleGraph(), index.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	ep, err := s.CreateEdgePartitioned(index.EPDef{
		View: index.View2Hop{
			Name: "MF",
			Dir:  index.DestinationFW,
			Pred: pred.Predicate{}.
				And(pred.VarTerm(pred.VarBound, storage.PropDate, pred.LT, pred.VarAdj, storage.PropDate)),
		},
		Cfg: index.DefaultConfig(),
	})
	if err != nil {
		t.Fatal(err)
	}
	p := &Plan{
		NumV: 4, NumE: 3,
		Ops: []Op{
			&ScanVertexOp{Slot: 0},
			extend(0, 1, 0),
			&ExtendIntersectOp{TargetSlot: 2, Lists: []ListRef{
				{Kind: ListEP, EP: ep, OwnerEdgeSlot: 0, EdgeSlot: 1},
			}},
			&ExtendIntersectOp{TargetSlot: 3, Lists: []ListRef{
				{Kind: ListEP, EP: ep, OwnerEdgeSlot: 1, EdgeSlot: 2},
			}},
		},
	}
	// Op 3 reads edge slot 1, bound by op 2 — only op 3 folds... but op 2
	// reads edge slot 0 bound by op 1, which also blocks op 2 from joining
	// the suffix once op 3 is in it. The longest valid suffix is just op 3.
	if got := p.countFoldStart(); got != 3 {
		t.Errorf("countFoldStart = %d, want 3", got)
	}
	assertFoldParity(t, s, p)
}
