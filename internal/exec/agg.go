package exec

// Factorized aggregate evaluation: COUNT pushdown generalized to SUM, MIN,
// and MAX over integer vertex properties. The counting sink's fold boundary
// already proves that a trailing suffix of pure EXTENDs contributes only a
// product of list lengths; for aggregates the same boundary contributes the
// aggregated value times the match multiplicity. Aggregates are int64-only:
// integer addition, min, and max are associative and commutative, so any
// partitioning of the work (morsels, stolen sub-morsels, shards, folded vs
// enumerated suffixes) yields bit-identical results — the same merge proof
// as the metric counters.

import (
	"time"

	"github.com/aplusdb/aplus/internal/storage"
)

// AggKind selects the aggregate function.
type AggKind uint8

const (
	// AggCount counts matches (COUNT(*)); Slot and Prop are ignored.
	AggCount AggKind = iota
	// AggSum sums an integer vertex property over all matches.
	AggSum
	// AggMin takes the minimum of an integer vertex property over matches.
	AggMin
	// AggMax takes the maximum of an integer vertex property over matches.
	AggMax
)

// String implements fmt.Stringer.
func (k AggKind) String() string {
	switch k {
	case AggCount:
		return "count"
	case AggSum:
		return "sum"
	case AggMin:
		return "min"
	case AggMax:
		return "max"
	}
	return "agg?"
}

// AggSpec names what to aggregate: the function, the vertex binding slot of
// the aggregated variable, and the property read from each matched vertex.
// Matches where the property is missing or non-integer are NULLs: they count
// toward Rows but contribute nothing to Sum/Min/Max/NonNull.
type AggSpec struct {
	Kind AggKind
	Slot int
	Prop string
}

// AggResult is an exactly mergeable aggregate accumulator. Min and Max are
// only meaningful when NonNull > 0.
type AggResult struct {
	// Rows is the number of matches (folded arithmetic included).
	Rows int64
	// Sum accumulates the property over non-null matches (AggSum).
	Sum int64
	// Min and Max are the property extrema over non-null matches.
	Min int64
	Max int64
	// NonNull is the number of matches with an integer property value.
	NonNull int64
}

// Merge folds another partition's result in. int64 sums and extrema are
// associative and commutative (sums even under wraparound), so merging
// per-worker, per-shard, or per-sub-morsel partials in any order yields the
// same result as a serial run.
func (r *AggResult) Merge(o AggResult) {
	r.Rows += o.Rows
	r.Sum += o.Sum
	if o.NonNull > 0 {
		if r.NonNull == 0 || o.Min < r.Min {
			r.Min = o.Min
		}
		if r.NonNull == 0 || o.Max > r.Max {
			r.Max = o.Max
		}
	}
	r.NonNull += o.NonNull
}

// observe accumulates one property value occurring in mult matches.
func (r *AggResult) observe(v int64, mult int64) {
	if mult <= 0 {
		return
	}
	if r.NonNull == 0 || v < r.Min {
		r.Min = v
	}
	if r.NonNull == 0 || v > r.Max {
		r.Max = v
	}
	r.Sum += v * mult
	r.NonNull += mult
}

// setAgg arms (or disarms, spec == nil) the pipeline's aggregate sink for
// one run. pl.stop must already hold the sink boundary: the aggregated
// slot's position relative to it decides between reading the bound value
// (once per boundary tuple, times the fold multiplicity) and scanning the
// folded list that binds it.
func (pl *pipeline) setAgg(spec *AggSpec) {
	if spec == nil {
		pl.aggOn = false
		return
	}
	pl.aggOn = true
	pl.agg = *spec
	pl.aggRes = AggResult{}
	pl.aggSlotOp = -1
	if spec.Kind != AggCount {
		for j := pl.stop; j < len(pl.plan.Ops); j++ {
			if o, ok := pl.plan.Ops[j].(*ExtendIntersectOp); ok && o.TargetSlot == spec.Slot {
				pl.aggSlotOp = j
			}
		}
	}
}

// aggFold is the aggregate counterpart of foldedCount: it charges the exact
// i-cost enumeration would have (the arithmetic is foldedCount's, term for
// term) and accumulates the aggregate into pl.aggRes. When the aggregated
// slot is bound by a folded operator, that list is fetched and scanned —
// its per-entry values each occur in total/len(list) matches; when it is
// bound before the boundary, the single bound value occurs in every match
// of the fold product. Returns the number of matches folded.
func (pl *pipeline) aggFold() int64 {
	rt, b, p := pl.rt, pl.b, pl.plan
	total := int64(1)
	var nJ, cntJ, sumJ, minJ, maxJ int64
	for j := pl.stop; j < len(p.Ops); j++ {
		o := p.Ops[j].(*ExtendIntersectOp)
		if j == pl.aggSlotOp {
			n := pl.aggScanList(o, j, &cntJ, &sumJ, &minJ, &maxJ)
			rt.ICost += n * (total - 1)
			nJ = n
			total *= n
		} else {
			n := int64(o.Lists[0].FetchLen(rt, b))
			rt.ICost += n * (total - 1)
			total *= n
		}
		if total == 0 {
			return 0 // enumeration never reaches the later lists
		}
	}
	pl.aggAccumulate(total, nJ, cntJ, sumJ, minJ, maxJ)
	return total
}

// aggFoldTraced is aggFold with per-operator span attribution, mirroring
// foldedCountTraced: identical arithmetic, with each folded operator's
// fetch, i-cost share, and produced tuples landing in its own span.
func (pl *pipeline) aggFoldTraced() int64 {
	rt, b, p, tr := pl.rt, pl.b, pl.plan, pl.tr
	total := int64(1)
	var nJ, cntJ, sumJ, minJ, maxJ int64
	for j := pl.stop; j < len(p.Ops); j++ {
		o := p.Ops[j].(*ExtendIntersectOp)
		sp := &tr.spans[j]
		sp.Calls++
		icost0, preds0 := rt.ICost, rt.PredEvals
		t0 := time.Now()
		var n int64
		if j == pl.aggSlotOp {
			n = pl.aggScanList(o, j, &cntJ, &sumJ, &minJ, &maxJ)
			nJ = n
		} else {
			n = int64(o.Lists[0].FetchLen(rt, b))
		}
		rt.ICost += n * (total - 1)
		sp.Nanos += int64(time.Since(t0))
		sp.ICost += rt.ICost - icost0
		sp.PredEvals += rt.PredEvals - preds0
		total *= n
		sp.Rows += total
		if total == 0 {
			return 0
		}
	}
	pl.aggAccumulate(total, nJ, cntJ, sumJ, minJ, maxJ)
	return total
}

// aggScanList fetches and decodes folded operator j's list (charging its
// length, exactly like FetchLen) and accumulates the aggregated property's
// stats over its entries. Returns the list length.
func (pl *pipeline) aggScanList(o *ExtendIntersectOp, j int, cntJ, sumJ, minJ, maxJ *int64) int64 {
	rt, b := pl.rt, pl.b
	r := &o.Lists[0]
	sc := pl.scratch.op(j)
	sc.ensureLists(1)
	sc.decode(0, r.fetchWith(rt, sc, 0, b, r.Codes))
	f := sc.lists[0]
	*cntJ, *sumJ, *minJ, *maxJ = 0, 0, 0, 0
	for _, nbr := range f.nbrs {
		v := rt.G.VertexProp(storage.VertexID(nbr), pl.agg.Prop)
		if v.Kind != storage.KindInt {
			continue
		}
		if *cntJ == 0 || v.I < *minJ {
			*minJ = v.I
		}
		if *cntJ == 0 || v.I > *maxJ {
			*maxJ = v.I
		}
		*sumJ += v.I
		*cntJ++
	}
	return int64(len(f.nbrs))
}

// aggAccumulate folds one boundary tuple's contribution into pl.aggRes.
// total is the tuple's match multiplicity (> 0); when the aggregated slot
// was bound by folded operator j, nJ/cntJ/sumJ/minJ/maxJ carry that list's
// scan stats and each entry occurs in total/nJ matches.
func (pl *pipeline) aggAccumulate(total, nJ, cntJ, sumJ, minJ, maxJ int64) {
	res := &pl.aggRes
	res.Rows += total
	if pl.agg.Kind == AggCount {
		return
	}
	if pl.aggSlotOp >= 0 {
		if cntJ == 0 {
			return
		}
		tOther := total / nJ
		if res.NonNull == 0 || minJ < res.Min {
			res.Min = minJ
		}
		if res.NonNull == 0 || maxJ > res.Max {
			res.Max = maxJ
		}
		res.Sum += sumJ * tOther
		res.NonNull += cntJ * tOther
		return
	}
	v := pl.rt.G.VertexProp(pl.b.V[pl.agg.Slot], pl.agg.Prop)
	if v.Kind != storage.KindInt {
		return
	}
	res.observe(v.I, total)
}

// Aggregate executes the plan and returns the aggregate over all matches,
// folding the trailing pure-EXTEND suffix exactly like Count: the match
// count (AggResult.Rows) and the accumulated i-cost are bit-identical to
// full enumeration.
func (p *Plan) Aggregate(rt *Runtime, spec AggSpec) AggResult {
	return p.aggregateRun(rt, spec, p.countFoldStart())
}

func (p *Plan) aggregateRun(rt *Runtime, spec AggSpec, stop int) AggResult {
	pl := rt.pipelineFor(p)
	pl.stop = stop
	pl.emit = nil
	pl.n = 0
	pl.setAgg(&spec)
	pl.beginRun()
	pl.step(0)
	if pl.govEvery != 0 {
		pl.govFlush()
	}
	pl.aggOn = false
	return pl.aggRes
}

// AggregateParallel executes the aggregate with the morsel-driven worker
// pool (work stealing included) and merges the per-worker partials exactly.
// Panic conversion, governance polling, and the serial fallback behave as
// in CountParallel.
func (p *Plan) AggregateParallel(rt *Runtime, o ParallelOptions, spec AggSpec) (AggResult, error) {
	return p.aggregateParallelStop(rt, o, spec, p.countFoldStart())
}

// aggregateParallelStop is AggregateParallel with an explicit sink boundary
// so parity tests can force full enumeration (stop == len(Ops)).
func (p *Plan) aggregateParallelStop(rt *Runtime, o ParallelOptions, spec AggSpec, stop int) (AggResult, error) {
	workers := o.workers()
	if workers > 1 {
		_, res, ran, err := p.runMorsels(rt, o, workers, true, stop, &spec, nil)
		if ran {
			return res, err
		}
	}
	return p.aggregateSerial(rt, o, spec, stop)
}

// aggregateSerial is the single-threaded aggregate path with the same
// panic-to-error contract as the worker pool.
func (p *Plan) aggregateSerial(rt *Runtime, o ParallelOptions, spec AggSpec, stop int) (res AggResult, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = newPanicError(r)
		}
	}()
	if o.InjectWorkerFault != nil {
		o.InjectWorkerFault(0)
	}
	return p.aggregateRun(rt, spec, stop), nil
}
