package exec

import (
	"fmt"
	"testing"

	"github.com/aplusdb/aplus/internal/index"
	"github.com/aplusdb/aplus/internal/storage"
)

// chainGraph builds a deterministic pseudo-random labeled graph and a
// two-hop plan over it (scan a, extend to b, extend to c).
func chainGraph(t *testing.T, numV, degree int) (*index.Store, *Plan) {
	t.Helper()
	g := storage.NewGraph()
	for i := 0; i < numV; i++ {
		g.AddVertex(fmt.Sprintf("V%d", i%3))
	}
	for i := 0; i < numV; i++ {
		for d := 0; d < degree; d++ {
			dst := storage.VertexID((i*31 + d*17 + 7) % numV)
			if _, err := g.AddEdge(storage.VertexID(i), dst, "E"); err != nil {
				t.Fatal(err)
			}
		}
	}
	s, err := index.NewStore(g, index.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	eCodes, ok := s.Primary().ResolveCodes([]storage.Value{storage.Str("E")})
	if !ok {
		t.Fatal("label E should resolve")
	}
	lbl, _ := g.Catalog().LookupVertexLabel("V1")
	plan := &Plan{
		NumV: 3, NumE: 2,
		Ops: []Op{
			&ScanVertexOp{Slot: 0, HasLabel: true, Label: lbl},
			&ExtendIntersectOp{TargetSlot: 1, Lists: []ListRef{{
				Kind: ListPrimary, Dir: index.FW, OwnerVertexSlot: 0, Codes: eCodes, EdgeSlot: 0,
			}}},
			&ExtendIntersectOp{TargetSlot: 2, Lists: []ListRef{{
				Kind: ListPrimary, Dir: index.FW, OwnerVertexSlot: 1, Codes: eCodes, EdgeSlot: 1,
			}}},
		},
	}
	return s, plan
}

func TestCountParallelMatchesSerial(t *testing.T) {
	s, plan := chainGraph(t, 211, 4)
	serial := NewRuntime(s)
	want := plan.Count(serial)
	if want == 0 {
		t.Fatal("test graph should produce matches")
	}
	for _, tc := range []ParallelOptions{
		{Workers: 2},
		{Workers: 3, MorselSize: 1},
		{Workers: 8, MorselSize: 7},
		{Workers: 4, MorselSize: 1 << 20}, // morsel larger than the table
		{Workers: 64},                     // more workers than morsels
	} {
		rt := NewRuntime(s)
		got, err := plan.CountParallel(rt, tc)
		if err != nil {
			t.Fatalf("%+v: CountParallel: %v", tc, err)
		}
		if got != want {
			t.Errorf("%+v: count = %d, want %d", tc, got, want)
		}
		if rt.ICost != serial.ICost {
			t.Errorf("%+v: merged ICost = %d, want %d", tc, rt.ICost, serial.ICost)
		}
		if rt.PredEvals != serial.PredEvals {
			t.Errorf("%+v: merged PredEvals = %d, want %d", tc, rt.PredEvals, serial.PredEvals)
		}
	}
}

func TestCountParallelEmptyGraph(t *testing.T) {
	g := storage.NewGraph()
	s, err := index.NewStore(g, index.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	plan := &Plan{NumV: 1, Ops: []Op{&ScanVertexOp{Slot: 0}}}
	rt := NewRuntime(s)
	if got, err := plan.CountParallel(rt, ParallelOptions{Workers: 4}); err != nil || got != 0 {
		t.Errorf("count on empty graph = %d, %v, want 0, nil", got, err)
	}
	if rt.ICost != 0 {
		t.Errorf("ICost on empty graph = %d, want 0", rt.ICost)
	}
}

func TestExecuteParallelEarlyTermination(t *testing.T) {
	s, plan := chainGraph(t, 211, 4)
	total := plan.Count(NewRuntime(s))
	const limit = 5
	if total <= limit {
		t.Fatalf("need > %d matches, have %d", limit, total)
	}
	emits := 0
	if err := plan.ExecuteParallel(NewRuntime(s), ParallelOptions{Workers: 4, MorselSize: 8}, func(*Binding) bool {
		emits++
		return emits < limit
	}); err != nil {
		t.Fatalf("ExecuteParallel: %v", err)
	}
	if emits != limit {
		t.Errorf("emit called %d times, want exactly %d (no emits after false)", emits, limit)
	}
}

func TestExecuteParallelSeesEveryMatch(t *testing.T) {
	s, plan := chainGraph(t, 97, 3)
	type match [3]storage.VertexID
	serial := map[match]int{}
	plan.Execute(NewRuntime(s), func(b *Binding) bool {
		serial[match{b.V[0], b.V[1], b.V[2]}]++
		return true
	})
	par := map[match]int{}
	if err := plan.ExecuteParallel(NewRuntime(s), ParallelOptions{Workers: 4, MorselSize: 3}, func(b *Binding) bool {
		par[match{b.V[0], b.V[1], b.V[2]}]++
		return true
	}); err != nil {
		t.Fatalf("ExecuteParallel: %v", err)
	}
	if len(par) != len(serial) {
		t.Fatalf("parallel saw %d distinct matches, serial %d", len(par), len(serial))
	}
	for m, n := range serial {
		if par[m] != n {
			t.Errorf("match %v: parallel multiplicity %d, serial %d", m, par[m], n)
		}
	}
}

func TestScanEdgeRunRange(t *testing.T) {
	s, _ := chainGraph(t, 50, 2)
	plan := &Plan{
		NumV: 2, NumE: 1,
		Ops: []Op{&ScanEdgeOp{EdgeSlot: 0, SrcSlot: 0, DstSlot: 1}},
	}
	want := plan.Count(NewRuntime(s))
	if want != int64(s.Graph().NumLiveEdges()) {
		t.Fatalf("serial edge scan = %d, want %d", want, s.Graph().NumLiveEdges())
	}
	if got, err := plan.CountParallel(NewRuntime(s), ParallelOptions{Workers: 3, MorselSize: 11}); err != nil || got != want {
		t.Errorf("parallel edge scan = %d, %v, want %d, nil", got, err, want)
	}
}
