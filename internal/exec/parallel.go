package exec

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// DefaultMorselSize is the number of root-scan positions handed to a worker
// at a time. Morsels are small enough to balance skewed pipelines (one hub
// vertex can dominate a morsel) and large enough to amortize the shared
// cursor increment.
const DefaultMorselSize = 1024

// partitionableOp is implemented by root operators whose input is a dense
// table of scan positions that can be split into independent ranges
// (morsels). Only the first operator of a plan is ever partitioned; the
// rest of the pipeline runs unchanged inside each worker.
type partitionableOp interface {
	Op
	// tableSize returns the number of scan positions.
	tableSize(rt *Runtime) int
	// runRange behaves like run restricted to scan positions [lo, hi).
	// Running every range of a partition of [0, tableSize) exactly once
	// produces the same multiset of extensions as run.
	runRange(rt *Runtime, sc *opScratch, b *Binding, lo, hi int, next func() bool) bool
}

var (
	_ partitionableOp = (*ScanVertexOp)(nil)
	_ partitionableOp = (*ScanEdgeOp)(nil)
)

// ParallelOptions configure morsel-driven execution.
type ParallelOptions struct {
	// Workers is the worker-pool size; <= 0 means runtime.GOMAXPROCS(0).
	Workers int
	// MorselSize is the scan-range size per work unit; <= 0 means
	// DefaultMorselSize.
	MorselSize int
	// OnWorkerStart, when set, runs at the start of every worker goroutine
	// and returns a teardown called when the worker exits. Callers use it to
	// tag worker goroutines (e.g. so writes issued from inside a streaming
	// callback can be detected and rejected).
	OnWorkerStart func() func()
}

func (o ParallelOptions) workers() int {
	if o.Workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return o.Workers
}

func (o ParallelOptions) morsel() int {
	if o.MorselSize <= 0 {
		return DefaultMorselSize
	}
	return o.MorselSize
}

// CountParallel executes the plan with a morsel-driven worker pool and
// returns the number of matches. Each worker runs the operator pipeline
// (with the same count pushdown as the serial path) over its own Binding,
// Runtime and Scratch arena; per-worker counts and ICost/PredEvals are
// merged into rt after the barrier. Because every morsel is processed
// exactly once, the counters are sums, and folding charges the i-cost
// enumeration would have, the count and merged metrics are bit-identical
// to the serial path regardless of worker count. Plans whose root operator
// is not partitionable fall back to the serial path.
func (p *Plan) CountParallel(rt *Runtime, o ParallelOptions) int64 {
	workers := o.workers()
	if workers <= 1 {
		return p.Count(rt)
	}
	n, ran := p.runMorsels(rt, o, workers, true, nil)
	if !ran {
		return p.Count(rt)
	}
	return n
}

// ExecuteParallel streams complete matches into emit from a morsel-driven
// worker pool. Calls to emit are serialized (emit never runs concurrently
// with itself) but arrive in a nondeterministic order; the binding passed
// to emit is worker-owned and reused — copy it if retaining. Returning
// false from emit stops all workers: no further emit calls occur, though
// in-flight workers may still read the indexes briefly before parking.
// Plans whose root operator is not partitionable fall back to the serial
// path.
func (p *Plan) ExecuteParallel(rt *Runtime, o ParallelOptions, emit func(*Binding) bool) {
	workers := o.workers()
	if workers <= 1 {
		p.Execute(rt, emit)
		return
	}
	var mu sync.Mutex
	stopped := false
	_, ran := p.runMorsels(rt, o, workers, false, func(int) func(*Binding) bool {
		return func(b *Binding) bool {
			mu.Lock()
			defer mu.Unlock()
			if stopped {
				return false
			}
			if !emit(b) {
				stopped = true
				return false
			}
			return true
		}
	})
	if !ran {
		p.Execute(rt, emit)
	}
}

// runMorsels partitions the root scan into morsels dispensed from a shared
// cursor and runs the tail pipeline in workers goroutines, each over its
// own Runtime-owned pipeline (binding + scratch arena + closure chain).
// With counting true the workers use the allocation-free counting sink with
// count pushdown and the summed count is returned; otherwise sinkFor
// returns the terminal emit for one worker, which must be safe for that
// worker's exclusive use. It reports ran=false (without spawning anything)
// when the plan's root is not partitionable, signalling a serial fallback.
func (p *Plan) runMorsels(rt *Runtime, o ParallelOptions, workers int, counting bool, sinkFor func(w int) func(*Binding) bool) (int64, bool) {
	if len(p.Ops) == 0 {
		return 0, false
	}
	root, ok := p.Ops[0].(partitionableOp)
	if !ok {
		return 0, false
	}
	stop := len(p.Ops)
	if counting {
		stop = p.countFoldStart()
	}
	size := root.tableSize(rt)
	morsel := o.morsel()
	numMorsels := (size + morsel - 1) / morsel
	if workers > numMorsels {
		workers = numMorsels
	}
	// Workers accumulate in their pipeline-local counter and store the
	// result here once at exit; wg.Wait orders those stores before the sum.
	counts := make([]int64, workers)
	var (
		cursor  atomic.Int64
		stopAll atomic.Bool
		wg      sync.WaitGroup
	)
	rts := make([]*Runtime, workers)
	for w := 0; w < workers; w++ {
		wrt := &Runtime{Store: rt.Store, G: rt.G, Delta: rt.Delta}
		rts[w] = wrt
		var emit func(*Binding) bool
		if !counting {
			emit = sinkFor(w)
		}
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			if o.OnWorkerStart != nil {
				defer o.OnWorkerStart()()
			}
			pl := wrt.pipelineFor(p)
			pl.stop = stop
			pl.emit = emit
			pl.n = 0
			for !stopAll.Load() {
				m := int(cursor.Add(1)) - 1
				if m >= numMorsels {
					break
				}
				lo := m * morsel
				hi := lo + morsel
				if hi > size {
					hi = size
				}
				if !root.runRange(wrt, wrt.scratch.op(0), pl.b, lo, hi, pl.next[1]) {
					// The pipeline aborted: emit returned false. Park the
					// whole pool.
					stopAll.Store(true)
					break
				}
			}
			counts[w] = pl.n
		}(w)
	}
	wg.Wait()
	var n int64
	for w := range counts {
		n += counts[w]
	}
	for _, wrt := range rts {
		rt.ICost += wrt.ICost
		rt.PredEvals += wrt.PredEvals
	}
	return n, true
}
