package exec

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// DefaultMorselSize is the number of root-scan positions handed to a worker
// at a time. Morsels are small enough to balance skewed pipelines (one hub
// vertex can dominate a morsel) and large enough to amortize the shared
// cursor increment.
const DefaultMorselSize = 1024

// partitionableOp is implemented by root operators whose input is a dense
// table of scan positions that can be split into independent ranges
// (morsels). Only the first operator of a plan is ever partitioned; the
// rest of the pipeline runs unchanged inside each worker.
type partitionableOp interface {
	Op
	// tableSize returns the number of scan positions.
	tableSize(rt *Runtime) int
	// runRange behaves like run restricted to scan positions [lo, hi).
	// Running every range of a partition of [0, tableSize) exactly once
	// produces the same multiset of extensions as run.
	runRange(rt *Runtime, b *Binding, lo, hi int, next func() bool) bool
}

var (
	_ partitionableOp = (*ScanVertexOp)(nil)
	_ partitionableOp = (*ScanEdgeOp)(nil)
)

// ParallelOptions configure morsel-driven execution.
type ParallelOptions struct {
	// Workers is the worker-pool size; <= 0 means runtime.GOMAXPROCS(0).
	Workers int
	// MorselSize is the scan-range size per work unit; <= 0 means
	// DefaultMorselSize.
	MorselSize int
}

func (o ParallelOptions) workers() int {
	if o.Workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return o.Workers
}

func (o ParallelOptions) morsel() int {
	if o.MorselSize <= 0 {
		return DefaultMorselSize
	}
	return o.MorselSize
}

// CountParallel executes the plan with a morsel-driven worker pool and
// returns the number of matches. Each worker runs the full operator
// pipeline over its own Binding and Runtime; per-worker ICost/PredEvals are
// merged into rt after the barrier. Because every morsel is processed
// exactly once and the counters are sums, the count and merged metrics are
// bit-identical to the serial path regardless of worker count. Plans whose
// root operator is not partitionable fall back to the serial path.
func (p *Plan) CountParallel(rt *Runtime, o ParallelOptions) int64 {
	workers := o.workers()
	if workers <= 1 {
		return p.Count(rt)
	}
	// One count per cache line: workers increment their slot once per
	// match, and adjacent int64s would ping-pong the line between cores.
	type paddedCount struct {
		n int64
		_ [56]byte
	}
	counts := make([]paddedCount, workers)
	ran := p.runMorsels(rt, o, workers, func(w int) func(*Binding) bool {
		return func(*Binding) bool {
			counts[w].n++
			return true
		}
	})
	if !ran {
		return p.Count(rt)
	}
	var n int64
	for i := range counts {
		n += counts[i].n
	}
	return n
}

// ExecuteParallel streams complete matches into emit from a morsel-driven
// worker pool. Calls to emit are serialized (emit never runs concurrently
// with itself) but arrive in a nondeterministic order; the binding passed
// to emit is worker-owned and reused — copy it if retaining. Returning
// false from emit stops all workers: no further emit calls occur, though
// in-flight workers may still read the indexes briefly before parking.
// Plans whose root operator is not partitionable fall back to the serial
// path.
func (p *Plan) ExecuteParallel(rt *Runtime, o ParallelOptions, emit func(*Binding) bool) {
	workers := o.workers()
	if workers <= 1 {
		p.Execute(rt, emit)
		return
	}
	var mu sync.Mutex
	stopped := false
	ran := p.runMorsels(rt, o, workers, func(int) func(*Binding) bool {
		return func(b *Binding) bool {
			mu.Lock()
			defer mu.Unlock()
			if stopped {
				return false
			}
			if !emit(b) {
				stopped = true
				return false
			}
			return true
		}
	})
	if !ran {
		p.Execute(rt, emit)
	}
}

// runMorsels partitions the root scan into morsels dispensed from a shared
// cursor and runs the tail pipeline in workers goroutines. sinkFor returns
// the terminal emit for one worker; it must be safe for that worker's
// exclusive use. It returns false (without spawning anything) when the
// plan's root is not partitionable, signalling a serial fallback.
func (p *Plan) runMorsels(rt *Runtime, o ParallelOptions, workers int, sinkFor func(w int) func(*Binding) bool) bool {
	if len(p.Ops) == 0 {
		return false
	}
	root, ok := p.Ops[0].(partitionableOp)
	if !ok {
		return false
	}
	size := root.tableSize(rt)
	morsel := o.morsel()
	numMorsels := (size + morsel - 1) / morsel
	if workers > numMorsels {
		workers = numMorsels
	}
	var (
		cursor atomic.Int64
		stop   atomic.Bool
		wg     sync.WaitGroup
	)
	rts := make([]*Runtime, workers)
	for w := 0; w < workers; w++ {
		wrt := &Runtime{Store: rt.Store, G: rt.G}
		rts[w] = wrt
		emit := sinkFor(w)
		wg.Add(1)
		go func() {
			defer wg.Done()
			b := NewBinding(p.NumV, p.NumE)
			var runFrom func(i int) bool
			runFrom = func(i int) bool {
				if i == len(p.Ops) {
					return emit(b)
				}
				return p.Ops[i].run(wrt, b, func() bool { return runFrom(i + 1) })
			}
			for !stop.Load() {
				m := int(cursor.Add(1)) - 1
				if m >= numMorsels {
					return
				}
				lo := m * morsel
				hi := lo + morsel
				if hi > size {
					hi = size
				}
				if !root.runRange(wrt, b, lo, hi, func() bool { return runFrom(1) }) {
					// The pipeline aborted: emit returned false. Park the
					// whole pool.
					stop.Store(true)
					return
				}
			}
		}()
	}
	wg.Wait()
	for _, wrt := range rts {
		rt.ICost += wrt.ICost
		rt.PredEvals += wrt.PredEvals
	}
	return true
}
