package exec

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// DefaultMorselSize is the number of root-scan positions handed to a worker
// at a time. Morsels are small enough to balance skewed pipelines (one hub
// vertex can dominate a morsel) and large enough to amortize the shared
// cursor increment.
const DefaultMorselSize = 1024

// partitionableOp is implemented by root operators whose input is a dense
// table of scan positions that can be split into independent ranges
// (morsels). Only the first operator of a plan is ever partitioned; the
// rest of the pipeline runs unchanged inside each worker.
type partitionableOp interface {
	Op
	// tableSize returns the number of scan positions.
	tableSize(rt *Runtime) int
	// runRange behaves like run restricted to scan positions [lo, hi).
	// Running every range of a partition of [0, tableSize) exactly once
	// produces the same multiset of extensions as run.
	runRange(rt *Runtime, sc *opScratch, b *Binding, lo, hi int, next func() bool) bool
}

var (
	_ partitionableOp = (*ScanVertexOp)(nil)
	_ partitionableOp = (*ScanEdgeOp)(nil)
)

// ParallelOptions configure morsel-driven execution.
type ParallelOptions struct {
	// Workers is the worker-pool size; <= 0 means runtime.GOMAXPROCS(0).
	Workers int
	// MorselSize is the scan-range size per work unit; <= 0 means
	// DefaultMorselSize.
	MorselSize int
	// OnWorkerStart, when set, runs at the start of every worker goroutine
	// and returns a teardown called when the worker exits. Callers use it to
	// tag worker goroutines (e.g. so writes issued from inside a streaming
	// callback can be detected and rejected).
	OnWorkerStart func() func()
	// InjectWorkerFault, when set, runs once per worker goroutine (and once,
	// as worker 0, on the serial fallback) after the panic recovery is
	// installed. It exists so tests can inject a panic into a live worker
	// and assert the pool converts it to a *PanicError instead of crashing.
	InjectWorkerFault func(worker int)
	// DisableSteal turns off pipeline-deep work stealing (see steal.go),
	// leaving root-scan morsel partitioning only. Counts and metrics are
	// bit-identical either way; parity tests use this to prove it.
	DisableSteal bool
}

func (o ParallelOptions) workers() int {
	if o.Workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return o.Workers
}

func (o ParallelOptions) morsel() int {
	if o.MorselSize <= 0 {
		return DefaultMorselSize
	}
	return o.MorselSize
}

// CountParallel executes the plan with a morsel-driven worker pool and
// returns the number of matches. Each worker runs the operator pipeline
// (with the same count pushdown as the serial path) over its own Binding,
// Runtime and Scratch arena; per-worker counts and ICost/PredEvals are
// merged into rt after the barrier. Because every morsel is processed
// exactly once, the counters are sums, and folding charges the i-cost
// enumeration would have, the count and merged metrics are bit-identical
// to the serial path regardless of worker count. Plans whose root operator
// is not partitionable fall back to the serial path.
//
// A panic inside a worker (or the serial fallback) is recovered, converted
// to a *PanicError carrying the panicking goroutine's stack, and returned
// after the whole pool has drained; the first panic wins. When rt.Gov is
// set, workers additionally poll it at every morsel boundary and every
// Governor.CheckEvery sink tuples — a tripped governor parks the pool and
// CountParallel returns the partial count with a nil error; the caller
// inspects Governor.Reason to map the trip to its own error type.
func (p *Plan) CountParallel(rt *Runtime, o ParallelOptions) (int64, error) {
	workers := o.workers()
	if workers <= 1 {
		return p.countSerial(rt, o)
	}
	n, _, ran, err := p.runMorsels(rt, o, workers, true, p.countFoldStart(), nil, nil)
	if !ran {
		return p.countSerial(rt, o)
	}
	return n, err
}

// ExecuteParallel streams complete matches into emit from a morsel-driven
// worker pool. Calls to emit are serialized (emit never runs concurrently
// with itself) but arrive in a nondeterministic order; the binding passed
// to emit is worker-owned and reused — copy it if retaining. Returning
// false from emit stops all workers: no further emit calls occur, though
// in-flight workers may still read the indexes briefly before parking.
// Plans whose root operator is not partitionable fall back to the serial
// path. Panic conversion and governance polling behave as in CountParallel.
func (p *Plan) ExecuteParallel(rt *Runtime, o ParallelOptions, emit func(*Binding) bool) error {
	workers := o.workers()
	if workers <= 1 {
		return p.executeSerial(rt, o, emit)
	}
	var mu sync.Mutex
	stopped := false
	_, _, ran, err := p.runMorsels(rt, o, workers, false, len(p.Ops), nil, func(int) func(*Binding) bool {
		return func(b *Binding) bool {
			mu.Lock()
			defer mu.Unlock()
			if stopped {
				return false
			}
			if !emit(b) {
				stopped = true
				return false
			}
			return true
		}
	})
	if !ran {
		return p.executeSerial(rt, o, emit)
	}
	return err
}

// countSerial is the single-threaded CountParallel path with the same
// panic-to-error contract as the worker pool.
func (p *Plan) countSerial(rt *Runtime, o ParallelOptions) (n int64, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = newPanicError(r)
		}
	}()
	if o.InjectWorkerFault != nil {
		o.InjectWorkerFault(0)
	}
	return p.Count(rt), nil
}

// executeSerial is the single-threaded ExecuteParallel path with the same
// panic-to-error contract as the worker pool.
func (p *Plan) executeSerial(rt *Runtime, o ParallelOptions, emit func(*Binding) bool) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = newPanicError(r)
		}
	}()
	if o.InjectWorkerFault != nil {
		o.InjectWorkerFault(0)
	}
	p.Execute(rt, emit)
	return nil
}

// runMorsels partitions the root scan into morsels dispensed from a shared
// cursor and runs the tail pipeline in workers goroutines, each over its
// own Runtime-owned pipeline (binding + scratch arena + closure chain).
// With counting true the workers use the allocation-free counting sink at
// boundary stop (agg non-nil selects the aggregate fold; per-worker
// partials are merged exactly) and the summed count is returned; otherwise
// sinkFor returns the terminal emit for one worker, which must be safe for
// that worker's exclusive use. It reports ran=false (without spawning
// anything) when the plan's root is not partitionable, signalling a serial
// fallback.
//
// When the plan has a steal point (see steal.go) and stealing is enabled,
// workers additionally publish oversized op-1 adjacency tails as sub-
// morsels to a shared lock-free queue and drain it when the cursor runs
// dry: morselActive counts workers inside root ranges (the only publishers),
// so once the cursor is exhausted, the counter is zero, and a pop comes up
// empty, no task can ever appear again and the worker may park.
//
// Worker panics are recovered inside the worker, park the pool via stopAll,
// and surface as the returned error (first panic wins). Per-worker metric
// counters accumulated before a panic or a governor trip are still merged
// into rt, so aborted executions report partial profiled metrics.
func (p *Plan) runMorsels(rt *Runtime, o ParallelOptions, workers int, counting bool, stop int, agg *AggSpec, sinkFor func(w int) func(*Binding) bool) (int64, AggResult, bool, error) {
	if len(p.Ops) == 0 {
		return 0, AggResult{}, false, nil
	}
	root, ok := p.Ops[0].(partitionableOp)
	if !ok {
		return 0, AggResult{}, false, nil
	}
	size := root.tableSize(rt)
	morsel := o.morsel()
	numMorsels := (size + morsel - 1) / morsel
	if workers > numMorsels {
		workers = numMorsels
	}
	var sq *stealQueue
	var stealOp *ExtendIntersectOp
	if workers > 1 && !o.DisableSteal {
		if stealOp = p.stealPoint(stop); stealOp != nil {
			sq = newStealQueue(stealQueueCap, p.NumV, p.NumE)
		}
	}
	// Workers accumulate in their pipeline-local counters and store the
	// results here once at exit; wg.Wait orders those stores before the sum.
	counts := make([]int64, workers)
	aggs := make([]AggResult, workers)
	var (
		cursor       atomic.Int64
		morselActive atomic.Int64
		stopAll      atomic.Bool
		wg           sync.WaitGroup
		errMu        sync.Mutex
		poolErr      error
	)
	rts := make([]*Runtime, workers)
	for w := 0; w < workers; w++ {
		wrt := &Runtime{Store: rt.Store, G: rt.G, Delta: rt.Delta, Gov: rt.Gov, Shard: rt.Shard}
		if rt.Trace != nil {
			wrt.Trace = new(Trace)
		}
		rts[w] = wrt
		var emit func(*Binding) bool
		if !counting {
			emit = sinkFor(w)
		}
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Recover worker panics (whether from operator code, injected
			// faults, or a panicking emit that the caller chose not to
			// shield) so a poisoned query surfaces as an error on the
			// coordinating goroutine instead of crashing the process.
			defer func() {
				if r := recover(); r != nil {
					stopAll.Store(true)
					errMu.Lock()
					if poolErr == nil {
						poolErr = newPanicError(r)
					}
					errMu.Unlock()
				}
			}()
			if o.OnWorkerStart != nil {
				defer o.OnWorkerStart()()
			}
			if o.InjectWorkerFault != nil {
				o.InjectWorkerFault(w)
			}
			pl := wrt.pipelineFor(p)
			pl.stop = stop
			pl.emit = emit
			pl.n = 0
			pl.setAgg(agg)
			pl.beginRun()
			rootNext := pl.next[1]
			var sr *stealRun
			if sq != nil {
				sr = newStealRun(pl, stealOp, sq, morsel)
				rootNext = sr.rootNext
			}
			drain := false
			spins := 0
			for !stopAll.Load() {
				// Stolen sub-morsels take priority over fresh morsels: they
				// bound the queue's occupancy and finish hub tails sooner.
				if sr != nil {
					if sq.tryPop(pl.b, &sr.snbrs, &sr.seids) {
						spins = 0
						if !sr.runStolen() {
							stopAll.Store(true)
							break
						}
						// Task boundary: same governance poll as a morsel.
						if pl.govEvery != 0 && !pl.govFlush() {
							stopAll.Store(true)
							break
						}
						continue
					}
				}
				if !drain {
					m := int(cursor.Add(1)) - 1
					if m >= numMorsels {
						if sr == nil {
							break
						}
						drain = true
						continue
					}
					lo := m * morsel
					hi := lo + morsel
					if hi > size {
						hi = size
					}
					if sr != nil {
						// Root ranges are the only publishers; the counter
						// lets drained workers detect quiescence.
						morselActive.Add(1)
					}
					var ok bool
					if pl.tr != nil {
						// The worker loop bypasses step(0) (it drives the root
						// by range), so the traced path measures the root span
						// here: one call per morsel, inclusive deltas.
						sp := &pl.tr.spans[0]
						sp.Calls++
						pl.tr.Morsels++
						icost0, preds0 := wrt.ICost, wrt.PredEvals
						t0 := time.Now()
						ok = root.runRange(wrt, pl.scratch.op(0), pl.b, lo, hi, rootNext)
						sp.Nanos += int64(time.Since(t0))
						sp.ICost += wrt.ICost - icost0
						sp.PredEvals += wrt.PredEvals - preds0
					} else {
						ok = root.runRange(wrt, pl.scratch.op(0), pl.b, lo, hi, rootNext)
					}
					if sr != nil {
						morselActive.Add(-1)
					}
					if !ok {
						// The pipeline aborted: emit returned false, or a mid-
						// morsel governor poll tripped. Park the whole pool.
						stopAll.Store(true)
						break
					}
					// Morsel boundary: publish this worker's counter deltas and
					// poll the governor, bounding cancellation latency by one
					// morsel of work.
					if pl.govEvery != 0 && !pl.govFlush() {
						stopAll.Store(true)
						break
					}
					continue
				}
				// Drain phase: the cursor is exhausted but in-flight root
				// ranges may still publish. Once none remain, their pushes
				// are visible (the decrement orders after them), so a final
				// empty pop proves the queue stays empty forever.
				if morselActive.Load() == 0 {
					if sq.tryPop(pl.b, &sr.snbrs, &sr.seids) {
						if !sr.runStolen() {
							stopAll.Store(true)
							break
						}
						if pl.govEvery != 0 && !pl.govFlush() {
							stopAll.Store(true)
							break
						}
						continue
					}
					break
				}
				// Bounded backoff: yield first (steal pickup stays prompt on
				// idle cores), then nap briefly so spinning drainers don't
				// starve the still-working owners on oversubscribed machines.
				if spins++; spins < 64 {
					runtime.Gosched()
				} else {
					time.Sleep(20 * time.Microsecond)
				}
			}
			// Publish any tail counters so the governor's totals reflect the
			// work actually done (partial metrics on aborted executions).
			if pl.govEvery != 0 {
				pl.govFlush()
			}
			counts[w] = pl.n
			aggs[w] = pl.aggRes
			pl.aggOn = false
		}(w)
	}
	wg.Wait()
	var n int64
	for w := range counts {
		n += counts[w]
	}
	var res AggResult
	if agg != nil {
		for w := range aggs {
			res.Merge(aggs[w])
		}
	}
	for w, wrt := range rts {
		rt.ICost += wrt.ICost
		rt.PredEvals += wrt.PredEvals
		if rt.Trace != nil && wrt.Trace != nil {
			rt.Trace.mergeWorker(wrt.Trace, w, counts[w], wrt.ICost, wrt.PredEvals)
		}
	}
	return n, res, true, poolErr
}
