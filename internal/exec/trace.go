package exec

// Per-operator query tracing (EXPLAIN ANALYZE). A Trace is armed by setting
// Runtime.Trace before an execution; the pipeline then routes every step
// through a measuring twin of the steady-state path that records one span
// per plan operator — invocation count, produced rows, i-cost and
// predicate-evaluation deltas, and wall time — plus a final span for the
// sink. Workers of a morsel-parallel execution each record into their own
// Trace, merged into the root's after the barrier exactly like ICost and
// PredEvals, so traced metric sums are bit-identical to an untraced
// profiled run at any worker count.
//
// A nil Runtime.Trace (the default) is the disarmed state: the only cost on
// the untraced path is one pointer test per pipeline step and one per
// morsel, and zero allocations (pinned by TestZeroAllocDisarmedTrace).

// OpSpan is one operator's accumulated measurements. During execution the
// pipeline records *inclusive* figures (an operator's span covers its whole
// downstream chain, since operators invoke their continuation in-line);
// Trace.Report derives the per-operator exclusive spans.
type OpSpan struct {
	// Calls is the number of times the operator ran: tuples it consumed,
	// morsels for the root scan of a parallel execution, fetches for a
	// folded suffix operator, boundary tuples for the sink.
	Calls int64
	// Rows is the number of tuples the operator produced (for the sink:
	// matches counted or emitted).
	Rows int64
	// ICost and PredEvals are the adjacency entries read and predicates
	// evaluated, attributed to this operator.
	ICost     int64
	PredEvals int64
	// Nanos is wall time attributed to this operator.
	Nanos int64
}

func (s *OpSpan) add(o OpSpan) {
	s.Calls += o.Calls
	s.Rows += o.Rows
	s.ICost += o.ICost
	s.PredEvals += o.PredEvals
	s.Nanos += o.Nanos
}

// WorkerSpan is one worker's share of a traced parallel execution.
type WorkerSpan struct {
	// Worker is the pool index (0 for the serial path).
	Worker int
	// Morsels is the number of root-scan morsels the worker processed.
	Morsels int64
	// Stolen is the number of stolen sub-morsels the worker *executed*
	// (not published): hub-tail ranges re-partitioned past the root scan.
	Stolen int64
	// Rows is the worker's produced-match count (counting sink only).
	Rows int64
	// ICost, PredEvals, and Nanos are the worker's metric and wall-time
	// totals; Nanos is time spent inside the pipeline, excluding morsel
	// dispatch waits.
	ICost     int64
	PredEvals int64
	Nanos     int64
}

// Trace accumulates one execution's spans. Arm it by setting Runtime.Trace
// to a fresh Trace before Count/Execute (or their parallel variants); read
// it back with Report after the execution returns. A Trace must not be
// shared by concurrent executions; re-running resets it.
type Trace struct {
	// spans[i] holds operator i's inclusive measurements; the final element
	// is the sink (counting fold or emit).
	spans []OpSpan
	// foldStart is the pipeline's sink boundary for this run: operators at
	// foldStart.. were folded arithmetically by count pushdown.
	foldStart int
	nops      int

	// Morsels counts root-scan morsels processed (0 on the serial path).
	Morsels int64
	// Stolen counts stolen sub-morsels executed by this trace's worker (on a
	// worker trace) or by the whole pool (after merging).
	Stolen int64
	// Workers is the per-worker split of a parallel execution (empty on the
	// serial path), in worker order.
	Workers []WorkerSpan
}

// arm sizes and resets the span table for a run over nops operators with
// the sink taking over at stop.
func (t *Trace) arm(nops, stop int) {
	t.nops = nops
	t.foldStart = stop
	if cap(t.spans) < nops+1 {
		t.spans = make([]OpSpan, nops+1)
	} else {
		t.spans = t.spans[:nops+1]
		for i := range t.spans {
			t.spans[i] = OpSpan{}
		}
	}
	t.Morsels = 0
	t.Stolen = 0
	t.Workers = t.Workers[:0]
}

// mergeWorker folds one worker's trace into the root trace, mirroring the
// ICost/PredEvals merge of the untraced parallel path, and appends the
// worker's split. rows/icost/preds are the worker Runtime's final totals.
func (t *Trace) mergeWorker(w *Trace, worker int, rows, icost, preds int64) {
	if len(t.spans) < len(w.spans) {
		t.arm(w.nops, w.foldStart)
	}
	for i := range w.spans {
		t.spans[i].add(w.spans[i])
	}
	t.Morsels += w.Morsels
	t.Stolen += w.Stolen
	var nanos int64
	if len(w.spans) > 0 {
		nanos = w.spans[0].Nanos // inclusive root span = worker pipeline time
	}
	t.Workers = append(t.Workers, WorkerSpan{
		Worker: worker, Morsels: w.Morsels, Stolen: w.Stolen, Rows: rows,
		ICost: icost, PredEvals: preds, Nanos: nanos,
	})
}

// FoldStart returns the index of the first operator folded by count
// pushdown in the traced run (== the number of operators when nothing
// folded).
func (t *Trace) FoldStart() int { return t.foldStart }

// Report derives the per-operator *exclusive* spans from the recorded
// inclusive ones: ops[i] for plan operator i, plus a final element for the
// sink. Because an operator's only caller is its upstream neighbour, the
// exclusive figures telescope exactly — summing ICost (or PredEvals) over
// every returned span reproduces the execution's total bit-identically.
// Rows for non-folded operators is derived from the downstream operator's
// call count; wall-time differences are clamped at zero against clock
// jitter (metric counters never need clamping — they are monotonic).
func (t *Trace) Report() []OpSpan {
	n := t.nops
	if len(t.spans) < n+1 {
		return nil // never armed (e.g. empty execution)
	}
	out := make([]OpSpan, n+1)
	copy(out, t.spans)
	sink := n
	// Folded suffix operators were measured exclusively by the fold loop;
	// subtract their share from the sink's inclusive span.
	var folded OpSpan
	for i := t.foldStart; i < n; i++ {
		folded.ICost += t.spans[i].ICost
		folded.PredEvals += t.spans[i].PredEvals
		folded.Nanos += t.spans[i].Nanos
	}
	out[sink].ICost -= folded.ICost
	out[sink].PredEvals -= folded.PredEvals
	if out[sink].Nanos -= folded.Nanos; out[sink].Nanos < 0 {
		out[sink].Nanos = 0
	}
	// Interior operators: exclusive = own inclusive − child's inclusive.
	for i := 0; i < t.foldStart; i++ {
		child := t.spans[sink]
		if i+1 < t.foldStart {
			child = t.spans[i+1]
		}
		out[i].ICost -= child.ICost
		out[i].PredEvals -= child.PredEvals
		if out[i].Nanos -= child.Nanos; out[i].Nanos < 0 {
			out[i].Nanos = 0
		}
		out[i].Rows = child.Calls
	}
	return out
}
