package exec

// Pipeline-deep work stealing. Morsel parallelism partitions only the root
// scan, so one hub vertex whose first-EXTEND adjacency list dwarfs the
// morsel size serializes its whole pipeline tail on the worker that drew the
// morsel. When operator 1 is a plain EXTEND (one list, no sorted segment),
// the owner re-partitions an oversized decoded list into sub-morsels
// published to a shared lock-free queue; idle workers pop them and run their
// entries through their own pipeline tail. Each cell carries the sub-range's
// decoded entries along with the binding snapshot, so a thief starts useful
// work immediately — it never re-fetches or re-decodes the (possibly huge)
// source list.
//
// The metric merge proof of morsel parallelism extends unchanged: every
// (root tuple, op-1 list entry) pair is processed exactly once — either
// inline by the owner or by exactly one thief — and the list fetch is
// charged once by the owner when it decodes, so counts, i-cost, and
// PredEvals stay bit-identical to the unstolen run at any worker count.

import (
	"sync/atomic"
	"time"

	"github.com/aplusdb/aplus/internal/storage"
)

// stealQueueCap is the bounded steal-queue capacity (a power of two). A full
// queue degrades gracefully: the owner processes unpublishable tail chunks
// inline, exactly as if they had never been split off.
const stealQueueCap = 256

// stealSplitFactor: an op-1 list is split only when it is at least this many
// thresholds long, so near-threshold lists don't pay the publish overhead
// for a single stealable chunk.
const stealSplitFactor = 2

// stealMaxChunks bounds how many sub-morsels one list splits into: chunks
// grow past the threshold for very long lists, keeping the queue (and the
// per-chunk publish/copy overhead) bounded while still spreading the list
// across many more consumers than one.
const stealMaxChunks = 64

// stealCell is one slot of the queue. Task data is stored inline — the
// binding snapshot plus the sub-range's decoded neighbour/edge entries, in
// slices reused across publishes — so the steady-state publish/pop cycle
// allocates nothing once the cells have grown to the working chunk size.
type stealCell struct {
	seq  atomic.Uint64
	v    []storage.VertexID
	e    []storage.EdgeID
	nbrs []uint32
	eids []uint64
}

// stealQueue is a bounded lock-free MPMC ring (Vyukov's array queue): each
// cell carries a sequence number that encodes whether it is free for the
// next producer or holds data for the next consumer, so both ends proceed
// with one CAS and no locks.
type stealQueue struct {
	cells []stealCell
	mask  uint64
	enq   atomic.Uint64
	deq   atomic.Uint64
}

// newStealQueue builds a queue of capacity cells (must be a power of two)
// whose inline bindings hold numV vertex and numE edge slots.
func newStealQueue(capacity, numV, numE int) *stealQueue {
	q := &stealQueue{cells: make([]stealCell, capacity), mask: uint64(capacity - 1)}
	for i := range q.cells {
		q.cells[i].seq.Store(uint64(i))
		q.cells[i].v = make([]storage.VertexID, numV)
		q.cells[i].e = make([]storage.EdgeID, numE)
	}
	return q
}

// tryPush publishes one sub-morsel: the binding under which the op-1 list
// was fetched plus the sub-range's decoded entries. It reports false when
// the queue is full (the caller processes the range inline instead).
func (q *stealQueue) tryPush(b *Binding, nbrs []uint32, eids []uint64) bool {
	pos := q.enq.Load()
	for {
		cell := &q.cells[pos&q.mask]
		seq := cell.seq.Load()
		switch d := int64(seq - pos); {
		case d == 0:
			if q.enq.CompareAndSwap(pos, pos+1) {
				copy(cell.v, b.V)
				copy(cell.e, b.E)
				cell.nbrs = append(cell.nbrs[:0], nbrs...)
				cell.eids = append(cell.eids[:0], eids...)
				cell.seq.Store(pos + 1)
				return true
			}
			pos = q.enq.Load()
		case d < 0:
			return false // full
		default:
			pos = q.enq.Load()
		}
	}
}

// tryPop claims the oldest published task, copying its binding snapshot
// into b and its entries into the caller's reusable buffers (the copies
// free the cell for the next producer before the task runs). It reports
// false when the queue is empty.
func (q *stealQueue) tryPop(b *Binding, nbrs *[]uint32, eids *[]uint64) bool {
	pos := q.deq.Load()
	for {
		cell := &q.cells[pos&q.mask]
		seq := cell.seq.Load()
		switch d := int64(seq - (pos + 1)); {
		case d == 0:
			if q.deq.CompareAndSwap(pos, pos+1) {
				copy(b.V, cell.v)
				copy(b.E, cell.e)
				*nbrs = append((*nbrs)[:0], cell.nbrs...)
				*eids = append((*eids)[:0], cell.eids...)
				cell.seq.Store(pos + q.mask + 1)
				return true
			}
			pos = q.deq.Load()
		case d < 0:
			return false // empty
		default:
			pos = q.deq.Load()
		}
	}
}

// stealPoint reports the plan's stealable operator: operator 1 when it is a
// plain single-list EXTEND without a sorted segment and lies before the sink
// boundary (a folded op 1 is pure arithmetic — nothing worth stealing).
func (p *Plan) stealPoint(stop int) *ExtendIntersectOp {
	if stop < 2 || len(p.Ops) < 2 {
		return nil
	}
	op, ok := p.Ops[1].(*ExtendIntersectOp)
	if !ok || len(op.Lists) != 1 || op.Lists[0].Seg != nil {
		return nil
	}
	return op
}

// stealRun is one worker's view of a stealing execution: the root-tuple
// continuation that replaces pl.next[1] (splitting oversized op-1 lists)
// and the executor for sub-morsels popped from the queue. The continuation
// closure is built once per run so the per-tuple path allocates nothing;
// snbrs/seids are the worker's reusable landing buffers for popped tasks.
type stealRun struct {
	pl        *pipeline
	op        *ExtendIntersectOp
	sq        *stealQueue
	threshold int
	rootNext  func() bool
	snbrs     []uint32
	seids     []uint64
}

func newStealRun(pl *pipeline, op *ExtendIntersectOp, sq *stealQueue, threshold int) *stealRun {
	s := &stealRun{pl: pl, op: op, sq: sq, threshold: threshold}
	s.rootNext = s.extend
	return s
}

// extend consumes one root tuple in place of step(1): it replicates the
// plain-EXTEND loop of ExtendIntersectOp.run, but publishes the tail of an
// oversized list as sub-morsels before iterating its own share. The traced
// twin adds op-1 span attribution exactly where stepTraced(1) would have.
func (s *stealRun) extend() bool {
	pl := s.pl
	if pl.tr == nil {
		return s.extendWork()
	}
	sp := &pl.tr.spans[1]
	sp.Calls++
	rt := pl.rt
	icost0, preds0 := rt.ICost, rt.PredEvals
	t0 := time.Now()
	ok := s.extendWork()
	sp.Nanos += int64(time.Since(t0))
	sp.ICost += rt.ICost - icost0
	sp.PredEvals += rt.PredEvals - preds0
	return ok
}

func (s *stealRun) extendWork() bool {
	pl := s.pl
	rt, b := pl.rt, pl.b
	r := &s.op.Lists[0]
	sc := pl.scratch.op(1)
	sc.ensureLists(1)
	// The owner charges the full fetch once, exactly like the serial path;
	// thieves receive decoded entries and charge nothing for them.
	sc.decode(0, r.fetchWith(rt, sc, 0, b, r.Codes))
	f := sc.lists[0]
	total := len(f.nbrs)
	localEnd := total
	inlineFrom := total
	if total >= stealSplitFactor*s.threshold {
		chunk := s.threshold
		if c := (total + stealMaxChunks - 1) / stealMaxChunks; c > chunk {
			chunk = c
		}
		localEnd = chunk
		for off := chunk; off < total; off += chunk {
			hi := off + chunk
			if hi > total {
				hi = total
			}
			if !s.sq.tryPush(b, f.nbrs[off:hi], f.eids[off:hi]) {
				inlineFrom = off // queue full: keep the rest inline
				break
			}
		}
	}
	next := pl.next[2]
	for i := 0; i < localEnd; i++ {
		b.V[s.op.TargetSlot] = storage.VertexID(f.nbrs[i])
		b.E[r.EdgeSlot] = storage.EdgeID(f.eids[i])
		if !next() {
			return false
		}
	}
	for i := inlineFrom; i < total; i++ {
		b.V[s.op.TargetSlot] = storage.VertexID(f.nbrs[i])
		b.E[r.EdgeSlot] = storage.EdgeID(f.eids[i])
		if !next() {
			return false
		}
	}
	return true
}

// runStolen executes one stolen sub-morsel whose binding snapshot and
// decoded entries have already been popped into the pipeline's binding and
// the run's landing buffers: bind each entry and run the downstream chain.
func (s *stealRun) runStolen() bool {
	pl := s.pl
	if pl.tr == nil {
		return s.stolenWork()
	}
	tr, rt := pl.tr, pl.rt
	tr.Stolen++
	icost0, preds0 := rt.ICost, rt.PredEvals
	t0 := time.Now()
	ok := s.stolenWork()
	d := int64(time.Since(t0))
	di, dp := rt.ICost-icost0, rt.PredEvals-preds0
	// Stolen work runs outside root.runRange, which the worker loop uses to
	// measure the root span; record it inclusively under both the root and
	// op-1 spans — without an op-1 call increment, the owner counted the
	// tuple — so the merged spans telescope bit-identically to an unstolen
	// run while the executing worker keeps the attribution.
	tr.spans[0].Nanos += d
	tr.spans[0].ICost += di
	tr.spans[0].PredEvals += dp
	tr.spans[1].Nanos += d
	tr.spans[1].ICost += di
	tr.spans[1].PredEvals += dp
	return ok
}

func (s *stealRun) stolenWork() bool {
	pl := s.pl
	b := pl.b
	next := pl.next[2]
	eSlot := s.op.Lists[0].EdgeSlot
	for i, nbr := range s.snbrs {
		b.V[s.op.TargetSlot] = storage.VertexID(nbr)
		b.E[eSlot] = storage.EdgeID(s.seids[i])
		if !next() {
			return false
		}
	}
	return true
}
