package exec

import (
	"testing"

	"github.com/aplusdb/aplus/internal/index"
	"github.com/aplusdb/aplus/internal/storage"
)

func TestCloseEdgeOpSortedAndUnsorted(t *testing.T) {
	rt := exampleRuntime(t)
	// Close the edge v1 -> v4 (t20 is the only Wire v1->v4; t20 plus no
	// parallel edges).
	for _, sorted := range []bool{true, false} {
		plan := &Plan{
			NumV: 2, NumE: 1,
			Ops: []Op{
				&ScanVertexOp{Slot: 0, ExactID: vptr(0)},
				&ScanVertexOp{Slot: 1, ExactID: vptr(3)},
				&CloseEdgeOp{
					List: ListRef{
						Kind: ListPrimary, Dir: index.FW, OwnerVertexSlot: 0, EdgeSlot: 0,
						Expand: ExpandChoices(nil, rt.Store.Primary().LevelCards()),
					},
					TargetSlot: 1,
					Sorted:     sorted,
				},
			},
		}
		var edges []storage.EdgeID
		plan.Execute(rt, func(b *Binding) bool {
			edges = append(edges, b.E[0])
			return true
		})
		if len(edges) != 1 || edges[0] != storage.Transfer(20) {
			t.Errorf("sorted=%v: close found %v, want [t20]", sorted, edges)
		}
	}
}

func TestCloseEdgeOpParallelEdges(t *testing.T) {
	g := storage.NewGraph()
	g.AddVertices(2, "A")
	e1, _ := g.AddEdge(0, 1, "W")
	e2, _ := g.AddEdge(0, 1, "W")
	s, err := index.NewStore(g, index.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	rt := NewRuntime(s)
	plan := &Plan{
		NumV: 2, NumE: 1,
		Ops: []Op{
			&ScanVertexOp{Slot: 0, ExactID: vptr(0)},
			&ScanVertexOp{Slot: 1, ExactID: vptr(1)},
			&CloseEdgeOp{
				List: ListRef{
					Kind: ListPrimary, Dir: index.FW, OwnerVertexSlot: 0, EdgeSlot: 0,
					Expand: ExpandChoices(nil, s.Primary().LevelCards()),
				},
				TargetSlot: 1,
				Sorted:     true,
			},
		},
	}
	seen := map[storage.EdgeID]bool{}
	plan.Execute(rt, func(b *Binding) bool {
		seen[b.E[0]] = true
		return true
	})
	if !seen[e1] || !seen[e2] || len(seen) != 2 {
		t.Errorf("parallel close found %v", seen)
	}
}

func TestScanEdgeOpFullScan(t *testing.T) {
	rt := exampleRuntime(t)
	// Scan every Wire edge and bind endpoints.
	lbl, _ := rt.G.Catalog().LookupEdgeLabel(storage.LabelWire)
	plan := &Plan{
		NumV: 2, NumE: 1,
		Ops: []Op{
			&ScanEdgeOp{EdgeSlot: 0, SrcSlot: 0, DstSlot: 1, HasLabel: true, Label: lbl},
		},
	}
	n := plan.Count(rt)
	want := int64(0)
	for i := 0; i < rt.G.NumEdges(); i++ {
		if rt.G.EdgeLabel(storage.EdgeID(i)) == lbl {
			want++
		}
	}
	if n != want {
		t.Errorf("scan-edge count = %d, want %d", n, want)
	}
}

func TestScanEdgeOpSkipsDeleted(t *testing.T) {
	rt := exampleRuntime(t)
	if err := rt.Store.DeleteEdge(storage.Transfer(4)); err != nil {
		t.Fatal(err)
	}
	t4 := storage.Transfer(4)
	plan := &Plan{
		NumV: 2, NumE: 1,
		Ops: []Op{
			&ScanEdgeOp{EdgeSlot: 0, SrcSlot: 0, DstSlot: 1, ExactID: &t4},
		},
	}
	if n := plan.Count(rt); n != 0 {
		t.Errorf("deleted edge matched %d times", n)
	}
}

func TestDynamicSegment(t *testing.T) {
	rt := exampleRuntime(t)
	vp, err := rt.Store.CreateVertexPartitioned(index.VPDef{
		View: index.View1Hop{Name: "VPc"},
		Dirs: []index.Direction{index.FW},
		Cfg: index.Config{
			Partitions: index.DefaultConfig().Partitions,
			Sorts:      []index.SortKey{{Var: 2, Prop: storage.PropCity}}, // pred.VarNbr
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	// From v3 (BOS): neighbours in v3's own city via dynamic segment.
	dyn := VertexOperand(0, storage.PropCity)
	plan := &Plan{
		NumV: 2, NumE: 1,
		Ops: []Op{
			&ScanVertexOp{Slot: 0, ExactID: vptr(2)}, // v3, city BOS
			&ExtendIntersectOp{TargetSlot: 1, Lists: []ListRef{{
				Kind: ListVP, VP: vp, Dir: index.FW, OwnerVertexSlot: 0, EdgeSlot: 0,
				Seg:    &Segment{Key: index.SortKey{Var: 2, Prop: storage.PropCity}, DynEq: &dyn},
				Expand: ExpandChoices(nil, vp.LevelCards(index.FW)),
			}}},
		},
	}
	var got []storage.VertexID
	plan.Execute(rt, func(b *Binding) bool {
		got = append(got, b.V[1])
		return true
	})
	// v3's out edges: t5 -> v2 (SF), t12 -> v4 (BOS). Only v4 matches.
	if len(got) != 1 || got[0] != 3 {
		t.Errorf("dynamic segment matched %v, want [v4]", got)
	}
}
