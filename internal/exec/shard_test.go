package exec

// Tests for the root-scan shard ownership filter (ShardSpec) and the
// per-plan pipeline cache: sharded executions must partition the root
// entries exactly (counts, i-cost, and PredEvals sum bit-identically to an
// unsharded run), and a Runtime alternating between cached plans must stay
// allocation-free in steady state.

import (
	"testing"

	"github.com/aplusdb/aplus/internal/index"
	"github.com/aplusdb/aplus/internal/pred"
	"github.com/aplusdb/aplus/internal/storage"
)

// shardTrianglePlan is a vertex-rooted triangle with a predicate on the
// scan so PredEvals partitioning is exercised too.
func shardTrianglePlan() *Plan {
	return &Plan{
		NumV: 3, NumE: 2,
		Ops: []Op{
			&ScanVertexOp{Slot: 0, Terms: []CompiledTerm{{
				Left: VertexOperand(0, pred.PropID), Op: pred.GE, Right: ConstOperand(storage.Int(0)),
			}}},
			&ExtendIntersectOp{TargetSlot: 1, Lists: []ListRef{
				{Kind: ListPrimary, Dir: index.FW, OwnerVertexSlot: 0, EdgeSlot: 0},
			}},
			&ExtendIntersectOp{TargetSlot: 2, Lists: []ListRef{
				{Kind: ListPrimary, Dir: index.FW, OwnerVertexSlot: 1, EdgeSlot: 1},
			}},
		},
	}
}

// shardEdgePlan is an edge-rooted 2-path (ownership keyed on Src(e)).
func shardEdgePlan() *Plan {
	return &Plan{
		NumV: 3, NumE: 2,
		Ops: []Op{
			&ScanEdgeOp{EdgeSlot: 0, SrcSlot: 0, DstSlot: 1},
			&ExtendIntersectOp{TargetSlot: 2, Lists: []ListRef{
				{Kind: ListPrimary, Dir: index.FW, OwnerVertexSlot: 1, EdgeSlot: 1},
			}},
		},
	}
}

// TestShardPartitionExact asserts that for K-way sharding the per-shard
// counts, i-cost, and PredEvals sum exactly to the unsharded run, for both
// vertex- and edge-rooted plans, on the serial and morsel-parallel paths.
func TestShardPartitionExact(t *testing.T) {
	s := allocStore(t)
	plans := map[string]*Plan{"triangle": shardTrianglePlan(), "edge2path": shardEdgePlan()}
	for name, plan := range plans {
		base := NewRuntime(s)
		want := plan.Count(base)
		if want == 0 {
			t.Fatalf("%s: degenerate test, no matches", name)
		}
		for _, k := range []int{1, 2, 3, 8} {
			var n, icost, preds int64
			for i := 0; i < k; i++ {
				rt := NewRuntime(s)
				rt.Shard = ShardSpec{Index: i, Of: k}
				n += plan.Count(rt)
				icost += rt.ICost
				preds += rt.PredEvals
			}
			if n != want {
				t.Errorf("%s K=%d: count %d, want %d", name, k, n, want)
			}
			if icost != base.ICost {
				t.Errorf("%s K=%d: i-cost %d, want %d", name, k, icost, base.ICost)
			}
			if preds != base.PredEvals {
				t.Errorf("%s K=%d: PredEvals %d, want %d", name, k, preds, base.PredEvals)
			}
			// Morsel-parallel inside each shard must not change the sums.
			var pn, picost, ppreds int64
			for i := 0; i < k; i++ {
				rt := NewRuntime(s)
				rt.Shard = ShardSpec{Index: i, Of: k}
				got, err := plan.CountParallel(rt, ParallelOptions{Workers: 4, MorselSize: 7})
				if err != nil {
					t.Fatalf("%s K=%d shard %d: %v", name, k, i, err)
				}
				pn += got
				picost += rt.ICost
				ppreds += rt.PredEvals
			}
			if pn != want || picost != base.ICost || ppreds != base.PredEvals {
				t.Errorf("%s K=%d parallel: (%d,%d,%d), want (%d,%d,%d)",
					name, k, pn, picost, ppreds, want, base.ICost, base.PredEvals)
			}
		}
	}
}

// TestShardExactIDScan pins that exact-ID roots resolve to exactly one
// owning shard.
func TestShardExactIDScan(t *testing.T) {
	s := allocStore(t)
	id := storage.VertexID(5)
	plan := &Plan{
		NumV: 2, NumE: 1,
		Ops: []Op{
			&ScanVertexOp{Slot: 0, ExactID: &id},
			&ExtendIntersectOp{TargetSlot: 1, Lists: []ListRef{
				{Kind: ListPrimary, Dir: index.FW, OwnerVertexSlot: 0, EdgeSlot: 0},
			}},
		},
	}
	want := plan.Count(NewRuntime(s))
	const k = 4
	owners := 0
	var n int64
	for i := 0; i < k; i++ {
		rt := NewRuntime(s)
		rt.Shard = ShardSpec{Index: i, Of: k}
		got := plan.Count(rt)
		if got > 0 {
			owners++
		}
		n += got
	}
	if owners != 1 || n != want {
		t.Fatalf("exact-ID scan: %d owning shards (want 1), count %d (want %d)", owners, n, want)
	}
}

// TestOwnerStable pins the ownership hash: every vertex maps to exactly one
// shard in range, and Of<=1 never filters.
func TestOwnerStable(t *testing.T) {
	for _, k := range []int{2, 3, 8} {
		for v := 0; v < 1000; v++ {
			o := Owner(storage.VertexID(v), k)
			if o < 0 || o >= k {
				t.Fatalf("Owner(%d, %d) = %d out of range", v, k, o)
			}
			if o != Owner(storage.VertexID(v), k) {
				t.Fatalf("Owner not deterministic")
			}
		}
	}
	if Owner(42, 1) != 0 || Owner(42, 0) != 0 {
		t.Fatal("Of<=1 must map everything to shard 0")
	}
	if (ShardSpec{Index: 0, Of: 1}).active() || !(ShardSpec{Index: 0, Of: 2}).active() {
		t.Fatal("active() wrong")
	}
}

// TestZeroAllocAlternatingPlans pins the per-plan pipeline cache: once a
// Runtime has executed two distinct plans, alternating between them stays
// allocation-free (previously only the immediately-preceding plan was
// cached, so alternation recompiled a pipeline per call).
func TestZeroAllocAlternatingPlans(t *testing.T) {
	s := allocStore(t)
	rt := NewRuntime(s)
	p1 := shardTrianglePlan()
	p2 := shardEdgePlan()
	w1 := p1.Count(rt)
	w2 := p2.Count(rt)
	if w1 == 0 || w2 == 0 {
		t.Fatal("degenerate test: no matches")
	}
	allocs := testing.AllocsPerRun(10, func() {
		if got := p1.Count(rt); got != w1 {
			t.Fatalf("p1 count changed: %d vs %d", got, w1)
		}
		if got := p2.Count(rt); got != w2 {
			t.Fatalf("p2 count changed: %d vs %d", got, w2)
		}
	})
	if allocs != 0 {
		t.Errorf("alternating warm plans allocated %.1f times per run, want 0", allocs)
	}
}

// TestZeroAllocShardFilter pins that an active shard filter adds no
// allocations to the steady-state loop.
func TestZeroAllocShardFilter(t *testing.T) {
	s := allocStore(t)
	rt := NewRuntime(s)
	rt.Shard = ShardSpec{Index: 1, Of: 2}
	assertZeroAlloc(t, rt, shardTrianglePlan())
}

// TestPipelineCacheOverflow pins that overflowing the pipeline cache drops
// and rebuilds rather than growing without bound or corrupting results.
func TestPipelineCacheOverflow(t *testing.T) {
	s := allocStore(t)
	rt := NewRuntime(s)
	ref := shardTrianglePlan()
	want := ref.Count(NewRuntime(s))
	for i := 0; i < maxCachedPipelines+8; i++ {
		p := shardTrianglePlan() // distinct *Plan each time
		if got := p.Count(rt); got != want {
			t.Fatalf("plan %d: count %d, want %d", i, got, want)
		}
	}
	if len(rt.pipes) > maxCachedPipelines {
		t.Fatalf("pipeline cache grew to %d entries, cap %d", len(rt.pipes), maxCachedPipelines)
	}
	if got := ref.Count(rt); got != want {
		t.Fatalf("after overflow: count %d, want %d", got, want)
	}
}
