package exec

import (
	"fmt"
	"strings"

	"github.com/aplusdb/aplus/internal/index"
	"github.com/aplusdb/aplus/internal/storage"
)

// Op is a physical operator. run processes the current binding and calls
// next for every produced extension; returning false aborts the pipeline.
// sc is the operator's slot in the worker's Scratch arena: all per-tuple
// buffers live there, never on the heap, and Op values themselves carry no
// mutable state so one Plan can run in many workers at once.
type Op interface {
	run(rt *Runtime, sc *opScratch, b *Binding, next func() bool) bool
	explain() string
}

// ScanVertexOp binds a vertex slot by scanning the vertex table (or jumping
// straight to an exact ID). Terms are vertex-local predicates evaluated
// during the scan.
type ScanVertexOp struct {
	Slot     int
	HasLabel bool
	Label    storage.LabelID
	ExactID  *storage.VertexID
	Terms    []CompiledTerm
}

func (o *ScanVertexOp) run(rt *Runtime, sc *opScratch, b *Binding, next func() bool) bool {
	return o.runRange(rt, sc, b, 0, o.tableSize(rt), next)
}

// tableSize reports the number of scan positions (partitionableOp).
func (o *ScanVertexOp) tableSize(rt *Runtime) int {
	if o.ExactID != nil {
		return 1
	}
	if o.HasLabel {
		return len(rt.G.VerticesWithLabel(o.Label))
	}
	return rt.G.NumVertices()
}

// runRange scans positions [lo, hi) of the vertex table — or, when a label
// is fixed, of the per-label vertex list, so unlabeled vertices are never
// touched (partitionableOp).
func (o *ScanVertexOp) runRange(rt *Runtime, _ *opScratch, b *Binding, lo, hi int, next func() bool) bool {
	tryOne := func(v storage.VertexID) bool {
		// Shard ownership filters before predicates and binding: a skipped
		// entry charges no metrics, so per-shard counters sum bit-identically
		// to an unsharded run (see ShardSpec).
		if rt.Shard.active() && !rt.Shard.ownsVertex(v) {
			return true
		}
		b.V[o.Slot] = v
		if !evalAll(rt, b, o.Terms) {
			return true
		}
		return next()
	}
	if o.ExactID != nil {
		if lo > 0 || hi < 1 {
			return true
		}
		if int(*o.ExactID) >= rt.G.NumVertices() {
			return true
		}
		if o.HasLabel && rt.G.VertexLabel(*o.ExactID) != o.Label {
			return true
		}
		return tryOne(*o.ExactID)
	}
	if o.HasLabel {
		for _, v := range rt.G.VerticesWithLabel(o.Label)[lo:hi] {
			if !tryOne(v) {
				return false
			}
		}
		return true
	}
	for v := lo; v < hi; v++ {
		if !tryOne(storage.VertexID(v)) {
			return false
		}
	}
	return true
}

func (o *ScanVertexOp) explain() string {
	s := fmt.Sprintf("SCAN v%d", o.Slot)
	if o.ExactID != nil {
		s += fmt.Sprintf(" id=%d", *o.ExactID)
	}
	if o.HasLabel {
		s += fmt.Sprintf(" label=%d", o.Label)
	}
	for _, t := range o.Terms {
		s += " " + t.String()
	}
	return s
}

// ScanEdgeOp binds an edge slot (and both endpoint vertex slots) by
// scanning the edge table or jumping to an exact edge ID — the entry point
// for plans anchored at an edge, like Example 7's r1.eID = t13.
type ScanEdgeOp struct {
	EdgeSlot, SrcSlot, DstSlot int
	HasLabel                   bool
	Label                      storage.LabelID
	ExactID                    *storage.EdgeID
	Terms                      []CompiledTerm
}

func (o *ScanEdgeOp) run(rt *Runtime, sc *opScratch, b *Binding, next func() bool) bool {
	return o.runRange(rt, sc, b, 0, o.tableSize(rt), next)
}

// tableSize reports the number of scan positions (partitionableOp).
func (o *ScanEdgeOp) tableSize(rt *Runtime) int {
	if o.ExactID != nil {
		return 1
	}
	return rt.G.NumEdges()
}

// runRange scans edge slots [lo, hi) of the edge table (partitionableOp).
func (o *ScanEdgeOp) runRange(rt *Runtime, _ *opScratch, b *Binding, lo, hi int, next func() bool) bool {
	tryOne := func(e storage.EdgeID) bool {
		if rt.G.EdgeDeleted(e) {
			return true
		}
		if rt.Delta != nil && rt.Delta.EdgeDeleted(e) {
			return true
		}
		if o.HasLabel && rt.G.EdgeLabel(e) != o.Label {
			return true
		}
		// Edge-rooted plans partition shard ownership on the source vertex;
		// the filter runs after the tombstone/label skips (which charge no
		// metrics either) and before predicates and binding.
		if rt.Shard.active() && !rt.Shard.ownsVertex(rt.G.Src(e)) {
			return true
		}
		b.E[o.EdgeSlot] = e
		b.V[o.SrcSlot] = rt.G.Src(e)
		b.V[o.DstSlot] = rt.G.Dst(e)
		if !evalAll(rt, b, o.Terms) {
			return true
		}
		return next()
	}
	if o.ExactID != nil {
		if lo > 0 || hi < 1 {
			return true
		}
		if int(*o.ExactID) >= rt.G.NumEdges() {
			return true
		}
		return tryOne(*o.ExactID)
	}
	for e := lo; e < hi; e++ {
		if !tryOne(storage.EdgeID(e)) {
			return false
		}
	}
	return true
}

func (o *ScanEdgeOp) explain() string {
	s := fmt.Sprintf("SCAN-EDGE e%d (v%d->v%d)", o.EdgeSlot, o.SrcSlot, o.DstSlot)
	if o.ExactID != nil {
		s += fmt.Sprintf(" id=%d", *o.ExactID)
	}
	return s
}

// ExtendIntersectOp is the system's primary join operator (E/I): it
// intersects z >= 1 neighbour-ID-sorted adjacency lists and extends the
// partial match by one query vertex, binding each list's matched edge. With
// z = 1 no intersection is performed — a plain EXTEND.
//
// Every fetched list is block-decoded once into the scratch slot's flat
// slices (zero-copy for direct lists); the intersection then gallops over
// raw []uint32 neighbour arrays with no per-element representation branch.
type ExtendIntersectOp struct {
	Lists      []ListRef
	TargetSlot int
}

func (o *ExtendIntersectOp) run(rt *Runtime, sc *opScratch, b *Binding, next func() bool) bool {
	if len(o.Lists) == 1 && o.Lists[0].Seg == nil {
		// Plain EXTEND: order within the list is irrelevant, a prefix-coded
		// multi-bucket range is fine.
		r := &o.Lists[0]
		sc.ensureLists(1)
		sc.decode(0, r.fetchWith(rt, sc, 0, b, r.Codes))
		f := sc.lists[0]
		for i, nbr := range f.nbrs {
			b.V[o.TargetSlot] = storage.VertexID(nbr)
			b.E[r.EdgeSlot] = storage.EdgeID(f.eids[i])
			if !next() {
				return false
			}
		}
		return true
	}
	// Sorted access (segments or intersections) works bucket-by-bucket:
	// process each combination of the lists' innermost-bucket choices.
	z := len(o.Lists)
	sc.initCombo(o.Lists)
	sc.ensureLists(z)
	for {
		empty := false
		for i := range o.Lists {
			l := o.Lists[i].fetchWith(rt, sc, i, b, sc.codes[i])
			if l.Len() == 0 {
				empty = true
				break
			}
			sc.decode(i, l)
		}
		if !empty {
			if z == 1 {
				r := &o.Lists[0]
				f := sc.lists[0]
				for i, nbr := range f.nbrs {
					b.V[o.TargetSlot] = storage.VertexID(nbr)
					b.E[r.EdgeSlot] = storage.EdgeID(f.eids[i])
					if !next() {
						return false
					}
				}
			} else if !o.intersect(sc, b, next) {
				return false
			}
		}
		if !sc.advanceCombo() {
			return true
		}
	}
}

// intersect performs a z-way sorted intersection over the block-decoded
// lists with duplicate-aware runs (parallel edges produce one output per
// edge combination).
func (o *ExtendIntersectOp) intersect(sc *opScratch, b *Binding, next func() bool) bool {
	z := len(sc.lists)
	pos, runEnd := sc.pos, sc.runEnd
	for i := range pos {
		pos[i] = 0
	}
	for {
		// Propose the maximum current neighbour.
		var target uint32
		for i := 0; i < z; i++ {
			nbrs := sc.lists[i].nbrs
			if pos[i] >= len(nbrs) {
				return true
			}
			if n := nbrs[pos[i]]; n > target {
				target = n
			}
		}
		// Advance every list to >= target; restart when overshooting.
		agreed := true
		for i := 0; i < z; i++ {
			nbrs := sc.lists[i].nbrs
			pos[i] = gallopNbrs(nbrs, pos[i], target)
			if pos[i] >= len(nbrs) {
				return true
			}
			if nbrs[pos[i]] != target {
				agreed = false
			}
		}
		if !agreed {
			continue
		}
		// Locate each list's duplicate run of the matched neighbour by
		// galloping, so long parallel-edge runs are skipped in one step.
		for i := 0; i < z; i++ {
			runEnd[i] = runEndOf(sc.lists[i].nbrs, pos[i], target)
		}
		b.V[o.TargetSlot] = storage.VertexID(target)
		if !o.emitRuns(sc, b, 0, next) {
			return false
		}
		for i := 0; i < z; i++ {
			pos[i] = runEnd[i]
		}
	}
}

// emitRuns emits the cross product of edge choices across lists.
func (o *ExtendIntersectOp) emitRuns(sc *opScratch, b *Binding, i int, next func() bool) bool {
	if i == len(sc.lists) {
		return next()
	}
	eids := sc.lists[i].eids
	slot := o.Lists[i].EdgeSlot
	for k := sc.pos[i]; k < sc.runEnd[i]; k++ {
		b.E[slot] = storage.EdgeID(eids[k])
		if !o.emitRuns(sc, b, i+1, next) {
			return false
		}
	}
	return true
}

func (o *ExtendIntersectOp) explain() string {
	parts := make([]string, len(o.Lists))
	for i, r := range o.Lists {
		parts[i] = r.String()
	}
	name := "EXTEND"
	if len(o.Lists) > 1 {
		name = "E/I"
	}
	return fmt.Sprintf("%s v%d <- %s", name, o.TargetSlot, strings.Join(parts, " ∩ "))
}

// MEGroup is one extension target of a MULTI-EXTEND: the lists whose
// neighbour must agree for this target.
type MEGroup struct {
	TargetSlot int
	Lists      []ListRef
}

// MultiExtendOp intersects lists that are sorted on a property other than
// neighbour IDs and extends the partial match by one or more query vertices
// at once (Section IV-A). All lists across all groups must share the sort
// key; matches are combinations with equal sort-key value in every list,
// e.g. "accounts in the same city" joins.
type MultiExtendOp struct {
	Key    index.SortKey
	Groups []MEGroup
}

type meCursor struct {
	list index.AdjList
	ref  ListRef
	pos  int
	end  int // run end for the current ordinal
}

func (o *MultiExtendOp) run(rt *Runtime, sc *opScratch, b *Binding, next func() bool) bool {
	sc.initME(o)
	sc.initCombo(sc.refs)
	for {
		ok := true
		for i := range sc.refs {
			l := sc.refs[i].fetchWith(rt, sc, i, b, sc.codes[i])
			if l.Len() == 0 {
				ok = false
				break
			}
			sc.cursors[i] = meCursor{list: l, ref: sc.refs[i]}
		}
		if ok && !o.merge(rt, sc, b, next) {
			return false
		}
		if !sc.advanceCombo() {
			return true
		}
	}
}

// meOrdinal computes the sort-key ordinal of cursor entry i.
func meOrdinal(g *storage.Graph, key index.SortKey, c *meCursor, i int) uint64 {
	nbr, e := c.list.Get(i)
	return index.SortKeyOrdinal(g, key, e, nbr)
}

func (o *MultiExtendOp) merge(rt *Runtime, sc *opScratch, b *Binding, next func() bool) bool {
	g := rt.G
	cursors := sc.cursors
	nullOrd := ^uint64(0)
	for {
		// Find the max current ordinal.
		var target uint64
		for i := range cursors {
			c := &cursors[i]
			if c.pos >= c.list.Len() {
				return true
			}
			if ord := meOrdinal(g, o.Key, c, c.pos); ord > target {
				target = ord
			}
		}
		if target == nullOrd {
			// NULL sort values never join (null city matches nothing).
			return true
		}
		agreed := true
		for i := range cursors {
			c := &cursors[i]
			for c.pos < c.list.Len() && meOrdinal(g, o.Key, c, c.pos) < target {
				c.pos++
			}
			if c.pos >= c.list.Len() {
				return true
			}
			if meOrdinal(g, o.Key, c, c.pos) != target {
				agreed = false
			}
		}
		if !agreed {
			continue
		}
		for i := range cursors {
			c := &cursors[i]
			j := c.pos
			for j < c.list.Len() && meOrdinal(g, o.Key, c, j) == target {
				j++
			}
			c.end = j
		}
		if !o.emitGroups(rt, sc, b, 0, next) {
			return false
		}
		for i := range cursors {
			cursors[i].pos = cursors[i].end
		}
	}
}

// emitGroups walks groups in order, intersecting each group's runs on the
// neighbour and emitting the cross product across groups.
func (o *MultiExtendOp) emitGroups(rt *Runtime, sc *opScratch, b *Binding, gi int, next func() bool) bool {
	if gi == len(o.Groups) {
		return next()
	}
	gs := &sc.groups[gi]
	target := o.Groups[gi].TargetSlot
	if len(gs.cur) == 1 {
		c := &sc.cursors[gs.cur[0]]
		for k := c.pos; k < c.end; k++ {
			nbr, e := c.list.Get(k)
			b.V[target] = nbr
			b.E[c.ref.EdgeSlot] = e
			if !o.emitGroups(rt, sc, b, gi+1, next) {
				return false
			}
		}
		return true
	}
	// Multiple lists for one target: the runs are sorted by neighbour
	// within the equal-ordinal region; intersect them.
	idx, ends := gs.idx, gs.ends
	for i, ci := range gs.cur {
		idx[i] = sc.cursors[ci].pos
	}
	for {
		var nbrTarget storage.VertexID
		for i, ci := range gs.cur {
			c := &sc.cursors[ci]
			if idx[i] >= c.end {
				return true
			}
			if n := c.list.Nbr(idx[i]); n > nbrTarget {
				nbrTarget = n
			}
		}
		agreed := true
		for i, ci := range gs.cur {
			c := &sc.cursors[ci]
			for idx[i] < c.end && c.list.Nbr(idx[i]) < nbrTarget {
				idx[i]++
			}
			if idx[i] >= c.end {
				return true
			}
			if c.list.Nbr(idx[i]) != nbrTarget {
				agreed = false
			}
		}
		if !agreed {
			continue
		}
		for i, ci := range gs.cur {
			c := &sc.cursors[ci]
			j := idx[i]
			for j < c.end && c.list.Nbr(j) == nbrTarget {
				j++
			}
			ends[i] = j
		}
		b.V[target] = nbrTarget
		if !o.emitGroupEdges(rt, sc, b, gi, 0, next) {
			return false
		}
		for i := range gs.cur {
			idx[i] = ends[i]
		}
	}
}

// emitGroupEdges emits the cross product of edge choices inside group gi,
// then recurses into the next group.
func (o *MultiExtendOp) emitGroupEdges(rt *Runtime, sc *opScratch, b *Binding, gi, i int, next func() bool) bool {
	gs := &sc.groups[gi]
	if i == len(gs.cur) {
		return o.emitGroups(rt, sc, b, gi+1, next)
	}
	c := &sc.cursors[gs.cur[i]]
	for k := gs.idx[i]; k < gs.ends[i]; k++ {
		b.E[c.ref.EdgeSlot] = c.list.Edge(k)
		if !o.emitGroupEdges(rt, sc, b, gi, i+1, next) {
			return false
		}
	}
	return true
}

func (o *MultiExtendOp) explain() string {
	var parts []string
	for _, g := range o.Groups {
		var ls []string
		for _, r := range g.Lists {
			ls = append(ls, r.String())
		}
		parts = append(parts, fmt.Sprintf("v%d<-%s", g.TargetSlot, strings.Join(ls, "∩")))
	}
	return fmt.Sprintf("MULTI-EXTEND on %s: %s", o.Key, strings.Join(parts, " ⋈ "))
}

// FilterOp evaluates residual predicates that the chosen indexes did not
// already guarantee.
type FilterOp struct {
	Terms []CompiledTerm
}

func (o *FilterOp) run(rt *Runtime, _ *opScratch, b *Binding, next func() bool) bool {
	if !evalAll(rt, b, o.Terms) {
		return true
	}
	return next()
}

func (o *FilterOp) explain() string {
	parts := make([]string, len(o.Terms))
	for i, t := range o.Terms {
		parts[i] = t.String()
	}
	return "FILTER " + strings.Join(parts, " AND ")
}
