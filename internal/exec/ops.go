package exec

import (
	"fmt"
	"strings"

	"github.com/aplusdb/aplus/internal/index"
	"github.com/aplusdb/aplus/internal/storage"
)

// Op is a physical operator. run processes the current binding and calls
// next for every produced extension; returning false aborts the pipeline.
type Op interface {
	run(rt *Runtime, b *Binding, next func() bool) bool
	explain() string
}

// ScanVertexOp binds a vertex slot by scanning the vertex table (or jumping
// straight to an exact ID). Terms are vertex-local predicates evaluated
// during the scan.
type ScanVertexOp struct {
	Slot     int
	HasLabel bool
	Label    storage.LabelID
	ExactID  *storage.VertexID
	Terms    []CompiledTerm
}

func (o *ScanVertexOp) run(rt *Runtime, b *Binding, next func() bool) bool {
	return o.runRange(rt, b, 0, o.tableSize(rt), next)
}

// tableSize reports the number of scan positions (partitionableOp).
func (o *ScanVertexOp) tableSize(rt *Runtime) int {
	if o.ExactID != nil {
		return 1
	}
	if o.HasLabel {
		return len(rt.G.VerticesWithLabel(o.Label))
	}
	return rt.G.NumVertices()
}

// runRange scans positions [lo, hi) of the vertex table — or, when a label
// is fixed, of the per-label vertex list, so unlabeled vertices are never
// touched (partitionableOp).
func (o *ScanVertexOp) runRange(rt *Runtime, b *Binding, lo, hi int, next func() bool) bool {
	tryOne := func(v storage.VertexID) bool {
		b.V[o.Slot] = v
		if !evalAll(rt, b, o.Terms) {
			return true
		}
		return next()
	}
	if o.ExactID != nil {
		if lo > 0 || hi < 1 {
			return true
		}
		if int(*o.ExactID) >= rt.G.NumVertices() {
			return true
		}
		if o.HasLabel && rt.G.VertexLabel(*o.ExactID) != o.Label {
			return true
		}
		return tryOne(*o.ExactID)
	}
	if o.HasLabel {
		for _, v := range rt.G.VerticesWithLabel(o.Label)[lo:hi] {
			if !tryOne(v) {
				return false
			}
		}
		return true
	}
	for v := lo; v < hi; v++ {
		if !tryOne(storage.VertexID(v)) {
			return false
		}
	}
	return true
}

func (o *ScanVertexOp) explain() string {
	s := fmt.Sprintf("SCAN v%d", o.Slot)
	if o.ExactID != nil {
		s += fmt.Sprintf(" id=%d", *o.ExactID)
	}
	if o.HasLabel {
		s += fmt.Sprintf(" label=%d", o.Label)
	}
	for _, t := range o.Terms {
		s += " " + t.String()
	}
	return s
}

// ScanEdgeOp binds an edge slot (and both endpoint vertex slots) by
// scanning the edge table or jumping to an exact edge ID — the entry point
// for plans anchored at an edge, like Example 7's r1.eID = t13.
type ScanEdgeOp struct {
	EdgeSlot, SrcSlot, DstSlot int
	HasLabel                   bool
	Label                      storage.LabelID
	ExactID                    *storage.EdgeID
	Terms                      []CompiledTerm
}

func (o *ScanEdgeOp) run(rt *Runtime, b *Binding, next func() bool) bool {
	return o.runRange(rt, b, 0, o.tableSize(rt), next)
}

// tableSize reports the number of scan positions (partitionableOp).
func (o *ScanEdgeOp) tableSize(rt *Runtime) int {
	if o.ExactID != nil {
		return 1
	}
	return rt.G.NumEdges()
}

// runRange scans edge slots [lo, hi) of the edge table (partitionableOp).
func (o *ScanEdgeOp) runRange(rt *Runtime, b *Binding, lo, hi int, next func() bool) bool {
	tryOne := func(e storage.EdgeID) bool {
		if rt.G.EdgeDeleted(e) {
			return true
		}
		if o.HasLabel && rt.G.EdgeLabel(e) != o.Label {
			return true
		}
		b.E[o.EdgeSlot] = e
		b.V[o.SrcSlot] = rt.G.Src(e)
		b.V[o.DstSlot] = rt.G.Dst(e)
		if !evalAll(rt, b, o.Terms) {
			return true
		}
		return next()
	}
	if o.ExactID != nil {
		if lo > 0 || hi < 1 {
			return true
		}
		if int(*o.ExactID) >= rt.G.NumEdges() {
			return true
		}
		return tryOne(*o.ExactID)
	}
	for e := lo; e < hi; e++ {
		if !tryOne(storage.EdgeID(e)) {
			return false
		}
	}
	return true
}

func (o *ScanEdgeOp) explain() string {
	s := fmt.Sprintf("SCAN-EDGE e%d (v%d->v%d)", o.EdgeSlot, o.SrcSlot, o.DstSlot)
	if o.ExactID != nil {
		s += fmt.Sprintf(" id=%d", *o.ExactID)
	}
	return s
}

// ExtendIntersectOp is the system's primary join operator (E/I): it
// intersects z >= 1 neighbour-ID-sorted adjacency lists and extends the
// partial match by one query vertex, binding each list's matched edge. With
// z = 1 no intersection is performed — a plain EXTEND.
type ExtendIntersectOp struct {
	Lists      []ListRef
	TargetSlot int
}

func (o *ExtendIntersectOp) run(rt *Runtime, b *Binding, next func() bool) bool {
	if len(o.Lists) == 1 && o.Lists[0].Seg == nil {
		// Plain EXTEND: order within the list is irrelevant, a prefix-coded
		// multi-bucket range is fine.
		r := o.Lists[0]
		l := r.Fetch(rt, b)
		for i := 0; i < l.Len(); i++ {
			nbr, e := l.Get(i)
			b.V[o.TargetSlot] = nbr
			b.E[r.EdgeSlot] = e
			if !next() {
				return false
			}
		}
		return true
	}
	// Sorted access (segments or intersections) works bucket-by-bucket:
	// process each combination of the lists' innermost-bucket choices.
	return forEachCombo(o.Lists, func(codes [][]uint16) bool {
		lists := make([]index.AdjList, len(o.Lists))
		for i, r := range o.Lists {
			lists[i] = r.fetchWith(rt, b, codes[i])
			if lists[i].Len() == 0 {
				return true
			}
		}
		if len(lists) == 1 {
			r := o.Lists[0]
			l := lists[0]
			for i := 0; i < l.Len(); i++ {
				nbr, e := l.Get(i)
				b.V[o.TargetSlot] = nbr
				b.E[r.EdgeSlot] = e
				if !next() {
					return false
				}
			}
			return true
		}
		return o.intersect(rt, b, lists, next)
	})
}

// forEachCombo walks the cartesian product of each list's bucket choices.
func forEachCombo(lists []ListRef, f func(codes [][]uint16) bool) bool {
	z := len(lists)
	choices := make([][][]uint16, z)
	idx := make([]int, z)
	for i, r := range lists {
		choices[i] = r.choices()
	}
	codes := make([][]uint16, z)
	for {
		for i := 0; i < z; i++ {
			codes[i] = choices[i][idx[i]]
		}
		if !f(codes) {
			return false
		}
		// Odometer advance.
		i := z - 1
		for ; i >= 0; i-- {
			idx[i]++
			if idx[i] < len(choices[i]) {
				break
			}
			idx[i] = 0
		}
		if i < 0 {
			return true
		}
	}
}

// intersect performs a z-way sorted intersection with duplicate-aware runs
// (parallel edges produce one output per edge combination).
func (o *ExtendIntersectOp) intersect(rt *Runtime, b *Binding, lists []index.AdjList, next func() bool) bool {
	z := len(lists)
	pos := make([]int, z)
	runEnd := make([]int, z)
	for {
		// Propose the maximum current neighbour.
		var target storage.VertexID
		for i := 0; i < z; i++ {
			if pos[i] >= lists[i].Len() {
				return true
			}
			if n := lists[i].Nbr(pos[i]); n > target {
				target = n
			}
		}
		// Advance every list to >= target; restart when overshooting.
		agreed := true
		for i := 0; i < z; i++ {
			pos[i] = gallopTo(lists[i], pos[i], target)
			if pos[i] >= lists[i].Len() {
				return true
			}
			if lists[i].Nbr(pos[i]) != target {
				agreed = false
			}
		}
		if !agreed {
			continue
		}
		// Compute per-list runs of the matched neighbour.
		for i := 0; i < z; i++ {
			j := pos[i]
			for j < lists[i].Len() && lists[i].Nbr(j) == target {
				j++
			}
			runEnd[i] = j
		}
		b.V[o.TargetSlot] = target
		if !o.emitRuns(rt, b, lists, pos, runEnd, 0, next) {
			return false
		}
		for i := 0; i < z; i++ {
			pos[i] = runEnd[i]
		}
	}
}

// emitRuns emits the cross product of edge choices across lists.
func (o *ExtendIntersectOp) emitRuns(rt *Runtime, b *Binding, lists []index.AdjList, pos, runEnd []int, i int, next func() bool) bool {
	if i == len(lists) {
		return next()
	}
	for k := pos[i]; k < runEnd[i]; k++ {
		b.E[o.Lists[i].EdgeSlot] = lists[i].Edge(k)
		if !o.emitRuns(rt, b, lists, pos, runEnd, i+1, next) {
			return false
		}
	}
	return true
}

// gallopTo returns the first position >= from whose neighbour is >= target,
// using exponential probing followed by binary search.
func gallopTo(l index.AdjList, from int, target storage.VertexID) int {
	n := l.Len()
	if from >= n || l.Nbr(from) >= target {
		return from
	}
	step := 1
	lo := from
	hi := from + step
	for hi < n && l.Nbr(hi) < target {
		lo = hi
		step *= 2
		hi = lo + step
	}
	if hi > n {
		hi = n
	}
	for lo < hi {
		mid := (lo + hi) / 2
		if l.Nbr(mid) < target {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

func (o *ExtendIntersectOp) explain() string {
	parts := make([]string, len(o.Lists))
	for i, r := range o.Lists {
		parts[i] = r.String()
	}
	name := "EXTEND"
	if len(o.Lists) > 1 {
		name = "E/I"
	}
	return fmt.Sprintf("%s v%d <- %s", name, o.TargetSlot, strings.Join(parts, " ∩ "))
}

// MEGroup is one extension target of a MULTI-EXTEND: the lists whose
// neighbour must agree for this target.
type MEGroup struct {
	TargetSlot int
	Lists      []ListRef
}

// MultiExtendOp intersects lists that are sorted on a property other than
// neighbour IDs and extends the partial match by one or more query vertices
// at once (Section IV-A). All lists across all groups must share the sort
// key; matches are combinations with equal sort-key value in every list,
// e.g. "accounts in the same city" joins.
type MultiExtendOp struct {
	Key    index.SortKey
	Groups []MEGroup
}

type meCursor struct {
	list  index.AdjList
	ref   ListRef
	group int
	pos   int
	end   int // run end for the current ordinal
}

func (o *MultiExtendOp) run(rt *Runtime, b *Binding, next func() bool) bool {
	var refs []ListRef
	var groups []int
	for gi, g := range o.Groups {
		for _, r := range g.Lists {
			refs = append(refs, r)
			groups = append(groups, gi)
		}
	}
	return forEachCombo(refs, func(codes [][]uint16) bool {
		var cursors []meCursor
		for i, r := range refs {
			l := r.fetchWith(rt, b, codes[i])
			if l.Len() == 0 {
				return true
			}
			cursors = append(cursors, meCursor{list: l, ref: r, group: groups[i]})
		}
		return o.merge(rt, b, cursors, next)
	})
}

func (o *MultiExtendOp) merge(rt *Runtime, b *Binding, cursors []meCursor, next func() bool) bool {
	g := rt.G
	ordAt := func(c *meCursor, i int) uint64 {
		nbr, e := c.list.Get(i)
		return index.SortKeyOrdinal(g, o.Key, e, nbr)
	}
	nullOrd := ^uint64(0)
	for {
		// Find the max current ordinal.
		var target uint64
		for i := range cursors {
			if cursors[i].pos >= cursors[i].list.Len() {
				return true
			}
			if o := ordAt(&cursors[i], cursors[i].pos); o > target {
				target = o
			}
		}
		if target == nullOrd {
			// NULL sort values never join (null city matches nothing).
			return true
		}
		agreed := true
		for i := range cursors {
			c := &cursors[i]
			for c.pos < c.list.Len() && ordAt(c, c.pos) < target {
				c.pos++
			}
			if c.pos >= c.list.Len() {
				return true
			}
			if ordAt(c, c.pos) != target {
				agreed = false
			}
		}
		if !agreed {
			continue
		}
		for i := range cursors {
			c := &cursors[i]
			j := c.pos
			for j < c.list.Len() && ordAt(c, j) == target {
				j++
			}
			c.end = j
		}
		if !o.emitGroups(rt, b, cursors, 0, next) {
			return false
		}
		for i := range cursors {
			cursors[i].pos = cursors[i].end
		}
	}
}

// emitGroups walks groups in order, intersecting each group's runs on the
// neighbour and emitting the cross product across groups.
func (o *MultiExtendOp) emitGroups(rt *Runtime, b *Binding, cursors []meCursor, gi int, next func() bool) bool {
	if gi == len(o.Groups) {
		return next()
	}
	// Collect this group's cursors.
	var mine []*meCursor
	for i := range cursors {
		if cursors[i].group == gi {
			mine = append(mine, &cursors[i])
		}
	}
	target := o.Groups[gi].TargetSlot
	if len(mine) == 1 {
		c := mine[0]
		for k := c.pos; k < c.end; k++ {
			nbr, e := c.list.Get(k)
			b.V[target] = nbr
			b.E[c.ref.EdgeSlot] = e
			if !o.emitGroups(rt, b, cursors, gi+1, next) {
				return false
			}
		}
		return true
	}
	// Multiple lists for one target: the runs are sorted by neighbour
	// within the equal-ordinal region; intersect them.
	idx := make([]int, len(mine))
	for i, c := range mine {
		idx[i] = c.pos
	}
	for {
		var nbrTarget storage.VertexID
		for i, c := range mine {
			if idx[i] >= c.end {
				return true
			}
			if n := c.list.Nbr(idx[i]); n > nbrTarget {
				nbrTarget = n
			}
		}
		agreed := true
		for i, c := range mine {
			for idx[i] < c.end && c.list.Nbr(idx[i]) < nbrTarget {
				idx[i]++
			}
			if idx[i] >= c.end {
				return true
			}
			if c.list.Nbr(idx[i]) != nbrTarget {
				agreed = false
			}
		}
		if !agreed {
			continue
		}
		runEnds := make([]int, len(mine))
		for i, c := range mine {
			j := idx[i]
			for j < c.end && c.list.Nbr(j) == nbrTarget {
				j++
			}
			runEnds[i] = j
		}
		b.V[target] = nbrTarget
		var emitEdges func(i int) bool
		emitEdges = func(i int) bool {
			if i == len(mine) {
				return o.emitGroups(rt, b, cursors, gi+1, next)
			}
			for k := idx[i]; k < runEnds[i]; k++ {
				b.E[mine[i].ref.EdgeSlot] = mine[i].list.Edge(k)
				if !emitEdges(i + 1) {
					return false
				}
			}
			return true
		}
		if !emitEdges(0) {
			return false
		}
		for i := range mine {
			idx[i] = runEnds[i]
		}
	}
}

func (o *MultiExtendOp) explain() string {
	var parts []string
	for _, g := range o.Groups {
		var ls []string
		for _, r := range g.Lists {
			ls = append(ls, r.String())
		}
		parts = append(parts, fmt.Sprintf("v%d<-%s", g.TargetSlot, strings.Join(ls, "∩")))
	}
	return fmt.Sprintf("MULTI-EXTEND on %s: %s", o.Key, strings.Join(parts, " ⋈ "))
}

// FilterOp evaluates residual predicates that the chosen indexes did not
// already guarantee.
type FilterOp struct {
	Terms []CompiledTerm
}

func (o *FilterOp) run(rt *Runtime, b *Binding, next func() bool) bool {
	if !evalAll(rt, b, o.Terms) {
		return true
	}
	return next()
}

func (o *FilterOp) explain() string {
	parts := make([]string, len(o.Terms))
	for i, t := range o.Terms {
		parts[i] = t.String()
	}
	return "FILTER " + strings.Join(parts, " AND ")
}
