package exec

// Work-stealing correctness: pipeline-deep stealing re-partitions oversized
// op-1 adjacency lists across the pool, and the bit-identical oracle must
// hold regardless — counts, i-cost, and PredEvals identical to the serial
// run at any worker count, steal on or off, over base and delta-spliced
// phases; the steady-state publish/pop/execute cycle allocates nothing; and
// traced runs attribute stolen work to the executing worker while per-op
// span sums stay bit-identical to an unstolen run.

import (
	"testing"

	"github.com/aplusdb/aplus/internal/index"
	"github.com/aplusdb/aplus/internal/storage"
)

// hubGraph builds a sparse background graph plus one super-hub: vertex 0
// carries hubDeg extra out-edges, dwarfing any morsel-sized root partition.
// Vertices get an integer "score" property with every fourth one NULL, so
// aggregate tests exercise null handling on both fold branches.
func hubGraph(t testing.TB, hubDeg int) *storage.Graph {
	t.Helper()
	g := storage.NewGraph()
	const nv = 64
	g.AddVertices(nv, "A")
	for v := 0; v < nv; v++ {
		if _, err := g.AddEdge(storage.VertexID(v), storage.VertexID((v*7+3)%nv), "W"); err != nil {
			t.Fatal(err)
		}
		if _, err := g.AddEdge(storage.VertexID(v), storage.VertexID((v*13+5)%nv), "W"); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < hubDeg; i++ {
		if _, err := g.AddEdge(0, storage.VertexID((i*11+1)%nv), "W"); err != nil {
			t.Fatal(err)
		}
	}
	for v := 0; v < nv; v++ {
		if v%4 == 3 {
			continue // NULL: missing property
		}
		if err := g.SetVertexProp(storage.VertexID(v), "score", storage.Int(int64(v*v%97-30))); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

func hubStore(t testing.TB, hubDeg int) *index.Store {
	t.Helper()
	s, err := index.NewStore(hubGraph(t, hubDeg), index.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// hubPlan is the 2-hop path count: scan a0, extend a1, extend a2. Operator 1
// is the steal point; operator 2 is the fold suffix, so stealing and count
// (or aggregate) pushdown compose on the same run.
func hubPlan() *Plan {
	return &Plan{
		NumV: 3, NumE: 2,
		Ops: []Op{
			&ScanVertexOp{Slot: 0},
			&ExtendIntersectOp{TargetSlot: 1, Lists: []ListRef{
				{Kind: ListPrimary, Dir: index.FW, OwnerVertexSlot: 0, EdgeSlot: 0},
			}},
			&ExtendIntersectOp{TargetSlot: 2, Lists: []ListRef{
				{Kind: ListPrimary, Dir: index.FW, OwnerVertexSlot: 1, EdgeSlot: 1},
			}},
		},
	}
}

// hubDeltaParts builds the hub store plus a non-empty delta overlay (hub
// growth, background churn, two base-edge deletes), returning the parts so
// each configuration can run over a fresh NewRuntimeOver.
func hubDeltaParts(t *testing.T, hubDeg int) (*index.Store, *storage.Graph, *index.Delta) {
	t.Helper()
	g := hubGraph(t, hubDeg)
	s, err := index.NewStore(g, index.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	g2 := g.Clone()
	b := index.NewDeltaBuilder(index.NewDelta(), s.Primary(), g2)
	for i := 0; i < 300; i++ {
		e, err := g2.AddEdge(0, storage.VertexID((i*5+2)%64), "W")
		if err != nil {
			t.Fatal(err)
		}
		b.Insert(e)
	}
	for v := 1; v < 64; v += 3 {
		e, err := g2.AddEdge(storage.VertexID(v), storage.VertexID((v+9)%64), "W")
		if err != nil {
			t.Fatal(err)
		}
		b.Insert(e)
	}
	b.Delete(storage.EdgeID(5))
	b.Delete(storage.EdgeID(40))
	if b.Impossible() {
		t.Fatal("delta unexpectedly unbufferable")
	}
	d := b.Freeze()
	if d.Empty() {
		t.Fatal("delta unexpectedly empty")
	}
	return s, g2, d
}

// stealConfigs is the parity grid: every worker count crossed with steal
// enabled and disabled, at a morsel size small enough that the hub's list
// splits into many sub-morsels.
func stealConfigs() []ParallelOptions {
	var cfgs []ParallelOptions
	for _, workers := range []int{1, 4, 8} {
		for _, disable := range []bool{false, true} {
			cfgs = append(cfgs, ParallelOptions{Workers: workers, MorselSize: 8, DisableSteal: disable})
		}
	}
	return cfgs
}

func TestStealParityAcrossWorkers(t *testing.T) {
	s := hubStore(t, 4096)
	plan := hubPlan()
	if plan.stealPoint(plan.countFoldStart()) == nil {
		t.Fatal("hub plan has no steal point")
	}
	serial := NewRuntime(s)
	want := plan.Count(serial)
	if want == 0 {
		t.Fatal("degenerate steal test: no matches")
	}
	for _, o := range stealConfigs() {
		rt := NewRuntime(s)
		got, err := plan.CountParallel(rt, o)
		if err != nil {
			t.Fatalf("%+v: CountParallel: %v", o, err)
		}
		if got != want {
			t.Errorf("%+v: count = %d, want %d", o, got, want)
		}
		if rt.ICost != serial.ICost || rt.PredEvals != serial.PredEvals {
			t.Errorf("%+v: metrics (%d,%d), serial (%d,%d)",
				o, rt.ICost, rt.PredEvals, serial.ICost, serial.PredEvals)
		}
	}
}

// TestStealParityDeltaSplice is the same grid over a snapshot state with a
// non-empty delta: stolen sub-morsels carry delta-spliced entries too.
func TestStealParityDeltaSplice(t *testing.T) {
	s, g2, d := hubDeltaParts(t, 2048)
	plan := hubPlan()
	serial := NewRuntimeOver(s, g2, d)
	want := plan.Count(serial)
	if want == 0 {
		t.Fatal("degenerate steal test: no matches")
	}
	for _, o := range stealConfigs() {
		rt := NewRuntimeOver(s, g2, d)
		got, err := plan.CountParallel(rt, o)
		if err != nil {
			t.Fatalf("%+v: CountParallel: %v", o, err)
		}
		if got != want {
			t.Errorf("%+v: count = %d, want %d", o, got, want)
		}
		if rt.ICost != serial.ICost || rt.PredEvals != serial.PredEvals {
			t.Errorf("%+v: metrics (%d,%d), serial (%d,%d)",
				o, rt.ICost, rt.PredEvals, serial.ICost, serial.PredEvals)
		}
	}
}

// TestAggregateParallelParity pins the aggregate oracle on every function
// and both fold branches (aggregated slot bound before the boundary vs
// bound by a folded operator): the serial fold, the parallel fold at any
// worker count with stealing on or off, and full enumeration must agree
// exactly — values, row counts, null counts, and i-cost.
func TestAggregateParallelParity(t *testing.T) {
	s := hubStore(t, 1024)
	plan := hubPlan()
	if plan.countFoldStart() >= len(plan.Ops) {
		t.Fatal("fold suffix not recognized")
	}
	for _, kind := range []AggKind{AggCount, AggSum, AggMin, AggMax} {
		for _, slot := range []int{1, 2} {
			spec := AggSpec{Kind: kind, Slot: slot, Prop: "score"}
			serial := NewRuntime(s)
			want := plan.Aggregate(serial, spec)
			if want.Rows == 0 {
				t.Fatal("degenerate aggregate test: no matches")
			}
			if kind != AggCount && want.NonNull == 0 {
				t.Fatal("degenerate aggregate test: all NULLs")
			}
			rtEnum := NewRuntime(s)
			enum, err := plan.aggregateParallelStop(rtEnum, ParallelOptions{Workers: 1}, spec, len(plan.Ops))
			if err != nil {
				t.Fatalf("%v slot %d: enumerate: %v", kind, slot, err)
			}
			if enum != want {
				t.Errorf("%v slot %d: enumerated %+v, folded %+v", kind, slot, enum, want)
			}
			if rtEnum.ICost != serial.ICost {
				t.Errorf("%v slot %d: enumerated i-cost %d, folded %d", kind, slot, rtEnum.ICost, serial.ICost)
			}
			for _, o := range stealConfigs() {
				rt := NewRuntime(s)
				got, err := plan.AggregateParallel(rt, o, spec)
				if err != nil {
					t.Fatalf("%v slot %d %+v: AggregateParallel: %v", kind, slot, o, err)
				}
				if got != want {
					t.Errorf("%v slot %d %+v: got %+v, want %+v", kind, slot, o, got, want)
				}
				if rt.ICost != serial.ICost || rt.PredEvals != serial.PredEvals {
					t.Errorf("%v slot %d %+v: metrics (%d,%d), serial (%d,%d)",
						kind, slot, o, rt.ICost, rt.PredEvals, serial.ICost, serial.PredEvals)
				}
				// Parallel enumeration (stolen sub-morsels included) agrees too.
				rt2 := NewRuntime(s)
				got2, err := plan.aggregateParallelStop(rt2, o, spec, len(plan.Ops))
				if err != nil {
					t.Fatalf("%v slot %d %+v: parallel enumerate: %v", kind, slot, o, err)
				}
				if got2 != want || rt2.ICost != serial.ICost {
					t.Errorf("%v slot %d %+v: parallel enumerated %+v (icost %d), want %+v (icost %d)",
						kind, slot, o, got2, rt2.ICost, want, serial.ICost)
				}
			}
		}
	}
}

// TestAggregateDeltaParity runs the aggregate oracle over the delta phase.
func TestAggregateDeltaParity(t *testing.T) {
	s, g2, d := hubDeltaParts(t, 1024)
	plan := hubPlan()
	spec := AggSpec{Kind: AggSum, Slot: 2, Prop: "score"}
	serial := NewRuntimeOver(s, g2, d)
	want := plan.Aggregate(serial, spec)
	if want.Rows == 0 || want.NonNull == 0 {
		t.Fatal("degenerate delta aggregate test")
	}
	for _, o := range stealConfigs() {
		rt := NewRuntimeOver(s, g2, d)
		got, err := plan.AggregateParallel(rt, o, spec)
		if err != nil {
			t.Fatalf("%+v: AggregateParallel: %v", o, err)
		}
		if got != want || rt.ICost != serial.ICost {
			t.Errorf("%+v: got %+v (icost %d), want %+v (icost %d)", o, got, rt.ICost, want, serial.ICost)
		}
	}
	rtEnum := NewRuntimeOver(s, g2, d)
	enum, err := plan.aggregateParallelStop(rtEnum, ParallelOptions{Workers: 8, MorselSize: 8}, spec, len(plan.Ops))
	if err != nil {
		t.Fatal(err)
	}
	if enum != want || rtEnum.ICost != serial.ICost {
		t.Errorf("enumerated %+v (icost %d), folded %+v (icost %d)", enum, rtEnum.ICost, want, serial.ICost)
	}
}

// TestZeroAllocStolenMorsel pins the steady-state stealing contract: once
// the queue's cells and the thief's landing buffers have grown to the
// working chunk size, a full publish/pop/execute cycle over the hub's list
// performs no heap allocations.
func TestZeroAllocStolenMorsel(t *testing.T) {
	s := hubStore(t, 2048)
	plan := hubPlan()
	rt := NewRuntime(s)
	pl := rt.pipelineFor(plan)
	pl.stop = plan.countFoldStart()
	pl.emit = nil
	pl.aggOn = false
	pl.beginRun()
	op := plan.stealPoint(pl.stop)
	if op == nil {
		t.Fatal("hub plan has no steal point")
	}
	sq := newStealQueue(stealQueueCap, plan.NumV, plan.NumE)
	sr := newStealRun(pl, op, sq, 64)
	cycle := func() int64 {
		pl.n = 0
		pl.b.V[0] = 0 // the hub: its list splits into many sub-morsels
		if !sr.rootNext() {
			t.Fatal("rootNext aborted")
		}
		stolen := 0
		for sq.tryPop(pl.b, &sr.snbrs, &sr.seids) {
			if !sr.runStolen() {
				t.Fatal("runStolen aborted")
			}
			stolen++
		}
		if stolen == 0 {
			t.Fatal("degenerate steal test: nothing published")
		}
		return pl.n
	}
	// Warm until every ring cell has grown its inline buffers: each cycle
	// publishes ~31 chunks, so a dozen cycles wrap the 256-cell ring.
	want := cycle()
	for i := 0; i < 12; i++ {
		if got := cycle(); got != want {
			t.Fatalf("count changed across warm-up runs: %d vs %d", got, want)
		}
	}
	allocs := testing.AllocsPerRun(10, func() {
		if got := cycle(); got != want {
			t.Fatalf("count changed across runs: %d vs %d", got, want)
		}
	})
	if allocs != 0 {
		t.Errorf("steady-state steal cycle allocated %.1f times per run, want 0", allocs)
	}
}

// TestZeroAllocAggregateFold pins the aggregate sink's allocation contract
// on both fold branches: a warm Aggregate run is allocation-free.
func TestZeroAllocAggregateFold(t *testing.T) {
	s := hubStore(t, 256)
	plan := hubPlan()
	for _, spec := range []AggSpec{
		{Kind: AggSum, Slot: 2, Prop: "score"}, // slot bound by a folded operator
		{Kind: AggMin, Slot: 1, Prop: "score"}, // slot bound before the boundary
	} {
		rt := NewRuntime(s)
		want := plan.Aggregate(rt, spec) // warm: compile pipeline, grow scratch
		if want.Rows == 0 || want.NonNull == 0 {
			t.Fatal("degenerate zero-alloc aggregate test")
		}
		allocs := testing.AllocsPerRun(10, func() {
			if got := plan.Aggregate(rt, spec); got != want {
				t.Fatalf("aggregate changed across runs: %+v vs %+v", got, want)
			}
		})
		if allocs != 0 {
			t.Errorf("%v: steady-state Aggregate allocated %.1f times per run, want 0", spec.Kind, allocs)
		}
	}
}

// TestStealTraceAttribution pins traced stealing: stolen sub-morsels are
// charged to the executing worker (the per-worker split and the Stolen
// counters sum exactly), while per-operator span sums — including operator
// call counts — stay bit-identical to the serial traced run.
func TestStealTraceAttribution(t *testing.T) {
	s := hubStore(t, 4096)
	plan := hubPlan()
	ref := NewRuntime(s)
	wantN := plan.Count(ref)

	rt1 := NewRuntime(s)
	rt1.Trace = &Trace{}
	n1, err := plan.CountParallel(rt1, ParallelOptions{Workers: 1, MorselSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	if n1 != wantN {
		t.Fatalf("serial traced count %d, untraced %d", n1, wantN)
	}
	base := rt1.Trace.Report()

	rt := NewRuntime(s)
	rt.Trace = &Trace{}
	n, err := plan.CountParallel(rt, ParallelOptions{Workers: 8, MorselSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	if n != wantN || rt.ICost != ref.ICost || rt.PredEvals != ref.PredEvals {
		t.Fatalf("stolen run (%d, %d, %d) != reference (%d, %d, %d)",
			n, rt.ICost, rt.PredEvals, wantN, ref.ICost, ref.PredEvals)
	}
	tr := rt.Trace
	if tr.Stolen == 0 {
		t.Fatal("hub run stole no sub-morsels")
	}
	spans := tr.Report()
	_, _, icost, preds, _ := spanTotals(spans)
	if icost != rt.ICost || preds != rt.PredEvals {
		t.Fatalf("span sums (%d,%d) != totals (%d,%d)", icost, preds, rt.ICost, rt.PredEvals)
	}
	for i := range spans {
		if spans[i].ICost != base[i].ICost || spans[i].PredEvals != base[i].PredEvals || spans[i].Rows != base[i].Rows {
			t.Fatalf("op %d: stolen span %+v, serial %+v", i, spans[i], base[i])
		}
		if i > 0 && spans[i].Calls != base[i].Calls {
			t.Fatalf("op %d: stolen calls %d, serial %d", i, spans[i].Calls, base[i].Calls)
		}
	}
	var wRows, wICost, wPreds, wStolen int64
	for _, w := range tr.Workers {
		wRows += w.Rows
		wICost += w.ICost
		wPreds += w.PredEvals
		wStolen += w.Stolen
	}
	if wRows != wantN || wICost != rt.ICost || wPreds != rt.PredEvals {
		t.Fatalf("worker split sums (%d,%d,%d) != (%d,%d,%d)", wRows, wICost, wPreds, wantN, rt.ICost, rt.PredEvals)
	}
	if wStolen != tr.Stolen {
		t.Fatalf("worker Stolen sum %d != trace Stolen %d", wStolen, tr.Stolen)
	}
}
