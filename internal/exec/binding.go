// Package exec implements the query processor of the system: push-based
// physical operators over A+ indexes. The operator set mirrors
// GraphflowDB's as described in Section IV-A of the paper: SCAN,
// EXTEND/INTERSECT (E/I, the WCOJ operator performing z-way intersections
// of neighbour-ID-sorted lists), MULTI-EXTEND (intersections of lists
// sorted on other properties, extending to one or more query vertices), and
// FILTER.
package exec

import (
	"github.com/aplusdb/aplus/internal/index"
	"github.com/aplusdb/aplus/internal/storage"
)

// Binding is a partial match: assignments of data vertices/edges to query
// vertex/edge slots.
type Binding struct {
	V []storage.VertexID
	E []storage.EdgeID
}

// NewBinding allocates a binding for the given slot counts.
func NewBinding(numV, numE int) *Binding {
	return &Binding{V: make([]storage.VertexID, numV), E: make([]storage.EdgeID, numE)}
}

// Runtime carries the execution context and accumulates the i-cost metric
// (total adjacency-list entries accessed), which is both the optimizer's
// cost model and a useful observable in tests.
type Runtime struct {
	Store *index.Store
	G     *storage.Graph

	// Delta is the pinned snapshot's overlay of unmerged writes (nil when
	// the snapshot is clean): primary list fetches splice its per-owner
	// insert runs and delete records into the flat-slice decode, and scans
	// skip its pending deletes. G is then the snapshot's graph, which may
	// contain vertices/edges the frozen Store has not indexed yet.
	Delta *index.Delta

	// ICost counts adjacency entries read from lists.
	ICost int64
	// PredEvals counts per-entry predicate evaluations (the quantity that
	// secondary indexes with matching sort orders reduce; Section V-C1).
	PredEvals int64

	// Gov, when set, governs this execution: the pipeline flushes locally
	// accumulated i-cost/row counters into it and polls its stop flag every
	// Governor.CheckEvery sink tuples and at every morsel boundary. The
	// morsel-parallel path shares the root Runtime's Governor with every
	// worker Runtime it spawns. nil disables governance (no per-tuple
	// overhead beyond one nil check per sink call).
	Gov *Governor

	// Shard, when active (Of > 1), restricts the root scan to the entries
	// this shard owns (see ShardSpec). The morsel-parallel path copies it
	// into every worker Runtime.
	Shard ShardSpec

	// Trace, when set, records a span per plan operator for the next
	// execution (EXPLAIN ANALYZE). Like Gov it is an opt-in governor-style
	// hook: nil (the default) disables tracing at the cost of one pointer
	// test per pipeline step and adds no allocations. The morsel-parallel
	// path gives every worker Runtime its own Trace and merges them into
	// this one after the barrier, exactly like ICost/PredEvals — traced
	// metric sums are bit-identical to an untraced run at any worker count.
	Trace *Trace

	// pipe caches the compiled pipeline (binding + scratch arena + closure
	// chain) of the last plan this Runtime executed, and pipes holds one
	// pipeline per plan seen, so warm re-executions are allocation-free
	// even when distinct plans alternate (the serving layer's plan cache
	// replays a small working set of compiled plans against long-lived
	// runtimes). A Runtime serves one plan execution at a time — the
	// morsel-parallel path gives each worker its own Runtime.
	pipe  *pipeline
	pipes map[*Plan]*pipeline
}

// NewRuntime builds a runtime over a store.
func NewRuntime(s *index.Store) *Runtime {
	return &Runtime{Store: s, G: s.Graph()}
}

// NewRuntimeOver builds a runtime reading through a pinned snapshot: the
// frozen base store s, the snapshot's graph g (a superset of the store's
// build graph), and the delta overlay d (an empty or nil delta disables
// splicing entirely).
func NewRuntimeOver(s *index.Store, g *storage.Graph, d *index.Delta) *Runtime {
	if d.Empty() {
		d = nil
	}
	return &Runtime{Store: s, G: g, Delta: d}
}
