package exec

import (
	"fmt"

	"github.com/aplusdb/aplus/internal/pred"
	"github.com/aplusdb/aplus/internal/storage"
)

// Operand names one side of a compiled comparison: a property of a bound
// query vertex or edge, or a constant. Shift adds a constant to numeric
// variable operands (banded predicates).
type Operand struct {
	IsConst bool
	Const   storage.Value
	IsEdge  bool
	Slot    int
	Prop    string
	Shift   int64
}

// ConstOperand builds a constant operand.
func ConstOperand(v storage.Value) Operand { return Operand{IsConst: true, Const: v} }

// VertexOperand builds an operand reading a vertex slot's property.
func VertexOperand(slot int, prop string) Operand { return Operand{Slot: slot, Prop: prop} }

// EdgeOperand builds an operand reading an edge slot's property.
func EdgeOperand(slot int, prop string) Operand { return Operand{IsEdge: true, Slot: slot, Prop: prop} }

// Value resolves the operand under a binding.
func (o Operand) Value(rt *Runtime, b *Binding) storage.Value {
	if o.Shift != 0 {
		v := o
		v.Shift = 0
		return pred.ApplyShift(v.Value(rt, b), o.Shift)
	}
	if o.IsConst {
		return o.Const
	}
	if o.IsEdge {
		e := b.E[o.Slot]
		switch o.Prop {
		case pred.PropID:
			return storage.Int(int64(e))
		case pred.PropLabel:
			return storage.Str(rt.G.Catalog().EdgeLabelName(rt.G.EdgeLabel(e)))
		default:
			return rt.G.EdgeProp(e, o.Prop)
		}
	}
	v := b.V[o.Slot]
	switch o.Prop {
	case pred.PropID:
		return storage.Int(int64(v))
	case pred.PropLabel:
		return storage.Str(rt.G.Catalog().VertexLabelName(rt.G.VertexLabel(v)))
	default:
		return rt.G.VertexProp(v, o.Prop)
	}
}

// String implements fmt.Stringer.
func (o Operand) String() string {
	if o.IsConst {
		return o.Const.String()
	}
	kind := "v"
	if o.IsEdge {
		kind = "e"
	}
	return fmt.Sprintf("%s%d.%s", kind, o.Slot, o.Prop)
}

// CompiledTerm is a comparison ready to evaluate against bindings.
type CompiledTerm struct {
	Left  Operand
	Op    pred.Op
	Right Operand
}

// Eval evaluates the term; it also counts one predicate evaluation.
func (t CompiledTerm) Eval(rt *Runtime, b *Binding) bool {
	rt.PredEvals++
	return pred.Compare(t.Left.Value(rt, b), t.Op, t.Right.Value(rt, b))
}

// String implements fmt.Stringer.
func (t CompiledTerm) String() string {
	return fmt.Sprintf("%s %s %s", t.Left, t.Op, t.Right)
}

func evalAll(rt *Runtime, b *Binding, terms []CompiledTerm) bool {
	for _, t := range terms {
		if !t.Eval(rt, b) {
			return false
		}
	}
	return true
}
