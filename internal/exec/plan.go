package exec

import (
	"fmt"
	"strings"
	"time"
)

// Plan is a linear pipeline of physical operators producing complete
// matches of a query graph.
type Plan struct {
	Ops []Op
	// NumV and NumE size the binding.
	NumV, NumE int
	// VertexNames and EdgeNames map binding slots back to query variables
	// (for explanations and result rendering).
	VertexNames []string
	EdgeNames   []string
	// EstimatedICost is the optimizer's cost estimate for the plan.
	EstimatedICost float64
}

// pipeline is a plan compiled against one Runtime: the reusable binding,
// the operator scratch arena, and a closure chain built once so that the
// per-tuple path performs no allocations (the previous implementation
// rebuilt a closure per operator invocation). A Runtime caches the pipeline
// of the last plan it executed, so repeated Count/Execute calls on a warm
// Runtime are allocation-free.
type pipeline struct {
	plan *Plan
	rt   *Runtime
	b    *Binding
	// scratch is this pipeline's arena of per-operator buffers. It lives on
	// the pipeline rather than the Runtime because a Runtime may cache
	// pipelines for several plans with different operator counts; buffers
	// are only ever reused by re-executions of the same plan.
	scratch Scratch
	// next[i] runs operators i.. and then the sink; next[i] is passed as
	// the continuation of operator i-1.
	next []func() bool
	// stop is the operator index where the sink takes over: len(Ops) for
	// full enumeration, the fold boundary for pushed-down counting.
	stop int
	// emit is the enumeration sink; nil selects the counting sink.
	emit func(*Binding) bool
	n    int64

	// Aggregate sink state (see agg.go): aggOn selects the aggregate fold
	// over the plain counting fold, agg is the armed spec, aggSlotOp the
	// folded operator binding the aggregated slot (-1 when it is bound
	// before the boundary), and aggRes the run's accumulator.
	aggOn     bool
	agg       AggSpec
	aggSlotOp int
	aggRes    AggResult

	// Governance state (all zero when rt.Gov is nil): govEvery is the
	// flush interval in sink tuples, govTuples counts tuples since the last
	// flush, govRows the rows produced since, and govICostBase the rt.ICost
	// watermark already published to the governor.
	govEvery     int
	govTuples    int
	govRows      int64
	govICostBase int64

	// tr mirrors rt.Trace for the duration of one run (nil = disarmed).
	// It is re-latched by beginRun so a cached pipeline never keeps tracing
	// an execution that no longer asks for it.
	tr *Trace
}

// beginRun re-arms the pipeline's governance state for one execution. It
// must run after pipelineFor and before step(0): the cached pipeline may
// have been built for an earlier execution with a different (or no)
// governor, and the i-cost watermark must start at the Runtime's current
// accumulator value.
func (pl *pipeline) beginRun() {
	pl.tr = pl.rt.Trace
	if pl.tr != nil {
		pl.tr.arm(len(pl.plan.Ops), pl.stop)
	}
	g := pl.rt.Gov
	if g == nil {
		pl.govEvery = 0
		return
	}
	pl.govEvery = g.checkEvery()
	pl.govTuples = 0
	pl.govRows = 0
	pl.govICostBase = pl.rt.ICost
}

// govFlush publishes the pipeline's locally accumulated i-cost and row
// counters to the governor, enforces the budgets, and reports whether the
// execution may continue. It performs no allocations.
func (pl *pipeline) govFlush() bool {
	g := pl.rt.Gov
	pl.govTuples = 0
	if ic := pl.rt.ICost - pl.govICostBase; ic != 0 {
		pl.govICostBase = pl.rt.ICost
		g.addICost(ic)
	}
	if pl.govRows != 0 {
		g.addRows(pl.govRows)
		pl.govRows = 0
	}
	return !g.stop.Load()
}

// maxCachedPipelines bounds the per-Runtime pipeline cache. The working
// set is expected to be tiny (a Runtime usually serves one or a handful of
// cached plans); on overflow the whole map is dropped rather than tracking
// recency — rebuilding a pipeline is cheap next to compiling its plan.
const maxCachedPipelines = 64

// pipelineFor returns the Runtime's cached pipeline for p, building it on
// first use. The most recent plan hits a single pointer compare; older
// plans hit the per-plan map, so alternating query texts stay warm too.
func (rt *Runtime) pipelineFor(p *Plan) *pipeline {
	if rt.pipe != nil && rt.pipe.plan == p {
		return rt.pipe
	}
	if pl, ok := rt.pipes[p]; ok {
		rt.pipe = pl
		return pl
	}
	pl := &pipeline{plan: p, rt: rt, b: NewBinding(p.NumV, p.NumE)}
	pl.scratch.reset(len(p.Ops))
	pl.next = make([]func() bool, len(p.Ops)+1)
	for i := 1; i <= len(p.Ops); i++ {
		i := i
		pl.next[i] = func() bool { return pl.step(i) }
	}
	if rt.pipes == nil {
		rt.pipes = make(map[*Plan]*pipeline, 4)
	} else if len(rt.pipes) >= maxCachedPipelines {
		clear(rt.pipes)
	}
	rt.pipes[p] = pl
	rt.pipe = pl
	return pl
}

// step runs operators i.. of the pipeline, or the sink once i reaches the
// stop boundary. With tracing disarmed (the steady state) the only added
// cost is the nil test; the traced twin carries all measurement overhead.
func (pl *pipeline) step(i int) bool {
	if pl.tr != nil {
		return pl.stepTraced(i)
	}
	if i >= pl.stop {
		return pl.sink()
	}
	return pl.plan.Ops[i].run(pl.rt, pl.scratch.op(i), pl.b, pl.next[i+1])
}

// stepTraced is step with span recording: it accumulates the operator's
// invocation count and its inclusive wall-time/i-cost/predicate deltas
// (operators run their continuation in-line, so a span covers the whole
// downstream chain; Trace.Report telescopes the exclusive figures back
// out). The sink's span is the final slot.
func (pl *pipeline) stepTraced(i int) bool {
	idx := i
	if i >= pl.stop {
		idx = len(pl.plan.Ops)
	}
	sp := &pl.tr.spans[idx]
	sp.Calls++
	icost0, preds0 := pl.rt.ICost, pl.rt.PredEvals
	t0 := time.Now()
	var ok bool
	if i >= pl.stop {
		ok = pl.sinkTraced()
	} else {
		ok = pl.plan.Ops[i].run(pl.rt, pl.scratch.op(i), pl.b, pl.next[i+1])
	}
	sp.Nanos += int64(time.Since(t0))
	sp.ICost += pl.rt.ICost - icost0
	sp.PredEvals += pl.rt.PredEvals - preds0
	return ok
}

// sink consumes one boundary tuple: enumeration hands it to emit, counting
// folds the remaining pure-EXTEND suffix (possibly empty) into a product.
// With a governor attached it also ticks the cancel/budget check every
// govEvery tuples, so even a single hub-dominated morsel observes a trip
// within a bounded number of produced rows.
func (pl *pipeline) sink() bool {
	var rows int64
	if pl.emit != nil {
		if !pl.emit(pl.b) {
			return false
		}
		rows = 1
	} else if pl.aggOn {
		rows = pl.aggFold()
		pl.n += rows
	} else {
		rows = pl.plan.foldedCount(pl.rt, pl.b, pl.stop)
		pl.n += rows
	}
	if pl.govEvery == 0 {
		return true
	}
	pl.govRows += rows
	pl.govTuples++
	if pl.govTuples < pl.govEvery {
		return true
	}
	return pl.govFlush()
}

// sinkTraced is sink with span recording: the caller (stepTraced) measures
// the sink's inclusive figures; this twin additionally records produced
// rows into the sink span and routes the counting fold through its traced
// variant so each folded operator gets its own attribution.
func (pl *pipeline) sinkTraced() bool {
	var rows int64
	if pl.emit != nil {
		if !pl.emit(pl.b) {
			return false
		}
		rows = 1
	} else if pl.aggOn {
		rows = pl.aggFoldTraced()
		pl.n += rows
	} else {
		rows = pl.plan.foldedCountTraced(pl.rt, pl.b, pl.stop, pl.tr)
		pl.n += rows
	}
	pl.tr.spans[len(pl.plan.Ops)].Rows += rows
	if pl.govEvery == 0 {
		return true
	}
	pl.govRows += rows
	pl.govTuples++
	if pl.govTuples < pl.govEvery {
		return true
	}
	return pl.govFlush()
}

// Execute streams complete matches into emit; returning false from emit
// stops execution early. The binding passed to emit is reused — copy it if
// retaining. A Runtime must not execute two plans concurrently; the
// morsel-parallel path gives each worker its own Runtime.
func (p *Plan) Execute(rt *Runtime, emit func(*Binding) bool) {
	pl := rt.pipelineFor(p)
	pl.stop = len(p.Ops)
	pl.emit = emit
	pl.aggOn = false
	pl.beginRun()
	pl.step(0)
	if pl.govEvery != 0 {
		pl.govFlush()
	}
	pl.emit = nil
}

// Count executes the plan and returns the number of matches. When the plan
// ends in pure unfiltered EXTENDs over slots bound earlier, counting folds
// the product of adjacency-list lengths at that boundary instead of
// enumerating bindings (count pushdown): the count and the accumulated
// i-cost are bit-identical to enumeration, with orders of magnitude fewer
// operator invocations on star/fan-out queries.
func (p *Plan) Count(rt *Runtime) int64 {
	pl := rt.pipelineFor(p)
	pl.stop = p.countFoldStart()
	pl.emit = nil
	pl.aggOn = false
	pl.n = 0
	pl.beginRun()
	pl.step(0)
	if pl.govEvery != 0 {
		pl.govFlush()
	}
	return pl.n
}

// countFoldStart returns the start of the longest plan suffix consisting
// solely of pure unfiltered EXTENDs (one list, no sorted segment) whose
// owner slots are all bound before the suffix, so no suffix operator
// consumes another's output. Counting folds that suffix into a product of
// list lengths. len(p.Ops) means no folding applies; the suffix never
// includes operator 0 (the root scan is partitioned, not folded).
func (p *Plan) countFoldStart() int {
	start := len(p.Ops)
	for start > 1 {
		op, ok := p.Ops[start-1].(*ExtendIntersectOp)
		if !ok || len(op.Lists) != 1 || op.Lists[0].Seg != nil {
			break
		}
		// Nothing already in the suffix may read a slot this op binds.
		dep := false
		for _, later := range p.Ops[start:] {
			r := &later.(*ExtendIntersectOp).Lists[0]
			if r.Kind == ListEP {
				if r.OwnerEdgeSlot == op.Lists[0].EdgeSlot {
					dep = true
					break
				}
			} else if r.OwnerVertexSlot == op.TargetSlot {
				dep = true
				break
			}
		}
		if dep {
			break
		}
		start--
	}
	return start
}

// foldedCount returns the number of matches the plan suffix [start:) would
// enumerate from the boundary binding b, as the product of its adjacency-
// list lengths, charging exactly the i-cost enumeration would have charged:
// enumeration fetches suffix list i once per tuple produced by lists 0..i-1.
func (p *Plan) foldedCount(rt *Runtime, b *Binding, start int) int64 {
	total := int64(1)
	for _, op := range p.Ops[start:] {
		o := op.(*ExtendIntersectOp)
		// charges this list's (delta-spliced) length once
		n := int64(o.Lists[0].FetchLen(rt, b))
		rt.ICost += n * (total - 1) // the remaining fetches enumeration does
		total *= n
		if total == 0 {
			return 0 // enumeration never reaches the later lists
		}
	}
	return total
}

// foldedCountTraced is foldedCount with per-operator span attribution: the
// arithmetic charges are identical (so traced counts and i-cost stay
// bit-identical to the untraced fold), but each folded operator's fetch,
// i-cost share, and produced-tuple count land in its own span. These spans
// are recorded exclusively — Trace.Report subtracts them from the sink.
func (p *Plan) foldedCountTraced(rt *Runtime, b *Binding, start int, tr *Trace) int64 {
	total := int64(1)
	for j := start; j < len(p.Ops); j++ {
		o := p.Ops[j].(*ExtendIntersectOp)
		sp := &tr.spans[j]
		sp.Calls++
		icost0, preds0 := rt.ICost, rt.PredEvals
		t0 := time.Now()
		n := int64(o.Lists[0].FetchLen(rt, b))
		rt.ICost += n * (total - 1) // the remaining fetches enumeration does
		sp.Nanos += int64(time.Since(t0))
		sp.ICost += rt.ICost - icost0
		sp.PredEvals += rt.PredEvals - preds0
		total *= n
		sp.Rows += total
		if total == 0 {
			return 0 // enumeration never reaches the later lists
		}
	}
	return total
}

// OpNames returns each operator's rendered description in pipeline order
// (the per-line bodies of Explain), for trace rendering.
func (p *Plan) OpNames() []string {
	names := make([]string, len(p.Ops))
	for i, op := range p.Ops {
		names[i] = op.explain()
	}
	return names
}

// Explain renders the pipeline, one operator per line.
func (p *Plan) Explain() string {
	var b strings.Builder
	for i, op := range p.Ops {
		fmt.Fprintf(&b, "%2d. %s\n", i+1, op.explain())
	}
	return b.String()
}
