package exec

import (
	"fmt"
	"strings"
)

// Plan is a linear pipeline of physical operators producing complete
// matches of a query graph.
type Plan struct {
	Ops []Op
	// NumV and NumE size the binding.
	NumV, NumE int
	// VertexNames and EdgeNames map binding slots back to query variables
	// (for explanations and result rendering).
	VertexNames []string
	EdgeNames   []string
	// EstimatedICost is the optimizer's cost estimate for the plan.
	EstimatedICost float64
}

// Execute streams complete matches into emit; returning false from emit
// stops execution early. The binding passed to emit is reused — copy it if
// retaining.
func (p *Plan) Execute(rt *Runtime, emit func(*Binding) bool) {
	b := NewBinding(p.NumV, p.NumE)
	var run func(i int) bool
	run = func(i int) bool {
		if i == len(p.Ops) {
			return emit(b)
		}
		return p.Ops[i].run(rt, b, func() bool { return run(i + 1) })
	}
	run(0)
}

// Count executes the plan and returns the number of matches.
func (p *Plan) Count(rt *Runtime) int64 {
	var n int64
	p.Execute(rt, func(*Binding) bool {
		n++
		return true
	})
	return n
}

// Explain renders the pipeline, one operator per line.
func (p *Plan) Explain() string {
	var b strings.Builder
	for i, op := range p.Ops {
		fmt.Fprintf(&b, "%2d. %s\n", i+1, op.explain())
	}
	return b.String()
}
