package exec

import (
	"github.com/aplusdb/aplus/internal/index"
)

// Scratch is a per-worker arena of reusable operator buffers. Every slice a
// physical operator needs per input tuple (decoded adjacency lists, cursor
// positions, run boundaries, bucket-combination state) lives here, in one
// slot per plan operator, so the steady-state tuple loop performs no heap
// allocations. Op values themselves stay stateless and shareable: the same
// Plan can run in many workers at once, each worker owning its Runtime and
// therefore its Scratch.
type Scratch struct {
	ops []opScratch
}

// reset sizes the arena for a plan with n operators and clears any state
// cached from a previously executed plan (slot i is only valid for the op
// that sits at position i of the current plan).
func (s *Scratch) reset(n int) {
	if cap(s.ops) < n {
		s.ops = make([]opScratch, n)
	}
	s.ops = s.ops[:n]
	clear(s.ops)
}

// op returns operator i's scratch slot.
func (s *Scratch) op(i int) *opScratch { return &s.ops[i] }

// flatList is a block-decoded adjacency list: plain parallel slices with no
// per-element representation branch, the shape the intersection loops run
// over. For direct lists the slices alias index storage (zero copy); for
// offset lists they alias the slot's decode buffers.
type flatList struct {
	nbrs []uint32
	eids []uint64
}

// decodeBuf is the owned backing storage offset lists are decoded into. It
// is kept separate from the flatList views so a zero-copy direct list never
// replaces (and never aliases) the reusable buffers.
type decodeBuf struct {
	nbrs []uint32
	eids []uint64
}

// opScratch holds one operator's reusable buffers. All slices are sized on
// first use and only grow; the zero value is ready to use.
type opScratch struct {
	// Bucket-combination iterator state (initCombo/advanceCombo): per list,
	// the expanded innermost-bucket alternatives, the odometer position, and
	// the currently selected codes.
	choices  [][][]uint16
	comboIdx []int
	codes    [][]uint16
	oneRef   [1]ListRef

	// E/I state: decoded lists, their decode buffers, and the intersection
	// cursors (current position and duplicate-run end per list).
	lists  []flatList
	bufs   []decodeBuf
	pos    []int
	runEnd []int

	// spliceBufs back delta-overlay splices, one per list position of the
	// op, so every concurrently live fetch of the op has its own merged
	// copy. Kept separate from bufs: a spliced list may later be "decoded"
	// zero-copy (it is direct), and the decode buffers must never alias it.
	spliceBufs []decodeBuf

	// MULTI-EXTEND state, computed once per (worker, op slot): the flattened
	// list refs across groups, each ref's group, the merge cursors, and
	// per-group emit state.
	refs     []ListRef
	refGroup []int
	cursors  []meCursor
	groups   []meGroupScratch
	meReady  bool
}

// meGroupScratch is the per-group emit state of a MULTI-EXTEND: the cursor
// indexes belonging to the group plus intersection positions and run ends
// over the group's equal-ordinal region.
type meGroupScratch struct {
	cur  []int
	idx  []int
	ends []int
}

// initCombo prepares iteration over the cartesian product of each list's
// innermost-bucket choices. codes[i] always holds list i's current bucket
// codes; advanceCombo steps the odometer. A list with no Expand set
// contributes its single Codes prefix.
func (sc *opScratch) initCombo(lists []ListRef) {
	z := len(lists)
	if cap(sc.choices) < z {
		sc.choices = make([][][]uint16, z)
		sc.comboIdx = make([]int, z)
		sc.codes = make([][]uint16, z)
	}
	sc.choices = sc.choices[:z]
	sc.comboIdx = sc.comboIdx[:z]
	sc.codes = sc.codes[:z]
	for i := range lists {
		sc.choices[i] = lists[i].Expand // empty means the single Codes choice
		sc.comboIdx[i] = 0
		if len(sc.choices[i]) > 0 {
			sc.codes[i] = sc.choices[i][0]
		} else {
			sc.codes[i] = lists[i].Codes
		}
	}
}

// advanceCombo moves to the next bucket combination, returning false when
// the product is exhausted.
func (sc *opScratch) advanceCombo() bool {
	for i := len(sc.comboIdx) - 1; i >= 0; i-- {
		n := len(sc.choices[i])
		if n == 0 {
			n = 1 // single implicit choice
		}
		sc.comboIdx[i]++
		if sc.comboIdx[i] < n {
			sc.codes[i] = sc.choices[i][sc.comboIdx[i]]
			return true
		}
		sc.comboIdx[i] = 0
		if len(sc.choices[i]) > 0 {
			sc.codes[i] = sc.choices[i][0]
		}
	}
	return false
}

// ensureLists sizes the E/I buffers for z lists, preserving decode buffers
// already grown.
func (sc *opScratch) ensureLists(z int) {
	for len(sc.bufs) < z {
		sc.bufs = append(sc.bufs, decodeBuf{})
	}
	if cap(sc.lists) < z {
		sc.lists = make([]flatList, z)
		sc.pos = make([]int, z)
		sc.runEnd = make([]int, z)
	}
	sc.lists = sc.lists[:z]
	sc.pos = sc.pos[:z]
	sc.runEnd = sc.runEnd[:z]
}

// spliceBuf returns list position i's reusable delta-splice buffer, growing
// the slot array on first use (steady-state fetches reuse grown buffers).
func (sc *opScratch) spliceBuf(i int) *decodeBuf {
	for len(sc.spliceBufs) <= i {
		sc.spliceBufs = append(sc.spliceBufs, decodeBuf{})
	}
	return &sc.spliceBufs[i]
}

// decode block-decodes list i into flat slices: direct lists are aliased
// with zero copies, offset lists are bulk-unpacked into the slot's reusable
// buffers (index.AdjList.DecodeInto).
func (sc *opScratch) decode(i int, l index.AdjList) {
	if nbrs, eids, ok := l.Direct(); ok {
		sc.lists[i] = flatList{nbrs: nbrs, eids: eids}
		return
	}
	b := &sc.bufs[i]
	b.nbrs, b.eids = l.DecodeInto(b.nbrs, b.eids)
	sc.lists[i] = flatList{nbrs: b.nbrs, eids: b.eids}
}

// initME computes the MULTI-EXTEND shape (flattened refs, group membership,
// per-group emit buffers) the first time the op runs in this worker.
func (sc *opScratch) initME(o *MultiExtendOp) {
	if sc.meReady {
		return
	}
	sc.refs = sc.refs[:0]
	sc.refGroup = sc.refGroup[:0]
	for gi := range o.Groups {
		for _, r := range o.Groups[gi].Lists {
			sc.refs = append(sc.refs, r)
			sc.refGroup = append(sc.refGroup, gi)
		}
	}
	sc.cursors = make([]meCursor, len(sc.refs))
	sc.groups = make([]meGroupScratch, len(o.Groups))
	for gi := range sc.groups {
		gs := &sc.groups[gi]
		for i, g := range sc.refGroup {
			if g == gi {
				gs.cur = append(gs.cur, i)
			}
		}
		gs.idx = make([]int, len(gs.cur))
		gs.ends = make([]int, len(gs.cur))
	}
	sc.meReady = true
}

// gallopNbrs returns the first position >= from whose value is >= target,
// using exponential probing followed by binary search over a flat slice —
// the branch-free replacement for galloping through the AdjList interface.
func gallopNbrs(nbrs []uint32, from int, target uint32) int {
	n := len(nbrs)
	if from >= n || nbrs[from] >= target {
		return from
	}
	step := 1
	lo := from
	hi := from + step
	for hi < n && nbrs[hi] < target {
		lo = hi
		step *= 2
		hi = lo + step
	}
	if hi > n {
		hi = n
	}
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if nbrs[mid] < target {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// runEndOf returns the end of the duplicate (parallel-edge) run of target
// that starts at pos, galloping so long runs are skipped in O(log run)
// steps instead of being rescanned linearly.
func runEndOf(nbrs []uint32, pos int, target uint32) int {
	if target == ^uint32(0) {
		// target+1 would wrap; nothing sorts above it, so the run is the
		// remainder of the list.
		return len(nbrs)
	}
	return gallopNbrs(nbrs, pos+1, target+1)
}
