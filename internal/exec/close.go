package exec

import (
	"fmt"
)

// CloseEdgeOp matches a query edge whose endpoints are both already bound,
// by probing the owner's adjacency list for the target vertex. This is the
// only way binary-join-only systems (the paper's Neo4j/TigerGraph-class
// baselines) can close cycles; WCOJ plans instead fold such edges into
// multiway intersections.
type CloseEdgeOp struct {
	List       ListRef
	TargetSlot int
	// Sorted enables binary search; unsorted lists are scanned linearly,
	// as in systems with unsorted adjacency lists.
	Sorted bool
}

func (o *CloseEdgeOp) run(rt *Runtime, sc *opScratch, b *Binding, next func() bool) bool {
	target := b.V[o.TargetSlot]
	sc.oneRef[0] = o.List
	sc.initCombo(sc.oneRef[:])
	for {
		l := o.List.fetchWith(rt, sc, 0, b, sc.codes[0])
		n := l.Len()
		lo, hi := 0, n
		if o.Sorted {
			// Hand-rolled binary search (no sort.Search closure): the list
			// stays in its packed representation — probing is O(log n), so
			// block-decoding it would cost more than the probe saves.
			for lo < hi {
				mid := int(uint(lo+hi) >> 1)
				if l.Nbr(mid) < target {
					lo = mid + 1
				} else {
					hi = mid
				}
			}
			hi = lo
			for hi < n && l.Nbr(hi) == target {
				hi++
			}
		}
		for i := lo; i < hi || (!o.Sorted && i < n); i++ {
			if l.Nbr(i) != target {
				continue
			}
			b.E[o.List.EdgeSlot] = l.Edge(i)
			if !next() {
				return false
			}
		}
		if !sc.advanceCombo() {
			return true
		}
	}
}

func (o *CloseEdgeOp) explain() string {
	mode := "scan"
	if o.Sorted {
		mode = "bsearch"
	}
	return fmt.Sprintf("CLOSE e%d: v%d in %s (%s)", o.List.EdgeSlot, o.TargetSlot, o.List.String(), mode)
}
