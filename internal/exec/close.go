package exec

import (
	"fmt"
	"sort"
)

// CloseEdgeOp matches a query edge whose endpoints are both already bound,
// by probing the owner's adjacency list for the target vertex. This is the
// only way binary-join-only systems (the paper's Neo4j/TigerGraph-class
// baselines) can close cycles; WCOJ plans instead fold such edges into
// multiway intersections.
type CloseEdgeOp struct {
	List       ListRef
	TargetSlot int
	// Sorted enables binary search; unsorted lists are scanned linearly,
	// as in systems with unsorted adjacency lists.
	Sorted bool
}

func (o *CloseEdgeOp) run(rt *Runtime, b *Binding, next func() bool) bool {
	target := b.V[o.TargetSlot]
	ok := true
	done := forEachCombo([]ListRef{o.List}, func(codes [][]uint16) bool {
		l := o.List.fetchWith(rt, b, codes[0])
		n := l.Len()
		lo, hi := 0, n
		if o.Sorted {
			lo = sort.Search(n, func(i int) bool { return l.Nbr(i) >= target })
			hi = lo
			for hi < n && l.Nbr(hi) == target {
				hi++
			}
		}
		for i := lo; i < hi || (!o.Sorted && i < n); i++ {
			if l.Nbr(i) != target {
				continue
			}
			b.E[o.List.EdgeSlot] = l.Edge(i)
			if !next() {
				ok = false
				return false
			}
		}
		return true
	})
	return done && ok
}

func (o *CloseEdgeOp) explain() string {
	mode := "scan"
	if o.Sorted {
		mode = "bsearch"
	}
	return fmt.Sprintf("CLOSE e%d: v%d in %s (%s)", o.List.EdgeSlot, o.TargetSlot, o.List.String(), mode)
}
