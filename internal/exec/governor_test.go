package exec

// Tests for the query-governance layer at the exec level: cancellation via
// a pre-tripped governor, i-cost/row budgets, partial-metric publication,
// worker-panic conversion, and the zero-alloc pin for the cancel-check-
// enabled steady-state loop.

import (
	"errors"
	"strings"
	"sync/atomic"
	"testing"

	"github.com/aplusdb/aplus/internal/index"
)

// TestZeroAllocWithCancelCheck pins that attaching a Governor (cancel check
// + budget accounting enabled, with an aggressively small flush interval)
// keeps the steady-state Count loop allocation-free.
func TestZeroAllocWithCancelCheck(t *testing.T) {
	rt := NewRuntime(allocStore(t))
	rt.Gov = &Governor{CheckEvery: 2}
	plan := &Plan{
		NumV: 3, NumE: 3,
		Ops: []Op{
			&ScanVertexOp{Slot: 0},
			&ExtendIntersectOp{TargetSlot: 1, Lists: []ListRef{
				{Kind: ListPrimary, Dir: index.FW, OwnerVertexSlot: 0, EdgeSlot: 0},
			}},
			&ExtendIntersectOp{TargetSlot: 2, Lists: []ListRef{
				{Kind: ListPrimary, Dir: index.FW, OwnerVertexSlot: 1, EdgeSlot: 1},
				{Kind: ListPrimary, Dir: index.BW, OwnerVertexSlot: 0, EdgeSlot: 2},
			}},
		},
	}
	assertZeroAlloc(t, rt, plan)
	if rt.Gov.Stopped() {
		t.Error("unlimited governor tripped during zero-alloc runs")
	}
}

// TestGovernorPreTrippedStopsEarly: a governor tripped before (or at the
// very start of) execution parks the pool after at most one flush interval,
// and the trip reason survives unchanged.
func TestGovernorPreTrippedStopsEarly(t *testing.T) {
	s, plan := chainGraph(t, 211, 4)
	full, err := plan.CountParallel(NewRuntime(s), ParallelOptions{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 4} {
		gov := &Governor{CheckEvery: 1}
		gov.Trip(StopCanceled)
		rt := NewRuntime(s)
		rt.Gov = gov
		n, err := plan.CountParallel(rt, ParallelOptions{Workers: workers, MorselSize: 4})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if n >= full {
			t.Errorf("workers=%d: pre-canceled count = %d, want < %d", workers, n, full)
		}
		if got := gov.Reason(); got != StopCanceled {
			t.Errorf("workers=%d: reason = %v, want canceled", workers, got)
		}
	}
}

// TestGovernorRowBudget: MaxRows trips the execution with StopRows and a
// partial count; the rows flushed into the governor match the partial count.
func TestGovernorRowBudget(t *testing.T) {
	s, plan := chainGraph(t, 211, 4)
	full, err := plan.CountParallel(NewRuntime(s), ParallelOptions{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 4} {
		gov := &Governor{MaxRows: 10, CheckEvery: 1}
		rt := NewRuntime(s)
		rt.Gov = gov
		n, err := plan.CountParallel(rt, ParallelOptions{Workers: workers, MorselSize: 4})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !gov.Stopped() || gov.Reason() != StopRows {
			t.Fatalf("workers=%d: reason = %v, want row budget", workers, gov.Reason())
		}
		if n >= full {
			t.Errorf("workers=%d: budgeted count = %d, want < %d", workers, n, full)
		}
		if gov.RowsSeen() != n {
			t.Errorf("workers=%d: RowsSeen = %d, partial count = %d", workers, gov.RowsSeen(), n)
		}
	}
}

// TestGovernorICostBudget: MaxICost trips with StopICost and publishes the
// partial i-cost actually incurred.
func TestGovernorICostBudget(t *testing.T) {
	s, plan := chainGraph(t, 211, 4)
	rtFull := NewRuntime(s)
	if _, err := plan.CountParallel(rtFull, ParallelOptions{Workers: 4}); err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 4} {
		gov := &Governor{MaxICost: rtFull.ICost / 4, CheckEvery: 1}
		rt := NewRuntime(s)
		rt.Gov = gov
		if _, err := plan.CountParallel(rt, ParallelOptions{Workers: workers, MorselSize: 4}); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if gov.Reason() != StopICost {
			t.Fatalf("workers=%d: reason = %v, want i-cost budget", workers, gov.Reason())
		}
		if gov.ICostSeen() == 0 || gov.ICostSeen() != rt.ICost {
			t.Errorf("workers=%d: ICostSeen = %d, merged ICost = %d", workers, gov.ICostSeen(), rt.ICost)
		}
		if rt.ICost >= rtFull.ICost {
			t.Errorf("workers=%d: budgeted ICost = %d, want < %d", workers, rt.ICost, rtFull.ICost)
		}
	}
}

// TestGovernorCleanRunPublishesTotals: an untripped governed run flushes
// its complete metrics, so the governor's totals equal the merged Runtime
// counters and the final count.
func TestGovernorCleanRunPublishesTotals(t *testing.T) {
	s, plan := chainGraph(t, 97, 3)
	for _, workers := range []int{1, 4} {
		gov := &Governor{}
		rt := NewRuntime(s)
		rt.Gov = gov
		n, err := plan.CountParallel(rt, ParallelOptions{Workers: workers, MorselSize: 8})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if gov.Stopped() {
			t.Fatalf("workers=%d: unlimited governor tripped: %v", workers, gov.Reason())
		}
		if gov.RowsSeen() != n {
			t.Errorf("workers=%d: RowsSeen = %d, count = %d", workers, gov.RowsSeen(), n)
		}
		if gov.ICostSeen() != rt.ICost {
			t.Errorf("workers=%d: ICostSeen = %d, ICost = %d", workers, gov.ICostSeen(), rt.ICost)
		}
	}
}

// TestGovernorRowBudgetExecute: the row budget also governs enumeration
// (emitted rows), not just counting.
func TestGovernorRowBudgetExecute(t *testing.T) {
	s, plan := chainGraph(t, 211, 4)
	gov := &Governor{MaxRows: 7, CheckEvery: 1}
	rt := NewRuntime(s)
	rt.Gov = gov
	var emitted atomic.Int64
	if err := plan.ExecuteParallel(rt, ParallelOptions{Workers: 4, MorselSize: 4}, func(*Binding) bool {
		emitted.Add(1)
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if gov.Reason() != StopRows {
		t.Fatalf("reason = %v, want row budget", gov.Reason())
	}
	// Trip granularity is one flush interval per worker: with CheckEvery 1
	// the overshoot is bounded by the worker count finishing their current
	// tuple, not by morsels.
	if got := emitted.Load(); got < 7 || got > 7+4*int64(DefaultMorselSize) {
		t.Errorf("emitted %d rows under MaxRows=7", got)
	}
}

// TestWorkerPanicBecomesError: a panic on a worker goroutine (or the serial
// path) surfaces as a *PanicError carrying the stack, the pool drains, and
// the same plan runs cleanly afterwards with bit-identical results.
func TestWorkerPanicBecomesError(t *testing.T) {
	s, plan := chainGraph(t, 211, 4)
	rtClean := NewRuntime(s)
	want, err := plan.CountParallel(rtClean, ParallelOptions{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 4} {
		rt := NewRuntime(s)
		_, err := plan.CountParallel(rt, ParallelOptions{
			Workers:    workers,
			MorselSize: 4,
			InjectWorkerFault: func(w int) {
				if w == workers-1 {
					panic("injected worker fault")
				}
			},
		})
		var pe *PanicError
		if !errors.As(err, &pe) {
			t.Fatalf("workers=%d: err = %v, want *PanicError", workers, err)
		}
		if pe.Value != "injected worker fault" {
			t.Errorf("workers=%d: panic value = %v", workers, pe.Value)
		}
		if !strings.Contains(string(pe.Stack), "goroutine") {
			t.Errorf("workers=%d: stack not captured: %q", workers, pe.Stack)
		}
		// The engine must be fully usable after the poisoned query.
		rt2 := NewRuntime(s)
		got, err := plan.CountParallel(rt2, ParallelOptions{Workers: workers, MorselSize: 4})
		if err != nil {
			t.Fatalf("workers=%d: follow-up query: %v", workers, err)
		}
		if got != want || rt2.ICost != rtClean.ICost {
			t.Errorf("workers=%d: follow-up count/ICost = %d/%d, want %d/%d",
				workers, got, rt2.ICost, want, rtClean.ICost)
		}
	}
}

// TestWorkerPanicFirstWins: with every worker panicking, exactly one
// PanicError is returned and the pool still drains.
func TestWorkerPanicFirstWins(t *testing.T) {
	s, plan := chainGraph(t, 211, 4)
	rt := NewRuntime(s)
	_, err := plan.CountParallel(rt, ParallelOptions{
		Workers:           4,
		MorselSize:        4,
		InjectWorkerFault: func(int) { panic("boom") },
	})
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *PanicError", err)
	}
	if pe.Value != "boom" {
		t.Errorf("panic value = %v", pe.Value)
	}
}
