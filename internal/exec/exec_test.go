package exec

import (
	"testing"

	"github.com/aplusdb/aplus/internal/index"
	"github.com/aplusdb/aplus/internal/pred"
	"github.com/aplusdb/aplus/internal/storage"
)

func exampleRuntime(t *testing.T) *Runtime {
	t.Helper()
	s, err := index.NewStore(storage.ExampleGraph(), index.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return NewRuntime(s)
}

func wireCodes(t *testing.T, rt *Runtime) []uint16 {
	t.Helper()
	codes, ok := rt.Store.Primary().ResolveCodes([]storage.Value{storage.Str(storage.LabelWire)})
	if !ok {
		t.Fatal("Wire should resolve")
	}
	return codes
}

func TestExtendSingleList(t *testing.T) {
	rt := exampleRuntime(t)
	// Example 2: Alice -> Owns -> a1 -> Wire -> a2.
	ownsCodes, _ := rt.Store.Primary().ResolveCodes([]storage.Value{storage.Str(storage.LabelOwns)})
	plan := &Plan{
		NumV: 3, NumE: 2,
		Ops: []Op{
			&ScanVertexOp{Slot: 0, Terms: []CompiledTerm{{
				Left: VertexOperand(0, storage.PropName), Op: pred.EQ, Right: ConstOperand(storage.Str("Alice")),
			}}},
			&ExtendIntersectOp{TargetSlot: 1, Lists: []ListRef{{
				Kind: ListPrimary, Dir: index.FW, OwnerVertexSlot: 0, Codes: ownsCodes, EdgeSlot: 0,
			}}},
			&ExtendIntersectOp{TargetSlot: 2, Lists: []ListRef{{
				Kind: ListPrimary, Dir: index.FW, OwnerVertexSlot: 1, Codes: wireCodes(t, rt), EdgeSlot: 1,
			}}},
		},
	}
	// Alice owns v1 (Wire out: t4,t17,t20) and v2 (Wire out: t8) -> 4.
	if got := plan.Count(rt); got != 4 {
		t.Errorf("count = %d, want 4", got)
	}
	if rt.ICost == 0 {
		t.Error("i-cost not accounted")
	}
}

func TestExtendIntersectTriangles(t *testing.T) {
	// Build a graph with known triangles: 0->1->2->0 and 0->1->3->0.
	g := storage.NewGraph()
	g.AddVertices(5, "A")
	edges := [][2]storage.VertexID{{0, 1}, {1, 2}, {2, 0}, {1, 3}, {3, 0}, {1, 4}}
	for _, e := range edges {
		if _, err := g.AddEdge(e[0], e[1], "W"); err != nil {
			t.Fatal(err)
		}
	}
	s, err := index.NewStore(g, index.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	rt := NewRuntime(s)
	// Triangle a0->a1->a2->a0: scan a0, extend to a1, then E/I: a2 in
	// FW(a1) ∩ BW(a0).
	plan := &Plan{
		NumV: 3, NumE: 3,
		Ops: []Op{
			&ScanVertexOp{Slot: 0},
			&ExtendIntersectOp{TargetSlot: 1, Lists: []ListRef{{
				Kind: ListPrimary, Dir: index.FW, OwnerVertexSlot: 0, EdgeSlot: 0,
			}}},
			&ExtendIntersectOp{TargetSlot: 2, Lists: []ListRef{
				{Kind: ListPrimary, Dir: index.FW, OwnerVertexSlot: 1, EdgeSlot: 1},
				{Kind: ListPrimary, Dir: index.BW, OwnerVertexSlot: 0, EdgeSlot: 2},
			}},
		},
	}
	// Directed triangles: (0,1,2), (1,2,0), (2,0,1), (0,1,3), (1,3,0), (3,0,1).
	if got := plan.Count(rt); got != 6 {
		t.Errorf("triangles = %d, want 6", got)
	}
}

func TestIntersectParallelEdges(t *testing.T) {
	// Parallel edges must produce one match per edge combination.
	g := storage.NewGraph()
	g.AddVertices(3, "A")
	g.AddEdge(0, 2, "W")
	g.AddEdge(0, 2, "W") // parallel
	g.AddEdge(1, 2, "W")
	s, err := index.NewStore(g, index.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	rt := NewRuntime(s)
	// v2 = FW(0) ∩ FW(1): nbr 2 matched, 2 edge choices from list 0.
	plan := &Plan{
		NumV: 3, NumE: 2,
		Ops: []Op{
			&ScanVertexOp{Slot: 0, ExactID: vptr(0)},
			&ScanVertexOp{Slot: 1, ExactID: vptr(1)},
			&ExtendIntersectOp{TargetSlot: 2, Lists: []ListRef{
				{Kind: ListPrimary, Dir: index.FW, OwnerVertexSlot: 0, EdgeSlot: 0},
				{Kind: ListPrimary, Dir: index.FW, OwnerVertexSlot: 1, EdgeSlot: 1},
			}},
		},
	}
	if got := plan.Count(rt); got != 2 {
		t.Errorf("count = %d, want 2 (parallel edges)", got)
	}
}

func TestSegmentFetch(t *testing.T) {
	rt := exampleRuntime(t)
	// VPt-style index: sort v5's transfers by date, fetch date <= 10.
	vp, err := rt.Store.CreateVertexPartitioned(index.VPDef{
		View: index.View1Hop{Name: "VPt"},
		Dirs: []index.Direction{index.FW},
		Cfg: index.Config{
			Partitions: index.DefaultConfig().Partitions,
			Sorts:      []index.SortKey{{Var: pred.VarAdj, Prop: storage.PropDate}},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	hi, ok := index.OrdinalOfValue(rt.G, index.SortKey{Var: pred.VarAdj, Prop: storage.PropDate}, storage.Int(10))
	if !ok {
		t.Fatal("ordinal")
	}
	ref := ListRef{
		Kind: ListVP, VP: vp, Dir: index.FW, OwnerVertexSlot: 0, EdgeSlot: 0,
		Seg:    &Segment{Key: index.SortKey{Var: pred.VarAdj, Prop: storage.PropDate}, Hi: hi + 1, HasHi: true},
		Expand: ExpandChoices(nil, vp.LevelCards(index.FW)),
	}
	// Execute through an EXTEND so bucket choices are honoured.
	plan := &Plan{
		NumV: 2, NumE: 1,
		Ops: []Op{
			&ScanVertexOp{Slot: 0, ExactID: vptr(4)}, // v5
			&ExtendIntersectOp{TargetSlot: 1, Lists: []ListRef{ref}},
		},
	}
	var seen []int64
	plan.Execute(rt, func(b *Binding) bool {
		seen = append(seen, rt.G.EdgeProp(b.E[0], storage.PropDate).I)
		return true
	})
	// v5's out transfers with date <= 10: t1,t2,t3,t9,t10 -> 5.
	if len(seen) != 5 {
		t.Fatalf("segment matches = %v, want 5", seen)
	}
	for _, d := range seen {
		if d > 10 {
			t.Errorf("edge with date %d leaked past the segment", d)
		}
	}
}

func TestMultiExtendSameCity(t *testing.T) {
	rt := exampleRuntime(t)
	// MF1's core step: from a1, find (a2, a4) with a1->a2, a4->a1 (one fw
	// one bw list) in the same city, using city-sorted secondary lists.
	vp, err := rt.Store.CreateVertexPartitioned(index.VPDef{
		View: index.View1Hop{Name: "VPc"},
		Dirs: []index.Direction{index.FW, index.BW},
		Cfg: index.Config{
			Partitions: index.DefaultConfig().Partitions,
			Sorts:      []index.SortKey{{Var: pred.VarNbr, Prop: storage.PropCity}},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	cityKey := index.SortKey{Var: pred.VarNbr, Prop: storage.PropCity}
	plan := &Plan{
		NumV: 3, NumE: 2,
		Ops: []Op{
			&ScanVertexOp{Slot: 0, ExactID: vptr(0)}, // a1 = v1
			&MultiExtendOp{Key: cityKey, Groups: []MEGroup{
				{TargetSlot: 1, Lists: []ListRef{{Kind: ListVP, VP: vp, Dir: index.FW, OwnerVertexSlot: 0, EdgeSlot: 0, Expand: ExpandChoices(nil, vp.LevelCards(index.FW))}}},
				{TargetSlot: 2, Lists: []ListRef{{Kind: ListVP, VP: vp, Dir: index.BW, OwnerVertexSlot: 0, EdgeSlot: 1, Expand: ExpandChoices(nil, vp.LevelCards(index.BW))}}},
			}},
		},
	}
	// Brute force on the example graph.
	g := rt.G
	want := 0
	for e1 := 0; e1 < g.NumEdges(); e1++ {
		if g.Src(storage.EdgeID(e1)) != 0 {
			continue
		}
		for e2 := 0; e2 < g.NumEdges(); e2++ {
			if g.Dst(storage.EdgeID(e2)) != 0 {
				continue
			}
			c1 := g.VertexProp(g.Dst(storage.EdgeID(e1)), storage.PropCity)
			c2 := g.VertexProp(g.Src(storage.EdgeID(e2)), storage.PropCity)
			if !c1.IsNull() && c1.Equal(c2) {
				want++
			}
		}
	}
	if got := plan.Count(rt); got != int64(want) {
		t.Errorf("count = %d, brute force = %d", got, want)
	}
	if want == 0 {
		t.Fatal("degenerate test: no same-city pairs")
	}
}

func TestMultiExtendThreeWay(t *testing.T) {
	rt := exampleRuntime(t)
	vp, err := rt.Store.CreateVertexPartitioned(index.VPDef{
		View: index.View1Hop{Name: "VPc"},
		Dirs: []index.Direction{index.FW},
		Cfg: index.Config{
			Partitions: index.DefaultConfig().Partitions,
			Sorts:      []index.SortKey{{Var: pred.VarNbr, Prop: storage.PropCity}},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	cityKey := index.SortKey{Var: pred.VarNbr, Prop: storage.PropCity}
	// From v5 and v1 simultaneously: find (x, y) where v5->x, v1->y, and
	// x.city == y.city.
	plan := &Plan{
		NumV: 4, NumE: 2,
		Ops: []Op{
			&ScanVertexOp{Slot: 0, ExactID: vptr(4)},
			&ScanVertexOp{Slot: 1, ExactID: vptr(0)},
			&MultiExtendOp{Key: cityKey, Groups: []MEGroup{
				{TargetSlot: 2, Lists: []ListRef{{Kind: ListVP, VP: vp, Dir: index.FW, OwnerVertexSlot: 0, EdgeSlot: 0, Expand: ExpandChoices(nil, vp.LevelCards(index.FW))}}},
				{TargetSlot: 3, Lists: []ListRef{{Kind: ListVP, VP: vp, Dir: index.FW, OwnerVertexSlot: 1, EdgeSlot: 1, Expand: ExpandChoices(nil, vp.LevelCards(index.FW))}}},
			}},
		},
	}
	g := rt.G
	want := 0
	for e1 := 0; e1 < g.NumEdges(); e1++ {
		if g.Src(storage.EdgeID(e1)) != 4 {
			continue
		}
		for e2 := 0; e2 < g.NumEdges(); e2++ {
			if g.Src(storage.EdgeID(e2)) != 0 {
				continue
			}
			c1 := g.VertexProp(g.Dst(storage.EdgeID(e1)), storage.PropCity)
			c2 := g.VertexProp(g.Dst(storage.EdgeID(e2)), storage.PropCity)
			if !c1.IsNull() && c1.Equal(c2) {
				want++
			}
		}
	}
	if got := plan.Count(rt); got != int64(want) {
		t.Errorf("count = %d, brute force = %d", got, want)
	}
}

func TestEPExtension(t *testing.T) {
	rt := exampleRuntime(t)
	ep, err := rt.Store.CreateEdgePartitioned(index.EPDef{
		View: index.View2Hop{
			Name: "MoneyFlow",
			Dir:  index.DestinationFW,
			Pred: pred.Predicate{}.
				And(pred.VarTerm(pred.VarBound, storage.PropDate, pred.LT, pred.VarAdj, storage.PropDate)).
				And(pred.VarTerm(pred.VarBound, storage.PropAmount, pred.GT, pred.VarAdj, storage.PropAmount)),
		},
		Cfg: index.DefaultConfig(),
	})
	if err != nil {
		t.Fatal(err)
	}
	// Example 7's query: anchor at t13, follow two MoneyFlow hops.
	t13 := storage.Transfer(13)
	plan := &Plan{
		NumV: 4, NumE: 3,
		Ops: []Op{
			&ScanEdgeOp{EdgeSlot: 0, SrcSlot: 0, DstSlot: 1, ExactID: &t13},
			&ExtendIntersectOp{TargetSlot: 2, Lists: []ListRef{{
				Kind: ListEP, EP: ep, OwnerEdgeSlot: 0, EdgeSlot: 1,
			}}},
			&ExtendIntersectOp{TargetSlot: 3, Lists: []ListRef{{
				Kind: ListEP, EP: ep, OwnerEdgeSlot: 1, EdgeSlot: 2,
			}}},
		},
	}
	// t13 -> t19 (£5, to v3); from t19, v3's forward edges with date > 19,
	// amt < 5: none. So 0 full 3-hop matches.
	if got := plan.Count(rt); got != 0 {
		t.Errorf("3-hop count = %d, want 0", got)
	}
	// Two-hop prefix: exactly 1 (t13 -> t19). i-cost for the EP read is 1.
	rt2 := NewRuntime(rt.Store)
	plan2 := &Plan{NumV: 3, NumE: 2, Ops: plan.Ops[:2]}
	if got := plan2.Count(rt2); got != 1 {
		t.Errorf("2-hop count = %d, want 1", got)
	}
	if rt2.ICost != 1 {
		t.Errorf("i-cost = %d, want 1 (the paper: scans only one edge)", rt2.ICost)
	}
}

func TestFilterOp(t *testing.T) {
	rt := exampleRuntime(t)
	plan := &Plan{
		NumV: 2, NumE: 1,
		Ops: []Op{
			&ScanVertexOp{Slot: 0, ExactID: vptr(4)},
			&ExtendIntersectOp{TargetSlot: 1, Lists: []ListRef{{
				Kind: ListPrimary, Dir: index.FW, OwnerVertexSlot: 0, EdgeSlot: 0,
			}}},
			&FilterOp{Terms: []CompiledTerm{{
				Left: EdgeOperand(0, storage.PropAmount), Op: pred.GT, Right: ConstOperand(storage.Int(100)),
			}}},
		},
	}
	// v5's out transfers with amt>100: t3 ($200). (t16 is from v4.)
	if got := plan.Count(rt); got != 1 {
		t.Errorf("count = %d, want 1", got)
	}
}

func TestGallopNbrs(t *testing.T) {
	nbrs := []uint32{1, 3, 3, 7, 9, 12, 15, 15, 15, 20}
	for target := uint32(0); target <= 21; target++ {
		got := gallopNbrs(nbrs, 0, target)
		want := 0
		for want < len(nbrs) && nbrs[want] < target {
			want++
		}
		if got != want {
			t.Errorf("gallopNbrs(%d) = %d, want %d", target, got, want)
		}
	}
	// From a mid position.
	if got := gallopNbrs(nbrs, 4, 15); got != 6 {
		t.Errorf("gallopNbrs from 4 = %d, want 6", got)
	}
}

func TestRunEndOf(t *testing.T) {
	// Long duplicate (parallel-edge) runs must be skipped by galloping, and
	// the result must match a linear scan exactly.
	nbrs := []uint32{1, 3, 3, 7, 9}
	for i := 0; i < 1000; i++ {
		nbrs = append(nbrs, 12)
	}
	nbrs = append(nbrs, 15, 20)
	for _, pos := range []int{0, 1, 2, 3, 4, 5, 500, 1004, 1005, 1006} {
		target := nbrs[pos]
		got := runEndOf(nbrs, pos, target)
		want := pos
		for want < len(nbrs) && nbrs[want] == target {
			want++
		}
		if got != want {
			t.Errorf("runEndOf(pos=%d, target=%d) = %d, want %d", pos, target, got, want)
		}
	}
	// Max-value target must not overflow.
	maxed := []uint32{5, ^uint32(0), ^uint32(0)}
	if got := runEndOf(maxed, 1, ^uint32(0)); got != 3 {
		t.Errorf("runEndOf(max target) = %d, want 3", got)
	}
}

func TestPlanExplain(t *testing.T) {
	rt := exampleRuntime(t)
	plan := &Plan{
		NumV: 2, NumE: 1,
		Ops: []Op{
			&ScanVertexOp{Slot: 0},
			&ExtendIntersectOp{TargetSlot: 1, Lists: []ListRef{{
				Kind: ListPrimary, Dir: index.FW, OwnerVertexSlot: 0, EdgeSlot: 0, Codes: wireCodes(t, rt),
			}}},
		},
	}
	if s := plan.Explain(); s == "" {
		t.Error("empty explain")
	}
}

func TestExecuteEarlyStop(t *testing.T) {
	rt := exampleRuntime(t)
	plan := &Plan{
		NumV: 2, NumE: 1,
		Ops: []Op{
			&ScanVertexOp{Slot: 0},
			&ExtendIntersectOp{TargetSlot: 1, Lists: []ListRef{{
				Kind: ListPrimary, Dir: index.FW, OwnerVertexSlot: 0, EdgeSlot: 0,
			}}},
		},
	}
	n := 0
	plan.Execute(rt, func(*Binding) bool {
		n++
		return n < 3
	})
	if n != 3 {
		t.Errorf("early stop after %d matches, want 3", n)
	}
}

func vptr(v storage.VertexID) *storage.VertexID { return &v }
