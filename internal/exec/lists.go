package exec

import (
	"fmt"

	"github.com/aplusdb/aplus/internal/index"
	"github.com/aplusdb/aplus/internal/storage"
)

// ListKind selects which index a ListRef reads.
type ListKind uint8

const (
	// ListPrimary reads a primary A+ index list.
	ListPrimary ListKind = iota
	// ListVP reads a secondary vertex-partitioned index list.
	ListVP
	// ListEP reads a secondary edge-partitioned index list.
	ListEP
)

// Segment restricts a fetched list to the entries whose first sort-key
// ordinal lies in [Lo, Hi), located by binary search — the paper's
// "binary searches inside lists" access path (e.g. a neighbour-label
// segment under Ds, or a time-prefix under VPt).
//
// DynEq, when set, narrows the segment at runtime to entries whose sort-key
// value equals a bound variable's property (e.g. a2.city = a1.city with a1
// already matched); the static bounds are ignored in that case.
type Segment struct {
	Key    index.SortKey
	Lo, Hi uint64
	HasLo  bool
	HasHi  bool
	DynEq  *Operand
}

// ListRef describes one adjacency list access in a plan: which index, which
// owner (a bound vertex slot for vertex-partitioned lists or a bound edge
// slot for edge-partitioned lists), the resolved partition-bucket prefix,
// an optional sorted segment, and the edge slot the matched edge binds to.
type ListRef struct {
	Kind ListKind
	Dir  index.Direction          // list direction (primary and VP)
	VP   *index.VertexPartitioned // when Kind == ListVP
	EP   *index.EdgePartitioned   // when Kind == ListEP

	OwnerVertexSlot int // owner binding slot (vertex-partitioned kinds)
	OwnerEdgeSlot   int // owner binding slot (edge-partitioned kind)

	Codes    []uint16 // resolved partition codes (prefix)
	Seg      *Segment
	EdgeSlot int // where the matched edge is bound

	// Expand lists the innermost-bucket code completions of Codes. Sorted
	// access (segments and intersections) is only meaningful inside one
	// innermost bucket; when Codes is a strict prefix of the partition
	// levels, the optimizer expands the remaining levels here and the
	// operators process each bucket combination separately.
	Expand [][]uint16
}

// ExpandChoices enumerates every completion of prefix across the remaining
// partition-level cardinalities (including the null buckets).
func ExpandChoices(prefix []uint16, cards []int) [][]uint16 {
	rest := cards[len(prefix):]
	out := [][]uint16{append([]uint16(nil), prefix...)}
	for _, card := range rest {
		var next [][]uint16
		for _, p := range out {
			for c := 0; c < card; c++ {
				next = append(next, append(append([]uint16(nil), p...), uint16(c)))
			}
		}
		out = next
	}
	return out
}

// fetchBase resolves the list from the indexes under the current binding,
// without segment restriction, delta splicing, or i-cost accounting.
func (r ListRef) fetchBase(rt *Runtime, b *Binding, codes []uint16) index.AdjList {
	switch r.Kind {
	case ListPrimary:
		return rt.Store.Primary().List(r.Dir, b.V[r.OwnerVertexSlot], codes)
	case ListVP:
		return r.VP.List(r.Dir, b.V[r.OwnerVertexSlot], codes)
	case ListEP:
		return r.EP.List(b.E[r.OwnerEdgeSlot], codes)
	}
	return index.AdjList{}
}

// fetchSpliced resolves the list under the current binding and splices the
// pinned snapshot's delta overlay into primary fetches (writing the merged
// entries into list position li's reusable scratch buffer, so steady-state
// fetches stay allocation-free), without segment restriction or i-cost
// accounting. Fetching the same (binding, codes) twice — e.g. a thief
// re-materializing a stolen sub-morsel's list — yields identical entries.
// Secondary-index fetches never need splicing: the planner hides secondary
// indexes while a snapshot carries a non-empty delta.
func (r ListRef) fetchSpliced(rt *Runtime, sc *opScratch, li int, b *Binding, codes []uint16) index.AdjList {
	l := r.fetchBase(rt, b, codes)
	if rt.Delta != nil && r.Kind == ListPrimary {
		owner := uint32(b.V[r.OwnerVertexSlot])
		if rt.Delta.Touches(r.Dir, owner) {
			buf := sc.spliceBuf(li)
			buf.nbrs, buf.eids = rt.Delta.Splice(rt.Store.Primary(), r.Dir, owner, codes, l, buf.nbrs, buf.eids)
			l = index.DirectList(buf.nbrs, buf.eids)
		}
	}
	return l
}

// fetchWith is fetchSpliced plus the sorted-segment restriction and the
// i-cost charge for the resulting length — the normal operator fetch path.
func (r ListRef) fetchWith(rt *Runtime, sc *opScratch, li int, b *Binding, codes []uint16) index.AdjList {
	l := r.fetchSpliced(rt, sc, li, b, codes)
	if r.Seg != nil {
		l = segmentList(rt, b, l, r.Seg)
	}
	rt.ICost += int64(l.Len())
	return l
}

// FetchLen returns the length fetching this list would produce — including
// the delta overlay, but without materializing the merged entries — and
// charges that length to the runtime's i-cost exactly as a fetch would.
// This is the count-pushdown fold path, which multiplies lengths instead of
// enumerating; fold refs never carry segments.
func (r ListRef) FetchLen(rt *Runtime, b *Binding) int {
	n := r.fetchBase(rt, b, r.Codes).Len()
	if rt.Delta != nil && r.Kind == ListPrimary {
		owner := uint32(b.V[r.OwnerVertexSlot])
		if rt.Delta.Touches(r.Dir, owner) {
			n = rt.Delta.SpliceLen(r.Dir, owner, r.Codes, n)
		}
	}
	rt.ICost += int64(n)
	return n
}

// segmentList binary-searches the [Lo, Hi) ordinal range of the first sort
// key inside a list sorted on it. The searches are hand-rolled (no
// sort.Search) so the per-fetch path allocates no closures.
func segmentList(rt *Runtime, b *Binding, l index.AdjList, seg *Segment) index.AdjList {
	g := rt.G
	n := l.Len()
	segLo, segHi := seg.Lo, seg.Hi
	hasLo, hasHi := seg.HasLo, seg.HasHi
	if seg.DynEq != nil {
		v := seg.DynEq.Value(rt, b)
		ord, ok := index.OrdinalOfValue(g, seg.Key, v)
		if !ok || v.IsNull() {
			return l.Slice(0, 0)
		}
		segLo, segHi = ord, ord+1
		hasLo, hasHi = true, true
	}
	lo := 0
	if hasLo {
		lo = segSearch(g, seg.Key, l, n, segLo)
	}
	hi := n
	if hasHi {
		hi = segSearch(g, seg.Key, l, n, segHi)
	}
	if lo > hi {
		lo = hi
	}
	return l.Slice(lo, hi)
}

// segSearch returns the first position in [0, n) whose sort-key ordinal is
// >= target (n when none is).
func segSearch(g *storage.Graph, key index.SortKey, l index.AdjList, n int, target uint64) int {
	lo, hi := 0, n
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		nbr, e := l.Get(mid)
		if index.SortKeyOrdinal(g, key, e, nbr) < target {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// String implements fmt.Stringer (used by plan explanations).
func (r ListRef) String() string {
	var base string
	switch r.Kind {
	case ListPrimary:
		base = fmt.Sprintf("primary.%v(v%d)", r.Dir, r.OwnerVertexSlot)
	case ListVP:
		base = fmt.Sprintf("%s.%v(v%d)", r.VP.Name(), r.Dir, r.OwnerVertexSlot)
	case ListEP:
		base = fmt.Sprintf("%s(e%d)", r.EP.Name(), r.OwnerEdgeSlot)
	}
	if len(r.Codes) > 0 {
		base += fmt.Sprintf("/buckets%v", r.Codes)
	}
	if r.Seg != nil {
		base += fmt.Sprintf("/seg(%s)", r.Seg.Key)
	}
	return base
}

// nbrDirection returns which endpoint of a matched edge is the neighbour
// for this list (needed to fill the other endpoint when binding edges).
func (r ListRef) nbrDirection() index.Direction {
	if r.Kind == ListEP {
		return r.EP.EPDir().AdjDirection()
	}
	return r.Dir
}
