package exec

// Tracing correctness: the bit-identical oracle. A traced execution must
// report exactly the count, ICost, and PredEvals of an untraced one at any
// worker count, the exclusive per-operator spans must telescope back to
// those totals exactly, and the per-operator attribution must itself be
// deterministic across worker counts (morsel partitioning changes who does
// the work, never how much per operator).

import (
	"testing"

	"github.com/aplusdb/aplus/internal/index"
)

// trianglePlan is a 3-clique with a 2-way intersection (no fold suffix).
func trianglePlan() *Plan {
	return &Plan{
		NumV: 3, NumE: 3,
		Ops: []Op{
			&ScanVertexOp{Slot: 0},
			&ExtendIntersectOp{TargetSlot: 1, Lists: []ListRef{
				{Kind: ListPrimary, Dir: index.FW, OwnerVertexSlot: 0, EdgeSlot: 0},
			}},
			&ExtendIntersectOp{TargetSlot: 2, Lists: []ListRef{
				{Kind: ListPrimary, Dir: index.FW, OwnerVertexSlot: 1, EdgeSlot: 1},
				{Kind: ListPrimary, Dir: index.BW, OwnerVertexSlot: 0, EdgeSlot: 2},
			}},
		},
	}
}

// starPlan is a 3-arm fan-out whose tail folds under count pushdown.
func starPlan() *Plan {
	return &Plan{
		NumV: 4, NumE: 3,
		Ops: []Op{
			&ScanVertexOp{Slot: 0},
			&ExtendIntersectOp{TargetSlot: 1, Lists: []ListRef{
				{Kind: ListPrimary, Dir: index.FW, OwnerVertexSlot: 0, EdgeSlot: 0},
			}},
			&ExtendIntersectOp{TargetSlot: 2, Lists: []ListRef{
				{Kind: ListPrimary, Dir: index.FW, OwnerVertexSlot: 0, EdgeSlot: 1},
			}},
			&ExtendIntersectOp{TargetSlot: 3, Lists: []ListRef{
				{Kind: ListPrimary, Dir: index.BW, OwnerVertexSlot: 0, EdgeSlot: 2},
			}},
		},
	}
}

// tracedRun executes plan with tracing under the given worker count and
// returns the runtime, trace, and count.
func tracedRun(t *testing.T, s *index.Store, plan *Plan, workers int) (*Runtime, *Trace, int64) {
	t.Helper()
	rt := NewRuntime(s)
	rt.Trace = &Trace{}
	n, err := plan.CountParallel(rt, ParallelOptions{Workers: workers, MorselSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	return rt, rt.Trace, n
}

// spanTotals sums a metric over every exclusive span.
func spanTotals(spans []OpSpan) (calls, rows, icost, preds, nanos int64) {
	for _, sp := range spans {
		calls += sp.Calls
		rows += sp.Rows
		icost += sp.ICost
		preds += sp.PredEvals
		nanos += sp.Nanos
	}
	return
}

func TestTraceSumsBitIdenticalToProfiled(t *testing.T) {
	s := allocStore(t)
	for _, plan := range []*Plan{trianglePlan(), starPlan()} {
		// Untraced reference (serial).
		ref := NewRuntime(s)
		wantN := plan.Count(ref)
		if wantN == 0 {
			t.Fatal("degenerate trace test: no matches")
		}
		for _, workers := range []int{1, 2, 4, 8} {
			rt, tr, n := tracedRun(t, s, plan, workers)
			if n != wantN {
				t.Fatalf("workers=%d: traced count %d, untraced %d", workers, n, wantN)
			}
			if rt.ICost != ref.ICost || rt.PredEvals != ref.PredEvals {
				t.Fatalf("workers=%d: traced metrics (%d,%d), untraced (%d,%d)",
					workers, rt.ICost, rt.PredEvals, ref.ICost, ref.PredEvals)
			}
			spans := tr.Report()
			if len(spans) != len(plan.Ops)+1 {
				t.Fatalf("workers=%d: %d spans for %d ops", workers, len(spans), len(plan.Ops))
			}
			_, _, icost, preds, _ := spanTotals(spans)
			if icost != rt.ICost || preds != rt.PredEvals {
				t.Fatalf("workers=%d: span sums (%d,%d) != totals (%d,%d)",
					workers, icost, preds, rt.ICost, rt.PredEvals)
			}
			if got := spans[len(spans)-1].Rows; got != wantN {
				t.Fatalf("workers=%d: sink rows %d, count %d", workers, got, wantN)
			}
			// The per-worker split must itself sum to the totals.
			if workers > 1 && len(tr.Workers) > 0 {
				var wRows, wICost, wPreds int64
				for _, w := range tr.Workers {
					wRows += w.Rows
					wICost += w.ICost
					wPreds += w.PredEvals
				}
				if wRows != wantN || wICost != rt.ICost || wPreds != rt.PredEvals {
					t.Fatalf("workers=%d: worker split sums (%d,%d,%d) != (%d,%d,%d)",
						workers, wRows, wICost, wPreds, wantN, rt.ICost, rt.PredEvals)
				}
			}
		}
	}
}

// TestTracePerOpDeterministicAcrossWorkers pins that each operator's
// attributed metrics (not just the totals) are identical at any worker
// count: morsel partitioning redistributes work without changing it.
func TestTracePerOpDeterministicAcrossWorkers(t *testing.T) {
	s := allocStore(t)
	for _, plan := range []*Plan{trianglePlan(), starPlan()} {
		_, tr1, _ := tracedRun(t, s, plan, 1)
		base := tr1.Report()
		for _, workers := range []int{2, 4, 8} {
			_, tr, _ := tracedRun(t, s, plan, workers)
			spans := tr.Report()
			for i := range spans {
				if spans[i].ICost != base[i].ICost || spans[i].PredEvals != base[i].PredEvals || spans[i].Rows != base[i].Rows {
					t.Fatalf("workers=%d op %d: span %+v, serial %+v", workers, i, spans[i], base[i])
				}
				// Call counts are also identical for every operator except
				// the root scan, whose calls count morsels when parallel.
				if i > 0 && spans[i].Calls != base[i].Calls {
					t.Fatalf("workers=%d op %d: calls %d, serial %d", workers, i, spans[i].Calls, base[i].Calls)
				}
			}
		}
	}
}

// TestTraceFoldAttribution pins that count pushdown's folded suffix is
// traced per operator: the fold boundary is recorded, every folded
// operator carries its own i-cost share, and the traced fold charges
// exactly what enumeration would (the global invariant, per-op).
func TestTraceFoldAttribution(t *testing.T) {
	s := allocStore(t)
	plan := starPlan()
	if plan.countFoldStart() >= len(plan.Ops) {
		t.Fatal("fold suffix not recognized")
	}
	rt, tr, n := tracedRun(t, s, plan, 4)
	if fs := tr.FoldStart(); fs != plan.countFoldStart() {
		t.Fatalf("trace fold start %d, plan %d", fs, plan.countFoldStart())
	}
	spans := tr.Report()
	for i := tr.FoldStart(); i < len(plan.Ops); i++ {
		if spans[i].ICost == 0 || spans[i].Rows == 0 || spans[i].Calls == 0 {
			t.Fatalf("folded op %d has empty span %+v", i, spans[i])
		}
	}
	// The last folded op's produced rows are the final count.
	if got := spans[len(plan.Ops)-1].Rows; got != n {
		t.Fatalf("last folded op rows %d, count %d", got, n)
	}
	// Enumeration parity: same count, same i-cost, via the traced path too.
	rtEnum := NewRuntime(s)
	rtEnum.Trace = &Trace{}
	var enumerated int64
	plan.Execute(rtEnum, func(*Binding) bool { enumerated++; return true })
	if enumerated != n || rtEnum.ICost != rt.ICost {
		t.Fatalf("enumeration (%d, icost %d) != folded (%d, icost %d)",
			enumerated, rtEnum.ICost, n, rt.ICost)
	}
	espans := rtEnum.Trace.Report()
	_, _, eicost, _, _ := spanTotals(espans)
	if eicost != rtEnum.ICost {
		t.Fatalf("enumeration span sum %d != icost %d", eicost, rtEnum.ICost)
	}
}

// TestTraceWithGovernorPartial pins that an armed governor and an armed
// tracer compose: a budget trip still yields spans whose sums equal the
// partial metrics the runtime reports.
func TestTraceWithGovernorPartial(t *testing.T) {
	s := allocStore(t)
	plan := trianglePlan()
	rt := NewRuntime(s)
	rt.Trace = &Trace{}
	rt.Gov = &Governor{MaxICost: 10, CheckEvery: 1}
	n, err := plan.CountParallel(rt, ParallelOptions{Workers: 2, MorselSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !rt.Gov.Stopped() || rt.Gov.Reason() != StopICost {
		t.Fatalf("governor did not trip: stopped=%v reason=%v (n=%d)", rt.Gov.Stopped(), rt.Gov.Reason(), n)
	}
	_, _, icost, preds, _ := spanTotals(rt.Trace.Report())
	if icost != rt.ICost || preds != rt.PredEvals {
		t.Fatalf("partial span sums (%d,%d) != partial metrics (%d,%d)", icost, preds, rt.ICost, rt.PredEvals)
	}
}
