package exec

import "github.com/aplusdb/aplus/internal/storage"

// ShardSpec restricts a plan's root scan to the entries one shard of a
// K-way hash-partitioned cluster owns. Shards in the serving layer hold
// full replicas of the data (so multi-hop pipelines never need remote
// adjacency), and fan-out instead partitions *root ownership*: shard i of
// K processes exactly the root-scan entries whose owning vertex hashes to
// i. A partition of root entries across shards therefore covers every
// entry exactly once — the same invariant morsel-driven parallelism relies
// on — so per-shard counts, i-cost, and PredEvals sum bit-identically to a
// single unsharded execution.
//
// Vertex scans own a position when the scanned vertex hashes to Index;
// edge scans use the edge's source vertex. The filter runs before any
// predicate evaluation or binding, so skipped entries charge no metrics.
// The zero value (Of == 0) and Of <= 1 disable filtering.
type ShardSpec struct {
	Index int
	Of    int
}

// Owner returns the shard index owning vertex v under a K-way partition.
func Owner(v storage.VertexID, of int) int {
	if of <= 1 {
		return 0
	}
	// Fibonacci hashing: dense vertex IDs are sequential, so a plain mod
	// would stripe adjacent IDs across shards in lockstep with any
	// generator periodicity; the multiplicative mix decorrelates them.
	h := uint64(v) * 0x9e3779b97f4a7c15
	return int((h >> 33) % uint64(of))
}

// active reports whether the spec filters at all.
func (s ShardSpec) active() bool { return s.Of > 1 }

// ownsVertex reports whether this shard owns vertex v.
func (s ShardSpec) ownsVertex(v storage.VertexID) bool {
	return Owner(v, s.Of) == s.Index
}
