package exec

// Zero-allocation regression tests for the block-decoded execution core:
// once a Runtime is warm (pipeline compiled, scratch buffers grown), a
// steady-state Count must perform no heap allocations at all — which in
// particular pins the contract of 0 allocs per tuple for every operator on
// both direct (primary) and offset-list (secondary) inputs.

import (
	"testing"

	"github.com/aplusdb/aplus/internal/index"
	"github.com/aplusdb/aplus/internal/pred"
	"github.com/aplusdb/aplus/internal/storage"
)

// allocGraph builds a small dense graph with parallel edges so duplicate
// runs and multi-entry intersections are exercised.
func allocGraph(t testing.TB) *storage.Graph {
	t.Helper()
	g := storage.NewGraph()
	g.AddVertices(32, "A")
	for v := 0; v < 32; v++ {
		for d := 1; d <= 3; d++ {
			w := (v + d) % 32
			if _, err := g.AddEdge(storage.VertexID(v), storage.VertexID(w), "W"); err != nil {
				t.Fatal(err)
			}
			if _, err := g.AddEdge(storage.VertexID(w), storage.VertexID(v), "W"); err != nil {
				t.Fatal(err)
			}
		}
		// A parallel edge to make duplicate-run handling part of the loop.
		if _, err := g.AddEdge(storage.VertexID(v), storage.VertexID((v+1)%32), "W"); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

func allocStore(t testing.TB) *index.Store {
	t.Helper()
	s, err := index.NewStore(allocGraph(t), index.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// assertZeroAlloc warms the runtime once and then requires exactly zero
// allocations per Count.
func assertZeroAlloc(t *testing.T, rt *Runtime, plan *Plan) {
	t.Helper()
	want := plan.Count(rt) // warm: compile pipeline, grow scratch
	if want == 0 {
		t.Fatal("degenerate zero-alloc test: no matches")
	}
	allocs := testing.AllocsPerRun(10, func() {
		if got := plan.Count(rt); got != want {
			t.Fatalf("count changed across runs: %d vs %d", got, want)
		}
	})
	if allocs != 0 {
		t.Errorf("steady-state Count allocated %.1f times per run, want 0", allocs)
	}
}

// vpNbrSorted builds a secondary vertex-partitioned view (offset lists) in
// neighbour-ID order, so its lists are intersectable with primary lists.
func vpNbrSorted(t *testing.T, s *index.Store, dirs ...index.Direction) *index.VertexPartitioned {
	t.Helper()
	vp, err := s.CreateVertexPartitioned(index.VPDef{
		View: index.View1Hop{Name: "VPn"},
		Dirs: dirs,
		Cfg:  index.DefaultConfig(),
	})
	if err != nil {
		t.Fatal(err)
	}
	return vp
}

func TestZeroAllocExtendDirect(t *testing.T) {
	rt := NewRuntime(allocStore(t))
	plan := &Plan{
		NumV: 2, NumE: 1,
		Ops: []Op{
			&ScanVertexOp{Slot: 0},
			&ExtendIntersectOp{TargetSlot: 1, Lists: []ListRef{
				{Kind: ListPrimary, Dir: index.FW, OwnerVertexSlot: 0, EdgeSlot: 0},
			}},
		},
	}
	assertZeroAlloc(t, rt, plan)
}

func TestZeroAllocExtendOffset(t *testing.T) {
	s := allocStore(t)
	vp := vpNbrSorted(t, s, index.FW)
	rt := NewRuntime(s)
	plan := &Plan{
		NumV: 2, NumE: 1,
		Ops: []Op{
			&ScanVertexOp{Slot: 0},
			&ExtendIntersectOp{TargetSlot: 1, Lists: []ListRef{
				{Kind: ListVP, VP: vp, Dir: index.FW, OwnerVertexSlot: 0, EdgeSlot: 0},
			}},
		},
	}
	assertZeroAlloc(t, rt, plan)
}

func TestZeroAllocIntersect2WayDirect(t *testing.T) {
	rt := NewRuntime(allocStore(t))
	// Triangle: scan a0, extend a1, intersect FW(a1) ∩ BW(a0).
	plan := &Plan{
		NumV: 3, NumE: 3,
		Ops: []Op{
			&ScanVertexOp{Slot: 0},
			&ExtendIntersectOp{TargetSlot: 1, Lists: []ListRef{
				{Kind: ListPrimary, Dir: index.FW, OwnerVertexSlot: 0, EdgeSlot: 0},
			}},
			&ExtendIntersectOp{TargetSlot: 2, Lists: []ListRef{
				{Kind: ListPrimary, Dir: index.FW, OwnerVertexSlot: 1, EdgeSlot: 1},
				{Kind: ListPrimary, Dir: index.BW, OwnerVertexSlot: 0, EdgeSlot: 2},
			}},
		},
	}
	assertZeroAlloc(t, rt, plan)
}

func TestZeroAllocIntersect3WayDirect(t *testing.T) {
	rt := NewRuntime(allocStore(t))
	// Diamond closing: a3 in FW(a0) ∩ FW(a1) ∩ FW(a2).
	plan := &Plan{
		NumV: 4, NumE: 5,
		Ops: []Op{
			&ScanVertexOp{Slot: 0},
			&ExtendIntersectOp{TargetSlot: 1, Lists: []ListRef{
				{Kind: ListPrimary, Dir: index.FW, OwnerVertexSlot: 0, EdgeSlot: 0},
			}},
			&ExtendIntersectOp{TargetSlot: 2, Lists: []ListRef{
				{Kind: ListPrimary, Dir: index.FW, OwnerVertexSlot: 1, EdgeSlot: 1},
			}},
			&ExtendIntersectOp{TargetSlot: 3, Lists: []ListRef{
				{Kind: ListPrimary, Dir: index.FW, OwnerVertexSlot: 0, EdgeSlot: 2},
				{Kind: ListPrimary, Dir: index.FW, OwnerVertexSlot: 1, EdgeSlot: 3},
				{Kind: ListPrimary, Dir: index.FW, OwnerVertexSlot: 2, EdgeSlot: 4},
			}},
		},
	}
	assertZeroAlloc(t, rt, plan)
}

func TestZeroAllocIntersect2WayOffset(t *testing.T) {
	s := allocStore(t)
	vp := vpNbrSorted(t, s, index.FW, index.BW)
	rt := NewRuntime(s)
	// Same triangle, but both intersected lists come from byte-packed
	// offset lists that must be block-decoded into scratch buffers.
	plan := &Plan{
		NumV: 3, NumE: 3,
		Ops: []Op{
			&ScanVertexOp{Slot: 0},
			&ExtendIntersectOp{TargetSlot: 1, Lists: []ListRef{
				{Kind: ListPrimary, Dir: index.FW, OwnerVertexSlot: 0, EdgeSlot: 0},
			}},
			&ExtendIntersectOp{TargetSlot: 2, Lists: []ListRef{
				{Kind: ListVP, VP: vp, Dir: index.FW, OwnerVertexSlot: 1, EdgeSlot: 1},
				{Kind: ListVP, VP: vp, Dir: index.BW, OwnerVertexSlot: 0, EdgeSlot: 2},
			}},
		},
	}
	assertZeroAlloc(t, rt, plan)
}

func TestZeroAllocIntersect3WayMixed(t *testing.T) {
	s := allocStore(t)
	vp := vpNbrSorted(t, s, index.FW)
	rt := NewRuntime(s)
	// 3-way intersection mixing direct and offset-list inputs.
	plan := &Plan{
		NumV: 4, NumE: 5,
		Ops: []Op{
			&ScanVertexOp{Slot: 0},
			&ExtendIntersectOp{TargetSlot: 1, Lists: []ListRef{
				{Kind: ListPrimary, Dir: index.FW, OwnerVertexSlot: 0, EdgeSlot: 0},
			}},
			&ExtendIntersectOp{TargetSlot: 2, Lists: []ListRef{
				{Kind: ListPrimary, Dir: index.FW, OwnerVertexSlot: 1, EdgeSlot: 1},
			}},
			&ExtendIntersectOp{TargetSlot: 3, Lists: []ListRef{
				{Kind: ListPrimary, Dir: index.FW, OwnerVertexSlot: 0, EdgeSlot: 2},
				{Kind: ListVP, VP: vp, Dir: index.FW, OwnerVertexSlot: 1, EdgeSlot: 3},
				{Kind: ListPrimary, Dir: index.FW, OwnerVertexSlot: 2, EdgeSlot: 4},
			}},
		},
	}
	assertZeroAlloc(t, rt, plan)
}

func TestZeroAllocMultiExtend(t *testing.T) {
	s, err := index.NewStore(storage.ExampleGraph(), index.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	vp, err := s.CreateVertexPartitioned(index.VPDef{
		View: index.View1Hop{Name: "VPc"},
		Dirs: []index.Direction{index.FW, index.BW},
		Cfg: index.Config{
			Partitions: index.DefaultConfig().Partitions,
			Sorts:      []index.SortKey{{Var: pred.VarNbr, Prop: storage.PropCity}},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	rt := NewRuntime(s)
	cityKey := index.SortKey{Var: pred.VarNbr, Prop: storage.PropCity}
	// Same-city join over offset lists sorted on the neighbour's city.
	plan := &Plan{
		NumV: 3, NumE: 2,
		Ops: []Op{
			&ScanVertexOp{Slot: 0},
			&MultiExtendOp{Key: cityKey, Groups: []MEGroup{
				{TargetSlot: 1, Lists: []ListRef{{Kind: ListVP, VP: vp, Dir: index.FW, OwnerVertexSlot: 0, EdgeSlot: 0, Expand: ExpandChoices(nil, vp.LevelCards(index.FW))}}},
				{TargetSlot: 2, Lists: []ListRef{{Kind: ListVP, VP: vp, Dir: index.BW, OwnerVertexSlot: 0, EdgeSlot: 1, Expand: ExpandChoices(nil, vp.LevelCards(index.BW))}}},
			}},
		},
	}
	assertZeroAlloc(t, rt, plan)
}

func TestZeroAllocSegmentFetch(t *testing.T) {
	s, err := index.NewStore(storage.ExampleGraph(), index.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	vp, err := s.CreateVertexPartitioned(index.VPDef{
		View: index.View1Hop{Name: "VPt"},
		Dirs: []index.Direction{index.FW},
		Cfg: index.Config{
			Partitions: index.DefaultConfig().Partitions,
			Sorts:      []index.SortKey{{Var: pred.VarAdj, Prop: storage.PropDate}},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	rt := NewRuntime(s)
	key := index.SortKey{Var: pred.VarAdj, Prop: storage.PropDate}
	hi, ok := index.OrdinalOfValue(rt.G, key, storage.Int(10))
	if !ok {
		t.Fatal("ordinal")
	}
	plan := &Plan{
		NumV: 2, NumE: 1,
		Ops: []Op{
			&ScanVertexOp{Slot: 0},
			&ExtendIntersectOp{TargetSlot: 1, Lists: []ListRef{{
				Kind: ListVP, VP: vp, Dir: index.FW, OwnerVertexSlot: 0, EdgeSlot: 0,
				Seg:    &Segment{Key: key, Hi: hi + 1, HasHi: true},
				Expand: ExpandChoices(nil, vp.LevelCards(index.FW)),
			}}},
		},
	}
	assertZeroAlloc(t, rt, plan)
}
