package exec

// Zero-allocation regression tests for the block-decoded execution core:
// once a Runtime is warm (pipeline compiled, scratch buffers grown), a
// steady-state Count must perform no heap allocations at all — which in
// particular pins the contract of 0 allocs per tuple for every operator on
// both direct (primary) and offset-list (secondary) inputs.

import (
	"testing"

	"github.com/aplusdb/aplus/internal/index"
	"github.com/aplusdb/aplus/internal/pred"
	"github.com/aplusdb/aplus/internal/storage"
)

// allocGraph builds a small dense graph with parallel edges so duplicate
// runs and multi-entry intersections are exercised.
func allocGraph(t testing.TB) *storage.Graph {
	t.Helper()
	g := storage.NewGraph()
	g.AddVertices(32, "A")
	for v := 0; v < 32; v++ {
		for d := 1; d <= 3; d++ {
			w := (v + d) % 32
			if _, err := g.AddEdge(storage.VertexID(v), storage.VertexID(w), "W"); err != nil {
				t.Fatal(err)
			}
			if _, err := g.AddEdge(storage.VertexID(w), storage.VertexID(v), "W"); err != nil {
				t.Fatal(err)
			}
		}
		// A parallel edge to make duplicate-run handling part of the loop.
		if _, err := g.AddEdge(storage.VertexID(v), storage.VertexID((v+1)%32), "W"); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

func allocStore(t testing.TB) *index.Store {
	t.Helper()
	s, err := index.NewStore(allocGraph(t), index.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// assertZeroAlloc warms the runtime once and then requires exactly zero
// allocations per Count.
func assertZeroAlloc(t *testing.T, rt *Runtime, plan *Plan) {
	t.Helper()
	want := plan.Count(rt) // warm: compile pipeline, grow scratch
	if want == 0 {
		t.Fatal("degenerate zero-alloc test: no matches")
	}
	allocs := testing.AllocsPerRun(10, func() {
		if got := plan.Count(rt); got != want {
			t.Fatalf("count changed across runs: %d vs %d", got, want)
		}
	})
	if allocs != 0 {
		t.Errorf("steady-state Count allocated %.1f times per run, want 0", allocs)
	}
}

// vpNbrSorted builds a secondary vertex-partitioned view (offset lists) in
// neighbour-ID order, so its lists are intersectable with primary lists.
func vpNbrSorted(t *testing.T, s *index.Store, dirs ...index.Direction) *index.VertexPartitioned {
	t.Helper()
	vp, err := s.CreateVertexPartitioned(index.VPDef{
		View: index.View1Hop{Name: "VPn"},
		Dirs: dirs,
		Cfg:  index.DefaultConfig(),
	})
	if err != nil {
		t.Fatal(err)
	}
	return vp
}

func TestZeroAllocExtendDirect(t *testing.T) {
	rt := NewRuntime(allocStore(t))
	plan := &Plan{
		NumV: 2, NumE: 1,
		Ops: []Op{
			&ScanVertexOp{Slot: 0},
			&ExtendIntersectOp{TargetSlot: 1, Lists: []ListRef{
				{Kind: ListPrimary, Dir: index.FW, OwnerVertexSlot: 0, EdgeSlot: 0},
			}},
		},
	}
	assertZeroAlloc(t, rt, plan)
}

func TestZeroAllocExtendOffset(t *testing.T) {
	s := allocStore(t)
	vp := vpNbrSorted(t, s, index.FW)
	rt := NewRuntime(s)
	plan := &Plan{
		NumV: 2, NumE: 1,
		Ops: []Op{
			&ScanVertexOp{Slot: 0},
			&ExtendIntersectOp{TargetSlot: 1, Lists: []ListRef{
				{Kind: ListVP, VP: vp, Dir: index.FW, OwnerVertexSlot: 0, EdgeSlot: 0},
			}},
		},
	}
	assertZeroAlloc(t, rt, plan)
}

func TestZeroAllocIntersect2WayDirect(t *testing.T) {
	rt := NewRuntime(allocStore(t))
	// Triangle: scan a0, extend a1, intersect FW(a1) ∩ BW(a0).
	plan := &Plan{
		NumV: 3, NumE: 3,
		Ops: []Op{
			&ScanVertexOp{Slot: 0},
			&ExtendIntersectOp{TargetSlot: 1, Lists: []ListRef{
				{Kind: ListPrimary, Dir: index.FW, OwnerVertexSlot: 0, EdgeSlot: 0},
			}},
			&ExtendIntersectOp{TargetSlot: 2, Lists: []ListRef{
				{Kind: ListPrimary, Dir: index.FW, OwnerVertexSlot: 1, EdgeSlot: 1},
				{Kind: ListPrimary, Dir: index.BW, OwnerVertexSlot: 0, EdgeSlot: 2},
			}},
		},
	}
	assertZeroAlloc(t, rt, plan)
}

func TestZeroAllocIntersect3WayDirect(t *testing.T) {
	rt := NewRuntime(allocStore(t))
	// Diamond closing: a3 in FW(a0) ∩ FW(a1) ∩ FW(a2).
	plan := &Plan{
		NumV: 4, NumE: 5,
		Ops: []Op{
			&ScanVertexOp{Slot: 0},
			&ExtendIntersectOp{TargetSlot: 1, Lists: []ListRef{
				{Kind: ListPrimary, Dir: index.FW, OwnerVertexSlot: 0, EdgeSlot: 0},
			}},
			&ExtendIntersectOp{TargetSlot: 2, Lists: []ListRef{
				{Kind: ListPrimary, Dir: index.FW, OwnerVertexSlot: 1, EdgeSlot: 1},
			}},
			&ExtendIntersectOp{TargetSlot: 3, Lists: []ListRef{
				{Kind: ListPrimary, Dir: index.FW, OwnerVertexSlot: 0, EdgeSlot: 2},
				{Kind: ListPrimary, Dir: index.FW, OwnerVertexSlot: 1, EdgeSlot: 3},
				{Kind: ListPrimary, Dir: index.FW, OwnerVertexSlot: 2, EdgeSlot: 4},
			}},
		},
	}
	assertZeroAlloc(t, rt, plan)
}

func TestZeroAllocIntersect2WayOffset(t *testing.T) {
	s := allocStore(t)
	vp := vpNbrSorted(t, s, index.FW, index.BW)
	rt := NewRuntime(s)
	// Same triangle, but both intersected lists come from byte-packed
	// offset lists that must be block-decoded into scratch buffers.
	plan := &Plan{
		NumV: 3, NumE: 3,
		Ops: []Op{
			&ScanVertexOp{Slot: 0},
			&ExtendIntersectOp{TargetSlot: 1, Lists: []ListRef{
				{Kind: ListPrimary, Dir: index.FW, OwnerVertexSlot: 0, EdgeSlot: 0},
			}},
			&ExtendIntersectOp{TargetSlot: 2, Lists: []ListRef{
				{Kind: ListVP, VP: vp, Dir: index.FW, OwnerVertexSlot: 1, EdgeSlot: 1},
				{Kind: ListVP, VP: vp, Dir: index.BW, OwnerVertexSlot: 0, EdgeSlot: 2},
			}},
		},
	}
	assertZeroAlloc(t, rt, plan)
}

func TestZeroAllocIntersect3WayMixed(t *testing.T) {
	s := allocStore(t)
	vp := vpNbrSorted(t, s, index.FW)
	rt := NewRuntime(s)
	// 3-way intersection mixing direct and offset-list inputs.
	plan := &Plan{
		NumV: 4, NumE: 5,
		Ops: []Op{
			&ScanVertexOp{Slot: 0},
			&ExtendIntersectOp{TargetSlot: 1, Lists: []ListRef{
				{Kind: ListPrimary, Dir: index.FW, OwnerVertexSlot: 0, EdgeSlot: 0},
			}},
			&ExtendIntersectOp{TargetSlot: 2, Lists: []ListRef{
				{Kind: ListPrimary, Dir: index.FW, OwnerVertexSlot: 1, EdgeSlot: 1},
			}},
			&ExtendIntersectOp{TargetSlot: 3, Lists: []ListRef{
				{Kind: ListPrimary, Dir: index.FW, OwnerVertexSlot: 0, EdgeSlot: 2},
				{Kind: ListVP, VP: vp, Dir: index.FW, OwnerVertexSlot: 1, EdgeSlot: 3},
				{Kind: ListPrimary, Dir: index.FW, OwnerVertexSlot: 2, EdgeSlot: 4},
			}},
		},
	}
	assertZeroAlloc(t, rt, plan)
}

func TestZeroAllocMultiExtend(t *testing.T) {
	s, err := index.NewStore(storage.ExampleGraph(), index.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	vp, err := s.CreateVertexPartitioned(index.VPDef{
		View: index.View1Hop{Name: "VPc"},
		Dirs: []index.Direction{index.FW, index.BW},
		Cfg: index.Config{
			Partitions: index.DefaultConfig().Partitions,
			Sorts:      []index.SortKey{{Var: pred.VarNbr, Prop: storage.PropCity}},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	rt := NewRuntime(s)
	cityKey := index.SortKey{Var: pred.VarNbr, Prop: storage.PropCity}
	// Same-city join over offset lists sorted on the neighbour's city.
	plan := &Plan{
		NumV: 3, NumE: 2,
		Ops: []Op{
			&ScanVertexOp{Slot: 0},
			&MultiExtendOp{Key: cityKey, Groups: []MEGroup{
				{TargetSlot: 1, Lists: []ListRef{{Kind: ListVP, VP: vp, Dir: index.FW, OwnerVertexSlot: 0, EdgeSlot: 0, Expand: ExpandChoices(nil, vp.LevelCards(index.FW))}}},
				{TargetSlot: 2, Lists: []ListRef{{Kind: ListVP, VP: vp, Dir: index.BW, OwnerVertexSlot: 0, EdgeSlot: 1, Expand: ExpandChoices(nil, vp.LevelCards(index.BW))}}},
			}},
		},
	}
	assertZeroAlloc(t, rt, plan)
}

func TestZeroAllocSegmentFetch(t *testing.T) {
	s, err := index.NewStore(storage.ExampleGraph(), index.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	vp, err := s.CreateVertexPartitioned(index.VPDef{
		View: index.View1Hop{Name: "VPt"},
		Dirs: []index.Direction{index.FW},
		Cfg: index.Config{
			Partitions: index.DefaultConfig().Partitions,
			Sorts:      []index.SortKey{{Var: pred.VarAdj, Prop: storage.PropDate}},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	rt := NewRuntime(s)
	key := index.SortKey{Var: pred.VarAdj, Prop: storage.PropDate}
	hi, ok := index.OrdinalOfValue(rt.G, key, storage.Int(10))
	if !ok {
		t.Fatal("ordinal")
	}
	plan := &Plan{
		NumV: 2, NumE: 1,
		Ops: []Op{
			&ScanVertexOp{Slot: 0},
			&ExtendIntersectOp{TargetSlot: 1, Lists: []ListRef{{
				Kind: ListVP, VP: vp, Dir: index.FW, OwnerVertexSlot: 0, EdgeSlot: 0,
				Seg:    &Segment{Key: key, Hi: hi + 1, HasHi: true},
				Expand: ExpandChoices(nil, vp.LevelCards(index.FW)),
			}}},
		},
	}
	assertZeroAlloc(t, rt, plan)
}

// TestZeroAllocDisarmedTrace pins the tracing contract: after a traced
// execution (EXPLAIN ANALYZE) on the same warm runtime, disarming the
// tracer restores the allocation-free steady state — the disarmed path is
// one pointer test per step, nothing retained, nothing allocated.
func TestZeroAllocDisarmedTrace(t *testing.T) {
	rt := NewRuntime(allocStore(t))
	plan := &Plan{
		NumV: 3, NumE: 3,
		Ops: []Op{
			&ScanVertexOp{Slot: 0},
			&ExtendIntersectOp{TargetSlot: 1, Lists: []ListRef{
				{Kind: ListPrimary, Dir: index.FW, OwnerVertexSlot: 0, EdgeSlot: 0},
			}},
			&ExtendIntersectOp{TargetSlot: 2, Lists: []ListRef{
				{Kind: ListPrimary, Dir: index.FW, OwnerVertexSlot: 1, EdgeSlot: 1},
				{Kind: ListPrimary, Dir: index.BW, OwnerVertexSlot: 0, EdgeSlot: 2},
			}},
		},
	}
	rt.Trace = &Trace{}
	traced := plan.Count(rt)
	if traced == 0 {
		t.Fatal("degenerate test: no matches")
	}
	rt.Trace = nil
	assertZeroAlloc(t, rt, plan)
}

// deltaRuntime builds a runtime pinned to a snapshot-style state with a
// non-empty delta overlay: fresh edges buffered across many owners plus a
// few deletes of base edges, over the frozen allocStore base. This is the
// shape every fetch must splice through.
func deltaRuntime(t *testing.T) *Runtime {
	t.Helper()
	g := allocGraph(t)
	s, err := index.NewStore(g, index.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	g2 := g.Clone()
	b := index.NewDeltaBuilder(index.NewDelta(), s.Primary(), g2)
	for v := 0; v < 32; v += 2 {
		e, err := g2.AddEdge(storage.VertexID(v), storage.VertexID((v+5)%32), "W")
		if err != nil {
			t.Fatal(err)
		}
		b.Insert(e)
		// A parallel delta edge, so spliced duplicate runs are exercised.
		e2, err := g2.AddEdge(storage.VertexID(v), storage.VertexID((v+5)%32), "W")
		if err != nil {
			t.Fatal(err)
		}
		b.Insert(e2)
	}
	b.Delete(storage.EdgeID(3))
	b.Delete(storage.EdgeID(10))
	if b.Impossible() {
		t.Fatal("delta unexpectedly unbufferable")
	}
	d := b.Freeze()
	if d.Empty() {
		t.Fatal("delta unexpectedly empty")
	}
	return NewRuntimeOver(s, g2, d)
}

// TestZeroAllocExtendDeltaSplice pins the snapshot-read contract: a Count
// whose EXTEND fetches splice a non-empty delta overlay into the frozen
// base must stay allocation-free in steady state (the merged entries land
// in reusable per-op scratch buffers).
func TestZeroAllocExtendDeltaSplice(t *testing.T) {
	rt := deltaRuntime(t)
	plan := &Plan{
		NumV: 2, NumE: 1,
		Ops: []Op{
			&ScanVertexOp{Slot: 0},
			&ExtendIntersectOp{TargetSlot: 1, Lists: []ListRef{
				{Kind: ListPrimary, Dir: index.FW, OwnerVertexSlot: 0, EdgeSlot: 0},
			}},
		},
	}
	assertZeroAlloc(t, rt, plan)
}

// TestZeroAllocIntersectDeltaSplice is the 2-way E/I variant: both
// intersected lists are spliced before galloping.
func TestZeroAllocIntersectDeltaSplice(t *testing.T) {
	rt := deltaRuntime(t)
	plan := &Plan{
		NumV: 3, NumE: 3,
		Ops: []Op{
			&ScanVertexOp{Slot: 0},
			&ExtendIntersectOp{TargetSlot: 1, Lists: []ListRef{
				{Kind: ListPrimary, Dir: index.FW, OwnerVertexSlot: 0, EdgeSlot: 0},
			}},
			&ExtendIntersectOp{TargetSlot: 2, Lists: []ListRef{
				{Kind: ListPrimary, Dir: index.FW, OwnerVertexSlot: 1, EdgeSlot: 1},
				{Kind: ListPrimary, Dir: index.BW, OwnerVertexSlot: 0, EdgeSlot: 2},
			}},
		},
	}
	assertZeroAlloc(t, rt, plan)
}

// TestDeltaSpliceCountMatchesEnumeration cross-checks the delta fetch path
// against itself: the folded Count (FetchLen arithmetic) must equal full
// enumeration (Splice materialization), with identical i-cost.
func TestDeltaSpliceCountMatchesEnumeration(t *testing.T) {
	rt := deltaRuntime(t)
	rtEnum := &Runtime{Store: rt.Store, G: rt.G, Delta: rt.Delta}
	// Star fan-out whose tail folds under count pushdown.
	plan := &Plan{
		NumV: 3, NumE: 2,
		Ops: []Op{
			&ScanVertexOp{Slot: 0},
			&ExtendIntersectOp{TargetSlot: 1, Lists: []ListRef{
				{Kind: ListPrimary, Dir: index.FW, OwnerVertexSlot: 0, EdgeSlot: 0},
			}},
			&ExtendIntersectOp{TargetSlot: 2, Lists: []ListRef{
				{Kind: ListPrimary, Dir: index.FW, OwnerVertexSlot: 0, EdgeSlot: 1},
			}},
		},
	}
	if plan.countFoldStart() >= len(plan.Ops) {
		t.Fatal("fold suffix not recognized")
	}
	folded := plan.Count(rt)
	var enumerated int64
	plan.Execute(rtEnum, func(*Binding) bool { enumerated++; return true })
	if folded != enumerated {
		t.Fatalf("folded count %d != enumerated %d", folded, enumerated)
	}
	if rt.ICost != rtEnum.ICost {
		t.Fatalf("folded i-cost %d != enumerated %d", rt.ICost, rtEnum.ICost)
	}
}
