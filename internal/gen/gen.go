// Package gen builds the synthetic datasets of the evaluation. The paper
// uses four public graphs (Orkut, LiveJournal, Wiki-topcats, BerkStan);
// this reproduction runs offline, so deterministic Chung–Lu-style power-law
// generators with the same average degrees stand in for them at reduced
// scale (see DESIGN.md, "Substitutions"). Property decoration follows
// Section V-C2: random account types from {CQ, SV}, cities, amounts in
// [1, 1000], dates within a five-year range; MagicRecs graphs additionally
// get a time property (Section V-C1).
package gen

import (
	"fmt"
	"math"
	"sort"

	"github.com/aplusdb/aplus/internal/storage"
)

// Config describes a synthetic dataset. The paper's notation G_{i,j} maps
// to VertexLabels=i, EdgeLabels=j.
type Config struct {
	Name         string
	NumVertices  int
	AvgDegree    float64
	Alpha        float64 // power-law exponent of the weight sequence (default 2.0)
	VertexLabels int     // number of random vertex labels (default 1)
	EdgeLabels   int     // number of random edge labels (default 1)
	Seed         int64
	Financial    bool // acc/city/amt/currency/date properties
	Time         bool // time property on edges (MagicRecs)
	Cities       int  // distinct cities (default 40)
	// HubDegree, when positive, gives vertex 0 that many extra out-edges on
	// top of the Chung–Lu sequence — a deliberate super-hub for skew
	// ablations (work stealing on oversized adjacency lists).
	HubDegree int
}

// Scaled dataset presets mirroring Table I at ~1/1000 vertex scale with the
// paper's average degrees.
var (
	Orkut       = Config{Name: "Ork", NumVertices: 3000, AvgDegree: 39.03}
	LiveJournal = Config{Name: "LJ", NumVertices: 4800, AvgDegree: 14.27}
	WikiTopcats = Config{Name: "WT", NumVertices: 1800, AvgDegree: 15.83}
	BerkStan    = Config{Name: "Brk", NumVertices: 685, AvgDegree: 11.09}
)

// WithLabels returns a copy with the G_{i,j} label counts set.
func (c Config) WithLabels(i, j int) Config {
	c.VertexLabels, c.EdgeLabels = i, j
	if i > 1 || j > 1 {
		c.Name = fmt.Sprintf("%s%d,%d", c.Name, i, j)
	}
	return c
}

// Build generates the graph.
func Build(cfg Config) *storage.Graph {
	if cfg.Alpha == 0 {
		// 2.5 keeps a heavy-tailed degree profile without concentrating
		// most edges on a handful of hubs, which at reduced scale would
		// distort list-size ratios relative to the full-size graphs.
		cfg.Alpha = 2.5
	}
	if cfg.VertexLabels <= 0 {
		cfg.VertexLabels = 1
	}
	if cfg.EdgeLabels <= 0 {
		cfg.EdgeLabels = 1
	}
	if cfg.Cities <= 0 {
		cfg.Cities = 40
	}
	rng := NewRand(cfg.Seed + 1)
	g := storage.NewGraph()
	nv := cfg.NumVertices
	for i := 0; i < nv; i++ {
		g.AddVertex(fmt.Sprintf("V%d", rng.Intn(cfg.VertexLabels)))
	}

	// Chung–Lu style weights: w_i proportional to (rank+1)^(-1/(alpha-1)),
	// which yields a power-law degree sequence with exponent alpha. Ranks
	// are shuffled across vertex IDs so that, as in the SNAP datasets the
	// paper uses, ID ranges are degree-unbiased samples (several workload
	// queries anchor on ID ranges).
	perm := make([]int, nv)
	for i := range perm {
		perm[i] = i
	}
	for i := nv - 1; i > 0; i-- {
		j := rng.Intn(i + 1)
		perm[i], perm[j] = perm[j], perm[i]
	}
	weights := make([]float64, nv)
	var sum float64
	exp := 1.0 / (cfg.Alpha - 1.0)
	for i := range weights {
		weights[perm[i]] = math.Pow(float64(i+1), -exp)
	}
	for _, w := range weights {
		sum += w
	}
	cum := make([]float64, nv)
	acc := 0.0
	for i, w := range weights {
		acc += w / sum
		cum[i] = acc
	}
	pick := func() storage.VertexID {
		x := rng.Float64()
		i := sort.SearchFloat64s(cum, x)
		if i >= nv {
			i = nv - 1
		}
		return storage.VertexID(i)
	}

	addEdge := func(src, dst storage.VertexID) {
		e, err := g.AddEdge(src, dst, fmt.Sprintf("E%d", rng.Intn(cfg.EdgeLabels)))
		if err != nil {
			panic(err)
		}
		if cfg.Financial {
			mustSet(g.SetEdgeProp(e, storage.PropAmount, storage.Int(1+int64(rng.Intn(1000)))))
			mustSet(g.SetEdgeProp(e, storage.PropDate, storage.Int(1+int64(rng.Intn(5*365)))))
			mustSet(g.SetEdgeProp(e, storage.PropCurrency, storage.Str(currencies[rng.Intn(len(currencies))])))
		}
		if cfg.Time {
			mustSet(g.SetEdgeProp(e, "time", storage.Int(int64(rng.Intn(1_000_000)))))
		}
	}
	ne := int(float64(nv) * cfg.AvgDegree)
	for i := 0; i < ne; i++ {
		addEdge(pick(), pick())
	}
	// Super-hub edges share the background graph's label and property
	// distributions; only the source concentration differs.
	for i := 0; i < cfg.HubDegree; i++ {
		addEdge(0, pick())
	}
	if cfg.Financial {
		for i := 0; i < nv; i++ {
			v := storage.VertexID(i)
			mustSet(g.SetVertexProp(v, storage.PropAcc, storage.Str(accountTypes[rng.Intn(len(accountTypes))])))
			mustSet(g.SetVertexProp(v, storage.PropCity, storage.Str(fmt.Sprintf("C%d", rng.Intn(cfg.Cities)))))
		}
	}
	return g
}

var (
	currencies   = []string{"USD", "EUR", "GBP"}
	accountTypes = []string{"CQ", "SV"}
)

func mustSet(err error) {
	if err != nil {
		panic(err)
	}
}

// PercentileInt returns the value at the given percentile (0..100) of a
// non-null integer edge property — used to pick predicate constants with a
// target selectivity, like the paper's 5%-selective α.
func PercentileInt(g *storage.Graph, prop string, pct float64) (int64, bool) {
	col, ok := g.EdgeColumn(prop)
	if !ok {
		return 0, false
	}
	var vals []int64
	for i := 0; i < g.NumEdges(); i++ {
		if v, ok := col.IntAt(i); ok {
			vals = append(vals, v)
		}
	}
	if len(vals) == 0 {
		return 0, false
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	idx := int(pct / 100 * float64(len(vals)))
	if idx >= len(vals) {
		idx = len(vals) - 1
	}
	return vals[idx], true
}

// Rand is a small deterministic PRNG (splitmix64) so datasets are
// reproducible across platforms without math/rand version drift.
type Rand struct{ x uint64 }

// NewRand seeds a generator.
func NewRand(seed int64) *Rand { return &Rand{uint64(seed)*0x9E3779B97F4A7C15 + 0xBF58476D1CE4E5B9} }

// Next returns the next raw 64-bit value.
func (r *Rand) Next() uint64 {
	r.x += 0x9E3779B97F4A7C15
	z := r.x
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Intn returns a value in [0, n).
func (r *Rand) Intn(n int) int { return int(r.Next() % uint64(n)) }

// Float64 returns a value in [0, 1).
func (r *Rand) Float64() float64 { return float64(r.Next()>>11) / float64(1<<53) }
