package gen

import (
	"testing"

	"github.com/aplusdb/aplus/internal/storage"
)

func TestBuildDeterministic(t *testing.T) {
	cfg := Config{Name: "t", NumVertices: 200, AvgDegree: 5, Seed: 9, Financial: true, Time: true}
	g1 := Build(cfg)
	g2 := Build(cfg)
	if g1.NumEdges() != g2.NumEdges() {
		t.Fatal("non-deterministic edge count")
	}
	for i := 0; i < g1.NumEdges(); i++ {
		e := storage.EdgeID(i)
		if g1.Src(e) != g2.Src(e) || g1.Dst(e) != g2.Dst(e) {
			t.Fatalf("edge %d differs between builds", i)
		}
		if !g1.EdgeProp(e, storage.PropAmount).Equal(g2.EdgeProp(e, storage.PropAmount)) {
			t.Fatalf("edge %d amount differs", i)
		}
	}
}

func TestBuildMatchesTargets(t *testing.T) {
	cfg := Config{Name: "t", NumVertices: 1000, AvgDegree: 12, Seed: 1}
	g := Build(cfg)
	if g.NumVertices() != 1000 {
		t.Fatalf("vertices = %d", g.NumVertices())
	}
	if got := g.AvgDegree(); got < 11.5 || got > 12.5 {
		t.Errorf("avg degree = %.2f, want ~12", got)
	}
}

func TestBuildPowerLawish(t *testing.T) {
	g := Build(Config{Name: "t", NumVertices: 2000, AvgDegree: 10, Seed: 2})
	// The maximum degree should be well above the average (heavy tail)
	// but not absorb most of the graph.
	deg := make([]int, g.NumVertices())
	for i := 0; i < g.NumEdges(); i++ {
		deg[g.Src(storage.EdgeID(i))]++
	}
	maxDeg := 0
	for _, d := range deg {
		if d > maxDeg {
			maxDeg = d
		}
	}
	if maxDeg < 40 {
		t.Errorf("max degree %d too uniform for a power law", maxDeg)
	}
	if maxDeg > g.NumEdges()/2 {
		t.Errorf("max degree %d absorbs most edges", maxDeg)
	}
}

func TestBuildLabels(t *testing.T) {
	g := Build(Config{Name: "t", NumVertices: 500, AvgDegree: 4, VertexLabels: 3, EdgeLabels: 2, Seed: 5})
	seenV := map[storage.LabelID]bool{}
	for i := 0; i < g.NumVertices(); i++ {
		seenV[g.VertexLabel(storage.VertexID(i))] = true
	}
	if len(seenV) != 3 {
		t.Errorf("vertex labels used = %d, want 3", len(seenV))
	}
	seenE := map[storage.LabelID]bool{}
	for i := 0; i < g.NumEdges(); i++ {
		seenE[g.EdgeLabel(storage.EdgeID(i))] = true
	}
	if len(seenE) != 2 {
		t.Errorf("edge labels used = %d, want 2", len(seenE))
	}
}

func TestFinancialDecoration(t *testing.T) {
	g := Build(Config{Name: "t", NumVertices: 100, AvgDegree: 5, Seed: 3, Financial: true})
	for i := 0; i < g.NumEdges(); i++ {
		e := storage.EdgeID(i)
		amt := g.EdgeProp(e, storage.PropAmount)
		if amt.IsNull() || amt.I < 1 || amt.I > 1000 {
			t.Fatalf("edge %d amount out of range: %v", i, amt)
		}
		date := g.EdgeProp(e, storage.PropDate)
		if date.IsNull() || date.I < 1 || date.I > 5*365 {
			t.Fatalf("edge %d date out of range: %v", i, date)
		}
	}
	for i := 0; i < g.NumVertices(); i++ {
		v := storage.VertexID(i)
		acc := g.VertexProp(v, storage.PropAcc)
		if acc.S != "CQ" && acc.S != "SV" {
			t.Fatalf("vertex %d acc = %v", i, acc)
		}
		if g.VertexProp(v, storage.PropCity).IsNull() {
			t.Fatalf("vertex %d missing city", i)
		}
	}
}

func TestPercentileInt(t *testing.T) {
	g := Build(Config{Name: "t", NumVertices: 500, AvgDegree: 10, Seed: 4, Time: true})
	p5, ok := PercentileInt(g, "time", 5)
	if !ok {
		t.Fatal("no time column")
	}
	p95, _ := PercentileInt(g, "time", 95)
	if p5 >= p95 {
		t.Errorf("p5 %d >= p95 %d", p5, p95)
	}
	// Roughly 5% of edges should be below p5.
	count := 0
	for i := 0; i < g.NumEdges(); i++ {
		if v := g.EdgeProp(storage.EdgeID(i), "time"); !v.IsNull() && v.I < p5 {
			count++
		}
	}
	frac := float64(count) / float64(g.NumEdges())
	if frac < 0.02 || frac > 0.08 {
		t.Errorf("p5 selectivity = %.3f, want ~0.05", frac)
	}
	if _, ok := PercentileInt(g, "nope", 5); ok {
		t.Error("missing column should not resolve")
	}
}

func TestPresetsScale(t *testing.T) {
	for _, c := range []Config{Orkut, LiveJournal, WikiTopcats, BerkStan} {
		if c.NumVertices <= 0 || c.AvgDegree <= 0 {
			t.Errorf("preset %s incomplete", c.Name)
		}
	}
	lj := LiveJournal.WithLabels(2, 4)
	if lj.Name != "LJ2,4" {
		t.Errorf("labelled name = %q", lj.Name)
	}
}
