// Package client is the Go client for the aplusd wire protocol: it dials a
// server, issues requests over one connection, streams query rows to a
// callback, and translates wire error codes back into the embedded API's
// errors.Is-matchable sentinels — so code written against aplus.DB ports
// to a remote cluster by swapping the receiver.
//
// A Client serializes its requests (one in flight at a time; methods are
// safe for concurrent use). Context cancellation works mid-query: a
// watcher goroutine sends the protocol's `cancel` verb while the caller's
// goroutine keeps draining rows until the server's final error response.
package client

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"time"

	"github.com/aplusdb/aplus"
	"github.com/aplusdb/aplus/internal/proto"
)

// Client is a connection to an aplusd server.
type Client struct {
	mu sync.Mutex // serializes whole request/response exchanges
	wm sync.Mutex // serializes raw writes (request vs. async cancel)

	conn net.Conn
	br   *bufio.Reader
	bw   *bufio.Writer

	shards int
}

// Dial connects and performs the `open` handshake.
func Dial(addr string) (*Client, error) {
	return DialTimeout(addr, 10*time.Second)
}

// DialTimeout is Dial with a connect timeout.
func DialTimeout(addr string, timeout time.Duration) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, err
	}
	c := &Client{
		conn: conn,
		br:   bufio.NewReader(conn),
		bw:   bufio.NewWriter(conn),
	}
	var open proto.OpenResp
	if err := c.call(context.Background(), "open", nil, &open); err != nil {
		conn.Close()
		return nil, fmt.Errorf("aplusd handshake: %w", err)
	}
	c.shards = open.Shards
	return c, nil
}

// NumShards reports the server's shard count (from the handshake).
func (c *Client) NumShards() int { return c.shards }

// Close sends `quit` (best effort) and closes the connection.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.send("quit", nil)
	return c.conn.Close()
}

func (c *Client) send(verb string, req any) error {
	c.wm.Lock()
	defer c.wm.Unlock()
	c.bw.WriteString(verb)
	if req != nil {
		b, err := json.Marshal(req)
		if err != nil {
			return err
		}
		c.bw.WriteByte(' ')
		c.bw.Write(b)
	}
	c.bw.WriteByte('\n')
	return c.bw.Flush()
}

func (c *Client) sendCancel() {
	c.wm.Lock()
	c.bw.WriteString("cancel\n")
	c.bw.Flush()
	c.wm.Unlock()
}

// readLine reads one response line and splits the tag from the payload.
func (c *Client) readLine() (tag, payload string, err error) {
	line, err := c.br.ReadString('\n')
	if err != nil {
		return "", "", err
	}
	line = strings.TrimRight(line, "\r\n")
	if i := strings.IndexByte(line, ' '); i >= 0 {
		return line[:i], line[i+1:], nil
	}
	return line, "", nil
}

func decodeErr(payload string) error {
	var em proto.ErrMsg
	if err := json.Unmarshal([]byte(payload), &em); err != nil {
		return fmt.Errorf("aplusd: undecodable error response: %s", payload)
	}
	return proto.SentinelError(em.Code, em.Msg)
}

// call runs one request/response exchange with no row stream. A ctx
// watcher issues a protocol cancel so a server-side fan-out aborts and
// answers promptly; the response is always read, keeping the stream in
// sync.
func (c *Client) call(ctx context.Context, verb string, req, resp any) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.send(verb, req); err != nil {
		return err
	}
	stop := c.watchCancel(ctx)
	defer stop()
	for {
		tag, payload, err := c.readLine()
		if err != nil {
			return fmt.Errorf("aplusd: connection lost: %w", err)
		}
		switch tag {
		case "ok":
			if resp == nil {
				return nil
			}
			return json.Unmarshal([]byte(payload), resp)
		case "err":
			return decodeErr(payload)
		case "row":
			// A non-query verb never streams rows; skip defensively.
			continue
		default:
			return fmt.Errorf("aplusd: unexpected response tag %q", tag)
		}
	}
}

// watchCancel sends `cancel` when ctx fires; the returned stop func must
// run before the next request goes out.
func (c *Client) watchCancel(ctx context.Context) (stop func()) {
	if ctx == nil || ctx.Done() == nil {
		return func() {}
	}
	quit := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		select {
		case <-ctx.Done():
			c.sendCancel()
		case <-quit:
		}
	}()
	return func() {
		close(quit)
		<-done
	}
}

// Count returns the number of matches (remote CountCtx).
func (c *Client) Count(ctx context.Context, q string) (int64, error) {
	return c.CountLimited(ctx, q, aplus.QueryLimits{})
}

// CountLimited is Count with per-request governance limits.
func (c *Client) CountLimited(ctx context.Context, q string, limits aplus.QueryLimits) (int64, error) {
	var resp proto.CountResp
	err := c.call(ctx, "count", proto.CountReq{Q: q, Limits: proto.FromQueryLimits(limits)}, &resp)
	return resp.N, err
}

// CountProfiled returns the count plus the merged execution metrics.
func (c *Client) CountProfiled(ctx context.Context, q string) (int64, aplus.Metrics, error) {
	return c.CountProfiledLimited(ctx, q, aplus.QueryLimits{})
}

// CountProfiledLimited is CountProfiled with per-request governance limits.
func (c *Client) CountProfiledLimited(ctx context.Context, q string, limits aplus.QueryLimits) (int64, aplus.Metrics, error) {
	var resp proto.CountResp
	err := c.call(ctx, "profile", proto.CountReq{Q: q, Limits: proto.FromQueryLimits(limits)}, &resp)
	return resp.N, aplus.Metrics{ICost: resp.ICost, PredEvals: resp.PredEvals, EstimatedICost: resp.EstICost}, err
}

// Aggregate evaluates a count/sum/min/max aggregate across the cluster
// (remote DB.AggregateCtx); the merge is exact, so the result is
// bit-identical to an embedded run over the same data. The merged metrics
// ride along, as with CountProfiled.
func (c *Client) Aggregate(ctx context.Context, q string, fn aplus.AggFunc, variable, prop string, limits aplus.QueryLimits) (aplus.AggValue, aplus.Metrics, error) {
	var resp proto.AggregateResp
	err := c.call(ctx, "aggregate", proto.AggregateReq{
		Q:      q,
		Func:   string(fn),
		Var:    variable,
		Prop:   prop,
		Limits: proto.FromQueryLimits(limits),
	}, &resp)
	v := aplus.AggValue{Rows: resp.Rows, Value: resp.Value, Valid: resp.Valid}
	m := aplus.Metrics{ICost: resp.ICost, PredEvals: resp.PredEvals, EstimatedICost: resp.EstICost}
	return v, m, err
}

// QueryResult reports how a Query stream ended.
type QueryResult struct {
	Rows      int64
	Truncated bool // the server's row cap stopped the stream
}

// Query streams matching rows to fn; fn returning false cancels the rest
// of the stream (not an error). maxRows caps the stream server-side
// (0 = the server's default cap).
func (c *Client) Query(ctx context.Context, q string, maxRows int64, fn func(proto.Row) bool) (QueryResult, error) {
	return c.QueryLimited(ctx, q, aplus.QueryLimits{}, maxRows, fn)
}

// QueryLimited is Query with per-request governance limits.
func (c *Client) QueryLimited(ctx context.Context, q string, limits aplus.QueryLimits, maxRows int64, fn func(proto.Row) bool) (QueryResult, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	req := proto.QueryReq{Q: q, Limits: proto.FromQueryLimits(limits), MaxRows: maxRows}
	if err := c.send("query", req); err != nil {
		return QueryResult{}, err
	}
	stop := c.watchCancel(ctx)
	defer stop()
	var (
		res     QueryResult
		stopped bool // fn said stop; we canceled and are draining
	)
	for {
		tag, payload, err := c.readLine()
		if err != nil {
			return res, fmt.Errorf("aplusd: connection lost: %w", err)
		}
		switch tag {
		case "row":
			if stopped {
				continue
			}
			var row proto.Row
			if err := json.Unmarshal([]byte(payload), &row); err != nil {
				return res, fmt.Errorf("aplusd: undecodable row: %w", err)
			}
			res.Rows++
			if !fn(row) {
				stopped = true
				c.sendCancel()
			}
		case "ok":
			var d proto.QueryDone
			if err := json.Unmarshal([]byte(payload), &d); err != nil {
				return res, err
			}
			res.Truncated = d.Truncated
			return res, nil
		case "err":
			err := decodeErr(payload)
			if stopped && isCanceled(err) {
				// Our own early stop; not an error for the caller.
				return res, nil
			}
			return res, err
		default:
			return res, fmt.Errorf("aplusd: unexpected response tag %q", tag)
		}
	}
}

func isCanceled(err error) bool { return errors.Is(err, aplus.ErrQueryCanceled) }

// Explain renders the plan the cluster would run.
func (c *Client) Explain(q string) (string, error) {
	var resp proto.ExplainResp
	err := c.call(context.Background(), "explain", proto.ExplainReq{Q: q}, &resp)
	return resp.Plan, err
}

// Analyze runs the query for real with per-operator tracing on every shard
// and returns the cluster-merged EXPLAIN ANALYZE trace.
func (c *Client) Analyze(ctx context.Context, q string, limits aplus.QueryLimits) (aplus.QueryTrace, error) {
	var resp proto.AnalyzeResp
	err := c.call(ctx, "analyze", proto.AnalyzeReq{Q: q, Limits: proto.FromQueryLimits(limits)}, &resp)
	return resp.Trace, err
}

// Exec broadcasts an index DDL to every shard.
func (c *Client) Exec(ddl string) error {
	return c.call(context.Background(), "exec", proto.ExecReq{DDL: ddl}, nil)
}

// Flush folds pending deltas on every shard.
func (c *Client) Flush() error {
	return c.call(context.Background(), "flush", nil, nil)
}

// AddVertex appends a vertex through the cluster's replicated write path.
func (c *Client) AddVertex(label string, props aplus.Props) (aplus.VertexID, error) {
	ps, err := proto.FromProps(props)
	if err != nil {
		return 0, err
	}
	var resp proto.AddVertexResp
	err = c.call(context.Background(), "addv", proto.AddVertexReq{Label: label, Props: ps}, &resp)
	return resp.ID, err
}

// AddEdge appends an edge through the cluster's replicated write path.
func (c *Client) AddEdge(src, dst aplus.VertexID, label string, props aplus.Props) (aplus.EdgeID, error) {
	ps, err := proto.FromProps(props)
	if err != nil {
		return 0, err
	}
	var resp proto.AddEdgeResp
	err = c.call(context.Background(), "adde", proto.AddEdgeReq{Src: src, Dst: dst, Label: label, Props: ps}, &resp)
	return resp.ID, err
}

// DeleteEdge tombstones an edge on every shard.
func (c *Client) DeleteEdge(e aplus.EdgeID) error {
	return c.call(context.Background(), "dele", proto.DeleteEdgeReq{ID: e}, nil)
}

// Stats fetches the aggregate and per-shard statistics.
func (c *Client) Stats() (proto.StatsResp, error) {
	var resp proto.StatsResp
	err := c.call(context.Background(), "stats", nil, &resp)
	return resp, err
}

// Health fetches the load-balancer health signals.
func (c *Client) Health() (proto.HealthResp, error) {
	var resp proto.HealthResp
	err := c.call(context.Background(), "health", nil, &resp)
	return resp, err
}
