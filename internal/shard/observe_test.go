package shard

import (
	"context"
	"testing"

	"github.com/aplusdb/aplus"
)

// TestShardTraceParity extends the parity contract to tracing: the
// cluster-merged EXPLAIN ANALYZE trace of a K-shard fan-out has the same
// count and bit-identical span sums as an unsharded profiled run over the
// same graph, for any K.
func TestShardTraceParity(t *testing.T) {
	const nv, ne = 300, 1500
	ref := aplus.New()
	seedGraph(t, ref, nv, ne, true)

	type want struct {
		n int64
		m aplus.Metrics
	}
	queries := []string{triangleQ, pathQ}
	refRuns := make(map[string]want)
	for _, q := range queries {
		n, m, err := ref.CountProfiledCtx(context.Background(), q)
		if err != nil {
			t.Fatal(err)
		}
		refRuns[q] = want{n, m}
	}

	for _, k := range []int{1, 2, 4} {
		c, err := New(Options{Shards: k, Parallelism: 2})
		if err != nil {
			t.Fatal(err)
		}
		seedGraph(t, c, nv, ne, true)
		for _, q := range queries {
			w := refRuns[q]
			tr, err := c.ExplainAnalyze(context.Background(), q, aplus.QueryLimits{})
			if err != nil {
				t.Fatalf("K=%d %q: %v", k, q, err)
			}
			if tr.Count != w.n {
				t.Errorf("K=%d %q: trace count %d, want %d", k, q, tr.Count, w.n)
			}
			if tr.Metrics.ICost != w.m.ICost || tr.Metrics.PredEvals != w.m.PredEvals {
				t.Errorf("K=%d %q: trace metrics (%d,%d), want (%d,%d)",
					k, q, tr.Metrics.ICost, tr.Metrics.PredEvals, w.m.ICost, w.m.PredEvals)
			}
			var sumICost, sumPreds int64
			for _, sp := range tr.Spans {
				sumICost += sp.ICost
				sumPreds += sp.PredEvals
			}
			if sumICost != w.m.ICost || sumPreds != w.m.PredEvals {
				t.Errorf("K=%d %q: span sums (%d,%d), want (%d,%d)",
					k, q, sumICost, sumPreds, w.m.ICost, w.m.PredEvals)
			}
			var wICost int64
			for _, ws := range tr.Workers {
				if ws.Shard < 0 || ws.Shard >= k {
					t.Errorf("K=%d %q: worker tagged shard %d", k, q, ws.Shard)
				}
				wICost += ws.ICost
			}
			if wICost != w.m.ICost {
				t.Errorf("K=%d %q: worker i-cost sum %d, want %d", k, q, wICost, w.m.ICost)
			}
		}
		if err := c.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestClusterStatsHistogramMerge asserts the aggregate latency histogram is
// the merge of the per-shard ones: the sample count sums and the max is the
// max across shards.
func TestClusterStatsHistogramMerge(t *testing.T) {
	c, err := New(Options{Shards: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	seedGraph(t, c, 100, 400, false)
	for i := 0; i < 4; i++ {
		if _, _, err := c.CountProfiledCtx(context.Background(), pathQ); err != nil {
			t.Fatal(err)
		}
	}
	st := c.Stats()
	var perShard int64
	var maxShard int64
	for _, s := range st.Shards {
		perShard += s.QueryLatency.Count
		if m := int64(s.QueryLatency.Max); m > maxShard {
			maxShard = m
		}
	}
	if perShard == 0 {
		t.Fatal("no per-shard latency samples recorded")
	}
	if got := st.Aggregate.QueryLatency.Count; got != perShard {
		t.Errorf("aggregate latency count %d, want %d (sum of shards)", got, perShard)
	}
	if got := int64(st.Aggregate.QueryLatency.Max); got != maxShard {
		t.Errorf("aggregate latency max %d, want %d", got, maxShard)
	}
}
