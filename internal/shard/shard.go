// Package shard implements the serving layer's cluster: N aplus.DB
// replicas hash-partitioned on vertex ID, with writes routed through the
// owning shard's WAL first and queries fanned out across all shards under
// one governed context.
//
// # Replication model
//
// Every shard holds a full replica of the data, applied in an identical
// order, so all shards assign identical dense vertex/edge IDs, build
// identical frozen index stores, and compile identical plans. What is
// partitioned is query-time *root ownership*: shard i's DB carries
// aplus.ShardSpec{i, N}, restricting every plan's root scan to the
// vertices (edge sources) hashing to i. A fan-out across all N shards
// therefore covers each root entry exactly once, and per-shard counts,
// i-cost, and PredEvals sum bit-identically to a single unsharded DB —
// the same partition-of-the-root invariant that makes morsel parallelism
// deterministic, lifted one level up. Full replication also means a
// multi-hop pipeline never needs remote adjacency: each shard's portion
// of the query runs entirely locally.
//
// # Write routing and divergence
//
// Writes commit on the owning shard first — the owner's WAL append is the
// cluster's commit point — and then mirror to the remaining replicas in
// shard order. A failure on the owner aborts cleanly (nothing was
// mirrored); a failure or ID mismatch while mirroring leaves replicas
// diverged, so the cluster poisons itself for writes (ErrClusterDiverged,
// carrying the cause) while reads keep serving — the same asymmetric
// fail-stop posture as the WAL's degraded mode.
//
// # Governance propagation
//
// Fan-out reads share one cancelable context derived from the caller's:
// deadlines, budgets (per shard), and cancellation reach every shard, the
// first shard error cancels its siblings (first-error-wins), and a trip
// surfaces as the same errors.Is-matchable sentinels the embedded API
// uses. Per-shard admission gates (MaxConcurrentQueries) and all
// governance counters keep working per shard and are aggregated by Stats.
package shard

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"sync"
	"time"

	"github.com/aplusdb/aplus"
	"github.com/aplusdb/aplus/internal/exec"
)

// ErrClusterDiverged is returned by every write entry point after a mirror
// failure left the replicas inconsistent. Reads keep serving. Like WAL
// degradation, only reopening the cluster (recovering every shard from its
// durable state) clears it.
var ErrClusterDiverged = errors.New("shard: cluster replicas diverged; writes disabled")

// metaFile records the shard count of a durable cluster directory.
const metaFile = "cluster.json"

type meta struct {
	Shards int `json:"shards"`
}

// Options configure a cluster. Every per-DB knob is applied uniformly to
// all shards.
type Options struct {
	// Shards is the number of replicas/partitions (0 or 1 = single shard).
	Shards int
	// Dir, when non-empty, makes every shard durable under Dir/shard-NNN
	// with a cluster.json recording the shard count (validated on reopen —
	// resharding an existing directory is refused).
	Dir string
	// NoFsync and MergeThreshold are passed to each shard's OpenOptions
	// (durable clusters only; MergeThreshold also applies in-memory).
	NoFsync        bool
	MergeThreshold int

	// Per-shard query knobs, mirroring the aplus.DB fields.
	Parallelism          int
	MorselSize           int
	PlanCacheSize        int
	Limits               aplus.QueryLimits
	QueryTimeout         time.Duration
	MaxConcurrentQueries int
	AdmissionPolicy      aplus.AdmissionPolicy
	SlowQueryThreshold   time.Duration

	// SlowQueryLog, when set alongside a positive SlowQueryThreshold,
	// receives every shard's slow-query records (each record carries the
	// shard's work, so one logger may serve the whole cluster).
	SlowQueryLog *slog.Logger
}

func (o Options) shards() int {
	if o.Shards < 1 {
		return 1
	}
	return o.Shards
}

// Cluster owns N replica shards. All methods are safe for concurrent use;
// writes serialize on an internal mutex (they must mirror in a fixed
// order), reads fan out lock-free.
type Cluster struct {
	dbs []*aplus.DB

	// wmu serializes writes across shards so every replica applies the
	// same ops in the same order (the replication invariant).
	wmu sync.Mutex
	// nextV predicts the next vertex ID (dense allocation) for ownership
	// routing of AddVertex; guarded by wmu.
	nextV aplus.VertexID

	// divergedCause is non-nil once a mirror failure poisoned writes.
	mu            sync.Mutex
	divergedCause error
}

// New creates (or, when Options.Dir exists, reopens) a cluster.
func New(o Options) (*Cluster, error) {
	n := o.shards()
	c := &Cluster{dbs: make([]*aplus.DB, 0, n)}
	if o.Dir != "" {
		if err := prepareDir(o.Dir, n); err != nil {
			return nil, err
		}
	}
	for i := 0; i < n; i++ {
		var db *aplus.DB
		var err error
		if o.Dir != "" {
			db, err = aplus.OpenOptions{
				MergeThreshold:       o.MergeThreshold,
				NoFsync:              o.NoFsync,
				QueryTimeout:         o.QueryTimeout,
				MaxConcurrentQueries: o.MaxConcurrentQueries,
				AdmissionPolicy:      o.AdmissionPolicy,
				SlowQueryThreshold:   o.SlowQueryThreshold,
			}.Open(filepath.Join(o.Dir, shardDirName(i)))
		} else {
			db = aplus.New()
			db.MergeThreshold = o.MergeThreshold
			db.QueryTimeout = o.QueryTimeout
			db.MaxConcurrentQueries = o.MaxConcurrentQueries
			db.AdmissionPolicy = o.AdmissionPolicy
			db.SlowQueryThreshold = o.SlowQueryThreshold
		}
		if err != nil {
			c.closeAll()
			return nil, fmt.Errorf("shard %d: %w", i, err)
		}
		db.Shard = aplus.ShardSpec{Index: i, Of: n}
		db.Parallelism = o.Parallelism
		db.MorselSize = o.MorselSize
		db.PlanCacheSize = o.PlanCacheSize
		db.Limits = o.Limits
		db.SlowQueryLog = o.SlowQueryLog
		c.dbs = append(c.dbs, db)
	}
	// Replicas must agree on recovered state. Epochs are nondeterministic
	// (background folds), so compare the logical graph shape instead.
	st0 := c.dbs[0].Stats()
	for i := 1; i < n; i++ {
		st := c.dbs[i].Stats()
		if st.NumVertices != st0.NumVertices || st.NumEdges != st0.NumEdges {
			c.closeAll()
			return nil, fmt.Errorf(
				"shard: replicas diverged on open: shard 0 has %dv/%de, shard %d has %dv/%de",
				st0.NumVertices, st0.NumEdges, i, st.NumVertices, st.NumEdges)
		}
	}
	c.nextV = aplus.VertexID(st0.NumVertices)
	return c, nil
}

func shardDirName(i int) string { return fmt.Sprintf("shard-%03d", i) }

// prepareDir creates or validates a durable cluster directory.
func prepareDir(dir string, n int) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	path := filepath.Join(dir, metaFile)
	data, err := os.ReadFile(path)
	if err == nil {
		var m meta
		if err := json.Unmarshal(data, &m); err != nil {
			return fmt.Errorf("shard: corrupt %s: %w", metaFile, err)
		}
		if m.Shards != n {
			return fmt.Errorf("shard: directory %s holds %d shards, asked to open %d (resharding is not supported)", dir, m.Shards, n)
		}
		return nil
	}
	if !errors.Is(err, os.ErrNotExist) {
		return err
	}
	data, _ = json.Marshal(meta{Shards: n})
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// NumShards returns the shard count.
func (c *Cluster) NumShards() int { return len(c.dbs) }

// DB exposes shard i's embedded database (tests and diagnostics).
func (c *Cluster) DB(i int) *aplus.DB { return c.dbs[i] }

// Close closes every shard, returning the first error.
func (c *Cluster) Close() error { return c.closeAll() }

func (c *Cluster) closeAll() error {
	var first error
	for _, db := range c.dbs {
		if db == nil {
			continue
		}
		if err := db.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// poison marks the cluster diverged for writes.
func (c *Cluster) poison(cause error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.divergedCause == nil {
		c.divergedCause = cause
	}
}

// Diverged reports whether writes are poisoned, and why.
func (c *Cluster) Diverged() (bool, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.divergedCause != nil, c.divergedCause
}

func (c *Cluster) writeHealthy() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.divergedCause != nil {
		return fmt.Errorf("%w: %v", ErrClusterDiverged, c.divergedCause)
	}
	return nil
}

// commitOrder yields shard indices with the owner first: the owner's WAL
// append is the commit point, the rest are mirrors.
func (c *Cluster) commitOrder(owner int) []int {
	ord := make([]int, 0, len(c.dbs))
	ord = append(ord, owner)
	for i := range c.dbs {
		if i != owner {
			ord = append(ord, i)
		}
	}
	return ord
}

// replicate applies one write to every shard, owner first. A failure on
// the owner aborts with nothing mirrored; a failure (or an ID diverging
// from the owner's) on a mirror poisons the cluster.
func replicate[T comparable](c *Cluster, owner int, op func(*aplus.DB) (T, error)) (T, error) {
	var zero T
	c.wmu.Lock()
	defer c.wmu.Unlock()
	if err := c.writeHealthy(); err != nil {
		return zero, err
	}
	var want T
	for k, si := range c.commitOrder(owner) {
		got, err := op(c.dbs[si])
		if k == 0 {
			if err != nil {
				return zero, err // owner failed: clean abort, nothing mirrored
			}
			want = got
			continue
		}
		if err != nil {
			err = fmt.Errorf("mirror to shard %d failed after owner %d committed: %w", si, owner, err)
			c.poison(err)
			return zero, fmt.Errorf("%w: %v", ErrClusterDiverged, err)
		}
		if got != want {
			err = fmt.Errorf("mirror to shard %d assigned %v, owner %d assigned %v", si, got, owner, want)
			c.poison(err)
			return zero, fmt.Errorf("%w: %v", ErrClusterDiverged, err)
		}
	}
	return want, nil
}

// AddVertex adds a vertex to every replica, committing on the owner of the
// (predicted, densely allocated) new vertex ID first.
func (c *Cluster) AddVertex(label string, props aplus.Props) (aplus.VertexID, error) {
	c.wmu.Lock()
	owner := exec.Owner(c.nextV, len(c.dbs))
	c.wmu.Unlock()
	id, err := replicate(c, owner, func(db *aplus.DB) (aplus.VertexID, error) {
		return db.AddVertex(label, props)
	})
	if err == nil {
		c.wmu.Lock()
		if id >= c.nextV {
			c.nextV = id + 1
		}
		c.wmu.Unlock()
	}
	return id, err
}

// AddEdge adds an edge to every replica, committing on the source vertex's
// owner first (edge-rooted scans partition on the source too).
func (c *Cluster) AddEdge(src, dst aplus.VertexID, label string, props aplus.Props) (aplus.EdgeID, error) {
	return replicate(c, exec.Owner(src, len(c.dbs)), func(db *aplus.DB) (aplus.EdgeID, error) {
		return db.AddEdge(src, dst, label, props)
	})
}

// DeleteEdge tombstones an edge on every replica. Routing hashes the edge
// ID (the source vertex is not cheaply known here; any deterministic owner
// works — the commit point just has to be a single fixed shard).
func (c *Cluster) DeleteEdge(e aplus.EdgeID) error {
	_, err := replicate(c, exec.Owner(aplus.VertexID(e), len(c.dbs)), func(db *aplus.DB) (struct{}, error) {
		return struct{}{}, db.DeleteEdge(e)
	})
	return err
}

// batchOp is one recorded Batch operation, replayed verbatim on mirrors.
type batchOp struct {
	kind     byte // 'v', 'e', 'd'
	label    string
	props    aplus.Props
	src, dst aplus.VertexID
	edge     aplus.EdgeID
	wantV    aplus.VertexID
	wantE    aplus.EdgeID
}

// Batch stages writes on shard 0 and records them; on commit the script
// replays on every other replica with the lead shard's assigned IDs
// verified. Batches commit on shard 0 regardless of ownership: a batch
// spans many owners, and the replication invariant only needs one fixed
// commit point.
type Batch struct {
	b   *aplus.Batch
	ops []batchOp
}

// AddVertex stages a vertex on the lead shard and records it for replay.
func (b *Batch) AddVertex(label string, props aplus.Props) (aplus.VertexID, error) {
	v, err := b.b.AddVertex(label, props)
	if err != nil {
		return v, err
	}
	b.ops = append(b.ops, batchOp{kind: 'v', label: label, props: props, wantV: v})
	return v, nil
}

// AddEdge stages an edge on the lead shard and records it for replay.
func (b *Batch) AddEdge(src, dst aplus.VertexID, label string, props aplus.Props) (aplus.EdgeID, error) {
	e, err := b.b.AddEdge(src, dst, label, props)
	if err != nil {
		return e, err
	}
	b.ops = append(b.ops, batchOp{kind: 'e', label: label, props: props, src: src, dst: dst, wantE: e})
	return e, nil
}

// DeleteEdge stages an edge deletion on the lead shard and records it.
func (b *Batch) DeleteEdge(e aplus.EdgeID) error {
	if err := b.b.DeleteEdge(e); err != nil {
		return err
	}
	b.ops = append(b.ops, batchOp{kind: 'd', edge: e})
	return nil
}

// Batch runs fn against a staged batch and commits it atomically on every
// replica (lead shard first). When fn errors, nothing commits anywhere.
func (c *Cluster) Batch(fn func(*Batch) error) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	if err := c.writeHealthy(); err != nil {
		return err
	}
	var script []batchOp
	err := c.dbs[0].Batch(func(ab *aplus.Batch) error {
		cb := &Batch{b: ab}
		if err := fn(cb); err != nil {
			return err
		}
		script = cb.ops
		return nil
	})
	if err != nil {
		return err
	}
	for si := 1; si < len(c.dbs); si++ {
		rerr := c.dbs[si].Batch(func(ab *aplus.Batch) error {
			for _, op := range script {
				switch op.kind {
				case 'v':
					v, err := ab.AddVertex(op.label, op.props)
					if err != nil {
						return err
					}
					if v != op.wantV {
						return fmt.Errorf("replayed vertex got id %d, lead assigned %d", v, op.wantV)
					}
				case 'e':
					e, err := ab.AddEdge(op.src, op.dst, op.label, op.props)
					if err != nil {
						return err
					}
					if e != op.wantE {
						return fmt.Errorf("replayed edge got id %d, lead assigned %d", e, op.wantE)
					}
				case 'd':
					if err := ab.DeleteEdge(op.edge); err != nil {
						return err
					}
				}
			}
			return nil
		})
		if rerr != nil {
			rerr = fmt.Errorf("batch mirror to shard %d failed after shard 0 committed: %w", si, rerr)
			c.poison(rerr)
			return fmt.Errorf("%w: %v", ErrClusterDiverged, rerr)
		}
	}
	// Track vertex allocation for AddVertex ownership routing.
	for _, op := range script {
		if op.kind == 'v' && op.wantV >= c.nextV {
			c.nextV = op.wantV + 1
		}
	}
	return nil
}

// Exec broadcasts an index DDL to every replica (shard 0 first; a shard-0
// failure aborts cleanly, a later failure poisons writes).
func (c *Cluster) Exec(ddl string) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	if err := c.writeHealthy(); err != nil {
		return err
	}
	for si := range c.dbs {
		if err := c.dbs[si].Exec(ddl); err != nil {
			if si == 0 {
				return err
			}
			err = fmt.Errorf("DDL mirror to shard %d failed after shard 0 applied: %w", si, err)
			c.poison(err)
			return fmt.Errorf("%w: %v", ErrClusterDiverged, err)
		}
	}
	return nil
}

// Flush folds pending deltas on every shard (fold failures are retried by
// each shard's merger and do not poison replication — the replicas' data
// is still identical).
func (c *Cluster) Flush() error {
	var first error
	for si, db := range c.dbs {
		if err := db.Flush(); err != nil && first == nil {
			first = fmt.Errorf("shard %d: %w", si, err)
		}
	}
	return first
}

// VertexProp reads a vertex property from shard 0 (replicas are identical).
func (c *Cluster) VertexProp(v aplus.VertexID, key string) any { return c.dbs[0].VertexProp(v, key) }

// EdgeProp reads an edge property from shard 0.
func (c *Cluster) EdgeProp(e aplus.EdgeID, key string) any { return c.dbs[0].EdgeProp(e, key) }

// Explain returns shard 0's plan (replicas compile identical plans).
func (c *Cluster) Explain(cypher string) (string, error) { return c.dbs[0].Explain(cypher) }

// Count runs a query across all shards and returns the summed match count.
func (c *Cluster) Count(cypher string) (int64, error) {
	n, _, err := c.CountProfiledLimited(context.Background(), cypher, aplus.QueryLimits{})
	return n, err
}

// CountCtx is Count under the caller's context: cancellation and deadline
// propagate to every shard.
func (c *Cluster) CountCtx(ctx context.Context, cypher string) (int64, error) {
	n, _, err := c.CountProfiledLimited(ctx, cypher, aplus.QueryLimits{})
	return n, err
}

// CountProfiledCtx also merges per-shard metrics: ICost and PredEvals sum
// (bit-identical to an unsharded run), EstimatedICost is the plan estimate
// (identical on every replica).
func (c *Cluster) CountProfiledCtx(ctx context.Context, cypher string) (int64, aplus.Metrics, error) {
	return c.CountProfiledLimited(ctx, cypher, aplus.QueryLimits{})
}

// CountProfiledLimited is CountProfiledCtx under explicit per-shard
// resource limits (budgets bound each shard's work, as each shard runs its
// own governed execution).
func (c *Cluster) CountProfiledLimited(ctx context.Context, cypher string, limits aplus.QueryLimits) (int64, aplus.Metrics, error) {
	type res struct {
		shard int
		n     int64
		m     aplus.Metrics
		err   error
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	ch := make(chan res, len(c.dbs))
	var panicked panicBox
	for i, db := range c.dbs {
		go func(i int, db *aplus.DB) {
			defer panicked.forward(func() { ch <- res{shard: i, err: aplus.ErrQueryPanic} })
			n, m, err := db.CountProfiledLimited(ctx, cypher, limits)
			if err != nil {
				cancel() // first-error-wins: stop sibling shards
			}
			ch <- res{shard: i, n: n, m: m, err: err}
		}(i, db)
	}
	var total int64
	var mm aplus.Metrics
	var firstErr error
	for range c.dbs {
		r := <-ch
		if r.err != nil {
			if preferError(firstErr, r.err) {
				firstErr = fmt.Errorf("shard %d: %w", r.shard, r.err)
			}
			continue
		}
		total += r.n
		mm.ICost += r.m.ICost
		mm.PredEvals += r.m.PredEvals
		if r.shard == 0 {
			mm.EstimatedICost = r.m.EstimatedICost
		}
	}
	panicked.rethrow()
	if firstErr != nil {
		return 0, aplus.Metrics{}, firstErr
	}
	return total, mm, nil
}

// Aggregate evaluates fn (count/sum/min/max) across all shards and merges
// the per-shard partials exactly: rows and sums add, extrema compare, and
// validity ORs, so the cluster result is bit-identical to an unsharded
// DB.Aggregate — the partition-of-the-root invariant extended to aggregate
// values. Metrics merge as in CountProfiledLimited.
func (c *Cluster) Aggregate(ctx context.Context, cypher string, fn aplus.AggFunc, variable, prop string, limits aplus.QueryLimits) (aplus.AggValue, aplus.Metrics, error) {
	type res struct {
		shard int
		v     aplus.AggValue
		m     aplus.Metrics
		err   error
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	ch := make(chan res, len(c.dbs))
	var panicked panicBox
	for i, db := range c.dbs {
		go func(i int, db *aplus.DB) {
			defer panicked.forward(func() { ch <- res{shard: i, err: aplus.ErrQueryPanic} })
			v, m, err := db.AggregateLimited(ctx, cypher, fn, variable, prop, limits)
			if err != nil {
				cancel() // first-error-wins: stop sibling shards
			}
			ch <- res{shard: i, v: v, m: m, err: err}
		}(i, db)
	}
	var total aplus.AggValue
	var mm aplus.Metrics
	var firstErr error
	for range c.dbs {
		r := <-ch
		if r.err != nil {
			if preferError(firstErr, r.err) {
				firstErr = fmt.Errorf("shard %d: %w", r.shard, r.err)
			}
			continue
		}
		total.Merge(fn, r.v)
		mm.ICost += r.m.ICost
		mm.PredEvals += r.m.PredEvals
		if r.shard == 0 {
			mm.EstimatedICost = r.m.EstimatedICost
		}
	}
	panicked.rethrow()
	if firstErr != nil {
		return aplus.AggValue{}, aplus.Metrics{}, firstErr
	}
	return total, mm, nil
}

// ExplainAnalyze runs the query for real on every shard with per-operator
// tracing armed and returns the merged trace: counts, span counters, and
// the per-worker split (tagged with the owning shard) sum exactly as
// CountProfiledLimited's metrics do — bit-identical to an unsharded traced
// run — while wall time takes the max, since shards execute concurrently.
func (c *Cluster) ExplainAnalyze(ctx context.Context, cypher string, limits aplus.QueryLimits) (*aplus.QueryTrace, error) {
	type res struct {
		shard int
		t     *aplus.QueryTrace
		err   error
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	ch := make(chan res, len(c.dbs))
	var panicked panicBox
	for i, db := range c.dbs {
		go func(i int, db *aplus.DB) {
			defer panicked.forward(func() { ch <- res{shard: i, err: aplus.ErrQueryPanic} })
			t, err := db.ExplainAnalyzeLimited(ctx, cypher, limits)
			if err != nil {
				cancel()
			}
			ch <- res{shard: i, t: t, err: err}
		}(i, db)
	}
	merged := &aplus.QueryTrace{}
	traces := make([]*aplus.QueryTrace, len(c.dbs))
	var firstErr error
	for range c.dbs {
		r := <-ch
		traces[r.shard] = r.t
		if r.err != nil && preferError(firstErr, r.err) {
			firstErr = fmt.Errorf("shard %d: %w", r.shard, r.err)
		}
	}
	panicked.rethrow()
	if firstErr != nil {
		return nil, firstErr
	}
	// Merge in shard order so the worker split is deterministic.
	for i, t := range traces {
		merged.Merge(t, i)
	}
	return merged, nil
}

// Query streams matched rows from all shards into fn. fn is never called
// concurrently with itself; rows arrive in nondeterministic shard order.
// Returning false stops every shard. A panic in fn re-raises on the
// calling goroutine, as with the embedded API.
func (c *Cluster) Query(cypher string, fn func(aplus.Row) bool) error {
	return c.QueryLimited(context.Background(), cypher, aplus.QueryLimits{}, fn)
}

// QueryCtx is Query under the caller's context.
func (c *Cluster) QueryCtx(ctx context.Context, cypher string, fn func(aplus.Row) bool) error {
	return c.QueryLimited(ctx, cypher, aplus.QueryLimits{}, fn)
}

// QueryLimited is QueryCtx under explicit per-shard resource limits.
func (c *Cluster) QueryLimited(ctx context.Context, cypher string, limits aplus.QueryLimits, fn func(aplus.Row) bool) error {
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var emitMu sync.Mutex
	stopped := false
	emit := func(r aplus.Row) bool {
		emitMu.Lock()
		defer emitMu.Unlock()
		if stopped {
			return false
		}
		if !fn(r) {
			stopped = true
			cancel()
			return false
		}
		return true
	}
	type res struct {
		shard int
		err   error
	}
	ch := make(chan res, len(c.dbs))
	var panicked panicBox
	for i, db := range c.dbs {
		go func(i int, db *aplus.DB) {
			// A panicking fn re-raises on the goroutine that called the
			// shard DB (this one); capture it and re-raise on the cluster
			// caller after the fan-out drains, preserving the embedded
			// API's callback-panic contract.
			defer panicked.forward(func() { ch <- res{shard: i, err: aplus.ErrQueryPanic} })
			err := db.QueryLimited(ctx, cypher, limits, emit)
			if err != nil {
				cancel()
			}
			ch <- res{shard: i, err: err}
		}(i, db)
	}
	var firstErr error
	for range c.dbs {
		r := <-ch
		if r.err != nil && preferError(firstErr, r.err) {
			firstErr = fmt.Errorf("shard %d: %w", r.shard, r.err)
		}
	}
	panicked.rethrow()
	if stopped {
		// The caller stopped the stream; sibling cancellations are the
		// mechanism, not an error (matching the embedded early-stop API).
		if firstErr != nil && errors.Is(firstErr, aplus.ErrQueryCanceled) {
			return nil
		}
	}
	return firstErr
}

// preferError reports whether next should replace cur as the fan-out's
// reported error. The first error wins, except that a sibling's secondary
// cancellation (induced by our own cancel()) never masks the original
// cause.
func preferError(cur, next error) bool {
	if cur == nil {
		return true
	}
	return errors.Is(cur, aplus.ErrQueryCanceled) && !errors.Is(next, aplus.ErrQueryCanceled)
}

// panicBox captures the first panic among fan-out goroutines and
// re-raises it on the coordinating goroutine after the pool drains.
type panicBox struct {
	mu  sync.Mutex
	val any
	set bool
}

// forward recovers a panic on the current goroutine, stores it, and runs
// done so the coordinator's drain loop still receives a result.
func (p *panicBox) forward(done func()) {
	if r := recover(); r != nil {
		p.mu.Lock()
		if !p.set {
			p.val, p.set = r, true
		}
		p.mu.Unlock()
		done()
	}
}

func (p *panicBox) rethrow() {
	p.mu.Lock()
	val, set := p.val, p.set
	p.mu.Unlock()
	if set {
		panic(val)
	}
}

// Stats aggregates cluster observability.
type Stats struct {
	// Aggregate merges the shards: logical dataset fields (vertex/edge
	// counts, sizes, epoch) come from shard 0 — every replica holds the
	// same data — while additive counters (governance, plan cache, WAL
	// bytes, folds, pending writes) sum across shards.
	Aggregate aplus.Stats
	// Shards holds each shard's own stats, in shard order.
	Shards []aplus.Stats
	// Diverged mirrors the write-poison state (cause in DivergedCause).
	Diverged      bool
	DivergedCause string
}

// Stats collects per-shard stats and the aggregate view.
func (c *Cluster) Stats() Stats {
	per := make([]aplus.Stats, len(c.dbs))
	for i, db := range c.dbs {
		per[i] = db.Stats()
	}
	agg := per[0]
	for _, st := range per[1:] {
		agg.PendingWrites += st.PendingWrites
		agg.FoldsTotal += st.FoldsTotal
		agg.IncrementalFolds += st.IncrementalFolds
		agg.GroupCommits += st.GroupCommits
		agg.GroupedWrites += st.GroupedWrites
		agg.WALBytes += st.WALBytes
		agg.ReplayedOps += st.ReplayedOps
		agg.MergeRetries += st.MergeRetries
		agg.QueriesInFlight += st.QueriesInFlight
		agg.QueriesRejected += st.QueriesRejected
		agg.QueriesCanceled += st.QueriesCanceled
		agg.QueriesTimedOut += st.QueriesTimedOut
		agg.SlowQueries += st.SlowQueries
		agg.QueriesPanicked += st.QueriesPanicked
		agg.PlanCacheHits += st.PlanCacheHits
		agg.PlanCacheMisses += st.PlanCacheMisses
		agg.PlanCacheEntries += st.PlanCacheEntries
		agg.QueryLatency = agg.QueryLatency.Merge(st.QueryLatency)
		agg.AdmissionWait = agg.AdmissionWait.Merge(st.AdmissionWait)
		agg.WALFsync = agg.WALFsync.Merge(st.WALFsync)
		agg.FoldDuration = agg.FoldDuration.Merge(st.FoldDuration)
		if sq := st.LastSlowQuery; sq != nil &&
			(agg.LastSlowQuery == nil || sq.When.After(agg.LastSlowQuery.When)) {
			agg.LastSlowQuery = sq
		}
		if st.Degraded && !agg.Degraded {
			agg.Degraded = true
			agg.DegradedCause = st.DegradedCause
		}
	}
	s := Stats{Aggregate: agg, Shards: per}
	if div, cause := c.Diverged(); div {
		s.Diverged = true
		s.DivergedCause = cause.Error()
	}
	return s
}
