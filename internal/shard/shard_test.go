package shard

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"time"

	"github.com/aplusdb/aplus"
)

const (
	triangleQ = "MATCH a1-[e1]->a2-[e2]->a3, a3-[e3]->a1"
	pathQ     = "MATCH a-[e]->b, b-[f]->c"
)

// seedOps writes a deterministic pseudo-random graph through any write API.
type writer interface {
	AddVertex(label string, props aplus.Props) (aplus.VertexID, error)
	AddEdge(src, dst aplus.VertexID, label string, props aplus.Props) (aplus.EdgeID, error)
	DeleteEdge(e aplus.EdgeID) error
}

func seedGraph(t testing.TB, w writer, nv, ne int, deletes bool) {
	t.Helper()
	rng := rand.New(rand.NewSource(42))
	labels := []string{"P", "Q"}
	for i := 0; i < nv; i++ {
		if _, err := w.AddVertex(labels[i%2], aplus.Props{"x": i}); err != nil {
			t.Fatal(err)
		}
	}
	var eids []aplus.EdgeID
	for i := 0; i < ne; i++ {
		src := aplus.VertexID(rng.Intn(nv))
		dst := aplus.VertexID(rng.Intn(nv))
		e, err := w.AddEdge(src, dst, "K", aplus.Props{"w": rng.Intn(100)})
		if err != nil {
			t.Fatal(err)
		}
		eids = append(eids, e)
	}
	if deletes {
		for i := 0; i < ne/10; i++ {
			if err := w.DeleteEdge(eids[rng.Intn(len(eids))]); err != nil {
				t.Fatal(err)
			}
		}
	}
}

// TestShardParity asserts the acceptance criterion: counts, i-cost, and
// profiled metrics from a K-shard cluster are bit-identical to a single
// embedded DB over the same generated graph, for K in {1, 2, 8}, with
// deletes in the delta, after a fold, and with a secondary view installed.
func TestShardParity(t *testing.T) {
	const nv, ne = 300, 1500
	ref := aplus.New()
	seedGraph(t, ref, nv, ne, true)

	type phase struct {
		name string
		prep func(flush func() error, exec func(string) error) error
	}
	phases := []phase{
		{"delta", func(func() error, func(string) error) error { return nil }},
		{"folded", func(flush func() error, _ func(string) error) error { return flush() }},
		{"with-view", func(_ func() error, exec func(string) error) error {
			return exec("CREATE 1-HOP VIEW VW MATCH vs-[eadj]->vd INDEX AS FW PARTITION BY eadj.label")
		}},
	}
	queries := []string{triangleQ, pathQ}

	// Reference runs per phase.
	type want struct {
		n int64
		m aplus.Metrics
	}
	refRuns := make(map[string]want)
	for _, ph := range phases {
		if err := ph.prep(ref.Flush, ref.Exec); err != nil {
			t.Fatal(err)
		}
		for _, q := range queries {
			n, m, err := ref.CountProfiledCtx(context.Background(), q)
			if err != nil {
				t.Fatal(err)
			}
			refRuns[ph.name+"/"+q] = want{n, m}
		}
	}

	for _, k := range []int{1, 2, 8} {
		c, err := New(Options{Shards: k})
		if err != nil {
			t.Fatal(err)
		}
		seedGraph(t, c, nv, ne, true)
		for _, ph := range phases {
			if err := ph.prep(c.Flush, c.Exec); err != nil {
				t.Fatalf("K=%d %s: %v", k, ph.name, err)
			}
			for _, q := range queries {
				w := refRuns[ph.name+"/"+q]
				n, m, err := c.CountProfiledCtx(context.Background(), q)
				if err != nil {
					t.Fatalf("K=%d %s %q: %v", k, ph.name, q, err)
				}
				if n != w.n {
					t.Errorf("K=%d %s %q: count %d, want %d", k, ph.name, q, n, w.n)
				}
				if m.ICost != w.m.ICost || m.PredEvals != w.m.PredEvals {
					t.Errorf("K=%d %s %q: metrics (%d,%d), want (%d,%d)",
						k, ph.name, q, m.ICost, m.PredEvals, w.m.ICost, w.m.PredEvals)
				}
				if m.EstimatedICost != w.m.EstimatedICost {
					t.Errorf("K=%d %s %q: est %v, want %v", k, ph.name, q, m.EstimatedICost, w.m.EstimatedICost)
				}
			}
		}
		if err := c.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestShardAggregateParity asserts cross-shard aggregate merging is exact:
// every aggregate function over a K-shard cluster returns bit-identical
// values and merged metrics to the embedded DB on the same graph (deletes
// in the delta included), for K in {1, 2, 8}.
func TestShardAggregateParity(t *testing.T) {
	const nv, ne = 200, 1000
	ref := aplus.New()
	seedGraph(t, ref, nv, ne, true)
	funcs := []aplus.AggFunc{aplus.AggCount, aplus.AggSum, aplus.AggMin, aplus.AggMax}
	for _, k := range []int{1, 2, 8} {
		c, err := New(Options{Shards: k})
		if err != nil {
			t.Fatal(err)
		}
		seedGraph(t, c, nv, ne, true)
		for _, fn := range funcs {
			for _, variable := range []string{"a", "c"} {
				want, wantM, err := ref.AggregateLimited(context.Background(), pathQ, fn, variable, "x", aplus.QueryLimits{})
				if err != nil {
					t.Fatal(err)
				}
				got, m, err := c.Aggregate(context.Background(), pathQ, fn, variable, "x", aplus.QueryLimits{})
				if err != nil {
					t.Fatalf("K=%d %s(%s.x): %v", k, fn, variable, err)
				}
				if got != want {
					t.Errorf("K=%d %s(%s.x): %+v, want %+v", k, fn, variable, got, want)
				}
				if m.ICost != wantM.ICost || m.PredEvals != wantM.PredEvals {
					t.Errorf("K=%d %s(%s.x): metrics (%d,%d), want (%d,%d)",
						k, fn, variable, m.ICost, m.PredEvals, wantM.ICost, wantM.PredEvals)
				}
			}
		}
		if err := c.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestShardRowParity asserts the fan-out Query path streams exactly the
// embedded row set (as a multiset, order-independent).
func TestShardRowParity(t *testing.T) {
	const nv, ne = 150, 700
	ref := aplus.New()
	seedGraph(t, ref, nv, ne, false)
	rowsOf := func(q interface {
		Query(string, func(aplus.Row) bool) error
	}) []string {
		var rows []string
		err := q.Query(pathQ, func(r aplus.Row) bool {
			rows = append(rows, fmt.Sprintf("%d-%d-%d|%d-%d", r.Vertices["a"], r.Vertices["b"], r.Vertices["c"], r.Edges["e"], r.Edges["f"]))
			return true
		})
		if err != nil {
			t.Fatal(err)
		}
		sort.Strings(rows)
		return rows
	}
	want := rowsOf(ref)
	if len(want) == 0 {
		t.Fatal("degenerate test: no rows")
	}
	for _, k := range []int{2, 8} {
		c, err := New(Options{Shards: k})
		if err != nil {
			t.Fatal(err)
		}
		seedGraph(t, c, nv, ne, false)
		got := rowsOf(c)
		if len(got) != len(want) {
			t.Fatalf("K=%d: %d rows, want %d", k, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("K=%d: row %d = %s, want %s", k, i, got[i], want[i])
			}
		}
		c.Close()
	}
}

// TestFanOutCancellation is the acceptance test: canceling a fan-out query
// mid-flight returns a wrapped ErrQueryCanceled and QueriesInFlight
// returns to 0 on every shard.
func TestFanOutCancellation(t *testing.T) {
	c, err := New(Options{Shards: 4, Parallelism: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// Hub-heavy shape so the query is long enough to catch in flight.
	err = c.Batch(func(b *Batch) error {
		hubs := make([]aplus.VertexID, 40)
		for i := range hubs {
			v, err := b.AddVertex("H", nil)
			if err != nil {
				return err
			}
			hubs[i] = v
		}
		for _, h := range hubs {
			for _, h2 := range hubs {
				if _, err := b.AddEdge(h, h2, "K", nil); err != nil {
					return err
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	rows := 0
	qerr := c.QueryCtx(ctx, triangleQ, func(aplus.Row) bool {
		rows++
		if rows == 10 {
			cancel()
		}
		return true
	})
	if !errors.Is(qerr, aplus.ErrQueryCanceled) {
		t.Fatalf("canceled fan-out returned %v, want wrapped ErrQueryCanceled", qerr)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		inFlight := int64(0)
		for i := 0; i < c.NumShards(); i++ {
			inFlight += c.DB(i).Stats().QueriesInFlight
		}
		if inFlight == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("QueriesInFlight still %d after cancel", inFlight)
		}
		time.Sleep(5 * time.Millisecond)
	}
	// Each shard observed the cancellation (counter or no-op if it drained
	// before noticing; at least one must have counted it).
	var canceled int64
	for i := 0; i < c.NumShards(); i++ {
		canceled += c.DB(i).Stats().QueriesCanceled
	}
	if canceled == 0 {
		t.Fatal("no shard recorded a canceled query")
	}
}

// TestFanOutBudget pins that per-shard budgets trip the whole fan-out with
// a matchable sentinel.
func TestFanOutBudget(t *testing.T) {
	c, err := New(Options{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	seedGraph(t, c, 100, 800, false)
	_, _, err = c.CountProfiledLimited(context.Background(), triangleQ, aplus.QueryLimits{MaxICost: 1})
	if !errors.Is(err, aplus.ErrBudgetExceeded) {
		t.Fatalf("budget trip returned %v, want wrapped ErrBudgetExceeded", err)
	}
}

// TestClusterDivergencePoisonsWrites forces an ID divergence by writing
// directly to one replica behind the cluster's back.
func TestClusterDivergencePoisonsWrites(t *testing.T) {
	c, err := New(Options{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.AddVertex("P", nil); err != nil {
		t.Fatal(err)
	}
	// Out-of-band write to shard 1 desynchronizes its ID allocator.
	if _, err := c.DB(1).AddVertex("X", nil); err != nil {
		t.Fatal(err)
	}
	_, err = c.AddVertex("P", nil)
	if !errors.Is(err, ErrClusterDiverged) {
		t.Fatalf("diverged write returned %v, want ErrClusterDiverged", err)
	}
	// Writes stay poisoned; reads keep serving.
	if _, err := c.AddVertex("P", nil); !errors.Is(err, ErrClusterDiverged) {
		t.Fatalf("later write returned %v, want ErrClusterDiverged", err)
	}
	if err := c.Exec("DROP VIEW nope"); !errors.Is(err, ErrClusterDiverged) {
		t.Fatalf("DDL after divergence returned %v, want ErrClusterDiverged", err)
	}
	st := c.Stats()
	if !st.Diverged || st.DivergedCause == "" {
		t.Fatalf("stats do not report divergence: %+v", st)
	}
	if _, err := c.Count("MATCH a-[e]->b"); err != nil {
		t.Fatalf("read after divergence failed: %v", err)
	}
}

// TestDurableClusterReopen writes through a durable cluster, closes it,
// reopens, and asserts parity with an embedded reference (recovery runs
// per shard through each shard's WAL).
func TestDurableClusterReopen(t *testing.T) {
	dir := t.TempDir()
	const nv, ne = 120, 600
	ref := aplus.New()
	seedGraph(t, ref, nv, ne, true)
	wantN, wantM, err := ref.CountProfiledCtx(context.Background(), triangleQ)
	if err != nil {
		t.Fatal(err)
	}

	c, err := New(Options{Shards: 2, Dir: dir, NoFsync: true})
	if err != nil {
		t.Fatal(err)
	}
	seedGraph(t, c, nv, ne, true)
	n, m, err := c.CountProfiledCtx(context.Background(), triangleQ)
	if err != nil {
		t.Fatal(err)
	}
	if n != wantN || m.ICost != wantM.ICost {
		t.Fatalf("durable cluster: (%d,%d), want (%d,%d)", n, m.ICost, wantN, wantM.ICost)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen with a different shard count must be refused.
	if _, err := New(Options{Shards: 4, Dir: dir}); err == nil {
		t.Fatal("resharding an existing directory was not refused")
	}

	c2, err := New(Options{Shards: 2, Dir: dir, NoFsync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	n, m, err = c2.CountProfiledCtx(context.Background(), triangleQ)
	if err != nil {
		t.Fatal(err)
	}
	if n != wantN || m.ICost != wantM.ICost || m.PredEvals != wantM.PredEvals {
		t.Fatalf("reopened cluster: (%d,%d,%d), want (%d,%d,%d)",
			n, m.ICost, m.PredEvals, wantN, wantM.ICost, wantM.PredEvals)
	}
	// And it must still accept writes routed through the recovered WALs.
	if _, err := c2.AddVertex("P", nil); err != nil {
		t.Fatal(err)
	}
}

// TestClusterConcurrentReadsAndWrites stresses fan-out reads racing
// replicated writes and folds (run under -race in CI).
func TestClusterConcurrentReadsAndWrites(t *testing.T) {
	c, err := New(Options{Shards: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	seedGraph(t, c, 80, 400, false)
	done := make(chan error, 6)
	for r := 0; r < 4; r++ {
		go func() {
			var ferr error
			for i := 0; i < 30; i++ {
				if _, err := c.Count(pathQ); err != nil {
					ferr = err
					break
				}
			}
			done <- ferr
		}()
	}
	for w := 0; w < 2; w++ {
		go func(w int) {
			var ferr error
			for i := 0; i < 20; i++ {
				src := aplus.VertexID((w*20 + i) % 80)
				if _, err := c.AddEdge(src, aplus.VertexID((i*7)%80), "K", nil); err != nil {
					ferr = err
					break
				}
				if i%10 == 9 {
					if err := c.Flush(); err != nil {
						ferr = err
						break
					}
				}
			}
			done <- ferr
		}(w)
	}
	for i := 0; i < 6; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	// Replicas must still agree after the storm.
	sts := c.Stats()
	for i, st := range sts.Shards {
		if st.NumVertices != sts.Shards[0].NumVertices || st.NumEdges != sts.Shards[0].NumEdges {
			t.Fatalf("shard %d diverged: %dv/%de vs %dv/%de", i,
				st.NumVertices, st.NumEdges, sts.Shards[0].NumVertices, sts.Shards[0].NumEdges)
		}
	}
	if sts.Diverged {
		t.Fatalf("cluster diverged: %s", sts.DivergedCause)
	}
}

// TestBatchReplay pins batch atomicity across replicas, including the
// fn-error path (nothing commits anywhere).
func TestBatchReplay(t *testing.T) {
	c, err := New(Options{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	err = c.Batch(func(b *Batch) error {
		v1, err := b.AddVertex("P", aplus.Props{"name": "a"})
		if err != nil {
			return err
		}
		v2, err := b.AddVertex("P", nil)
		if err != nil {
			return err
		}
		e, err := b.AddEdge(v1, v2, "K", nil)
		if err != nil {
			return err
		}
		return b.DeleteEdge(e)
	})
	if err != nil {
		t.Fatal(err)
	}
	boom := errors.New("boom")
	err = c.Batch(func(b *Batch) error {
		if _, err := b.AddVertex("P", nil); err != nil {
			return err
		}
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("batch error = %v, want boom", err)
	}
	st := c.Stats()
	for i, s := range st.Shards {
		if s.NumVertices != 2 {
			t.Fatalf("shard %d has %d vertices, want 2 (aborted batch leaked)", i, s.NumVertices)
		}
		if s.NumEdges != 0 {
			t.Fatalf("shard %d has %d live edges, want 0", i, s.NumEdges)
		}
	}
	if prop := c.VertexProp(0, "name"); prop != "a" {
		t.Fatalf("VertexProp = %v, want a", prop)
	}
}
