package snap

import (
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"github.com/aplusdb/aplus/internal/index"
	"github.com/aplusdb/aplus/internal/storage"
)

// A failing AfterFold hook (a broken checkpoint disk) must not stop the
// background merger or query serving: the manager records the failure,
// retries with backoff, and clears the state once the hook succeeds.
func TestAfterFoldFailureRetriesWithBackoff(t *testing.T) {
	var calls atomic.Int64
	const failUntil = 3
	m, err := NewManager(storage.NewGraph(), index.DefaultConfig(), Options{
		MergeThreshold: 4,
		RetryBackoff:   time.Millisecond,
		AfterFold: func(s *Snapshot) error {
			if calls.Add(1) <= failUntil {
				return fmt.Errorf("injected checkpoint failure")
			}
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	// First commit interns the labels (it folds inline, growing the
	// catalog); the second only buffers edges, crossing the threshold and
	// scheduling the background merger, which then fights the failing hook.
	seedVertices(t, m, 6)
	addChainEdges(t, m, 0, 5)

	deadline := time.Now().Add(5 * time.Second)
	for calls.Load() <= failUntil {
		if time.Now().After(deadline) {
			t.Fatalf("hook retried only %d times", calls.Load())
		}
		time.Sleep(time.Millisecond)
	}
	// The hook has now succeeded; the retry state must drain to healthy.
	for {
		st := m.Stats()
		if st.RetryBackoff == 0 && m.afterFoldErr.Load() == nil {
			if st.MergeRetries < failUntil {
				t.Fatalf("MergeRetries %d, want >= %d", st.MergeRetries, failUntil)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("retry state never cleared: %+v", st)
		}
		time.Sleep(time.Millisecond)
	}
	// Reads served throughout and the fold itself landed.
	s := m.Acquire()
	defer s.Release()
	if got := s.Graph().NumLiveEdges(); got != 6 {
		t.Fatalf("live edges %d, want 6", got)
	}
	if !s.Delta().Empty() {
		t.Fatal("delta not folded")
	}
}

// seedVertices commits n vertices labeled "A" plus one "L" edge so the
// catalog holds both labels (this first commit folds inline; later
// edge-only commits buffer in the delta and can trigger background folds).
func seedVertices(t *testing.T, m *Manager, n int) {
	t.Helper()
	b := m.Begin()
	var first storage.VertexID
	for i := 0; i < n; i++ {
		v, err := b.AddVertex("A", nil)
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			first = v
		} else if i == 1 {
			if _, err := b.AddEdge(first, v, "L", nil); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := b.Commit(); err != nil {
		t.Fatal(err)
	}
}

// addChainEdges commits one batch of "L" edges chaining vertices
// from..from+n (the vertices must already exist).
func addChainEdges(t *testing.T, m *Manager, from storage.VertexID, n int) {
	t.Helper()
	b := m.Begin()
	for i := 0; i < n; i++ {
		if _, err := b.AddEdge(from+storage.VertexID(i), from+storage.VertexID(i)+1, "L", nil); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.Commit(); err != nil {
		t.Fatal(err)
	}
}

// Close must interrupt a merger sleeping out a long retry backoff instead
// of waiting for the timer.
func TestCloseInterruptsRetryBackoff(t *testing.T) {
	m, err := NewManager(storage.NewGraph(), index.DefaultConfig(), Options{
		MergeThreshold: 2,
		RetryBackoff:   time.Hour,
		AfterFold: func(s *Snapshot) error {
			return fmt.Errorf("always failing")
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	seedVertices(t, m, 4)
	addChainEdges(t, m, 0, 3)
	// Give the background merger a moment to enter its backoff sleep, then
	// Close must return promptly (well under the 1h backoff).
	for i := 0; i < 1000 && m.Stats().RetryBackoff == 0; i++ {
		time.Sleep(time.Millisecond)
	}
	done := make(chan struct{})
	go func() { m.Close(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Close blocked on the retry backoff")
	}
}
