package snap

import (
	"fmt"
	"math/rand"
	"time"

	"github.com/aplusdb/aplus/internal/index"
	"github.com/aplusdb/aplus/internal/storage"
)

// scheduleMerge starts a background fold unless one is already running (or
// runs it inline under Options.SyncMerge). Commits landing while a fold is
// in flight are rebased onto its result at publish time, and re-trigger a
// fold themselves if the rebased delta is still above threshold.
//
// A failed fold or AfterFold hook does not stop the goroutine: it sleeps
// out a capped exponential backoff (with jitter, interruptible by Close)
// and retries, keeping the merging flag held so no duplicate merger spawns.
// Throughout, readers and writers keep going against the delta overlay —
// a broken checkpoint disk never stops query serving.
func (m *Manager) scheduleMerge() {
	if m.opts.SyncMerge {
		_ = m.Merge()
		return
	}
	if !m.merging.CompareAndSwap(false, true) {
		return
	}
	// Register with the close WaitGroup under closeMu so Close either sees
	// this fold (and waits for it) or has already marked the manager closed
	// (and this fold never starts).
	m.closeMu.Lock()
	if m.closed {
		m.closeMu.Unlock()
		m.merging.Store(false)
		return
	}
	m.mergeWG.Add(1)
	m.closeMu.Unlock()
	go func() {
		defer m.mergeWG.Done()
		backoff := m.opts.retryBackoff()
		for {
			err := m.Merge()
			if err == nil && m.afterFoldErr.Load() == nil {
				m.retryBackoff.Store(0)
				backoff = m.opts.retryBackoff()
				m.merging.Store(false)
				// A commit may have crossed the threshold after Merge loaded
				// its final (empty) view but before the flag cleared — its
				// scheduleMerge CAS lost against the still-true flag. Re-check
				// and reclaim so no over-threshold delta is left unmerged on a
				// burst-then-idle workload.
				if m.cur.Load().delta.Pending() < m.opts.threshold() {
					return
				}
				if !m.merging.CompareAndSwap(false, true) {
					return
				}
				continue
			}
			// The fold failed (Stats.LastMergeError) or its checkpoint hook
			// did (Stats, engine LastCheckpointError). Neither is fatal —
			// sleep out the backoff and retry. Jitter de-synchronizes
			// retries from whatever periodic pressure broke the disk.
			m.mergeRetries.Add(1)
			m.retryBackoff.Store(int64(backoff))
			sleep := backoff/2 + time.Duration(rand.Int63n(int64(backoff)))
			select {
			case <-m.closeCh:
				m.merging.Store(false)
				return
			case <-time.After(sleep):
			}
			if backoff *= 2; backoff > retryBackoffCapMult*m.opts.retryBackoff() {
				backoff = retryBackoffCapMult * m.opts.retryBackoff()
			}
		}
	}()
}

// Merge folds every pending delta op into a fresh block-packed base
// (rebuilding the primary CSRs and all secondary indexes off the query
// path) and publishes the result, looping until it observes an empty
// delta. Readers keep executing against their pinned snapshots throughout;
// commits are only excluded for the brief publish swap, except in the rare
// fallback where a rebase is impossible. Concurrent merges serialize. The
// outcome is mirrored into Stats().LastMergeError: set on failure, cleared
// on success, whether the caller is the background scheduler or Flush.
// After a successful fold the Options.AfterFold hook (checkpointing) runs
// with no manager locks held, receiving the delta-free snapshot the fold
// finished on — not a re-acquired current one, which a concurrent commit
// could have already dirtied (that would starve checkpoints under
// sustained writes).
//
// An AfterFold failure is non-fatal and NOT returned: the fold already
// published, the overlay keeps serving, and a checkpoint is a space/
// recovery-time optimization, not a correctness requirement. It is
// recorded for Stats and retried in the background with backoff
// (scheduleMerge's loop; a synchronous caller's failure arms that loop
// here).
func (m *Manager) Merge() error {
	last, err := m.merge()
	if err == nil && last != nil && m.opts.AfterFold != nil {
		if aerr := m.opts.AfterFold(last); aerr != nil {
			msg := aerr.Error()
			m.afterFoldErr.Store(&msg)
			if !m.opts.SyncMerge {
				m.scheduleMerge()
			}
		} else {
			m.afterFoldErr.Store(nil)
		}
	}
	return err
}

func (m *Manager) merge() (last *Snapshot, err error) {
	m.mergeMu.Lock()
	defer m.mergeMu.Unlock()
	defer func() {
		if err != nil {
			s := err.Error()
			m.mergeErr.Store(&s)
		} else {
			m.mergeErr.Store(nil)
		}
	}()
	attempts := 0
	for {
		s := m.cur.Load()
		if s.delta.Empty() {
			return s, nil
		}
		if attempts >= 2 {
			// Writers keep outrunning the fold (or keep introducing values
			// the fresh base cannot buffer): build once while holding the
			// writer mutex. Readers still never block.
			m.mu.Lock()
			s = m.cur.Load()
			if s.delta.Empty() {
				m.mu.Unlock()
				return s, nil
			}
			st, g2, inc, err := m.foldSnapshot(s)
			if err != nil {
				m.mu.Unlock()
				return nil, err
			}
			m.publishBaseLocked(st, g2, index.NewDelta())
			folded := m.cur.Load()
			m.countFold(inc)
			m.mu.Unlock()
			return folded, nil
		}
		attempts++

		// Heavy build, no locks held: commits continue publishing.
		st, g2, inc, err := m.foldSnapshot(s)
		if err != nil {
			return nil, err
		}

		m.mu.Lock()
		cur := m.cur.Load()
		if cur == s {
			m.publishBaseLocked(st, g2, index.NewDelta())
			m.countFold(inc)
			m.mu.Unlock()
			continue // drain anything committed after the swap
		}
		if cur.baseGen == s.baseGen {
			// Commits landed during the build; rebase the op suffix they
			// appended onto the freshly built base.
			g3 := cur.graph.Clone()
			g3.ApplyTombstones(s.delta.DeletedEdges())
			if d2, ok := index.RebaseDelta(cur.delta, s.delta.LogLen(), st.Primary(), g3); ok {
				m.baseGen++
				m.publishLocked(&Snapshot{baseGen: m.baseGen, store: st, graph: g3, delta: d2})
				m.countFold(inc)
				m.mu.Unlock()
				continue
			}
		}
		// The base changed under us (an impossible-to-buffer commit folded
		// it) or the suffix cannot be rebased: retry from the new current.
		m.mu.Unlock()
	}
}

// countFold records a published fold's outcome for Stats.
func (m *Manager) countFold(incremental bool) {
	m.merges.Add(1)
	if incremental {
		m.incFolds.Add(1)
	}
}

// foldSnapshot builds the merged base for s: a graph clone with s's pending
// tombstones applied. When the delta touched few enough owners it patches
// the frozen base incrementally — O(delta) work, clean owners' packed
// blocks copied wholesale — and falls back to indexing from scratch under
// the same primary config and secondary definitions whenever the patch
// cannot be proven equivalent (see index.Store.CloneIncremental). The
// reported flag says which path built the result; fold duration and dirty
// owners are recorded for Stats either way.
func (m *Manager) foldSnapshot(s *Snapshot) (*index.Store, *storage.Graph, bool, error) {
	start := time.Now()
	dirty := s.delta.DirtyOwners()
	g2 := s.graph.Clone()
	g2.ApplyTombstones(s.delta.DeletedEdges())
	var st *index.Store
	incremental := false
	if m.incrementalEligible(s, dirty) {
		if ist, ok := s.store.CloneIncremental(g2, s.delta); ok {
			st, incremental = ist, true
		}
	}
	if st == nil {
		var err error
		if st, err = s.store.CloneRebuilt(g2, s.store.Primary().Config()); err != nil {
			return nil, nil, false, err
		}
	}
	m.lastFoldNanos.Store(time.Since(start).Nanoseconds())
	m.foldHist.Record(time.Since(start).Nanoseconds())
	m.lastFoldDirty.Store(int64(dirty))
	return st, g2, incremental, nil
}

// incrementalEligible applies the dirtiness threshold: past it, patching
// nearly every owner costs more than one flat rebuild. The fraction is
// measured against the 2·|V| primary lists (every owner has one per
// direction).
func (m *Manager) incrementalEligible(s *Snapshot, dirty int) bool {
	f := m.opts.IncrementalDirtyFraction
	if f == 0 {
		f = index.DefaultIncrementalDirtyFraction
	}
	if f < 0 {
		return false
	}
	owners := 2 * s.graph.NumVertices()
	return owners > 0 && float64(dirty) <= f*float64(owners)
}

// Reconfigure rebuilds the base under a new primary configuration (the
// paper's RECONFIGURE PRIMARY INDEXES), folding any pending delta in the
// same pass, and publishes the result. Readers never block; writers are
// excluded for the duration of the rebuild (DDL is rare and already a
// full-rebuild operation).
func (m *Manager) Reconfigure(cfg index.Config) error {
	m.mergeMu.Lock()
	defer m.mergeMu.Unlock()
	m.mu.Lock()
	defer m.mu.Unlock()
	s := m.cur.Load()
	g2 := s.graph.Clone()
	g2.ApplyTombstones(s.delta.DeletedEdges())
	st, err := s.store.CloneRebuilt(g2, cfg)
	if err != nil {
		return err
	}
	if err := m.logLocked(Record{Reconfig: &cfg}); err != nil {
		return err
	}
	m.publishBaseLocked(st, g2, index.NewDelta())
	return nil
}

// CreateVertexPartitioned builds a secondary vertex-partitioned index (the
// paper's CREATE 1-HOP VIEW) and publishes a snapshot carrying it. Pending
// delta ops are folded first so the view covers every committed edge.
func (m *Manager) CreateVertexPartitioned(def index.VPDef) error {
	m.mergeMu.Lock()
	defer m.mergeMu.Unlock()
	m.mu.Lock()
	defer m.mu.Unlock()
	s, err := m.foldForDDLLocked(def.View.Name)
	if err != nil {
		return err
	}
	vp, err := index.BuildVertexPartitioned(s.store.Primary(), def)
	if err != nil {
		return err
	}
	if err := m.logLocked(Record{CreateVP: &def}); err != nil {
		return err
	}
	m.publishLocked(&Snapshot{baseGen: s.baseGen, store: s.store.WithVertexPartitioned(vp), graph: s.graph, delta: s.delta})
	return nil
}

// CreateEdgePartitioned is CreateVertexPartitioned for 2-hop views.
func (m *Manager) CreateEdgePartitioned(def index.EPDef) error {
	m.mergeMu.Lock()
	defer m.mergeMu.Unlock()
	m.mu.Lock()
	defer m.mu.Unlock()
	s, err := m.foldForDDLLocked(def.View.Name)
	if err != nil {
		return err
	}
	ep, err := index.BuildEdgePartitioned(s.store.Primary(), def)
	if err != nil {
		return err
	}
	if err := m.logLocked(Record{CreateEP: &def}); err != nil {
		return err
	}
	m.publishLocked(&Snapshot{baseGen: s.baseGen, store: s.store.WithEdgePartitioned(ep), graph: s.graph, delta: s.delta})
	return nil
}

// foldForDDLLocked checks the view name is free and, when a delta is
// pending, folds it so the new view is built over complete data. Returns
// the snapshot to build against (the current one, possibly just
// republished merged). Callers hold mergeMu and mu.
func (m *Manager) foldForDDLLocked(name string) (*Snapshot, error) {
	s := m.cur.Load()
	if s.store.HasIndex(name) {
		return nil, fmt.Errorf("index: an index named %q already exists", name)
	}
	if s.delta.Empty() {
		return s, nil
	}
	st, g2, inc, err := m.foldSnapshot(s)
	if err != nil {
		return nil, err
	}
	m.publishBaseLocked(st, g2, index.NewDelta())
	m.countFold(inc)
	return m.cur.Load(), nil
}

// DropIndex publishes a snapshot lacking the named secondary index,
// reporting whether it existed (false with a nil error when it did not).
// Like the other DDL publications it excludes in-flight merges (mergeMu):
// a fold that started from a pre-drop snapshot rebuilds every secondary of
// that snapshot, and publishing its rebase after the drop would silently
// resurrect the index.
func (m *Manager) DropIndex(name string) (bool, error) {
	m.mergeMu.Lock()
	defer m.mergeMu.Unlock()
	m.mu.Lock()
	defer m.mu.Unlock()
	s := m.cur.Load()
	ns, ok := s.store.WithoutIndex(name)
	if !ok {
		return false, nil
	}
	if err := m.logLocked(Record{Drop: name}); err != nil {
		return false, err
	}
	m.publishLocked(&Snapshot{baseGen: s.baseGen, store: ns, graph: s.graph, delta: s.delta})
	return true, nil
}
