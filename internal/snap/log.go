package snap

import (
	"sort"

	"github.com/aplusdb/aplus/internal/index"
	"github.com/aplusdb/aplus/internal/storage"
)

// This file defines the durability interface between the snapshot layer and
// a write-ahead log (internal/wal). The snapshot layer does not know how
// records are framed or where they live; it only guarantees ordering and
// the durability point: when Options.WALAppend is set, every publication
// that carries logged work (a batch's ops, or a DDL descriptor) hands its
// Record to the hook under the writer mutex BEFORE the in-memory atomic
// swap, and aborts the publication if the hook fails. A commit is therefore
// visible if and only if the hook accepted its record first.
//
// Records are numbered by a sequence counter that counts logged records
// only (merges and folds publish new epochs but no records). Every
// published Snapshot carries the sequence number of the last record it
// includes, which is what checkpoints store and WAL truncation cuts at.

// OpKind discriminates logged batch operations.
type OpKind uint8

const (
	// OpAddVertex is a vertex append with properties.
	OpAddVertex OpKind = iota + 1
	// OpAddEdge is an edge append with properties.
	OpAddEdge
	// OpDeleteEdge is an edge tombstone.
	OpDeleteEdge
)

// PropKV is one property assignment, by name — records are self-describing
// and never reference catalog or column ids.
type PropKV struct {
	Key string
	Val storage.Value
}

// LoggedOp is one batch operation as it entered the commit, carrying enough
// to replay it exactly: label and property names (not ids) plus the entity
// ids the original run assigned, which replay validates against.
type LoggedOp struct {
	Kind  OpKind
	Label string
	// V is the assigned vertex id (OpAddVertex).
	V storage.VertexID
	// Src, Dst are the edge endpoints and E the assigned or targeted edge
	// id (OpAddEdge, OpDeleteEdge).
	Src, Dst storage.VertexID
	E        storage.EdgeID
	Props    []PropKV
}

// Record is one WAL record: exactly one of Ops (a batch commit), Reconfig,
// CreateVP, CreateEP, or Drop (DDL) is populated. Seq numbers records
// densely from 1 in commit order.
type Record struct {
	Seq      uint64
	Ops      []LoggedOp
	Reconfig *index.Config
	CreateVP *index.VPDef
	CreateEP *index.EPDef
	Drop     string
}

// sortedProps flattens a property map into key-sorted pairs so record
// encoding is deterministic.
func sortedProps(props map[string]storage.Value) []PropKV {
	if len(props) == 0 {
		return nil
	}
	kvs := make([]PropKV, 0, len(props))
	for k, v := range props {
		kvs = append(kvs, PropKV{Key: k, Val: v})
	}
	sort.Slice(kvs, func(i, j int) bool { return kvs[i].Key < kvs[j].Key })
	return kvs
}

// logLocked assigns the next sequence number to rec and hands it to the
// WAL hook; the counter only advances if the hook accepts. Callers hold
// m.mu and must abort their publication on error. With no hook configured
// this is a no-op (in-memory databases pay nothing).
func (m *Manager) logLocked(rec Record) error {
	if m.opts.WALAppend == nil {
		return nil
	}
	rec.Seq = m.seq + 1
	if err := m.opts.WALAppend(rec); err != nil {
		return err
	}
	m.seq++
	return nil
}
