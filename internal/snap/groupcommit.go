package snap

import "fmt"

// Group commit for singleton writes. A singleton commit (AddVertex /
// AddEdge / DeleteEdge outside an explicit Batch) pays a full publication:
// the writer mutex, one graph clone, one WAL record, and — on durable
// managers — one fsync. Under concurrent singleton load those costs
// serialize, so N goroutines pay N fsyncs back to back.
//
// CommitSingle coalesces them: requests enqueue on a small queue, the first
// arrival becomes the leader, and while the leader holds the writer mutex
// it drains everything that queued behind it into ONE batch — one clone,
// one record, one fsync, one snapshot publication for the whole group. The
// durability contract is unchanged: every coalesced op's record is on disk
// before any of them becomes visible, and each caller returns only after
// the publication that contains its op. With no concurrency the queue holds
// exactly the caller's own request and the behavior (epochs, sequence
// numbers, one op per record) is identical to a plain batch of one.
//
// Error isolation: staging errors are rare (validation); when any staged op
// fails, the whole group batch is aborted and each request re-runs solo, so
// an unaffected op still commits exactly as it would have without grouping.

// commitReq is one queued singleton commit.
type commitReq struct {
	stage func(*Batch) error
	err   error
	// done reports completion when ch closes; a request woken with done
	// still false has been promoted to leader and must drain the queue
	// itself (its own request is still in it). promoted records that ch
	// was already closed by the handoff, so the completion sweep must not
	// close it again.
	done     bool
	promoted bool
	ch       chan struct{}
}

// CommitSingle publishes one staged operation, coalescing with other
// concurrent CommitSingle calls into a single batch commit when possible.
// stage runs under the writer mutex (possibly on another goroutine's stack)
// and must only stage ops on the batch it is handed; it may run twice when
// a grouped neighbour's failure forces the solo fallback.
func (m *Manager) CommitSingle(stage func(*Batch) error) error {
	r := &commitReq{stage: stage, ch: make(chan struct{})}
	m.gqMu.Lock()
	m.gq = append(m.gq, r)
	lead := !m.gqLeader
	if lead {
		m.gqLeader = true
	}
	m.gqMu.Unlock()
	if !lead {
		<-r.ch
		if r.done {
			return r.err
		}
		// Promoted: the previous leader finished while we were queued.
	}
	m.leadCommits(r)
	return r.err
}

// leadCommits drains one queue generation as the group leader: it takes the
// writer mutex via Begin, stages every queued request on one shared batch,
// and commits them as one publication. own is the leader's own request
// (always a member of the drained generation). On exit it either hands
// leadership to the oldest still-queued request or clears the leader flag.
//
// A panicking stage never takes the group down silently: the panic is
// recovered, the offending request reports a panic-derived error (a panic
// cannot cross goroutines), the healthy requests re-run solo, and only
// when the panicking stage was the leader's own is the panic re-raised —
// on the one goroutine it belongs to, preserving ungrouped semantics.
func (m *Manager) leadCommits(own *commitReq) {
	b := m.Begin()
	m.gqMu.Lock()
	batch := m.gq
	m.gq = nil
	m.gqMu.Unlock()

	settled := false
	defer func() {
		// Hand off or release leadership, then wake this generation. The
		// promoted request re-enters leadCommits; everyone else is done.
		// A request that was itself promoted into this leadership had its
		// channel closed by the handoff already. If the leader is unwinding
		// from a panic (settled still false), no publication happened:
		// every request without a definitive outcome must report failure,
		// not a nil error it would mistake for a durable commit.
		m.gqMu.Lock()
		if len(m.gq) > 0 {
			next := m.gq[0]
			next.promoted = true
			close(next.ch)
		} else {
			m.gqLeader = false
		}
		m.gqMu.Unlock()
		for _, r := range batch {
			if !settled && r.err == nil {
				r.err = errGroupAborted
			}
			r.done = true
			if !r.promoted {
				close(r.ch)
			}
		}
	}()
	defer b.Abort() // no-op after Commit; releases the mutex on panic

	failed := false
	var ownPanic any
	for _, r := range batch {
		err, p := safeStage(r.stage, b)
		if p != nil && r == own {
			ownPanic = p
		}
		if r.err = err; err != nil {
			failed = true
		}
	}
	if !failed {
		if err := b.Commit(); err != nil {
			// The publication failed as a whole (WAL append, fold error):
			// every coalesced op shares its fate, exactly as if each had
			// hit the same failure solo.
			for _, r := range batch {
				r.err = err
			}
			settled = true
			return
		}
		if len(batch) > 1 {
			m.groupCommits.Add(1)
			m.groupedOps.Add(int64(len(batch)))
		}
		settled = true
		return
	}
	// A staged op failed (or panicked). The shared batch may be poisoned
	// (Commit would refuse) and half-staged, so re-run every request whose
	// stage succeeded as its own batch of one: failures stay isolated to
	// their op, successes still commit.
	b.Abort()
	for _, r := range batch {
		if r.err != nil {
			continue // its own stage already failed; keep that error
		}
		r.err = m.commitSolo(r.stage)
	}
	settled = true
	if ownPanic != nil {
		panic(ownPanic)
	}
}

// errGroupAborted is reported to coalesced requests left without a
// definitive outcome when their group leader unwound unexpectedly.
var errGroupAborted = fmt.Errorf("snap: group commit aborted before this op was published")

// commitSolo runs one staged op as its own batch (the ungrouped path). A
// stage panic here aborts the batch and propagates to the caller, exactly
// as a panic inside an ungrouped commit always did.
func (m *Manager) commitSolo(stage func(*Batch) error) error {
	b := m.Begin()
	defer b.Abort()
	if err := stage(b); err != nil {
		return err
	}
	return b.Commit()
}

// safeStage runs one stage, converting a panic into (error, panic value) so
// a buggy staged op cannot crash the leader servicing its neighbours.
func safeStage(stage func(*Batch) error, b *Batch) (err error, p any) {
	defer func() {
		if r := recover(); r != nil {
			p = r
			err = fmt.Errorf("snap: staged op panicked: %v", r)
		}
	}()
	return stage(b), nil
}
