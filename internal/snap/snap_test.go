package snap

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"github.com/aplusdb/aplus/internal/exec"
	"github.com/aplusdb/aplus/internal/index"
	"github.com/aplusdb/aplus/internal/storage"
)

func testGraph(nv, ne int, seed int64) *storage.Graph {
	rng := rand.New(rand.NewSource(seed))
	g := storage.NewGraph()
	g.AddVertices(nv, "A")
	labels := []string{"X", "Y"}
	for i := 0; i < ne; i++ {
		if _, err := g.AddEdge(storage.VertexID(rng.Intn(nv)), storage.VertexID(rng.Intn(nv)), labels[rng.Intn(2)]); err != nil {
			panic(err)
		}
	}
	return g
}

// edgeCountPlan counts every (vertex, out-edge) pair = the number of live
// edges, through the full fetch path (scan + primary EXTEND with delta
// splice).
func edgeCountPlan() *exec.Plan {
	return &exec.Plan{
		NumV: 2, NumE: 1,
		Ops: []exec.Op{
			&exec.ScanVertexOp{Slot: 0},
			&exec.ExtendIntersectOp{TargetSlot: 1, Lists: []exec.ListRef{
				{Kind: exec.ListPrimary, Dir: index.FW, OwnerVertexSlot: 0, EdgeSlot: 0},
			}},
		},
	}
}

func countEdges(s *Snapshot) int64 {
	rt := exec.NewRuntimeOver(s.Store(), s.Graph(), s.Delta())
	return edgeCountPlan().Count(rt)
}

func newTestManager(t *testing.T, g *storage.Graph, o Options) *Manager {
	t.Helper()
	m, err := NewManager(g, index.DefaultConfig(), o)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestCommitVisibility(t *testing.T) {
	g := testGraph(32, 100, 1)
	m := newTestManager(t, g, Options{})

	s0 := m.Acquire()
	if got := countEdges(s0); got != 100 {
		t.Fatalf("initial count %d want 100", got)
	}

	b := m.Begin()
	for i := 0; i < 10; i++ {
		if _, err := b.AddEdge(storage.VertexID(i), storage.VertexID(i+1), "X", nil); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.Commit(); err != nil {
		t.Fatal(err)
	}

	// The pinned snapshot still answers from its epoch.
	if got := countEdges(s0); got != 100 {
		t.Fatalf("pinned snapshot count changed to %d", got)
	}
	s0.Release()

	s1 := m.Acquire()
	defer s1.Release()
	if got := countEdges(s1); got != 110 {
		t.Fatalf("post-commit count %d want 110", got)
	}
	if s1.Delta().Pending() != 10 {
		t.Fatalf("pending %d want 10", s1.Delta().Pending())
	}
}

func TestAbortDiscards(t *testing.T) {
	g := testGraph(16, 50, 2)
	m := newTestManager(t, g, Options{})
	b := m.Begin()
	if _, err := b.AddEdge(0, 1, "X", nil); err != nil {
		t.Fatal(err)
	}
	b.Abort()
	s := m.Acquire()
	defer s.Release()
	if got := countEdges(s); got != 50 {
		t.Fatalf("count after abort %d want 50", got)
	}
}

func TestMergeFoldsDeltaAndPreservesCounts(t *testing.T) {
	g := testGraph(64, 300, 3)
	m := newTestManager(t, g, Options{})

	b := m.Begin()
	for i := 0; i < 40; i++ {
		if _, err := b.AddEdge(storage.VertexID(i%64), storage.VertexID((i*7+1)%64), "Y", nil); err != nil {
			t.Fatal(err)
		}
	}
	for e := 0; e < 10; e++ {
		if err := b.DeleteEdge(storage.EdgeID(e * 3)); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.Commit(); err != nil {
		t.Fatal(err)
	}

	sPre := m.Acquire()
	pre := countEdges(sPre)
	if pre != 300+40-10 {
		t.Fatalf("pre-merge count %d want 330", pre)
	}

	if err := m.Merge(); err != nil {
		t.Fatal(err)
	}
	// The pinned pre-merge snapshot is bit-identical after the fold.
	if got := countEdges(sPre); got != pre {
		t.Fatalf("pinned snapshot changed across merge: %d want %d", got, pre)
	}
	sPre.Release()

	sPost := m.Acquire()
	defer sPost.Release()
	if !sPost.Delta().Empty() {
		t.Fatal("delta not folded")
	}
	if got := countEdges(sPost); got != pre {
		t.Fatalf("post-merge count %d want %d", got, pre)
	}
	if st := m.Stats(); st.Merges == 0 {
		t.Fatal("merge not counted")
	}
}

func TestEpochRetirement(t *testing.T) {
	g := testGraph(16, 40, 4)
	m := newTestManager(t, g, Options{})
	s0 := m.Acquire()

	b := m.Begin()
	if _, err := b.AddEdge(0, 1, "X", nil); err != nil {
		t.Fatal(err)
	}
	if err := b.Commit(); err != nil {
		t.Fatal(err)
	}

	if got := m.Stats().RetiredEpochs; got != 0 {
		t.Fatalf("epoch retired while still pinned (retired=%d)", got)
	}
	s0.Release()
	if got := m.Stats().RetiredEpochs; got != 1 {
		t.Fatalf("retired %d want 1 after last unpin", got)
	}

	// An unpinned snapshot retires at publication time.
	b = m.Begin()
	if _, err := b.AddEdge(1, 2, "X", nil); err != nil {
		t.Fatal(err)
	}
	if err := b.Commit(); err != nil {
		t.Fatal(err)
	}
	if got := m.Stats().RetiredEpochs; got != 2 {
		t.Fatalf("retired %d want 2", got)
	}
}

func TestImpossibleCommitFoldsToFreshBase(t *testing.T) {
	g := testGraph(16, 40, 5)
	m := newTestManager(t, g, Options{})

	b := m.Begin()
	if _, err := b.AddEdge(2, 3, "NeverSeenLabel", nil); err != nil {
		t.Fatal(err)
	}
	if err := b.Commit(); err != nil {
		t.Fatal(err)
	}
	s := m.Acquire()
	defer s.Release()
	if !s.Delta().Empty() {
		t.Fatal("impossible commit must publish a fresh base with an empty delta")
	}
	if got := countEdges(s); got != 41 {
		t.Fatalf("count %d want 41", got)
	}
}

func TestMergeRebasesConcurrentCommits(t *testing.T) {
	// Exercise the rebase path deterministically: start with a dirty
	// snapshot, run Merge in a goroutine while committing more batches;
	// whatever interleaving happens, the final state must be exact.
	g := testGraph(64, 200, 6)
	m := newTestManager(t, g, Options{})
	b := m.Begin()
	for i := 0; i < 50; i++ {
		if _, err := b.AddEdge(storage.VertexID(i%64), storage.VertexID((i+9)%64), "X", nil); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.Commit(); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		if err := m.Merge(); err != nil {
			t.Error(err)
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 30; i++ {
			b := m.Begin()
			if _, err := b.AddEdge(storage.VertexID(i%64), storage.VertexID((i+17)%64), "Y", nil); err != nil {
				t.Error(err)
				b.Abort()
				return
			}
			if err := b.Commit(); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()
	if err := m.Merge(); err != nil {
		t.Fatal(err)
	}
	s := m.Acquire()
	defer s.Release()
	if got := countEdges(s); got != 200+50+30 {
		t.Fatalf("final count %d want 280", got)
	}
	if !s.Delta().Empty() {
		t.Fatal("final merge left a delta")
	}
}

// TestConcurrentReadersWriterMerger is the snapshot-isolation stress test:
// 8 reader goroutines continuously pin snapshots and require two counts of
// the same pinned snapshot to be bit-identical, while 1 writer commits
// insert/delete batches and the background merger repeatedly folds (tiny
// threshold). Run under -race this also proves the read path shares
// nothing mutable with commits or folds.
func TestConcurrentReadersWriterMerger(t *testing.T) {
	const (
		nv      = 96
		ne      = 400
		readers = 8
		batches = 40
		perB    = 16
	)
	g := testGraph(nv, ne, 7)
	m := newTestManager(t, g, Options{MergeThreshold: 32})

	var stop atomic.Bool
	var wg sync.WaitGroup
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for !stop.Load() {
				s := m.Acquire()
				n1 := countEdges(s)
				n2 := countEdges(s)
				if n1 != n2 {
					t.Errorf("reader %d: pinned snapshot count drifted: %d vs %d", r, n1, n2)
					s.Release()
					return
				}
				s.Release()
			}
		}(r)
	}

	rng := rand.New(rand.NewSource(99))
	inserted, deleted := 0, 0
	for i := 0; i < batches; i++ {
		b := m.Begin()
		for j := 0; j < perB; j++ {
			if _, err := b.AddEdge(storage.VertexID(rng.Intn(nv)), storage.VertexID(rng.Intn(nv)), "X", nil); err != nil {
				t.Fatal(err)
			}
			inserted++
		}
		if i%3 == 0 {
			// Delete a base edge that is never re-deleted (unique per i).
			if err := b.DeleteEdge(storage.EdgeID(i)); err != nil {
				t.Fatal(err)
			}
			deleted++
		}
		if err := b.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	stop.Store(true)
	wg.Wait()

	if err := m.Merge(); err != nil {
		t.Fatal(err)
	}
	s := m.Acquire()
	defer s.Release()
	want := int64(ne + inserted - deleted)
	if got := countEdges(s); got != want {
		t.Fatalf("final count %d want %d", got, want)
	}
	st := m.Stats()
	if st.PendingOps != 0 {
		t.Fatalf("pending %d after final merge", st.PendingOps)
	}
	t.Logf("epochs=%d retired=%d merges=%d", st.Epoch, st.RetiredEpochs, st.Merges)
}

func TestDDLUnderSnapshots(t *testing.T) {
	g := testGraph(32, 120, 8)
	m := newTestManager(t, g, Options{})

	// Dirty the delta, then create a view: the fold must run first so the
	// view covers the delta edges.
	b := m.Begin()
	for i := 0; i < 5; i++ {
		if _, err := b.AddEdge(storage.VertexID(i), storage.VertexID(i+1), "X", nil); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.Commit(); err != nil {
		t.Fatal(err)
	}
	pinned := m.Acquire()
	before := countEdges(pinned)

	def := index.VPDef{
		View: index.View1Hop{Name: "V1"},
		Dirs: []index.Direction{index.FW},
		Cfg:  index.DefaultConfig(),
	}
	if err := m.CreateVertexPartitioned(def); err != nil {
		t.Fatal(err)
	}
	if err := m.CreateVertexPartitioned(def); err == nil {
		t.Fatal("duplicate view name must fail")
	}
	s := m.Acquire()
	if len(s.Store().VertexIndexes()) != 1 {
		t.Fatalf("view not registered")
	}
	if !s.Delta().Empty() {
		t.Fatal("DDL must fold the delta before building the view")
	}
	if got := countEdges(s); got != 125 {
		t.Fatalf("count %d want 125", got)
	}
	s.Release()

	if got := countEdges(pinned); got != before {
		t.Fatalf("pinned snapshot disturbed by DDL: %d want %d", got, before)
	}
	pinned.Release()

	if ok, err := m.DropIndex("V1"); !ok || err != nil {
		t.Fatalf("drop failed: %v %v", ok, err)
	}
	if ok, err := m.DropIndex("V1"); ok || err != nil {
		t.Fatalf("double drop succeeded: %v %v", ok, err)
	}

	if err := m.Reconfigure(index.Config{}); err != nil {
		t.Fatal(err)
	}
	s2 := m.Acquire()
	defer s2.Release()
	if got := countEdges(s2); got != 125 {
		t.Fatalf("count after reconfigure %d want 125", got)
	}
}

func TestStatsString(t *testing.T) {
	g := testGraph(8, 10, 9)
	m := newTestManager(t, g, Options{})
	st := m.Stats()
	if st.Epoch == 0 {
		t.Fatal("epoch must start at 1")
	}
	_ = fmt.Sprintf("%+v", st)
}
