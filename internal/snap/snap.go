// Package snap provides epoch-based snapshot isolation over the A+ index
// store. The current database state is one immutable Snapshot — a frozen
// base Store (graph + primary + secondary indexes), the snapshot's graph
// (which may extend the base's build graph), and a Delta overlay of
// committed-but-unmerged writes — published through an atomic pointer.
//
// Readers pin the current snapshot with Manager.Acquire (one atomic load +
// one atomic increment; no mutex anywhere on the read path) and release it
// when done; a pinned snapshot never changes, so a query observes one
// consistent state for its whole run, bit-identical no matter how many
// commits or merges land concurrently. Writers batch their changes
// (Manager.Begin / Batch.Commit): a batch stages appends on a copy-on-write
// clone of the graph and a successor Delta, then publishes the new snapshot
// with one atomic swap — readers never block on writers and writers never
// wait for readers to drain. A background merger folds large deltas back
// into block-packed CSR form (Manager.Merge) and republishes, rebasing any
// ops committed during the fold. Superseded epochs are retired once their
// last reader unpins (Manager.Stats observability; memory itself is
// reclaimed by the garbage collector).
package snap

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"github.com/aplusdb/aplus/internal/index"
	"github.com/aplusdb/aplus/internal/obs"
	"github.com/aplusdb/aplus/internal/storage"
)

// Options configure a Manager.
type Options struct {
	// MergeThreshold is the number of pending delta ops after which a
	// commit schedules a merge (<= 0 = index.DefaultMergeThreshold).
	MergeThreshold int
	// SyncMerge folds deltas synchronously inside the committing goroutine
	// instead of in the background (deterministic tests, benchmarks of the
	// fold itself).
	SyncMerge bool

	// IncrementalDirtyFraction tunes when a fold patches the frozen base
	// incrementally instead of rebuilding it: the delta's dirty (direction,
	// owner) lists divided by the 2·|V| primary lists must not exceed it.
	// 0 uses index.DefaultIncrementalDirtyFraction; a negative value
	// disables incremental folds entirely (every fold is a full rebuild);
	// >= 1 always attempts the incremental path.
	IncrementalDirtyFraction float64

	// WALAppend, when set, makes the manager durable: it is invoked under
	// the writer mutex immediately before every publication that carries
	// logged work (batch ops or a DDL descriptor), and the publication is
	// aborted when it returns an error — the durability point is "record
	// accepted". The hook must be fast relative to the fold threshold but
	// may block (it typically fsyncs).
	WALAppend func(Record) error
	// AfterFold, when set, is invoked after every successful Merge with
	// the delta-free snapshot the fold observed or published, and no
	// manager locks held — the checkpointing trigger. The snapshot may
	// already be superseded by newer commits; it is immutable either way,
	// so serializing it is always safe and always covers every record up
	// to its Seq. An AfterFold error is NON-FATAL: the fold itself already
	// published and the delta overlay keeps serving, so the manager only
	// records the failure (Stats) and retries the hook in the background
	// with capped exponential backoff + jitter until it succeeds or the
	// manager closes.
	AfterFold func(*Snapshot) error
	// RetryBackoff is the initial delay between background retries of a
	// failed fold or AfterFold hook (<= 0 = DefaultRetryBackoff). Each
	// failure doubles it, capped at 50x, with ±50% jitter.
	RetryBackoff time.Duration
	// StartSeq and StartEpoch initialize the record-sequence and epoch
	// counters, so a recovered manager continues the numbering of the
	// checkpoint it was restored from.
	StartSeq   uint64
	StartEpoch uint64

	// WALTailBytes, when set, reports the write-ahead-log bytes past the
	// newest checkpoint's coverage — the portion recovery must replay.
	// Commits then schedule a fold as soon as the tail reaches
	// FoldWALBytes even before MergeThreshold pending ops accumulate:
	// every fold checkpoints (AfterFold), which re-covers the tail, so
	// recovery time stays bounded even under vertex-heavy or
	// property-heavy workloads whose op count grows slowly relative to
	// record bytes. The tail — not the whole file — is the right trigger:
	// truncation retains the prefix covering the fallback checkpoint, so
	// total size lags one checkpoint behind and would re-trigger a
	// redundant fold right after every budget crossing.
	WALTailBytes func() int64
	// FoldWALBytes is the WAL tail size that triggers a fold when
	// WALTailBytes is set (<= 0 = DefaultFoldWALBytes).
	FoldWALBytes int64
}

// DefaultFoldWALBytes bounds the write-ahead log between folds when the
// manager is durable and no explicit budget is configured.
const DefaultFoldWALBytes = 64 << 20

// DefaultRetryBackoff is the initial delay between background retries of a
// failed fold or checkpoint; retryBackoffCap bounds the doubling.
const (
	DefaultRetryBackoff = 100 * time.Millisecond
	retryBackoffCapMult = 50
)

func (o Options) threshold() int {
	if o.MergeThreshold <= 0 {
		return index.DefaultMergeThreshold
	}
	return o.MergeThreshold
}

func (o Options) retryBackoff() time.Duration {
	if o.RetryBackoff <= 0 {
		return DefaultRetryBackoff
	}
	return o.RetryBackoff
}

// Snapshot is one immutable epoch of the database: the frozen base store,
// the snapshot's graph, and the delta overlay. All accessors are safe from
// any number of goroutines for as long as the snapshot is pinned.
type Snapshot struct {
	epoch uint64
	// seq is the sequence number of the last WAL record this snapshot
	// includes (0 when the manager is not durable). Folds and merges
	// publish new epochs without advancing it; logged commits and DDL do.
	seq uint64
	// baseGen identifies the frozen base the delta is expressed against;
	// merges and reconfigurations bump it, commits preserve it.
	baseGen uint64
	store   *index.Store
	graph   *storage.Graph
	delta   *index.Delta
	mgr     *Manager

	pins       atomic.Int64
	superseded atomic.Bool
	retired    atomic.Bool
}

// Epoch returns the snapshot's publication number (monotonically
// increasing across commits, merges, and DDL).
func (s *Snapshot) Epoch() uint64 { return s.epoch }

// Seq returns the sequence number of the last WAL record included in this
// snapshot (0 for non-durable managers). A checkpoint of this snapshot
// covers exactly the records with Seq <= this value.
func (s *Snapshot) Seq() uint64 { return s.seq }

// Store returns the frozen base store. It must never be mutated.
func (s *Snapshot) Store() *index.Store { return s.store }

// Graph returns the snapshot's graph, a superset of the base store's build
// graph. It must never be mutated.
func (s *Snapshot) Graph() *storage.Graph { return s.graph }

// Delta returns the snapshot's overlay of unmerged writes (never nil; may
// be empty).
func (s *Snapshot) Delta() *index.Delta { return s.delta }

// Release unpins the snapshot. Each Acquire must be paired with exactly one
// Release; after Release the snapshot must not be read through again.
func (s *Snapshot) Release() {
	if s.pins.Add(-1) == 0 && s.superseded.Load() {
		s.retire()
	}
}

func (s *Snapshot) retire() {
	if s.retired.CompareAndSwap(false, true) {
		s.mgr.retired.Add(1)
	}
}

// Manager owns the snapshot chain: it publishes new epochs (commits,
// merges, DDL) under a writer mutex and hands the current epoch to readers
// with no locking at all.
type Manager struct {
	opts Options

	// mu serializes all publications: batches hold it from Begin to
	// Commit/Abort (grouped commit), merges and DDL take it briefly to
	// swap in their result. Readers never touch it.
	mu  sync.Mutex
	cur atomic.Pointer[Snapshot]
	// epoch and baseGen are the publication counters, and seq the logged-
	// record counter, all guarded by mu.
	epoch   uint64
	seq     uint64
	baseGen uint64

	// mergeMu serializes merges and DDL against each other (their builds
	// run outside mu so commits keep flowing).
	mergeMu sync.Mutex
	merging atomic.Bool

	// closeMu guards closed and the merge WaitGroup increment so Close can
	// wait for the in-flight background fold without racing a new one.
	// closeCh is closed alongside, interrupting a merger sleeping out a
	// retry backoff.
	closeMu sync.Mutex
	closed  bool
	closeCh chan struct{}
	mergeWG sync.WaitGroup

	retired atomic.Int64
	merges  atomic.Int64
	// incFolds, lastFoldNanos, and lastFoldDirty observe the incremental
	// fold path: how many published folds were incremental patches, how
	// long the most recent fold's build took, and how many dirty
	// (direction, owner) lists it carried.
	incFolds      atomic.Int64
	lastFoldNanos atomic.Int64
	lastFoldDirty atomic.Int64
	// foldHist accumulates every published fold's build duration.
	foldHist obs.Histogram
	// mergeErr records the most recent background fold failure (cleared on
	// the next success) so it is observable via Stats; synchronous callers
	// (Flush) get the error returned directly.
	mergeErr atomic.Pointer[string]
	// afterFoldErr records the most recent AfterFold (checkpoint) failure;
	// while set, the background merger keeps retrying the hook with
	// backoff. mergeRetries counts those retries and retryBackoff holds
	// the delay currently in force (0 when healthy) — both for Stats.
	afterFoldErr atomic.Pointer[string]
	mergeRetries atomic.Int64
	retryBackoff atomic.Int64

	// walFoldTail is the WAL tail size at which the last tail-triggered
	// fold was scheduled (walFoldDue's once-per-budget-increment arming).
	walFoldTail atomic.Int64

	// gqMu guards the singleton-commit group queue (CommitSingle): waiting
	// requests and whether a leader is currently draining them.
	gqMu     sync.Mutex
	gq       []*commitReq
	gqLeader bool
	// groupCommits counts publications that coalesced 2+ singleton commits
	// into one batch (one WAL record, one fsync); groupedOps counts the
	// singleton ops those publications carried.
	groupCommits atomic.Int64
	groupedOps   atomic.Int64
}

// NewManager builds the primary indexes over g under cfg and publishes
// epoch 1. The graph must not be mutated by the caller afterwards.
func NewManager(g *storage.Graph, cfg index.Config, o Options) (*Manager, error) {
	s, err := index.NewStore(g, cfg)
	if err != nil {
		return nil, err
	}
	return NewManagerFromStore(s, g, o), nil
}

// NewManagerFromStore publishes the first snapshot over an already-built
// frozen store (a decoded checkpoint image, typically) without rebuilding
// anything. The epoch and record-sequence counters continue from
// o.StartEpoch/o.StartSeq. Neither st nor g may be mutated by the caller
// afterwards.
func NewManagerFromStore(st *index.Store, g *storage.Graph, o Options) *Manager {
	m := &Manager{opts: o, closeCh: make(chan struct{})}
	m.epoch = o.StartEpoch
	m.seq = o.StartSeq
	m.mu.Lock()
	m.publishBaseLocked(st, g, index.NewDelta())
	m.mu.Unlock()
	return m
}

// Close stops the background merger and waits for an in-flight fold to
// finish. It does not flush pending deltas (they live in memory; durable
// callers replay them from the WAL on the next open). The manager must not
// be used for writes afterwards; reads of already-pinned snapshots remain
// valid.
func (m *Manager) Close() {
	m.closeMu.Lock()
	if !m.closed {
		m.closed = true
		close(m.closeCh)
	}
	m.closeMu.Unlock()
	m.mergeWG.Wait()
}

// Acquire pins and returns the current snapshot. The read path is two
// atomic operations; there is no lock for a writer to hold.
func (m *Manager) Acquire() *Snapshot {
	s := m.cur.Load()
	s.pins.Add(1)
	return s
}

// Current returns the current snapshot without pinning it — for metadata
// peeks (epoch, pending counts) only, never for reading data through.
func (m *Manager) Current() *Snapshot { return m.cur.Load() }

// publishLocked swaps ns in as the current snapshot. Callers hold mu and
// have set ns.baseGen.
func (m *Manager) publishLocked(ns *Snapshot) {
	m.epoch++
	ns.epoch = m.epoch
	// Every publication under mu includes all records logged so far:
	// logged commits and DDL bump m.seq just before publishing, folds and
	// merges republish existing state without logging.
	ns.seq = m.seq
	ns.mgr = m
	old := m.cur.Swap(ns)
	if old != nil {
		old.superseded.Store(true)
		if old.pins.Load() == 0 {
			old.retire()
		}
	}
}

// publishBaseLocked publishes a snapshot with a brand-new frozen base
// (initial build, merge, reconfigure), bumping the base generation.
func (m *Manager) publishBaseLocked(st *index.Store, g *storage.Graph, d *index.Delta) {
	m.baseGen++
	m.publishLocked(&Snapshot{baseGen: m.baseGen, store: st, graph: g, delta: d})
}

// Stats is a point-in-time observation of the snapshot chain.
type Stats struct {
	// Epoch is the current snapshot's publication number.
	Epoch uint64
	// Pins is the current snapshot's reader count (transient).
	Pins int64
	// PendingOps is the current delta's buffered insert+delete count.
	PendingOps int
	// RetiredEpochs counts superseded snapshots whose last reader has
	// unpinned (or that had no readers when superseded).
	RetiredEpochs int64
	// Merges counts delta folds published since the manager was built.
	Merges int64
	// FoldsTotal is Merges under its clearer name: every published fold,
	// incremental or full, background or synchronous.
	FoldsTotal int64
	// IncrementalFolds counts published folds that patched the frozen base
	// incrementally (O(delta)) instead of rebuilding it (O(E)).
	IncrementalFolds int64
	// LastFoldDuration is the build time of the most recent fold attempt.
	LastFoldDuration time.Duration
	// LastFoldDirtyOwners is the number of dirty (direction, owner) lists
	// the most recent fold carried.
	LastFoldDirtyOwners int
	// GroupCommits counts publications that coalesced 2+ concurrent
	// singleton commits into one batch (one WAL record, one fsync);
	// GroupedOps is the total number of singleton ops they carried.
	GroupCommits int64
	GroupedOps   int64
	// LastMergeError is the most recent background fold failure ("" when
	// the last fold succeeded). A persistent error here means the delta
	// cannot currently be folded and pending ops will keep accumulating.
	LastMergeError string
	// MergeRetries counts background retries of a failed fold or
	// AfterFold (checkpoint) hook; RetryBackoff is the delay currently in
	// force between them (0 when the merger is healthy).
	MergeRetries int64
	RetryBackoff time.Duration
	// FoldHist is the latency histogram of every published fold's build.
	FoldHist obs.HistStats
}

// Stats reports chain observability counters.
func (m *Manager) Stats() Stats {
	s := m.cur.Load()
	folds := m.merges.Load()
	st := Stats{
		Epoch:               s.epoch,
		Pins:                s.pins.Load(),
		PendingOps:          s.delta.Pending(),
		RetiredEpochs:       m.retired.Load(),
		Merges:              folds,
		FoldsTotal:          folds,
		IncrementalFolds:    m.incFolds.Load(),
		LastFoldDuration:    time.Duration(m.lastFoldNanos.Load()),
		LastFoldDirtyOwners: int(m.lastFoldDirty.Load()),
		GroupCommits:        m.groupCommits.Load(),
		GroupedOps:          m.groupedOps.Load(),
	}
	if e := m.mergeErr.Load(); e != nil {
		st.LastMergeError = *e
	}
	st.MergeRetries = m.mergeRetries.Load()
	st.RetryBackoff = time.Duration(m.retryBackoff.Load())
	st.FoldHist = m.foldHist.Snapshot()
	return st
}

// Batch stages a group of writes against a private copy-on-write clone of
// the current snapshot and publishes them atomically on Commit (grouped
// commit: one snapshot swap per batch, however many ops it carries).
// A Batch holds the manager's writer mutex from Begin until Commit or
// Abort, so batches from different goroutines serialize; readers are
// unaffected throughout. Batches may only add entities, set properties on
// entities they added, and delete edges — mutating pre-existing entities'
// properties would race pinned readers.
type Batch struct {
	m    *Manager
	base *Snapshot
	g    *storage.Graph
	db   *index.DeltaBuilder
	done bool
	// ops records every successfully staged operation for the write-ahead
	// log, in staging order; only populated when the manager is durable.
	ops []LoggedOp
	// stageErr poisons the batch: a failed staging op can leave the graph
	// clone half-staged (e.g. an edge appended but its property set
	// rejected, so it never reached the delta builder), and publishing
	// that state would let scan-anchored plans see entities index-anchored
	// plans do not. Commit refuses once set, even if the caller swallowed
	// the op's error.
	stageErr error
}

// Begin starts a batch, taking the writer mutex until Commit or Abort.
func (m *Manager) Begin() *Batch {
	m.mu.Lock()
	s := m.cur.Load()
	g := s.graph.Clone()
	return &Batch{
		m:    m,
		base: s,
		g:    g,
		db:   index.NewDeltaBuilder(s.delta, s.store.Primary(), g),
	}
}

// AddVertex appends a vertex with properties to the staged state. A
// property error poisons the batch (see Commit).
func (b *Batch) AddVertex(label string, props map[string]storage.Value) (storage.VertexID, error) {
	v := b.g.AddVertex(label)
	for k, val := range props {
		if err := b.g.SetVertexProp(v, k, val); err != nil {
			return v, b.poison(err)
		}
	}
	if b.m.opts.WALAppend != nil {
		b.ops = append(b.ops, LoggedOp{Kind: OpAddVertex, Label: label, V: v, Props: sortedProps(props)})
	}
	return v, nil
}

// AddEdge appends an edge with properties to the staged state and buffers
// it in the delta overlay (properties are set before buffering, since
// partition codes may derive from them). A property error poisons the
// batch: the appended edge never reaches the overlay, so publishing would
// desynchronize scans from index fetches (see Commit).
func (b *Batch) AddEdge(src, dst storage.VertexID, label string, props map[string]storage.Value) (storage.EdgeID, error) {
	e, err := b.g.AddEdge(src, dst, label)
	if err != nil {
		return 0, err // nothing staged; the batch stays usable
	}
	for k, val := range props {
		if err := b.g.SetEdgeProp(e, k, val); err != nil {
			return e, b.poison(err)
		}
	}
	b.db.Insert(e)
	if b.m.opts.WALAppend != nil {
		b.ops = append(b.ops, LoggedOp{Kind: OpAddEdge, Label: label, Src: src, Dst: dst, E: e, Props: sortedProps(props)})
	}
	return e, nil
}

// poison records the first staging failure and returns it.
func (b *Batch) poison(err error) error {
	if b.stageErr == nil {
		b.stageErr = err
	}
	return err
}

// DeleteEdge stages an edge deletion.
func (b *Batch) DeleteEdge(e storage.EdgeID) error {
	if int(e) >= b.g.NumEdges() {
		return fmt.Errorf("snap: edge %d out of range", e)
	}
	b.db.Delete(e)
	if b.m.opts.WALAppend != nil {
		b.ops = append(b.ops, LoggedOp{Kind: OpDeleteEdge, E: e})
	}
	return nil
}

// Graph exposes the staged graph clone for property reads during staging.
// Callers must not mutate it directly.
func (b *Batch) Graph() *storage.Graph { return b.g }

// Abort discards the staged state and releases the writer mutex.
func (b *Batch) Abort() {
	if b.done {
		return
	}
	b.done = true
	b.m.mu.Unlock()
}

// Commit publishes the staged state as the next snapshot epoch and
// releases the writer mutex. When the staged state cannot be expressed as
// an overlay — an edge carries a categorical or sort value unknown to the
// frozen base, or the batch interned a label the base catalog has never
// seen (the planner resolves label names against the base, so a buffered
// commit would leave such entities invisible) — the whole pending state,
// this batch plus any earlier unmerged delta, is folded into a fresh base
// instead, still without blocking readers. Crossing the merge threshold
// schedules a fold (background by default, inline under Options.SyncMerge).
func (b *Batch) Commit() error {
	if b.done {
		return fmt.Errorf("snap: batch already finished")
	}
	b.done = true
	m := b.m
	if b.stageErr != nil {
		m.mu.Unlock()
		return fmt.Errorf("snap: batch not committed, a staged op failed: %w", b.stageErr)
	}
	// logOps is the durability point: the batch's record must be on disk
	// before the publication makes it visible. It runs after every
	// fallible step — a logged-but-unpublished record would be replayed as
	// a phantom commit on recovery — and a hook failure aborts the commit
	// with the in-memory state untouched.
	logOps := func() error {
		if len(b.ops) == 0 {
			return nil
		}
		if err := m.logLocked(Record{Ops: b.ops}); err != nil {
			return fmt.Errorf("snap: batch not committed, WAL append failed: %w", err)
		}
		return nil
	}
	baseCat := b.base.store.Graph().Catalog()
	grewCatalog := b.g.Catalog().NumVertexLabels() > baseCat.NumVertexLabels() ||
		b.g.Catalog().NumEdgeLabels() > baseCat.NumEdgeLabels()
	if b.db.Impossible() || grewCatalog {
		d := b.db.Freeze()
		b.g.ApplyTombstones(d.DeletedEdges())
		st, err := b.base.store.CloneRebuilt(b.g, b.base.store.Primary().Config())
		if err != nil {
			m.mu.Unlock()
			return err
		}
		if err := logOps(); err != nil {
			m.mu.Unlock()
			return err
		}
		m.publishBaseLocked(st, b.g, index.NewDelta())
		m.merges.Add(1)
		m.mu.Unlock()
		return nil
	}
	d := b.db.Freeze()
	if err := logOps(); err != nil {
		m.mu.Unlock()
		return err
	}
	m.publishLocked(&Snapshot{baseGen: b.base.baseGen, store: b.base.store, graph: b.g, delta: d})
	m.mu.Unlock()
	if d.Pending() >= m.opts.threshold() || m.walFoldDue(d.Pending()) {
		m.scheduleMerge()
	}
	return nil
}

// walFoldDue reports whether the write-ahead log's un-checkpointed tail
// has outgrown its budget and there is pending work a fold (and the
// checkpoint it triggers) could re-cover. A trigger arms only once per
// budget increment: if the fold it scheduled cannot shrink the tail —
// recovery replay (checkpoints gated until SetReady) or a persistently
// failing checkpoint writer — the next trigger waits for another full
// budget of growth instead of re-scheduling a fold on every commit.
func (m *Manager) walFoldDue(pending int) bool {
	if pending == 0 || m.opts.WALTailBytes == nil {
		return false
	}
	limit := m.opts.FoldWALBytes
	if limit <= 0 {
		limit = DefaultFoldWALBytes
	}
	tail := m.opts.WALTailBytes()
	last := m.walFoldTail.Load()
	if tail < last {
		// The tail shrank (a checkpoint re-covered it): re-arm from zero.
		m.walFoldTail.CompareAndSwap(last, 0)
		last = 0
	}
	if tail >= limit && tail-last >= limit {
		m.walFoldTail.Store(tail)
		return true
	}
	return false
}
