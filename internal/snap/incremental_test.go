package snap

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/aplusdb/aplus/internal/index"
	"github.com/aplusdb/aplus/internal/storage"
)

// TestMergeUsesIncrementalFold pins the merger's path choice: a small delta
// over a large-enough base folds incrementally (observable via Stats), the
// folded state answers identically, and forcing the dirtiness fraction
// negative falls back to full rebuilds.
func TestMergeUsesIncrementalFold(t *testing.T) {
	g := testGraph(256, 800, 5)
	m := newTestManager(t, g, Options{IncrementalDirtyFraction: 1.0})

	b := m.Begin()
	for i := 0; i < 10; i++ {
		if _, err := b.AddEdge(storage.VertexID(i), storage.VertexID(i+1), "X", nil); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.DeleteEdge(3); err != nil {
		t.Fatal(err)
	}
	if err := b.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := m.Merge(); err != nil {
		t.Fatal(err)
	}
	st := m.Stats()
	if st.FoldsTotal != 1 || st.IncrementalFolds != 1 {
		t.Fatalf("folds=%d incremental=%d, want 1/1", st.FoldsTotal, st.IncrementalFolds)
	}
	if st.LastFoldDirtyOwners == 0 || st.LastFoldDuration <= 0 {
		t.Fatalf("fold observability missing: dirty=%d dur=%v", st.LastFoldDirtyOwners, st.LastFoldDuration)
	}
	s := m.Acquire()
	defer s.Release()
	if !s.Delta().Empty() {
		t.Fatal("delta not folded")
	}
	if got := countEdges(s); got != 809 {
		t.Fatalf("post-fold count %d want 809", got)
	}

	// Disabled incremental path: the same shape folds fully.
	m2 := newTestManager(t, testGraph(256, 800, 5), Options{IncrementalDirtyFraction: -1})
	b2 := m2.Begin()
	if _, err := b2.AddEdge(1, 2, "X", nil); err != nil {
		t.Fatal(err)
	}
	if err := b2.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := m2.Merge(); err != nil {
		t.Fatal(err)
	}
	if st := m2.Stats(); st.FoldsTotal != 1 || st.IncrementalFolds != 0 {
		t.Fatalf("disabled path: folds=%d incremental=%d, want 1/0", st.FoldsTotal, st.IncrementalFolds)
	}
}

// TestIncrementalFoldParityUnderSecondaries folds randomized deltas through
// the manager with secondaries registered, comparing counts between a
// forced-incremental manager and a forced-full one at every step.
func TestIncrementalFoldParityUnderSecondaries(t *testing.T) {
	build := func(frac float64) *Manager {
		m := newTestManager(t, testGraph(128, 600, 9), Options{IncrementalDirtyFraction: frac, SyncMerge: true, MergeThreshold: 25})
		if err := m.CreateVertexPartitioned(index.VPDef{
			View: index.View1Hop{Name: "all"},
			Dirs: []index.Direction{index.FW, index.BW},
			Cfg:  index.DefaultConfig(),
		}); err != nil {
			t.Fatal(err)
		}
		return m
	}
	mi, mf := build(1.0), build(-1)
	apply := func(m *Manager, i int) {
		b := m.Begin()
		if i%5 == 4 {
			if err := b.DeleteEdge(storage.EdgeID(i)); err != nil {
				t.Fatal(err)
			}
		} else {
			for k := 0; k < 7; k++ {
				if _, err := b.AddEdge(storage.VertexID((i*13+k)%128), storage.VertexID((i*29+k*3)%128), "Y", nil); err != nil {
					t.Fatal(err)
				}
			}
		}
		if err := b.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 40; i++ {
		apply(mi, i)
		apply(mf, i)
		si, sf := mi.Acquire(), mf.Acquire()
		ci, cf := countEdges(si), countEdges(sf)
		si.Release()
		sf.Release()
		if ci != cf {
			t.Fatalf("step %d: incremental manager counts %d, full manager %d", i, ci, cf)
		}
	}
	if st := mi.Stats(); st.IncrementalFolds == 0 {
		t.Fatal("forced-incremental manager never folded incrementally")
	}
	if st := mf.Stats(); st.IncrementalFolds != 0 {
		t.Fatal("forced-full manager folded incrementally")
	}
}

// TestReadersPinnedAcrossIncrementalFolds is the -race stress: readers pin
// snapshots and count through the full fetch path while a writer commits
// and the background merger folds incrementally; every pinned read must be
// bit-identical no matter how many incremental folds and rebases land.
func TestReadersPinnedAcrossIncrementalFolds(t *testing.T) {
	g := testGraph(192, 700, 11)
	m := newTestManager(t, g, Options{MergeThreshold: 20, IncrementalDirtyFraction: 1.0})

	var stop atomic.Bool
	var wg sync.WaitGroup
	errCh := make(chan error, 16)
	for r := 0; r < 8; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				s := m.Acquire()
				c1 := countEdges(s)
				c2 := countEdges(s)
				if c1 != c2 {
					errCh <- fmt.Errorf("pinned snapshot count drifted: %d then %d", c1, c2)
					s.Release()
					return
				}
				s.Release()
			}
		}()
	}
	for i := 0; i < 150; i++ {
		b := m.Begin()
		for k := 0; k < 5; k++ {
			if _, err := b.AddEdge(storage.VertexID((i*17+k)%192), storage.VertexID((i*31+k*7)%192), "X", nil); err != nil {
				t.Fatal(err)
			}
		}
		if i%4 == 1 {
			if err := b.DeleteEdge(storage.EdgeID(i % 700)); err != nil {
				t.Fatal(err)
			}
		}
		if err := b.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.Merge(); err != nil {
		t.Fatal(err)
	}
	stop.Store(true)
	wg.Wait()
	m.Close()
	select {
	case err := <-errCh:
		t.Fatal(err)
	default:
	}
	if st := m.Stats(); st.IncrementalFolds == 0 {
		t.Fatalf("stress never took the incremental path (folds=%d)", st.FoldsTotal)
	}
}

// TestCommitSingleGroups pins the group-commit satellite: singleton commits
// issued while the writer mutex is busy coalesce into one publication, all
// become visible, and the stats record the coalescing.
func TestCommitSingleGroups(t *testing.T) {
	g := testGraph(64, 100, 13)
	m := newTestManager(t, g, Options{})

	// Hold the writer mutex so every CommitSingle queues behind it.
	gate := m.Begin()
	const n = 12
	var wg sync.WaitGroup
	started := make(chan struct{}, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			started <- struct{}{}
			err := m.CommitSingle(func(b *Batch) error {
				_, err := b.AddEdge(storage.VertexID(i), storage.VertexID(i+1), "X", nil)
				return err
			})
			if err != nil {
				t.Error(err)
			}
		}(i)
	}
	for i := 0; i < n; i++ {
		<-started
	}
	// Give the goroutines time to enqueue (started is signalled just before
	// CommitSingle; the queue append is its first action).
	for deadline := time.Now().Add(2 * time.Second); ; {
		m.gqMu.Lock()
		queued := len(m.gq)
		m.gqMu.Unlock()
		if queued == n || time.Now().After(deadline) {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if err := gate.Commit(); err != nil {
		t.Fatal(err)
	}
	wg.Wait()

	s := m.Acquire()
	defer s.Release()
	if got := countEdges(s); got != 100+n {
		t.Fatalf("count %d want %d", got, 100+n)
	}
	st := m.Stats()
	if st.GroupCommits == 0 || st.GroupedOps < 2 {
		t.Fatalf("no grouping observed: commits=%d ops=%d", st.GroupCommits, st.GroupedOps)
	}
}

// TestCommitSingleErrorIsolation: a failing singleton grouped with healthy
// ones must not take them down — the healthy ops commit, the bad one gets
// its own error.
func TestCommitSingleErrorIsolation(t *testing.T) {
	g := testGraph(32, 40, 17)
	m := newTestManager(t, g, Options{})

	gate := m.Begin()
	var wg sync.WaitGroup
	errs := make([]error, 3)
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = m.CommitSingle(func(b *Batch) error {
				if i == 1 {
					_, err := b.AddEdge(storage.VertexID(1000), 0, "X", nil) // out of range
					return err
				}
				_, err := b.AddEdge(storage.VertexID(i), storage.VertexID(i+1), "X", nil)
				return err
			})
		}(i)
	}
	for deadline := time.Now().Add(2 * time.Second); ; {
		m.gqMu.Lock()
		queued := len(m.gq)
		m.gqMu.Unlock()
		if queued == 3 || time.Now().After(deadline) {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if err := gate.Commit(); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if errs[1] == nil {
		t.Fatal("invalid op committed without error")
	}
	if errs[0] != nil || errs[2] != nil {
		t.Fatalf("healthy grouped ops failed: %v %v", errs[0], errs[2])
	}
	s := m.Acquire()
	defer s.Release()
	if got := countEdges(s); got != 42 {
		t.Fatalf("count %d want 42 (two healthy ops)", got)
	}
}

// TestCommitSinglePanicIsolation: when one coalesced stage panics, the
// healthy neighbour must still commit (solo fallback) and the panicking
// caller must see its own failure — a panic if it was the leader, a
// panic-derived error otherwise. Nobody ever gets a silent nil for an
// uncommitted op.
func TestCommitSinglePanicIsolation(t *testing.T) {
	g := testGraph(32, 100, 23)
	m := newTestManager(t, g, Options{})

	gate := m.Begin()
	var wg sync.WaitGroup
	var healthyErr, panickerErr error
	var panickerPanicked atomic.Bool
	wg.Add(2)
	go func() {
		defer wg.Done()
		defer func() {
			if recover() != nil {
				panickerPanicked.Store(true)
			}
		}()
		panickerErr = m.CommitSingle(func(b *Batch) error { panic("staged op bug") })
	}()
	go func() {
		defer wg.Done()
		healthyErr = m.CommitSingle(func(b *Batch) error {
			_, err := b.AddEdge(1, 2, "X", nil)
			return err
		})
	}()
	for deadline := time.Now().Add(2 * time.Second); ; {
		m.gqMu.Lock()
		queued := len(m.gq)
		m.gqMu.Unlock()
		if queued == 2 || time.Now().After(deadline) {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if err := gate.Commit(); err != nil {
		t.Fatal(err)
	}
	wg.Wait()

	if healthyErr != nil {
		t.Fatalf("healthy neighbour failed: %v", healthyErr)
	}
	s := m.Acquire()
	defer s.Release()
	if got := countEdges(s); got != 101 {
		t.Fatalf("count %d want 101 (healthy op must commit, panicked op must not)", got)
	}
	if !panickerPanicked.Load() && panickerErr == nil {
		t.Fatal("panicking op was acknowledged with a nil error")
	}

	// The manager stays usable: a later singleton commits normally.
	if err := m.CommitSingle(func(b *Batch) error {
		_, err := b.AddEdge(2, 3, "X", nil)
		return err
	}); err != nil {
		t.Fatal(err)
	}
	s2 := m.Acquire()
	defer s2.Release()
	if got := countEdges(s2); got != 102 {
		t.Fatalf("post-panic commit count %d want 102", got)
	}
}

// TestWALBytesSchedulesFold: with a one-byte WAL-tail budget, a single
// committed op triggers a fold even though MergeThreshold is far away.
func TestWALBytesSchedulesFold(t *testing.T) {
	g := testGraph(32, 60, 19)
	var walSize atomic.Int64
	m := newTestManager(t, g, Options{
		MergeThreshold: 1 << 30,
		SyncMerge:      true,
		WALAppend:      func(Record) error { walSize.Add(64); return nil },
		WALTailBytes:   walSize.Load,
		FoldWALBytes:   1,
	})
	b := m.Begin()
	if _, err := b.AddEdge(0, 1, "X", nil); err != nil {
		t.Fatal(err)
	}
	if err := b.Commit(); err != nil {
		t.Fatal(err)
	}
	s := m.Acquire()
	defer s.Release()
	if !s.Delta().Empty() {
		t.Fatal("WAL-budget fold did not run")
	}
	if st := m.Stats(); st.FoldsTotal == 0 {
		t.Fatal("fold not counted")
	}
}
