package index

import (
	"testing"

	"github.com/aplusdb/aplus/internal/pred"
	"github.com/aplusdb/aplus/internal/storage"
)

func TestBitmapVPMatchesOffsetVP(t *testing.T) {
	p := defaultPrimary(t)
	viewPred := pred.Predicate{}.
		And(pred.ConstTerm(pred.VarAdj, storage.PropCurrency, pred.EQ, storage.Str("€"))).
		And(pred.ConstTerm(pred.VarAdj, storage.PropAmount, pred.GT, storage.Int(20)))

	bm, err := BuildBitmapVP(p, "B", viewPred, []Direction{FW, BW})
	if err != nil {
		t.Fatal(err)
	}
	off, err := BuildVertexPartitioned(p, VPDef{
		View: View1Hop{Name: "O", Pred: viewPred},
		Dirs: []Direction{FW, BW},
		Cfg:  DefaultConfig(),
	})
	if err != nil {
		t.Fatal(err)
	}
	// Same edges per owner per direction (both keep primary sort order
	// here, since the offset variant uses the default sort too).
	for _, dir := range []Direction{FW, BW} {
		for v := 0; v < p.Graph().NumVertices(); v++ {
			lb := bm.List(dir, storage.VertexID(v), nil)
			lo := off.List(dir, storage.VertexID(v), nil)
			if lb.Len() != lo.Len() {
				t.Fatalf("v%d %v: bitmap %d entries, offsets %d", v, dir, lb.Len(), lo.Len())
			}
			for i := 0; i < lb.Len(); i++ {
				bn, be := lb.Get(i)
				on, oe := lo.Get(i)
				if bn != on || be != oe {
					t.Fatalf("v%d %v entry %d differs", v, dir, i)
				}
			}
		}
	}
}

func TestBitmapVPPartitionPrefix(t *testing.T) {
	p := defaultPrimary(t)
	bm, err := BuildBitmapVP(p, "All", pred.Predicate{}, []Direction{FW})
	if err != nil {
		t.Fatal(err)
	}
	codes, _ := p.ResolveCodes([]storage.Value{storage.Str(storage.LabelWire)})
	l := bm.List(FW, 0, codes)
	pl := p.List(FW, 0, codes)
	if l.Len() != pl.Len() {
		t.Errorf("empty-predicate bitmap should mirror primary: %d vs %d", l.Len(), pl.Len())
	}
}

func TestBitmapVPSpaceCrossover(t *testing.T) {
	// The paper's qualitative claim: bitmaps win on space only for
	// unselective predicates. With a selective predicate the offset list
	// stores few entries while the bitmap still pays a bit per primary
	// entry... at tiny scale the bitmap is almost always smaller, so this
	// test asserts the bitmap cost is *constant* across selectivities
	// while the offset cost shrinks.
	p := defaultPrimary(t)
	loose := pred.Predicate{}.And(pred.ConstTerm(pred.VarAdj, storage.PropAmount, pred.GT, storage.Int(0)))
	tight := pred.Predicate{}.And(pred.ConstTerm(pred.VarAdj, storage.PropAmount, pred.GT, storage.Int(190)))

	bmLoose, err := BuildBitmapVP(p, "bl", loose, []Direction{FW})
	if err != nil {
		t.Fatal(err)
	}
	bmTight, err := BuildBitmapVP(p, "bt", tight, []Direction{FW})
	if err != nil {
		t.Fatal(err)
	}
	if bmLoose.MemoryBytes() != bmTight.MemoryBytes() {
		t.Error("bitmap cost should not depend on selectivity")
	}
	offLoose, err := BuildVertexPartitioned(p, VPDef{View: View1Hop{Name: "ol", Pred: loose}, Dirs: []Direction{FW}, Cfg: DefaultConfig()})
	if err != nil {
		t.Fatal(err)
	}
	offTight, err := BuildVertexPartitioned(p, VPDef{View: View1Hop{Name: "ot", Pred: tight}, Dirs: []Direction{FW}, Cfg: DefaultConfig()})
	if err != nil {
		t.Fatal(err)
	}
	if offTight.NumIndexedEdges() >= offLoose.NumIndexedEdges() {
		t.Error("selective predicate should index fewer edges")
	}
	// Bitmap scan cost: tight-list access still walks the full primary
	// list, so the returned entries shrink but the same positions are
	// tested — verified behaviourally by count.
	if bmTight.Count(FW) != int(offTight.NumIndexedEdges()) {
		t.Errorf("bitmap count %d != offset count %d", bmTight.Count(FW), offTight.NumIndexedEdges())
	}
}

func TestBitmapVPRejectsBoundPred(t *testing.T) {
	p := defaultPrimary(t)
	bad := pred.Predicate{}.And(pred.VarTerm(pred.VarBound, "date", pred.LT, pred.VarAdj, "date"))
	if _, err := BuildBitmapVP(p, "bad", bad, []Direction{FW}); err == nil {
		t.Error("bound-edge predicate must be rejected")
	}
	if _, err := BuildBitmapVP(p, "bad2", pred.Predicate{}, nil); err == nil {
		t.Error("no directions must be rejected")
	}
}
