package index

import (
	"fmt"

	"github.com/aplusdb/aplus/internal/pred"
	"github.com/aplusdb/aplus/internal/storage"
)

// BitmapVP is the alternative secondary-index representation the paper
// discusses in Section III-B3: one bit per entry of the primary index
// marks whether the edge belongs to the view. Compared to offset lists:
//
//   - it cannot re-sort lists, so the view's sort order must equal the
//     primary's (enforced at build time);
//   - it costs exactly one bit per primary entry regardless of how few
//     edges the view keeps, so it beats offset lists in space only when
//     the predicate is unselective;
//   - reads must scan the whole primary list performing bitmask tests, so
//     access time degrades as predicates get more selective, while offset
//     lists touch only the edges actually indexed.
//
// The engine's optimizer plans against offset-list indexes; BitmapVP
// exists for the space/time ablation the paper argues qualitatively
// (reproduced by BenchmarkAblationOffsetVsBitmap).
type BitmapVP struct {
	name    string
	pred    pred.Predicate
	primary *Primary
	dirs    map[Direction][]uint64 // bit per global CSR position
}

// BuildBitmapVP materializes a 1-hop view as bitmaps over the primary
// lists. The index shares the primary's partitioning and sort order by
// construction.
func BuildBitmapVP(p *Primary, name string, viewPred pred.Predicate, dirs []Direction) (*BitmapVP, error) {
	if len(dirs) == 0 {
		return nil, fmt.Errorf("index: bitmap view %q: at least one direction required", name)
	}
	for _, t := range viewPred.Terms {
		if t.UsesBound() {
			return nil, fmt.Errorf("index: 1-hop view %q cannot reference eb", name)
		}
	}
	b := &BitmapVP{name: name, pred: viewPred, primary: p, dirs: make(map[Direction][]uint64)}
	for _, dir := range dirs {
		c := p.dirCSR(dir)
		bits := make([]uint64, (c.Len()+63)/64)
		resolved := viewPred.ResolveNbr(dir == FW)
		eids := c.EIDs()
		for pos := 0; pos < c.Len(); pos++ {
			e := storage.EdgeID(eids[pos])
			if resolved.IsTrue() || resolved.Eval(pred.EdgeCtx{G: p.g, Adj: e}) {
				bits[pos/64] |= 1 << (uint(pos) % 64)
			}
		}
		b.dirs[dir] = bits
	}
	return b, nil
}

// Name returns the view name.
func (b *BitmapVP) Name() string { return b.name }

// List materializes the view's adjacency list of owner under dir for a
// bucket-code prefix. Every entry of the primary list is bitmask-tested —
// the cost profile the paper attributes to bitmaps.
func (b *BitmapVP) List(dir Direction, owner storage.VertexID, codes []uint16) AdjList {
	bits, ok := b.dirs[dir]
	if !ok {
		return AdjList{}
	}
	c := b.primary.dirCSR(dir)
	lo, hi := c.PrefixRange(uint32(owner), codes)
	nbrs := make([]uint32, 0, hi-lo)
	eids := make([]uint64, 0, hi-lo)
	allNbrs, allEids := c.Nbrs(), c.EIDs()
	for pos := lo; pos < hi; pos++ {
		if bits[pos/64]&(1<<(uint(pos)%64)) != 0 {
			nbrs = append(nbrs, allNbrs[pos])
			eids = append(eids, allEids[pos])
		}
	}
	return DirectList(nbrs, eids)
}

// Count returns the number of indexed entries under dir.
func (b *BitmapVP) Count(dir Direction) int {
	n := 0
	for _, w := range b.dirs[dir] {
		n += popcount(w)
	}
	return n
}

// MemoryBytes is one bit per primary entry per direction.
func (b *BitmapVP) MemoryBytes() int64 {
	var total int64
	for _, bits := range b.dirs {
		total += int64(len(bits)) * 8
	}
	return total
}

func popcount(x uint64) int {
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}
