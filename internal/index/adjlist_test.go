package index

import (
	"testing"

	"github.com/aplusdb/aplus/internal/csr"
	"github.com/aplusdb/aplus/internal/storage"
)

func TestAdjListDirectAndDecodeInto(t *testing.T) {
	nbrs := []uint32{2, 5, 5, 9}
	eids := []uint64{10, 11, 12, 13}
	l := DirectList(nbrs, eids)

	dn, de, ok := l.Direct()
	if !ok {
		t.Fatal("direct list must report Direct")
	}
	if &dn[0] != &nbrs[0] || &de[0] != &eids[0] {
		t.Error("Direct must alias the underlying arrays (zero copy)")
	}

	// DecodeInto on a direct list copies; reuse must not grow the buffer.
	buf32 := make([]uint32, 0, 8)
	buf64 := make([]uint64, 0, 8)
	gotN, gotE := l.DecodeInto(buf32, buf64)
	for i := range nbrs {
		if gotN[i] != nbrs[i] || gotE[i] != eids[i] {
			t.Fatalf("DecodeInto mismatch at %d", i)
		}
	}
	if cap(gotN) != 8 {
		t.Error("DecodeInto should reuse provided capacity")
	}
}

func TestAdjListDecodeIntoOffsets(t *testing.T) {
	// Secondary offset list over a primary range: offsets {3, 1, 0}.
	base := []uint32{100, 101, 102, 103}
	baseE := []uint64{200, 201, 202, 203}
	b := csr.NewOffsetBuilder(1, nil)
	for _, off := range []uint32{0, 1, 3} {
		b.Add(csr.OffsetEntry{Owner: 0, Offset: off}, nil)
	}
	o := b.Build(func(uint32) uint32 { return 4 })
	l := OffsetList(o.OwnerList(0), base, baseE)

	if _, _, ok := l.Direct(); ok {
		t.Fatal("offset list must not report Direct")
	}
	gotN, gotE := l.DecodeInto(nil, nil)
	wantN := []uint32{100, 101, 103}
	wantE := []uint64{200, 201, 203}
	if len(gotN) != len(wantN) {
		t.Fatalf("len = %d, want %d", len(gotN), len(wantN))
	}
	for i := range wantN {
		if gotN[i] != wantN[i] || gotE[i] != wantE[i] {
			t.Fatalf("decoded[%d] = (%d, %d), want (%d, %d)", i, gotN[i], gotE[i], wantN[i], wantE[i])
		}
		if v, e := l.Get(i); v != storage.VertexID(gotN[i]) || e != storage.EdgeID(gotE[i]) {
			t.Fatalf("DecodeInto disagrees with Get at %d", i)
		}
	}
}
