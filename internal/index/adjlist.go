package index

import (
	"github.com/aplusdb/aplus/internal/csr"
	"github.com/aplusdb/aplus/internal/storage"
)

// AdjList is a resolved adjacency list: a sequence of (neighbour vertex,
// edge) pairs in index order. Primary lists wrap ID-list slices directly;
// secondary lists resolve byte-packed offsets through the owner's primary
// list range (the indirection of Section III-B3).
type AdjList struct {
	// Direct ID-list storage (primary indexes and merged buffers).
	nbrs []uint32
	eids []uint64

	// Offset-list storage (secondary indexes): offsets into base*.
	off      csr.List
	baseNbrs []uint32
	baseEids []uint64
}

// DirectList wraps raw (nbr, eid) arrays as an AdjList.
func DirectList(nbrs []uint32, eids []uint64) AdjList {
	return AdjList{nbrs: nbrs, eids: eids}
}

// OffsetList wraps an offset list resolved against the owner's primary
// range.
func OffsetList(off csr.List, baseNbrs []uint32, baseEids []uint64) AdjList {
	return AdjList{off: off, baseNbrs: baseNbrs, baseEids: baseEids}
}

// Len returns the number of adjacency entries.
func (l AdjList) Len() int {
	if l.baseNbrs != nil {
		return l.off.Len()
	}
	return len(l.nbrs)
}

// Get returns the i-th (neighbour, edge) pair.
func (l AdjList) Get(i int) (storage.VertexID, storage.EdgeID) {
	if l.baseNbrs != nil {
		o := l.off.At(i)
		return storage.VertexID(l.baseNbrs[o]), storage.EdgeID(l.baseEids[o])
	}
	return storage.VertexID(l.nbrs[i]), storage.EdgeID(l.eids[i])
}

// Nbr returns just the i-th neighbour (hot path of intersections).
func (l AdjList) Nbr(i int) storage.VertexID {
	if l.baseNbrs != nil {
		return storage.VertexID(l.baseNbrs[l.off.At(i)])
	}
	return storage.VertexID(l.nbrs[i])
}

// Edge returns just the i-th edge.
func (l AdjList) Edge(i int) storage.EdgeID {
	if l.baseNbrs != nil {
		return storage.EdgeID(l.baseEids[l.off.At(i)])
	}
	return storage.EdgeID(l.eids[i])
}

// Materialize copies the list into fresh (nbr, eid) arrays.
func (l AdjList) Materialize() ([]uint32, []uint64) {
	n := l.Len()
	nbrs := make([]uint32, n)
	eids := make([]uint64, n)
	for i := 0; i < n; i++ {
		v, e := l.Get(i)
		nbrs[i] = uint32(v)
		eids[i] = uint64(e)
	}
	return nbrs, eids
}

// Slice returns the sublist [lo, hi).
func (l AdjList) Slice(lo, hi int) AdjList {
	if l.baseNbrs != nil {
		return AdjList{off: l.off.Sub(lo, hi), baseNbrs: l.baseNbrs, baseEids: l.baseEids}
	}
	return DirectList(l.nbrs[lo:hi], l.eids[lo:hi])
}
