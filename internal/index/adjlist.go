package index

import (
	"github.com/aplusdb/aplus/internal/csr"
	"github.com/aplusdb/aplus/internal/storage"
)

// AdjList is a resolved adjacency list: a sequence of (neighbour vertex,
// edge) pairs in index order. Primary lists wrap ID-list slices directly;
// secondary lists resolve byte-packed offsets through the owner's primary
// list range (the indirection of Section III-B3).
type AdjList struct {
	// Direct ID-list storage (primary indexes and merged buffers).
	nbrs []uint32
	eids []uint64

	// Offset-list storage (secondary indexes): offsets into base*.
	off      csr.List
	baseNbrs []uint32
	baseEids []uint64
}

// DirectList wraps raw (nbr, eid) arrays as an AdjList.
func DirectList(nbrs []uint32, eids []uint64) AdjList {
	return AdjList{nbrs: nbrs, eids: eids}
}

// OffsetList wraps an offset list resolved against the owner's primary
// range.
func OffsetList(off csr.List, baseNbrs []uint32, baseEids []uint64) AdjList {
	return AdjList{off: off, baseNbrs: baseNbrs, baseEids: baseEids}
}

// Len returns the number of adjacency entries.
func (l AdjList) Len() int {
	if l.baseNbrs != nil {
		return l.off.Len()
	}
	return len(l.nbrs)
}

// Get returns the i-th (neighbour, edge) pair.
func (l AdjList) Get(i int) (storage.VertexID, storage.EdgeID) {
	if l.baseNbrs != nil {
		o := l.off.At(i)
		return storage.VertexID(l.baseNbrs[o]), storage.EdgeID(l.baseEids[o])
	}
	return storage.VertexID(l.nbrs[i]), storage.EdgeID(l.eids[i])
}

// Nbr returns just the i-th neighbour (hot path of intersections).
func (l AdjList) Nbr(i int) storage.VertexID {
	if l.baseNbrs != nil {
		return storage.VertexID(l.baseNbrs[l.off.At(i)])
	}
	return storage.VertexID(l.nbrs[i])
}

// Edge returns just the i-th edge.
func (l AdjList) Edge(i int) storage.EdgeID {
	if l.baseNbrs != nil {
		return storage.EdgeID(l.baseEids[l.off.At(i)])
	}
	return storage.EdgeID(l.eids[i])
}

// Direct returns the raw (nbr, eid) payload arrays when the list is stored
// directly (primary indexes and merged buffers), letting executors read it
// with zero copies; ok is false for offset lists, which need DecodeInto.
// Callers must not mutate the returned slices.
func (l AdjList) Direct() (nbrs []uint32, eids []uint64, ok bool) {
	if l.baseNbrs != nil {
		return nil, nil, false
	}
	return l.nbrs, l.eids, true
}

// DecodeInto bulk-decodes the list into nbrs/eids, reusing their capacity
// and growing them when needed, and returns slices of length Len(). Offset
// lists are resolved with one bulk unpack of the byte-packed offsets
// (csr.List.UnpackInto) followed by a gather through the owner's primary
// range — the per-element representation branch and byte-unpacking loop of
// Get/Nbr are paid once per fetch instead of once per access.
func (l AdjList) DecodeInto(nbrs []uint32, eids []uint64) ([]uint32, []uint64) {
	n := l.Len()
	if cap(nbrs) < n {
		nbrs = make([]uint32, n)
	}
	nbrs = nbrs[:n]
	if cap(eids) < n {
		eids = make([]uint64, n)
	}
	eids = eids[:n]
	if l.baseNbrs == nil {
		copy(nbrs, l.nbrs)
		copy(eids, l.eids)
		return nbrs, eids
	}
	// Unpack the offsets into nbrs, then resolve both payloads in place.
	l.off.UnpackInto(nbrs)
	for i, o := range nbrs {
		eids[i] = l.baseEids[o]
		nbrs[i] = l.baseNbrs[o]
	}
	return nbrs, eids
}

// Materialize copies the list into fresh (nbr, eid) arrays.
func (l AdjList) Materialize() ([]uint32, []uint64) {
	n := l.Len()
	nbrs := make([]uint32, n)
	eids := make([]uint64, n)
	for i := 0; i < n; i++ {
		v, e := l.Get(i)
		nbrs[i] = uint32(v)
		eids[i] = uint64(e)
	}
	return nbrs, eids
}

// Slice returns the sublist [lo, hi).
func (l AdjList) Slice(lo, hi int) AdjList {
	if l.baseNbrs != nil {
		return AdjList{off: l.off.Sub(lo, hi), baseNbrs: l.baseNbrs, baseEids: l.baseEids}
	}
	return DirectList(l.nbrs[lo:hi], l.eids[lo:hi])
}
