package index

// Checkpoint serialization of the index store. The primary indexes are
// written structurally — configuration, edge bound, and both nested CSRs —
// so Open restores them without re-sorting the edge set. Secondary indexes
// are written as their definitions only (view name, predicate, directions,
// configuration): their offset lists are a deterministic function of the
// primary index and the graph, and are rebuilt on decode. Partition levels
// and sort ordinals are likewise rebuilt from the decoded graph, which
// yields exactly the encodings the checkpointed store was built with
// (categorical bucket order is content-determined).

import (
	"fmt"

	"github.com/aplusdb/aplus/internal/csr"
	"github.com/aplusdb/aplus/internal/enc"
	"github.com/aplusdb/aplus/internal/pred"
	"github.com/aplusdb/aplus/internal/storage"
)

func encodeKey(w *enc.Writer, v pred.Var, prop string) {
	w.U8(uint8(v))
	w.String(prop)
}

// EncodeConfig appends an index configuration.
func EncodeConfig(w *enc.Writer, c Config) {
	w.Uvarint(uint64(len(c.Partitions)))
	for _, p := range c.Partitions {
		encodeKey(w, p.Var, p.Prop)
	}
	w.Uvarint(uint64(len(c.Sorts)))
	for _, s := range c.Sorts {
		encodeKey(w, s.Var, s.Prop)
	}
}

// DecodeConfig reads an index configuration.
func DecodeConfig(r *enc.Reader) Config {
	var c Config
	for n := r.Len(2); n > 0; n-- {
		v := pred.Var(r.U8())
		c.Partitions = append(c.Partitions, PartitionKey{Var: v, Prop: r.String()})
	}
	for n := r.Len(2); n > 0; n-- {
		v := pred.Var(r.U8())
		c.Sorts = append(c.Sorts, SortKey{Var: v, Prop: r.String()})
	}
	return c
}

// EncodePredicate appends a view predicate.
func EncodePredicate(w *enc.Writer, p pred.Predicate) {
	w.Uvarint(uint64(len(p.Terms)))
	for _, t := range p.Terms {
		encodeKey(w, t.Left.Var, t.Left.Prop)
		w.U8(uint8(t.Op))
		encodeKey(w, t.Right.Var, t.Right.Prop)
		storage.EncodeValue(w, t.Const)
		w.Varint(t.Shift)
	}
}

// DecodePredicate reads a view predicate.
func DecodePredicate(r *enc.Reader) pred.Predicate {
	var p pred.Predicate
	for n := r.Len(5); n > 0; n-- {
		var t pred.Term
		t.Left.Var = pred.Var(r.U8())
		t.Left.Prop = r.String()
		t.Op = pred.Op(r.U8())
		t.Right.Var = pred.Var(r.U8())
		t.Right.Prop = r.String()
		t.Const = storage.DecodeValue(r)
		t.Shift = r.Varint()
		p.Terms = append(p.Terms, t)
	}
	return p
}

// EncodeVPDef appends a vertex-partitioned index definition.
func EncodeVPDef(w *enc.Writer, d VPDef) {
	w.String(d.View.Name)
	EncodePredicate(w, d.View.Pred)
	w.Uvarint(uint64(len(d.Dirs)))
	for _, dir := range d.Dirs {
		w.U8(uint8(dir))
	}
	EncodeConfig(w, d.Cfg)
}

// DecodeVPDef reads a vertex-partitioned index definition.
func DecodeVPDef(r *enc.Reader) VPDef {
	var d VPDef
	d.View.Name = r.String()
	d.View.Pred = DecodePredicate(r)
	for n := r.Len(1); n > 0; n-- {
		d.Dirs = append(d.Dirs, Direction(r.U8()))
	}
	d.Cfg = DecodeConfig(r)
	return d
}

// EncodeEPDef appends an edge-partitioned index definition.
func EncodeEPDef(w *enc.Writer, d EPDef) {
	w.String(d.View.Name)
	w.U8(uint8(d.View.Dir))
	EncodePredicate(w, d.View.Pred)
	EncodeConfig(w, d.Cfg)
}

// DecodeEPDef reads an edge-partitioned index definition.
func DecodeEPDef(r *enc.Reader) EPDef {
	var d EPDef
	d.View.Name = r.String()
	d.View.Dir = EPDirection(r.U8())
	d.View.Pred = DecodePredicate(r)
	d.Cfg = DecodeConfig(r)
	return d
}

// EncodeStore appends a checkpoint image of a frozen base store: the primary
// configuration and CSRs plus every secondary index descriptor. The store
// must be a published (immutable) base with no buffered maintenance state —
// exactly what the snapshot layer hands to checkpoint writers. The graph is
// encoded separately (storage.EncodeGraph); DecodeStore stitches them back
// together.
func EncodeStore(w *enc.Writer, s *Store) {
	EncodeConfig(w, s.primary.cfg)
	w.Uvarint(uint64(s.primary.edgeBound))
	s.primary.fw.Encode(w)
	s.primary.bw.Encode(w)
	w.Uvarint(uint64(len(s.vps)))
	for _, v := range s.vps {
		EncodeVPDef(w, v.def)
	}
	w.Uvarint(uint64(len(s.eps)))
	for _, e := range s.eps {
		EncodeEPDef(w, e.def)
	}
}

// DecodeStore reconstructs a store over g from an EncodeStore image,
// rebuilding partition levels and secondary offset lists (both deterministic
// functions of the graph, the decoded CSRs, and the descriptors).
func DecodeStore(r *enc.Reader, g *storage.Graph) (*Store, error) {
	cfg := DecodeConfig(r)
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	edgeBound := storage.EdgeID(r.Uvarint())
	fw, err := csr.DecodeCSR(r)
	if err != nil {
		return nil, err
	}
	bw, err := csr.DecodeCSR(r)
	if err != nil {
		return nil, err
	}
	if int(edgeBound) > g.NumEdges() {
		return nil, fmt.Errorf("index: decoded edge bound %d exceeds graph's %d edge slots", edgeBound, g.NumEdges())
	}
	if fw.NumOwners() > g.NumVertices() || bw.NumOwners() > g.NumVertices() {
		return nil, fmt.Errorf("index: decoded CSR covers more owners than the graph's %d vertices", g.NumVertices())
	}
	levels, err := buildLevels(g, cfg.Partitions)
	if err != nil {
		return nil, err
	}
	cards := levelCards(levels)
	for _, c := range [2]*csr.CSR{fw, bw} {
		got := c.Cards()
		if len(got) != len(cards) {
			return nil, fmt.Errorf("index: decoded CSR has %d levels, config wants %d", len(got), len(cards))
		}
		for i := range got {
			if got[i] != cards[i] {
				return nil, fmt.Errorf("index: decoded CSR level %d cardinality %d, graph yields %d", i, got[i], cards[i])
			}
		}
	}
	p := &Primary{
		g:         g,
		cfg:       cfg,
		levels:    levels,
		fw:        fw,
		bw:        bw,
		edgeBound: edgeBound,
		fwBuf:     make(map[uint32][]bufEntry),
		bwBuf:     make(map[uint32][]bufEntry),
	}
	s := &Store{g: g, primary: p, MergeThreshold: DefaultMergeThreshold}
	for n := r.Len(1); n > 0; n-- {
		def := DecodeVPDef(r)
		if r.Err() != nil {
			return nil, r.Err()
		}
		v, err := BuildVertexPartitioned(p, def)
		if err != nil {
			return nil, fmt.Errorf("index: rebuild view %q: %w", def.View.Name, err)
		}
		s.vps = append(s.vps, v)
	}
	for n := r.Len(1); n > 0; n-- {
		def := DecodeEPDef(r)
		if r.Err() != nil {
			return nil, r.Err()
		}
		e, err := BuildEdgePartitioned(p, def)
		if err != nil {
			return nil, fmt.Errorf("index: rebuild view %q: %w", def.View.Name, err)
		}
		s.eps = append(s.eps, e)
	}
	if r.Err() != nil {
		return nil, r.Err()
	}
	return s, nil
}
