// Package index implements the A+ index subsystem, the paper's primary
// contribution: reconfigurable primary indexes (Section III-A), secondary
// vertex-partitioned indexes over 1-hop views (Section III-B1), secondary
// edge-partitioned indexes over 2-hop views (Section III-B2), offset-list
// storage (Section III-B3), the INDEX STORE consulted by the optimizer
// (Section IV-A), and maintenance with update buffers and tombstones
// (Section IV-C).
package index

import (
	"fmt"
	"strings"

	"github.com/aplusdb/aplus/internal/pred"
	"github.com/aplusdb/aplus/internal/storage"
)

// Direction selects the forward or backward variant of a vertex-partitioned
// index: forward lists are owned by the edge's source, backward lists by its
// destination.
type Direction uint8

const (
	// FW is the forward direction (owner = source vertex).
	FW Direction = iota
	// BW is the backward direction (owner = destination vertex).
	BW
)

// String implements fmt.Stringer.
func (d Direction) String() string {
	if d == FW {
		return "FW"
	}
	return "BW"
}

// PartitionKey is one nested partitioning criterion: a categorical property
// (or label) of the adjacent edge or the neighbour vertex.
type PartitionKey struct {
	Var  pred.Var // VarAdj or VarNbr
	Prop string   // pred.PropLabel or a categorical property name
}

// String implements fmt.Stringer.
func (k PartitionKey) String() string { return k.Var.String() + "." + k.Prop }

// SortKey is one sorting criterion applied to the innermost lists, ahead of
// the implicit (neighbour ID, edge ID) tiebreak.
type SortKey struct {
	Var  pred.Var // VarAdj or VarNbr
	Prop string
}

// String implements fmt.Stringer.
func (k SortKey) String() string { return k.Var.String() + "." + k.Prop }

// NbrIDSort is the default sort criterion of primary A+ indexes.
var NbrIDSort = SortKey{Var: pred.VarNbr, Prop: pred.PropID}

// Config is the tunable part of an A+ index: the nested partitioning levels
// after the owner level, and the sort criteria of the innermost lists.
type Config struct {
	Partitions []PartitionKey
	Sorts      []SortKey
}

// DefaultConfig is GraphflowDB's default: partition by edge label, sort by
// neighbour ID (Section III-A: "by default we adopt a second level
// partitioning by edge labels and sort the most granular lists according to
// the IDs of the neighbours").
func DefaultConfig() Config {
	return Config{
		Partitions: []PartitionKey{{Var: pred.VarAdj, Prop: pred.PropLabel}},
		Sorts:      nil,
	}
}

// SortSignature canonically names the effective ordering of the innermost
// lists. Two lists can be intersected only if their signatures match
// (Section IV-A: the optimizer "checks that the sorting criterion on the
// indices that are returned are the same").
func (c Config) SortSignature() string {
	if len(c.Sorts) == 0 {
		return NbrIDSort.String()
	}
	parts := make([]string, len(c.Sorts))
	for i, s := range c.Sorts {
		parts[i] = s.String()
	}
	return strings.Join(parts, ",")
}

// SameStructure reports whether two configs have identical partitioning
// levels — the precondition for a secondary index to share the primary's
// partition levels.
func (c Config) SameStructure(o Config) bool {
	if len(c.Partitions) != len(o.Partitions) {
		return false
	}
	for i := range c.Partitions {
		if c.Partitions[i] != o.Partitions[i] {
			return false
		}
	}
	return true
}

// String implements fmt.Stringer.
func (c Config) String() string {
	parts := make([]string, len(c.Partitions))
	for i, p := range c.Partitions {
		parts[i] = p.String()
	}
	return fmt.Sprintf("partition[%s] sort[%s]", strings.Join(parts, ","), c.SortSignature())
}

// Validate checks that the config is expressible: partition keys must be
// labels or categorical properties of eadj/vnbr, and at most csr.MaxSortKeys
// sort criteria are supported.
func (c Config) Validate() error {
	for _, p := range c.Partitions {
		if p.Var != pred.VarAdj && p.Var != pred.VarNbr {
			return fmt.Errorf("index: partition key %v must reference eadj or vnbr", p)
		}
		if p.Prop == pred.PropID {
			return fmt.Errorf("index: cannot partition on IDs (vertex IDs are the owner level)")
		}
	}
	if len(c.Sorts) > 2 {
		return fmt.Errorf("index: at most 2 sort criteria are supported, got %d", len(c.Sorts))
	}
	for _, s := range c.Sorts {
		if s.Var != pred.VarAdj && s.Var != pred.VarNbr {
			return fmt.Errorf("index: sort key %v must reference eadj or vnbr", s)
		}
	}
	return nil
}

// level pairs a partition key with the categorical encoding backing it.
type level struct {
	key PartitionKey
	cat *storage.Categorical
}

// buildLevels resolves the categorical encodings for each partition key.
func buildLevels(g *storage.Graph, keys []PartitionKey) ([]level, error) {
	levels := make([]level, len(keys))
	for i, k := range keys {
		var cat *storage.Categorical
		var err error
		switch {
		case k.Var == pred.VarAdj && k.Prop == pred.PropLabel:
			cat = g.EdgeLabelCategorical()
		case k.Var == pred.VarAdj:
			cat, err = g.EdgePropCategorical(k.Prop)
		case k.Var == pred.VarNbr && k.Prop == pred.PropLabel:
			cat = g.VertexLabelCategorical()
		case k.Var == pred.VarNbr:
			cat, err = g.VertexPropCategorical(k.Prop)
		default:
			err = fmt.Errorf("index: unsupported partition key %v", k)
		}
		if err != nil {
			return nil, err
		}
		levels[i] = level{key: k, cat: cat}
	}
	return levels, nil
}

func levelCards(levels []level) []int {
	cards := make([]int, len(levels))
	for i, l := range levels {
		cards[i] = l.cat.Cardinality
	}
	return cards
}

// codesFor computes the bucket codes of one adjacency entry (edge e with
// neighbour nbr) at every level.
func codesFor(levels []level, e storage.EdgeID, nbr storage.VertexID, buf []uint16) []uint16 {
	buf = buf[:0]
	for _, l := range levels {
		if l.key.Var == pred.VarAdj {
			buf = append(buf, l.cat.Codes[e])
		} else {
			buf = append(buf, l.cat.Codes[nbr])
		}
	}
	return buf
}

// valueOf reads the level's partitioning value for an adjacency entry
// directly from the graph (used for edges inserted after the categorical
// encoding was built).
func (l level) valueOf(g *storage.Graph, e storage.EdgeID, nbr storage.VertexID) storage.Value {
	switch {
	case l.key.Var == pred.VarAdj && l.key.Prop == pred.PropLabel:
		return storage.Str(g.Catalog().EdgeLabelName(g.EdgeLabel(e)))
	case l.key.Var == pred.VarAdj:
		return g.EdgeProp(e, l.key.Prop)
	case l.key.Prop == pred.PropLabel:
		return storage.Str(g.Catalog().VertexLabelName(g.VertexLabel(nbr)))
	default:
		return g.VertexProp(nbr, l.key.Prop)
	}
}

// codesForInsert computes bucket codes for a freshly inserted edge, falling
// back to value lookup when the edge or vertex postdates the categorical
// encoding. ok is false when a value has no bucket (a brand-new categorical
// value), in which case the caller must trigger a full rebuild.
func codesForInsert(g *storage.Graph, levels []level, e storage.EdgeID, nbr storage.VertexID) ([]uint16, bool) {
	out := make([]uint16, len(levels))
	for i, l := range levels {
		var idx int
		if l.key.Var == pred.VarAdj {
			idx = int(e)
		} else {
			idx = int(nbr)
		}
		if idx < len(l.cat.Codes) {
			out[i] = l.cat.Codes[idx]
			continue
		}
		b, ok := l.cat.BucketOf(l.valueOf(g, e, nbr))
		if !ok {
			return nil, false
		}
		out[i] = b
	}
	return out, true
}

// sortOrdinal computes the sort ordinal of an adjacency entry under one sort
// key. Ordinals order entries identically to comparing the underlying
// values, with NULLs last.
func sortOrdinal(g *storage.Graph, k SortKey, e storage.EdgeID, nbr storage.VertexID) uint64 {
	switch {
	case k.Var == pred.VarNbr && k.Prop == pred.PropID:
		return uint64(nbr)
	case k.Var == pred.VarNbr && k.Prop == pred.PropLabel:
		return uint64(g.VertexLabel(nbr))
	case k.Var == pred.VarNbr:
		if col, ok := g.VertexColumn(k.Prop); ok {
			return col.SortOrdinal(int(nbr))
		}
		return ^uint64(0)
	case k.Var == pred.VarAdj && k.Prop == pred.PropID:
		return uint64(e)
	case k.Var == pred.VarAdj && k.Prop == pred.PropLabel:
		return uint64(g.EdgeLabel(e))
	default:
		if col, ok := g.EdgeColumn(k.Prop); ok {
			return col.SortOrdinal(int(e))
		}
		return ^uint64(0)
	}
}

func sortOrdinals(g *storage.Graph, sorts []SortKey, e storage.EdgeID, nbr storage.VertexID) [2]uint64 {
	var out [2]uint64
	for i, s := range sorts {
		out[i] = sortOrdinal(g, s, e, nbr)
	}
	return out
}

// SortKeyOrdinal exposes ordinal computation for executor-side binary
// searches inside sorted lists (e.g. locating a neighbour-label segment
// under the Ds configuration).
func SortKeyOrdinal(g *storage.Graph, k SortKey, e storage.EdgeID, nbr storage.VertexID) uint64 {
	return sortOrdinal(g, k, e, nbr)
}

// OrdinalOfValue maps a constant to the ordinal space of a sort key so that
// equality segments can be located by binary search. ok is false when the
// value cannot appear under that key.
func OrdinalOfValue(g *storage.Graph, k SortKey, v storage.Value) (uint64, bool) {
	if v.IsNull() {
		return ^uint64(0), true
	}
	switch {
	case k.Prop == pred.PropID:
		if v.Kind != storage.KindInt {
			return 0, false
		}
		return uint64(uint32(v.I)), true
	case k.Prop == pred.PropLabel:
		var id storage.LabelID
		var ok bool
		if k.Var == pred.VarNbr {
			id, ok = g.Catalog().LookupVertexLabel(v.S)
		} else {
			id, ok = g.Catalog().LookupEdgeLabel(v.S)
		}
		if !ok {
			return 0, false
		}
		return uint64(id), true
	default:
		var col *storage.Column
		var ok bool
		if k.Var == pred.VarNbr {
			col, ok = g.VertexColumn(k.Prop)
		} else {
			col, ok = g.EdgeColumn(k.Prop)
		}
		if !ok {
			return 0, false
		}
		return valueOrdinal(col, v)
	}
}

func valueOrdinal(col *storage.Column, v storage.Value) (uint64, bool) {
	switch col.Kind {
	case storage.KindInt, storage.KindBool:
		if v.Kind != storage.KindInt && v.Kind != storage.KindBool {
			return 0, false
		}
		return uint64(v.I) ^ (1 << 63), true
	case storage.KindFloat:
		switch v.Kind {
		case storage.KindFloat:
			return storage.FloatOrdinal(v.F), true
		case storage.KindInt:
			return storage.FloatOrdinal(float64(v.I)), true
		}
		return 0, false
	case storage.KindString:
		if v.Kind != storage.KindString {
			return 0, false
		}
		code, ok := col.Dict().Lookup(v.S)
		if !ok {
			return 0, false
		}
		return uint64(col.Dict().Rank(code)), true
	default:
		return 0, false
	}
}
