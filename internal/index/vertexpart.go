package index

import (
	"fmt"

	"github.com/aplusdb/aplus/internal/csr"
	"github.com/aplusdb/aplus/internal/pred"
	"github.com/aplusdb/aplus/internal/storage"
)

// View1Hop is a 1-hop materialized view: the subset of edges satisfying an
// arbitrary selection predicate over the adjacent edge and its endpoints
// (Section III-B1). No other operators are allowed, so outputs are always a
// subset of the edge table — the property offset lists rely on.
type View1Hop struct {
	Name string
	Pred pred.Predicate
}

// VPDef declares a secondary vertex-partitioned A+ index: the view, the
// directions to index (the paper's FW / BW / FW-BW options), and the nested
// partitioning + sorting configuration.
type VPDef struct {
	View View1Hop
	Dirs []Direction
	Cfg  Config
}

// VertexPartitioned is a secondary vertex-partitioned A+ index storing a
// 1-hop view in offset lists.
type VertexPartitioned struct {
	def     VPDef
	primary *Primary
	dirs    map[Direction]*vpDir
}

type vpDir struct {
	lists  *csr.OffsetLists
	levels []level // nil when sharing the primary's levels
	shared bool
	buf    map[uint32][]bufEntry
}

// BuildVertexPartitioned materializes the view and builds offset lists for
// each requested direction. When the view has no predicate and the config's
// partitioning matches the primary's, the partition levels of the primary
// are shared and cost no memory (Section III-B3).
func BuildVertexPartitioned(p *Primary, def VPDef) (*VertexPartitioned, error) {
	if err := def.Cfg.Validate(); err != nil {
		return nil, err
	}
	if len(def.Dirs) == 0 {
		return nil, fmt.Errorf("index: view %q: at least one direction required", def.View.Name)
	}
	for _, t := range def.View.Pred.Terms {
		if t.UsesBound() {
			return nil, fmt.Errorf("index: 1-hop view %q cannot reference eb", def.View.Name)
		}
	}
	v := &VertexPartitioned{def: def, primary: p, dirs: make(map[Direction]*vpDir)}
	for _, dir := range def.Dirs {
		d, err := v.buildDir(dir)
		if err != nil {
			return nil, err
		}
		v.dirs[dir] = d
	}
	return v, nil
}

func (v *VertexPartitioned) buildDir(dir Direction) (*vpDir, error) {
	p := v.primary
	g := p.g
	shared := v.def.View.Pred.IsTrue() && v.def.Cfg.SameStructure(p.cfg)
	d := &vpDir{shared: shared, buf: make(map[uint32][]bufEntry)}

	var builder *csr.OffsetBuilder
	var levels []level
	var err error
	if shared {
		builder = csr.NewSharedOffsetBuilder(p.dirCSR(dir))
		levels = p.levels
	} else {
		levels, err = buildLevels(g, v.def.Cfg.Partitions)
		if err != nil {
			return nil, err
		}
		d.levels = levels
		builder = csr.NewOffsetBuilder(g.NumVertices(), levelCards(levels))
	}

	resolved := v.def.View.Pred.ResolveNbr(dir == FW)
	c := p.dirCSR(dir)
	nbrs, eids := c.Nbrs(), c.EIDs()
	var codeBuf []uint16
	for owner := uint32(0); owner < uint32(g.NumVertices()); owner++ {
		lo, hi := c.OwnerRange(owner)
		for pos := lo; pos < hi; pos++ {
			e := storage.EdgeID(eids[pos])
			nbr := storage.VertexID(nbrs[pos])
			if !resolved.IsTrue() && !resolved.Eval(pred.EdgeCtx{G: g, Adj: e}) {
				continue
			}
			codeBuf = codesFor(levels, e, nbr, codeBuf)
			builder.Add(csr.OffsetEntry{
				Owner:  owner,
				Offset: pos - lo,
				Sort:   sortOrdinals(g, v.def.Cfg.Sorts, e, nbr),
			}, codeBuf)
		}
	}
	d.lists = builder.Build(func(owner uint32) uint32 {
		return p.OwnerLen(dir, storage.VertexID(owner))
	})
	return d, nil
}

// Name returns the view name.
func (v *VertexPartitioned) Name() string { return v.def.View.Name }

// Def returns the index definition.
func (v *VertexPartitioned) Def() VPDef { return v.def }

// HasDirection reports whether dir was indexed.
func (v *VertexPartitioned) HasDirection(dir Direction) bool {
	_, ok := v.dirs[dir]
	return ok
}

// SharedLevels reports whether dir shares the primary's partition levels.
func (v *VertexPartitioned) SharedLevels(dir Direction) bool {
	d, ok := v.dirs[dir]
	return ok && d.shared
}

// LevelCards returns the cardinality of each partitioning level of dir.
func (v *VertexPartitioned) LevelCards(dir Direction) []int {
	d := v.dirs[dir]
	if d.shared {
		return levelCards(v.primary.levels)
	}
	return levelCards(d.levels)
}

// ResolveCodes maps partition values to bucket codes for this index.
func (v *VertexPartitioned) ResolveCodes(dir Direction, vals []storage.Value) ([]uint16, bool) {
	d := v.dirs[dir]
	levels := d.levels
	if d.shared {
		levels = v.primary.levels
	}
	if len(vals) > len(levels) {
		panic("index: more partition values than levels")
	}
	codes := make([]uint16, len(vals))
	for i, val := range vals {
		b, ok := levels[i].cat.BucketOf(val)
		if !ok {
			return nil, false
		}
		codes[i] = b
	}
	return codes, true
}

// List returns the view's adjacency list of owner under dir restricted to a
// bucket-code prefix, merging any pending update buffer.
func (v *VertexPartitioned) List(dir Direction, owner storage.VertexID, codes []uint16) AdjList {
	d := v.dirs[dir]
	baseNbrs, baseEids := v.primary.ownerSlices(dir, owner)
	base := OffsetList(d.lists.BucketList(uint32(owner), codes), baseNbrs, baseEids)
	buf := d.buf[uint32(owner)]
	if len(buf) == 0 && v.primary.tombstones == 0 {
		return base
	}
	matching := filterPrefix(buf, codes)
	if len(matching) == 0 && v.primary.tombstones == 0 {
		return base
	}
	levels := d.levels
	if d.shared {
		levels = v.primary.levels
	}
	return mergeBuffered(v.primary.g, base, matching, levels, v.def.Cfg.Sorts, v.primary.tombstones > 0)
}

// Pred returns the view predicate (with vnbr unresolved).
func (v *VertexPartitioned) Pred() pred.Predicate { return v.def.View.Pred }

// ResolvedPred returns the view predicate with vnbr bound to dir.
func (v *VertexPartitioned) ResolvedPred(dir Direction) pred.Predicate {
	return v.def.View.Pred.ResolveNbr(dir == FW)
}

// Config returns the index configuration.
func (v *VertexPartitioned) Config() Config { return v.def.Cfg }

// EffectiveSorts returns the complete ordering of the innermost lists.
func (v *VertexPartitioned) EffectiveSorts() []SortKey {
	return append(append([]SortKey(nil), v.def.Cfg.Sorts...), NbrIDSort)
}

// applyInsert buffers a freshly inserted edge if it passes the view
// predicate, for every indexed direction. ok is false when a rebuild is
// required (unknown categorical value).
func (v *VertexPartitioned) applyInsert(e storage.EdgeID) bool {
	g := v.primary.g
	for dir, d := range v.dirs {
		resolved := v.def.View.Pred.ResolveNbr(dir == FW)
		if !resolved.IsTrue() && !resolved.Eval(pred.EdgeCtx{G: g, Adj: e}) {
			continue
		}
		owner, nbr := g.Src(e), g.Dst(e)
		if dir == BW {
			owner, nbr = nbr, owner
		}
		levels := d.levels
		if d.shared {
			levels = v.primary.levels
		}
		codes, ok := codesForInsert(g, levels, e, nbr)
		if !ok {
			return false
		}
		d.buf[uint32(owner)] = append(d.buf[uint32(owner)], bufEntry{
			nbr: uint32(nbr), eid: uint64(e),
			sort:  sortOrdinals(g, v.def.Cfg.Sorts, e, nbr),
			codes: codes,
		})
	}
	return true
}

// rebuild reconstructs the offset lists after the primary was rebuilt.
func (v *VertexPartitioned) rebuild() error {
	for dir := range v.dirs {
		d, err := v.buildDir(dir)
		if err != nil {
			return err
		}
		v.dirs[dir] = d
	}
	return nil
}

// NumIndexedEdges returns the total number of stored (direction, edge)
// entries.
func (v *VertexPartitioned) NumIndexedEdges() int64 {
	var n int64
	for _, d := range v.dirs {
		n += int64(d.lists.Len())
	}
	return n
}

// MemoryBytes estimates the footprint of the index (shared partition levels
// cost nothing).
func (v *VertexPartitioned) MemoryBytes() int64 {
	var b int64
	for _, d := range v.dirs {
		b += d.lists.MemoryBytes()
	}
	return b
}
