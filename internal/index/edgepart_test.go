package index

import (
	"testing"

	"github.com/aplusdb/aplus/internal/pred"
	"github.com/aplusdb/aplus/internal/storage"
)

// moneyFlowDef is Example 7's MoneyFlow index: Destination-FW, predicate
// eb.date < eadj.date AND eb.amt > eadj.amt, partitioned by edge label.
func moneyFlowDef() EPDef {
	return EPDef{
		View: View2Hop{
			Name: "MoneyFlow",
			Dir:  DestinationFW,
			Pred: pred.Predicate{}.
				And(pred.VarTerm(pred.VarBound, storage.PropDate, pred.LT, pred.VarAdj, storage.PropDate)).
				And(pred.VarTerm(pred.VarBound, storage.PropAmount, pred.GT, pred.VarAdj, storage.PropAmount)),
		},
		Cfg: DefaultConfig(),
	}
}

func TestEPMoneyFlowExample7(t *testing.T) {
	p := defaultPrimary(t)
	ep, err := BuildEdgePartitioned(p, moneyFlowDef())
	if err != nil {
		t.Fatal(err)
	}
	// t13's list contains exactly t19 (the paper: "It only scans t13's list
	// which contains a single edge t19").
	l := ep.List(storage.Transfer(13), nil)
	if got, want := listEdges(l), []int{19}; !eq(got, want) {
		t.Fatalf("MoneyFlow(t13) = %v, want [19]", got)
	}
	// t17 appears in the lists of both t1 and t16 (multiple membership).
	for _, bound := range []int{1, 16} {
		l := ep.List(storage.Transfer(bound), nil)
		found := false
		for i := 0; i < l.Len(); i++ {
			if l.Edge(i) == storage.Transfer(17) {
				found = true
			}
		}
		if !found {
			t.Errorf("t17 missing from MoneyFlow(t%d) = %v", bound, listEdges(l))
		}
	}
}

func TestEPPartitionedLookup(t *testing.T) {
	p := defaultPrimary(t)
	ep, err := BuildEdgePartitioned(p, moneyFlowDef())
	if err != nil {
		t.Fatal(err)
	}
	// t16's full list vs its Wire-only bucket.
	full := ep.List(storage.Transfer(16), nil)
	codes, ok := ep.ResolveCodes([]storage.Value{storage.Str(storage.LabelWire)})
	if !ok {
		t.Fatal("resolve")
	}
	wire := ep.List(storage.Transfer(16), codes)
	if wire.Len() > full.Len() {
		t.Fatal("bucket larger than owner list")
	}
	g := p.Graph()
	for i := 0; i < wire.Len(); i++ {
		if g.Catalog().EdgeLabelName(g.EdgeLabel(wire.Edge(i))) != storage.LabelWire {
			t.Error("non-Wire edge in Wire bucket")
		}
	}
	// t16 (amt 195, date 16) -> v1's forward edges with date>16, amt<195:
	// t17(€25), t18(€30), t20($80). Wire subset: t17, t20.
	if full.Len() != 3 {
		t.Errorf("MoneyFlow(t16) = %v, want 3 edges", listEdges(full))
	}
	if wire.Len() != 2 {
		t.Errorf("MoneyFlow(t16)/Wire = %v, want 2 edges", listEdges(wire))
	}
}

func TestEPDirectionGeometry(t *testing.T) {
	cases := []struct {
		d       EPDirection
		isDst   bool
		adjDir  Direction
		wantStr string
	}{
		{DestinationFW, true, FW, "Destination-FW"},
		{DestinationBW, true, BW, "Destination-BW"},
		{SourceFW, false, BW, "Source-FW"},
		{SourceBW, false, FW, "Source-BW"},
	}
	for _, c := range cases {
		if c.d.BoundIsDst() != c.isDst || c.d.AdjDirection() != c.adjDir || c.d.String() != c.wantStr {
			t.Errorf("direction %v geometry wrong", c.d)
		}
	}
}

func TestEPRequiresBoundPredicate(t *testing.T) {
	p := defaultPrimary(t)
	def := EPDef{
		View: View2Hop{
			Name: "Redundant",
			Dir:  DestinationFW,
			// Only constrains eadj — the paper's "Redundant" example.
			Pred: pred.Predicate{}.And(pred.ConstTerm(pred.VarAdj, storage.PropAmount, pred.LT, storage.Int(10000))),
		},
		Cfg: DefaultConfig(),
	}
	if _, err := BuildEdgePartitioned(p, def); err == nil {
		t.Error("2-hop view without an eb predicate must be rejected")
	}
}

func TestEPSourceDirections(t *testing.T) {
	p := defaultPrimary(t)
	g := p.Graph()
	// Source-BW: vnbr <-[eadj]- vs -[eb]-> vd. For bound t13 (v2->v5), the
	// list holds v2's forward edges (t7, t8) filtered by the predicate
	// eb.date > eadj.date (earlier transfers out of the same account).
	def := EPDef{
		View: View2Hop{
			Name: "EarlierSiblings",
			Dir:  SourceBW,
			Pred: pred.Predicate{}.And(pred.VarTerm(pred.VarBound, storage.PropDate, pred.GT, pred.VarAdj, storage.PropDate)),
		},
		Cfg: DefaultConfig(),
	}
	ep, err := BuildEdgePartitioned(p, def)
	if err != nil {
		t.Fatal(err)
	}
	l := ep.List(storage.Transfer(13), nil)
	// v2's forward transfers before t13: t7 (date 7), t8 (date 8).
	if got := listEdges(l); !eq(got, []int{7, 8}) {
		// order by nbr: t7->v3, t8->v4
		t.Errorf("EarlierSiblings(t13) = %v, want [7 8]", got)
	}
	for i := 0; i < l.Len(); i++ {
		if g.Src(l.Edge(i)) != g.Src(storage.Transfer(13)) {
			t.Error("adjacent edge does not share the source vertex")
		}
	}
}

func TestEPIndexedEdgeCountAndMemory(t *testing.T) {
	p := defaultPrimary(t)
	ep, err := BuildEdgePartitioned(p, moneyFlowDef())
	if err != nil {
		t.Fatal(err)
	}
	// Cross-check the stored pair count against brute force.
	g := p.Graph()
	var want int64
	for i := 0; i < g.NumEdges(); i++ {
		eb := storage.EdgeID(i)
		for j := 0; j < g.NumEdges(); j++ {
			eadj := storage.EdgeID(j)
			if g.Src(eadj) != g.Dst(eb) {
				continue
			}
			db, da := g.EdgeProp(eb, storage.PropDate), g.EdgeProp(eadj, storage.PropDate)
			ab, aa := g.EdgeProp(eb, storage.PropAmount), g.EdgeProp(eadj, storage.PropAmount)
			if db.IsNull() || da.IsNull() || ab.IsNull() || aa.IsNull() {
				continue
			}
			if db.Compare(da) < 0 && ab.Compare(aa) > 0 {
				want++
			}
		}
	}
	if got := ep.NumIndexedEdges(); got != want {
		t.Errorf("NumIndexedEdges = %d, brute force says %d", got, want)
	}
	if ep.MemoryBytes() <= 0 {
		t.Error("memory should be positive")
	}
}
