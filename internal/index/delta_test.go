package index

import (
	"fmt"
	"math/rand"
	"testing"

	"github.com/aplusdb/aplus/internal/pred"
	"github.com/aplusdb/aplus/internal/storage"
)

// deltaTestGraph builds a labeled multigraph with parallel edges; every
// vertex carries a city drawn from a fixed pool (string sort keys).
func deltaTestGraph(nv, ne int, rng *rand.Rand) *storage.Graph {
	g := storage.NewGraph()
	cities := []string{"ams", "bos", "car", "den"}
	for i := 0; i < nv; i++ {
		var v storage.VertexID
		if i%2 == 0 {
			v = g.AddVertex("A")
		} else {
			v = g.AddVertex("B")
		}
		if err := g.SetVertexProp(v, "city", storage.Str(cities[rng.Intn(len(cities))])); err != nil {
			panic(err)
		}
	}
	labels := []string{"X", "Y"}
	for i := 0; i < ne; i++ {
		src := storage.VertexID(rng.Intn(nv))
		dst := storage.VertexID(rng.Intn(nv))
		if _, err := g.AddEdge(src, dst, labels[rng.Intn(len(labels))]); err != nil {
			panic(err)
		}
	}
	return g
}

// applyRandomOps drives a DeltaBuilder with a mix of inserts (including to
// brand-new vertices) and deletes (of base and of delta edges), mirroring
// every op on the builder's graph clone.
func applyRandomOps(b *DeltaBuilder, g *storage.Graph, ops int, rng *rand.Rand) {
	labels := []string{"X", "Y"}
	for i := 0; i < ops; i++ {
		switch {
		case rng.Intn(4) == 0 && g.NumEdges() > 0:
			e := storage.EdgeID(rng.Intn(g.NumEdges()))
			b.Delete(e)
		default:
			nv := g.NumVertices()
			if rng.Intn(8) == 0 {
				g.AddVertex("A") // a vertex the base CSR has no owner slot for
				nv++
			}
			src := storage.VertexID(rng.Intn(nv))
			dst := storage.VertexID(rng.Intn(nv))
			e, err := g.AddEdge(src, dst, labels[rng.Intn(len(labels))])
			if err != nil {
				panic(err)
			}
			b.Insert(e)
		}
	}
}

// spliceAll fetches (dir, owner, codes) through the delta overlay exactly
// the way the executor does.
func spliceAll(p *Primary, d *Delta, dir Direction, v storage.VertexID, codes []uint16) ([]uint32, []uint64) {
	base := p.List(dir, v, codes)
	if !d.Touches(dir, uint32(v)) {
		return base.Materialize()
	}
	return d.Splice(p, dir, uint32(v), codes, base, nil, nil)
}

// TestDeltaSpliceMatchesRebuild checks the core overlay invariant: for
// every owner, direction, and bucket prefix, splicing the delta into the
// frozen base yields entry-for-entry the list a full rebuild over the same
// final state produces, and SpliceLen agrees with the materialized length.
func TestDeltaSpliceMatchesRebuild(t *testing.T) {
	for _, cfg := range []struct {
		name string
		c    Config
	}{
		{"default", DefaultConfig()},
		{"two-level", Config{Partitions: []PartitionKey{
			{Var: pred.VarAdj, Prop: pred.PropLabel},
			{Var: pred.VarNbr, Prop: pred.PropLabel},
		}}},
		{"nbr-label-sorted", Config{
			Partitions: []PartitionKey{{Var: pred.VarAdj, Prop: pred.PropLabel}},
			Sorts:      []SortKey{{Var: pred.VarNbr, Prop: pred.PropLabel}},
		}},
		// String-property sort: delta ordinals must come from the frozen
		// base's dictionary rank space (vertices added by the batch have a
		// NULL city, which sorts last in every space).
		{"nbr-city-sorted", Config{
			Partitions: []PartitionKey{{Var: pred.VarAdj, Prop: pred.PropLabel}},
			Sorts:      []SortKey{{Var: pred.VarNbr, Prop: "city"}},
		}},
	} {
		t.Run(cfg.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(42))
			g := deltaTestGraph(40, 160, rng)
			s, err := NewStore(g, cfg.c)
			if err != nil {
				t.Fatal(err)
			}
			g2 := g.Clone()
			b := NewDeltaBuilder(NewDelta(), s.Primary(), g2)
			applyRandomOps(b, g2, 120, rng)
			if b.Impossible() {
				t.Fatal("ops unexpectedly unbufferable")
			}
			d := b.Freeze()

			// Reference: rebuild from the final state.
			gRef := g2.Clone()
			gRef.ApplyTombstones(d.DeletedEdges())
			ref, err := NewStore(gRef, cfg.c)
			if err != nil {
				t.Fatal(err)
			}

			var prefixes [][]uint16
			prefixes = append(prefixes, nil)
			cards := s.Primary().LevelCards()
			for c := 0; c < cards[0]; c++ {
				prefixes = append(prefixes, []uint16{uint16(c)})
			}
			for _, dir := range []Direction{FW, BW} {
				for v := 0; v < g2.NumVertices(); v++ {
					for _, codes := range prefixes {
						gotN, gotE := spliceAll(s.Primary(), d, dir, storage.VertexID(v), codes)
						wantN, wantE := ref.Primary().List(dir, storage.VertexID(v), codes).Materialize()
						key := fmt.Sprintf("dir=%v v=%d codes=%v", dir, v, codes)
						if len(gotN) != len(wantN) {
							t.Fatalf("%s: len %d want %d", key, len(gotN), len(wantN))
						}
						baseLen := s.Primary().List(dir, storage.VertexID(v), codes).Len()
						if sl := d.SpliceLen(dir, uint32(v), codes, baseLen); sl != len(wantN) {
							t.Fatalf("%s: SpliceLen %d want %d", key, sl, len(wantN))
						}
						for i := range gotN {
							if gotN[i] != wantN[i] || gotE[i] != wantE[i] {
								t.Fatalf("%s: entry %d (%d,%d) want (%d,%d)",
									key, i, gotN[i], gotE[i], wantN[i], wantE[i])
							}
						}
					}
				}
			}
		})
	}
}

// TestDeltaImpossibleOnNewCategorical pins the fallback contract: an edge
// whose label the base partition levels have never seen cannot be buffered
// and must flip the builder to Impossible.
func TestDeltaImpossibleOnNewCategorical(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := deltaTestGraph(16, 40, rng)
	s, err := NewStore(g, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	g2 := g.Clone()
	b := NewDeltaBuilder(NewDelta(), s.Primary(), g2)
	e, err := g2.AddEdge(0, 1, "BrandNewLabel")
	if err != nil {
		t.Fatal(err)
	}
	b.Insert(e)
	if !b.Impossible() {
		t.Fatal("insert with unknown categorical value must be unbufferable")
	}
}

// TestDeltaBuilderPreservesParent checks the copy-on-write contract: a
// successor builder must not disturb the published parent overlay.
func TestDeltaBuilderPreservesParent(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	g := deltaTestGraph(24, 80, rng)
	s, err := NewStore(g, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	g2 := g.Clone()
	b1 := NewDeltaBuilder(NewDelta(), s.Primary(), g2)
	applyRandomOps(b1, g2, 40, rng)
	d1 := b1.Freeze()

	// Record d1's view of every list.
	type snap struct{ n []uint32 }
	before := map[string][]uint32{}
	for _, dir := range []Direction{FW, BW} {
		for v := 0; v < g2.NumVertices(); v++ {
			n, _ := spliceAll(s.Primary(), d1, dir, storage.VertexID(v), nil)
			before[fmt.Sprintf("%v/%d", dir, v)] = append([]uint32(nil), n...)
		}
	}
	_ = snap{}

	g3 := g2.Clone()
	b2 := NewDeltaBuilder(d1, s.Primary(), g3)
	applyRandomOps(b2, g3, 40, rng)
	b2.Freeze()

	for _, dir := range []Direction{FW, BW} {
		for v := 0; v < g2.NumVertices(); v++ {
			n, _ := spliceAll(s.Primary(), d1, dir, storage.VertexID(v), nil)
			want := before[fmt.Sprintf("%v/%d", dir, v)]
			if len(n) != len(want) {
				t.Fatalf("dir=%v v=%d: parent overlay changed: len %d want %d", dir, v, len(n), len(want))
			}
			for i := range n {
				if n[i] != want[i] {
					t.Fatalf("dir=%v v=%d: parent overlay changed at %d", dir, v, i)
				}
			}
		}
	}
}
