package index

import (
	"fmt"
	"sync"

	"github.com/aplusdb/aplus/internal/storage"
)

// DefaultMergeThreshold is the number of buffered maintenance operations
// after which update buffers are merged into the index pages (Section IV-C:
// "The update buffers are merged into the actual data pages when the buffer
// is full").
const DefaultMergeThreshold = 4096

// Store is the INDEX STORE of Section IV-A: it owns the primary A+ indexes
// and every secondary index, maintains their metadata for the optimizer,
// and coordinates updates across them.
//
// Concurrency: every mutating method (InsertEdge, DeleteEdge, Flush,
// Reconfigure, Create*, DropIndex) takes the store's write lock. Readers —
// the optimizer and query workers — do not lock per access; instead they
// bracket whole queries with RLock/RUnlock, so a query observes one
// consistent index state and writes wait for in-flight queries to drain.
type Store struct {
	g       *storage.Graph
	primary *Primary
	vps     []*VertexPartitioned
	eps     []*EdgePartitioned

	// mu is the coarse reader/writer lock described above.
	mu sync.RWMutex

	// MergeThreshold controls how much buffered maintenance work may
	// accumulate before a merge; tests lower it to exercise merging.
	MergeThreshold int
}

// RLock takes the store's read lock. Bracket each query's planning and
// execution with RLock/RUnlock so index mutations wait for it to finish.
func (s *Store) RLock() { s.mu.RLock() }

// RUnlock releases the read lock taken by RLock.
func (s *Store) RUnlock() { s.mu.RUnlock() }

// Lock takes the store's write lock, excluding all queries. It is for
// callers that mutate shared state the store's own write methods do not
// cover (e.g. appending vertices to the underlying graph); the store's
// write methods lock internally and must not be called while holding it.
func (s *Store) Lock() { s.mu.Lock() }

// Unlock releases the write lock taken by Lock.
func (s *Store) Unlock() { s.mu.Unlock() }

// NewStore builds a store over g with the primary indexes configured by
// cfg (use DefaultConfig for GraphflowDB's default).
func NewStore(g *storage.Graph, cfg Config) (*Store, error) {
	p, err := BuildPrimary(g, cfg)
	if err != nil {
		return nil, err
	}
	return &Store{g: g, primary: p, MergeThreshold: DefaultMergeThreshold}, nil
}

// Graph returns the underlying graph.
func (s *Store) Graph() *storage.Graph { return s.g }

// Primary returns the primary index pair.
func (s *Store) Primary() *Primary { return s.primary }

// VertexIndexes returns the secondary vertex-partitioned indexes.
func (s *Store) VertexIndexes() []*VertexPartitioned { return s.vps }

// EdgeIndexes returns the secondary edge-partitioned indexes.
func (s *Store) EdgeIndexes() []*EdgePartitioned { return s.eps }

// Reconfigure rebuilds the primary indexes under a new configuration (the
// paper's RECONFIGURE PRIMARY INDEXES command) and rebuilds every secondary
// index, since their offsets reference primary list positions.
func (s *Store) Reconfigure(cfg Config) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.flushLocked(); err != nil {
		return err
	}
	p, err := BuildPrimary(s.g, cfg)
	if err != nil {
		return err
	}
	s.primary = p
	for _, v := range s.vps {
		v.primary = p
		if err := v.rebuild(); err != nil {
			return err
		}
	}
	for _, e := range s.eps {
		e.primary = p
		if err := e.rebuild(); err != nil {
			return err
		}
	}
	return nil
}

// CreateVertexPartitioned builds and registers a secondary
// vertex-partitioned index (the paper's CREATE 1-HOP VIEW command).
func (s *Store) CreateVertexPartitioned(def VPDef) (*VertexPartitioned, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.lookupName(def.View.Name) {
		return nil, fmt.Errorf("index: an index named %q already exists", def.View.Name)
	}
	if err := s.flushLocked(); err != nil {
		return nil, err
	}
	v, err := BuildVertexPartitioned(s.primary, def)
	if err != nil {
		return nil, err
	}
	s.vps = append(s.vps, v)
	return v, nil
}

// CreateEdgePartitioned builds and registers a secondary edge-partitioned
// index (the paper's CREATE 2-HOP VIEW command).
func (s *Store) CreateEdgePartitioned(def EPDef) (*EdgePartitioned, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.lookupName(def.View.Name) {
		return nil, fmt.Errorf("index: an index named %q already exists", def.View.Name)
	}
	if err := s.flushLocked(); err != nil {
		return nil, err
	}
	e, err := BuildEdgePartitioned(s.primary, def)
	if err != nil {
		return nil, err
	}
	s.eps = append(s.eps, e)
	return e, nil
}

// DropIndex removes a secondary index by name.
func (s *Store) DropIndex(name string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i, v := range s.vps {
		if v.Name() == name {
			s.vps = append(s.vps[:i], s.vps[i+1:]...)
			return true
		}
	}
	for i, e := range s.eps {
		if e.Name() == name {
			s.eps = append(s.eps[:i], s.eps[i+1:]...)
			return true
		}
	}
	return false
}

func (s *Store) lookupName(name string) bool {
	for _, v := range s.vps {
		if v.Name() == name {
			return true
		}
	}
	for _, e := range s.eps {
		if e.Name() == name {
			return true
		}
	}
	return false
}

// InsertEdge adds an edge with properties to the graph and maintains every
// index: the edge lands in update buffers first and is merged into data
// pages when the merge threshold is reached (Section IV-C).
func (s *Store) InsertEdge(src, dst storage.VertexID, label string, props map[string]storage.Value) (storage.EdgeID, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, err := s.g.AddEdge(src, dst, label)
	if err != nil {
		return 0, err
	}
	for k, v := range props {
		if err := s.g.SetEdgeProp(e, k, v); err != nil {
			return 0, err
		}
	}
	ok := s.primary.applyInsert(e)
	for _, v := range s.vps {
		ok = ok && v.applyInsert(e)
	}
	for _, ep := range s.eps {
		ok = ok && ep.applyInsert(e)
	}
	if !ok {
		// The edge carries a categorical value unknown to some partition
		// level; buffering is impossible, rebuild unconditionally.
		if err := s.rebuildAll(); err != nil {
			return 0, err
		}
		return e, nil
	}
	if s.primary.pendingWork() >= s.MergeThreshold {
		if err := s.flushLocked(); err != nil {
			return 0, err
		}
	}
	return e, nil
}

// DeleteEdge tombstones an edge in the graph and the indexes; the tombstone
// is physically removed at the next merge.
func (s *Store) DeleteEdge(e storage.EdgeID) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.g.DeleteEdge(e); err != nil {
		return err
	}
	s.primary.applyDelete()
	if s.primary.pendingWork() >= s.MergeThreshold {
		return s.flushLocked()
	}
	return nil
}

// Flush merges all pending update buffers and tombstones by rebuilding the
// primary CSRs and every secondary offset list.
func (s *Store) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.flushLocked()
}

func (s *Store) flushLocked() error {
	if s.primary.pendingWork() == 0 {
		return nil
	}
	return s.rebuildAll()
}

func (s *Store) rebuildAll() error {
	if err := s.primary.rebuild(); err != nil {
		return err
	}
	for _, v := range s.vps {
		if err := v.rebuild(); err != nil {
			return err
		}
	}
	for _, e := range s.eps {
		if err := e.rebuild(); err != nil {
			return err
		}
	}
	return nil
}

// CloneRebuilt builds a brand-new store over g with the primary
// configuration cfg and this store's secondary index definitions, leaving
// the receiver untouched. It is the snapshot merger's fold step: g is a
// private graph clone with pending tombstones already applied, and the
// result becomes the frozen base of the next epoch.
func (s *Store) CloneRebuilt(g *storage.Graph, cfg Config) (*Store, error) {
	ns, err := NewStore(g, cfg)
	if err != nil {
		return nil, err
	}
	ns.MergeThreshold = s.MergeThreshold
	for _, v := range s.vps {
		nv, err := BuildVertexPartitioned(ns.primary, v.Def())
		if err != nil {
			return nil, err
		}
		ns.vps = append(ns.vps, nv)
	}
	for _, e := range s.eps {
		ne, err := BuildEdgePartitioned(ns.primary, e.Def())
		if err != nil {
			return nil, err
		}
		ns.eps = append(ns.eps, ne)
	}
	return ns, nil
}

// WithVertexPartitioned returns a copy of the store (sharing the graph,
// primary, and existing secondaries) with v registered. Frozen stores
// published in snapshots are never mutated; DDL derives a successor store
// instead.
func (s *Store) WithVertexPartitioned(v *VertexPartitioned) *Store {
	ns := s.shallowCopy()
	ns.vps = append(ns.vps, v)
	return ns
}

// WithEdgePartitioned is WithVertexPartitioned for 2-hop views.
func (s *Store) WithEdgePartitioned(e *EdgePartitioned) *Store {
	ns := s.shallowCopy()
	ns.eps = append(ns.eps, e)
	return ns
}

// WithoutIndex returns a copy of the store lacking the named secondary
// index; ok is false (and the receiver is returned) when no index matches.
func (s *Store) WithoutIndex(name string) (*Store, bool) {
	for i, v := range s.vps {
		if v.Name() == name {
			ns := s.shallowCopy()
			ns.vps = append(ns.vps[:i:i], ns.vps[i+1:]...)
			return ns, true
		}
	}
	for i, e := range s.eps {
		if e.Name() == name {
			ns := s.shallowCopy()
			ns.eps = append(ns.eps[:i:i], ns.eps[i+1:]...)
			return ns, true
		}
	}
	return s, false
}

// HasIndex reports whether a secondary index with the given name exists.
func (s *Store) HasIndex(name string) bool { return s.lookupName(name) }

func (s *Store) shallowCopy() *Store {
	return &Store{
		g:              s.g,
		primary:        s.primary,
		vps:            append([]*VertexPartitioned(nil), s.vps...),
		eps:            append([]*EdgePartitioned(nil), s.eps...),
		MergeThreshold: s.MergeThreshold,
	}
}

// Stats summarizes the store's footprint.
type Stats struct {
	// PrimaryLevels and PrimaryIDLists split the primary index footprint
	// into partitioning levels and ID lists.
	PrimaryLevels, PrimaryIDLists int64
	// SecondaryBytes is the total footprint of all secondary indexes.
	SecondaryBytes int64
	// IndexedEdges is the total number of edge entries across all indexes
	// (the |E_indexed| column of Table IV); the primary counts each edge
	// twice (forward + backward is reported as one).
	IndexedEdges int64
}

// TotalBytes returns the whole indexing subsystem's footprint.
func (st Stats) TotalBytes() int64 {
	return st.PrimaryLevels + st.PrimaryIDLists + st.SecondaryBytes
}

// Stats reports the current footprint of all indexes.
func (s *Store) Stats() Stats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.StatsLocked()
}

// StatsLocked is Stats for callers already holding the store's read lock
// (a second RLock would deadlock against a waiting writer).
func (s *Store) StatsLocked() Stats {
	var st Stats
	st.PrimaryLevels, st.PrimaryIDLists = s.primary.MemoryBytes()
	st.IndexedEdges = int64(s.g.NumLiveEdges())
	for _, v := range s.vps {
		st.SecondaryBytes += v.MemoryBytes()
		st.IndexedEdges += v.NumIndexedEdges()
	}
	for _, e := range s.eps {
		st.SecondaryBytes += e.MemoryBytes()
		st.IndexedEdges += e.NumIndexedEdges()
	}
	return st
}
