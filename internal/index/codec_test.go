package index

import (
	"testing"

	"github.com/aplusdb/aplus/internal/enc"
	"github.com/aplusdb/aplus/internal/pred"
	"github.com/aplusdb/aplus/internal/storage"
)

// buildCodecStore assembles a store with a multi-level primary, a
// vertex-partitioned view, and an edge-partitioned view over a small
// money-transfer graph.
func buildCodecStore(t *testing.T) *Store {
	t.Helper()
	g := storage.NewGraph()
	n := 8
	for i := 0; i < n; i++ {
		g.AddVertex("Account")
	}
	add := func(s, d int, label, cur string, amt int64) {
		e, err := g.AddEdge(storage.VertexID(s), storage.VertexID(d), label)
		if err != nil {
			t.Fatal(err)
		}
		if err := g.SetEdgeProp(e, "currency", storage.Str(cur)); err != nil {
			t.Fatal(err)
		}
		if err := g.SetEdgeProp(e, "amt", storage.Int(amt)); err != nil {
			t.Fatal(err)
		}
	}
	add(0, 1, "W", "EUR", 100)
	add(1, 2, "W", "USD", 20)
	add(2, 3, "DD", "EUR", 35)
	add(3, 0, "W", "EUR", 60)
	add(0, 2, "DD", "GBP", 11)
	add(2, 0, "W", "USD", 70)
	add(4, 5, "W", "EUR", 5)
	add(5, 6, "DD", "USD", 45)
	_ = g.DeleteEdge(5)

	cfg := Config{
		Partitions: []PartitionKey{{Var: pred.VarAdj, Prop: pred.PropLabel}, {Var: pred.VarAdj, Prop: "currency"}},
		Sorts:      []SortKey{{Var: pred.VarAdj, Prop: "amt"}},
	}
	s, err := NewStore(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.CreateVertexPartitioned(VPDef{
		View: View1Hop{Name: "BigEUR", Pred: pred.Predicate{}.
			And(pred.ConstTerm(pred.VarAdj, "currency", pred.EQ, storage.Str("EUR"))).
			And(pred.ConstTerm(pred.VarAdj, "amt", pred.GE, storage.Int(30)))},
		Dirs: []Direction{FW, BW},
		Cfg:  Config{Partitions: []PartitionKey{{Var: pred.VarAdj, Prop: pred.PropLabel}}},
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.CreateEdgePartitioned(EPDef{
		View: View2Hop{Name: "Flow", Dir: DestinationFW, Pred: pred.Predicate{}.
			And(pred.VarTermShift(pred.VarBound, "amt", pred.LT, pred.VarAdj, "amt", 50))},
		Cfg: Config{Partitions: []PartitionKey{{Var: pred.VarAdj, Prop: pred.PropLabel}}},
	}); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestStoreCodecRoundTrip(t *testing.T) {
	s := buildCodecStore(t)

	w := enc.NewWriter()
	storage.EncodeGraph(w, s.Graph())
	EncodeStore(w, s)

	r := enc.NewReader(w.Bytes())
	g2, err := storage.DecodeGraph(r)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := DecodeStore(r, g2)
	if err != nil {
		t.Fatal(err)
	}

	// Primary CSR payloads are bit-identical.
	if s2.primary.edgeBound != s.primary.edgeBound {
		t.Fatalf("edge bound %d vs %d", s2.primary.edgeBound, s.primary.edgeBound)
	}
	for dirI, dir := range []Direction{FW, BW} {
		a, b := s.primary.dirCSR(dir), s2.primary.dirCSR(dir)
		if a.Len() != b.Len() || a.NumOwners() != b.NumOwners() {
			t.Fatalf("dir %d shape mismatch", dirI)
		}
		for i := range a.Nbrs() {
			if a.Nbrs()[i] != b.Nbrs()[i] || a.EIDs()[i] != b.EIDs()[i] {
				t.Fatalf("dir %d entry %d mismatch", dirI, i)
			}
		}
	}

	// Per-owner lists (including bucket-restricted ones) agree.
	codes, ok := s2.primary.ResolveCodes([]storage.Value{storage.Str("W"), storage.Str("EUR")})
	if !ok {
		t.Fatal("resolve codes")
	}
	for v := 0; v < s.Graph().NumVertices(); v++ {
		for _, dir := range []Direction{FW, BW} {
			la := s.primary.List(dir, storage.VertexID(v), codes)
			lb := s2.primary.List(dir, storage.VertexID(v), codes)
			if la.Len() != lb.Len() {
				t.Fatalf("owner %d dir %v list length %d vs %d", v, dir, la.Len(), lb.Len())
			}
			for i := 0; i < la.Len(); i++ {
				na, ea := la.Get(i)
				nb, eb := lb.Get(i)
				if na != nb || ea != eb {
					t.Fatalf("owner %d dir %v entry %d mismatch", v, dir, i)
				}
			}
		}
	}

	// Secondary descriptors and rebuilt contents survive.
	if len(s2.vps) != 1 || len(s2.eps) != 1 {
		t.Fatalf("secondaries: %d vps, %d eps", len(s2.vps), len(s2.eps))
	}
	if s2.vps[0].Name() != "BigEUR" || s2.eps[0].Name() != "Flow" {
		t.Fatal("secondary names")
	}
	if got, want := s2.vps[0].Def().View.Pred.String(), s.vps[0].Def().View.Pred.String(); got != want {
		t.Fatalf("vp predicate %q vs %q", got, want)
	}
	if got, want := s2.eps[0].Def().View.Pred.String(), s.eps[0].Def().View.Pred.String(); got != want {
		t.Fatalf("ep predicate %q vs %q", got, want)
	}
	if s2.vps[0].NumIndexedEdges() != s.vps[0].NumIndexedEdges() {
		t.Fatalf("vp entries %d vs %d", s2.vps[0].NumIndexedEdges(), s.vps[0].NumIndexedEdges())
	}
	if s2.eps[0].NumIndexedEdges() != s.eps[0].NumIndexedEdges() {
		t.Fatalf("ep entries %d vs %d", s2.eps[0].NumIndexedEdges(), s.eps[0].NumIndexedEdges())
	}
}

func TestStoreCodecCorruption(t *testing.T) {
	s := buildCodecStore(t)
	w := enc.NewWriter()
	storage.EncodeGraph(w, s.Graph())
	mark := w.Len()
	EncodeStore(w, s)
	full := w.Bytes()

	// Truncations inside the store image must fail decode, never panic.
	for _, cut := range []int{mark, mark + 1, mark + (len(full)-mark)/2, len(full) - 1} {
		r := enc.NewReader(full[:cut])
		g2, err := storage.DecodeGraph(r)
		if err != nil {
			t.Fatalf("graph section should be intact at cut %d: %v", cut, err)
		}
		if _, err := DecodeStore(r, g2); err == nil {
			t.Fatalf("store truncation at %d accepted", cut)
		}
	}
}

func TestConfigCodecRoundTrip(t *testing.T) {
	cfgs := []Config{
		{},
		DefaultConfig(),
		{
			Partitions: []PartitionKey{{Var: pred.VarAdj, Prop: pred.PropLabel}, {Var: pred.VarNbr, Prop: "city"}},
			Sorts:      []SortKey{{Var: pred.VarNbr, Prop: "age"}, {Var: pred.VarAdj, Prop: "amt"}},
		},
	}
	for _, cfg := range cfgs {
		w := enc.NewWriter()
		EncodeConfig(w, cfg)
		got := DecodeConfig(enc.NewReader(w.Bytes()))
		if got.String() != cfg.String() {
			t.Fatalf("config %q vs %q", got, cfg)
		}
	}
}
