package index

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"github.com/aplusdb/aplus/internal/enc"
	"github.com/aplusdb/aplus/internal/pred"
	"github.com/aplusdb/aplus/internal/storage"
)

// incrementalTestGraph builds a labeled multigraph with guaranteed parallel
// edges, int edge weights (2-hop predicates), and vertex cities (string
// sort keys and 1-hop predicates).
func incrementalTestGraph(nv, ne int, rng *rand.Rand) *storage.Graph {
	g := storage.NewGraph()
	cities := []string{"ams", "bos", "car", "den"}
	for i := 0; i < nv; i++ {
		label := "A"
		if i%2 == 1 {
			label = "B"
		}
		v := g.AddVertex(label)
		if err := g.SetVertexProp(v, "city", storage.Str(cities[rng.Intn(len(cities))])); err != nil {
			panic(err)
		}
	}
	labels := []string{"X", "Y"}
	addEdge := func(src, dst storage.VertexID) {
		e, err := g.AddEdge(src, dst, labels[rng.Intn(len(labels))])
		if err != nil {
			panic(err)
		}
		if err := g.SetEdgeProp(e, "w", storage.Int(int64(rng.Intn(50)))); err != nil {
			panic(err)
		}
	}
	for i := 0; i < ne; i++ {
		src := storage.VertexID(rng.Intn(nv))
		dst := storage.VertexID(rng.Intn(nv))
		addEdge(src, dst)
		if rng.Intn(6) == 0 {
			addEdge(src, dst) // forced parallel edge
		}
	}
	return g
}

// applyIncrementalOps drives a DeltaBuilder with inserts (with properties,
// including parallel edges and edges touching brand-new vertices) and
// deletes of both base and freshly inserted edges.
func applyIncrementalOps(b *DeltaBuilder, g *storage.Graph, ops int, rng *rand.Rand) {
	labels := []string{"X", "Y"}
	for i := 0; i < ops; i++ {
		if rng.Intn(4) == 0 && g.NumEdges() > 0 {
			b.Delete(storage.EdgeID(rng.Intn(g.NumEdges())))
			continue
		}
		nv := g.NumVertices()
		if rng.Intn(10) == 0 {
			v := g.AddVertex("A")
			if err := g.SetVertexProp(v, "city", storage.Str("bos")); err != nil {
				panic(err)
			}
			nv++
		}
		src := storage.VertexID(rng.Intn(nv))
		dst := storage.VertexID(rng.Intn(nv))
		n := 1 + rng.Intn(2) // sometimes a parallel pair
		for k := 0; k < n; k++ {
			e, err := g.AddEdge(src, dst, labels[rng.Intn(len(labels))])
			if err != nil {
				panic(err)
			}
			if err := g.SetEdgeProp(e, "w", storage.Int(int64(rng.Intn(50)))); err != nil {
				panic(err)
			}
			b.Insert(e)
		}
	}
}

// addIncrementalSecondaries registers one shared-level VP, one filtered VP,
// and one EP so every secondary patch path is exercised.
func addIncrementalSecondaries(t *testing.T, s *Store, primaryCfg Config) {
	t.Helper()
	if _, err := s.CreateVertexPartitioned(VPDef{
		View: View1Hop{Name: "shared"},
		Dirs: []Direction{FW, BW},
		Cfg: Config{
			Partitions: primaryCfg.Partitions,
			Sorts:      []SortKey{{Var: pred.VarNbr, Prop: "city"}},
		},
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.CreateVertexPartitioned(VPDef{
		View: View1Hop{Name: "bosOnly", Pred: pred.Predicate{}.
			And(pred.ConstTerm(pred.VarNbr, "city", pred.EQ, storage.Str("bos")))},
		Dirs: []Direction{FW},
		Cfg:  Config{Partitions: []PartitionKey{{Var: pred.VarAdj, Prop: pred.PropLabel}}},
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.CreateEdgePartitioned(EPDef{
		View: View2Hop{Name: "heavier", Dir: DestinationFW, Pred: pred.Predicate{}.
			And(pred.VarTerm(pred.VarBound, "w", pred.LT, pred.VarAdj, "w"))},
		Cfg: Config{Partitions: []PartitionKey{{Var: pred.VarAdj, Prop: pred.PropLabel}}},
	}); err != nil {
		t.Fatal(err)
	}
}

// TestCloneIncrementalMatchesFullRebuild is the fold-parity contract: for
// random deltas (inserts with properties, parallel edges, new vertices, and
// deletes) over three primary configurations, the incrementally patched
// successor store must be indistinguishable from a full rebuild — the
// checkpoint encoding is bit-identical and every primary and secondary list
// answers entry-for-entry the same.
func TestCloneIncrementalMatchesFullRebuild(t *testing.T) {
	configs := []struct {
		name string
		c    Config
	}{
		{"default", DefaultConfig()},
		{"two-level", Config{Partitions: []PartitionKey{
			{Var: pred.VarAdj, Prop: pred.PropLabel},
			{Var: pred.VarNbr, Prop: pred.PropLabel},
		}}},
		{"city-sorted", Config{
			Partitions: []PartitionKey{{Var: pred.VarAdj, Prop: pred.PropLabel}},
			Sorts:      []SortKey{{Var: pred.VarNbr, Prop: "city"}},
		}},
	}
	for _, cfg := range configs {
		t.Run(cfg.name, func(t *testing.T) {
			for trial := 0; trial < 6; trial++ {
				rng := rand.New(rand.NewSource(int64(100*trial) + 7))
				g := incrementalTestGraph(40, 150, rng)
				s, err := NewStore(g, cfg.c)
				if err != nil {
					t.Fatal(err)
				}
				addIncrementalSecondaries(t, s, cfg.c)

				g2 := g.Clone()
				b := NewDeltaBuilder(NewDelta(), s.Primary(), g2)
				applyIncrementalOps(b, g2, 80, rng)
				if b.Impossible() {
					t.Fatal("ops unexpectedly unbufferable")
				}
				d := b.Freeze()

				gInc := g2.Clone()
				gInc.ApplyTombstones(d.DeletedEdges())
				inc, ok := s.CloneIncremental(gInc, d)
				if !ok {
					t.Fatal("CloneIncremental declined a bufferable delta")
				}
				gFull := g2.Clone()
				gFull.ApplyTombstones(d.DeletedEdges())
				full, err := s.CloneRebuilt(gFull, cfg.c)
				if err != nil {
					t.Fatal(err)
				}
				compareStores(t, fmt.Sprintf("trial %d", trial), inc, full)
			}
		})
	}
}

// compareStores requires two stores over equal graphs to be
// indistinguishable: bit-identical checkpoint images and entry-for-entry
// equal primary and secondary lists.
func compareStores(t *testing.T, key string, inc, full *Store) {
	t.Helper()
	wi, wf := enc.NewWriter(), enc.NewWriter()
	EncodeStore(wi, inc)
	EncodeStore(wf, full)
	if !bytes.Equal(wi.Bytes(), wf.Bytes()) {
		t.Fatalf("%s: checkpoint encodings diverge (%d vs %d bytes)", key, len(wi.Bytes()), len(wf.Bytes()))
	}
	g := inc.Graph()
	for _, dir := range []Direction{FW, BW} {
		for v := 0; v < g.NumVertices(); v++ {
			compareLists(t, fmt.Sprintf("%s: primary dir=%v v=%d", key, dir, v),
				inc.Primary().List(dir, storage.VertexID(v), nil),
				full.Primary().List(dir, storage.VertexID(v), nil))
		}
	}
	for i, vp := range inc.vps {
		fvp := full.vps[i]
		for dir := range vp.dirs {
			for v := 0; v < g.NumVertices(); v++ {
				compareLists(t, fmt.Sprintf("%s: vp %q dir=%v v=%d", key, vp.Name(), dir, v),
					vp.List(dir, storage.VertexID(v), nil),
					fvp.List(dir, storage.VertexID(v), nil))
			}
			if vp.SharedLevels(dir) != fvp.SharedLevels(dir) {
				t.Fatalf("%s: vp %q dir=%v shared-levels diverge", key, vp.Name(), dir)
			}
		}
		if vp.MemoryBytes() != fvp.MemoryBytes() {
			t.Fatalf("%s: vp %q memory %d vs %d", key, vp.Name(), vp.MemoryBytes(), fvp.MemoryBytes())
		}
	}
	for i, ep := range inc.eps {
		fep := full.eps[i]
		for e := 0; e < g.NumEdges(); e++ {
			if g.EdgeDeleted(storage.EdgeID(e)) {
				continue
			}
			compareLists(t, fmt.Sprintf("%s: ep %q eb=%d", key, ep.Name(), e),
				ep.List(storage.EdgeID(e), nil),
				fep.List(storage.EdgeID(e), nil))
		}
		if ep.MemoryBytes() != fep.MemoryBytes() {
			t.Fatalf("%s: ep %q memory %d vs %d", key, ep.Name(), ep.MemoryBytes(), fep.MemoryBytes())
		}
	}
}

func compareLists(t *testing.T, key string, got, want AdjList) {
	t.Helper()
	gn, ge := got.Materialize()
	wn, we := want.Materialize()
	if len(gn) != len(wn) {
		t.Fatalf("%s: len %d want %d", key, len(gn), len(wn))
	}
	for i := range gn {
		if gn[i] != wn[i] || ge[i] != we[i] {
			t.Fatalf("%s: entry %d (%d,%d) want (%d,%d)", key, i, gn[i], ge[i], wn[i], we[i])
		}
	}
}

// TestIncrementalEPPatchPathParity pins the edge-partitioned PATCH path
// specifically: on a graph large enough that a small delta passes the EP
// cost gate, the patched view must equal the full rebuild. (The randomized
// store-level test may route EP through its full-build fallback when the
// delta's fan-out trips the gate, so this test asserts the gate was NOT
// tripped before comparing.)
func TestIncrementalEPPatchPathParity(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	g := incrementalTestGraph(200, 1200, rng)
	cfg := DefaultConfig()
	s, err := NewStore(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	addIncrementalSecondaries(t, s, cfg)

	g2 := g.Clone()
	b := NewDeltaBuilder(NewDelta(), s.Primary(), g2)
	applyIncrementalOps(b, g2, 6, rng)
	d := b.Freeze()

	gInc := g2.Clone()
	gInc.ApplyTombstones(d.DeletedEdges())
	np, ok := incrementalPrimary(s.primary, gInc, d, d.dirtyOwnerSets())
	if !ok {
		t.Fatal("primary patch declined")
	}
	nep, ok := incrementalEdgePartitioned(s.eps[0], np, d, d.dirtyOwnerSets())
	if !ok {
		t.Fatal("EP patch declined a small delta (cost gate misfired)")
	}
	gFull := g2.Clone()
	gFull.ApplyTombstones(d.DeletedEdges())
	full, err := s.CloneRebuilt(gFull, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for e := 0; e < gInc.NumEdges(); e++ {
		if gInc.EdgeDeleted(storage.EdgeID(e)) {
			continue
		}
		compareLists(t, fmt.Sprintf("ep patch eb=%d", e),
			nep.List(storage.EdgeID(e), nil),
			full.eps[0].List(storage.EdgeID(e), nil))
	}
	if nep.MemoryBytes() != full.eps[0].MemoryBytes() {
		t.Fatalf("ep patch memory %d vs %d", nep.MemoryBytes(), full.eps[0].MemoryBytes())
	}
}

// TestIncrementalEPDeclinesHubFanout: one insert at a hub vertex makes
// nearly every bound edge dirty, so the EP patch's re-scan work approaches
// a full build's — the cost gate must decline, and CloneIncremental must
// still succeed by rebuilding that view from the patched primary.
func TestIncrementalEPDeclinesHubFanout(t *testing.T) {
	g := storage.NewGraph()
	g.AddVertices(300, "A")
	for i := 1; i <= 250; i++ {
		if _, err := g.AddEdge(0, storage.VertexID(i), "X"); err != nil {
			t.Fatal(err)
		}
		mustSet(t, g.SetEdgeProp(storage.EdgeID(g.NumEdges()-1), "w", storage.Int(int64(i%50))))
	}
	for i := 1; i <= 40; i++ {
		if _, err := g.AddEdge(storage.VertexID(i), 0, "X"); err != nil {
			t.Fatal(err)
		}
		mustSet(t, g.SetEdgeProp(storage.EdgeID(g.NumEdges()-1), "w", storage.Int(int64(i%50))))
	}
	cfg := DefaultConfig()
	s, err := NewStore(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.CreateEdgePartitioned(EPDef{
		View: View2Hop{Name: "hub", Dir: DestinationFW, Pred: pred.Predicate{}.
			And(pred.VarTerm(pred.VarBound, "w", pred.LT, pred.VarAdj, "w"))},
		Cfg: Config{Partitions: []PartitionKey{{Var: pred.VarAdj, Prop: pred.PropLabel}}},
	}); err != nil {
		t.Fatal(err)
	}

	g2 := g.Clone()
	b := NewDeltaBuilder(NewDelta(), s.Primary(), g2)
	e, err := g2.AddEdge(0, 7, "X") // dirties the hub's forward list
	if err != nil {
		t.Fatal(err)
	}
	mustSet(t, g2.SetEdgeProp(e, "w", storage.Int(3)))
	b.Insert(e)
	d := b.Freeze()

	gInc := g2.Clone()
	np, ok := incrementalPrimary(s.primary, gInc, d, d.dirtyOwnerSets())
	if !ok {
		t.Fatal("primary patch declined")
	}
	if _, ok := incrementalEdgePartitioned(s.eps[0], np, d, d.dirtyOwnerSets()); ok {
		t.Fatal("EP patch accepted hub fan-out the cost gate should decline")
	}
	inc, ok := s.CloneIncremental(gInc, d)
	if !ok {
		t.Fatal("CloneIncremental failed despite EP fallback")
	}
	full, err := s.CloneRebuilt(g2.Clone(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	compareStores(t, "hub", inc, full)
}

func mustSet(t *testing.T, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
}

// TestCloneIncrementalDeclinesNewBucketSpace pins the fallback contract:
// when the new graph's categorical space for a partition level grew (here,
// an impossible delta is not even constructed — we simulate by handing a
// graph whose catalog gained an edge label used by an indexed edge), the
// incremental path must decline rather than produce a wrong bucket space.
func TestCloneIncrementalDeclinesNewBucketSpace(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := incrementalTestGraph(10, 30, rng)
	s, err := NewStore(g, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Mutate a clone outside the delta discipline: a new edge label grows
	// the label categorical's cardinality.
	g2 := g.Clone()
	if _, err := g2.AddEdge(0, 1, "Z"); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.CloneIncremental(g2, NewDelta()); ok {
		t.Fatal("CloneIncremental accepted a grown bucket space")
	}
}
