package index

import (
	"sort"

	"github.com/aplusdb/aplus/internal/csr"
	"github.com/aplusdb/aplus/internal/pred"
	"github.com/aplusdb/aplus/internal/storage"
)

// Incremental delta folds (Section IV-C): a successor base store is
// assembled from a frozen base plus its delta overlay by re-packing only
// the owners the delta touched — clean owners' packed blocks and byte
// ranges are copied wholesale through the csr surgery APIs — so merge cost
// is proportional to the delta, not the graph. The result is
// observationally identical to a full rebuild: the primary CSR arrays are
// element-for-element equal (checkpoint encodings stay bit-identical) and
// every secondary answers exactly as a from-scratch build would.
//
// The incremental path declines (returns ok=false) whenever equivalence
// cannot be guaranteed cheaply, and the caller falls back to CloneRebuilt:
//   - a partition level's categorical cardinality changed under the new
//     graph (the bucket space shifted);
//   - the base carries buffered maintenance state (never true for frozen
//     snapshot bases).
// Deltas that were unbufferable in the first place never reach a fold —
// commits with unknown categorical values rebuild synchronously.

// DefaultIncrementalDirtyFraction is the dirty-owner fraction above which
// the snapshot merger prefers a full rebuild: patching nearly every owner
// costs more than one flat build (the copied remainder no longer pays for
// the patcher's bookkeeping).
const DefaultIncrementalDirtyFraction = 0.25

// DirtyOwners returns the number of distinct (direction, owner) lists the
// delta touches — the quantity incremental fold cost is proportional to.
func (d *Delta) DirtyOwners() int {
	if d == nil {
		return 0
	}
	n := 0
	for dir := 0; dir < 2; dir++ {
		n += len(d.runs[dir])
		for o := range d.dels[dir] {
			if _, ok := d.runs[dir][o]; !ok {
				n++
			}
		}
	}
	return n
}

// dirtyOwnersSorted returns the owners with pending inserts or deletes in
// one direction, ascending. CloneIncremental computes both directions once
// and threads them through the primary and every secondary patch.
func (d *Delta) dirtyOwnersSorted(dir Direction) []uint32 {
	m := make(map[uint32]struct{}, len(d.runs[dir])+len(d.dels[dir]))
	for o := range d.runs[dir] {
		m[o] = struct{}{}
	}
	for o := range d.dels[dir] {
		m[o] = struct{}{}
	}
	out := make([]uint32, 0, len(m))
	for o := range m {
		out = append(out, o)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// dirtyOwners is the per-direction sorted dirty-owner sets of one delta.
type dirtyOwners [2][]uint32

func (d *Delta) dirtyOwnerSets() dirtyOwners {
	return dirtyOwners{d.dirtyOwnersSorted(FW), d.dirtyOwnersSorted(BW)}
}

// levelsCompatible reports whether freshly built levels span the same
// bucket space as the base's: same level count and, per level, the same
// cardinality. Categorical codes are assigned in sorted value order and
// values are never removed, so equal cardinalities imply an identical
// value-to-bucket mapping (with Codes extended to the new entities).
func levelsCompatible(base, fresh []level) bool {
	if len(base) != len(fresh) {
		return false
	}
	for i := range base {
		if base[i].cat.Cardinality != fresh[i].cat.Cardinality {
			return false
		}
	}
	return true
}

// incrementalPrimary builds the successor primary for graph g2 (the fold's
// clone, tombstones applied) by patching only the delta's dirty owners.
func incrementalPrimary(base *Primary, g2 *storage.Graph, d *Delta, dirty dirtyOwners) (*Primary, bool) {
	if base.pendingWork() != 0 {
		return nil, false // only frozen, buffer-free bases are patchable
	}
	levels, err := buildLevels(g2, base.cfg.Partitions)
	if err != nil || !levelsCompatible(base.levels, levels) {
		return nil, false
	}
	p := &Primary{
		g:         g2,
		cfg:       base.cfg,
		levels:    levels,
		edgeBound: storage.EdgeID(g2.NumEdges()),
		fwBuf:     make(map[uint32][]bufEntry),
		bwBuf:     make(map[uint32][]bufEntry),
	}
	p.fw = patchPrimaryCSR(base, FW, g2, d, dirty[FW])
	p.bw = patchPrimaryCSR(base, BW, g2, d, dirty[BW])
	return p, true
}

// patchPrimaryCSR assembles one direction's successor CSR: clean owners are
// copied by range, dirty owners re-packed with the delta spliced in.
func patchPrimaryCSR(base *Primary, dir Direction, g2 *storage.Graph, d *Delta, dirty []uint32) *csr.CSR {
	old := base.dirCSR(dir)
	numOwners := g2.NumVertices()
	ins, del := 0, 0
	for _, r := range d.runs[dir] {
		ins += len(r)
	}
	for _, r := range d.dels[dir] {
		del += len(r)
	}
	pt := csr.NewPatcher(old, numOwners, old.Len()+ins-del)
	prev := uint32(0)
	for _, owner := range dirty {
		pt.CopyRange(prev, owner)
		rebuildPrimaryOwner(pt, base, dir, owner, d)
		prev = owner + 1
	}
	pt.CopyRange(prev, uint32(numOwners))
	return pt.Build()
}

// rebuildPrimaryOwner re-packs one dirty owner: the base entries (minus
// pending deletes) interleaved with the delta's insert run in full index
// order — exactly the walk Delta.Splice performs on the read path, here
// emitting bucket codes for the patcher.
func rebuildPrimaryOwner(pt *csr.Patcher, base *Primary, dir Direction, owner uint32, d *Delta) {
	old := base.dirCSR(dir)
	run := d.runs[dir][owner]
	dels := d.dels[dir][owner]
	pt.BeginOwner(owner)
	var lo, hi uint32
	if int(owner) < old.NumOwners() {
		lo, hi = old.OwnerRange(owner)
	}
	nbrs, eids := old.Nbrs(), old.EIDs()
	ri := 0
	var cb [8]uint16
	for pos := lo; pos < hi; pos++ {
		e := storage.EdgeID(eids[pos])
		nb := storage.VertexID(nbrs[pos])
		if len(dels) > 0 && delContains(dels, uint64(e)) {
			continue
		}
		codes := codesFor(base.levels, e, nb, cb[:0])
		if ri < len(run) {
			cur := bufEntry{
				nbr:   uint32(nb),
				eid:   uint64(e),
				sort:  sortOrdinals(base.g, base.cfg.Sorts, e, nb),
				codes: codes,
			}
			for ri < len(run) && bufLess(run[ri], cur) {
				pt.Append(run[ri].codes, run[ri].nbr, run[ri].eid)
				ri++
			}
		}
		pt.Append(codes, uint32(nb), uint64(e))
	}
	for ; ri < len(run); ri++ {
		pt.Append(run[ri].codes, run[ri].nbr, run[ri].eid)
	}
}

// secEntry is one rebuilt secondary entry of a dirty owner, pre-sort.
type secEntry struct {
	off    uint32
	bucket uint32
	sort   [2]uint64
}

// sortSecEntries orders one owner's rebuilt entries exactly as
// OffsetBuilder's global sort would within that owner: bucket, sort keys,
// then offset (offsets are unique within an owner, so the order is total).
func sortSecEntries(es []secEntry) {
	sort.Slice(es, func(i, j int) bool {
		a, b := es[i], es[j]
		if a.bucket != b.bucket {
			return a.bucket < b.bucket
		}
		if a.sort[0] != b.sort[0] {
			return a.sort[0] < b.sort[0]
		}
		if a.sort[1] != b.sort[1] {
			return a.sort[1] < b.sort[1]
		}
		return a.off < b.off
	})
}

func splitSecEntries(es []secEntry) (offs, buckets []uint32) {
	if len(es) == 0 {
		return nil, nil
	}
	offs = make([]uint32, len(es))
	buckets = make([]uint32, len(es))
	for i, e := range es {
		offs[i], buckets[i] = e.off, e.bucket
	}
	return offs, buckets
}

// incrementalVertexPartitioned patches a 1-hop view onto the successor
// primary np: owners whose primary list changed in an indexed direction are
// re-materialized (offsets shift even when the view's membership did not
// change); everything else is copied at group granularity.
func incrementalVertexPartitioned(v *VertexPartitioned, np *Primary, d *Delta, dirty dirtyOwners) (*VertexPartitioned, bool) {
	nv := &VertexPartitioned{def: v.def, primary: np, dirs: make(map[Direction]*vpDir, len(v.dirs))}
	g := np.g
	for dir, od := range v.dirs {
		var levels []level
		if od.shared {
			levels = np.levels
		} else {
			fresh, err := buildLevels(g, v.def.Cfg.Partitions)
			if err != nil || !levelsCompatible(od.levels, fresh) {
				return nil, false
			}
			levels = fresh
		}
		c := np.dirCSR(dir)
		resolved := v.def.View.Pred.ResolveNbr(dir == FW)
		pt := csr.NewOffsetPatcher(od.lists, g.NumVertices())
		var cb [8]uint16
		for _, owner := range dirty[dir] {
			lo, hi := c.OwnerRange(owner)
			es := make([]secEntry, 0, hi-lo)
			nbrs, eids := c.Nbrs(), c.EIDs()
			for pos := lo; pos < hi; pos++ {
				e := storage.EdgeID(eids[pos])
				nbr := storage.VertexID(nbrs[pos])
				if !resolved.IsTrue() && !resolved.Eval(pred.EdgeCtx{G: g, Adj: e}) {
					continue
				}
				codes := codesFor(levels, e, nbr, cb[:0])
				es = append(es, secEntry{
					off:    pos - lo,
					bucket: od.lists.BucketOf(codes),
					sort:   sortOrdinals(g, v.def.Cfg.Sorts, e, nbr),
				})
			}
			sortSecEntries(es)
			offs, buckets := splitSecEntries(es)
			pt.ReplaceOwner(owner, offs, buckets)
		}
		var sharedWith *csr.CSR
		if od.shared {
			sharedWith = c
		}
		nd := &vpDir{shared: od.shared, buf: make(map[uint32][]bufEntry)}
		if !od.shared {
			nd.levels = levels
		}
		nd.lists = pt.Build(func(owner uint32) uint32 {
			return np.OwnerLen(dir, storage.VertexID(owner))
		}, sharedWith)
		nv.dirs[dir] = nd
	}
	return nv, true
}

// epIncrementalWorkFraction caps the edge-partitioned patch's scan work
// relative to a full build's: re-materializing a dirty bound edge costs the
// adjacent list's length, and a hub vertex can make a handful of dirty
// primary lists fan out to deg² re-scan work the merger's dirty-owner
// fraction cannot see. Past this fraction the patch declines and the view
// is rebuilt from the (already patched) primary instead — which is also
// parallelized across bound edges, unlike the sequential patch loop.
const epIncrementalWorkFraction = 0.25

// incrementalEdgePartitioned patches a 2-hop view onto the successor
// primary np. A bound edge is dirty when it is new, deleted, or hangs off a
// vertex whose adjacency in the view's adjacent direction changed (its
// offsets resolve into that list).
func incrementalEdgePartitioned(ep *EdgePartitioned, np *Primary, d *Delta, dirtyPrimary dirtyOwners) (*EdgePartitioned, bool) {
	g := np.g
	fresh, err := buildLevels(g, ep.def.Cfg.Partitions)
	if err != nil || !levelsCompatible(ep.levels, fresh) {
		return nil, false
	}
	levels := fresh
	adjDir := ep.def.View.Dir.AdjDirection()
	boundDir := FW
	if ep.def.View.Dir.BoundIsDst() {
		boundDir = BW
	}
	resolved := ep.def.View.Pred.ResolveNbr(adjDir == FW)
	ownerVertex := func(eb storage.EdgeID) storage.VertexID {
		if ep.def.View.Dir.BoundIsDst() {
			return g.Dst(eb)
		}
		return g.Src(eb)
	}

	// Dirty bound edges: inserted edges (they need brand-new lists),
	// deleted edges (their lists vanish), and every live bound edge whose
	// owner vertex's adjacent-direction primary list changed.
	dirty := make(map[uint32]struct{})
	for _, run := range d.runs[FW] {
		for i := range run {
			dirty[uint32(run[i].eid)] = struct{}{}
		}
	}
	for e := range d.deleted {
		dirty[uint32(e)] = struct{}{}
	}
	bc := np.dirCSR(boundDir)
	for _, v := range dirtyPrimary[adjDir] {
		lo, hi := bc.OwnerRange(v)
		eids := bc.EIDs()
		for pos := lo; pos < hi; pos++ {
			dirty[uint32(eids[pos])] = struct{}{}
		}
	}
	dirtyList := make([]uint32, 0, len(dirty))
	for eb := range dirty {
		dirtyList = append(dirtyList, eb)
	}
	sort.Slice(dirtyList, func(i, j int) bool { return dirtyList[i] < dirtyList[j] })

	// Cost gate: patching scans deg(ownerVertex) entries per dirty bound
	// edge, so compare that against the full build's total scan work
	// (Σ_v boundDeg(v)·adjDeg(v), computed in O(V) from the new CSRs).
	ac := np.dirCSR(adjDir)
	var dirtyWork, fullWork uint64
	for v := 0; v < g.NumVertices(); v++ {
		blo, bhi := bc.OwnerRange(uint32(v))
		alo, ahi := ac.OwnerRange(uint32(v))
		fullWork += uint64(bhi-blo) * uint64(ahi-alo)
	}
	for _, ebi := range dirtyList {
		eb := storage.EdgeID(ebi)
		if g.EdgeDeleted(eb) {
			continue
		}
		lo, hi := ac.OwnerRange(uint32(ownerVertex(eb)))
		dirtyWork += uint64(hi - lo)
	}
	if float64(dirtyWork) > epIncrementalWorkFraction*float64(fullWork) {
		return nil, false
	}
	pt := csr.NewOffsetPatcher(ep.lists, g.NumEdges())
	var cb [8]uint16
	for _, ebi := range dirtyList {
		eb := storage.EdgeID(ebi)
		if g.EdgeDeleted(eb) {
			pt.ReplaceOwner(ebi, nil, nil)
			continue
		}
		lo, hi := ac.OwnerRange(uint32(ownerVertex(eb)))
		nbrs, eids := ac.Nbrs(), ac.EIDs()
		var es []secEntry
		for pos := lo; pos < hi; pos++ {
			eadj := storage.EdgeID(eids[pos])
			nbr := storage.VertexID(nbrs[pos])
			if !resolved.Eval(pred.EdgeCtx{G: g, Adj: eadj, Bound: eb, HasBound: true}) {
				continue
			}
			codes := codesFor(levels, eadj, nbr, cb[:0])
			es = append(es, secEntry{
				off:    pos - lo,
				bucket: ep.lists.BucketOf(codes),
				sort:   sortOrdinals(g, ep.def.Cfg.Sorts, eadj, nbr),
			})
		}
		sortSecEntries(es)
		offs, buckets := splitSecEntries(es)
		pt.ReplaceOwner(ebi, offs, buckets)
	}
	nep := &EdgePartitioned{def: ep.def, primary: np, levels: levels, buf: make(map[uint64][]bufEntry)}
	nep.lists = pt.Build(func(owner uint32) uint32 {
		eb := storage.EdgeID(owner)
		if g.EdgeDeleted(eb) {
			return 0
		}
		return np.OwnerLen(adjDir, ownerVertex(eb))
	}, nil)
	return nep, true
}

// CloneIncremental builds a successor store over g2 (a graph clone with the
// delta's tombstones already applied) by patching only the owners d
// touched, leaving the receiver untouched — the incremental counterpart of
// CloneRebuilt. ok is false when the primary cannot be patched (a partition
// level's bucket space changed); the caller must then fall back to
// CloneRebuilt. A secondary that declines its patch — its own bucket space
// changed, or an edge-partitioned view's re-scan fan-out exceeds the cost
// gate — is rebuilt from the already-patched primary instead, so the rest
// of the store still folds in O(delta). The result is observationally
// identical to a full rebuild over the same final state: counts, i-cost,
// secondary answers, and checkpoint encodings all match.
func (s *Store) CloneIncremental(g2 *storage.Graph, d *Delta) (*Store, bool) {
	dirty := d.dirtyOwnerSets()
	np, ok := incrementalPrimary(s.primary, g2, d, dirty)
	if !ok {
		return nil, false
	}
	ns := &Store{g: g2, primary: np, MergeThreshold: s.MergeThreshold}
	for _, v := range s.vps {
		nv, ok := incrementalVertexPartitioned(v, np, d, dirty)
		if !ok {
			bv, err := BuildVertexPartitioned(np, v.Def())
			if err != nil {
				return nil, false
			}
			nv = bv
		}
		ns.vps = append(ns.vps, nv)
	}
	for _, e := range s.eps {
		ne, ok := incrementalEdgePartitioned(e, np, d, dirty)
		if !ok {
			be, err := BuildEdgePartitioned(np, e.Def())
			if err != nil {
				return nil, false
			}
			ne = be
		}
		ns.eps = append(ns.eps, ne)
	}
	return ns, true
}
