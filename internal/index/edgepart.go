package index

import (
	"fmt"
	"runtime"
	"sync"

	"github.com/aplusdb/aplus/internal/csr"
	"github.com/aplusdb/aplus/internal/pred"
	"github.com/aplusdb/aplus/internal/storage"
)

// EPDirection is one of the four ways a 2-hop view can be partitioned by an
// edge (Section III-B2). eb is the bound edge; the list of eb stores
// adjacent edges eadj of one endpoint of eb.
type EPDirection uint8

const (
	// DestinationFW: vs -[eb]-> vd -[eadj]-> vnbr.
	DestinationFW EPDirection = iota
	// DestinationBW: vs -[eb]-> vd <-[eadj]- vnbr.
	DestinationBW
	// SourceFW: vnbr -[eadj]-> vs -[eb]-> vd.
	SourceFW
	// SourceBW: vnbr <-[eadj]- vs -[eb]-> vd.
	SourceBW
)

// String implements fmt.Stringer.
func (d EPDirection) String() string {
	switch d {
	case DestinationFW:
		return "Destination-FW"
	case DestinationBW:
		return "Destination-BW"
	case SourceFW:
		return "Source-FW"
	default:
		return "Source-BW"
	}
}

// BoundIsDst reports whether the adjacency hangs off the bound edge's
// destination vertex.
func (d EPDirection) BoundIsDst() bool { return d == DestinationFW || d == DestinationBW }

// AdjDirection returns which primary direction holds the adjacent edges:
// e.g. Destination-FW lists are subsets of the destination vertex's forward
// primary list; Source-FW edges point *into* the source vertex, so they
// live in its backward list.
func (d EPDirection) AdjDirection() Direction {
	switch d {
	case DestinationFW, SourceBW:
		return FW
	default:
		return BW
	}
}

// View2Hop is a 2-hop materialized view: pairs of adjacent edges (eb, eadj)
// satisfying a predicate that must reference both edges — otherwise the
// index stores redundant duplicate lists and a vertex-partitioned index
// should be used instead (Section III-B2).
type View2Hop struct {
	Name string
	Dir  EPDirection
	Pred pred.Predicate
}

// EPDef declares a secondary edge-partitioned A+ index.
type EPDef struct {
	View View2Hop
	Cfg  Config
}

// EdgePartitioned is a secondary edge-partitioned A+ index: one offset list
// per bound edge, resolving into the primary list of the bound edge's
// owner vertex.
type EdgePartitioned struct {
	def     EPDef
	primary *Primary
	levels  []level
	lists   *csr.OffsetLists
	buf     map[uint64][]bufEntry // keyed by bound edge
}

// BuildEdgePartitioned materializes the 2-hop view and builds its offset
// lists. Construction is parallelized across bound edges (the paper builds
// edge-partitioned indexes with 16 threads).
func BuildEdgePartitioned(p *Primary, def EPDef) (*EdgePartitioned, error) {
	if err := def.Cfg.Validate(); err != nil {
		return nil, err
	}
	if err := validate2HopPred(def.View.Pred); err != nil {
		return nil, fmt.Errorf("index: 2-hop view %q: %w", def.View.Name, err)
	}
	ep := &EdgePartitioned{def: def, primary: p, buf: make(map[uint64][]bufEntry)}
	if err := ep.build(); err != nil {
		return nil, err
	}
	return ep, nil
}

// validate2HopPred enforces the paper's requirement that the predicate
// accesses properties of both edges in the 2-path.
func validate2HopPred(q pred.Predicate) error {
	usesBound := false
	for _, t := range q.Terms {
		if t.UsesBound() {
			usesBound = true
		}
	}
	if !usesBound {
		return fmt.Errorf("predicate must reference eb; a vertex-partitioned index gives the same access path without duplicate lists")
	}
	return nil
}

func (ep *EdgePartitioned) build() error {
	p := ep.primary
	g := p.g
	levels, err := buildLevels(g, ep.def.Cfg.Partitions)
	if err != nil {
		return err
	}
	ep.levels = levels

	adjDir := ep.def.View.Dir.AdjDirection()
	resolved := ep.def.View.Pred.ResolveNbr(adjDir == FW)
	numEdges := g.NumEdges()
	c := p.dirCSR(adjDir)
	nbrs, eids := c.Nbrs(), c.EIDs()

	type shardResult struct {
		entries []csr.OffsetEntry
		codes   [][]uint16
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > numEdges {
		workers = 1
	}
	results := make([]shardResult, workers)
	var wg sync.WaitGroup
	chunk := (numEdges + workers - 1) / workers
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var res shardResult
			var codeBuf []uint16
			lo, hi := w*chunk, (w+1)*chunk
			if hi > numEdges {
				hi = numEdges
			}
			for i := lo; i < hi; i++ {
				eb := storage.EdgeID(i)
				if g.EdgeDeleted(eb) {
					continue
				}
				owner := ep.ownerVertex(eb)
				rlo, rhi := c.OwnerRange(uint32(owner))
				for pos := rlo; pos < rhi; pos++ {
					eadj := storage.EdgeID(eids[pos])
					nbr := storage.VertexID(nbrs[pos])
					if !resolved.Eval(pred.EdgeCtx{G: g, Adj: eadj, Bound: eb, HasBound: true}) {
						continue
					}
					codeBuf = codesFor(levels, eadj, nbr, codeBuf)
					res.entries = append(res.entries, csr.OffsetEntry{
						Owner:  uint32(eb),
						Offset: pos - rlo,
						Sort:   sortOrdinals(g, ep.def.Cfg.Sorts, eadj, nbr),
					})
					res.codes = append(res.codes, append([]uint16(nil), codeBuf...))
				}
			}
			results[w] = res
		}(w)
	}
	wg.Wait()

	builder := csr.NewOffsetBuilder(numEdges, levelCards(levels))
	for _, res := range results {
		for i, e := range res.entries {
			builder.Add(e, res.codes[i])
		}
	}
	ep.lists = builder.Build(func(owner uint32) uint32 {
		eb := storage.EdgeID(owner)
		if g.EdgeDeleted(eb) {
			return 0
		}
		return p.OwnerLen(adjDir, ep.ownerVertex(eb))
	})
	return nil
}

// ownerVertex returns the vertex whose primary list the bound edge's
// adjacency is a subset of.
func (ep *EdgePartitioned) ownerVertex(eb storage.EdgeID) storage.VertexID {
	if ep.def.View.Dir.BoundIsDst() {
		return ep.primary.g.Dst(eb)
	}
	return ep.primary.g.Src(eb)
}

// Name returns the view name.
func (ep *EdgePartitioned) Name() string { return ep.def.View.Name }

// Def returns the index definition.
func (ep *EdgePartitioned) Def() EPDef { return ep.def }

// EPDir returns the partitioning direction of the view.
func (ep *EdgePartitioned) EPDir() EPDirection { return ep.def.View.Dir }

// Pred returns the view predicate (with vnbr unresolved).
func (ep *EdgePartitioned) Pred() pred.Predicate { return ep.def.View.Pred }

// ResolvedPred returns the view predicate with vnbr bound to the adjacency
// direction.
func (ep *EdgePartitioned) ResolvedPred() pred.Predicate {
	return ep.def.View.Pred.ResolveNbr(ep.def.View.Dir.AdjDirection() == FW)
}

// Config returns the index configuration.
func (ep *EdgePartitioned) Config() Config { return ep.def.Cfg }

// EffectiveSorts returns the complete ordering of the innermost lists.
func (ep *EdgePartitioned) EffectiveSorts() []SortKey {
	return append(append([]SortKey(nil), ep.def.Cfg.Sorts...), NbrIDSort)
}

// LevelCards returns the cardinality of each partitioning level.
func (ep *EdgePartitioned) LevelCards() []int { return levelCards(ep.levels) }

// ResolveCodes maps partition values to bucket codes.
func (ep *EdgePartitioned) ResolveCodes(vals []storage.Value) ([]uint16, bool) {
	if len(vals) > len(ep.levels) {
		panic("index: more partition values than levels")
	}
	codes := make([]uint16, len(vals))
	for i, val := range vals {
		b, ok := ep.levels[i].cat.BucketOf(val)
		if !ok {
			return nil, false
		}
		codes[i] = b
	}
	return codes, true
}

// List returns the adjacency list bound to eb, restricted to a bucket-code
// prefix.
func (ep *EdgePartitioned) List(eb storage.EdgeID, codes []uint16) AdjList {
	adjDir := ep.def.View.Dir.AdjDirection()
	owner := ep.ownerVertex(eb)
	baseNbrs, baseEids := ep.primary.ownerSlices(adjDir, owner)
	base := OffsetList(ep.lists.BucketList(uint32(eb), codes), baseNbrs, baseEids)
	buf := ep.buf[uint64(eb)]
	if len(buf) == 0 && ep.primary.tombstones == 0 {
		return base
	}
	matching := filterPrefix(buf, codes)
	if len(matching) == 0 && ep.primary.tombstones == 0 {
		return base
	}
	return mergeBuffered(ep.primary.g, base, matching, ep.levels, ep.def.Cfg.Sorts, ep.primary.tombstones > 0)
}

// applyInsert performs the two delta-query maintenance steps of Section
// IV-C for a new edge e: (1) insert e into the lists of every adjacent
// bound edge eb whose predicate accepts (eb, e); (2) build the new list
// bound to e itself by scanning the appropriate primary adjacency of e's
// owner vertex.
func (ep *EdgePartitioned) applyInsert(e storage.EdgeID) bool {
	g := ep.primary.g
	adjDir := ep.def.View.Dir.AdjDirection()
	resolved := ep.ResolvedPred()

	// Step 1: e is a candidate eadj for existing bound edges. The bound
	// edges adjacent to e are those whose owner vertex equals e's "anchor":
	// for Destination-* views eb.dst must equal the anchor; for Source-*
	// views eb.src must.
	var anchor storage.VertexID
	var nbr storage.VertexID
	if adjDir == FW {
		anchor, nbr = g.Src(e), g.Dst(e)
	} else {
		anchor, nbr = g.Dst(e), g.Src(e)
	}
	// Candidate bound edges: edges whose owner vertex is anchor.
	var boundDir Direction
	if ep.def.View.Dir.BoundIsDst() {
		boundDir = BW // edges whose destination is anchor = anchor's backward list
	} else {
		boundDir = FW
	}
	cand := ep.primary.List(boundDir, anchor, nil)
	levels := ep.levels
	codes, ok := codesForInsert(g, levels, e, nbr)
	if !ok {
		return false
	}
	for i := 0; i < cand.Len(); i++ {
		_, eb := cand.Get(i)
		if eb == e {
			continue
		}
		if resolved.Eval(pred.EdgeCtx{G: g, Adj: e, Bound: eb, HasBound: true}) {
			ep.buf[uint64(eb)] = append(ep.buf[uint64(eb)], bufEntry{
				nbr: uint32(nbr), eid: uint64(e),
				sort:  sortOrdinals(g, ep.def.Cfg.Sorts, e, nbr),
				codes: codes,
			})
		}
	}

	// Step 2: build the list bound to e.
	owner := ep.ownerVertex(e)
	adj := ep.primary.List(adjDir, owner, nil)
	for i := 0; i < adj.Len(); i++ {
		an, ae := adj.Get(i)
		if ae == e {
			continue
		}
		if resolved.Eval(pred.EdgeCtx{G: g, Adj: ae, Bound: e, HasBound: true}) {
			aCodes, ok := codesForInsert(g, levels, ae, an)
			if !ok {
				return false
			}
			ep.buf[uint64(e)] = append(ep.buf[uint64(e)], bufEntry{
				nbr: uint32(an), eid: uint64(ae),
				sort:  sortOrdinals(g, ep.def.Cfg.Sorts, ae, an),
				codes: aCodes,
			})
		}
	}
	return true
}

// rebuild reconstructs the offset lists after the primary was rebuilt.
func (ep *EdgePartitioned) rebuild() error {
	ep.buf = make(map[uint64][]bufEntry)
	return ep.build()
}

// NumIndexedEdges returns the number of stored (bound edge, adjacent edge)
// pairs — the |E_indexed| column of Table IV.
func (ep *EdgePartitioned) NumIndexedEdges() int64 { return int64(ep.lists.Len()) }

// MemoryBytes estimates the index footprint.
func (ep *EdgePartitioned) MemoryBytes() int64 { return ep.lists.MemoryBytes() }
