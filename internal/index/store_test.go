package index

import (
	"math/rand"
	"testing"

	"github.com/aplusdb/aplus/internal/pred"
	"github.com/aplusdb/aplus/internal/storage"
)

func exampleStore(t *testing.T) *Store {
	t.Helper()
	s, err := NewStore(storage.ExampleGraph(), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestStoreReconfigure(t *testing.T) {
	s := exampleStore(t)
	cfg := Config{
		Partitions: []PartitionKey{
			{Var: pred.VarAdj, Prop: pred.PropLabel},
			{Var: pred.VarAdj, Prop: storage.PropCurrency},
		},
		Sorts: []SortKey{{Var: pred.VarNbr, Prop: storage.PropCity}},
	}
	if err := s.Reconfigure(cfg); err != nil {
		t.Fatal(err)
	}
	if got := s.Primary().Config().SortSignature(); got != "vnbr.city" {
		t.Errorf("signature after reconfigure = %q", got)
	}
	codes, ok := s.Primary().ResolveCodes([]storage.Value{
		storage.Str(storage.LabelWire), storage.Str("€"),
	})
	if !ok || s.Primary().List(FW, 0, codes).Len() != 2 {
		t.Error("reconfigured lookup broken")
	}
}

func TestStoreCreateAndDrop(t *testing.T) {
	s := exampleStore(t)
	_, err := s.CreateVertexPartitioned(VPDef{
		View: View1Hop{Name: "V1"}, Dirs: []Direction{FW}, Cfg: DefaultConfig(),
	})
	if err != nil {
		t.Fatal(err)
	}
	// Duplicate names rejected.
	if _, err := s.CreateVertexPartitioned(VPDef{
		View: View1Hop{Name: "V1"}, Dirs: []Direction{FW}, Cfg: DefaultConfig(),
	}); err == nil {
		t.Error("duplicate name accepted")
	}
	if _, err := s.CreateEdgePartitioned(moneyFlowDef()); err != nil {
		t.Fatal(err)
	}
	if len(s.VertexIndexes()) != 1 || len(s.EdgeIndexes()) != 1 {
		t.Fatal("registration broken")
	}
	if !s.DropIndex("MoneyFlow") || s.DropIndex("MoneyFlow") {
		t.Error("drop semantics broken")
	}
	st := s.Stats()
	if st.TotalBytes() <= 0 || st.IndexedEdges <= 0 {
		t.Error("stats broken")
	}
}

func TestStoreInsertVisibleBeforeMerge(t *testing.T) {
	s := exampleStore(t)
	s.MergeThreshold = 1 << 30 // never merge
	g := s.Graph()
	before := s.Primary().List(FW, 0, nil).Len()
	e, err := s.InsertEdge(0, 4, storage.LabelWire, map[string]storage.Value{
		storage.PropAmount:   storage.Int(7),
		storage.PropCurrency: storage.Str("$"),
		storage.PropDate:     storage.Int(21),
	})
	if err != nil {
		t.Fatal(err)
	}
	l := s.Primary().List(FW, 0, nil)
	if l.Len() != before+1 {
		t.Fatalf("buffered edge not visible: len %d, want %d", l.Len(), before+1)
	}
	// Sorted position preserved (default sort: nbr ID; new edge goes to v5).
	prev := storage.VertexID(0)
	codes, _ := s.Primary().ResolveCodes([]storage.Value{storage.Str(storage.LabelWire)})
	wl := s.Primary().List(FW, 0, codes)
	for i := 0; i < wl.Len(); i++ {
		if wl.Nbr(i) < prev {
			t.Error("merged list out of order")
		}
		prev = wl.Nbr(i)
	}
	// Backward direction too.
	bl := s.Primary().List(BW, 4, nil)
	found := false
	for i := 0; i < bl.Len(); i++ {
		if bl.Edge(i) == e {
			found = true
		}
	}
	if !found {
		t.Error("insert missing from backward list")
	}
	_ = g
}

func TestStoreInsertMergesAtThreshold(t *testing.T) {
	s := exampleStore(t)
	s.MergeThreshold = 4
	for i := 0; i < 10; i++ {
		if _, err := s.InsertEdge(0, 1, storage.LabelWire, map[string]storage.Value{
			storage.PropAmount: storage.Int(int64(i)),
			storage.PropDate:   storage.Int(int64(30 + i)),
		}); err != nil {
			t.Fatal(err)
		}
	}
	if s.Primary().pendingWork() >= 10 {
		t.Error("merges never happened")
	}
	// All 10 still visible.
	codes, _ := s.Primary().ResolveCodes([]storage.Value{storage.Str(storage.LabelWire)})
	l := s.Primary().List(FW, 0, codes)
	if l.Len() != 3+10 {
		t.Errorf("Wire list = %d entries, want 13", l.Len())
	}
}

func TestStoreDeleteEdge(t *testing.T) {
	s := exampleStore(t)
	s.MergeThreshold = 1 << 30
	t4 := storage.Transfer(4)
	if err := s.DeleteEdge(t4); err != nil {
		t.Fatal(err)
	}
	// Tombstone filtered from lists before merge.
	codes, _ := s.Primary().ResolveCodes([]storage.Value{storage.Str(storage.LabelWire)})
	l := s.Primary().List(FW, 0, codes)
	for i := 0; i < l.Len(); i++ {
		if l.Edge(i) == t4 {
			t.Fatal("tombstoned edge still visible")
		}
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if s.Primary().List(FW, 0, codes).Len() != 2 {
		t.Error("post-merge list wrong")
	}
}

func TestStoreSecondariesMaintained(t *testing.T) {
	s := exampleStore(t)
	s.MergeThreshold = 1 << 30
	vp, err := s.CreateVertexPartitioned(VPDef{
		View: View1Hop{
			Name: "BigAmt",
			Pred: pred.Predicate{}.And(pred.ConstTerm(pred.VarAdj, storage.PropAmount, pred.GT, storage.Int(100))),
		},
		Dirs: []Direction{FW},
		Cfg:  DefaultConfig(),
	})
	if err != nil {
		t.Fatal(err)
	}
	ep, err := s.CreateEdgePartitioned(moneyFlowDef())
	if err != nil {
		t.Fatal(err)
	}
	before := vp.List(FW, 0, nil).Len()
	// Insert a big transfer from v1; it must appear in VP's buffered list.
	e, err := s.InsertEdge(0, 4, storage.LabelWire, map[string]storage.Value{
		storage.PropAmount: storage.Int(500),
		storage.PropDate:   storage.Int(25),
	})
	if err != nil {
		t.Fatal(err)
	}
	if vp.List(FW, 0, nil).Len() != before+1 {
		t.Error("VP buffer not visible")
	}
	// A small transfer must not appear.
	if _, err := s.InsertEdge(0, 4, storage.LabelWire, map[string]storage.Value{
		storage.PropAmount: storage.Int(1),
		storage.PropDate:   storage.Int(26),
	}); err != nil {
		t.Fatal(err)
	}
	if vp.List(FW, 0, nil).Len() != before+1 {
		t.Error("VP admitted a non-matching edge")
	}
	// EP delta maintenance: the new edge e (v1->v5, amt 500, date 25)
	// becomes a bound edge whose list holds v5's later/smaller transfers —
	// none exist yet, then we add one.
	e2, err := s.InsertEdge(4, 2, storage.LabelWire, map[string]storage.Value{
		storage.PropAmount: storage.Int(100),
		storage.PropDate:   storage.Int(27),
	})
	if err != nil {
		t.Fatal(err)
	}
	l := ep.List(e, nil)
	found := false
	for i := 0; i < l.Len(); i++ {
		if l.Edge(i) == e2 {
			found = true
		}
	}
	if !found {
		t.Errorf("EP delta maintenance missed the new 2-path; list = %v", listEdges(l))
	}
	// After a flush everything still holds.
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	l = ep.List(e, nil)
	found = false
	for i := 0; i < l.Len(); i++ {
		if l.Edge(i) == e2 {
			found = true
		}
	}
	if !found {
		t.Error("EP list lost the pair after merge")
	}
}

func TestStoreUnknownCategoricalForcesRebuild(t *testing.T) {
	s := exampleStore(t)
	if err := s.Reconfigure(Config{
		Partitions: []PartitionKey{
			{Var: pred.VarAdj, Prop: pred.PropLabel},
			{Var: pred.VarAdj, Prop: storage.PropCurrency},
		},
	}); err != nil {
		t.Fatal(err)
	}
	s.MergeThreshold = 1 << 30
	// ¥ is a brand-new currency: the insert cannot be buffered under the
	// old categorical and must trigger a rebuild.
	if _, err := s.InsertEdge(0, 1, storage.LabelWire, map[string]storage.Value{
		storage.PropCurrency: storage.Str("¥"),
		storage.PropAmount:   storage.Int(1),
		storage.PropDate:     storage.Int(30),
	}); err != nil {
		t.Fatal(err)
	}
	codes, ok := s.Primary().ResolveCodes([]storage.Value{
		storage.Str(storage.LabelWire), storage.Str("¥"),
	})
	if !ok {
		t.Fatal("new currency should resolve after rebuild")
	}
	if s.Primary().List(FW, 0, codes).Len() != 1 {
		t.Error("new-currency edge not indexed")
	}
}

// TestStoreMaintenanceEquivalence streams random inserts through the
// buffered path and checks lists match a from-scratch rebuild at every
// step boundary.
func TestStoreMaintenanceEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	g := storage.NewGraph()
	n := 40
	g.AddVertices(n, "A")
	s, err := NewStore(g, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	s.MergeThreshold = 7
	labels := []string{"W", "DD"}
	for i := 0; i < 200; i++ {
		src := storage.VertexID(rng.Intn(n))
		dst := storage.VertexID(rng.Intn(n))
		if _, err := s.InsertEdge(src, dst, labels[rng.Intn(2)], map[string]storage.Value{
			"amt": storage.Int(int64(rng.Intn(100))),
		}); err != nil {
			t.Fatal(err)
		}
		if i%37 == 0 {
			assertMatchesRebuild(t, s)
		}
	}
	assertMatchesRebuild(t, s)
}

func assertMatchesRebuild(t *testing.T, s *Store) {
	t.Helper()
	fresh, err := BuildPrimary(s.Graph(), s.Primary().Config())
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < s.Graph().NumVertices(); v++ {
		for _, dir := range []Direction{FW, BW} {
			got := s.Primary().List(dir, storage.VertexID(v), nil)
			want := fresh.List(dir, storage.VertexID(v), nil)
			if got.Len() != want.Len() {
				t.Fatalf("v%d %v: len %d vs rebuild %d", v, dir, got.Len(), want.Len())
			}
			for i := 0; i < got.Len(); i++ {
				gn, ge := got.Get(i)
				wn, we := want.Get(i)
				if gn != wn || ge != we {
					t.Fatalf("v%d %v entry %d: (%d,%d) vs (%d,%d)", v, dir, i, gn, ge, wn, we)
				}
			}
		}
	}
}
