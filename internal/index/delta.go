package index

import (
	"github.com/aplusdb/aplus/internal/pred"
	"github.com/aplusdb/aplus/internal/storage"
)

// Delta is an immutable overlay of committed-but-unmerged writes over a
// frozen base Store: per-owner, per-direction insert runs (kept in full
// index order, mirroring the primary's offset-list layout) plus per-owner
// delete records and a global pending-delete set. A snapshot pairs one
// Delta with one frozen base; readers splice the overlay into primary list
// fetches (Splice) without any locking, and a background merger eventually
// folds the overlay back into block-packed CSR form.
//
// A published Delta is never mutated. Commits derive a successor with
// DeltaBuilder, which copies every map and every owner slice it touches;
// the append-only op log shares backing with the parent (a serialized
// writer only appends past the parent's LogLen).
type Delta struct {
	runs    [2]map[uint32][]bufEntry
	dels    [2]map[uint32][]delRec
	deleted map[storage.EdgeID]struct{}

	// log records every op since the last merge, in commit order, so a
	// merger that folded an older snapshot can rebase the suffix committed
	// during its build onto the new base (RebaseDelta).
	log    []deltaOp
	logLen int

	inserts, deletes int
}

// deltaOp is one logged write (endpoints and values are read back from the
// snapshot graph at rebase time).
type deltaOp struct {
	del bool
	e   storage.EdgeID
}

// delRec marks one base edge deleted from one owner's list, carrying the
// edge's partition codes so prefix-restricted length math stays exact.
type delRec struct {
	eid   uint64
	codes []uint16
}

// NewDelta returns an empty overlay.
func NewDelta() *Delta { return &Delta{} }

// Empty reports whether the overlay carries no pending writes.
func (d *Delta) Empty() bool { return d == nil || (d.inserts == 0 && d.deletes == 0) }

// Pending returns the number of buffered ops (inserts + deletes), the
// quantity merge thresholds are expressed in.
func (d *Delta) Pending() int {
	if d == nil {
		return 0
	}
	return d.inserts + d.deletes
}

// Deletes returns the number of pending edge deletions.
func (d *Delta) Deletes() int {
	if d == nil {
		return 0
	}
	return d.deletes
}

// LogLen returns the length of the op log (the rebase cursor for mergers).
func (d *Delta) LogLen() int {
	if d == nil {
		return 0
	}
	return d.logLen
}

// EdgeDeleted reports whether e has a pending (unmerged) delete. Scans must
// consult this in addition to the graph's own tombstones.
func (d *Delta) EdgeDeleted(e storage.EdgeID) bool {
	if d == nil {
		return false
	}
	_, ok := d.deleted[e]
	return ok
}

// DeletedEdges returns the pending delete set (for mergers folding it into
// a fresh base's tombstones).
func (d *Delta) DeletedEdges() []storage.EdgeID {
	if d == nil || len(d.deleted) == 0 {
		return nil
	}
	out := make([]storage.EdgeID, 0, len(d.deleted))
	for e := range d.deleted {
		out = append(out, e)
	}
	return out
}

// Touches reports whether fetching (dir, owner) requires splicing: the
// owner has pending inserts or deletes in that direction.
func (d *Delta) Touches(dir Direction, owner uint32) bool {
	if d == nil {
		return false
	}
	return len(d.runs[dir][owner]) > 0 || len(d.dels[dir][owner]) > 0
}

// SpliceLen returns the length Splice would produce for (dir, owner)
// restricted to the codes prefix, given the base list's length — the
// count-pushdown fold path needs lengths without materializing entries.
func (d *Delta) SpliceLen(dir Direction, owner uint32, codes []uint16, baseLen int) int {
	n := baseLen
	for _, dr := range d.dels[dir][owner] {
		if prefixMatches(dr.codes, codes) {
			n--
		}
	}
	for i := range d.runs[dir][owner] {
		if prefixMatches(d.runs[dir][owner][i].codes, codes) {
			n++
		}
	}
	return n
}

// nextRunMatch advances i to the next run entry whose codes start with the
// prefix (len(run) when none remains).
func nextRunMatch(run []bufEntry, i int, prefix []uint16) int {
	for i < len(run) && !prefixMatches(run[i].codes, prefix) {
		i++
	}
	return i
}

// delContains reports whether the (eid-sorted) delete records cover eid.
func delContains(dels []delRec, eid uint64) bool {
	lo, hi := 0, len(dels)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if dels[mid].eid < eid {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(dels) && dels[lo].eid == eid
}

// Splice merges the overlay for (dir, owner), restricted to the codes
// prefix, into the base list fetched from the frozen primary p: pending
// inserts are interleaved in full index order (bucket codes, sort-key
// ordinals, neighbour ID, edge ID — the order the base CSR itself is built
// in) and pending deletes are dropped. The merged entries are written into
// the caller's reusable nbrs/eids buffers, which are grown only when
// capacity is insufficient, so a warm caller splices with zero heap
// allocations.
func (d *Delta) Splice(p *Primary, dir Direction, owner uint32, codes []uint16, base AdjList, nbrs []uint32, eids []uint64) ([]uint32, []uint64) {
	run := d.runs[dir][owner]
	dels := d.dels[dir][owner]
	n := base.Len()
	if cap(nbrs) < n+len(run) {
		nbrs = make([]uint32, 0, n+len(run))
	}
	if cap(eids) < n+len(run) {
		eids = make([]uint64, 0, n+len(run))
	}
	nbrs, eids = nbrs[:0], eids[:0]
	ri := nextRunMatch(run, 0, codes)
	var cb [8]uint16
	for i := 0; i < n; i++ {
		nb, e := base.Get(i)
		if len(dels) > 0 && delContains(dels, uint64(e)) {
			continue
		}
		if ri < len(run) {
			cur := bufEntry{
				nbr:   uint32(nb),
				eid:   uint64(e),
				sort:  sortOrdinals(p.g, p.cfg.Sorts, e, nb),
				codes: codesFor(p.levels, e, nb, cb[:0]),
			}
			for ri < len(run) && bufLess(run[ri], cur) {
				nbrs = append(nbrs, run[ri].nbr)
				eids = append(eids, run[ri].eid)
				ri = nextRunMatch(run, ri+1, codes)
			}
		}
		nbrs = append(nbrs, uint32(nb))
		eids = append(eids, uint64(e))
	}
	for ri < len(run) {
		nbrs = append(nbrs, run[ri].nbr)
		eids = append(eids, run[ri].eid)
		ri = nextRunMatch(run, ri+1, codes)
	}
	return nbrs, eids
}

// DeltaBuilder derives a successor Delta from a published parent during one
// commit. Maps are cloned lazily on first mutation and each owner slice is
// copied before its first mutation, so the parent stays immutable and the
// common insert-only commit never touches the delete structures; the op log
// shares backing with the parent under the single-serialized-writer
// discipline. Builders are not safe for concurrent use.
type DeltaBuilder struct {
	p *Primary       // frozen base (partition levels, sort keys, edge bound)
	g *storage.Graph // the batch's graph clone (values of fresh entities)
	d *Delta

	// ownedRunMaps/ownedDelMaps/ownedDeleted track which maps this builder
	// has already detached from the parent; ownedRuns/ownedDels track
	// (dir, owner) slices already copied, so repeated writes to one owner
	// mutate in place.
	ownedRunMaps [2]bool
	ownedDelMaps [2]bool
	ownedDeleted bool
	ownedRuns    [2]map[uint32]bool
	ownedDels    [2]map[uint32]bool

	impossible bool
}

// NewDeltaBuilder starts a commit's overlay from parent (nil for empty)
// against the frozen base primary p and the batch's graph clone g.
func NewDeltaBuilder(parent *Delta, p *Primary, g *storage.Graph) *DeltaBuilder {
	if parent == nil {
		parent = NewDelta()
	}
	nd := &Delta{
		runs:    parent.runs,
		dels:    parent.dels,
		deleted: parent.deleted,
		log:     parent.log[:parent.logLen],
		logLen:  parent.logLen,
		inserts: parent.inserts,
		deletes: parent.deletes,
	}
	return &DeltaBuilder{
		p: p, g: g, d: nd,
		ownedRuns: [2]map[uint32]bool{{}, {}},
		ownedDels: [2]map[uint32]bool{{}, {}},
	}
}

// runMap returns the builder's private run map for dir, detaching it from
// the parent on first use.
func (b *DeltaBuilder) runMap(dir Direction) map[uint32][]bufEntry {
	if !b.ownedRunMaps[dir] {
		m := make(map[uint32][]bufEntry, len(b.d.runs[dir])+1)
		for o, r := range b.d.runs[dir] {
			m[o] = r
		}
		b.d.runs[dir] = m
		b.ownedRunMaps[dir] = true
	}
	return b.d.runs[dir]
}

// delMap is runMap for the delete-record maps.
func (b *DeltaBuilder) delMap(dir Direction) map[uint32][]delRec {
	if !b.ownedDelMaps[dir] {
		m := make(map[uint32][]delRec, len(b.d.dels[dir])+1)
		for o, r := range b.d.dels[dir] {
			m[o] = r
		}
		b.d.dels[dir] = m
		b.ownedDelMaps[dir] = true
	}
	return b.d.dels[dir]
}

// deletedSet returns the builder's private pending-delete set, detaching it
// from the parent on first use.
func (b *DeltaBuilder) deletedSet() map[storage.EdgeID]struct{} {
	if !b.ownedDeleted {
		m := make(map[storage.EdgeID]struct{}, len(b.d.deleted)+1)
		for e := range b.d.deleted {
			m[e] = struct{}{}
		}
		b.d.deleted = m
		b.ownedDeleted = true
	}
	return b.d.deleted
}

// Impossible reports whether some op could not be expressed as an overlay
// entry (an edge carried a categorical value unknown to the base's
// partition levels). The commit must then fold everything into a fresh
// base instead of publishing this builder's delta.
func (b *DeltaBuilder) Impossible() bool { return b.impossible }

// Insert buffers a freshly added edge (already present in the builder's
// graph clone) in both directions.
func (b *DeltaBuilder) Insert(e storage.EdgeID) {
	src, dst := b.g.Src(e), b.g.Dst(e)
	fwCodes, ok1 := codesForInsert(b.g, b.p.levels, e, dst)
	bwCodes, ok2 := codesForInsert(b.g, b.p.levels, e, src)
	fwSort, ok3 := b.baseSortOrdinals(e, dst)
	bwSort, ok4 := b.baseSortOrdinals(e, src)
	if !ok1 || !ok2 || !ok3 || !ok4 {
		b.impossible = true
		return
	}
	b.insertRun(FW, uint32(src), bufEntry{
		nbr: uint32(dst), eid: uint64(e), sort: fwSort, codes: fwCodes,
	})
	b.insertRun(BW, uint32(dst), bufEntry{
		nbr: uint32(src), eid: uint64(e), sort: bwSort, codes: bwCodes,
	})
	b.d.inserts++
	b.d.log = append(b.d.log, deltaOp{e: e})
}

// baseSortOrdinals computes the sort-key ordinals of a delta entry in the
// FROZEN BASE's ordinal space — the space base entries are compared in
// during Splice and the space the base CSR was built in. Reading the batch
// value and mapping it through OrdinalOfValue(base graph) matters for
// string sort keys: the batch clone's dictionary may have interned new
// strings, which shifts every lexicographic rank in the clone's space. ok
// is false when a value has no base ordinal (e.g. a string the base has
// never seen), in which case the op cannot be buffered and the commit must
// fold to a fresh base.
func (b *DeltaBuilder) baseSortOrdinals(e storage.EdgeID, nbr storage.VertexID) ([2]uint64, bool) {
	var out [2]uint64
	for i, k := range b.p.cfg.Sorts {
		ord, ok := b.baseSortOrdinal(k, e, nbr)
		if !ok {
			return out, false
		}
		out[i] = ord
	}
	return out, true
}

func (b *DeltaBuilder) baseSortOrdinal(k SortKey, e storage.EdgeID, nbr storage.VertexID) (uint64, bool) {
	switch {
	case k.Prop == pred.PropID:
		if k.Var == pred.VarNbr {
			return uint64(nbr), true
		}
		return uint64(e), true
	case k.Prop == pred.PropLabel:
		// Label ids are dense append-only codes ordered by id (not rank),
		// so clone-interned labels extend the space without shifting it.
		if k.Var == pred.VarNbr {
			return uint64(b.g.VertexLabel(nbr)), true
		}
		return uint64(b.g.EdgeLabel(e)), true
	}
	var v storage.Value
	if k.Var == pred.VarNbr {
		v = b.g.VertexProp(nbr, k.Prop)
	} else {
		v = b.g.EdgeProp(e, k.Prop)
	}
	if v.IsNull() {
		return ^uint64(0), true // NULLs sort last in every space
	}
	return OrdinalOfValue(b.p.g, k, v)
}

func (b *DeltaBuilder) insertRun(dir Direction, owner uint32, be bufEntry) {
	m := b.runMap(dir)
	run := m[owner]
	if !b.ownedRuns[dir][owner] {
		run = append(make([]bufEntry, 0, len(run)+4), run...)
		b.ownedRuns[dir][owner] = true
	}
	lo, hi := 0, len(run)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if bufLess(run[mid], be) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	run = append(run, bufEntry{})
	copy(run[lo+1:], run[lo:])
	run[lo] = be
	m[owner] = run
}

// Delete buffers an edge deletion. Deleting an edge that itself postdates
// the base (it lives in a pending insert run) removes the run entry;
// deleting a base edge records a per-owner delete. Already-deleted edges
// are a no-op, matching Graph.DeleteEdge.
func (b *DeltaBuilder) Delete(e storage.EdgeID) {
	if b.g.EdgeDeleted(e) {
		return
	}
	if _, dup := b.d.deleted[e]; dup {
		return
	}
	src, dst := b.g.Src(e), b.g.Dst(e)
	if e >= b.p.EdgeBound() {
		// The edge was inserted after the base was built: unbuffer it.
		b.removeRun(FW, uint32(src), uint64(e))
		b.removeRun(BW, uint32(dst), uint64(e))
	} else {
		fwCodes, _ := codesForInsert(b.g, b.p.levels, e, dst)
		bwCodes, _ := codesForInsert(b.g, b.p.levels, e, src)
		b.insertDel(FW, uint32(src), delRec{eid: uint64(e), codes: fwCodes})
		b.insertDel(BW, uint32(dst), delRec{eid: uint64(e), codes: bwCodes})
	}
	b.deletedSet()[e] = struct{}{}
	b.d.deletes++
	b.d.log = append(b.d.log, deltaOp{del: true, e: e})
}

func (b *DeltaBuilder) removeRun(dir Direction, owner uint32, eid uint64) {
	run := b.d.runs[dir][owner]
	idx := -1
	for i := range run {
		if run[i].eid == eid {
			idx = i
			break
		}
	}
	if idx < 0 {
		return
	}
	m := b.runMap(dir)
	if !b.ownedRuns[dir][owner] {
		run = append(make([]bufEntry, 0, len(run)), run...)
		b.ownedRuns[dir][owner] = true
	}
	run = append(run[:idx], run[idx+1:]...)
	if len(run) == 0 {
		delete(m, owner)
		delete(b.ownedRuns[dir], owner)
		return
	}
	m[owner] = run
}

func (b *DeltaBuilder) insertDel(dir Direction, owner uint32, dr delRec) {
	m := b.delMap(dir)
	dels := m[owner]
	if !b.ownedDels[dir][owner] {
		dels = append(make([]delRec, 0, len(dels)+4), dels...)
		b.ownedDels[dir][owner] = true
	}
	lo, hi := 0, len(dels)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if dels[mid].eid < dr.eid {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	dels = append(dels, delRec{})
	copy(dels[lo+1:], dels[lo:])
	dels[lo] = dr
	m[owner] = dels
}

// Freeze seals and returns the built Delta. The builder must not be used
// afterwards.
func (b *DeltaBuilder) Freeze() *Delta {
	b.d.logLen = len(b.d.log)
	return b.d
}

// RebaseDelta rebuilds the overlay for a freshly merged base by replaying
// the ops parent committed after position `from` of its log (the merged
// snapshot's LogLen) against the new primary p and graph g. ok is false
// when some replayed edge carries a categorical value unknown even to the
// new base's levels — the caller must then rebuild from the graph instead.
func RebaseDelta(parent *Delta, from int, p *Primary, g *storage.Graph) (*Delta, bool) {
	b := NewDeltaBuilder(nil, p, g)
	for _, op := range parent.log[from:parent.logLen] {
		if op.del {
			b.Delete(op.e)
		} else {
			b.Insert(op.e)
		}
	}
	if b.Impossible() {
		return nil, false
	}
	return b.Freeze(), true
}
