package index

import (
	"testing"

	"github.com/aplusdb/aplus/internal/pred"
	"github.com/aplusdb/aplus/internal/storage"
)

func defaultPrimary(t *testing.T) *Primary {
	t.Helper()
	g := storage.ExampleGraph()
	p, err := BuildPrimary(g, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func listEdges(l AdjList) []int {
	out := make([]int, l.Len())
	for i := range out {
		out[i] = int(l.Edge(i)) + 1 // transfer number
	}
	return out
}

func listNbrs(l AdjList) []int {
	out := make([]int, l.Len())
	for i := range out {
		out[i] = int(l.Nbr(i)) + 1 // v-number
	}
	return out
}

func TestPrimaryDefaultConfigLists(t *testing.T) {
	p := defaultPrimary(t)
	g := p.Graph()
	// v1 (ID 0) forward Wire edges, sorted by neighbour ID:
	// t17->v2, t4->v3, t20->v4 (Figure 3a's red dashed view).
	codes, ok := p.ResolveCodes([]storage.Value{storage.Str(storage.LabelWire)})
	if !ok {
		t.Fatal("Wire label should resolve")
	}
	l := p.List(FW, 0, codes)
	if got, want := listNbrs(l), []int{2, 3, 4}; !eq(got, want) {
		t.Errorf("v1 Wire nbrs = %v, want %v", got, want)
	}
	if got, want := listEdges(l), []int{17, 4, 20}; !eq(got, want) {
		t.Errorf("v1 Wire edges = %v, want %v", got, want)
	}
	// v2 (ID 1) backward: transfers {t5,t6,t15,t17} plus Alice's Owns edge.
	bl := p.List(BW, 1, nil)
	if bl.Len() != 5 {
		t.Errorf("v2 backward len = %d, want 5", bl.Len())
	}
	// Union property: full owner list is the union of per-label sublists
	// (the paper's L = L_W ∪ L_DD observation).
	var sum int
	for _, lbl := range []string{"", storage.LabelWire, storage.LabelDeposit, storage.LabelOwns} {
		c, ok := p.ResolveCodes([]storage.Value{storage.Str(lbl)})
		if !ok {
			continue
		}
		sum += p.List(FW, 0, c).Len()
	}
	// Include the null bucket (edges without label) — none here.
	if full := p.List(FW, 0, nil).Len(); sum != full {
		t.Errorf("sublists sum to %d, owner list has %d", sum, full)
	}
	_ = g
}

func TestPrimaryCurrencyPartitioning(t *testing.T) {
	// Example 4's reconfiguration: PARTITION BY eadj.label, eadj.currency.
	g := storage.ExampleGraph()
	cfg := Config{
		Partitions: []PartitionKey{
			{Var: pred.VarAdj, Prop: pred.PropLabel},
			{Var: pred.VarAdj, Prop: storage.PropCurrency},
		},
	}
	p, err := BuildPrimary(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// v1's Wire+€ edges: t4 (€200) and t17 (€25).
	codes, ok := p.ResolveCodes([]storage.Value{
		storage.Str(storage.LabelWire), storage.Str("€"),
	})
	if !ok {
		t.Fatal("codes should resolve")
	}
	l := p.List(FW, 0, codes)
	if got, want := listEdges(l), []int{17, 4}; !eq(got, want) { // sorted by nbr: v2 then v3
		t.Errorf("v1 Wire/€ edges = %v, want %v", got, want)
	}
	// Prefix access (label only) spans all currencies.
	prefix, _ := p.ResolveCodes([]storage.Value{storage.Str(storage.LabelWire)})
	if p.List(FW, 0, prefix).Len() != 3 {
		t.Error("label prefix should span currencies")
	}
	// Unknown currency resolves to no list.
	if _, ok := p.ResolveCodes([]storage.Value{storage.Str(storage.LabelWire), storage.Str("¥")}); ok {
		t.Error("unknown currency should not resolve")
	}
}

func TestPrimarySortByNbrCity(t *testing.T) {
	// MF-style config: sort innermost lists on neighbour city.
	g := storage.ExampleGraph()
	cfg := DefaultConfig()
	cfg.Sorts = []SortKey{{Var: pred.VarNbr, Prop: storage.PropCity}}
	p, err := BuildPrimary(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// v1's Wire list sorted by city: BOS(v3,t4), BOS(v4,t20), SF(v2,t17).
	codes, _ := p.ResolveCodes([]storage.Value{storage.Str(storage.LabelWire)})
	l := p.List(FW, 0, codes)
	cities := make([]string, l.Len())
	for i := range cities {
		cities[i] = g.VertexProp(l.Nbr(i), storage.PropCity).S
	}
	want := []string{"BOS", "BOS", "SF"}
	for i := range want {
		if cities[i] != want[i] {
			t.Fatalf("cities = %v, want %v", cities, want)
		}
	}
	// Within equal city, neighbour ID breaks ties: v3 before v4.
	if l.Nbr(0) != 2 || l.Nbr(1) != 3 {
		t.Errorf("tiebreak wrong: %v", listNbrs(l))
	}
}

func TestPrimarySortByEdgeDate(t *testing.T) {
	g := storage.ExampleGraph()
	cfg := DefaultConfig()
	cfg.Sorts = []SortKey{{Var: pred.VarAdj, Prop: storage.PropDate}}
	p, err := BuildPrimary(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// v5's (ID 4) forward lists per label sorted by date = transfer number.
	codes, _ := p.ResolveCodes([]storage.Value{storage.Str(storage.LabelDeposit)})
	l := p.List(FW, 4, codes)
	prev := int64(-1)
	for i := 0; i < l.Len(); i++ {
		d := g.EdgeProp(l.Edge(i), storage.PropDate).I
		if d < prev {
			t.Fatalf("dates not ascending: %v", listEdges(l))
		}
		prev = d
	}
}

func TestPrimaryNbrLabelPartitioning(t *testing.T) {
	// The Dp configuration of Table II: edge label then neighbour label.
	g := storage.ExampleGraph()
	cfg := Config{
		Partitions: []PartitionKey{
			{Var: pred.VarAdj, Prop: pred.PropLabel},
			{Var: pred.VarNbr, Prop: pred.PropLabel},
		},
	}
	p, err := BuildPrimary(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Alice (v7, ID 6) owns v1,v2: Owns+Account bucket has 2 entries.
	codes, ok := p.ResolveCodes([]storage.Value{
		storage.Str(storage.LabelOwns), storage.Str(storage.LabelAccount),
	})
	if !ok {
		t.Fatal("resolve")
	}
	if l := p.List(FW, 6, codes); l.Len() != 2 {
		t.Errorf("Alice Owns->Account = %d entries, want 2", l.Len())
	}
	// Owns+Customer bucket is empty.
	codes, _ = p.ResolveCodes([]storage.Value{
		storage.Str(storage.LabelOwns), storage.Str(storage.LabelCustomer),
	})
	if l := p.List(FW, 6, codes); l.Len() != 0 {
		t.Error("Owns->Customer should be empty")
	}
}

func TestPrimaryMemorySplit(t *testing.T) {
	p := defaultPrimary(t)
	levels, ids := p.MemoryBytes()
	if levels <= 0 || ids <= 0 {
		t.Fatal("memory split should be positive")
	}
	// ID lists: 25 edges * 2 directions * (4+8) bytes.
	if ids != 25*2*12 {
		t.Errorf("ID list bytes = %d, want %d", ids, 25*2*12)
	}
	// Adding a partitioning level grows the levels, not the ID lists.
	g := storage.ExampleGraph()
	cfg := Config{Partitions: []PartitionKey{
		{Var: pred.VarAdj, Prop: pred.PropLabel},
		{Var: pred.VarNbr, Prop: pred.PropLabel},
	}}
	p2, err := BuildPrimary(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	levels2, ids2 := p2.MemoryBytes()
	if ids2 != ids {
		t.Error("ID list size should be unchanged by partitioning")
	}
	if levels2 <= levels {
		t.Error("extra partitioning level should cost memory")
	}
}

func TestConfigValidate(t *testing.T) {
	bad := Config{Partitions: []PartitionKey{{Var: pred.VarBound, Prop: "x"}}}
	if bad.Validate() == nil {
		t.Error("eb partition key should be rejected")
	}
	bad2 := Config{Partitions: []PartitionKey{{Var: pred.VarAdj, Prop: pred.PropID}}}
	if bad2.Validate() == nil {
		t.Error("ID partition key should be rejected")
	}
	bad3 := Config{Sorts: []SortKey{{Var: pred.VarAdj, Prop: "a"}, {Var: pred.VarAdj, Prop: "b"}, {Var: pred.VarAdj, Prop: "c"}}}
	if bad3.Validate() == nil {
		t.Error("3 sort keys should be rejected")
	}
	if err := DefaultConfig().Validate(); err != nil {
		t.Errorf("default config invalid: %v", err)
	}
}

func TestSortSignature(t *testing.T) {
	if got := DefaultConfig().SortSignature(); got != "vnbr.ID" {
		t.Errorf("default signature = %q", got)
	}
	c := Config{Sorts: []SortKey{{Var: pred.VarNbr, Prop: storage.PropCity}}}
	if got := c.SortSignature(); got != "vnbr.city" {
		t.Errorf("city signature = %q", got)
	}
}

func eq(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
