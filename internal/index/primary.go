package index

import (
	"sort"

	"github.com/aplusdb/aplus/internal/csr"
	"github.com/aplusdb/aplus/internal/pred"
	"github.com/aplusdb/aplus/internal/storage"
)

// Primary is the pair of forward and backward primary A+ indexes. It is
// required to contain every live edge of the graph (Section III-A) and is
// the base that secondary offset lists resolve into. Its nested
// partitioning and sorting are reconfigurable at runtime.
type Primary struct {
	g      *storage.Graph
	cfg    Config
	levels []level
	fw, bw *csr.CSR

	// edgeBound is the graph's edge-slot count when the CSRs were built;
	// edges at or past it live only in snapshot delta overlays until the
	// next merge.
	edgeBound storage.EdgeID

	// Maintenance state (Section IV-C): per-owner update buffers holding
	// freshly inserted edges until the next merge, plus a count of pending
	// tombstones that forces lists to filter deleted edges.
	fwBuf, bwBuf map[uint32][]bufEntry
	buffered     int
	tombstones   int
}

type bufEntry struct {
	nbr   uint32
	eid   uint64
	sort  [2]uint64
	codes []uint16
}

// BuildPrimary constructs the primary indexes over every live edge of g
// under the given configuration.
func BuildPrimary(g *storage.Graph, cfg Config) (*Primary, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	levels, err := buildLevels(g, cfg.Partitions)
	if err != nil {
		return nil, err
	}
	p := &Primary{
		g:         g,
		cfg:       cfg,
		levels:    levels,
		edgeBound: storage.EdgeID(g.NumEdges()),
		fwBuf:     make(map[uint32][]bufEntry),
		bwBuf:     make(map[uint32][]bufEntry),
	}
	cards := levelCards(levels)
	fb := csr.NewBuilder(g.NumVertices(), cards)
	bb := csr.NewBuilder(g.NumVertices(), cards)
	fb.Reserve(g.NumLiveEdges())
	bb.Reserve(g.NumLiveEdges())
	var buf []uint16
	for i := 0; i < g.NumEdges(); i++ {
		e := storage.EdgeID(i)
		if g.EdgeDeleted(e) {
			continue
		}
		src, dst := g.Src(e), g.Dst(e)
		buf = codesFor(levels, e, dst, buf)
		fb.Add(csr.Entry{
			Owner: uint32(src), Nbr: uint32(dst), EID: uint64(e),
			Sort: sortOrdinals(g, cfg.Sorts, e, dst),
		}, buf)
		buf = codesFor(levels, e, src, buf)
		bb.Add(csr.Entry{
			Owner: uint32(dst), Nbr: uint32(src), EID: uint64(e),
			Sort: sortOrdinals(g, cfg.Sorts, e, src),
		}, buf)
	}
	p.fw = fb.Build()
	p.bw = bb.Build()
	return p, nil
}

// Graph returns the underlying graph.
func (p *Primary) Graph() *storage.Graph { return p.g }

// Config returns the active configuration.
func (p *Primary) Config() Config { return p.cfg }

// NumLevels returns the number of nested partitioning levels.
func (p *Primary) NumLevels() int { return len(p.levels) }

// LevelCards returns the cardinality of each partitioning level (used by
// the optimizer to expand bucket choices for sorted access).
func (p *Primary) LevelCards() []int { return levelCards(p.levels) }

func (p *Primary) dirCSR(dir Direction) *csr.CSR {
	if dir == FW {
		return p.fw
	}
	return p.bw
}

func (p *Primary) dirBuf(dir Direction) map[uint32][]bufEntry {
	if dir == FW {
		return p.fwBuf
	}
	return p.bwBuf
}

// ResolveCodes maps a prefix of partition-key values to bucket codes. It
// returns ok=false when some value can never occur, meaning the matching
// list is provably empty.
func (p *Primary) ResolveCodes(vals []storage.Value) ([]uint16, bool) {
	if len(vals) > len(p.levels) {
		panic("index: more partition values than levels")
	}
	codes := make([]uint16, len(vals))
	for i, v := range vals {
		b, ok := p.levels[i].cat.BucketOf(v)
		if !ok {
			return nil, false
		}
		codes[i] = b
	}
	return codes, true
}

// EdgeBound returns the graph's edge-slot count when the CSRs were built;
// edges at or past it are absent from the base and live in delta overlays.
func (p *Primary) EdgeBound() storage.EdgeID { return p.edgeBound }

// List returns the adjacency list of v under dir, restricted to the bucket
// prefix codes (possibly empty = the whole neighbourhood). Pending update
// buffers and tombstones are merged in, preserving sort order. Vertices
// added after the build (snapshot deltas) have an empty base list.
func (p *Primary) List(dir Direction, v storage.VertexID, codes []uint16) AdjList {
	c := p.dirCSR(dir)
	var base AdjList
	if int(v) < c.NumOwners() {
		lo, hi := c.PrefixRange(uint32(v), codes)
		base = DirectList(c.Nbrs()[lo:hi], c.EIDs()[lo:hi])
	}
	buf := p.dirBuf(dir)[uint32(v)]
	if len(buf) == 0 && p.tombstones == 0 {
		return base
	}
	return p.mergeList(dir, base, buf, codes, v)
}

// OwnerList returns the full list of v under dir — the range secondary
// offsets resolve into.
func (p *Primary) OwnerList(dir Direction, v storage.VertexID) AdjList {
	return p.List(dir, v, nil)
}

// ownerSlices returns the raw owner-range arrays for offset resolution.
func (p *Primary) ownerSlices(dir Direction, v storage.VertexID) ([]uint32, []uint64) {
	c := p.dirCSR(dir)
	if int(v) >= c.NumOwners() {
		return nil, nil
	}
	lo, hi := c.OwnerRange(uint32(v))
	return c.Nbrs()[lo:hi], c.EIDs()[lo:hi]
}

// OwnerLen returns the number of entries in v's full list under dir,
// excluding pending buffers (the sizing basis for offset widths).
func (p *Primary) OwnerLen(dir Direction, v storage.VertexID) uint32 {
	c := p.dirCSR(dir)
	if int(v) >= c.NumOwners() {
		return 0
	}
	lo, hi := c.OwnerRange(uint32(v))
	return hi - lo
}

// Deg returns the merged degree of v under dir, including buffers.
func (p *Primary) Deg(dir Direction, v storage.VertexID) int {
	return p.List(dir, v, nil).Len()
}

// mergeList merges buffered inserts into a base list and filters
// tombstones, preserving the index order (bucket codes, sort keys,
// neighbour ID, edge ID).
func (p *Primary) mergeList(dir Direction, base AdjList, buf []bufEntry, codes []uint16, v storage.VertexID) AdjList {
	matching := filterPrefix(buf, codes)
	if len(matching) == 0 && p.tombstones == 0 {
		return base
	}
	return mergeBuffered(p.g, base, matching, p.levels, p.cfg.Sorts, p.tombstones > 0)
}

// filterPrefix keeps buffered entries whose bucket codes start with prefix.
func filterPrefix(buf []bufEntry, prefix []uint16) []bufEntry {
	matching := make([]bufEntry, 0, len(buf))
	for _, be := range buf {
		if prefixMatches(be.codes, prefix) {
			matching = append(matching, be)
		}
	}
	return matching
}

// mergeBuffered interleaves buffered entries into a base list in full index
// order and drops tombstoned edges. Base entries' bucket codes are
// recomputed from the levels (they are always in range: the CSR and its
// levels are rebuilt together).
func mergeBuffered(g *storage.Graph, base AdjList, matching []bufEntry, levels []level, sorts []SortKey, filterDeleted bool) AdjList {
	sort.Slice(matching, func(i, j int) bool { return bufLess(matching[i], matching[j]) })
	n := base.Len()
	nbrs := make([]uint32, 0, n+len(matching))
	eids := make([]uint64, 0, n+len(matching))
	bi := 0
	var codeBuf []uint16
	for i := 0; i < n; i++ {
		nb, e := base.Get(i)
		if filterDeleted && g.EdgeDeleted(e) {
			continue
		}
		codeBuf = codesFor(levels, e, nb, codeBuf)
		cur := bufEntry{nbr: uint32(nb), eid: uint64(e), sort: sortOrdinals(g, sorts, e, nb), codes: codeBuf}
		for bi < len(matching) && bufLess(matching[bi], cur) {
			nbrs = append(nbrs, matching[bi].nbr)
			eids = append(eids, matching[bi].eid)
			bi++
		}
		nbrs = append(nbrs, uint32(nb))
		eids = append(eids, uint64(e))
	}
	for ; bi < len(matching); bi++ {
		nbrs = append(nbrs, matching[bi].nbr)
		eids = append(eids, matching[bi].eid)
	}
	return DirectList(nbrs, eids)
}

func bufLess(a, b bufEntry) bool {
	for i := 0; i < len(a.codes) && i < len(b.codes); i++ {
		if a.codes[i] != b.codes[i] {
			return a.codes[i] < b.codes[i]
		}
	}
	if a.sort != b.sort {
		return a.sort[0] < b.sort[0] || (a.sort[0] == b.sort[0] && a.sort[1] < b.sort[1])
	}
	if a.nbr != b.nbr {
		return a.nbr < b.nbr
	}
	return a.eid < b.eid
}

func prefixMatches(entryCodes, prefix []uint16) bool {
	for i, c := range prefix {
		if entryCodes[i] != c {
			return false
		}
	}
	return true
}

// applyInsert buffers a freshly inserted edge in both directions. ok is
// false when the edge carries a categorical value unknown to the current
// partition levels, which requires a rebuild instead.
func (p *Primary) applyInsert(e storage.EdgeID) bool {
	src, dst := p.g.Src(e), p.g.Dst(e)
	fwCodes, ok1 := codesForInsert(p.g, p.levels, e, dst)
	bwCodes, ok2 := codesForInsert(p.g, p.levels, e, src)
	if !ok1 || !ok2 {
		return false
	}
	p.fwBuf[uint32(src)] = append(p.fwBuf[uint32(src)], bufEntry{
		nbr: uint32(dst), eid: uint64(e), sort: sortOrdinals(p.g, p.cfg.Sorts, e, dst), codes: fwCodes,
	})
	p.bwBuf[uint32(dst)] = append(p.bwBuf[uint32(dst)], bufEntry{
		nbr: uint32(src), eid: uint64(e), sort: sortOrdinals(p.g, p.cfg.Sorts, e, src), codes: bwCodes,
	})
	p.buffered++
	return true
}

// applyDelete records a tombstone (the graph itself marks the edge).
func (p *Primary) applyDelete() { p.tombstones++ }

// pendingWork reports the amount of buffered maintenance state.
func (p *Primary) pendingWork() int { return p.buffered + p.tombstones }

// rebuild reconstructs the CSRs from the graph and clears buffers.
func (p *Primary) rebuild() error {
	// Vertices may have been added since the last build; the level
	// categoricals may also have grown.
	levels, err := buildLevels(p.g, p.cfg.Partitions)
	if err != nil {
		return err
	}
	p.levels = levels
	fresh, err := BuildPrimary(p.g, p.cfg)
	if err != nil {
		return err
	}
	p.fw, p.bw = fresh.fw, fresh.bw
	p.levels = fresh.levels
	p.edgeBound = fresh.edgeBound
	p.fwBuf = make(map[uint32][]bufEntry)
	p.bwBuf = make(map[uint32][]bufEntry)
	p.buffered = 0
	p.tombstones = 0
	return nil
}

// MemoryBytes reports (partition levels, ID lists) bytes across both
// directions.
func (p *Primary) MemoryBytes() (levels, idLists int64) {
	fl, fi := p.fw.MemoryBytes()
	bl, bi := p.bw.MemoryBytes()
	return fl + bl, fi + bi
}

// PartitionKeys returns the configured partition keys.
func (p *Primary) PartitionKeys() []PartitionKey { return p.cfg.Partitions }

// SortKeys returns the configured sort keys (nil means neighbour-ID order).
func (p *Primary) SortKeys() []SortKey { return p.cfg.Sorts }

// EffectiveSorts returns the sort keys with the implicit neighbour-ID
// tiebreak appended, which is the complete ordering of the innermost lists.
func (p *Primary) EffectiveSorts() []SortKey {
	return append(append([]SortKey(nil), p.cfg.Sorts...), NbrIDSort)
}

// ResolvePredicate rewrites vnbr references for a direction so the result
// can be evaluated with pred.EdgeCtx.
func ResolvePredicate(q pred.Predicate, dir Direction) pred.Predicate {
	return q.ResolveNbr(dir == FW)
}
