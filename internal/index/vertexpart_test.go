package index

import (
	"testing"

	"github.com/aplusdb/aplus/internal/pred"
	"github.com/aplusdb/aplus/internal/storage"
)

func TestVPSharedLevels(t *testing.T) {
	// Figure 3a's secondary index: same partitioning as primary, no
	// predicate, sorted on neighbour city -> shares partition levels.
	p := defaultPrimary(t)
	def := VPDef{
		View: View1Hop{Name: "ByCity"},
		Dirs: []Direction{FW},
		Cfg: Config{
			Partitions: DefaultConfig().Partitions,
			Sorts:      []SortKey{{Var: pred.VarNbr, Prop: storage.PropCity}},
		},
	}
	v, err := BuildVertexPartitioned(p, def)
	if err != nil {
		t.Fatal(err)
	}
	if !v.SharedLevels(FW) {
		t.Fatal("expected shared partition levels")
	}
	// v1's Wire list through the secondary: sorted by city (BOS,BOS,SF).
	codes, _ := v.ResolveCodes(FW, []storage.Value{storage.Str(storage.LabelWire)})
	l := v.List(FW, 0, codes)
	if l.Len() != 3 {
		t.Fatalf("len = %d, want 3", l.Len())
	}
	g := p.Graph()
	cities := []string{}
	for i := 0; i < l.Len(); i++ {
		cities = append(cities, g.VertexProp(l.Nbr(i), storage.PropCity).S)
	}
	if cities[0] != "BOS" || cities[1] != "BOS" || cities[2] != "SF" {
		t.Errorf("cities = %v", cities)
	}
	// Same edge set as the primary bucket, different order.
	pc, _ := p.ResolveCodes([]storage.Value{storage.Str(storage.LabelWire)})
	pl := p.List(FW, 0, pc)
	if pl.Len() != l.Len() {
		t.Error("shared secondary must store the same edges per bucket")
	}
}

func TestVPWithPredicate(t *testing.T) {
	// Example 6 analogue: index transfers in € over 20.
	p := defaultPrimary(t)
	def := VPDef{
		View: View1Hop{
			Name: "LargeEUR",
			Pred: pred.Predicate{}.
				And(pred.ConstTerm(pred.VarAdj, storage.PropCurrency, pred.EQ, storage.Str("€"))).
				And(pred.ConstTerm(pred.VarAdj, storage.PropAmount, pred.GT, storage.Int(20))),
		},
		Dirs: []Direction{FW, BW},
		Cfg:  DefaultConfig(),
	}
	v, err := BuildVertexPartitioned(p, def)
	if err != nil {
		t.Fatal(err)
	}
	if v.SharedLevels(FW) {
		t.Error("predicate index must not share levels")
	}
	// € transfers over 20: t4 (€200, v1->v3), t17 (€25, v1->v2), t18 (€30,
	// v1->v5). t11 (€5) is excluded. The index partitions by edge label
	// (DD buckets before W in catalog order), then sorts by neighbour.
	l := v.List(FW, 0, nil)
	if got, want := listEdges(l), []int{18, 17, 4}; !eq(got, want) {
		t.Errorf("LargeEUR(v1) = %v, want %v", got, want)
	}
	// Backward: v3's incoming large-EUR = {t4}.
	bl := v.List(BW, 2, nil)
	if got, want := listEdges(bl), []int{4}; !eq(got, want) {
		t.Errorf("LargeEUR(BW v3) = %v, want %v", got, want)
	}
	// Whole-graph count: 2 directions * 3 edges.
	if v.NumIndexedEdges() != 6 {
		t.Errorf("NumIndexedEdges = %d, want 6", v.NumIndexedEdges())
	}
}

func TestVPOffsetListsAreSmall(t *testing.T) {
	// The offset-list representation must be much smaller than ID lists
	// would be: <= 1 byte per indexed edge here (max degree < 256), vs 12.
	p := defaultPrimary(t)
	def := VPDef{
		View: View1Hop{Name: "All"},
		Dirs: []Direction{FW},
		Cfg:  DefaultConfig(),
	}
	v, err := BuildVertexPartitioned(p, def)
	if err != nil {
		t.Fatal(err)
	}
	mem := v.MemoryBytes()
	// 25 edges at 1 byte each plus tiny group metadata.
	if mem >= 25*12 {
		t.Errorf("offset lists cost %d bytes; ID lists would cost %d", mem, 25*12)
	}
}

func TestVPRejectsBoundEdgeRefs(t *testing.T) {
	p := defaultPrimary(t)
	def := VPDef{
		View: View1Hop{
			Name: "Bad",
			Pred: pred.Predicate{}.And(pred.VarTerm(pred.VarBound, "date", pred.LT, pred.VarAdj, "date")),
		},
		Dirs: []Direction{FW},
		Cfg:  DefaultConfig(),
	}
	if _, err := BuildVertexPartitioned(p, def); err == nil {
		t.Error("1-hop view referencing eb must be rejected")
	}
}

func TestVPSortByEdgeTime(t *testing.T) {
	// The VPt index of Table III: shares partition levels, sorts on an edge
	// property.
	p := defaultPrimary(t)
	def := VPDef{
		View: View1Hop{Name: "VPt"},
		Dirs: []Direction{FW},
		Cfg: Config{
			Partitions: DefaultConfig().Partitions,
			Sorts:      []SortKey{{Var: pred.VarAdj, Prop: storage.PropDate}},
		},
	}
	v, err := BuildVertexPartitioned(p, def)
	if err != nil {
		t.Fatal(err)
	}
	if !v.SharedLevels(FW) {
		t.Error("VPt should share levels (no predicate, same partitioning)")
	}
	// v5's DD list sorted by date ascending.
	codes, _ := v.ResolveCodes(FW, []storage.Value{storage.Str(storage.LabelDeposit)})
	l := v.List(FW, 4, codes)
	g := p.Graph()
	prev := int64(-1)
	for i := 0; i < l.Len(); i++ {
		d := g.EdgeProp(l.Edge(i), storage.PropDate).I
		if d < prev {
			t.Fatalf("dates not sorted: %v", listEdges(l))
		}
		prev = d
	}
}
