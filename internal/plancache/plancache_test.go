package plancache

import "testing"

func TestHitMissLRU(t *testing.T) {
	c := New[string, int](2)
	gen := "g1"
	if _, ok := c.Get(gen, "a"); ok {
		t.Fatal("hit on empty cache")
	}
	c.Put(gen, "a", 1)
	c.Put(gen, "b", 2)
	if v, ok := c.Get(gen, "a"); !ok || v != 1 {
		t.Fatalf("a = %d,%v", v, ok)
	}
	// "a" is now most recent; inserting "c" must evict "b".
	c.Put(gen, "c", 3)
	if _, ok := c.Get(gen, "b"); ok {
		t.Fatal("b should have been evicted")
	}
	if v, ok := c.Get(gen, "a"); !ok || v != 1 {
		t.Fatalf("a after eviction = %d,%v", v, ok)
	}
	st := c.Stats()
	if st.Evictions != 1 || st.Entries != 2 {
		t.Fatalf("stats = %+v", st)
	}
	if st.Hits != 2 || st.Misses != 2 {
		t.Fatalf("hits/misses = %d/%d, want 2/2", st.Hits, st.Misses)
	}
}

func TestGenerationInvalidation(t *testing.T) {
	c := New[string, int](8)
	g1, g2 := &struct{ int }{1}, &struct{ int }{2}
	c.Put(g1, "q", 1)
	if _, ok := c.Get(g2, "q"); ok {
		t.Fatal("stale generation must miss")
	}
	// Old generation still hits until a Put flips the cache over.
	if v, ok := c.Get(g1, "q"); !ok || v != 1 {
		t.Fatalf("g1 lookup = %d,%v", v, ok)
	}
	c.Put(g2, "q", 2)
	if _, ok := c.Get(g1, "q"); ok {
		t.Fatal("g1 must miss after g2 Put")
	}
	if v, ok := c.Get(g2, "q"); !ok || v != 2 {
		t.Fatalf("g2 lookup = %d,%v", v, ok)
	}
	if st := c.Stats(); st.Invalidations != 1 || st.Entries != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestPurge(t *testing.T) {
	c := New[string, int](8)
	c.Put("g", "a", 1)
	c.Put("g", "b", 2)
	c.Purge()
	if c.Len() != 0 {
		t.Fatalf("len after purge = %d", c.Len())
	}
	if st := c.Stats(); st.Invalidations != 2 {
		t.Fatalf("invalidations = %d, want 2", st.Invalidations)
	}
	// Same generation, cache usable again.
	c.Put("g", "a", 3)
	if v, ok := c.Get("g", "a"); !ok || v != 3 {
		t.Fatalf("a after purge = %d,%v", v, ok)
	}
}

func TestUpdateExisting(t *testing.T) {
	c := New[string, int](2)
	c.Put("g", "a", 1)
	c.Put("g", "a", 9)
	if v, ok := c.Get("g", "a"); !ok || v != 9 {
		t.Fatalf("a = %d,%v, want 9", v, ok)
	}
	if c.Len() != 1 {
		t.Fatalf("len = %d, want 1", c.Len())
	}
}

func TestNormalize(t *testing.T) {
	cases := []struct{ in, want string }{
		{"MATCH a-[e]->b", "MATCH a-[e]->b"},
		{"  MATCH   a-[e]->b\n", "MATCH a-[e]->b"},
		{"MATCH\ta-[e]->b,\n\tb-[f]->c", "MATCH a-[e]->b, b-[f]->c"},
		{"MATCH a-[e]->b WHERE a.name = 'two  spaces'", "MATCH a-[e]->b WHERE a.name = 'two  spaces'"},
		{"MATCH a-[e]->b  WHERE a.name='x y'  ", "MATCH a-[e]->b WHERE a.name='x y'"},
		{"", ""},
		{"   ", ""},
	}
	for _, tc := range cases {
		if got := Normalize(tc.in); got != tc.want {
			t.Errorf("Normalize(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

func TestConcurrent(t *testing.T) {
	c := New[int, int](16)
	done := make(chan struct{})
	for w := 0; w < 4; w++ {
		go func(w int) {
			defer func() { done <- struct{}{} }()
			gen := w % 2 // two generations contending
			for i := 0; i < 500; i++ {
				c.Put(gen, i%32, i)
				c.Get(gen, (i+7)%32)
			}
		}(w)
	}
	for w := 0; w < 4; w++ {
		<-done
	}
	st := c.Stats()
	if st.Entries > 16 {
		t.Fatalf("entries %d exceed cap", st.Entries)
	}
}
