// Package plancache provides a small generation-tagged LRU cache for
// compiled query plans, shared by the embedded read path and the serving
// layer. Keys are caller-defined (typically the whitespace-normalized
// query text plus the planner mode); the generation is an opaque identity
// of the world the cached values were compiled against (the engine uses
// the frozen *index.Store pointer: folds and DDL publish a new store, so
// a generation change is exactly "any cached plan may now be stale").
// Values compiled under an older generation are never returned; the first
// Put under a new generation drops them wholesale.
//
// janus-datalog measured ~3x on repeated queries from plan caching alone;
// here a hit skips parse + DP plan search and reuses the compiled *Plan,
// whose pipelines the exec layer additionally caches per Runtime.
package plancache

import (
	"container/list"
	"strings"
	"sync"
)

// Stats is a point-in-time snapshot of cache effectiveness counters.
type Stats struct {
	Hits          int64
	Misses        int64
	Evictions     int64 // capacity evictions (LRU)
	Invalidations int64 // entries dropped by generation changes or Purge
	Entries       int64
}

type entry[K comparable, V any] struct {
	k K
	v V
}

// Cache is a mutex-guarded LRU keyed on K, tagged with a generation.
// The zero value is not usable; call New.
type Cache[K comparable, V any] struct {
	mu    sync.Mutex
	max   int
	gen   any
	order *list.List // front = most recently used
	byKey map[K]*list.Element

	hits, misses, evictions, invalidations int64
}

// New returns a cache holding at most max entries (max < 1 is treated
// as 1).
func New[K comparable, V any](max int) *Cache[K, V] {
	if max < 1 {
		max = 1
	}
	return &Cache[K, V]{
		max:   max,
		order: list.New(),
		byKey: make(map[K]*list.Element, max),
	}
}

// Get returns the value cached for k under generation gen. A lookup under
// any other generation is a miss (the stale entries are dropped by the
// next Put, not here, so concurrent readers of an older pinned generation
// only pay misses rather than thrashing the cache).
func (c *Cache[K, V]) Get(gen any, k K) (V, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.gen != gen {
		c.misses++
		var zero V
		return zero, false
	}
	el, ok := c.byKey[k]
	if !ok {
		c.misses++
		var zero V
		return zero, false
	}
	c.order.MoveToFront(el)
	c.hits++
	return el.Value.(*entry[K, V]).v, true
}

// Put caches v for k under generation gen. When gen differs from the
// cache's current generation every existing entry is invalidated first.
func (c *Cache[K, V]) Put(gen any, k K, v V) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.gen != gen {
		c.invalidations += int64(len(c.byKey))
		c.purgeLocked()
		c.gen = gen
	}
	if el, ok := c.byKey[k]; ok {
		el.Value.(*entry[K, V]).v = v
		c.order.MoveToFront(el)
		return
	}
	c.byKey[k] = c.order.PushFront(&entry[K, V]{k: k, v: v})
	for len(c.byKey) > c.max {
		back := c.order.Back()
		c.order.Remove(back)
		delete(c.byKey, back.Value.(*entry[K, V]).k)
		c.evictions++
	}
}

// Purge drops every entry (counted as invalidations), keeping counters.
func (c *Cache[K, V]) Purge() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.invalidations += int64(len(c.byKey))
	c.purgeLocked()
}

func (c *Cache[K, V]) purgeLocked() {
	c.order.Init()
	clear(c.byKey)
}

// Len returns the current entry count.
func (c *Cache[K, V]) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.byKey)
}

// Stats returns a snapshot of the counters.
func (c *Cache[K, V]) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Hits:          c.hits,
		Misses:        c.misses,
		Evictions:     c.evictions,
		Invalidations: c.invalidations,
		Entries:       int64(len(c.byKey)),
	}
}

// Normalize canonicalizes query text for cache keying: runs of whitespace
// outside single-quoted string literals collapse to one space, and leading/
// trailing whitespace is trimmed. Text inside quotes — where whitespace is
// semantically significant — is preserved byte-for-byte. Queries differing
// only in layout therefore share one cache entry; Normalize never changes
// query semantics because the parser already treats whitespace runs as a
// single separator.
func Normalize(q string) string {
	var b strings.Builder
	b.Grow(len(q))
	inStr := false
	pendingSpace := false
	for i := 0; i < len(q); i++ {
		ch := q[i]
		if inStr {
			b.WriteByte(ch)
			if ch == '\'' {
				inStr = false
			}
			continue
		}
		switch ch {
		case ' ', '\t', '\n', '\r':
			pendingSpace = b.Len() > 0
		default:
			if pendingSpace {
				b.WriteByte(' ')
				pendingSpace = false
			}
			if ch == '\'' {
				inStr = true
			}
			b.WriteByte(ch)
		}
	}
	return b.String()
}
