package obs

import (
	"strings"
	"sync"
	"testing"
	"time"
)

// TestBucketBoundaries pins the bucket function at the edges: 0 is its own
// bucket, each power of two starts a new bucket, and the largest int64
// lands in the last bucket instead of wrapping.
func TestBucketBoundaries(t *testing.T) {
	cases := []struct {
		v      int64
		bucket int
	}{
		{0, 0},
		{1, 1},
		{2, 2}, {3, 2},
		{4, 3}, {7, 3},
		{8, 4},
		{1023, 10}, {1024, 11},
		{1<<62 - 1, 62}, {1 << 62, 63}, {1<<63 - 1, 63},
		{-5, 0}, // negative samples clamp to 0
	}
	for _, c := range cases {
		var h Histogram
		h.Record(c.v)
		st := h.Snapshot()
		if st.Count != 1 {
			t.Fatalf("Record(%d): count = %d", c.v, st.Count)
		}
		for b, n := range st.Buckets {
			want := int64(0)
			if b == c.bucket {
				want = 1
			}
			if n != want {
				t.Errorf("Record(%d): bucket[%d] = %d, want %d", c.v, b, n, want)
			}
		}
	}
}

// TestQuantilesAndMax checks the quantile estimates against a known
// distribution: each estimate must be the upper bound of the bucket its
// rank falls in, and Max is exact.
func TestQuantilesAndMax(t *testing.T) {
	var h Histogram
	// 90 fast samples (~1µs bucket), 10 slow ones (~1ms bucket).
	for i := 0; i < 90; i++ {
		h.Record(1000) // bucket 10, upper bound 1024ns
	}
	for i := 0; i < 10; i++ {
		h.Record(1_000_000) // bucket 20, upper bound ~1.05ms
	}
	st := h.Snapshot()
	if st.Count != 100 || st.Max != time.Duration(1_000_000) {
		t.Fatalf("count=%d max=%v", st.Count, st.Max)
	}
	if st.P50 != BucketUpper(10) {
		t.Errorf("p50 = %v, want %v", st.P50, BucketUpper(10))
	}
	if st.P95 != BucketUpper(20) {
		t.Errorf("p95 = %v, want %v", st.P95, BucketUpper(20))
	}
	if st.P99 != BucketUpper(20) {
		t.Errorf("p99 = %v, want %v", st.P99, BucketUpper(20))
	}
	if st.Sum != time.Duration(90*1000+10*1_000_000) {
		t.Errorf("sum = %v", st.Sum)
	}
}

// TestConcurrentRecordMergeParity records a known multiset from many
// goroutines (exercising the stripes under -race) and checks the merged
// snapshot is bit-identical to a serial recording of the same samples —
// and that merging per-goroutine histograms gives the same answer as one
// shared histogram.
func TestConcurrentRecordMergeParity(t *testing.T) {
	const goroutines = 8
	const perG = 10_000
	var shared Histogram
	parts := make([]Histogram, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				v := int64(g*perG+i) * 37 % 2_000_003
				shared.Record(v)
				parts[g].Record(v)
			}
		}(g)
	}
	wg.Wait()

	var serial Histogram
	for g := 0; g < goroutines; g++ {
		for i := 0; i < perG; i++ {
			serial.Record(int64(g*perG+i) * 37 % 2_000_003)
		}
	}

	want := serial.Snapshot()
	if got := shared.Snapshot(); got != want {
		t.Errorf("concurrent snapshot diverged:\n got %+v\nwant %+v", got, want)
	}
	merged := parts[0].Snapshot()
	for g := 1; g < goroutines; g++ {
		merged = merged.Merge(parts[g].Snapshot())
	}
	if merged != want {
		t.Errorf("merged snapshot diverged:\n got %+v\nwant %+v", merged, want)
	}
}

// TestZeroAllocRecord pins that recording into an armed histogram is
// allocation-free — the contract that lets the query path record latencies
// unconditionally.
func TestZeroAllocRecord(t *testing.T) {
	var h Histogram
	v := int64(12345)
	if allocs := testing.AllocsPerRun(100, func() {
		h.Record(v)
		v = v*31 + 7
	}); allocs != 0 {
		t.Errorf("Record allocated %.1f times per run, want 0", allocs)
	}
}

// TestWriteProm checks the Prometheus rendering: cumulative le buckets, a
// closing +Inf bucket, and sum/count series, with and without labels.
func TestWriteProm(t *testing.T) {
	var h Histogram
	h.Record(0)
	h.Record(3)
	h.Record(3)
	var b strings.Builder
	h.Snapshot().WriteProm(&b, "x_seconds", `shard="1"`)
	out := b.String()
	for _, want := range []string{
		"x_seconds_bucket{shard=\"1\",le=\"0\"} 1\n",
		"x_seconds_bucket{shard=\"1\",le=\"4e-09\"} 3\n",
		"x_seconds_bucket{shard=\"1\",le=\"+Inf\"} 3\n",
		"x_seconds_sum{shard=\"1\"} 6e-09\n",
		"x_seconds_count{shard=\"1\"} 3\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	b.Reset()
	h.Snapshot().WriteProm(&b, "y", "")
	if !strings.Contains(b.String(), "y_bucket{le=\"0\"} 1\n") || !strings.Contains(b.String(), "y_count 3\n") {
		t.Errorf("unlabeled rendering wrong:\n%s", b.String())
	}
}
