// Package obs provides the observability primitives threaded through the
// engine: lock-free log-bucketed latency histograms whose recording path is
// allocation-free and contention-striped, snapshot/merge/quantile logic for
// surfacing them through Stats at any shard count, and a hand-rolled
// Prometheus text renderer for the serving layer's /metrics endpoint.
package obs

import (
	"fmt"
	"io"
	"math/bits"
	"sync/atomic"
	"time"
)

// NumBuckets is the number of power-of-two histogram buckets. Bucket 0
// holds exactly the value 0; bucket b >= 1 holds values in [2^(b-1), 2^b).
// 64 buckets cover the full non-negative int64 range, so a nanosecond
// histogram spans 1ns..292y with factor-of-two resolution.
const NumBuckets = 64

// numStripes spreads concurrent recorders over independent counter sets so
// the hot path is one uncontended atomic add in the common case. Must be a
// power of two.
const numStripes = 8

// stripe is one recorder's worth of counters, padded to its own cache
// lines so stripes never false-share.
type stripe struct {
	buckets [NumBuckets]atomic.Int64
	count   atomic.Int64
	sum     atomic.Int64
	max     atomic.Int64
	_       [64]byte
}

// Histogram is a lock-free log-bucketed histogram of non-negative int64
// samples (by convention nanoseconds). The zero value is ready to use;
// Record never allocates and never takes a lock, so it is safe on the
// steady-state query path. Concurrent recorders are spread over stripes by
// hashing the sample value (timings are almost never bit-equal, so
// concurrent records rarely share a cache line); Snapshot merges the
// stripes on read.
type Histogram struct {
	stripes [numStripes]stripe
}

// Record adds one sample. Negative samples are clamped to 0.
func (h *Histogram) Record(v int64) {
	if v < 0 {
		v = 0
	}
	// Fibonacci multiplicative hash of the value picks the stripe.
	s := &h.stripes[(uint64(v)*0x9E3779B97F4A7C15)>>(64-3)]
	s.buckets[bits.Len64(uint64(v))&(NumBuckets-1)].Add(1)
	s.count.Add(1)
	s.sum.Add(v)
	for {
		cur := s.max.Load()
		if v <= cur || s.max.CompareAndSwap(cur, v) {
			break
		}
	}
}

// RecordSince records the elapsed time since t0 in nanoseconds.
func (h *Histogram) RecordSince(t0 time.Time) { h.Record(int64(time.Since(t0))) }

// Snapshot merges the stripes into an immutable summary with quantiles
// computed. It is wait-free with respect to recorders; a snapshot taken
// concurrently with records may tear by a sample or two (count/sum/bucket
// reads are independent atomics), which is fine for monitoring reads.
func (h *Histogram) Snapshot() HistStats {
	var st HistStats
	for i := range h.stripes {
		s := &h.stripes[i]
		for b := range s.buckets {
			st.Buckets[b] += s.buckets[b].Load()
		}
		st.Count += s.count.Load()
		st.Sum += time.Duration(s.sum.Load())
		if m := time.Duration(s.max.Load()); m > st.Max {
			st.Max = m
		}
	}
	st.finalize()
	return st
}

// HistStats is a merged, quantile-annotated histogram snapshot: the form
// histograms take inside Stats, over the wire, and across shard merges.
// P50/P95/P99 are upper bounds of the bucket containing the quantile, so
// they carry the histogram's factor-of-two resolution.
type HistStats struct {
	Count   int64             `json:"count"`
	Sum     time.Duration     `json:"sum"`
	Max     time.Duration     `json:"max"`
	P50     time.Duration     `json:"p50"`
	P95     time.Duration     `json:"p95"`
	P99     time.Duration     `json:"p99"`
	Buckets [NumBuckets]int64 `json:"buckets"`
}

// Merge combines two snapshots (e.g. the same histogram from two shards)
// and recomputes the quantiles over the combined distribution.
func (s HistStats) Merge(o HistStats) HistStats {
	for b := range s.Buckets {
		s.Buckets[b] += o.Buckets[b]
	}
	s.Count += o.Count
	s.Sum += o.Sum
	if o.Max > s.Max {
		s.Max = o.Max
	}
	s.finalize()
	return s
}

// finalize recomputes P50/P95/P99 from the bucket counts.
func (s *HistStats) finalize() {
	s.P50 = s.quantile(0.50)
	s.P95 = s.quantile(0.95)
	s.P99 = s.quantile(0.99)
}

// quantile returns the upper bound of the bucket holding the q-quantile
// sample (0 when the histogram is empty).
func (s *HistStats) quantile(q float64) time.Duration {
	if s.Count == 0 {
		return 0
	}
	rank := int64(q*float64(s.Count-1)) + 1 // 1-based rank of the quantile sample
	var cum int64
	for b, n := range s.Buckets {
		cum += n
		if cum >= rank {
			return BucketUpper(b)
		}
	}
	return s.Max
}

// BucketUpper returns the exclusive upper bound of bucket b as a duration
// (bucket 0 holds exactly 0, reported as 0).
func BucketUpper(b int) time.Duration {
	if b == 0 {
		return 0
	}
	if b >= 63 {
		return time.Duration(1<<63 - 1) // saturate instead of overflowing
	}
	return time.Duration(int64(1) << b)
}

// WriteProm renders the snapshot as a Prometheus histogram in text
// exposition format: cumulative _bucket series with `le` upper bounds in
// seconds, then _sum and _count. Empty trailing buckets are elided (the
// +Inf bucket always closes the series). labels is either empty or a
// rendered label set without braces, e.g. `shard="0"`.
func (s HistStats) WriteProm(w io.Writer, name, labels string) {
	sep := ""
	if labels != "" {
		sep = ","
	}
	var cum int64
	top := 0
	for b, n := range s.Buckets {
		if n > 0 {
			top = b
		}
	}
	for b := 0; b <= top; b++ {
		cum += s.Buckets[b]
		fmt.Fprintf(w, "%s_bucket{%s%sle=\"%g\"} %d\n", name, labels, sep, BucketUpper(b).Seconds(), cum)
	}
	fmt.Fprintf(w, "%s_bucket{%s%sle=\"+Inf\"} %d\n", name, labels, sep, s.Count)
	if labels != "" {
		labels = "{" + labels + "}"
	}
	fmt.Fprintf(w, "%s_sum%s %g\n", name, labels, s.Sum.Seconds())
	fmt.Fprintf(w, "%s_count%s %d\n", name, labels, s.Count)
}
