package enc

import (
	"math"
	"testing"
)

func TestRoundTrip(t *testing.T) {
	w := NewWriter()
	w.Uvarint(0)
	w.Uvarint(1<<63 + 7)
	w.Varint(-12345)
	w.U8(0xAB)
	w.Bool(true)
	w.Bool(false)
	w.U32(0xDEADBEEF)
	w.U64(1<<62 + 3)
	w.F64(math.Pi)
	w.String("")
	w.String("héllo")
	w.U16s([]uint16{1, 0xFFFF})
	w.U32s(nil)
	w.U32s([]uint32{42})
	w.U64s([]uint64{9, 1 << 60})
	w.I64s([]int64{-1, 7})
	w.F64s([]float64{-0.5, math.Inf(1)})

	r := NewReader(w.Bytes())
	check := func(name string, got, want any) {
		t.Helper()
		if r.Err() != nil {
			t.Fatalf("%s: unexpected error %v", name, r.Err())
		}
		if gotS, ok := got.([]uint32); ok {
			wantS := want.([]uint32)
			if len(gotS) != len(wantS) {
				t.Fatalf("%s: got %v want %v", name, got, want)
			}
			for i := range gotS {
				if gotS[i] != wantS[i] {
					t.Fatalf("%s: got %v want %v", name, got, want)
				}
			}
			return
		}
	}
	if v := r.Uvarint(); v != 0 {
		t.Fatalf("uvarint: %d", v)
	}
	if v := r.Uvarint(); v != 1<<63+7 {
		t.Fatalf("uvarint: %d", v)
	}
	if v := r.Varint(); v != -12345 {
		t.Fatalf("varint: %d", v)
	}
	if v := r.U8(); v != 0xAB {
		t.Fatalf("u8: %x", v)
	}
	if !r.Bool() || r.Bool() {
		t.Fatal("bool roundtrip")
	}
	if v := r.U32(); v != 0xDEADBEEF {
		t.Fatalf("u32: %x", v)
	}
	if v := r.U64(); v != 1<<62+3 {
		t.Fatalf("u64: %d", v)
	}
	if v := r.F64(); v != math.Pi {
		t.Fatalf("f64: %v", v)
	}
	if v := r.String(); v != "" {
		t.Fatalf("string: %q", v)
	}
	if v := r.String(); v != "héllo" {
		t.Fatalf("string: %q", v)
	}
	if v := r.U16s(); len(v) != 2 || v[0] != 1 || v[1] != 0xFFFF {
		t.Fatalf("u16s: %v", v)
	}
	if v := r.U32s(); v != nil {
		t.Fatalf("empty u32s: %v", v)
	}
	check("u32s", r.U32s(), []uint32{42})
	if v := r.U64s(); len(v) != 2 || v[1] != 1<<60 {
		t.Fatalf("u64s: %v", v)
	}
	if v := r.I64s(); len(v) != 2 || v[0] != -1 || v[1] != 7 {
		t.Fatalf("i64s: %v", v)
	}
	if v := r.F64s(); len(v) != 2 || v[0] != -0.5 || !math.IsInf(v[1], 1) {
		t.Fatalf("f64s: %v", v)
	}
	if r.Err() != nil {
		t.Fatalf("err: %v", r.Err())
	}
	if r.Rest() != 0 {
		t.Fatalf("rest: %d", r.Rest())
	}
}

func TestReaderTruncation(t *testing.T) {
	w := NewWriter()
	w.U64s([]uint64{1, 2, 3})
	full := w.Bytes()
	for cut := 0; cut < len(full); cut++ {
		r := NewReader(full[:cut])
		_ = r.U64s()
		if r.Err() == nil {
			t.Fatalf("truncation at %d/%d not detected", cut, len(full))
		}
		// Latched error: every later read stays zero and err is stable.
		if v := r.U32(); v != 0 {
			t.Fatalf("read after error returned %d", v)
		}
	}
}

func TestReaderBogusLength(t *testing.T) {
	// A corrupt huge count must fail cleanly rather than allocate.
	w := NewWriter()
	w.Uvarint(1 << 40)
	r := NewReader(w.Bytes())
	if v := r.U64s(); v != nil || r.Err() == nil {
		t.Fatalf("bogus length accepted: %v, err %v", v, r.Err())
	}
}
