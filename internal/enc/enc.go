// Package enc is the byte-level codec shared by the durability subsystem:
// write-ahead-log record payloads and checkpoint images of the storage and
// index layers are all encoded with the same little-endian primitives.
//
// The format is deliberately simple — unsigned varints for counts and small
// scalars, fixed-width little-endian words for bulk arrays — so that decode
// cost is dominated by the single copy out of the file buffer. Framing,
// checksums, and versioning live one layer up (internal/wal); this package
// only turns typed values into bytes and back.
//
// A Reader is fail-soft: the first malformed read latches an error, every
// subsequent read returns zero values, and the caller checks Err once at the
// end instead of after every field.
package enc

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Writer accumulates an encoded byte stream.
type Writer struct {
	buf []byte
}

// NewWriter returns an empty writer.
func NewWriter() *Writer { return &Writer{} }

// Bytes returns the encoded stream. The slice aliases the writer's buffer.
func (w *Writer) Bytes() []byte { return w.buf }

// Len returns the number of bytes written so far.
func (w *Writer) Len() int { return len(w.buf) }

// Uvarint appends an unsigned varint.
func (w *Writer) Uvarint(v uint64) {
	w.buf = binary.AppendUvarint(w.buf, v)
}

// Varint appends a signed varint (zigzag encoded).
func (w *Writer) Varint(v int64) {
	w.buf = binary.AppendVarint(w.buf, v)
}

// U8 appends one byte.
func (w *Writer) U8(v uint8) { w.buf = append(w.buf, v) }

// Bool appends a boolean as one byte.
func (w *Writer) Bool(v bool) {
	if v {
		w.U8(1)
	} else {
		w.U8(0)
	}
}

// U32 appends a fixed-width little-endian uint32.
func (w *Writer) U32(v uint32) {
	w.buf = binary.LittleEndian.AppendUint32(w.buf, v)
}

// U64 appends a fixed-width little-endian uint64.
func (w *Writer) U64(v uint64) {
	w.buf = binary.LittleEndian.AppendUint64(w.buf, v)
}

// F64 appends a float64 by its IEEE-754 bits.
func (w *Writer) F64(v float64) { w.U64(math.Float64bits(v)) }

// String appends a length-prefixed string.
func (w *Writer) String(s string) {
	w.Uvarint(uint64(len(s)))
	w.buf = append(w.buf, s...)
}

// U16s appends a length-prefixed []uint16 as fixed-width words.
func (w *Writer) U16s(vs []uint16) {
	w.Uvarint(uint64(len(vs)))
	for _, v := range vs {
		w.buf = binary.LittleEndian.AppendUint16(w.buf, v)
	}
}

// U32s appends a length-prefixed []uint32 as fixed-width words.
func (w *Writer) U32s(vs []uint32) {
	w.Uvarint(uint64(len(vs)))
	for _, v := range vs {
		w.buf = binary.LittleEndian.AppendUint32(w.buf, v)
	}
}

// U64s appends a length-prefixed []uint64 as fixed-width words.
func (w *Writer) U64s(vs []uint64) {
	w.Uvarint(uint64(len(vs)))
	for _, v := range vs {
		w.buf = binary.LittleEndian.AppendUint64(w.buf, v)
	}
}

// I64s appends a length-prefixed []int64 as fixed-width words.
func (w *Writer) I64s(vs []int64) {
	w.Uvarint(uint64(len(vs)))
	for _, v := range vs {
		w.buf = binary.LittleEndian.AppendUint64(w.buf, uint64(v))
	}
}

// F64s appends a length-prefixed []float64 as IEEE-754 words.
func (w *Writer) F64s(vs []float64) {
	w.Uvarint(uint64(len(vs)))
	for _, v := range vs {
		w.buf = binary.LittleEndian.AppendUint64(w.buf, math.Float64bits(v))
	}
}

// Reader decodes a byte stream produced by Writer. The first malformed read
// latches an error; all later reads return zero values.
type Reader struct {
	buf []byte
	pos int
	err error
}

// NewReader returns a reader over buf. The reader does not copy buf.
func NewReader(buf []byte) *Reader { return &Reader{buf: buf} }

// Err returns the first decoding error, or nil.
func (r *Reader) Err() error { return r.err }

// Rest returns the number of unread bytes.
func (r *Reader) Rest() int { return len(r.buf) - r.pos }

func (r *Reader) fail(what string) {
	if r.err == nil {
		r.err = fmt.Errorf("enc: truncated or malformed input reading %s at offset %d", what, r.pos)
	}
}

// take returns the next n bytes, or nil after latching an error.
func (r *Reader) take(n int, what string) []byte {
	if r.err != nil || n < 0 || r.pos+n > len(r.buf) {
		r.fail(what)
		return nil
	}
	b := r.buf[r.pos : r.pos+n]
	r.pos += n
	return b
}

// Uvarint reads an unsigned varint.
func (r *Reader) Uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.buf[r.pos:])
	if n <= 0 {
		r.fail("uvarint")
		return 0
	}
	r.pos += n
	return v
}

// Varint reads a signed varint.
func (r *Reader) Varint() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.buf[r.pos:])
	if n <= 0 {
		r.fail("varint")
		return 0
	}
	r.pos += n
	return v
}

// Len reads a count and validates it against the remaining input, assuming
// each element costs at least minBytes bytes — a cheap guard against
// corrupt counts provoking huge allocations.
func (r *Reader) Len(minBytes int) int {
	n := r.Uvarint()
	if r.err != nil {
		return 0
	}
	if minBytes > 0 && n > uint64(r.Rest()/minBytes) {
		r.fail("length")
		return 0
	}
	return int(n)
}

// U8 reads one byte.
func (r *Reader) U8() uint8 {
	b := r.take(1, "u8")
	if b == nil {
		return 0
	}
	return b[0]
}

// Bool reads a boolean.
func (r *Reader) Bool() bool { return r.U8() != 0 }

// U32 reads a fixed-width uint32.
func (r *Reader) U32() uint32 {
	b := r.take(4, "u32")
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

// U64 reads a fixed-width uint64.
func (r *Reader) U64() uint64 {
	b := r.take(8, "u64")
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

// F64 reads a float64.
func (r *Reader) F64() float64 { return math.Float64frombits(r.U64()) }

// String reads a length-prefixed string.
func (r *Reader) String() string {
	n := r.Len(1)
	b := r.take(n, "string")
	if b == nil {
		return ""
	}
	return string(b)
}

// U16s reads a length-prefixed []uint16 (nil when empty).
func (r *Reader) U16s() []uint16 {
	n := r.Len(2)
	if n == 0 || r.err != nil {
		return nil
	}
	b := r.take(2*n, "u16s")
	if b == nil {
		return nil
	}
	vs := make([]uint16, n)
	for i := range vs {
		vs[i] = binary.LittleEndian.Uint16(b[2*i:])
	}
	return vs
}

// U32s reads a length-prefixed []uint32 (nil when empty).
func (r *Reader) U32s() []uint32 {
	n := r.Len(4)
	if n == 0 || r.err != nil {
		return nil
	}
	b := r.take(4*n, "u32s")
	if b == nil {
		return nil
	}
	vs := make([]uint32, n)
	for i := range vs {
		vs[i] = binary.LittleEndian.Uint32(b[4*i:])
	}
	return vs
}

// U64s reads a length-prefixed []uint64 (nil when empty).
func (r *Reader) U64s() []uint64 {
	n := r.Len(8)
	if n == 0 || r.err != nil {
		return nil
	}
	b := r.take(8*n, "u64s")
	if b == nil {
		return nil
	}
	vs := make([]uint64, n)
	for i := range vs {
		vs[i] = binary.LittleEndian.Uint64(b[8*i:])
	}
	return vs
}

// I64s reads a length-prefixed []int64 (nil when empty).
func (r *Reader) I64s() []int64 {
	n := r.Len(8)
	if n == 0 || r.err != nil {
		return nil
	}
	b := r.take(8*n, "i64s")
	if b == nil {
		return nil
	}
	vs := make([]int64, n)
	for i := range vs {
		vs[i] = int64(binary.LittleEndian.Uint64(b[8*i:]))
	}
	return vs
}

// F64s reads a length-prefixed []float64 (nil when empty).
func (r *Reader) F64s() []float64 {
	n := r.Len(8)
	if n == 0 || r.err != nil {
		return nil
	}
	b := r.take(8*n, "f64s")
	if b == nil {
		return nil
	}
	vs := make([]float64, n)
	for i := range vs {
		vs[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[8*i:]))
	}
	return vs
}
