package harness

import (
	"fmt"
	"time"

	"github.com/aplusdb/aplus/internal/gen"
	"github.com/aplusdb/aplus/internal/index"
	"github.com/aplusdb/aplus/internal/opt"
	"github.com/aplusdb/aplus/internal/workload"
)

// Table1 prints the dataset statistics (paper Table I, scaled).
func Table1(o Options) []Row {
	w := o.out()
	header(w, "Table I: datasets (scaled)")
	fmt.Fprintf(w, "%-8s %12s %12s %12s\n", "Name", "#Vertices", "#Edges", "Avg.degree")
	var rows []Row
	for _, cfg := range []gen.Config{gen.Orkut, gen.LiveJournal, gen.WikiTopcats, gen.BerkStan} {
		g := gen.Build(scaled(cfg, o.scale()))
		fmt.Fprintf(w, "%-8s %12d %12d %12.2f\n", cfg.Name, g.NumVertices(), g.NumLiveEdges(), g.AvgDegree())
		rows = append(rows, Row{
			Table: "table1", Dataset: cfg.Name,
			Count: int64(g.NumLiveEdges()),
		})
	}
	return rows
}

// Table2 reproduces the primary-reconfiguration experiment (paper Table
// II): SQ1–SQ13 under D, Ds and Dp on the labelled datasets.
func Table2(o Options) []Row {
	w := o.out()
	header(w, "Table II: primary A+ index reconfiguration (D / Ds / Dp)")
	datasets := []struct {
		cfg    gen.Config
		vl, el int
	}{
		{gen.Orkut, 8, 2},
		{gen.LiveJournal, 2, 4},
		{gen.WikiTopcats, 4, 2},
	}
	configs := []struct {
		name string
		cfg  index.Config
	}{
		{"D", ConfigD()},
		{"Ds", ConfigDs()},
		{"Dp", ConfigDp()},
	}
	var rows []Row
	for _, ds := range datasets {
		g := gen.Build(scaled(ds.cfg.WithLabels(ds.vl, ds.el), o.scale()))
		queries := workload.SQ(ds.vl, ds.el)
		counts := map[string]map[string]int64{}
		s := buildStore(g, ConfigD())
		var baselines map[string]Row
		for _, c := range configs {
			startIR := time.Now()
			if err := s.Reconfigure(c.cfg); err != nil {
				panic(err)
			}
			ir := time.Since(startIR).Seconds()
			counts[c.name] = map[string]int64{}
			for _, q := range queries {
				secs, n, icost, err := measure(s, opt.ModeDefault, q, o.Workers)
				if err != nil {
					panic(err)
				}
				counts[c.name][q.Name] = n
				r := Row{
					Table: "table2", Dataset: ds.cfg.Name + dsSuffix(ds.vl, ds.el),
					Config: c.name, Query: q.Name,
					Seconds: secs, Count: n, ICost: icost,
					MemMB: memMB(s), Setup: ir,
				}
				r = o.withHist(r, s, opt.ModeDefault, q, o.Workers)
				rows = append(rows, r)
				var base *Row
				if c.name != "D" {
					b := baselines[q.Name]
					base = &b
				} else {
					if baselines == nil {
						baselines = map[string]Row{}
					}
					baselines[q.Name] = r
				}
				printRow(w, r, base)
			}
			fmt.Fprintf(w, "    [%s %s] Mm=%.1fMB IR=%.3fs\n", ds.cfg.Name, c.name, memMB(s), ir)
		}
		if o.Verify {
			verifyCounts("table2", counts)
		}
	}
	return rows
}

func dsSuffix(vl, el int) string {
	if vl <= 1 && el <= 1 {
		return ""
	}
	return fmt.Sprintf("%d,%d", vl, el)
}

// Table3 reproduces the MagicRecs experiment (paper Table III): MR1–MR3
// under D and D+VPt, where VPt shares the primary's partition levels and
// sorts on the edges' time property.
func Table3(o Options) []Row {
	w := o.out()
	header(w, "Table III: MagicRecs with secondary vertex-partitioned index (D / D+VPt)")
	var rows []Row
	for _, cfg := range []gen.Config{gen.Orkut, gen.LiveJournal, gen.WikiTopcats} {
		c := scaled(cfg, o.scale())
		c.Time = true
		g := gen.Build(c)
		alpha, ok := gen.PercentileInt(g, "time", 5) // 5% selectivity as in the paper
		if !ok {
			panic("no time property")
		}
		queries := workload.MR(alpha, int64(g.NumVertices()/4))
		s := buildStore(g, ConfigD())
		counts := map[string]map[string]int64{"D": {}, "D+VPt": {}}
		var baselines = map[string]Row{}
		memD := memMB(s)
		for _, q := range queries {
			secs, n, icost, err := measure(s, opt.ModeDefault, q, o.Workers)
			if err != nil {
				panic(err)
			}
			counts["D"][q.Name] = n
			r := Row{Table: "table3", Dataset: cfg.Name, Config: "D", Query: q.Name,
				Seconds: secs, Count: n, ICost: icost, MemMB: memD}
			r = o.withHist(r, s, opt.ModeDefault, q, o.Workers)
			rows = append(rows, r)
			baselines[q.Name] = r
			printRow(w, r, nil)
		}
		startIC := time.Now()
		if _, err := s.CreateVertexPartitioned(VPtDef()); err != nil {
			panic(err)
		}
		ic := time.Since(startIC).Seconds()
		for _, q := range queries {
			secs, n, icost, err := measure(s, opt.ModeDefault, q, o.Workers)
			if err != nil {
				panic(err)
			}
			counts["D+VPt"][q.Name] = n
			r := Row{Table: "table3", Dataset: cfg.Name, Config: "D+VPt", Query: q.Name,
				Seconds: secs, Count: n, ICost: icost, MemMB: memMB(s), Setup: ic}
			r = o.withHist(r, s, opt.ModeDefault, q, o.Workers)
			rows = append(rows, r)
			b := baselines[q.Name]
			printRow(w, r, &b)
		}
		fmt.Fprintf(w, "    [%s] Mm: D=%.1fMB D+VPt=%.1fMB (%.2fx) IC=%.3fs\n",
			cfg.Name, memD, memMB(s), memMB(s)/memD, ic)
		if o.Verify {
			verifyCounts("table3", counts)
		}
	}
	return rows
}

// Table4 reproduces the fraud-detection experiment (paper Table IV):
// MF1–MF5 under D, D+VPc and D+VPc+EPc.
func Table4(o Options) []Row {
	w := o.out()
	header(w, "Table IV: fraud detection (D / D+VPc / D+VPc+EPc)")
	const alpha = 100 // ~5% Pf band on amounts in [1,1000] after date ordering
	var rows []Row
	for _, cfg := range []gen.Config{gen.Orkut, gen.LiveJournal, gen.WikiTopcats} {
		c := scaled(cfg, o.scale())
		c.Financial = true
		g := gen.Build(c)
		params := workload.MFParams{
			Alpha:   alpha,
			City:    "C7",
			A3MaxID: int64(g.NumVertices() / 20),
			A1MaxID: int64(g.NumVertices() / 20),
		}
		queries := workload.MF(params)
		s := buildStore(g, ConfigD())
		counts := map[string]map[string]int64{}
		baselines := map[string]Row{}

		runAll := func(name string, ic float64) {
			counts[name] = map[string]int64{}
			st := s.Stats()
			for _, q := range queries {
				secs, n, icost, err := measure(s, opt.ModeDefault, q, o.Workers)
				if err != nil {
					panic(err)
				}
				counts[name][q.Name] = n
				r := Row{Table: "table4", Dataset: cfg.Name, Config: name, Query: q.Name,
					Seconds: secs, Count: n, ICost: icost, MemMB: memMB(s), Setup: ic,
					IndexedEdges: st.IndexedEdges}
				r = o.withHist(r, s, opt.ModeDefault, q, o.Workers)
				rows = append(rows, r)
				if name == "D" {
					baselines[q.Name] = r
					printRow(w, r, nil)
				} else {
					b := baselines[q.Name]
					printRow(w, r, &b)
				}
			}
			fmt.Fprintf(w, "    [%s %s] Mem=%.1fMB |Eindexed|=%d IC=%.3fs\n",
				cfg.Name, name, memMB(s), st.IndexedEdges, ic)
		}

		runAll("D", 0)
		start := time.Now()
		if _, err := s.CreateVertexPartitioned(VPcDef()); err != nil {
			panic(err)
		}
		runAll("D+VPc", time.Since(start).Seconds())
		start = time.Now()
		if _, err := s.CreateEdgePartitioned(EPcDef(alpha)); err != nil {
			panic(err)
		}
		runAll("D+VPc+EPc", time.Since(start).Seconds())
		if o.Verify {
			verifyCounts("table4", counts)
		}
	}
	return rows
}

// Table5 reproduces the baseline comparison (paper Table V): SQ1, SQ2, SQ3
// and SQ13 under GraphflowDB's D and Dp configurations versus fixed-index
// binary-join baselines standing in for TigerGraph (sorted lists) and
// Neo4j (insertion-ordered linked lists).
func Table5(o Options) []Row {
	w := o.out()
	header(w, "Table V: comparison against fixed-index binary-join baselines")
	datasets := []struct {
		cfg    gen.Config
		vl, el int
	}{
		{gen.LiveJournal, 12, 2},
		{gen.WikiTopcats, 4, 2},
	}
	type sys struct {
		name string
		cfg  index.Config
		mode opt.Mode
	}
	systems := []sys{
		{"D", ConfigD(), opt.ModeDefault},
		{"Dp", ConfigDp(), opt.ModeDefault},
		{"TG", ConfigD(), opt.ModeBinaryJoin},
		{"N4", ConfigUnsorted(), opt.ModeBinaryJoin},
	}
	// The paper compares SQ1, SQ2, SQ3 and SQ13 against Neo4j and
	// TigerGraph, which are entirely different systems; our baselines are
	// plan-space restrictions of the same engine, so the gap materializes
	// on cyclic queries where WCOJ intersections matter. SQ8 (triangle) is
	// added to surface that difference (see EXPERIMENTS.md).
	pick := map[string]bool{"SQ1": true, "SQ2": true, "SQ3": true, "SQ8": true, "SQ13": true}
	var rows []Row
	for _, ds := range datasets {
		g := gen.Build(scaled(ds.cfg.WithLabels(ds.vl, ds.el), o.scale()))
		counts := map[string]map[string]int64{}
		baselines := map[string]Row{}
		for _, system := range systems {
			s := buildStore(g, system.cfg)
			counts[system.name] = map[string]int64{}
			for _, q := range workload.SQ(ds.vl, ds.el) {
				if !pick[q.Name] {
					continue
				}
				secs, n, icost, err := measure(s, system.mode, q, o.Workers)
				if err != nil {
					panic(err)
				}
				counts[system.name][q.Name] = n
				r := Row{Table: "table5", Dataset: ds.cfg.Name + dsSuffix(ds.vl, ds.el),
					Config: system.name, Query: q.Name, Seconds: secs, Count: n, ICost: icost}
				r = o.withHist(r, s, system.mode, q, o.Workers)
				rows = append(rows, r)
				if system.name == "D" {
					baselines[q.Name] = r
					printRow(w, r, nil)
				} else {
					b := baselines[q.Name]
					printRow(w, r, &b)
				}
			}
		}
		if o.Verify {
			verifyCounts("table5", counts)
		}
	}
	return rows
}
