package harness

import (
	"fmt"
	"time"

	"github.com/aplusdb/aplus/internal/exec"
	"github.com/aplusdb/aplus/internal/gen"
	"github.com/aplusdb/aplus/internal/index"
	"github.com/aplusdb/aplus/internal/opt"
	"github.com/aplusdb/aplus/internal/query"
	"github.com/aplusdb/aplus/internal/workload"
)

// hubMorselSize is the root morsel size for the hub-skew ablation: small
// enough that the root scan yields more morsels than workers, so the only
// imbalance left is the super-hub's adjacency list itself — exactly what
// pipeline-deep stealing re-partitions.
const hubMorselSize = 256

// HubSkew is the work-stealing ablation: a Zipfian background graph plus
// one deliberate super-hub (vertex 0 with tens of thousands of out-edges)
// under a 3-hop path count. Root-scan morsel partitioning alone strands
// the hub's fan-out on whichever worker draws its morsel; pipeline-deep
// stealing re-partitions the oversized adjacency list across the pool.
// Three configurations run: serial ("1w"), parallel with stealing disabled
// ("Nw-nosteal"), and parallel with stealing ("Nw"). Counts and i-cost
// must agree bit-identically across all three (hard-gated here and by the
// stored baseline); the speedups are the advisory measurement.
func HubSkew(o Options) []Row {
	w := o.out()
	header(w, "Hub skew: pipeline-deep work stealing on a super-hub fan-out")
	workers := o.Workers
	if workers <= 1 {
		workers = 8
	}
	// A 2-hop path puts the super-hub's fan-out exactly at the plan's first
	// EXTEND (the steal point) with the trailing hop folded; the background
	// graph is kept sparse so the hub's morsel holds the overwhelming share
	// of the serial i-cost — the worst case for root-only partitioning.
	cfg := gen.Config{Name: "Hub", NumVertices: 4000, AvgDegree: 2, HubDegree: 200000, Seed: 7}
	cfg = scaled(cfg, o.scale())
	cfg.HubDegree = int(float64(cfg.HubDegree) * o.scale())
	if min := 4 * hubMorselSize; cfg.HubDegree < min {
		cfg.HubDegree = min
	}
	g := gen.Build(cfg)
	s := buildStore(g, ConfigD())
	q := workload.Query{Name: "HUB2", Cypher: "MATCH a1-[e1]->a2-[e2]->a3"}

	runs := []struct {
		name string
		opts exec.ParallelOptions
	}{
		{"1w", exec.ParallelOptions{Workers: 1, MorselSize: hubMorselSize}},
		{fmt.Sprintf("%dw-nosteal", workers), exec.ParallelOptions{Workers: workers, MorselSize: hubMorselSize, DisableSteal: true}},
		{fmt.Sprintf("%dw", workers), exec.ParallelOptions{Workers: workers, MorselSize: hubMorselSize}},
	}
	var rows []Row
	counts := map[string]map[string]int64{}
	var base Row
	for i, rc := range runs {
		secs, n, icost, err := measureOpts(s, q, rc.opts)
		if err != nil {
			panic(err)
		}
		counts[rc.name] = map[string]int64{q.Name: n}
		r := Row{
			Table: "hubskew", Dataset: cfg.Name, Config: rc.name, Query: q.Name,
			Seconds: secs, Count: n, ICost: icost,
		}
		rows = append(rows, r)
		if i == 0 {
			base = r
			printRow(w, r, nil)
		} else {
			printRow(w, r, &base)
		}
	}
	if o.Verify {
		verifyCounts("hubskew", counts)
		verifyICosts(rows)
	}
	return rows
}

// measureOpts is measure with full control of the parallel options (morsel
// size, steal toggle); Workers <= 1 takes the pool's serial fallback.
func measureOpts(s *index.Store, q workload.Query, opts exec.ParallelOptions) (float64, int64, int64, error) {
	qg, err := query.Parse(q.Cypher)
	if err != nil {
		return 0, 0, 0, fmt.Errorf("%s: %w", q.Name, err)
	}
	plan, err := opt.Optimize(s, qg, opt.ModeDefault)
	if err != nil {
		return 0, 0, 0, fmt.Errorf("%s: %w", q.Name, err)
	}
	rt := exec.NewRuntime(s)
	start := time.Now()
	n, err := plan.CountParallel(rt, opts)
	if err != nil {
		return 0, 0, 0, fmt.Errorf("%s: %w", q.Name, err)
	}
	return time.Since(start).Seconds(), n, rt.ICost, nil
}
