package harness

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/aplusdb/aplus/internal/exec"
	"github.com/aplusdb/aplus/internal/gen"
	"github.com/aplusdb/aplus/internal/opt"
	"github.com/aplusdb/aplus/internal/query"
	"github.com/aplusdb/aplus/internal/snap"
	"github.com/aplusdb/aplus/internal/storage"
	"github.com/aplusdb/aplus/internal/workload"
)

// Mixed measures the snapshot-isolated engine under a concurrent
// read/write workload. Two phases on one dataset:
//
//   - readonly: Readers goroutines each run Reads queries against pinned
//     snapshots, recording per-query latency;
//   - mixed: the same readers, plus MixedWriters goroutines committing
//     batches of MixedBatch ops (MixedWriteRatio of which are deletes of
//     edges a writer inserted earlier, the rest inserts) while the
//     background merger folds deltas.
//
// Reported rows carry read p50/p99 per phase (Seconds) and writer
// throughput; the printed summary includes the mixed/readonly p99 ratio —
// the snapshot design's acceptance bar is staying within 2x, since readers
// take no lock a writer could hold.
func Mixed(o Options) []Row {
	w := o.out()
	readers := o.MixedReaders
	if readers <= 0 {
		readers = 8
	}
	writers := o.MixedWriters
	if writers <= 0 {
		writers = 1
	}
	batch := o.MixedBatch
	if batch <= 0 {
		batch = 64
	}
	reads := o.MixedReads
	if reads <= 0 {
		reads = 200
	}
	ratio := o.MixedWriteRatio
	if ratio < 0 || ratio >= 1 {
		ratio = 0.2
	}
	header(w, fmt.Sprintf("Mixed workload: %d readers x %d reads, %d writer(s), batch %d, delete ratio %.2f",
		readers, reads, writers, batch, ratio))

	base := gen.LiveJournal
	g := gen.Build(scaled(base.WithLabels(2, 4), o.scale()))
	nv := g.NumVertices()
	m, err := snap.NewManager(g, ConfigD(), snap.Options{})
	if err != nil {
		panic(err)
	}
	q := pickQueries(workload.SQ(2, 4), "SQ2")[0]
	qg, err := query.Parse(q.Cypher)
	if err != nil {
		panic(err)
	}
	ds := base.Name + dsSuffix(2, 4)

	runReaders := func() [][]time.Duration {
		lat := make([][]time.Duration, readers)
		var wg sync.WaitGroup
		for r := 0; r < readers; r++ {
			wg.Add(1)
			go func(r int) {
				defer wg.Done()
				lat[r] = make([]time.Duration, 0, reads)
				for i := 0; i < reads; i++ {
					start := time.Now()
					s := m.Acquire()
					mode := opt.ModeDefault
					if !s.Delta().Empty() {
						mode.DisableSecondary = true
					}
					plan, err := opt.Optimize(s.Store(), qg, mode)
					if err != nil {
						s.Release()
						panic(err)
					}
					rt := exec.NewRuntimeOver(s.Store(), s.Graph(), s.Delta())
					plan.Count(rt)
					s.Release()
					lat[r] = append(lat[r], time.Since(start))
				}
			}(r)
		}
		wg.Wait()
		return lat
	}

	var rows []Row

	// Phase 1: read-only baseline.
	roStart := time.Now()
	roLat := flatten(runReaders())
	roElapsed := time.Since(roStart).Seconds()
	roP50, roP99 := percentiles(roLat)
	fmt.Fprintf(w, "%-8s readonly   %2dr      p50 %10v  p99 %10v  (%d reads in %.3fs)\n",
		ds, readers, roP50, roP99, len(roLat), roElapsed)
	rows = append(rows,
		Row{Table: "mixed", Dataset: ds, Config: fmt.Sprintf("readonly-%dr", readers), Query: "p50", Seconds: roP50.Seconds()},
		Row{Table: "mixed", Dataset: ds, Config: fmt.Sprintf("readonly-%dr", readers), Query: "p99", Seconds: roP99.Seconds()},
	)

	// Phase 2: same readers with writers committing concurrently.
	var stopWriters atomic.Bool
	var writeOps atomic.Int64
	var wwg sync.WaitGroup
	for wi := 0; wi < writers; wi++ {
		wwg.Add(1)
		go func(wi int) {
			defer wwg.Done()
			rng := rand.New(rand.NewSource(int64(1000 + wi)))
			var mine []storage.EdgeID
			for !stopWriters.Load() {
				b := m.Begin()
				n := 0
				for n < batch {
					if len(mine) > 0 && rng.Float64() < ratio {
						i := rng.Intn(len(mine))
						if err := b.DeleteEdge(mine[i]); err != nil {
							panic(err)
						}
						mine = append(mine[:i], mine[i+1:]...)
					} else {
						e, err := b.AddEdge(
							storage.VertexID(rng.Intn(nv)),
							storage.VertexID(rng.Intn(nv)),
							"E0", nil)
						if err != nil {
							panic(err)
						}
						mine = append(mine, e)
					}
					n++
				}
				if err := b.Commit(); err != nil {
					panic(err)
				}
				writeOps.Add(int64(n))
			}
		}(wi)
	}
	mixStart := time.Now()
	mixLat := flatten(runReaders())
	mixElapsed := time.Since(mixStart).Seconds()
	stopWriters.Store(true)
	wwg.Wait()
	if err := m.Merge(); err != nil {
		panic(err)
	}

	mixP50, mixP99 := percentiles(mixLat)
	ops := writeOps.Load()
	rate := float64(ops) / mixElapsed
	ratio99 := mixP99.Seconds() / roP99.Seconds()
	cfg := fmt.Sprintf("mixed-%dr%dw", readers, writers)
	fmt.Fprintf(w, "%-8s %s  p50 %10v  p99 %10v  (p99 ratio %.2fx vs readonly)\n",
		ds, cfg, mixP50, mixP99, ratio99)
	fmt.Fprintf(w, "%-8s writers    %d x batch %-5d %10d write ops in %.3fs -> %10.0f ops/s\n",
		ds, writers, batch, ops, mixElapsed, rate)
	st := m.Stats()
	fmt.Fprintf(w, "%-8s snapshots  epoch=%d retired=%d merges=%d pending=%d\n",
		ds, st.Epoch, st.RetiredEpochs, st.Merges, st.PendingOps)
	rows = append(rows,
		Row{Table: "mixed", Dataset: ds, Config: cfg, Query: "p50", Seconds: mixP50.Seconds()},
		Row{Table: "mixed", Dataset: ds, Config: cfg, Query: "p99", Seconds: mixP99.Seconds()},
		Row{Table: "mixed", Dataset: ds, Config: cfg, Query: "writes", Seconds: mixElapsed, Count: ops},
	)
	return rows
}

func flatten(lat [][]time.Duration) []time.Duration {
	var out []time.Duration
	for _, l := range lat {
		out = append(out, l...)
	}
	return out
}

func percentiles(lat []time.Duration) (p50, p99 time.Duration) {
	if len(lat) == 0 {
		return 0, 0
	}
	sorted := append([]time.Duration(nil), lat...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	at := func(q float64) time.Duration {
		i := int(q * float64(len(sorted)-1))
		return sorted[i]
	}
	return at(0.50), at(0.99)
}
