package harness

import (
	"strings"
	"testing"
)

// smallOpts runs experiments at reduced scale with verification on; the
// point of these tests is that every configuration agrees on result counts
// and the experiments complete.
func smallOpts() Options { return Options{Scale: 0.08, Verify: true} }

func configSet(rows []Row) map[string]bool {
	out := map[string]bool{}
	for _, r := range rows {
		out[r.Config] = true
	}
	return out
}

func TestTable1(t *testing.T) {
	rows := Table1(Options{Scale: 0.1})
	if len(rows) != 4 {
		t.Fatalf("rows = %d, want 4 datasets", len(rows))
	}
	for _, r := range rows {
		if r.Count <= 0 {
			t.Errorf("%s has no edges", r.Dataset)
		}
	}
}

func TestTable2SmallScale(t *testing.T) {
	rows := Table2(smallOpts())
	cfgs := configSet(rows)
	for _, want := range []string{"D", "Ds", "Dp"} {
		if !cfgs[want] {
			t.Errorf("missing config %s", want)
		}
	}
	// Dp must not shrink ID lists but may grow level memory slightly.
	var dMem, dpMem float64
	for _, r := range rows {
		if strings.HasPrefix(r.Dataset, "Ork") && r.Query == "SQ1" {
			switch r.Config {
			case "D":
				dMem = r.MemMB
			case "Dp":
				dpMem = r.MemMB
			}
		}
	}
	if dpMem < dMem {
		t.Errorf("Dp memory %.3f < D memory %.3f", dpMem, dMem)
	}
}

func TestTable3SmallScale(t *testing.T) {
	rows := Table3(smallOpts())
	// The time-sorted index must prune list accesses on the queries whose
	// cost the first extensions dominate (MR1, MR2). MR3's totals at this
	// tiny test scale are dominated by the closing intersections, whose
	// plan choice can differ between configs, so only the sum is bounded.
	icostD := map[string]int64{}
	icostVPt := map[string]int64{}
	for _, r := range rows {
		switch r.Config {
		case "D":
			icostD[r.Query] += r.ICost
		case "D+VPt":
			icostVPt[r.Query] += r.ICost
		}
	}
	for _, q := range []string{"MR1", "MR2"} {
		if icostVPt[q] > icostD[q] {
			t.Errorf("%s: D+VPt i-cost %d > D %d", q, icostVPt[q], icostD[q])
		}
	}
	var sumD, sumVPt int64
	for q := range icostD {
		sumD += icostD[q]
		sumVPt += icostVPt[q]
	}
	if float64(sumVPt) > 1.6*float64(sumD) {
		t.Errorf("D+VPt total i-cost %d far exceeds D %d", sumVPt, sumD)
	}
}

func TestTable4SmallScale(t *testing.T) {
	rows := Table4(smallOpts())
	var icostD, icostVPc int64
	for _, r := range rows {
		switch r.Config {
		case "D":
			icostD += r.ICost
		case "D+VPc":
			icostVPc += r.ICost
		}
	}
	if icostVPc > icostD {
		t.Errorf("D+VPc total i-cost %d > D %d", icostVPc, icostD)
	}
	// EPc must be reported with more indexed edges than the primary alone.
	sawEPc := false
	for _, r := range rows {
		if r.Config == "D+VPc+EPc" && r.IndexedEdges > 0 {
			sawEPc = true
		}
	}
	if !sawEPc {
		t.Error("EPc rows missing indexed-edge counts")
	}
}

func TestTable5SmallScale(t *testing.T) {
	rows := Table5(smallOpts())
	cfgs := configSet(rows)
	for _, want := range []string{"D", "Dp", "TG", "N4"} {
		if !cfgs[want] {
			t.Errorf("missing system %s", want)
		}
	}
}

func TestMaintenanceSmallScale(t *testing.T) {
	rows := Maintenance(Options{Scale: 0.05})
	if len(rows) != 10 { // 2 datasets x 5 configs
		t.Fatalf("rows = %d, want 10", len(rows))
	}
	for _, r := range rows {
		if r.Seconds <= 0 || r.Count <= 0 {
			t.Errorf("%s/%s: degenerate measurement", r.Dataset, r.Config)
		}
	}
}
