// Package harness regenerates the paper's evaluation artifacts: Tables
// I–V and the Section V-F maintenance micro-benchmark. Each experiment
// builds the scaled synthetic datasets, applies the paper's index
// configurations, runs the workload under every configuration, verifies
// that all configurations agree on the result counts, and prints rows in
// the shape of the paper's tables (runtime, speedup over D, memory,
// index-creation/reconfiguration time).
package harness

import (
	"fmt"
	"io"
	"time"

	"github.com/aplusdb/aplus/internal/exec"
	"github.com/aplusdb/aplus/internal/gen"
	"github.com/aplusdb/aplus/internal/index"
	"github.com/aplusdb/aplus/internal/obs"
	"github.com/aplusdb/aplus/internal/opt"
	"github.com/aplusdb/aplus/internal/pred"
	"github.com/aplusdb/aplus/internal/query"
	"github.com/aplusdb/aplus/internal/storage"
	"github.com/aplusdb/aplus/internal/workload"
)

// Options control an experiment run.
type Options struct {
	// Out receives the formatted table (io.Discard when nil).
	Out io.Writer
	// Scale multiplies dataset sizes (1.0 = the scaled presets).
	Scale float64
	// Verify cross-checks result counts across configurations and panics
	// on disagreement; it is cheap relative to the runs themselves.
	Verify bool
	// Workers is the morsel-driven worker-pool size used for every query
	// run (<= 1 means the serial path).
	Workers int

	// Hist re-runs each measured table query histRuns times and annotates
	// its row with per-run latency quantiles (Row.P50/P99). Advisory only:
	// the quantiles are never gated by CompareBaseline.
	Hist bool

	// Mixed-workload experiment knobs (see Mixed); zero values pick the
	// defaults noted on each field.
	MixedReaders    int     // reader goroutines (default 8)
	MixedWriters    int     // writer goroutines (default 1)
	MixedBatch      int     // ops per committed batch (default 64)
	MixedReads      int     // queries per reader per phase (default 200)
	MixedWriteRatio float64 // fraction of batch ops that are deletes (default 0.2)

	// DurableDir is the database directory for the Durability experiment;
	// it must be empty or nonexistent. "" uses a throwaway temp dir.
	DurableDir string

	// FaultSites bounds how many disk-op sites FaultSweep injects into
	// (0 = every site the reference workload executes). CI smoke runs use
	// a small bound; the sweep samples evenly and reports what it skipped.
	FaultSites int
}

func (o Options) scale() float64 {
	if o.Scale <= 0 {
		return 1.0
	}
	return o.Scale
}

func (o Options) out() io.Writer {
	if o.Out == nil {
		return io.Discard
	}
	return o.Out
}

// Row is one measurement.
type Row struct {
	Table   string
	Dataset string
	Config  string
	Query   string
	Seconds float64
	Count   int64
	ICost   int64
	MemMB   float64
	// Setup is index-creation (IC) or reconfiguration (IR) time in
	// seconds, reported once per configuration.
	Setup float64
	// IndexedEdges is |E_indexed| for Table IV.
	IndexedEdges int64
	// P50/P99 are per-run latency quantiles in seconds, populated only
	// under Options.Hist (advisory; CompareBaseline ignores them).
	P50 float64
	P99 float64
}

// measure runs one query under a mode (with workers > 1, through the
// morsel-driven parallel path) and returns its row fields.
func measure(s *index.Store, mode opt.Mode, q workload.Query, workers int) (float64, int64, int64, error) {
	qg, err := query.Parse(q.Cypher)
	if err != nil {
		return 0, 0, 0, fmt.Errorf("%s: %w", q.Name, err)
	}
	plan, err := opt.Optimize(s, qg, mode)
	if err != nil {
		return 0, 0, 0, fmt.Errorf("%s: %w", q.Name, err)
	}
	rt := exec.NewRuntime(s)
	start := time.Now()
	var n int64
	if workers > 1 {
		n, err = plan.CountParallel(rt, exec.ParallelOptions{Workers: workers})
		if err != nil {
			return 0, 0, 0, fmt.Errorf("%s: %w", q.Name, err)
		}
	} else {
		n = plan.Count(rt)
	}
	return time.Since(start).Seconds(), n, rt.ICost, nil
}

// histRuns is how many timed runs feed a row's latency quantiles under
// Options.Hist (the primary measured run counts as the first).
const histRuns = 5

// withHist re-runs the row's query and annotates the row with p50/p99
// per-run latency from a log-bucketed histogram; a pass-through unless
// Options.Hist is set.
func (o Options) withHist(r Row, s *index.Store, mode opt.Mode, q workload.Query, workers int) Row {
	if !o.Hist {
		return r
	}
	var h obs.Histogram
	h.Record(int64(r.Seconds * 1e9))
	for i := 1; i < histRuns; i++ {
		secs, _, _, err := measure(s, mode, q, workers)
		if err != nil {
			return r
		}
		h.Record(int64(secs * 1e9))
	}
	st := h.Snapshot()
	r.P50 = st.P50.Seconds()
	r.P99 = st.P99.Seconds()
	return r
}

func scaled(c gen.Config, scale float64) gen.Config {
	c.NumVertices = int(float64(c.NumVertices) * scale)
	if c.NumVertices < 64 {
		c.NumVertices = 64
	}
	return c
}

func memMB(s *index.Store) float64 {
	return float64(s.Stats().TotalBytes()) / (1 << 20)
}

// verifyCounts panics when two configurations disagree on a query's count
// — configurations change access paths, never results.
func verifyCounts(table string, counts map[string]map[string]int64) {
	var ref string
	for cfg := range counts {
		ref = cfg
		break
	}
	for cfg, byQuery := range counts {
		for qn, n := range byQuery {
			if want, ok := counts[ref][qn]; ok && n != want {
				panic(fmt.Sprintf("%s: %s disagrees with %s on %s: %d vs %d", table, cfg, ref, qn, n, want))
			}
		}
	}
}

// header prints a table banner.
func header(w io.Writer, title string) {
	fmt.Fprintf(w, "\n=== %s ===\n", title)
}

func printRow(w io.Writer, r Row, base *Row) {
	speedup := ""
	if base != nil && r.Seconds > 0 {
		speedup = fmt.Sprintf(" (%.2fx)", base.Seconds/r.Seconds)
	}
	fmt.Fprintf(w, "%-8s %-12s %-6s %10.4fs%s  count=%-10d icost=%-10d\n",
		r.Dataset, r.Config, r.Query, r.Seconds, speedup, r.Count, r.ICost)
}

// buildStore builds a store with a primary configuration.
func buildStore(g *storage.Graph, cfg index.Config) *index.Store {
	s, err := index.NewStore(g, cfg)
	if err != nil {
		panic(err)
	}
	return s
}

// Named primary configurations from the paper.

// ConfigD is the system default: partition by edge label, sort by
// neighbour ID.
func ConfigD() index.Config { return index.DefaultConfig() }

// ConfigDs keeps D's partitioning but sorts by neighbour label, then ID
// (Table II).
func ConfigDs() index.Config {
	c := index.DefaultConfig()
	c.Sorts = []index.SortKey{{Var: pred.VarNbr, Prop: pred.PropLabel}}
	return c
}

// ConfigDp adds a second partitioning level on the neighbour's label
// (Table II).
func ConfigDp() index.Config {
	c := index.DefaultConfig()
	c.Partitions = append(c.Partitions, index.PartitionKey{Var: pred.VarNbr, Prop: pred.PropLabel})
	return c
}

// ConfigUnsorted keeps label partitioning but leaves lists in insertion
// order (edge-ID order), emulating linked-list adjacency stores.
func ConfigUnsorted() index.Config {
	c := index.DefaultConfig()
	c.Sorts = []index.SortKey{{Var: pred.VarAdj, Prop: pred.PropID}}
	return c
}

// VPtDef is Table III's secondary index: forward, shares the primary's
// partitioning, sorts on the edge's time property.
func VPtDef() index.VPDef {
	return index.VPDef{
		View: index.View1Hop{Name: "VPt"},
		Dirs: []index.Direction{index.FW},
		Cfg: index.Config{
			Partitions: index.DefaultConfig().Partitions,
			Sorts:      []index.SortKey{{Var: pred.VarAdj, Prop: "time"}},
		},
	}
}

// VPcDef is Table IV's secondary index: both directions, shares the
// primary's partitioning, sorts on the neighbour's city.
func VPcDef() index.VPDef {
	return index.VPDef{
		View: index.View1Hop{Name: "VPc"},
		Dirs: []index.Direction{index.FW, index.BW},
		Cfg: index.Config{
			Partitions: index.DefaultConfig().Partitions,
			Sorts:      []index.SortKey{{Var: pred.VarNbr, Prop: storage.PropCity}},
		},
	}
}

// EPcDef is Section V-D's edge-partitioned index: the MoneyFlow 2-hop view
// with the banded amount predicate, second-level partitioning on the
// neighbour's account type, sorted by the neighbour's city.
func EPcDef(alpha int64) index.EPDef {
	return index.EPDef{
		View: index.View2Hop{
			Name: "EPc",
			Dir:  index.DestinationFW,
			Pred: pred.Predicate{}.
				And(pred.VarTerm(pred.VarBound, storage.PropDate, pred.LT, pred.VarAdj, storage.PropDate)).
				And(pred.VarTerm(pred.VarAdj, storage.PropAmount, pred.LT, pred.VarBound, storage.PropAmount)).
				And(pred.VarTermShift(pred.VarBound, storage.PropAmount, pred.LT, pred.VarAdj, storage.PropAmount, alpha)),
		},
		Cfg: index.Config{
			Partitions: []index.PartitionKey{{Var: pred.VarNbr, Prop: storage.PropAcc}},
			Sorts:      []index.SortKey{{Var: pred.VarNbr, Prop: storage.PropCity}},
		},
	}
}

// EPtDef is the maintenance benchmark's edge-partitioned index: a banded
// time predicate at roughly 1% selectivity.
func EPtDef(alpha int64) index.EPDef {
	return index.EPDef{
		View: index.View2Hop{
			Name: "EPt",
			Dir:  index.DestinationFW,
			Pred: pred.Predicate{}.
				And(pred.VarTerm(pred.VarBound, "time", pred.LT, pred.VarAdj, "time")).
				And(pred.VarTermShift(pred.VarAdj, "time", pred.LT, pred.VarBound, "time", alpha)),
		},
		Cfg: index.Config{
			Partitions: index.DefaultConfig().Partitions,
			Sorts:      []index.SortKey{{Var: pred.VarAdj, Prop: "time"}},
		},
	}
}
