package harness

import (
	"bytes"
	"fmt"
	"time"

	"github.com/aplusdb/aplus/internal/enc"
	"github.com/aplusdb/aplus/internal/exec"
	"github.com/aplusdb/aplus/internal/gen"
	"github.com/aplusdb/aplus/internal/index"
	"github.com/aplusdb/aplus/internal/storage"
)

// MergeBench measures the write path's fold cost: it builds the largest
// bench graph (Orkut at 8x the table scale, about a million edges at
// -scale 1), stages update deltas of increasing size through the snapshot
// overlay machinery, and folds each delta twice — once with the O(E) full
// rebuild (index.Store.CloneRebuilt) and once with the O(delta)
// incremental patch (CloneIncremental) — reporting both latencies and their
// ratio. A shared-level secondary index rides along so the secondary patch
// path is measured, not just the primary's.
//
// Parity is enforced, not assumed: for every delta the two successor
// stores must produce bit-identical checkpoint encodings (which pins the
// primary CSRs element-for-element and the secondary descriptors) and equal
// edge counts plus i-cost through the executor's fetch path. The rows are
// not part of "-exp all": fold latency is hardware-dependent and must not
// gate -baseline runs.
func MergeBench(o Options) []Row {
	w := o.out()
	c := scaled(gen.Orkut.WithLabels(2, 4), 8*o.scale())
	c.Time = true
	g := gen.Build(c)
	cfg := ConfigD()
	s := buildStore(g, cfg)
	if _, err := s.CreateVertexPartitioned(VPtDef()); err != nil {
		panic(err)
	}
	numOwners := 2 * g.NumVertices()
	header(w, fmt.Sprintf("Merge: incremental vs full fold, %s (%d vertices, %d edges, VPt secondary)",
		c.Name, g.NumVertices(), g.NumLiveEdges()))

	var rows []Row
	rng := gen.NewRand(7)
	for _, frac := range []float64{0.001, 0.01, 0.05} {
		// Stage a delta whose dirty-owner footprint is ~frac of the 2|V|
		// primary lists: each inserted edge dirties one forward and one
		// backward list, each delete two more.
		ops := int(frac * float64(numOwners) / 2)
		if ops < 4 {
			ops = 4
		}
		g2 := g.Clone()
		b := index.NewDeltaBuilder(index.NewDelta(), s.Primary(), g2)
		for i := 0; i < ops; i++ {
			if i%8 == 7 {
				b.Delete(storage.EdgeID(rng.Intn(g.NumEdges())))
				continue
			}
			src := storage.VertexID(rng.Intn(g.NumVertices()))
			dst := storage.VertexID(rng.Intn(g.NumVertices()))
			e, err := g2.AddEdge(src, dst, fmt.Sprintf("E%d", rng.Intn(4)))
			if err != nil {
				panic(err)
			}
			mustSetProp(g2.SetEdgeProp(e, "time", storage.Int(int64(rng.Intn(1_000_000)))))
			b.Insert(e)
		}
		if b.Impossible() {
			panic("merge bench delta unexpectedly unbufferable")
		}
		d := b.Freeze()
		dirty := d.DirtyOwners()
		label := fmt.Sprintf("d=%.1f%%", 100*float64(dirty)/float64(numOwners))

		gFull := g2.Clone()
		gFull.ApplyTombstones(d.DeletedEdges())
		startFull := time.Now()
		full, err := s.CloneRebuilt(gFull, cfg)
		if err != nil {
			panic(err)
		}
		fullSecs := time.Since(startFull).Seconds()

		gInc := g2.Clone()
		gInc.ApplyTombstones(d.DeletedEdges())
		startInc := time.Now()
		inc, ok := s.CloneIncremental(gInc, d)
		if !ok {
			panic("incremental fold declined a bufferable delta")
		}
		incSecs := time.Since(startInc).Seconds()

		count, icost := verifyMergeParity(full, inc)
		fmt.Fprintf(w, "%-8s %6d dirty owners  full %9.2fms  incremental %9.2fms  (%.1fx)  edges=%d icost=%d\n",
			label, dirty, fullSecs*1e3, incSecs*1e3, fullSecs/incSecs, count, icost)
		rows = append(rows,
			Row{Table: "merge", Dataset: c.Name, Config: "full", Query: label, Seconds: fullSecs, Count: count, ICost: icost},
			Row{Table: "merge", Dataset: c.Name, Config: "incremental", Query: label, Seconds: incSecs, Count: count, ICost: icost},
		)
	}
	return rows
}

// verifyMergeParity panics unless the two successor stores are
// indistinguishable: bit-identical checkpoint encodings and equal edge
// count and i-cost through the executor's primary fetch path. It returns
// the agreed (count, icost).
func verifyMergeParity(full, inc *index.Store) (int64, int64) {
	wf, wi := enc.NewWriter(), enc.NewWriter()
	index.EncodeStore(wf, full)
	index.EncodeStore(wi, inc)
	if !bytes.Equal(wf.Bytes(), wi.Bytes()) {
		panic(fmt.Sprintf("merge parity: checkpoint encodings diverge (%d vs %d bytes)", len(wf.Bytes()), len(wi.Bytes())))
	}
	plan := &exec.Plan{
		NumV: 2, NumE: 1,
		Ops: []exec.Op{
			&exec.ScanVertexOp{Slot: 0},
			&exec.ExtendIntersectOp{TargetSlot: 1, Lists: []exec.ListRef{
				{Kind: exec.ListPrimary, Dir: index.FW, OwnerVertexSlot: 0, EdgeSlot: 0},
			}},
		},
	}
	rtF := exec.NewRuntime(full)
	cf := plan.Count(rtF)
	rtI := exec.NewRuntime(inc)
	ci := plan.Count(rtI)
	if cf != ci || rtF.ICost != rtI.ICost {
		panic(fmt.Sprintf("merge parity: count/icost diverge (%d/%d vs %d/%d)", cf, rtF.ICost, ci, rtI.ICost))
	}
	return cf, rtF.ICost
}

func mustSetProp(err error) {
	if err != nil {
		panic(err)
	}
}
