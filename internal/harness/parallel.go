package harness

import (
	"fmt"
	"runtime"

	"github.com/aplusdb/aplus/internal/gen"
	"github.com/aplusdb/aplus/internal/opt"
	"github.com/aplusdb/aplus/internal/workload"
)

// ParallelScaling measures morsel-driven intra-query speedup: multi-hop
// Table II queries on labeled LiveJournal under 1, 2, ..., Workers workers
// on one store. Unlike the table experiments, Workers here is the sweep's
// upper end, not a per-query setting: a scaling curve needs several worker
// counts, so Workers <= 1 sweeps up to GOMAXPROCS instead of running
// serially. Counts and i-cost must agree exactly across worker counts
// (the parallel path's correctness contract); runtimes show the scaling.
// Config names are "1w", "2w", ... so speedups read against the "1w" base.
func ParallelScaling(o Options) []Row {
	w := o.out()
	header(w, "Parallel scaling: morsel-driven execution (speedup vs 1 worker)")
	maxWorkers := o.Workers
	if maxWorkers <= 1 {
		maxWorkers = runtime.GOMAXPROCS(0)
	}
	var workerCounts []int
	for n := 1; n < maxWorkers; n *= 2 {
		workerCounts = append(workerCounts, n)
	}
	workerCounts = append(workerCounts, maxWorkers)

	base := gen.LiveJournal
	g := gen.Build(scaled(base.WithLabels(2, 4), o.scale()))
	s := buildStore(g, ConfigD())
	queries := pickQueries(workload.SQ(2, 4), "SQ2", "SQ5", "SQ8")

	var rows []Row
	counts := map[string]map[string]int64{}
	baselines := map[string]Row{}
	for _, workers := range workerCounts {
		cfg := fmt.Sprintf("%dw", workers)
		counts[cfg] = map[string]int64{}
		for _, q := range queries {
			secs, n, icost, err := measure(s, opt.ModeDefault, q, workers)
			if err != nil {
				panic(err)
			}
			counts[cfg][q.Name] = n
			r := Row{
				Table: "parallel", Dataset: base.Name + dsSuffix(2, 4),
				Config: cfg, Query: q.Name,
				Seconds: secs, Count: n, ICost: icost,
			}
			r = o.withHist(r, s, opt.ModeDefault, q, workers)
			rows = append(rows, r)
			if workers == 1 {
				baselines[q.Name] = r
				printRow(w, r, nil)
			} else {
				b := baselines[q.Name]
				printRow(w, r, &b)
			}
		}
	}
	if o.Verify {
		verifyCounts("parallel", counts)
		verifyICosts(rows)
	}
	return rows
}

// pickQueries filters a workload by name.
func pickQueries(qs []workload.Query, names ...string) []workload.Query {
	want := map[string]bool{}
	for _, n := range names {
		want[n] = true
	}
	var out []workload.Query
	for _, q := range qs {
		if want[q.Name] {
			out = append(out, q)
		}
	}
	return out
}

// verifyICosts panics when worker counts disagree on a query's i-cost —
// the morsel partition must not change the total list entries read.
func verifyICosts(rows []Row) {
	ref := map[string]int64{}
	for _, r := range rows {
		if prev, ok := ref[r.Query]; ok {
			if r.ICost != prev {
				panic(fmt.Sprintf("parallel: %s %s i-cost %d disagrees with %d", r.Config, r.Query, r.ICost, prev))
			}
		} else {
			ref[r.Query] = r.ICost
		}
	}
}
