package harness

import (
	"fmt"
	"time"

	"github.com/aplusdb/aplus/internal/gen"
	"github.com/aplusdb/aplus/internal/index"
	"github.com/aplusdb/aplus/internal/pred"
	"github.com/aplusdb/aplus/internal/storage"
)

// Maintenance reproduces the Section V-F micro-benchmark: load 50% of a
// dataset, then insert the remaining edges one at a time through the
// update-buffer path, under five configurations of increasing maintenance
// work: Ds (no partitioning, neighbour-sorted), Dp (label-partitioned),
// Dps (label-partitioned + sorted), Dps+VPt, and Dps+EPt (banded time
// predicate at ~1% selectivity).
func Maintenance(o Options) []Row {
	w := o.out()
	header(w, "Maintenance: insert throughput (Section V-F)")
	var rows []Row
	for _, cfg := range []struct {
		base   gen.Config
		vl, el int
	}{
		{gen.LiveJournal, 2, 4},
		{gen.BerkStan, 2, 2},
	} {
		c := scaled(cfg.base.WithLabels(cfg.vl, cfg.el), o.scale())
		c.Time = true
		full := gen.Build(c)
		name := cfg.base.Name + dsSuffix(cfg.vl, cfg.el)

		for _, mc := range maintenanceConfigs() {
			s, pending := halfLoadedStore(full, mc.primary)
			for _, create := range mc.secondaries {
				create(s)
			}
			start := time.Now()
			for _, e := range pending {
				if _, err := s.InsertEdge(e.src, e.dst, e.label, e.props); err != nil {
					panic(err)
				}
			}
			secs := time.Since(start).Seconds()
			rate := float64(len(pending)) / secs
			fmt.Fprintf(w, "%-8s %-9s %8d inserts in %8.3fs  -> %10.0f edges/s\n",
				name, mc.name, len(pending), secs, rate)
			rows = append(rows, Row{
				Table: "maintenance", Dataset: name, Config: mc.name,
				Seconds: secs, Count: int64(len(pending)),
			})
		}
	}
	return rows
}

type pendingEdge struct {
	src, dst storage.VertexID
	label    string
	props    map[string]storage.Value
}

// halfLoadedStore builds a graph with all vertices and the first half of
// full's edges, returning the store and the edges still to insert.
func halfLoadedStore(full *storage.Graph, cfg index.Config) (*index.Store, []pendingEdge) {
	g := storage.NewGraph()
	for i := 0; i < full.NumVertices(); i++ {
		g.AddVertex(full.Catalog().VertexLabelName(full.VertexLabel(storage.VertexID(i))))
	}
	half := full.NumEdges() / 2
	edgeProps := func(e storage.EdgeID) map[string]storage.Value {
		props := map[string]storage.Value{}
		if v := full.EdgeProp(e, "time"); !v.IsNull() {
			props["time"] = v
		}
		return props
	}
	for i := 0; i < half; i++ {
		e := storage.EdgeID(i)
		ne, err := g.AddEdge(full.Src(e), full.Dst(e), full.Catalog().EdgeLabelName(full.EdgeLabel(e)))
		if err != nil {
			panic(err)
		}
		for k, v := range edgeProps(e) {
			if err := g.SetEdgeProp(ne, k, v); err != nil {
				panic(err)
			}
		}
	}
	var pending []pendingEdge
	for i := half; i < full.NumEdges(); i++ {
		e := storage.EdgeID(i)
		pending = append(pending, pendingEdge{
			src: full.Src(e), dst: full.Dst(e),
			label: full.Catalog().EdgeLabelName(full.EdgeLabel(e)),
			props: edgeProps(e),
		})
	}
	return buildStore(g, cfg), pending
}

type maintenanceConfig struct {
	name        string
	primary     index.Config
	secondaries []func(*index.Store)
}

func maintenanceConfigs() []maintenanceConfig {
	noPart := index.Config{}
	dp := index.Config{
		Partitions: index.DefaultConfig().Partitions,
		Sorts:      []index.SortKey{{Var: pred.VarAdj, Prop: pred.PropID}},
	}
	dps := index.DefaultConfig()
	vpt := func(s *index.Store) {
		if _, err := s.CreateVertexPartitioned(VPtDef()); err != nil {
			panic(err)
		}
	}
	ept := func(s *index.Store) {
		if _, err := s.CreateEdgePartitioned(EPtDef(10_000)); err != nil { // ~1% of the 1e6 time range
			panic(err)
		}
	}
	return []maintenanceConfig{
		{"Ds", noPart, nil},
		{"Dp", dp, nil},
		{"Dps", dps, nil},
		{"Dps+VPt", dps, []func(*index.Store){vpt}},
		{"Dps+EPt", dps, []func(*index.Store){vpt, ept}},
	}
}
