package harness

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func baselineRows() []Row {
	return []Row{
		{Table: "table5", Dataset: "LJ", Config: "D", Query: "SQ1", Seconds: 1.0, Count: 100, ICost: 1000},
		{Table: "table5", Dataset: "LJ", Config: "D", Query: "SQ8", Seconds: 2.0, Count: 200, ICost: 2000},
		{Table: "table5", Dataset: "LJ", Config: "Dp", Query: "SQ1", Seconds: 0.5, Count: 100, ICost: 500},
	}
}

func TestCompareBaselineNoRegression(t *testing.T) {
	base := baselineRows()
	cur := baselineRows()
	cur[0].Seconds = 1.05 // within 10%
	cur[1].Seconds = 1.2  // faster
	cur[2].ICost = 400    // cheaper plan
	var buf bytes.Buffer
	if n := CompareBaseline(&buf, base, cur, 0.10, 0.10); n != 0 {
		t.Fatalf("regressions = %d, want 0\n%s", n, buf.String())
	}
	if !strings.Contains(buf.String(), "no regressions (3 rows compared)") {
		t.Errorf("missing summary line:\n%s", buf.String())
	}
}

func TestCompareBaselineDetects(t *testing.T) {
	base := baselineRows()
	cur := baselineRows()
	cur[0].Seconds = 1.2 // 20% slower: runtime regression
	cur[1].Count = 201   // wrong result: always a regression
	cur[2].ICost = 600   // 20% more list entries read
	var buf bytes.Buffer
	if n := CompareBaseline(&buf, base, cur, 0.10, 0.10); n != 3 {
		t.Fatalf("regressions = %d, want 3\n%s", n, buf.String())
	}
	out := buf.String()
	for _, want := range []string{"REGRESSION", "COUNT MISMATCH", "ICOST REGRESSION"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestCompareBaselineUnmatchedRows(t *testing.T) {
	base := baselineRows()
	cur := append(baselineRows(), Row{Table: "table5", Dataset: "LJ", Config: "N4", Query: "SQ1", Seconds: 3})
	cur = cur[1:] // drop base[0]: present in baseline only
	var buf bytes.Buffer
	if n := CompareBaseline(&buf, base, cur, 0.10, 0.10); n != 0 {
		t.Fatalf("unmatched rows must not regress, got %d\n%s", n, buf.String())
	}
	out := buf.String()
	if !strings.Contains(out, "new row") || !strings.Contains(out, "in baseline only") {
		t.Errorf("unmatched rows not reported:\n%s", out)
	}
}

func TestLoadRowsRoundTrip(t *testing.T) {
	rows := baselineRows()
	data, err := json.MarshalIndent(rows, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "rows.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := LoadRows(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(rows) || got[1] != rows[1] {
		t.Errorf("round trip mismatch: %+v", got)
	}
	if _, err := LoadRows(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("missing file must error")
	}
}

func TestCompareBaselineNoiseFloor(t *testing.T) {
	// Rows under the runtime floor never regress on timing alone, however
	// bad the ratio, but still regress on count changes.
	base := []Row{
		{Table: "t", Dataset: "d", Config: "c", Query: "fast", Seconds: 0.00002, Count: 5, ICost: 10},
		{Table: "t", Dataset: "d", Config: "c", Query: "wrong", Seconds: 0.00002, Count: 5, ICost: 10},
	}
	cur := []Row{
		{Table: "t", Dataset: "d", Config: "c", Query: "fast", Seconds: 0.00009, Count: 5, ICost: 10},
		{Table: "t", Dataset: "d", Config: "c", Query: "wrong", Seconds: 0.00002, Count: 6, ICost: 10},
	}
	var buf bytes.Buffer
	if n := CompareBaseline(&buf, base, cur, 0.10, 0.10); n != 1 {
		t.Fatalf("regressions = %d, want 1 (count mismatch only)\n%s", n, buf.String())
	}
}

func TestCompareBaselineAdvisoryRuntime(t *testing.T) {
	base := []Row{{Table: "t", Dataset: "d", Config: "c", Query: "q1", Seconds: 0.010, Count: 100, ICost: 1000}}
	cur := []Row{{Table: "t", Dataset: "d", Config: "c", Query: "q1", Seconds: 0.100, Count: 100, ICost: 1000}} // 10x slower, same count/icost
	var buf bytes.Buffer
	if n := CompareBaseline(&buf, base, cur, -1, 0.10); n != 0 {
		t.Fatalf("advisory runtime must not regress, got %d:\n%s", n, buf.String())
	}
	cur[0].ICost = 5000 // i-cost still gates
	buf.Reset()
	if n := CompareBaseline(&buf, base, cur, -1, 0.10); n != 1 {
		t.Fatalf("i-cost regression missed under advisory runtime, got %d:\n%s", n, buf.String())
	}
}
