package harness

// Stored-baseline comparison for cmd/aplusbench: load the JSON row dump of
// an earlier run (-json) and diff a fresh run against it, so performance
// trajectories across commits are checked mechanically instead of by
// eyeballing tables (the ROADMAP's "wire a stored-baseline comparison"
// item).

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
)

// LoadRows reads a row dump written by cmd/aplusbench -json.
func LoadRows(path string) ([]Row, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rows []Row
	if err := json.Unmarshal(data, &rows); err != nil {
		return nil, fmt.Errorf("parse %s: %w", path, err)
	}
	return rows, nil
}

// rowKey identifies a measurement across runs.
func rowKey(r Row) string {
	return r.Table + "/" + r.Dataset + "/" + r.Config + "/" + r.Query
}

// minCompareSeconds is the runtime floor for regression decisions: rows
// where both runs finish faster than this are dominated by timer and
// scheduler noise, so their runtime ratio is reported but never fails the
// gate (count and i-cost checks, which are deterministic, still apply).
const minCompareSeconds = 1e-3

// CompareBaseline diffs cur against base row-by-row (matched on
// table/dataset/config/query) and prints per-row runtime deltas. A row
// regresses when it runs slower than base*(1+tolerance) (unless both runs
// sit under the minCompareSeconds noise floor) or its i-cost grows beyond
// (1+icostTolerance); a count mismatch is always a regression, since index
// and executor changes must never change results. A negative tolerance
// makes the runtime comparison advisory-only (reported, never failing):
// wall-clock from a dump blessed on different hardware — the CI gate —
// cannot be compared meaningfully, while counts and i-cost are
// deterministic everywhere. The returned value is the number of regressed
// rows — callers exit non-zero when it is positive. Rows present in only
// one of the runs are reported but never regress (experiments evolve).
func CompareBaseline(w io.Writer, base, cur []Row, tolerance, icostTolerance float64) int {
	if w == nil {
		w = io.Discard
	}
	baseByKey := map[string]Row{}
	for _, r := range base {
		baseByKey[rowKey(r)] = r
	}
	if tolerance < 0 {
		fmt.Fprintf(w, "\n=== baseline comparison (runtime advisory, i-cost tolerance %.0f%%) ===\n", icostTolerance*100)
	} else {
		fmt.Fprintf(w, "\n=== baseline comparison (tolerance %.0f%%, i-cost %.0f%%) ===\n", tolerance*100, icostTolerance*100)
	}
	regressions := 0
	matched := map[string]bool{}
	// Compare in the current run's order for stable, readable output.
	for _, r := range cur {
		k := rowKey(r)
		b, ok := baseByKey[k]
		if !ok {
			fmt.Fprintf(w, "%-40s %10s -> %8.4fs  (new row)\n", k, "-", r.Seconds)
			continue
		}
		matched[k] = true
		switch {
		case r.Count != b.Count:
			regressions++
			fmt.Fprintf(w, "%-40s COUNT MISMATCH: %d -> %d\n", k, b.Count, r.Count)
		case float64(r.ICost) > float64(b.ICost)*(1+icostTolerance):
			regressions++
			fmt.Fprintf(w, "%-40s ICOST REGRESSION: %d -> %d\n", k, b.ICost, r.ICost)
		case tolerance >= 0 && b.Seconds > 0 && r.Seconds > b.Seconds*(1+tolerance) &&
			(b.Seconds >= minCompareSeconds || r.Seconds >= minCompareSeconds):
			regressions++
			fmt.Fprintf(w, "%-40s %8.4fs -> %8.4fs  (%.2fx) REGRESSION\n",
				k, b.Seconds, r.Seconds, r.Seconds/b.Seconds)
		default:
			ratio := 1.0
			if b.Seconds > 0 {
				ratio = r.Seconds / b.Seconds
			}
			fmt.Fprintf(w, "%-40s %8.4fs -> %8.4fs  (%.2fx) ok\n", k, b.Seconds, r.Seconds, ratio)
		}
	}
	var missing []string
	for k := range baseByKey {
		if !matched[k] {
			missing = append(missing, k)
		}
	}
	sort.Strings(missing)
	for _, k := range missing {
		fmt.Fprintf(w, "%-40s (in baseline only)\n", k)
	}
	if regressions > 0 {
		fmt.Fprintf(w, "%d row(s) regressed\n", regressions)
	} else {
		fmt.Fprintf(w, "no regressions (%d rows compared)\n", len(matched))
	}
	return regressions
}
