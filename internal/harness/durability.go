package harness

import (
	"fmt"
	"math/rand"
	"os"
	"sync"
	"time"

	"github.com/aplusdb/aplus/internal/index"
	"github.com/aplusdb/aplus/internal/snap"
	"github.com/aplusdb/aplus/internal/storage"
	"github.com/aplusdb/aplus/internal/wal"
)

// Durability measures the write-ahead-log engine against the in-memory
// write path and reports the recovery profile:
//
//   - grouped-batch write throughput, in-memory vs durable (each batch
//     fsync'd before it becomes visible) — the acceptance bar is the
//     durable path staying within 2x;
//   - concurrent singleton-commit throughput, where the group-commit path
//     coalesces commits queued behind the writer mutex into one WAL record
//     and one fsync (reported alongside the coalescing counters);
//   - a checkpoint forced mid-workload, leaving the remaining batches in
//     the WAL tail;
//   - a full close/reopen cycle: reopen wall time, records and operations
//     replayed from the WAL, and checkpoint/WAL sizes on disk.
//
// The workload populates the database exclusively through batches, the way
// durable databases are loaded. Rows are scheduling-dependent and excluded
// from "-exp all" (like mixed), so they never gate -baseline runs.
func Durability(o Options) []Row {
	w := o.out()
	dir := o.DurableDir
	if dir == "" {
		tmp, err := os.MkdirTemp("", "aplusbench-durable-*")
		if err != nil {
			panic(err)
		}
		defer os.RemoveAll(tmp)
		dir = tmp
	}
	nBatches := int(40 * o.scale())
	if nBatches < 8 {
		nBatches = 8
	}
	batchOps := 1024
	header(w, fmt.Sprintf("Durability: %d batches x %d ops, dir %s", nBatches, batchOps, dir))

	// In-memory reference: the same workload against a plain manager.
	memManager, err := snap.NewManager(storage.NewGraph(), index.DefaultConfig(), snap.Options{})
	if err != nil {
		panic(err)
	}
	_, memOps, memSecs := runDurabilityWorkload(memManager, nBatches, batchOps, nil)
	memManager.Close()
	fmt.Fprintf(w, "%-10s %10d write ops in %8.3fs -> %10.0f ops/s\n",
		"memory", memOps, memSecs, float64(memOps)/memSecs)

	// Durable run: same workload, every batch fsync'd before visibility; a
	// checkpoint is forced at the halfway mark so the close leaves a WAL
	// tail for reopen to replay.
	eng, rec, err := wal.Open(dir, true, nil)
	if err != nil {
		panic(err)
	}
	if rec.Store != nil || len(rec.Tail) > 0 {
		panic(fmt.Sprintf("durability experiment needs an empty directory, %s has state", dir))
	}
	sopts := snap.Options{
		WALAppend:      eng.Append,
		MergeThreshold: 1 << 30,
		AfterFold:      eng.CheckpointSnapshot,
	}
	m, err := snap.NewManager(storage.NewGraph(), index.DefaultConfig(), sopts)
	if err != nil {
		panic(err)
	}
	eng.SetReady()
	vertices, durOps, durSecs := runDurabilityWorkload(m, nBatches, batchOps, func(done int) {
		if done == nBatches/2 {
			if err := m.Merge(); err != nil {
				panic(err)
			}
		}
	})
	overhead := durSecs / memSecs * float64(memOps) / float64(durOps)
	fmt.Fprintf(w, "%-10s %10d write ops in %8.3fs -> %10.0f ops/s (%.2fx vs memory; bar 2x)\n",
		"durable", durOps, durSecs, float64(durOps)/durSecs, overhead)

	// Concurrent singleton commits: each op is its own commit (one WAL
	// record, one fsync when not coalesced). The group-commit path merges
	// commits that queue behind the writer mutex into one publication and
	// one fsync, so concurrent singleton throughput reflects coalescing,
	// not the raw fsync rate.
	singletonWriters := 4
	singletonOps := nBatches * batchOps / 16
	perWriter := singletonOps / singletonWriters
	var sg sync.WaitGroup
	singletonStart := time.Now()
	for wkr := 0; wkr < singletonWriters; wkr++ {
		sg.Add(1)
		go func(wkr int) {
			defer sg.Done()
			wrng := rand.New(rand.NewSource(int64(100 + wkr)))
			for i := 0; i < perWriter; i++ {
				src := vertices[wrng.Intn(len(vertices))]
				dst := vertices[wrng.Intn(len(vertices))]
				if err := m.CommitSingle(func(b *snap.Batch) error {
					_, err := b.AddEdge(src, dst, "W", map[string]storage.Value{
						"amt": storage.Int(int64(wrng.Intn(1000))),
					})
					return err
				}); err != nil {
					panic(err)
				}
			}
		}(wkr)
	}
	sg.Wait()
	singletonSecs := time.Since(singletonStart).Seconds()
	committed := int64(singletonWriters * perWriter)
	ss := m.Stats()
	fmt.Fprintf(w, "%-10s %10d singleton ops in %8.3fs -> %10.0f ops/s (%d group commits coalesced %d ops)\n",
		"singleton", committed, singletonSecs, float64(committed)/singletonSecs, ss.GroupCommits, ss.GroupedOps)

	liveBefore := countDurabilityEdges(m)
	m.Close()
	if err := eng.Close(); err != nil {
		panic(err)
	}
	es := eng.Stats()
	fmt.Fprintf(w, "%-10s checkpoint epoch=%d seq=%d %8.2f KB; wal %8.2f KB\n",
		"disk", es.CheckpointEpoch, es.CheckpointSeq,
		float64(es.CheckpointBytes)/1024, float64(es.WALBytes)/1024)

	// Reopen: load the checkpoint, replay the tail, verify the edge count.
	reopenStart := time.Now()
	eng2, rec2, err := wal.Open(dir, true, nil)
	if err != nil {
		panic(err)
	}
	var m2 *snap.Manager
	sopts2 := snap.Options{WALAppend: eng2.Append, StartSeq: rec2.Seq, StartEpoch: rec2.Epoch, MergeThreshold: 1 << 30}
	if rec2.Store == nil {
		panic("durability experiment: no checkpoint on reopen")
	}
	m2 = snap.NewManagerFromStore(rec2.Store, rec2.Graph, sopts2)
	replayedOps, err := wal.Replay(m2, rec2.Tail)
	if err != nil {
		panic(err)
	}
	reopenSecs := time.Since(reopenStart).Seconds()
	if live := countDurabilityEdges(m2); live != liveBefore {
		panic(fmt.Sprintf("durability experiment: reopen restored %d live edges, want %d", live, liveBefore))
	}
	m2.Close()
	eng2.Close()
	fmt.Fprintf(w, "%-10s %8.3fs: %d records / %d ops replayed; state verified (%d live edges)\n",
		"reopen", reopenSecs, len(rec2.Tail), replayedOps, liveBefore)

	return []Row{
		{Table: "durability", Dataset: "synthetic", Config: "memory", Query: "writes", Seconds: memSecs, Count: memOps},
		{Table: "durability", Dataset: "synthetic", Config: "durable", Query: "writes", Seconds: durSecs, Count: durOps},
		{Table: "durability", Dataset: "synthetic", Config: "singleton", Query: "writes", Seconds: singletonSecs, Count: committed},
		{Table: "durability", Dataset: "synthetic", Config: "reopen", Query: "recovery", Seconds: reopenSecs, Count: replayedOps},
	}
}

// runDurabilityWorkload commits nBatches grouped batches (vertices then
// chained edges with properties) and returns (vertices, ops, seconds).
// afterBatch, when non-nil, runs between batches with the number completed
// so far.
func runDurabilityWorkload(m *snap.Manager, nBatches, batchOps int, afterBatch func(done int)) ([]storage.VertexID, int64, float64) {
	rng := rand.New(rand.NewSource(1))
	var vertices []storage.VertexID
	var ops int64
	start := time.Now()
	for bi := 0; bi < nBatches; bi++ {
		b := m.Begin()
		for i := 0; i < batchOps; i++ {
			if len(vertices) < 2 || rng.Intn(8) == 0 {
				v, err := b.AddVertex("Account", map[string]storage.Value{
					"city": storage.Str([]string{"SF", "BOS", "LA"}[rng.Intn(3)]),
				})
				if err != nil {
					panic(err)
				}
				vertices = append(vertices, v)
			} else {
				src := vertices[rng.Intn(len(vertices))]
				dst := vertices[rng.Intn(len(vertices))]
				if _, err := b.AddEdge(src, dst, "W", map[string]storage.Value{
					"amt": storage.Int(int64(rng.Intn(1000))),
				}); err != nil {
					panic(err)
				}
			}
			ops++
		}
		if err := b.Commit(); err != nil {
			panic(err)
		}
		if afterBatch != nil {
			afterBatch(bi + 1)
		}
	}
	return vertices, ops, time.Since(start).Seconds()
}

func countDurabilityEdges(m *snap.Manager) int {
	s := m.Acquire()
	defer s.Release()
	return s.Graph().NumLiveEdges() - s.Delta().Deletes()
}
