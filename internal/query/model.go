// Package query defines the query-graph model for subgraph queries (the
// MATCH/WHERE component of openCypher that A+ indexes accelerate) and the
// parsers for the query language subset and the paper's index DDL commands.
package query

import (
	"fmt"
	"strings"

	"github.com/aplusdb/aplus/internal/pred"
	"github.com/aplusdb/aplus/internal/storage"
)

// Vertex is a query vertex variable, optionally constrained to a label.
type Vertex struct {
	Name  string
	Label string // empty = unconstrained
}

// Edge is a query edge variable from Src to Dst (names of query vertices),
// optionally constrained to a label.
type Edge struct {
	Name  string
	Src   string
	Dst   string
	Label string
}

// Pred is a comparison between a query variable's property and either a
// constant or another variable's property. Var names refer to query
// vertices or edges; Prop may be the pseudo-properties "ID" and "label".
type Pred struct {
	LeftVar   string
	LeftProp  string
	Op        pred.Op
	RightVar  string // empty = constant comparison
	RightProp string
	Const     storage.Value
	// RightShift adds a constant to the right variable's value,
	// e.g. e1.amt < e2.amt + 100.
	RightShift int64
}

// IsConst reports whether the right operand is a constant.
func (p Pred) IsConst() bool { return p.RightVar == "" }

// String implements fmt.Stringer.
func (p Pred) String() string {
	if p.IsConst() {
		return fmt.Sprintf("%s.%s %s %s", p.LeftVar, p.LeftProp, p.Op, p.Const)
	}
	if p.RightShift != 0 {
		return fmt.Sprintf("%s.%s %s %s.%s%+d", p.LeftVar, p.LeftProp, p.Op, p.RightVar, p.RightProp, p.RightShift)
	}
	return fmt.Sprintf("%s.%s %s %s.%s", p.LeftVar, p.LeftProp, p.Op, p.RightVar, p.RightProp)
}

// Graph is a query graph: the joins of a subgraph query.
type Graph struct {
	Vertices []Vertex
	Edges    []Edge
	Preds    []Pred
}

// VertexIndex returns the position of a named query vertex.
func (q *Graph) VertexIndex(name string) (int, bool) {
	for i, v := range q.Vertices {
		if v.Name == name {
			return i, true
		}
	}
	return -1, false
}

// EdgeIndex returns the position of a named query edge.
func (q *Graph) EdgeIndex(name string) (int, bool) {
	for i, e := range q.Edges {
		if e.Name == name {
			return i, true
		}
	}
	return -1, false
}

// IsVertexVar reports whether name names a query vertex.
func (q *Graph) IsVertexVar(name string) bool {
	_, ok := q.VertexIndex(name)
	return ok
}

// IsEdgeVar reports whether name names a query edge.
func (q *Graph) IsEdgeVar(name string) bool {
	_, ok := q.EdgeIndex(name)
	return ok
}

// AddVertex registers a vertex variable, reusing an existing one with the
// same name. A non-empty label on a later mention must not conflict.
func (q *Graph) AddVertex(name, label string) error {
	if i, ok := q.VertexIndex(name); ok {
		if label != "" {
			if q.Vertices[i].Label != "" && q.Vertices[i].Label != label {
				return fmt.Errorf("query: vertex %q has conflicting labels %q and %q", name, q.Vertices[i].Label, label)
			}
			q.Vertices[i].Label = label
		}
		return nil
	}
	q.Vertices = append(q.Vertices, Vertex{Name: name, Label: label})
	return nil
}

// AddEdge registers an edge variable.
func (q *Graph) AddEdge(name, src, dst, label string) error {
	if name != "" {
		if _, ok := q.EdgeIndex(name); ok {
			return fmt.Errorf("query: duplicate edge variable %q", name)
		}
	} else {
		name = fmt.Sprintf("_e%d", len(q.Edges))
	}
	q.Edges = append(q.Edges, Edge{Name: name, Src: src, Dst: dst, Label: label})
	return nil
}

// Validate checks referential integrity of the query graph.
func (q *Graph) Validate() error {
	if len(q.Vertices) == 0 {
		return fmt.Errorf("query: no vertices")
	}
	for _, e := range q.Edges {
		if !q.IsVertexVar(e.Src) || !q.IsVertexVar(e.Dst) {
			return fmt.Errorf("query: edge %q references unknown vertex", e.Name)
		}
	}
	for _, p := range q.Preds {
		if !q.IsVertexVar(p.LeftVar) && !q.IsEdgeVar(p.LeftVar) {
			return fmt.Errorf("query: predicate references unknown variable %q", p.LeftVar)
		}
		if !p.IsConst() && !q.IsVertexVar(p.RightVar) && !q.IsEdgeVar(p.RightVar) {
			return fmt.Errorf("query: predicate references unknown variable %q", p.RightVar)
		}
	}
	// Connectivity: the optimizer enumerates connected sub-queries only.
	if len(q.Edges) > 0 && !q.connected() {
		return fmt.Errorf("query: pattern must be connected")
	}
	return nil
}

func (q *Graph) connected() bool {
	if len(q.Vertices) == 0 {
		return true
	}
	seen := make(map[string]bool)
	var stack []string
	stack = append(stack, q.Vertices[0].Name)
	seen[q.Vertices[0].Name] = true
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, e := range q.Edges {
			var next string
			switch v {
			case e.Src:
				next = e.Dst
			case e.Dst:
				next = e.Src
			default:
				continue
			}
			if !seen[next] {
				seen[next] = true
				stack = append(stack, next)
			}
		}
	}
	return len(seen) == len(q.Vertices)
}

// EdgesIncident returns the indices of query edges touching vertex name.
func (q *Graph) EdgesIncident(name string) []int {
	var out []int
	for i, e := range q.Edges {
		if e.Src == name || e.Dst == name {
			out = append(out, i)
		}
	}
	return out
}

// String renders the query graph in a MATCH-like syntax.
func (q *Graph) String() string {
	var b strings.Builder
	b.WriteString("MATCH ")
	for i, e := range q.Edges {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "(%s)-[%s", e.Src, e.Name)
		if e.Label != "" {
			fmt.Fprintf(&b, ":%s", e.Label)
		}
		fmt.Fprintf(&b, "]->(%s)", e.Dst)
	}
	if len(q.Preds) > 0 {
		b.WriteString(" WHERE ")
		for i, p := range q.Preds {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(p.String())
		}
	}
	return b.String()
}
