package query

import (
	"fmt"
	"strconv"
	"strings"

	"github.com/aplusdb/aplus/internal/pred"
	"github.com/aplusdb/aplus/internal/storage"
)

// Parse parses the MATCH/WHERE subset of openCypher used throughout the
// paper, e.g.
//
//	MATCH (c1:Customer)-[r1:O]->(a1), (a1)-[r2:W]->(a2)
//	WHERE c1.name = 'Alice', r2.currency = 'USD'
//
// Vertex parentheses are optional (the paper writes c1-[r1:O]->a1), WHERE
// terms may be separated by commas or AND, and an optional trailing
// RETURN COUNT(*) is accepted and ignored (execution always enumerates or
// counts matches).
func Parse(src string) (*Graph, error) {
	l, err := newLexer(src)
	if err != nil {
		return nil, err
	}
	q := &Graph{}
	if err := l.expectKeyword("MATCH"); err != nil {
		return nil, err
	}
	for {
		if err := parsePath(l, q); err != nil {
			return nil, err
		}
		if !l.acceptSymbol(",") {
			break
		}
	}
	if l.acceptKeyword("WHERE") {
		for {
			p, err := parsePred(l, q)
			if err != nil {
				return nil, err
			}
			q.Preds = append(q.Preds, p)
			if l.acceptSymbol(",") || l.acceptKeyword("AND") {
				continue
			}
			break
		}
	}
	if l.acceptKeyword("RETURN") {
		// Accept COUNT(*) or *; both mean "all matches".
		if l.acceptKeyword("COUNT") {
			if err := l.expectSymbol("("); err != nil {
				return nil, err
			}
			if err := l.expectSymbol("*"); err != nil {
				return nil, err
			}
			if err := l.expectSymbol(")"); err != nil {
				return nil, err
			}
		} else if !l.acceptSymbol("*") {
			return nil, fmt.Errorf("query: unsupported RETURN clause at offset %d", l.peek().pos)
		}
	}
	if t := l.peek(); t.kind != tokEOF {
		return nil, fmt.Errorf("query: trailing input %q at offset %d", t.text, t.pos)
	}
	if err := q.Validate(); err != nil {
		return nil, err
	}
	return q, nil
}

// parsePath parses node (edge node)*.
func parsePath(l *lexer, q *Graph) error {
	cur, err := parseNode(l, q)
	if err != nil {
		return err
	}
	for {
		t := l.peek()
		if t.kind != tokSymbol || (t.text != "-" && t.text != "<") {
			return nil
		}
		reverse := false
		if l.acceptSymbol("<") {
			reverse = true
		}
		if err := l.expectSymbol("-"); err != nil {
			return err
		}
		name, label := "", ""
		if l.acceptSymbol("[") {
			if l.peek().kind == tokIdent {
				name = l.next().text
			}
			if l.acceptSymbol(":") {
				if l.peek().kind != tokIdent {
					return fmt.Errorf("query: expected edge label at offset %d", l.peek().pos)
				}
				label = l.next().text
			}
			if err := l.expectSymbol("]"); err != nil {
				return err
			}
		}
		if err := l.expectSymbol("-"); err != nil {
			return err
		}
		if !reverse {
			if err := l.expectSymbol(">"); err != nil {
				return err
			}
		}
		next, err := parseNode(l, q)
		if err != nil {
			return err
		}
		if reverse {
			err = q.AddEdge(name, next, cur, label)
		} else {
			err = q.AddEdge(name, cur, next, label)
		}
		if err != nil {
			return err
		}
		cur = next
	}
}

// parseNode parses (name(:Label)?) or a bare name(:Label)? and returns the
// vertex name.
func parseNode(l *lexer, q *Graph) (string, error) {
	paren := l.acceptSymbol("(")
	if l.peek().kind != tokIdent {
		return "", fmt.Errorf("query: expected vertex at offset %d", l.peek().pos)
	}
	name := l.next().text
	label := ""
	if l.acceptSymbol(":") {
		if l.peek().kind != tokIdent {
			return "", fmt.Errorf("query: expected vertex label at offset %d", l.peek().pos)
		}
		label = l.next().text
	}
	if paren {
		if err := l.expectSymbol(")"); err != nil {
			return "", err
		}
	}
	if err := q.AddVertex(name, label); err != nil {
		return "", err
	}
	return name, nil
}

// parsePred parses one comparison: operand op operand.
func parsePred(l *lexer, q *Graph) (Pred, error) {
	lv, lp, lc, lIsVar, err := parseOperand(l, q)
	if err != nil {
		return Pred{}, err
	}
	if !lIsVar {
		_ = lc
		return Pred{}, fmt.Errorf("query: left side of a predicate must be var.prop at offset %d", l.peek().pos)
	}
	op, err := parseOp(l)
	if err != nil {
		return Pred{}, err
	}
	rv, rp, rc, rIsVar, err := parseOperand(l, q)
	if err != nil {
		return Pred{}, err
	}
	p := Pred{LeftVar: lv, LeftProp: lp, Op: op}
	if rIsVar {
		p.RightVar, p.RightProp = rv, rp
		// Optional banded offset: var.prop + N or var.prop - N.
		if shift, ok, err := parseShift(l); err != nil {
			return Pred{}, err
		} else if ok {
			p.RightShift = shift
		}
	} else {
		p.Const = rc
	}
	return p, nil
}

// parseShift parses an optional "+ N" / "- N" suffix on a variable operand.
func parseShift(l *lexer) (int64, bool, error) {
	neg := false
	switch {
	case l.peek().kind == tokSymbol && l.peek().text == "-" && l.peek2().kind == tokNumber:
		neg = true
	case l.peek().kind == tokSymbol && l.peek().text == "+" && l.peek2().kind == tokNumber:
	default:
		return 0, false, nil
	}
	l.next()
	v, err := parseNumber(l.next().text)
	if err != nil {
		return 0, false, err
	}
	if v.Kind != storage.KindInt {
		return 0, false, fmt.Errorf("query: shift offsets must be integers")
	}
	if neg {
		return -v.I, true, nil
	}
	return v.I, true, nil
}

// parseOperand returns either a (var, prop) pair or a constant.
func parseOperand(l *lexer, q *Graph) (v, prop string, c storage.Value, isVar bool, err error) {
	t := l.next()
	switch t.kind {
	case tokNumber:
		c, err = parseNumber(t.text)
		return "", "", c, false, err
	case tokString:
		return "", "", storage.Str(t.text), false, nil
	case tokIdent:
		// var.prop when followed by '.', else a bare constant (the paper
		// writes r2.currency=USD) or a known variable's implicit ID.
		if l.peek().kind == tokSymbol && l.peek().text == "." {
			l.next()
			if l.peek().kind != tokIdent {
				return "", "", storage.NullValue, false, fmt.Errorf("query: expected property after '.' at offset %d", l.peek().pos)
			}
			return t.text, l.next().text, storage.NullValue, true, nil
		}
		if strings.EqualFold(t.text, "true") || strings.EqualFold(t.text, "false") {
			return "", "", storage.Bool(strings.EqualFold(t.text, "true")), false, nil
		}
		if q != nil && (q.IsVertexVar(t.text) || q.IsEdgeVar(t.text)) {
			return t.text, pred.PropID, storage.NullValue, true, nil
		}
		return "", "", storage.Str(t.text), false, nil
	default:
		return "", "", storage.NullValue, false, fmt.Errorf("query: unexpected token %q at offset %d", t.text, t.pos)
	}
}

func parseNumber(s string) (storage.Value, error) {
	if strings.Contains(s, ".") {
		f, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return storage.NullValue, fmt.Errorf("query: bad number %q", s)
		}
		return storage.Float(f), nil
	}
	i, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		return storage.NullValue, fmt.Errorf("query: bad number %q", s)
	}
	return storage.Int(i), nil
}

func parseOp(l *lexer) (pred.Op, error) {
	t := l.next()
	switch t.text {
	case "=":
		return pred.EQ, nil
	case "<>":
		return pred.NE, nil
	case "<":
		if l.acceptSymbol("=") {
			return pred.LE, nil
		}
		return pred.LT, nil
	case ">":
		if l.acceptSymbol("=") {
			return pred.GE, nil
		}
		return pred.GT, nil
	case "<=":
		return pred.LE, nil
	case ">=":
		return pred.GE, nil
	default:
		return pred.EQ, fmt.Errorf("query: expected comparison operator at offset %d, got %q", t.pos, t.text)
	}
}
