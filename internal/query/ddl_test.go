package query

import (
	"testing"

	"github.com/aplusdb/aplus/internal/index"
	"github.com/aplusdb/aplus/internal/pred"
	"github.com/aplusdb/aplus/internal/storage"
)

func TestParseReconfigure(t *testing.T) {
	// Example 4's command.
	d, err := ParseDDL(`RECONFIGURE PRIMARY INDEXES
		PARTITION BY eadj.label, eadj.currency
		SORT BY vnbr.city`)
	if err != nil {
		t.Fatal(err)
	}
	r, ok := d.(Reconfigure)
	if !ok {
		t.Fatalf("got %T", d)
	}
	if len(r.Cfg.Partitions) != 2 {
		t.Fatalf("partitions = %v", r.Cfg.Partitions)
	}
	if r.Cfg.Partitions[0] != (index.PartitionKey{Var: pred.VarAdj, Prop: "label"}) {
		t.Error("partition 0 wrong")
	}
	if r.Cfg.Partitions[1] != (index.PartitionKey{Var: pred.VarAdj, Prop: "currency"}) {
		t.Error("partition 1 wrong")
	}
	if len(r.Cfg.Sorts) != 1 || r.Cfg.Sorts[0] != (index.SortKey{Var: pred.VarNbr, Prop: "city"}) {
		t.Errorf("sorts = %v", r.Cfg.Sorts)
	}
}

func TestParseReconfigureSortByNbrIDIsDefault(t *testing.T) {
	d, err := ParseDDL("RECONFIGURE PRIMARY INDEXES PARTITION BY eadj.label SORT BY vnbr.ID")
	if err != nil {
		t.Fatal(err)
	}
	r := d.(Reconfigure)
	if len(r.Cfg.Sorts) != 0 {
		t.Error("vnbr.ID alone should collapse to the default sort")
	}
	if r.Cfg.SortSignature() != "vnbr.ID" {
		t.Error("signature should be the default")
	}
}

func TestParseCreate1Hop(t *testing.T) {
	// Example 6's command.
	d, err := ParseDDL(`CREATE 1-HOP VIEW LargeUSDTrnx
		MATCH vs-[eadj]->vd
		WHERE eadj.currency = USD, eadj.amt > 10000
		INDEX AS FW-BW
		PARTITION BY eadj.label SORT BY vnbr.ID`)
	if err != nil {
		t.Fatal(err)
	}
	c, ok := d.(Create1Hop)
	if !ok {
		t.Fatalf("got %T", d)
	}
	if c.Def.View.Name != "LargeUSDTrnx" {
		t.Error("name lost")
	}
	if len(c.Def.Dirs) != 2 || c.Def.Dirs[0] != index.FW || c.Def.Dirs[1] != index.BW {
		t.Errorf("dirs = %v", c.Def.Dirs)
	}
	if len(c.Def.View.Pred.Terms) != 2 {
		t.Fatalf("pred = %v", c.Def.View.Pred)
	}
	t0 := c.Def.View.Pred.Terms[0]
	if t0.Left.Var != pred.VarAdj || t0.Left.Prop != "currency" || !t0.Const.Equal(storage.Str("USD")) {
		t.Errorf("term 0 = %v", t0)
	}
	if len(c.Def.Cfg.Partitions) != 1 || len(c.Def.Cfg.Sorts) != 0 {
		t.Errorf("cfg = %v", c.Def.Cfg)
	}
}

func TestParseCreate2HopDirections(t *testing.T) {
	cases := []struct {
		pattern string
		want    index.EPDirection
	}{
		{"vs-[eb]->vd-[eadj]->vnbr", index.DestinationFW},
		{"vs-[eb]->vd<-[eadj]-vnbr", index.DestinationBW},
		{"vnbr-[eadj]->vs-[eb]->vd", index.SourceFW},
		{"vnbr<-[eadj]-vs-[eb]->vd", index.SourceBW},
	}
	for _, c := range cases {
		d, err := ParseDDL("CREATE 2-HOP VIEW V MATCH " + c.pattern +
			" WHERE eb.date < eadj.date INDEX AS PARTITION BY eadj.label SORT BY vnbr.city")
		if err != nil {
			t.Fatalf("%s: %v", c.pattern, err)
		}
		got := d.(Create2Hop).Def.View.Dir
		if got != c.want {
			t.Errorf("%s -> %v, want %v", c.pattern, got, c.want)
		}
	}
}

func TestParseCreate2HopMoneyFlow(t *testing.T) {
	// Example 7's command (with unicode arrows as printed in the paper).
	d, err := ParseDDL(`CREATE 2-HOP VIEW MoneyFlow
		MATCH vs−[eb]→vd−[eadj]→vnbr
		WHERE eb.date<eadj.date, eadj.amt<eb.amt
		INDEX AS PARTITION BY eadj.label SORT BY vnbr.city`)
	if err != nil {
		t.Fatal(err)
	}
	c := d.(Create2Hop)
	if c.Def.View.Dir != index.DestinationFW {
		t.Error("direction should be Destination-FW")
	}
	if len(c.Def.View.Pred.Terms) != 2 {
		t.Fatalf("pred = %v", c.Def.View.Pred)
	}
	if len(c.Def.Cfg.Sorts) != 1 || c.Def.Cfg.Sorts[0].Prop != "city" {
		t.Errorf("sorts = %v", c.Def.Cfg.Sorts)
	}
}

func TestParse2HopWithoutIndexAs(t *testing.T) {
	// "In absence of an INDEX AS command, views are only partitioned by
	// edge IDs."
	d, err := ParseDDL("CREATE 2-HOP VIEW V MATCH vs-[eb]->vd-[eadj]->vnbr WHERE eadj.amt < eb.amt")
	if err != nil {
		t.Fatal(err)
	}
	c := d.(Create2Hop)
	if len(c.Def.Cfg.Partitions) != 0 || len(c.Def.Cfg.Sorts) != 0 {
		t.Error("config should be empty")
	}
}

func TestParseDDLErrors(t *testing.T) {
	bad := []string{
		"",
		"DROP x",
		"DROP VIEW",
		"DROP VIEW x y",
		"RECONFIGURE SECONDARY INDEXES",
		"CREATE 3-HOP VIEW x MATCH vs-[eb]->vd",
		"CREATE 1-HOP VIEW x MATCH a-[e]->b", // wrong reserved names
		"CREATE 1-HOP VIEW x MATCH vs-[eadj]->vd WHERE foo.bar = 1 INDEX AS FW",
		"CREATE 2-HOP VIEW x MATCH vs-[e1]->vd-[e2]->vnbr WHERE e1.a < e2.a", // missing eb/eadj
		"RECONFIGURE PRIMARY INDEXES PARTITION BY label",
		"RECONFIGURE PRIMARY INDEXES PARTITION BY eadj.label trailing",
	}
	for _, src := range bad {
		if _, err := ParseDDL(src); err == nil {
			t.Errorf("ParseDDL(%q) should fail", src)
		}
	}
}

func TestParseDropView(t *testing.T) {
	d, err := ParseDDL("DROP VIEW MoneyFlow")
	if err != nil {
		t.Fatal(err)
	}
	dv, ok := d.(DropView)
	if !ok || dv.Name != "MoneyFlow" {
		t.Fatalf("got %#v", d)
	}
}

func TestParseViewVarVarBothSides(t *testing.T) {
	d, err := ParseDDL(`CREATE 2-HOP VIEW V MATCH vs-[eb]->vd-[eadj]->vnbr
		WHERE eadj.amt < eb.amt, eb.date < eadj.date, eadj.amt > 5
		INDEX AS PARTITION BY eadj.label`)
	if err != nil {
		t.Fatal(err)
	}
	p := d.(Create2Hop).Def.View.Pred
	if len(p.Terms) != 3 {
		t.Fatalf("terms = %v", p)
	}
	// The predicate must be usable for subsumption against itself.
	if !pred.Subsumes(p, p) {
		t.Error("self-subsumption failed; normalization broken")
	}
}
