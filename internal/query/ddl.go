package query

import (
	"fmt"
	"strings"

	"github.com/aplusdb/aplus/internal/index"
	"github.com/aplusdb/aplus/internal/pred"
)

// DDL is a parsed index-definition command.
type DDL interface{ isDDL() }

// Reconfigure is the paper's RECONFIGURE PRIMARY INDEXES command.
type Reconfigure struct {
	Cfg index.Config
}

// Create1Hop is the paper's CREATE 1-HOP VIEW command.
type Create1Hop struct {
	Def index.VPDef
}

// Create2Hop is the paper's CREATE 2-HOP VIEW command.
type Create2Hop struct {
	Def index.EPDef
}

// DropView drops a secondary index by its view name.
type DropView struct {
	Name string
}

func (Reconfigure) isDDL() {}
func (Create1Hop) isDDL()  {}
func (Create2Hop) isDDL()  {}
func (DropView) isDDL()    {}

// ParseDDL parses one of the three index DDL commands:
//
//	RECONFIGURE PRIMARY INDEXES
//	    PARTITION BY eadj.label, eadj.currency SORT BY vnbr.city
//
//	CREATE 1-HOP VIEW LargeUSDTrnx
//	    MATCH vs-[eadj]->vd
//	    WHERE eadj.currency = 'USD', eadj.amt > 10000
//	    INDEX AS FW-BW PARTITION BY eadj.label SORT BY vnbr.ID
//
//	CREATE 2-HOP VIEW MoneyFlow
//	    MATCH vs-[eb]->vd-[eadj]->vnbr
//	    WHERE eb.date < eadj.date, eadj.amt < eb.amt
//	    INDEX AS PARTITION BY eadj.label SORT BY vnbr.city
//
//	DROP VIEW MoneyFlow
func ParseDDL(src string) (DDL, error) {
	l, err := newLexer(src)
	if err != nil {
		return nil, err
	}
	switch {
	case l.acceptKeyword("RECONFIGURE"):
		return parseReconfigure(l)
	case l.acceptKeyword("CREATE"):
		return parseCreateView(l)
	case l.acceptKeyword("DROP"):
		return parseDropView(l)
	default:
		return nil, fmt.Errorf("query: expected RECONFIGURE, CREATE, or DROP, got %q", l.peek().text)
	}
}

func parseDropView(l *lexer) (DDL, error) {
	if err := l.expectKeyword("VIEW"); err != nil {
		return nil, err
	}
	if l.peek().kind != tokIdent {
		return nil, fmt.Errorf("query: expected view name")
	}
	name := l.next().text
	if t := l.peek(); t.kind != tokEOF {
		return nil, fmt.Errorf("query: trailing input %q", t.text)
	}
	return DropView{Name: name}, nil
}

func parseReconfigure(l *lexer) (DDL, error) {
	if err := l.expectKeyword("PRIMARY"); err != nil {
		return nil, err
	}
	if err := l.expectKeyword("INDEXES"); err != nil {
		return nil, err
	}
	cfg, err := parseIndexConfig(l)
	if err != nil {
		return nil, err
	}
	if t := l.peek(); t.kind != tokEOF {
		return nil, fmt.Errorf("query: trailing input %q", t.text)
	}
	return Reconfigure{Cfg: cfg}, nil
}

func parseCreateView(l *lexer) (DDL, error) {
	hops := 0
	if t := l.peek(); t.kind == tokNumber {
		l.next()
		switch t.text {
		case "1":
			hops = 1
		case "2":
			hops = 2
		default:
			return nil, fmt.Errorf("query: only 1-HOP and 2-HOP views exist, got %s-HOP", t.text)
		}
	} else {
		return nil, fmt.Errorf("query: expected 1-HOP or 2-HOP after CREATE")
	}
	if err := l.expectSymbol("-"); err != nil {
		return nil, err
	}
	if err := l.expectKeyword("HOP"); err != nil {
		return nil, err
	}
	if err := l.expectKeyword("VIEW"); err != nil {
		return nil, err
	}
	if l.peek().kind != tokIdent {
		return nil, fmt.Errorf("query: expected view name")
	}
	name := l.next().text
	if err := l.expectKeyword("MATCH"); err != nil {
		return nil, err
	}
	if hops == 1 {
		return parse1HopBody(l, name)
	}
	return parse2HopBody(l, name)
}

// parse1HopBody parses "vs-[eadj]->vd WHERE ... INDEX AS dirs PARTITION BY
// ... SORT BY ...".
func parse1HopBody(l *lexer, name string) (DDL, error) {
	if err := expectPatternNode(l, "vs"); err != nil {
		return nil, err
	}
	if err := expectPatternEdge(l, "eadj", false); err != nil {
		return nil, err
	}
	if err := expectPatternNode(l, "vd"); err != nil {
		return nil, err
	}
	viewPred, err := parseViewWhere(l)
	if err != nil {
		return nil, err
	}
	def := index.VPDef{View: index.View1Hop{Name: name, Pred: viewPred}}
	if err := l.expectKeyword("INDEX"); err != nil {
		return nil, err
	}
	if err := l.expectKeyword("AS"); err != nil {
		return nil, err
	}
	// Directions: FW, BW, FW-BW, or BW-FW.
	for {
		switch {
		case l.acceptKeyword("FW"):
			def.Dirs = append(def.Dirs, index.FW)
		case l.acceptKeyword("BW"):
			def.Dirs = append(def.Dirs, index.BW)
		default:
			return nil, fmt.Errorf("query: expected FW or BW direction")
		}
		if !l.acceptSymbol("-") {
			break
		}
	}
	cfg, err := parseIndexConfig(l)
	if err != nil {
		return nil, err
	}
	def.Cfg = cfg
	if t := l.peek(); t.kind != tokEOF {
		return nil, fmt.Errorf("query: trailing input %q", t.text)
	}
	return Create1Hop{Def: def}, nil
}

// parse2HopBody parses the 2-hop pattern, inferring the partitioning
// direction from the positions of eb, eadj and vnbr (Section III-B2: "The
// location of the variable eb in the query implicitly defines the type of
// partitioning").
func parse2HopBody(l *lexer, name string) (DDL, error) {
	pat, err := parse2HopPattern(l)
	if err != nil {
		return nil, err
	}
	viewPred, err := parseViewWhere(l)
	if err != nil {
		return nil, err
	}
	def := index.EPDef{View: index.View2Hop{Name: name, Dir: pat, Pred: viewPred}}
	// INDEX AS is optional for 2-hop views ("In absence of an INDEX AS
	// command, views are only partitioned by edge IDs").
	if l.acceptKeyword("INDEX") {
		if err := l.expectKeyword("AS"); err != nil {
			return nil, err
		}
		cfg, err := parseIndexConfig(l)
		if err != nil {
			return nil, err
		}
		def.Cfg = cfg
	}
	if t := l.peek(); t.kind != tokEOF {
		return nil, fmt.Errorf("query: trailing input %q", t.text)
	}
	return Create2Hop{Def: def}, nil
}

// hop2Pattern is one parsed leg: variable name and arrow direction.
type hop2Leg struct {
	from, edge, to string
	reverse        bool // <-[e]- instead of -[e]->
}

func parse2HopPattern(l *lexer) (index.EPDirection, error) {
	n1, err := patternNode(l)
	if err != nil {
		return 0, err
	}
	leg1, err := patternEdge(l)
	if err != nil {
		return 0, err
	}
	n2, err := patternNode(l)
	if err != nil {
		return 0, err
	}
	leg2, err := patternEdge(l)
	if err != nil {
		return 0, err
	}
	n3, err := patternNode(l)
	if err != nil {
		return 0, err
	}
	legs := [2]hop2Leg{
		{from: n1, edge: leg1.edge, to: n2, reverse: leg1.reverse},
		{from: n2, edge: leg2.edge, to: n3, reverse: leg2.reverse},
	}
	// Canonical forms (after normalizing arrow direction):
	//   Destination-FW: vs-[eb]->vd-[eadj]->vnbr
	//   Destination-BW: vs-[eb]->vd<-[eadj]-vnbr
	//   Source-FW:      vnbr-[eadj]->vs-[eb]->vd
	//   Source-BW:      vnbr<-[eadj]-vs-[eb]->vd
	type edgeInfo struct{ src, dst string }
	info := map[string]edgeInfo{}
	for _, leg := range legs {
		src, dst := leg.from, leg.to
		if leg.reverse {
			src, dst = dst, src
		}
		info[leg.edge] = edgeInfo{src, dst}
	}
	eb, okB := info["eb"]
	eadj, okA := info["eadj"]
	if !okB || !okA {
		return 0, fmt.Errorf("query: 2-hop pattern must bind eb and eadj")
	}
	switch {
	case eb.src == "vs" && eb.dst == "vd" && eadj.src == "vd" && eadj.dst == "vnbr":
		return index.DestinationFW, nil
	case eb.src == "vs" && eb.dst == "vd" && eadj.src == "vnbr" && eadj.dst == "vd":
		return index.DestinationBW, nil
	case eb.src == "vs" && eb.dst == "vd" && eadj.src == "vnbr" && eadj.dst == "vs":
		return index.SourceFW, nil
	case eb.src == "vs" && eb.dst == "vd" && eadj.src == "vs" && eadj.dst == "vnbr":
		return index.SourceBW, nil
	default:
		return 0, fmt.Errorf("query: unrecognised 2-hop pattern (use vs/vd/vnbr with eb/eadj)")
	}
}

type edgeLeg struct {
	edge    string
	reverse bool
}

func patternNode(l *lexer) (string, error) {
	paren := l.acceptSymbol("(")
	if l.peek().kind != tokIdent {
		return "", fmt.Errorf("query: expected pattern vertex at offset %d", l.peek().pos)
	}
	name := l.next().text
	if paren {
		if err := l.expectSymbol(")"); err != nil {
			return "", err
		}
	}
	return name, nil
}

func patternEdge(l *lexer) (edgeLeg, error) {
	reverse := l.acceptSymbol("<")
	if err := l.expectSymbol("-"); err != nil {
		return edgeLeg{}, err
	}
	if err := l.expectSymbol("["); err != nil {
		return edgeLeg{}, err
	}
	if l.peek().kind != tokIdent {
		return edgeLeg{}, fmt.Errorf("query: expected edge variable at offset %d", l.peek().pos)
	}
	name := l.next().text
	if err := l.expectSymbol("]"); err != nil {
		return edgeLeg{}, err
	}
	if err := l.expectSymbol("-"); err != nil {
		return edgeLeg{}, err
	}
	if !reverse {
		if err := l.expectSymbol(">"); err != nil {
			return edgeLeg{}, err
		}
	}
	return edgeLeg{edge: name, reverse: reverse}, nil
}

func expectPatternNode(l *lexer, want string) error {
	got, err := patternNode(l)
	if err != nil {
		return err
	}
	if !strings.EqualFold(got, want) {
		return fmt.Errorf("query: expected pattern vertex %q, got %q", want, got)
	}
	return nil
}

func expectPatternEdge(l *lexer, want string, reverse bool) error {
	leg, err := patternEdge(l)
	if err != nil {
		return err
	}
	if !strings.EqualFold(leg.edge, want) || leg.reverse != reverse {
		return fmt.Errorf("query: expected edge -[%s]->, got %q", want, leg.edge)
	}
	return nil
}

// parseViewWhere parses the optional WHERE of a view definition into a
// predicate over the reserved variables vs, vd, eadj, eb, vnbr.
func parseViewWhere(l *lexer) (pred.Predicate, error) {
	var out pred.Predicate
	if !l.acceptKeyword("WHERE") {
		return out, nil
	}
	for {
		lv, lp, _, lIsVar, err := parseOperand(l, nil)
		if err != nil {
			return out, err
		}
		if !lIsVar {
			return out, fmt.Errorf("query: view predicate must start with var.prop")
		}
		leftVar, err := reservedVar(lv)
		if err != nil {
			return out, err
		}
		op, err := parseOp(l)
		if err != nil {
			return out, err
		}
		rv, rp, rc, rIsVar, err := parseOperand(l, nil)
		if err != nil {
			return out, err
		}
		if rIsVar {
			rightVar, err := reservedVar(rv)
			if err != nil {
				return out, err
			}
			shift, _, err := parseShift(l)
			if err != nil {
				return out, err
			}
			out = out.And(pred.VarTermShift(leftVar, lp, op, rightVar, rp, shift))
		} else {
			out = out.And(pred.ConstTerm(leftVar, lp, op, rc))
		}
		if l.acceptSymbol(",") || l.acceptKeyword("AND") {
			continue
		}
		return out, nil
	}
}

func reservedVar(name string) (pred.Var, error) {
	switch strings.ToLower(name) {
	case "eadj":
		return pred.VarAdj, nil
	case "vnbr":
		return pred.VarNbr, nil
	case "vs":
		return pred.VarSrc, nil
	case "vd":
		return pred.VarDst, nil
	case "eb":
		return pred.VarBound, nil
	default:
		return 0, fmt.Errorf("query: %q is not a reserved view variable (eadj, vnbr, vs, vd, eb)", name)
	}
}

// parseIndexConfig parses optional PARTITION BY and SORT BY clauses.
func parseIndexConfig(l *lexer) (index.Config, error) {
	var cfg index.Config
	if l.acceptKeyword("PARTITION") {
		if err := l.expectKeyword("BY"); err != nil {
			return cfg, err
		}
		for {
			v, prop, err := parseKeyRef(l)
			if err != nil {
				return cfg, err
			}
			cfg.Partitions = append(cfg.Partitions, index.PartitionKey{Var: v, Prop: prop})
			if !l.acceptSymbol(",") {
				break
			}
		}
	}
	if l.acceptKeyword("SORT") {
		if err := l.expectKeyword("BY"); err != nil {
			return cfg, err
		}
		for {
			v, prop, err := parseKeyRef(l)
			if err != nil {
				return cfg, err
			}
			// vnbr.ID is the implicit tiebreak; keep explicit mention only
			// if it is the sole criterion (it then means "default order").
			if !(v == pred.VarNbr && prop == pred.PropID) {
				cfg.Sorts = append(cfg.Sorts, index.SortKey{Var: v, Prop: prop})
			}
			if !l.acceptSymbol(",") {
				break
			}
		}
	}
	return cfg, nil
}

func parseKeyRef(l *lexer) (pred.Var, string, error) {
	if l.peek().kind != tokIdent {
		return 0, "", fmt.Errorf("query: expected eadj.<prop> or vnbr.<prop> at offset %d", l.peek().pos)
	}
	v, err := reservedVar(l.next().text)
	if err != nil {
		return 0, "", err
	}
	if err := l.expectSymbol("."); err != nil {
		return 0, "", err
	}
	if l.peek().kind != tokIdent {
		return 0, "", fmt.Errorf("query: expected property name at offset %d", l.peek().pos)
	}
	return v, l.next().text, nil
}
