package query

import (
	"fmt"
	"strings"
	"unicode"
	"unicode/utf8"
)

type tokKind uint8

const (
	tokEOF tokKind = iota
	tokIdent
	tokNumber
	tokString
	tokSymbol // single punctuation: ( ) [ ] - > < : . , = *
	tokOp     // multi-char comparison: <= >= <>
)

type token struct {
	kind tokKind
	text string
	pos  int
}

type lexer struct {
	src  string
	pos  int
	toks []token
	i    int
}

func newLexer(src string) (*lexer, error) {
	l := &lexer{src: src}
	if err := l.scan(); err != nil {
		return nil, err
	}
	return l, nil
}

func (l *lexer) scan() error {
	s := l.src
	for i := 0; i < len(s); {
		c, size := utf8.DecodeRuneInString(s[i:])
		switch {
		case unicode.IsSpace(c):
			i += size
		case c == '\'' || c == '"':
			quote := s[i]
			j := i + 1
			for j < len(s) && s[j] != quote {
				j++
			}
			if j >= len(s) {
				return fmt.Errorf("query: unterminated string at offset %d", i)
			}
			l.toks = append(l.toks, token{tokString, s[i+1 : j], i})
			i = j + 1
		case unicode.IsDigit(c):
			j := i
			for j < len(s) && (unicode.IsDigit(rune(s[j])) || s[j] == '.') {
				// Stop a trailing '.' that belongs to property access.
				if s[j] == '.' && (j+1 >= len(s) || !unicode.IsDigit(rune(s[j+1]))) {
					break
				}
				j++
			}
			l.toks = append(l.toks, token{tokNumber, s[i:j], i})
			i = j
		case isIdentStart(c):
			j := i
			for j < len(s) {
				r, rs := utf8.DecodeRuneInString(s[j:])
				if !isIdentPart(r) {
					break
				}
				j += rs
			}
			l.toks = append(l.toks, token{tokIdent, s[i:j], i})
			i = j
		case c == '<' && i+1 < len(s) && (s[i+1] == '=' || s[i+1] == '>'):
			l.toks = append(l.toks, token{tokOp, s[i : i+2], i})
			i += 2
		case c == '>' && i+1 < len(s) && s[i+1] == '=':
			l.toks = append(l.toks, token{tokOp, ">=", i})
			i += 2
		case strings.ContainsRune("()[]-><:.,=*+", c):
			l.toks = append(l.toks, token{tokSymbol, string(c), i})
			i++
		// Unicode dashes/arrows occasionally used in paper excerpts.
		case c == '−' || c == '–':
			l.toks = append(l.toks, token{tokSymbol, "-", i})
			i += size
		case c == '→':
			l.toks = append(l.toks, token{tokSymbol, "-", i}, token{tokSymbol, ">", i})
			i += size
		case c == '←':
			l.toks = append(l.toks, token{tokSymbol, "<", i}, token{tokSymbol, "-", i})
			i += size
		default:
			return fmt.Errorf("query: unexpected character %q at offset %d", c, i)
		}
	}
	l.toks = append(l.toks, token{tokEOF, "", len(s)})
	return nil
}

func isIdentStart(c rune) bool {
	return unicode.IsLetter(c) || c == '_' || c > 127 && !strings.ContainsRune("−–→←", c)
}

func isIdentPart(c rune) bool {
	return isIdentStart(c) || unicode.IsDigit(c)
}

func (l *lexer) peek() token  { return l.toks[l.i] }
func (l *lexer) peek2() token { return l.toks[min(l.i+1, len(l.toks)-1)] }

func (l *lexer) next() token {
	t := l.toks[l.i]
	if l.i < len(l.toks)-1 {
		l.i++
	}
	return t
}

// acceptKeyword consumes an identifier equal (case-insensitively) to kw.
func (l *lexer) acceptKeyword(kw string) bool {
	t := l.peek()
	if t.kind == tokIdent && strings.EqualFold(t.text, kw) {
		l.next()
		return true
	}
	return false
}

// expectKeyword consumes kw or errors.
func (l *lexer) expectKeyword(kw string) error {
	if !l.acceptKeyword(kw) {
		return fmt.Errorf("query: expected %q at offset %d, got %q", kw, l.peek().pos, l.peek().text)
	}
	return nil
}

// acceptSymbol consumes the given punctuation.
func (l *lexer) acceptSymbol(sym string) bool {
	t := l.peek()
	if (t.kind == tokSymbol || t.kind == tokOp) && t.text == sym {
		l.next()
		return true
	}
	return false
}

// expectSymbol consumes sym or errors.
func (l *lexer) expectSymbol(sym string) error {
	if !l.acceptSymbol(sym) {
		return fmt.Errorf("query: expected %q at offset %d, got %q", sym, l.peek().pos, l.peek().text)
	}
	return nil
}

// atKeyword reports whether the next token is the given keyword.
func (l *lexer) atKeyword(kw string) bool {
	t := l.peek()
	return t.kind == tokIdent && strings.EqualFold(t.text, kw)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
