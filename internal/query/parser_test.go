package query

import (
	"testing"

	"github.com/aplusdb/aplus/internal/pred"
	"github.com/aplusdb/aplus/internal/storage"
)

func TestParseExample1(t *testing.T) {
	// Example 1 of the paper, paren-free syntax.
	q, err := Parse("MATCH c1-[r1]->a1-[r2]->a2 WHERE c1.name = 'Alice'")
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Vertices) != 3 || len(q.Edges) != 2 || len(q.Preds) != 1 {
		t.Fatalf("shape = %d vertices, %d edges, %d preds", len(q.Vertices), len(q.Edges), len(q.Preds))
	}
	if q.Edges[0].Src != "c1" || q.Edges[0].Dst != "a1" {
		t.Error("edge 1 endpoints wrong")
	}
	p := q.Preds[0]
	if p.LeftVar != "c1" || p.LeftProp != "name" || p.Op != pred.EQ || !p.Const.Equal(storage.Str("Alice")) {
		t.Errorf("pred = %v", p)
	}
}

func TestParseEdgeLabelsAndParens(t *testing.T) {
	// Example 2 with label shorthand and parens mixed.
	q, err := Parse("MATCH (c1)-[r1:O]->a1-[r2:W]->(a2) WHERE c1.name = 'Alice'")
	if err != nil {
		t.Fatal(err)
	}
	if q.Edges[0].Label != "O" || q.Edges[1].Label != "W" {
		t.Errorf("labels = %q, %q", q.Edges[0].Label, q.Edges[1].Label)
	}
}

func TestParseVertexLabels(t *testing.T) {
	q, err := Parse("MATCH (c:Customer)-[:O]->(a:Account)")
	if err != nil {
		t.Fatal(err)
	}
	if q.Vertices[0].Label != "Customer" || q.Vertices[1].Label != "Account" {
		t.Error("vertex labels lost")
	}
	// Anonymous edge got a generated name.
	if q.Edges[0].Name == "" {
		t.Error("anonymous edge unnamed")
	}
}

func TestParseCyclicQuery(t *testing.T) {
	// Example 3: triangle.
	q, err := Parse("MATCH a1-[r1:W]->a2-[r2:W]->a3, a3-[r3:W]->a1 WHERE a1.ID = 0")
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Vertices) != 3 || len(q.Edges) != 3 {
		t.Fatalf("triangle shape wrong: %d vertices %d edges", len(q.Vertices), len(q.Edges))
	}
	if q.Preds[0].LeftProp != "ID" || !q.Preds[0].Const.Equal(storage.Int(0)) {
		t.Error("ID predicate wrong")
	}
}

func TestParseReverseArrow(t *testing.T) {
	q, err := Parse("MATCH a1<-[r1:W]-a2")
	if err != nil {
		t.Fatal(err)
	}
	if q.Edges[0].Src != "a2" || q.Edges[0].Dst != "a1" {
		t.Errorf("reverse edge endpoints = %s->%s", q.Edges[0].Src, q.Edges[0].Dst)
	}
}

func TestParseVarVarPredicates(t *testing.T) {
	q, err := Parse("MATCH a1-[e1]->a2-[e2]->a3 WHERE e1.date < e2.date AND e1.amt > e2.amt, a1.city = a3.city")
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Preds) != 3 {
		t.Fatalf("preds = %d, want 3", len(q.Preds))
	}
	if q.Preds[0].IsConst() || q.Preds[0].RightVar != "e2" {
		t.Error("var-var predicate mangled")
	}
}

func TestParseBareStringConstant(t *testing.T) {
	// The paper writes r2.currency=USD without quotes.
	q, err := Parse("MATCH a1-[r2:W]->a2 WHERE r2.currency = USD")
	if err != nil {
		t.Fatal(err)
	}
	if !q.Preds[0].Const.Equal(storage.Str("USD")) {
		t.Errorf("const = %v", q.Preds[0].Const)
	}
}

func TestParseReturnClauses(t *testing.T) {
	for _, src := range []string{
		"MATCH a-[e]->b RETURN COUNT(*)",
		"MATCH a-[e]->b RETURN *",
	} {
		if _, err := Parse(src); err != nil {
			t.Errorf("Parse(%q): %v", src, err)
		}
	}
}

func TestParseUnicodeArrows(t *testing.T) {
	// The paper's typography uses −, → and ←.
	q, err := Parse("MATCH vs−[e1]→vd, vd←[e2]−vx")
	if err != nil {
		t.Fatal(err)
	}
	if q.Edges[1].Src != "vx" || q.Edges[1].Dst != "vd" {
		t.Error("unicode reverse arrow mis-parsed")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"MATCH",
		"MATCH a-[e]->",
		"MATCH a-[e]->b WHERE",
		"MATCH a-[e]->b WHERE 5 = a.x",
		"MATCH a-[e]->b RETURN SUM(x)",
		"MATCH a-[e]->b, c-[f]->d", // disconnected
		"MATCH a-[e]->b trailing",
		"MATCH (a:X)-[e]->(a:Y)", // conflicting labels
		"MATCH a-[e]->b WHERE a.x ! 3",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

func TestParseFloatsAndComparators(t *testing.T) {
	q, err := Parse("MATCH a-[e]->b WHERE e.amt >= 1.5, e.amt <= 9, e.x <> 3")
	if err != nil {
		t.Fatal(err)
	}
	if q.Preds[0].Op != pred.GE || q.Preds[1].Op != pred.LE || q.Preds[2].Op != pred.NE {
		t.Error("comparators wrong")
	}
	if q.Preds[0].Const.Kind != storage.KindFloat {
		t.Error("float constant lost")
	}
}

func TestGraphString(t *testing.T) {
	q, err := Parse("MATCH a-[e:W]->b WHERE a.city = 'SF'")
	if err != nil {
		t.Fatal(err)
	}
	s := q.String()
	if s == "" {
		t.Error("empty render")
	}
	// Round-trip: rendered form parses back to the same shape.
	q2, err := Parse(s)
	if err != nil {
		t.Fatalf("re-parse %q: %v", s, err)
	}
	if len(q2.Edges) != len(q.Edges) || len(q2.Preds) != len(q.Preds) {
		t.Error("round trip changed shape")
	}
}

func TestEdgesIncident(t *testing.T) {
	q, err := Parse("MATCH a-[e1]->b, b-[e2]->c, a-[e3]->c")
	if err != nil {
		t.Fatal(err)
	}
	if got := q.EdgesIncident("b"); len(got) != 2 {
		t.Errorf("b incident to %d edges, want 2", len(got))
	}
}
