package csr

import (
	"math/rand"
	"sort"
	"testing"
)

func TestOffsetListsRoundTrip(t *testing.T) {
	b := NewOffsetBuilder(3, []int{2})
	// owner 0, bucket 0: offsets {4, 2}; bucket 1: {0}
	b.Add(OffsetEntry{Owner: 0, Offset: 4}, []uint16{0})
	b.Add(OffsetEntry{Owner: 0, Offset: 2}, []uint16{0})
	b.Add(OffsetEntry{Owner: 0, Offset: 0}, []uint16{1})
	// owner 2, bucket 1: {9}
	b.Add(OffsetEntry{Owner: 2, Offset: 9}, []uint16{1})
	o := b.Build(func(owner uint32) uint32 { return 10 })

	if o.Len() != 4 {
		t.Fatalf("Len = %d, want 4", o.Len())
	}
	l := o.BucketList(0, []uint16{0})
	if l.Len() != 2 {
		t.Fatalf("bucket list len = %d", l.Len())
	}
	// Without sort keys, offsets order ascending.
	if l.At(0) != 2 || l.At(1) != 4 {
		t.Errorf("bucket0 = [%d %d], want [2 4]", l.At(0), l.At(1))
	}
	if l := o.BucketList(0, []uint16{1}); l.Len() != 1 || l.At(0) != 0 {
		t.Error("bucket1 wrong")
	}
	if l := o.OwnerList(1); l.Len() != 0 {
		t.Error("owner1 should be empty")
	}
	if l := o.OwnerList(2); l.Len() != 1 || l.At(0) != 9 {
		t.Error("owner2 wrong")
	}
}

func TestOffsetListsSortKeys(t *testing.T) {
	b := NewOffsetBuilder(1, nil)
	b.Add(OffsetEntry{Owner: 0, Offset: 0, Sort: [2]uint64{30, 0}}, nil)
	b.Add(OffsetEntry{Owner: 0, Offset: 1, Sort: [2]uint64{10, 0}}, nil)
	b.Add(OffsetEntry{Owner: 0, Offset: 2, Sort: [2]uint64{20, 0}}, nil)
	o := b.Build(func(uint32) uint32 { return 3 })
	l := o.OwnerList(0)
	want := []uint32{1, 2, 0}
	for i := range want {
		if l.At(i) != want[i] {
			t.Fatalf("order by sort key: got %d at %d, want %d", l.At(i), i, want[i])
		}
	}
}

func TestOffsetListsWidthPerGroup(t *testing.T) {
	// 130 owners -> 3 groups. Group 0 has short lists (1 byte), group 1 has
	// a long list (2 bytes), group 2 short again.
	b := NewOffsetBuilder(130, nil)
	b.Add(OffsetEntry{Owner: 3, Offset: 200}, nil)
	b.Add(OffsetEntry{Owner: 70, Offset: 60000}, nil)
	b.Add(OffsetEntry{Owner: 129, Offset: 5}, nil)
	o := b.Build(func(owner uint32) uint32 {
		switch owner / GroupSize {
		case 0:
			return 256
		case 1:
			return 65000
		default:
			return 10
		}
	})
	if o.groupWidth[0] != 1 || o.groupWidth[1] != 2 || o.groupWidth[2] != 1 {
		t.Fatalf("group widths = %v", o.groupWidth)
	}
	if l := o.OwnerList(3); l.At(0) != 200 {
		t.Error("1-byte group decode")
	}
	if l := o.OwnerList(70); l.At(0) != 60000 {
		t.Error("2-byte group decode")
	}
	if l := o.OwnerList(129); l.At(0) != 5 {
		t.Error("group 2 decode")
	}
	// Packed data: 1 + 2 + 1 bytes.
	if len(o.data) != 4 {
		t.Errorf("data = %d bytes, want 4", len(o.data))
	}
}

func TestOffsetListsSharedLevels(t *testing.T) {
	// Primary with one level; shared secondary re-sorts the same edges.
	pb := NewBuilder(2, []int{2})
	pb.Add(Entry{Owner: 0, Nbr: 3, EID: 0}, []uint16{0})
	pb.Add(Entry{Owner: 0, Nbr: 1, EID: 1}, []uint16{0})
	pb.Add(Entry{Owner: 1, Nbr: 2, EID: 2}, []uint16{1})
	p := pb.Build()

	sb := NewSharedOffsetBuilder(p)
	// Secondary sorts bucket (0,0) in reverse: offsets {1,0} by sort key.
	sb.Add(OffsetEntry{Owner: 0, Offset: 0, Sort: [2]uint64{2, 0}}, []uint16{0})
	sb.Add(OffsetEntry{Owner: 0, Offset: 1, Sort: [2]uint64{1, 0}}, []uint16{0})
	sb.Add(OffsetEntry{Owner: 1, Offset: 0, Sort: [2]uint64{1, 0}}, []uint16{1})
	o := sb.Build(func(owner uint32) uint32 {
		lo, hi := p.OwnerRange(owner)
		return hi - lo
	})
	if !o.SharedLevels() {
		t.Fatal("expected shared levels")
	}
	l := o.BucketList(0, []uint16{0})
	if l.Len() != 2 || l.At(0) != 1 || l.At(1) != 0 {
		t.Errorf("shared bucket list wrong: len=%d", l.Len())
	}
	// Memory excludes the offsets array.
	mem := o.MemoryBytes()
	own := NewOffsetBuilder(2, []int{2})
	own.Add(OffsetEntry{Owner: 0, Offset: 0}, []uint16{0})
	own.Add(OffsetEntry{Owner: 0, Offset: 1}, []uint16{0})
	own.Add(OffsetEntry{Owner: 1, Offset: 0}, []uint16{1})
	o2 := own.Build(func(uint32) uint32 { return 2 })
	if mem >= o2.MemoryBytes() {
		t.Errorf("shared (%d bytes) should be smaller than owned (%d bytes)", mem, o2.MemoryBytes())
	}
}

func TestOffsetListsRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 15; trial++ {
		owners := 1 + rng.Intn(200)
		cards := []int{1 + rng.Intn(3)}
		b := NewOffsetBuilder(owners, cards)
		type rec struct {
			owner uint32
			c0    uint16
			off   uint32
		}
		var recs []rec
		maxList := uint32(1 + rng.Intn(100000))
		n := rng.Intn(500)
		for i := 0; i < n; i++ {
			r := rec{uint32(rng.Intn(owners)), uint16(rng.Intn(cards[0])), uint32(rng.Intn(int(maxList)))}
			recs = append(recs, r)
			b.Add(OffsetEntry{Owner: r.owner, Offset: r.off}, []uint16{r.c0})
		}
		o := b.Build(func(uint32) uint32 { return maxList })
		for owner := uint32(0); owner < uint32(owners); owner++ {
			for c0 := uint16(0); c0 < uint16(cards[0]); c0++ {
				var want []uint32
				for _, r := range recs {
					if r.owner == owner && r.c0 == c0 {
						want = append(want, r.off)
					}
				}
				sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
				l := o.BucketList(owner, []uint16{c0})
				if l.Len() != len(want) {
					t.Fatalf("len mismatch owner=%d", owner)
				}
				for i := range want {
					if l.At(i) != want[i] {
						t.Fatalf("decode mismatch: got %d want %d", l.At(i), want[i])
					}
				}
			}
		}
	}
}

func TestOffsetListsAtGlobal(t *testing.T) {
	b := NewOffsetBuilder(130, nil)
	for i := 0; i < 130; i++ {
		b.Add(OffsetEntry{Owner: uint32(i), Offset: uint32(i)}, nil)
	}
	o := b.Build(func(uint32) uint32 { return 130 })
	for i := uint32(0); i < 130; i++ {
		if o.At(i) != i {
			t.Fatalf("At(%d) = %d", i, o.At(i))
		}
	}
}

func TestUnpackIntoAllWidths(t *testing.T) {
	// One owner group per byte width: group g's primary lists are long
	// enough to force a (g+1)-byte offset width, and its offsets exercise
	// the width's full range.
	maxLen := []uint32{1 << 8, 1 << 16, 1 << 24, 1 << 25} // widths 1, 2, 3, 4
	b := NewOffsetBuilder(4*GroupSize, nil)
	rng := rand.New(rand.NewSource(7))
	want := map[uint32][]uint32{}
	for g := 0; g < 4; g++ {
		owner := uint32(g * GroupSize)
		n := 50 + g
		offs := make([]uint32, n)
		for i := range offs {
			offs[i] = rng.Uint32() % maxLen[g]
		}
		sort.Slice(offs, func(i, j int) bool { return offs[i] < offs[j] })
		for _, o := range offs {
			b.Add(OffsetEntry{Owner: owner, Offset: o}, nil)
		}
		want[owner] = offs
	}
	o := b.Build(func(owner uint32) uint32 { return maxLen[owner/GroupSize] })
	for g := 0; g < 4; g++ {
		owner := uint32(g * GroupSize)
		l := o.OwnerList(owner)
		if l.Len() != len(want[owner]) {
			t.Fatalf("group %d: len = %d, want %d", g, l.Len(), len(want[owner]))
		}
		dst := make([]uint32, l.Len())
		l.UnpackInto(dst)
		for i, w := range want[owner] {
			if dst[i] != w {
				t.Fatalf("group %d (width %d): dst[%d] = %d, want %d", g, g+1, i, dst[i], w)
			}
			if at := l.At(i); at != dst[i] {
				t.Fatalf("group %d: UnpackInto disagrees with At at %d: %d vs %d", g, i, dst[i], at)
			}
		}
		// Sublists must unpack with the correct base position.
		if l.Len() > 10 {
			sub := l.Sub(3, 10)
			subDst := make([]uint32, sub.Len())
			sub.UnpackInto(subDst)
			for i := range subDst {
				if subDst[i] != dst[3+i] {
					t.Fatalf("group %d: Sub unpack mismatch at %d", g, i)
				}
			}
		}
	}
	// Empty lists must be a no-op.
	var empty List
	empty.UnpackInto(nil)
}
