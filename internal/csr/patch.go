package csr

// Incremental-fold surgery (Section IV-C): instead of rebuilding a CSR from
// every entry — an O(E) sort — a successor is assembled from an immutable
// base by copying clean owners' bucket boundaries and packed ID ranges
// wholesale and re-packing only the owners an update delta touched. The two
// patchers in this file are the storage-level primitives; internal/index
// decides which owners are dirty and supplies their merged content.

// Patcher builds a successor CSR from an immutable base. Owners must be
// covered exactly once, in increasing order, by CopyRange (clean owners,
// taken from the base byte-for-byte) and BeginOwner/Append (dirty owners,
// re-packed from their merged entry lists); Build seals the result. The
// successor has the same partitioning levels as the base and may cover more
// owners (vertices added since the base was built).
type Patcher struct {
	base      *CSR
	numOwners int

	offsets []uint32
	nbr     []uint32
	eid     []uint64
	pos     uint32

	// Per-dirty-owner packing state: the bucket-offset base of the owner
	// being rebuilt and the last bucket an entry landed in.
	curBase    uint64
	lastBucket uint32
	open       bool
}

// NewPatcher starts a successor over base covering numOwners owners
// (>= base.NumOwners()). totalEntries is the exact entry count of the
// successor (base entries minus deletes plus inserts), used to size the
// payload arrays once.
func NewPatcher(base *CSR, numOwners, totalEntries int) *Patcher {
	if numOwners < base.numOwners {
		panic("csr: patched CSR cannot cover fewer owners than its base")
	}
	if totalEntries < 0 {
		totalEntries = 0
	}
	return &Patcher{
		base:      base,
		numOwners: numOwners,
		offsets:   make([]uint32, uint64(numOwners)*uint64(base.stride)+1),
		nbr:       make([]uint32, 0, totalEntries),
		eid:       make([]uint64, 0, totalEntries),
	}
}

// closeOwner finishes a dirty owner's bucket boundaries up to the stride.
func (p *Patcher) closeOwner() {
	if !p.open {
		return
	}
	for b := p.lastBucket + 1; b < p.base.stride; b++ {
		p.offsets[p.curBase+uint64(b)] = p.pos
	}
	p.open = false
}

// CopyRange copies owners [lo, hi) from the base wholesale: their bucket
// sizes and packed (nbr, eid) ranges are reused unchanged, only shifted by
// the net entry displacement accumulated so far. Owners at or past the
// base's build width (vertices added later) have empty base content.
func (p *Patcher) CopyRange(lo, hi uint32) {
	if lo >= hi {
		return
	}
	p.closeOwner()
	stride := uint64(p.base.stride)
	bHi := hi
	if bHi > uint32(p.base.numOwners) {
		bHi = uint32(p.base.numOwners)
	}
	if lo < bHi {
		oldLo := p.base.offsets[uint64(lo)*stride]
		oldHi := p.base.offsets[uint64(bHi)*stride]
		gLo, gHi := uint64(lo)*stride, uint64(bHi)*stride
		if p.pos == oldLo {
			copy(p.offsets[gLo:gHi], p.base.offsets[gLo:gHi])
		} else {
			shift := int64(p.pos) - int64(oldLo)
			for g := gLo; g < gHi; g++ {
				p.offsets[g] = uint32(int64(p.base.offsets[g]) + shift)
			}
		}
		p.nbr = append(p.nbr, p.base.nbr[oldLo:oldHi]...)
		p.eid = append(p.eid, p.base.eid[oldLo:oldHi]...)
		p.pos += oldHi - oldLo
	} else {
		bHi = lo
	}
	for g := uint64(bHi) * stride; g < uint64(hi)*stride; g++ {
		p.offsets[g] = p.pos
	}
}

// BeginOwner starts re-packing one dirty owner; its merged entries follow
// via Append, in full index order.
func (p *Patcher) BeginOwner(owner uint32) {
	p.closeOwner()
	p.curBase = uint64(owner) * uint64(p.base.stride)
	p.lastBucket = 0
	p.offsets[p.curBase] = p.pos
	p.open = true
}

// Append adds one entry to the owner opened by BeginOwner. codes are the
// entry's partition-level bucket codes (one per level, in range); entries
// must arrive in nondecreasing bucket order.
func (p *Patcher) Append(codes []uint16, nbr uint32, eid uint64) {
	var bucket uint32
	for i, c := range codes {
		bucket += uint32(c) * p.base.strides[i]
	}
	for b := p.lastBucket + 1; b <= bucket; b++ {
		p.offsets[p.curBase+uint64(b)] = p.pos
	}
	p.lastBucket = bucket
	p.nbr = append(p.nbr, nbr)
	p.eid = append(p.eid, eid)
	p.pos++
}

// Build seals and returns the successor CSR. Its offsets and payload arrays
// are element-for-element what a full Build over the merged entry set would
// produce, so checkpoint encodings of patched and rebuilt CSRs are
// bit-identical.
func (p *Patcher) Build() *CSR {
	p.closeOwner()
	p.offsets[uint64(p.numOwners)*uint64(p.base.stride)] = p.pos
	return &CSR{
		numOwners: p.numOwners,
		cards:     p.base.cards,
		strides:   p.base.strides,
		stride:    p.base.stride,
		offsets:   p.offsets,
		nbr:       p.nbr,
		eid:       p.eid,
	}
}

// ownerRepl is the rebuilt content of one dirty owner of an OffsetPatcher:
// offsets into the owner's new primary range plus each entry's composite
// bucket, in index order.
type ownerRepl struct {
	offs    []uint32
	buckets []uint32
}

// OffsetPatcher builds a successor OffsetLists from an immutable base,
// re-packing only the owner groups an update delta touched and copying
// every clean group's byte range wholesale. Because offsets are relative to
// their owner's primary range and widths are fixed per group of 64 owners,
// a group with no dirty owner is reusable byte-for-byte; a dirty group is
// re-encoded at its (possibly changed) width from the base's still-valid
// entries plus the replacements.
type OffsetPatcher struct {
	base      *OffsetLists
	numOwners int
	repl      map[uint32]ownerRepl
}

// NewOffsetPatcher starts a successor over base covering numOwners owners
// (>= base.NumOwners()).
func NewOffsetPatcher(base *OffsetLists, numOwners int) *OffsetPatcher {
	if numOwners < base.numOwners {
		panic("csr: patched offset lists cannot cover fewer owners than their base")
	}
	return &OffsetPatcher{base: base, numOwners: numOwners, repl: make(map[uint32]ownerRepl)}
}

// BucketOf composes partition-level codes into this index's bucket index.
func (o *OffsetLists) BucketOf(codes []uint16) uint32 {
	var bucket uint32
	for i, c := range codes {
		bucket += uint32(c) * o.strides[i]
	}
	return bucket
}

// ReplaceOwner supplies the rebuilt entries of one dirty owner in index
// order (bucket, then the view's sort order, then offset): offs are
// positions within the owner's NEW primary list, buckets the composite
// bucket of each entry (see BucketOf). Every owner whose primary list or
// view membership changed must be replaced — with nil slices when its new
// list is empty.
func (p *OffsetPatcher) ReplaceOwner(owner uint32, offs, buckets []uint32) {
	if len(offs) != len(buckets) {
		panic("csr: ReplaceOwner offs/buckets length mismatch")
	}
	p.repl[owner] = ownerRepl{offs: offs, buckets: buckets}
}

// replLen returns the successor entry count of one owner.
func (p *OffsetPatcher) replLen(owner uint32) int {
	if r, ok := p.repl[owner]; ok {
		return len(r.offs)
	}
	if int(owner) < p.base.numOwners {
		return p.base.OwnerList(owner).Len()
	}
	return 0
}

// Build assembles the successor. ownerListLen must return each owner's NEW
// primary list length (the per-group width sizing basis, exactly as in
// OffsetBuilder.Build); sharedWith, when non-nil, is the new primary CSR
// whose partition-level offsets the successor shares (the base must then
// share levels too). The result is element-for-element what a full
// OffsetBuilder run over the merged entry set would produce.
func (p *OffsetPatcher) Build(ownerListLen func(owner uint32) uint32, sharedWith *CSR) *OffsetLists {
	base := p.base
	o := &OffsetLists{
		numOwners: p.numOwners,
		cards:     base.cards,
		strides:   base.strides,
		stride:    base.stride,
	}
	nGroups := (p.numOwners + GroupSize - 1) / GroupSize
	oldNGroups := (base.numOwners + GroupSize - 1) / GroupSize

	dirtyGroup := make([]bool, nGroups)
	for owner := range p.repl {
		dirtyGroup[owner/GroupSize] = true
	}

	// Widths and layout. Clean groups keep their width (no owner's primary
	// list changed); dirty groups re-derive it from the new lengths.
	o.groupWidth = make([]uint8, nGroups)
	o.groupByte = make([]uint64, nGroups+1)
	o.groupEntry = make([]uint32, nGroups+1)
	var bytePos uint64
	var entryPos uint32
	for g := 0; g < nGroups; g++ {
		hi := (g + 1) * GroupSize
		if hi > p.numOwners {
			hi = p.numOwners
		}
		var width uint8
		var cnt uint32
		if !dirtyGroup[g] && g < oldNGroups {
			width = base.groupWidth[g]
			cnt = base.groupEntry[g+1] - base.groupEntry[g]
		} else {
			var maxLen uint32
			for v := g * GroupSize; v < hi; v++ {
				if l := ownerListLen(uint32(v)); l > maxLen {
					maxLen = l
				}
				cnt += uint32(p.replLen(uint32(v)))
			}
			width = widthFor(maxLen)
		}
		o.groupWidth[g] = width
		o.groupByte[g] = bytePos
		o.groupEntry[g] = entryPos
		bytePos += uint64(cnt) * uint64(width)
		entryPos += cnt
	}
	o.groupByte[nGroups] = bytePos
	o.groupEntry[nGroups] = entryPos
	o.data = make([]byte, bytePos)

	// Payload: clean groups copy wholesale, dirty groups re-encode.
	for g := 0; g < nGroups; g++ {
		if !dirtyGroup[g] && g < oldNGroups {
			copy(o.data[o.groupByte[g]:o.groupByte[g+1]], base.data[base.groupByte[g]:base.groupByte[g+1]])
			continue
		}
		hi := (g + 1) * GroupSize
		if hi > p.numOwners {
			hi = p.numOwners
		}
		ei := o.groupEntry[g]
		for v := g * GroupSize; v < hi; v++ {
			if r, ok := p.repl[uint32(v)]; ok {
				for _, off := range r.offs {
					o.put(ei, uint32(g), off)
					ei++
				}
			} else if v < base.numOwners {
				l := base.OwnerList(uint32(v))
				for i, n := 0, l.Len(); i < n; i++ {
					o.put(ei, uint32(g), l.At(i))
					ei++
				}
			}
		}
	}

	// Bucket boundaries: shared successors reuse the new primary's offsets;
	// private ones recompute sizes (copied for clean owners, counted from
	// replacements for dirty ones) and prefix-sum.
	if sharedWith != nil {
		if !base.sharedLevels {
			panic("csr: patched offset lists cannot become level-sharing")
		}
		o.offsets = sharedWith.offsets
		o.sharedLevels = true
		return o
	}
	stride := uint64(o.stride)
	nBuckets := uint64(p.numOwners) * stride
	offs := make([]uint32, nBuckets+1)
	for v := 0; v < p.numOwners; v++ {
		gbase := uint64(v) * stride
		if r, ok := p.repl[uint32(v)]; ok {
			for _, b := range r.buckets {
				offs[gbase+uint64(b)+1]++
			}
		} else if v < base.numOwners {
			for b := uint64(0); b < stride; b++ {
				offs[gbase+b+1] += base.offsets[gbase+b+1] - base.offsets[gbase+b]
			}
		}
	}
	for i := uint64(1); i <= nBuckets; i++ {
		offs[i] += offs[i-1]
	}
	o.offsets = offs
	return o
}
