package csr

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

// buildSmall builds a CSR over 3 owners, 1 level of cardinality 2.
func buildSmall() *CSR {
	b := NewBuilder(3, []int{2})
	// owner 0: bucket0 -> nbrs {2,1}; bucket1 -> {5}
	b.Add(Entry{Owner: 0, Nbr: 2, EID: 10}, []uint16{0})
	b.Add(Entry{Owner: 0, Nbr: 1, EID: 11}, []uint16{0})
	b.Add(Entry{Owner: 0, Nbr: 5, EID: 12}, []uint16{1})
	// owner 2: bucket1 -> {7}
	b.Add(Entry{Owner: 2, Nbr: 7, EID: 13}, []uint16{1})
	return b.Build()
}

func TestCSRBucketRanges(t *testing.T) {
	c := buildSmall()
	if c.Len() != 4 {
		t.Fatalf("Len = %d, want 4", c.Len())
	}
	lo, hi := c.BucketRange(0, []uint16{0})
	if hi-lo != 2 {
		t.Fatalf("owner0/bucket0 size = %d, want 2", hi-lo)
	}
	// Within a bucket entries sort by neighbour ID.
	if c.Nbrs()[lo] != 1 || c.Nbrs()[lo+1] != 2 {
		t.Errorf("bucket not sorted by nbr: %v", c.Nbrs()[lo:hi])
	}
	lo, hi = c.BucketRange(0, []uint16{1})
	if hi-lo != 1 || c.Nbrs()[lo] != 5 {
		t.Error("owner0/bucket1 wrong")
	}
	// Empty owner.
	lo, hi = c.OwnerRange(1)
	if hi != lo {
		t.Error("owner1 should be empty")
	}
	lo, hi = c.OwnerRange(2)
	if hi-lo != 1 || c.EIDs()[lo] != 13 {
		t.Error("owner2 wrong")
	}
}

func TestCSRPrefixRangeSpansSublists(t *testing.T) {
	// Two levels: cardinality 2 and 3.
	b := NewBuilder(2, []int{2, 3})
	want := map[[3]uint16][]uint32{}
	n := uint32(0)
	for owner := uint16(0); owner < 2; owner++ {
		for c0 := uint16(0); c0 < 2; c0++ {
			for c1 := uint16(0); c1 < 3; c1++ {
				for k := 0; k < 2; k++ {
					b.Add(Entry{Owner: uint32(owner), Nbr: n, EID: uint64(n)}, []uint16{c0, c1})
					want[[3]uint16{owner, c0, c1}] = append(want[[3]uint16{owner, c0, c1}], n)
					n++
				}
			}
		}
	}
	c := b.Build()
	// Full owner range = 12 entries each.
	for owner := uint32(0); owner < 2; owner++ {
		lo, hi := c.OwnerRange(owner)
		if hi-lo != 12 {
			t.Fatalf("owner %d range size %d, want 12", owner, hi-lo)
		}
		// Prefix over level 0 only = 6 entries.
		for c0 := uint16(0); c0 < 2; c0++ {
			lo, hi := c.PrefixRange(owner, []uint16{c0})
			if hi-lo != 6 {
				t.Fatalf("prefix range size %d, want 6", hi-lo)
			}
		}
		// Fully specified buckets contain exactly the entries added.
		for c0 := uint16(0); c0 < 2; c0++ {
			for c1 := uint16(0); c1 < 3; c1++ {
				lo, hi := c.BucketRange(owner, []uint16{c0, c1})
				got := c.Nbrs()[lo:hi]
				w := want[[3]uint16{uint16(owner), c0, c1}]
				if len(got) != len(w) {
					t.Fatalf("bucket size mismatch")
				}
				for i := range got {
					if got[i] != w[i] {
						t.Fatalf("bucket contents %v, want %v", got, w)
					}
				}
			}
		}
	}
}

func TestCSRSortKeysOrderWithinBucket(t *testing.T) {
	b := NewBuilder(1, nil)
	// Sort key 0 descending insert order, expect ascending after build.
	b.Add(Entry{Owner: 0, Nbr: 9, EID: 1, Sort: [2]uint64{30, 0}}, nil)
	b.Add(Entry{Owner: 0, Nbr: 1, EID: 2, Sort: [2]uint64{20, 0}}, nil)
	b.Add(Entry{Owner: 0, Nbr: 5, EID: 3, Sort: [2]uint64{10, 0}}, nil)
	// Tie on Sort[0], break on Sort[1].
	b.Add(Entry{Owner: 0, Nbr: 7, EID: 4, Sort: [2]uint64{10, 5}}, nil)
	c := b.Build()
	lo, hi := c.OwnerRange(0)
	got := c.Nbrs()[lo:hi]
	want := []uint32{5, 7, 1, 9}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sorted nbrs = %v, want %v", got, want)
		}
	}
}

func TestCSRRandomizedAgainstReference(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		owners := 1 + rng.Intn(70) // cross the 64-owner group boundary
		cards := []int{1 + rng.Intn(4), 1 + rng.Intn(3)}
		b := NewBuilder(owners, cards)
		type rec struct {
			owner  uint32
			c0, c1 uint16
			nbr    uint32
			eid    uint64
		}
		var recs []rec
		n := rng.Intn(300)
		for i := 0; i < n; i++ {
			r := rec{
				owner: uint32(rng.Intn(owners)),
				c0:    uint16(rng.Intn(cards[0])),
				c1:    uint16(rng.Intn(cards[1])),
				nbr:   uint32(rng.Intn(50)),
				eid:   uint64(i),
			}
			recs = append(recs, r)
			b.Add(Entry{Owner: r.owner, Nbr: r.nbr, EID: r.eid}, []uint16{r.c0, r.c1})
		}
		c := b.Build()
		if c.Len() != n {
			t.Fatalf("Len = %d, want %d", c.Len(), n)
		}
		for owner := uint32(0); owner < uint32(owners); owner++ {
			for c0 := uint16(0); c0 < uint16(cards[0]); c0++ {
				for c1 := uint16(0); c1 < uint16(cards[1]); c1++ {
					var want []uint32
					for _, r := range recs {
						if r.owner == owner && r.c0 == c0 && r.c1 == c1 {
							want = append(want, r.nbr)
						}
					}
					sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
					lo, hi := c.BucketRange(owner, []uint16{c0, c1})
					got := c.Nbrs()[lo:hi]
					if len(got) != len(want) {
						t.Fatalf("bucket (%d,%d,%d): size %d want %d", owner, c0, c1, len(got), len(want))
					}
					for i := range got {
						if got[i] != want[i] {
							t.Fatalf("bucket (%d,%d,%d): %v want %v", owner, c0, c1, got, want)
						}
					}
				}
			}
		}
	}
}

func TestPosInOwner(t *testing.T) {
	c := buildSmall()
	lo, hi := c.BucketRange(0, []uint16{1})
	if hi-lo != 1 {
		t.Fatal("setup")
	}
	if off := c.PosInOwner(0, lo); off != 2 {
		t.Errorf("PosInOwner = %d, want 2 (third entry of owner 0)", off)
	}
}

func TestWidthFor(t *testing.T) {
	cases := []struct {
		n    uint32
		want uint8
	}{
		{0, 1}, {1, 1}, {255, 1}, {256, 1}, {257, 2}, {1 << 16, 2}, {1<<16 + 1, 3}, {1 << 24, 3}, {1<<24 + 1, 4},
	}
	for _, c := range cases {
		if got := widthFor(c.n); got != c.want {
			t.Errorf("widthFor(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}

func TestMemoryBytesSplit(t *testing.T) {
	c := buildSmall()
	levels, ids := c.MemoryBytes()
	if levels <= 0 || ids != 4*4+4*8 {
		t.Errorf("MemoryBytes = (%d,%d)", levels, ids)
	}
}

func TestCSRQuickOwnerRangesPartition(t *testing.T) {
	// Property: owner ranges partition [0, Len) in owner order.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		owners := 1 + rng.Intn(10)
		b := NewBuilder(owners, []int{2})
		n := rng.Intn(100)
		for i := 0; i < n; i++ {
			b.Add(Entry{Owner: uint32(rng.Intn(owners)), Nbr: uint32(i), EID: uint64(i)},
				[]uint16{uint16(rng.Intn(2))})
		}
		c := b.Build()
		prev := uint32(0)
		for o := uint32(0); o < uint32(owners); o++ {
			lo, hi := c.OwnerRange(o)
			if lo != prev || hi < lo {
				return false
			}
			prev = hi
		}
		return int(prev) == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
