package csr

import (
	"math/rand"
	"sort"
	"testing"
)

// TestCSRThreeLevelModel checks a three-level nested CSR against a naive
// map-based model, including prefix ranges at every depth — the deepest
// configuration the workloads use (vertex ID + edge label + categorical
// property).
func TestCSRThreeLevelModel(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	owners := 40
	cards := []int{3, 2, 4}
	b := NewBuilder(owners, cards)
	type key struct {
		owner      uint32
		c0, c1, c2 uint16
	}
	model := map[key][]uint32{}
	for i := 0; i < 600; i++ {
		k := key{
			owner: uint32(rng.Intn(owners)),
			c0:    uint16(rng.Intn(cards[0])),
			c1:    uint16(rng.Intn(cards[1])),
			c2:    uint16(rng.Intn(cards[2])),
		}
		nbr := uint32(rng.Intn(100))
		model[k] = append(model[k], nbr)
		b.Add(Entry{Owner: k.owner, Nbr: nbr, EID: uint64(i)}, []uint16{k.c0, k.c1, k.c2})
	}
	c := b.Build()
	for owner := uint32(0); owner < uint32(owners); owner++ {
		// Depth 3: exact buckets.
		for c0 := uint16(0); c0 < 3; c0++ {
			for c1 := uint16(0); c1 < 2; c1++ {
				for c2 := uint16(0); c2 < 4; c2++ {
					want := append([]uint32(nil), model[key{owner, c0, c1, c2}]...)
					sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
					lo, hi := c.BucketRange(owner, []uint16{c0, c1, c2})
					got := c.Nbrs()[lo:hi]
					if len(got) != len(want) {
						t.Fatalf("bucket size mismatch at (%d,%d,%d,%d)", owner, c0, c1, c2)
					}
					for i := range got {
						if got[i] != want[i] {
							t.Fatalf("bucket contents mismatch")
						}
					}
				}
			}
		}
		// Depth 1 and 2 prefixes must equal the union of their children.
		for c0 := uint16(0); c0 < 3; c0++ {
			lo, hi := c.PrefixRange(owner, []uint16{c0})
			var n uint32
			for c1 := uint16(0); c1 < 2; c1++ {
				l2, h2 := c.PrefixRange(owner, []uint16{c0, c1})
				n += h2 - l2
				if l2 < lo || h2 > hi {
					t.Fatal("child range escapes parent")
				}
			}
			if n != hi-lo {
				t.Fatalf("children do not tile parent at owner %d level %d", owner, c0)
			}
		}
	}
}

// TestOffsetListsResolveThroughPrimary checks the full secondary-index
// path: offsets stored relative to an owner's primary range must resolve
// to exactly the (nbr, eid) pairs they were built from.
func TestOffsetListsResolveThroughPrimary(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	owners := 90
	pb := NewBuilder(owners, []int{2})
	type entry struct {
		owner uint32
		nbr   uint32
		eid   uint64
		c0    uint16
	}
	var entries []entry
	for i := 0; i < 800; i++ {
		e := entry{uint32(rng.Intn(owners)), uint32(rng.Intn(70)), uint64(i), uint16(rng.Intn(2))}
		entries = append(entries, e)
		pb.Add(Entry{Owner: e.owner, Nbr: e.nbr, EID: e.eid}, []uint16{e.c0})
	}
	p := pb.Build()
	// Secondary keeps every third edge, identified by primary position.
	// A filtered view holds different edge sets per bucket, so it must own
	// its partition levels (sharing is only valid for predicate-free views
	// with identical partitioning — see index.BuildVertexPartitioned).
	sb := NewOffsetBuilder(owners, []int{2})
	keep := map[uint64]bool{}
	for owner := uint32(0); owner < uint32(owners); owner++ {
		lo, hi := p.OwnerRange(owner)
		for pos := lo; pos < hi; pos++ {
			if p.EIDs()[pos]%3 == 0 {
				keep[p.EIDs()[pos]] = true
				// Recover the bucket from the position by comparing
				// against bucket ranges.
				var code uint16
				for c := uint16(0); c < 2; c++ {
					l, h := p.BucketRange(owner, []uint16{c})
					if pos >= l && pos < h {
						code = c
					}
				}
				sb.Add(OffsetEntry{Owner: owner, Offset: pos - lo}, []uint16{code})
			}
		}
	}
	o := sb.Build(func(owner uint32) uint32 {
		lo, hi := p.OwnerRange(owner)
		return hi - lo
	})
	seen := map[uint64]bool{}
	for owner := uint32(0); owner < uint32(owners); owner++ {
		lo, _ := p.OwnerRange(owner)
		l := o.OwnerList(owner)
		for i := 0; i < l.Len(); i++ {
			pos := lo + l.At(i)
			eid := p.EIDs()[pos]
			if !keep[eid] {
				t.Fatalf("offset resolved to unindexed edge %d", eid)
			}
			seen[eid] = true
		}
	}
	if len(seen) != len(keep) {
		t.Fatalf("resolved %d edges, indexed %d", len(seen), len(keep))
	}
}
