package csr

import "sort"

// GroupSize is the number of owners that share one offset-list data page and
// hence one fixed offset width (Section IV-B: "groups of 64 vertices").
const GroupSize = 64

// OffsetEntry is one secondary-index record handed to an OffsetBuilder: the
// indexed edge is identified by its offset within the owner's primary list.
type OffsetEntry struct {
	Owner  uint32
	Offset uint32 // position of the edge within the owner's primary range
	Sort   [MaxSortKeys]uint64
	bucket uint32
}

// OffsetLists stores secondary A+ index lists as byte-packed offsets into
// primary ID lists. Offsets are fixed-width per group of 64 owners, using
// the fewest bytes that can represent the longest primary list in the group
// — the paper's space-efficiency technique (Section III-B3).
type OffsetLists struct {
	numOwners int
	cards     []int
	strides   []uint32
	stride    uint32

	// offsets gives bucket boundaries in entry counts; it may be shared
	// with a primary CSR (sharedLevels) and then costs nothing extra.
	offsets      []uint32
	sharedLevels bool

	data        []byte   // packed offset payload
	groupWidth  []uint8  // byte width per owner group
	groupByte   []uint64 // byte position where each group's data begins
	groupEntry  []uint32 // entry index where each group begins
	totalMemory int64
}

// OffsetBuilder accumulates offset entries and produces OffsetLists.
type OffsetBuilder struct {
	numOwners int
	cards     []int
	strides   []uint32
	stride    uint32
	entries   []OffsetEntry
	shared    *CSR // non-nil when partition levels are shared with a primary
}

// NewOffsetBuilder creates a builder with its own partitioning levels.
func NewOffsetBuilder(numOwners int, cards []int) *OffsetBuilder {
	b := &OffsetBuilder{numOwners: numOwners, cards: append([]int(nil), cards...)}
	b.strides, b.stride = computeStrides(cards)
	return b
}

// NewSharedOffsetBuilder creates a builder whose partitioning levels are
// shared with primary: the secondary index stores the same set of edges in
// each bucket (just re-sorted), so the primary's offsets array can be reused
// and is not counted against the secondary's memory (Section III-B3, "With
// no predicates and same partitioning structure").
func NewSharedOffsetBuilder(primary *CSR) *OffsetBuilder {
	return &OffsetBuilder{
		numOwners: primary.numOwners,
		cards:     primary.cards,
		strides:   primary.strides,
		stride:    primary.stride,
		shared:    primary,
	}
}

// Add records one entry. codes must match the builder's level count; for
// shared builders they must be the codes used in the primary index.
func (b *OffsetBuilder) Add(e OffsetEntry, codes []uint16) {
	var bucket uint32
	for i, c := range codes {
		bucket += uint32(c) * b.strides[i]
	}
	e.bucket = bucket
	b.entries = append(b.entries, e)
}

// Len returns the number of entries added so far.
func (b *OffsetBuilder) Len() int { return len(b.entries) }

// Build produces the OffsetLists. ownerListLen must return the length of
// each owner's primary list (used to size the per-group byte width exactly
// as the paper prescribes: the logarithm of the longest list of the 64
// owners, rounded up to whole bytes).
func (b *OffsetBuilder) Build(ownerListLen func(owner uint32) uint32) *OffsetLists {
	o := &OffsetLists{
		numOwners: b.numOwners,
		cards:     b.cards,
		strides:   b.strides,
		stride:    b.stride,
	}
	ents := b.entries
	sort.Slice(ents, func(i, j int) bool { return offsetEntryLess(&ents[i], &ents[j]) })

	if b.shared != nil {
		o.offsets = b.shared.offsets
		o.sharedLevels = true
	} else {
		nBuckets := uint64(b.numOwners) * uint64(b.stride)
		o.offsets = make([]uint32, nBuckets+1)
		for i := range ents {
			g := uint64(ents[i].Owner)*uint64(b.stride) + uint64(ents[i].bucket)
			o.offsets[g+1]++
		}
		for i := uint64(1); i <= nBuckets; i++ {
			o.offsets[i] += o.offsets[i-1]
		}
	}

	// Per-group widths from the longest primary list in each group.
	nGroups := (b.numOwners + GroupSize - 1) / GroupSize
	o.groupWidth = make([]uint8, nGroups)
	o.groupByte = make([]uint64, nGroups+1)
	o.groupEntry = make([]uint32, nGroups+1)
	for g := 0; g < nGroups; g++ {
		var maxLen uint32
		for v := g * GroupSize; v < (g+1)*GroupSize && v < b.numOwners; v++ {
			if l := ownerListLen(uint32(v)); l > maxLen {
				maxLen = l
			}
		}
		o.groupWidth[g] = widthFor(maxLen)
	}
	// Count entries per group, then lay out byte ranges.
	perGroup := make([]uint32, nGroups)
	for i := range ents {
		perGroup[ents[i].Owner/GroupSize]++
	}
	var bytePos uint64
	var entryPos uint32
	for g := 0; g < nGroups; g++ {
		o.groupByte[g] = bytePos
		o.groupEntry[g] = entryPos
		bytePos += uint64(perGroup[g]) * uint64(o.groupWidth[g])
		entryPos += perGroup[g]
	}
	o.groupByte[nGroups] = bytePos
	o.groupEntry[nGroups] = entryPos
	o.data = make([]byte, bytePos)
	for i := range ents {
		o.put(uint32(i), ents[i].Owner/GroupSize, ents[i].Offset)
	}
	b.entries = nil
	return o
}

func offsetEntryLess(a, b *OffsetEntry) bool {
	if a.Owner != b.Owner {
		return a.Owner < b.Owner
	}
	if a.bucket != b.bucket {
		return a.bucket < b.bucket
	}
	for k := 0; k < MaxSortKeys; k++ {
		if a.Sort[k] != b.Sort[k] {
			return a.Sort[k] < b.Sort[k]
		}
	}
	return a.Offset < b.Offset
}

// widthFor returns the number of bytes needed to store offsets below n.
func widthFor(n uint32) uint8 {
	switch {
	case n <= 1<<8:
		return 1
	case n <= 1<<16:
		return 2
	case n <= 1<<24:
		return 3
	default:
		return 4
	}
}

func (o *OffsetLists) put(entry, group, val uint32) {
	w := o.groupWidth[group]
	p := o.groupByte[group] + uint64(entry-o.groupEntry[group])*uint64(w)
	for b := uint8(0); b < w; b++ {
		o.data[p+uint64(b)] = byte(val >> (8 * b))
	}
}

// At returns the packed offset at global entry position i for an owner in
// the given group.
func (o *OffsetLists) At(i uint32) uint32 {
	g := o.groupOf(i)
	w := o.groupWidth[g]
	p := o.groupByte[g] + uint64(i-o.groupEntry[g])*uint64(w)
	var val uint32
	for b := uint8(0); b < w; b++ {
		val |= uint32(o.data[p+uint64(b)]) << (8 * b)
	}
	return val
}

func (o *OffsetLists) groupOf(entry uint32) int {
	// Binary search over group entry starts; groups are few and this is
	// outside the per-edge hot loop (ranges are resolved per list).
	lo, hi := 0, len(o.groupEntry)-1
	for lo < hi-1 {
		mid := (lo + hi) / 2
		if o.groupEntry[mid] <= entry {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo
}

// List is a decoded offset list: offsets into an owner's primary list range.
type List struct {
	o     *OffsetLists
	group int
	lo    uint32
	n     uint32
}

// NumOwners returns the number of owners covered at build time.
func (o *OffsetLists) NumOwners() int { return o.numOwners }

// BucketList returns the offset list for a fully or partially specified
// bucket under owner (prefix semantics as in CSR.PrefixRange). Owners added
// after the build have empty lists.
func (o *OffsetLists) BucketList(owner uint32, codes []uint16) List {
	if int(owner) >= o.numOwners {
		return List{o: o}
	}
	base := uint64(owner) * uint64(o.stride)
	var bucket, span uint32 = 0, o.stride
	for i, code := range codes {
		bucket += uint32(code) * o.strides[i]
		span = o.strides[i]
	}
	lo := o.offsets[base+uint64(bucket)]
	hi := o.offsets[base+uint64(bucket)+uint64(span)]
	return List{o: o, group: int(owner / GroupSize), lo: lo, n: hi - lo}
}

// OwnerList returns the full offset list of an owner.
func (o *OffsetLists) OwnerList(owner uint32) List {
	if int(owner) >= o.numOwners {
		return List{o: o}
	}
	base := uint64(owner) * uint64(o.stride)
	lo := o.offsets[base]
	hi := o.offsets[base+uint64(o.stride)]
	return List{o: o, group: int(owner / GroupSize), lo: lo, n: hi - lo}
}

// Len returns the number of offsets in the list.
func (l List) Len() int { return int(l.n) }

// Sub returns the sublist [lo, hi).
func (l List) Sub(lo, hi int) List {
	return List{o: l.o, group: l.group, lo: l.lo + uint32(lo), n: uint32(hi - lo)}
}

// At returns the i-th offset in the list.
func (l List) At(i int) uint32 {
	o := l.o
	w := o.groupWidth[l.group]
	p := o.groupByte[l.group] + uint64(l.lo+uint32(i)-o.groupEntry[l.group])*uint64(w)
	var val uint32
	for b := uint8(0); b < w; b++ {
		val |= uint32(o.data[p+uint64(b)]) << (8 * b)
	}
	return val
}

// UnpackInto bulk-decodes every packed offset of the list into dst, which
// must have length >= Len(). The group's byte width is resolved once and
// each width gets its own tight loop, instead of At's per-element group
// lookup and variable-width byte loop — the block-decode fast path the
// executor uses when materializing secondary lists into scratch buffers.
func (l List) UnpackInto(dst []uint32) {
	n := int(l.n)
	if n == 0 {
		return
	}
	o := l.o
	w := o.groupWidth[l.group]
	p := o.groupByte[l.group] + uint64(l.lo-o.groupEntry[l.group])*uint64(w)
	data := o.data[p : p+uint64(n)*uint64(w)]
	switch w {
	case 1:
		for i := 0; i < n; i++ {
			dst[i] = uint32(data[i])
		}
	case 2:
		for i := 0; i < n; i++ {
			dst[i] = uint32(data[2*i]) | uint32(data[2*i+1])<<8
		}
	case 3:
		for i := 0; i < n; i++ {
			dst[i] = uint32(data[3*i]) | uint32(data[3*i+1])<<8 | uint32(data[3*i+2])<<16
		}
	default:
		for i := 0; i < n; i++ {
			dst[i] = uint32(data[4*i]) | uint32(data[4*i+1])<<8 | uint32(data[4*i+2])<<16 | uint32(data[4*i+3])<<24
		}
	}
}

// Len returns the total number of indexed entries.
func (o *OffsetLists) Len() int {
	return int(o.groupEntry[len(o.groupEntry)-1])
}

// SharedLevels reports whether the partitioning levels are borrowed from the
// primary index.
func (o *OffsetLists) SharedLevels() bool { return o.sharedLevels }

// MemoryBytes estimates the footprint. Shared partitioning levels cost
// nothing; otherwise the offsets array is charged to this index.
func (o *OffsetLists) MemoryBytes() int64 {
	b := int64(len(o.data)) + int64(len(o.groupWidth)) + int64(len(o.groupByte))*8 + int64(len(o.groupEntry))*4
	if !o.sharedLevels {
		b += int64(len(o.offsets)) * 4
	}
	return b
}
