package csr

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
)

// randEntries builds a random entry set over numOwners owners with the given
// level cardinalities, including parallel duplicates.
func randEntries(rng *rand.Rand, numOwners, n int, cards []int) ([]Entry, [][]uint16) {
	entries := make([]Entry, n)
	codes := make([][]uint16, n)
	for i := range entries {
		cs := make([]uint16, len(cards))
		for j, c := range cards {
			cs[j] = uint16(rng.Intn(c))
		}
		entries[i] = Entry{
			Owner: uint32(rng.Intn(numOwners)),
			Nbr:   uint32(rng.Intn(numOwners)),
			EID:   uint64(i),
			Sort:  [MaxSortKeys]uint64{uint64(rng.Intn(4)), 0},
		}
		codes[i] = cs
	}
	return entries, codes
}

func buildCSR(numOwners int, cards []int, entries []Entry, codes [][]uint16) *CSR {
	b := NewBuilder(numOwners, cards)
	for i := range entries {
		b.Add(entries[i], codes[i])
	}
	return b.Build()
}

// TestPatcherMatchesFullBuild drives the CSR patcher with random dirty-owner
// sets — deletes, inserts, and new owners past the base — and requires the
// patched CSR to equal a full Build over the merged entry set, field for
// field (the bit-identical-checkpoint invariant).
func TestPatcherMatchesFullBuild(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 40; trial++ {
		numOwners := 1 + rng.Intn(40)
		cards := [][]int{nil, {3}, {2, 4}}[rng.Intn(3)]
		baseEntries, baseCodes := randEntries(rng, numOwners, rng.Intn(300), cards)
		base := buildCSR(numOwners, cards, baseEntries, baseCodes)

		// Mutate: grow the owner space, delete some base entries, insert new
		// ones into random owners.
		newOwners := numOwners + rng.Intn(10)
		dead := make(map[uint64]bool)
		for i := 0; i < rng.Intn(20); i++ {
			if len(baseEntries) > 0 {
				dead[baseEntries[rng.Intn(len(baseEntries))].EID] = true
			}
		}
		insEntries, insCodes := randEntries(rng, newOwners, rng.Intn(60), cards)
		for i := range insEntries {
			insEntries[i].EID += 1 << 20 // distinct from base EIDs
		}

		// Reference: full build over the merged set.
		var refE []Entry
		var refC [][]uint16
		for i := range baseEntries {
			if !dead[baseEntries[i].EID] {
				refE = append(refE, baseEntries[i])
				refC = append(refC, baseCodes[i])
			}
		}
		refE = append(refE, insEntries...)
		refC = append(refC, insCodes...)
		want := buildCSR(newOwners, cards, refE, refC)

		// Dirty owners: every owner that lost or gained an entry.
		dirty := make(map[uint32]bool)
		for i := range baseEntries {
			if dead[baseEntries[i].EID] {
				dirty[baseEntries[i].Owner] = true
			}
		}
		for i := range insEntries {
			dirty[insEntries[i].Owner] = true
		}
		var dirtyList []uint32
		for o := range dirty {
			dirtyList = append(dirtyList, o)
		}
		sort.Slice(dirtyList, func(i, j int) bool { return dirtyList[i] < dirtyList[j] })

		// Patch: copy clean ranges, re-pack dirty owners from the reference
		// set restricted to them (already in index order after a sort).
		type packed struct {
			e Entry
			c []uint16
		}
		byOwner := make(map[uint32][]packed)
		for i := range refE {
			if dirty[refE[i].Owner] {
				e := refE[i]
				var bucket uint32
				strides, _ := computeStrides(cards)
				for j, cd := range refC[i] {
					bucket += uint32(cd) * strides[j]
				}
				e.bucket = bucket
				byOwner[e.Owner] = append(byOwner[e.Owner], packed{e: e, c: refC[i]})
			}
		}
		for _, ps := range byOwner {
			sort.Slice(ps, func(i, j int) bool { return entryLess(&ps[i].e, &ps[j].e) })
		}
		pt := NewPatcher(base, newOwners, want.Len())
		prev := uint32(0)
		for _, o := range dirtyList {
			pt.CopyRange(prev, o)
			pt.BeginOwner(o)
			for _, p := range byOwner[o] {
				pt.Append(p.c, p.e.Nbr, p.e.EID)
			}
			prev = o + 1
		}
		pt.CopyRange(prev, uint32(newOwners))
		got := pt.Build()

		if !reflect.DeepEqual(got.offsets, want.offsets) {
			t.Fatalf("trial %d: offsets diverge\n got %v\nwant %v", trial, got.offsets, want.offsets)
		}
		if !reflect.DeepEqual(got.nbr, want.nbr) || !reflect.DeepEqual(got.eid, want.eid) {
			t.Fatalf("trial %d: payload diverges", trial)
		}
	}
}

// TestOffsetPatcherMatchesFullBuild drives the offset-list patcher with
// random dirty owners and requires group widths, byte layout, packed data,
// and bucket boundaries to equal a full OffsetBuilder run.
func TestOffsetPatcherMatchesFullBuild(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 40; trial++ {
		numOwners := 1 + rng.Intn(200) // several groups
		cards := [][]int{nil, {3}}[rng.Intn(2)]
		strides, _ := computeStrides(cards)

		// Primary list lengths per owner, before and after: dirty owners may
		// grow or shrink.
		oldLen := make([]uint32, numOwners)
		for i := range oldLen {
			oldLen[i] = uint32(rng.Intn(300))
		}
		type secEnt struct {
			owner, off, bucket uint32
			sort0              uint64
		}
		// genFor draws n entries for one owner with distinct offsets (offsets
		// are positions within the owner's primary list, unique by nature;
		// duplicates would make the reference sort's tie order unstable).
		genFor := func(owner uint32, listLen uint32, n int) []secEnt {
			if int(listLen) < n {
				n = int(listLen)
			}
			perm := rng.Perm(int(listLen))
			ents := make([]secEnt, 0, n)
			for k := 0; k < n; k++ {
				var bucket uint32
				for j, c := range cards {
					bucket += uint32(rng.Intn(c)) * strides[j]
				}
				ents = append(ents, secEnt{owner: owner, off: uint32(perm[k]), bucket: bucket, sort0: uint64(rng.Intn(5))})
			}
			return ents
		}
		var oldEnts []secEnt
		for o := 0; o < numOwners; o++ {
			oldEnts = append(oldEnts, genFor(uint32(o), oldLen[o], int(oldLen[o])/3)...)
		}
		build := func(n int, ents []secEnt, lens []uint32) *OffsetLists {
			b := NewOffsetBuilder(n, cards)
			for _, e := range ents {
				cs := codesOf(e.bucket, cards, strides)
				b.Add(OffsetEntry{Owner: e.owner, Offset: e.off, Sort: [MaxSortKeys]uint64{e.sort0, 0}}, cs)
			}
			return b.Build(func(o uint32) uint32 { return lens[o] })
		}
		base := build(numOwners, oldEnts, oldLen)

		// Dirty a few owners, grow the owner space.
		newOwners := numOwners + rng.Intn(70)
		newLen := make([]uint32, newOwners)
		copy(newLen, oldLen)
		dirty := make(map[uint32]bool)
		for i := 0; i < 1+rng.Intn(8); i++ {
			o := uint32(rng.Intn(newOwners))
			dirty[o] = true
			newLen[o] = uint32(rng.Intn(70000)) // may change the group width
		}
		var newEnts []secEnt
		for _, e := range oldEnts {
			if !dirty[e.owner] {
				newEnts = append(newEnts, e)
			}
		}
		for o := range dirty {
			newEnts = append(newEnts, genFor(o, newLen[o], int(newLen[o])/9000+rng.Intn(5))...)
		}
		want := build(newOwners, newEnts, newLen)

		// Patch.
		pt := NewOffsetPatcher(base, newOwners)
		byOwner := make(map[uint32][]secEnt)
		for _, e := range newEnts {
			if dirty[e.owner] {
				byOwner[e.owner] = append(byOwner[e.owner], e)
			}
		}
		for o := range dirty {
			es := byOwner[o]
			sort.Slice(es, func(i, j int) bool {
				a, b := es[i], es[j]
				if a.bucket != b.bucket {
					return a.bucket < b.bucket
				}
				if a.sort0 != b.sort0 {
					return a.sort0 < b.sort0
				}
				return a.off < b.off
			})
			offs := make([]uint32, len(es))
			buckets := make([]uint32, len(es))
			for i, e := range es {
				offs[i], buckets[i] = e.off, e.bucket
			}
			pt.ReplaceOwner(o, offs, buckets)
		}
		got := pt.Build(func(o uint32) uint32 { return newLen[o] }, nil)

		if !reflect.DeepEqual(got.groupWidth, want.groupWidth) {
			t.Fatalf("trial %d: widths diverge\n got %v\nwant %v", trial, got.groupWidth, want.groupWidth)
		}
		if !reflect.DeepEqual(got.groupByte, want.groupByte) || !reflect.DeepEqual(got.groupEntry, want.groupEntry) {
			t.Fatalf("trial %d: group layout diverges", trial)
		}
		if !reflect.DeepEqual(got.data, want.data) {
			t.Fatalf("trial %d: packed data diverges", trial)
		}
		if !reflect.DeepEqual(got.offsets, want.offsets) {
			t.Fatalf("trial %d: bucket boundaries diverge", trial)
		}
	}
}

func codesOf(bucket uint32, cards []int, strides []uint32) []uint16 {
	cs := make([]uint16, len(cards))
	for i := range cards {
		cs[i] = uint16(bucket / strides[i] % uint32(cards[i]))
	}
	return cs
}
