package csr

import (
	"testing"

	"github.com/aplusdb/aplus/internal/enc"
)

func TestCSRCodecRoundTrip(t *testing.T) {
	b := NewBuilder(5, []int{3, 2})
	add := func(owner, nbr uint32, eid uint64, c0, c1 uint16) {
		b.Add(Entry{Owner: owner, Nbr: nbr, EID: eid}, []uint16{c0, c1})
	}
	add(0, 1, 0, 0, 0)
	add(0, 2, 1, 1, 1)
	add(1, 0, 2, 2, 0)
	add(3, 4, 3, 0, 1)
	add(3, 2, 4, 0, 1)
	c := b.Build()

	w := enc.NewWriter()
	c.Encode(w)
	c2, err := DecodeCSR(enc.NewReader(w.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if c2.NumOwners() != c.NumOwners() || c2.Len() != c.Len() || c2.NumLevels() != c.NumLevels() {
		t.Fatal("shape mismatch")
	}
	for owner := uint32(0); owner < 5; owner++ {
		for c0 := uint16(0); c0 < 3; c0++ {
			for c1 := uint16(0); c1 < 2; c1++ {
				alo, ahi := c.BucketRange(owner, []uint16{c0, c1})
				blo, bhi := c2.BucketRange(owner, []uint16{c0, c1})
				if alo != blo || ahi != bhi {
					t.Fatalf("owner %d bucket (%d,%d): [%d,%d) vs [%d,%d)", owner, c0, c1, alo, ahi, blo, bhi)
				}
			}
		}
	}
	for i := range c.Nbrs() {
		if c.Nbrs()[i] != c2.Nbrs()[i] || c.EIDs()[i] != c2.EIDs()[i] {
			t.Fatalf("payload mismatch at %d", i)
		}
	}
}

func TestCSRCodecEmpty(t *testing.T) {
	c := NewBuilder(0, nil).Build()
	w := enc.NewWriter()
	c.Encode(w)
	c2, err := DecodeCSR(enc.NewReader(w.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if c2.Len() != 0 || c2.NumOwners() != 0 {
		t.Fatal("empty CSR roundtrip")
	}
}

func TestCSRCodecCorruption(t *testing.T) {
	b := NewBuilder(2, []int{2})
	b.Add(Entry{Owner: 0, Nbr: 1, EID: 0}, []uint16{1})
	c := b.Build()
	w := enc.NewWriter()
	c.Encode(w)
	full := w.Bytes()
	for cut := 0; cut < len(full); cut++ {
		if _, err := DecodeCSR(enc.NewReader(full[:cut])); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
	// Non-monotone offsets are rejected.
	w2 := enc.NewWriter()
	w2.Uvarint(uint64(c.numOwners))
	w2.Uvarint(1)
	w2.Uvarint(2)
	w2.U32s([]uint32{0, 1, 0, 1, 1}) // dips at bucket 2
	w2.U32s(c.nbr)
	w2.U64s(c.eid)
	if _, err := DecodeCSR(enc.NewReader(w2.Bytes())); err == nil {
		t.Fatal("non-monotone offsets accepted")
	}
}
