// Package csr implements the constant-depth nested compressed-sparse-row
// structure that stores A+ index adjacency lists (Section III and IV-B of
// the paper).
//
// A CSR indexes a set of adjacency entries under an "owner": the source or
// destination vertex for vertex-partitioned indexes, or the bound edge for
// edge-partitioned indexes. Below the owner level sit zero or more
// categorical partitioning levels (edge label, a categorical property, the
// neighbour's label, ...). Because every level has a fixed cardinality,
// bucket addresses are computed arithmetically, giving constant-time access
// to any sublist at any level. The innermost lists are either ID lists
// (4-byte neighbour IDs plus 8-byte edge IDs, as in the paper's primary
// indexes) or byte-packed offset lists (secondary indexes).
package csr

import (
	"fmt"
	"sort"
)

// MaxSortKeys is the number of nested sort criteria an index can carry on
// top of the implicit (neighbour ID, edge ID) tiebreak.
const MaxSortKeys = 2

// Entry is one adjacency record handed to a Builder.
type Entry struct {
	Owner uint32 // partitioning vertex or edge
	Nbr   uint32 // neighbour vertex ID
	EID   uint64 // edge ID
	// Sort holds the sort-key ordinals for the configured sort criteria;
	// unused slots must be zero. Entries within a bucket are ordered by
	// Sort[0], Sort[1], then neighbour ID, then edge ID.
	Sort [MaxSortKeys]uint64
	// bucket is the composite categorical bucket, filled by Builder.Add.
	bucket uint32
}

// CSR is an immutable nested-CSR index of ID lists.
type CSR struct {
	numOwners int
	cards     []int    // cardinality per partitioning level
	strides   []uint32 // bucket stride per level
	stride    uint32   // product of cards

	offsets []uint32 // len numOwners*stride+1, prefix sums of bucket sizes
	nbr     []uint32
	eid     []uint64
}

// Builder accumulates entries and produces a CSR.
type Builder struct {
	numOwners int
	cards     []int
	strides   []uint32
	stride    uint32
	entries   []Entry
}

// NewBuilder creates a builder for numOwners owners and the given
// partitioning-level cardinalities (possibly empty).
func NewBuilder(numOwners int, cards []int) *Builder {
	b := &Builder{numOwners: numOwners, cards: append([]int(nil), cards...)}
	b.strides, b.stride = computeStrides(cards)
	return b
}

func computeStrides(cards []int) ([]uint32, uint32) {
	strides := make([]uint32, len(cards))
	stride := uint32(1)
	for i := len(cards) - 1; i >= 0; i-- {
		strides[i] = stride
		stride *= uint32(cards[i])
	}
	return strides, stride
}

// Add records one adjacency entry. codes must have one bucket code per
// partitioning level.
func (b *Builder) Add(e Entry, codes []uint16) {
	var bucket uint32
	for i, c := range codes {
		bucket += uint32(c) * b.strides[i]
	}
	e.bucket = bucket
	b.entries = append(b.entries, e)
}

// Reserve pre-allocates capacity for n entries.
func (b *Builder) Reserve(n int) {
	if cap(b.entries) < n {
		entries := make([]Entry, len(b.entries), n)
		copy(entries, b.entries)
		b.entries = entries
	}
}

// Len returns the number of entries added so far.
func (b *Builder) Len() int { return len(b.entries) }

// Build sorts the entries into nested order and produces the CSR. The
// builder must not be reused afterwards.
func (b *Builder) Build() *CSR {
	c := &CSR{
		numOwners: b.numOwners,
		cards:     b.cards,
		strides:   b.strides,
		stride:    b.stride,
	}
	ents := b.entries
	sort.Slice(ents, func(i, j int) bool { return entryLess(&ents[i], &ents[j]) })
	nBuckets := uint64(b.numOwners) * uint64(b.stride)
	c.offsets = make([]uint32, nBuckets+1)
	c.nbr = make([]uint32, len(ents))
	c.eid = make([]uint64, len(ents))
	// Counting pass.
	for i := range ents {
		g := uint64(ents[i].Owner)*uint64(b.stride) + uint64(ents[i].bucket)
		c.offsets[g+1]++
	}
	for i := uint64(1); i <= nBuckets; i++ {
		c.offsets[i] += c.offsets[i-1]
	}
	// Entries are already globally sorted, so placement is sequential.
	for i := range ents {
		c.nbr[i] = ents[i].Nbr
		c.eid[i] = ents[i].EID
	}
	b.entries = nil
	return c
}

func entryLess(a, b *Entry) bool {
	if a.Owner != b.Owner {
		return a.Owner < b.Owner
	}
	if a.bucket != b.bucket {
		return a.bucket < b.bucket
	}
	for k := 0; k < MaxSortKeys; k++ {
		if a.Sort[k] != b.Sort[k] {
			return a.Sort[k] < b.Sort[k]
		}
	}
	if a.Nbr != b.Nbr {
		return a.Nbr < b.Nbr
	}
	return a.EID < b.EID
}

// NumOwners returns the number of owners the CSR covers.
func (c *CSR) NumOwners() int { return c.numOwners }

// NumLevels returns the number of nested partitioning levels.
func (c *CSR) NumLevels() int { return len(c.cards) }

// Cards returns the per-level cardinalities.
func (c *CSR) Cards() []int { return c.cards }

// Len returns the total number of stored entries.
func (c *CSR) Len() int { return len(c.nbr) }

// OwnerRange returns the [lo, hi) entry range of everything under owner.
// Owners added after the CSR was built have empty ranges (their edges live
// in update buffers until the next merge).
func (c *CSR) OwnerRange(owner uint32) (lo, hi uint32) {
	if int(owner) >= c.numOwners {
		n := uint32(len(c.nbr))
		return n, n
	}
	base := uint64(owner) * uint64(c.stride)
	return c.offsets[base], c.offsets[base+uint64(c.stride)]
}

// BucketRange returns the [lo, hi) entry range for a fully specified bucket.
func (c *CSR) BucketRange(owner uint32, codes []uint16) (lo, hi uint32) {
	if len(codes) != len(c.cards) {
		panic(fmt.Sprintf("csr: BucketRange got %d codes, index has %d levels", len(codes), len(c.cards)))
	}
	return c.PrefixRange(owner, codes)
}

// PrefixRange returns the [lo, hi) entry range for a partially specified
// bucket: codes may cover only the first k levels, in which case the range
// spans every deeper sublist. Nested layout keeps this range contiguous.
func (c *CSR) PrefixRange(owner uint32, codes []uint16) (lo, hi uint32) {
	if int(owner) >= c.numOwners {
		n := uint32(len(c.nbr))
		return n, n
	}
	base := uint64(owner) * uint64(c.stride)
	var bucket, span uint32 = 0, c.stride
	for i, code := range codes {
		bucket += uint32(code) * c.strides[i]
		span = c.strides[i]
	}
	return c.offsets[base+uint64(bucket)], c.offsets[base+uint64(bucket)+uint64(span)]
}

// Nbrs returns the neighbour-ID payload array. Slices of it are adjacency
// lists; callers must not mutate it.
func (c *CSR) Nbrs() []uint32 { return c.nbr }

// EIDs returns the edge-ID payload array.
func (c *CSR) EIDs() []uint64 { return c.eid }

// PosInOwner converts a global entry position to an offset relative to the
// owner's range start — the value stored in secondary offset lists.
func (c *CSR) PosInOwner(owner uint32, pos uint32) uint32 {
	lo, _ := c.OwnerRange(owner)
	return pos - lo
}

// MemoryBytes estimates the heap footprint: partitioning levels (offsets)
// plus ID lists. The split is reported separately so experiments can show
// the cost of adding a partitioning level (Table II's Dp row).
func (c *CSR) MemoryBytes() (levels, idLists int64) {
	return int64(len(c.offsets)) * 4, int64(len(c.nbr))*4 + int64(len(c.eid))*8
}
