package csr

// Checkpoint serialization of the nested-CSR structure. The bucket strides
// are derived from the per-level cardinalities, so only the cardinalities,
// the prefix-sum offsets, and the two payload arrays are written.

import (
	"fmt"

	"github.com/aplusdb/aplus/internal/enc"
)

// Encode appends a complete image of the CSR.
func (c *CSR) Encode(w *enc.Writer) {
	w.Uvarint(uint64(c.numOwners))
	w.Uvarint(uint64(len(c.cards)))
	for _, card := range c.cards {
		w.Uvarint(uint64(card))
	}
	w.U32s(c.offsets)
	w.U32s(c.nbr)
	w.U64s(c.eid)
}

// DecodeCSR reconstructs a CSR from an Encode image.
func DecodeCSR(r *enc.Reader) (*CSR, error) {
	c := &CSR{numOwners: int(r.Uvarint())}
	nLevels := r.Len(1)
	c.cards = make([]int, nLevels)
	for i := range c.cards {
		c.cards[i] = int(r.Uvarint())
		if c.cards[i] <= 0 {
			return nil, fmt.Errorf("csr: decoded level %d has cardinality %d", i, c.cards[i])
		}
	}
	c.strides, c.stride = computeStrides(c.cards)
	c.offsets = r.U32s()
	c.nbr = r.U32s()
	c.eid = r.U64s()
	if r.Err() != nil {
		return nil, r.Err()
	}
	nBuckets := uint64(c.numOwners) * uint64(c.stride)
	if uint64(len(c.offsets)) != nBuckets+1 {
		return nil, fmt.Errorf("csr: decoded offsets length %d, want %d", len(c.offsets), nBuckets+1)
	}
	if len(c.nbr) != len(c.eid) {
		return nil, fmt.Errorf("csr: decoded payload lengths differ (%d nbrs, %d eids)", len(c.nbr), len(c.eid))
	}
	if n := c.offsets[nBuckets]; int(n) != len(c.nbr) {
		return nil, fmt.Errorf("csr: decoded offsets cover %d entries, payload has %d", n, len(c.nbr))
	}
	for i := 1; i < len(c.offsets); i++ {
		if c.offsets[i] < c.offsets[i-1] {
			return nil, fmt.Errorf("csr: decoded offsets not monotone at bucket %d", i)
		}
	}
	return c, nil
}
