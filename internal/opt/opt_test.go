package opt

import (
	"fmt"
	"strings"
	"testing"

	"github.com/aplusdb/aplus/internal/exec"
	"github.com/aplusdb/aplus/internal/index"
	"github.com/aplusdb/aplus/internal/pred"
	"github.com/aplusdb/aplus/internal/query"
	"github.com/aplusdb/aplus/internal/storage"
)

func mustParse(t *testing.T, src string) *query.Graph {
	t.Helper()
	q, err := query.Parse(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	return q
}

func exampleStore(t *testing.T) *index.Store {
	t.Helper()
	s, err := index.NewStore(storage.ExampleGraph(), index.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// runQuery optimizes and executes, returning the count.
func runQuery(t *testing.T, s *index.Store, q *query.Graph, mode Mode) int64 {
	t.Helper()
	plan, err := Optimize(s, q, mode)
	if err != nil {
		t.Fatalf("optimize %v: %v", q, err)
	}
	rt := exec.NewRuntime(s)
	return plan.Count(rt)
}

func checkAgainstOracle(t *testing.T, s *index.Store, src string, modes ...Mode) {
	t.Helper()
	if len(modes) == 0 {
		modes = []Mode{ModeDefault, ModeBinaryJoin}
	}
	q := mustParse(t, src)
	want := ReferenceCount(s.Graph(), q)
	for _, mode := range modes {
		if got := runQuery(t, s, q, mode); got != want {
			plan, _ := Optimize(s, q, mode)
			t.Errorf("query %q mode %+v: got %d, oracle %d\nplan:\n%s", src, mode, got, want, plan.Explain())
		}
	}
}

func TestOptimizeBasicQueries(t *testing.T) {
	s := exampleStore(t)
	queries := []string{
		"MATCH (c:Customer)-[r:O]->(a:Account)",
		"MATCH c1-[r1]->a1-[r2]->a2 WHERE c1.name = 'Alice'",
		"MATCH c1-[r1:O]->a1-[r2:W]->a2 WHERE c1.name = 'Alice'",
		"MATCH a1-[r1:W]->a2-[r2:W]->a3, a3-[r3:W]->a1",
		"MATCH a1-[r1:W]->a2-[r2:W]->a3, a3-[r3:W]->a1 WHERE a1.ID = 0",
		"MATCH a1-[r2:W]->a2 WHERE r2.currency = '€'",
		"MATCH a1-[e]->a2 WHERE e.amt > 100, a2.city = 'BOS'",
		"MATCH a1-[e1]->a2<-[e2]-a3",
		"MATCH a1-[e1]->a2-[e2]->a3 WHERE e1.date < e2.date, e1.amt > e2.amt",
		"MATCH a1-[e1]->a2, a1-[e2]->a3 WHERE a2.city = a3.city",
		"MATCH (c:Customer)-[r:O]->(a:Account) WHERE a.city = 'SF'",
		"MATCH a-[e:DD]->b WHERE e.currency = USD", // label exists, value doesn't
		"MATCH a-[e:NoSuchLabel]->b",
	}
	for _, src := range queries {
		checkAgainstOracle(t, s, src)
	}
}

func TestOptimizeWithSecondaryIndexes(t *testing.T) {
	s := exampleStore(t)
	// City-sorted VP in both directions (the VPc of Table IV).
	if _, err := s.CreateVertexPartitioned(index.VPDef{
		View: index.View1Hop{Name: "VPc"},
		Dirs: []index.Direction{index.FW, index.BW},
		Cfg: index.Config{
			Partitions: index.DefaultConfig().Partitions,
			Sorts:      []index.SortKey{{Var: pred.VarNbr, Prop: storage.PropCity}},
		},
	}); err != nil {
		t.Fatal(err)
	}
	// MoneyFlow EP (Example 7).
	if _, err := s.CreateEdgePartitioned(index.EPDef{
		View: index.View2Hop{
			Name: "MoneyFlow",
			Dir:  index.DestinationFW,
			Pred: pred.Predicate{}.
				And(pred.VarTerm(pred.VarBound, storage.PropDate, pred.LT, pred.VarAdj, storage.PropDate)).
				And(pred.VarTerm(pred.VarBound, storage.PropAmount, pred.GT, pred.VarAdj, storage.PropAmount)),
		},
		Cfg: index.DefaultConfig(),
	}); err != nil {
		t.Fatal(err)
	}
	queries := []string{
		// MF1-like: same-city square.
		"MATCH a1-[e1]->a2, a4-[e4]->a1 WHERE a2.city = a4.city",
		// Money-flow path (EP applicable).
		"MATCH a1-[e1]->a2-[e2]->a3 WHERE e1.date < e2.date, e1.amt > e2.amt",
		// Edge-anchored money flow (Example 7).
		"MATCH a1-[e1]->a2-[e2]->a3 WHERE e1.eID = 12, e1.date < e2.date, e1.amt > e2.amt",
		// Chain with bound-vertex city equality (dynamic segment).
		"MATCH a1-[e1]->a2-[e2]->a3 WHERE a1.city = a2.city, a2.city = a3.city",
		// Mixed: city equality + inter-edge predicate.
		"MATCH a1-[e1]->a2, a1-[e2]->a3 WHERE a2.city = a3.city, e1.amt > 20",
	}
	for _, src := range queries {
		checkAgainstOracle(t, s, src, ModeDefault, ModePrimaryOnly, ModeBinaryJoin)
	}
}

func TestPlanUsesEPForAnchoredMoneyFlow(t *testing.T) {
	s := exampleStore(t)
	if _, err := s.CreateEdgePartitioned(index.EPDef{
		View: index.View2Hop{
			Name: "MoneyFlow",
			Dir:  index.DestinationFW,
			Pred: pred.Predicate{}.
				And(pred.VarTerm(pred.VarBound, storage.PropDate, pred.LT, pred.VarAdj, storage.PropDate)).
				And(pred.VarTerm(pred.VarBound, storage.PropAmount, pred.GT, pred.VarAdj, storage.PropAmount)),
		},
		Cfg: index.DefaultConfig(),
	}); err != nil {
		t.Fatal(err)
	}
	// Example 7: anchored at t13 (edge ID 12), one money-flow hop.
	q := mustParse(t, "MATCH a1-[e1]->a2-[e2]->a3 WHERE e1.eID = 12, e1.date < e2.date, e1.amt > e2.amt")
	plan, err := Optimize(s, q, ModeDefault)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan.Explain(), "MoneyFlow") {
		t.Errorf("plan should use the MoneyFlow EP index:\n%s", plan.Explain())
	}
	rt := exec.NewRuntime(s)
	got := plan.Count(rt)
	if want := ReferenceCount(s.Graph(), q); got != want {
		t.Fatalf("count = %d, want %d", got, want)
	}
	// The paper: the system evaluates this by scanning only one edge from
	// t13's list.
	if rt.ICost > 2 {
		t.Errorf("i-cost = %d; EP plan should touch at most 2 entries\n%s", rt.ICost, plan.Explain())
	}
}

func TestPlanUsesMultiExtendForSameCity(t *testing.T) {
	s := exampleStore(t)
	if _, err := s.CreateVertexPartitioned(index.VPDef{
		View: index.View1Hop{Name: "VPc"},
		Dirs: []index.Direction{index.FW, index.BW},
		Cfg: index.Config{
			Partitions: index.DefaultConfig().Partitions,
			Sorts:      []index.SortKey{{Var: pred.VarNbr, Prop: storage.PropCity}},
		},
	}); err != nil {
		t.Fatal(err)
	}
	q := mustParse(t, "MATCH a1-[e1]->a2, a4-[e4]->a1 WHERE a2.city = a4.city")
	// Under the default mode the optimizer may pick either MULTI-EXTEND or
	// an equivalent dynamic-segment probe; with segments disabled the
	// MULTI-EXTEND plan (the paper's Figure 6 shape) is the only sorted
	// option and must be chosen.
	plan, err := Optimize(s, q, Mode{DisableSegments: true})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan.Explain(), "MULTI-EXTEND") {
		t.Errorf("plan should use MULTI-EXTEND:\n%s", plan.Explain())
	}
	if got, want := runQuery(t, s, q, Mode{DisableSegments: true}), ReferenceCount(s.Graph(), q); got != want {
		t.Fatalf("MULTI-EXTEND count = %d, want %d", got, want)
	}
	// Without the index, the plan must fall back to extend+filter.
	plan2, err := Optimize(s, q, ModePrimaryOnly)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(plan2.Explain(), "MULTI-EXTEND") {
		t.Errorf("primary-only plan cannot multi-extend on city:\n%s", plan2.Explain())
	}
}

func TestBinaryJoinModeHasNoIntersections(t *testing.T) {
	s := exampleStore(t)
	q := mustParse(t, "MATCH a1-[r1:W]->a2-[r2:W]->a3, a3-[r3:W]->a1")
	plan, err := Optimize(s, q, ModeBinaryJoin)
	if err != nil {
		t.Fatal(err)
	}
	ex := plan.Explain()
	if strings.Contains(ex, "E/I") || strings.Contains(ex, "MULTI-EXTEND") {
		t.Errorf("binary-join plan contains intersections:\n%s", ex)
	}
	if !strings.Contains(ex, "CLOSE") {
		t.Errorf("binary-join triangle plan should close the cycle:\n%s", ex)
	}
}

func TestWCOJBeatsBinaryJoinOnICost(t *testing.T) {
	// On a dense-ish random graph, the triangle query's measured i-cost
	// under WCOJ should not exceed the binary-join plan's.
	g := randomGraph(60, 480, 1, 1, 7)
	s, err := index.NewStore(g, index.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	q := mustParse(t, "MATCH a1-[r1]->a2-[r2]->a3, a3-[r3]->a1")
	want := ReferenceCount(g, q)

	planW, err := Optimize(s, q, ModeDefault)
	if err != nil {
		t.Fatal(err)
	}
	rtW := exec.NewRuntime(s)
	if got := planW.Count(rtW); got != want {
		t.Fatalf("WCOJ count = %d, want %d", got, want)
	}
	planB, err := Optimize(s, q, ModeBinaryJoin)
	if err != nil {
		t.Fatal(err)
	}
	rtB := exec.NewRuntime(s)
	if got := planB.Count(rtB); got != want {
		t.Fatalf("binary count = %d, want %d", got, want)
	}
	if rtW.ICost > rtB.ICost {
		t.Errorf("WCOJ i-cost %d > binary %d", rtW.ICost, rtB.ICost)
	}
}

func TestOptimizeErrors(t *testing.T) {
	s := exampleStore(t)
	// Self loops unsupported.
	q := &query.Graph{
		Vertices: []query.Vertex{{Name: "a"}},
		Edges:    []query.Edge{{Name: "e", Src: "a", Dst: "a"}},
	}
	if _, err := Optimize(s, q, ModeDefault); err == nil {
		t.Error("self-loop should be rejected")
	}
}

func TestOptimizeSingleVertex(t *testing.T) {
	s := exampleStore(t)
	q := mustParse(t, "MATCH (a:Account) WHERE a.city = 'SF'")
	if got := runQuery(t, s, q, ModeDefault); got != 2 {
		t.Errorf("count = %d, want 2 (v1, v2)", got)
	}
}

func TestDynamicSegmentGuaranteesEquality(t *testing.T) {
	s := exampleStore(t)
	if _, err := s.CreateVertexPartitioned(index.VPDef{
		View: index.View1Hop{Name: "VPc"},
		Dirs: []index.Direction{index.FW},
		Cfg: index.Config{
			Partitions: index.DefaultConfig().Partitions,
			Sorts:      []index.SortKey{{Var: pred.VarNbr, Prop: storage.PropCity}},
		},
	}); err != nil {
		t.Fatal(err)
	}
	// a1 bound first (ID=0), then a2 via city-equality with a1: the plan
	// should use a dynamic city segment on VPc.
	q := mustParse(t, "MATCH a1-[e1]->a2 WHERE a1.ID = 0, a1.city = a2.city")
	plan, err := Optimize(s, q, ModeDefault)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan.Explain(), "seg(vnbr.city)") {
		t.Errorf("expected a dynamic city segment:\n%s", plan.Explain())
	}
	rt := exec.NewRuntime(s)
	if got, want := plan.Count(rt), ReferenceCount(s.Graph(), q); got != want {
		t.Fatalf("count = %d, want %d", got, want)
	}
}

// randomGraph builds a deterministic random multigraph with financial-style
// properties for cross-validation tests.
func randomGraph(nv, ne, vLabels, eLabels int, seed int64) *storage.Graph {
	g := storage.NewGraph()
	rng := newRand(seed)
	for i := 0; i < nv; i++ {
		g.AddVertex(fmt.Sprintf("VL%d", rng.next()%uint64(vLabels)))
	}
	cities := []string{"SF", "BOS", "LA", "NYC"}
	accs := []string{"CQ", "SV"}
	for i := 0; i < nv; i++ {
		v := storage.VertexID(i)
		must(g.SetVertexProp(v, storage.PropCity, storage.Str(cities[rng.next()%uint64(len(cities))])))
		must(g.SetVertexProp(v, storage.PropAcc, storage.Str(accs[rng.next()%2])))
	}
	for i := 0; i < ne; i++ {
		src := storage.VertexID(rng.next() % uint64(nv))
		dst := storage.VertexID(rng.next() % uint64(nv))
		e, err := g.AddEdge(src, dst, fmt.Sprintf("EL%d", rng.next()%uint64(eLabels)))
		must(err)
		must(g.SetEdgeProp(e, storage.PropAmount, storage.Int(int64(rng.next()%1000))))
		must(g.SetEdgeProp(e, storage.PropDate, storage.Int(int64(rng.next()%500))))
	}
	return g
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}

// newRand is a tiny splitmix64 for deterministic test data.
type splitmix struct{ x uint64 }

func newRand(seed int64) *splitmix { return &splitmix{uint64(seed)*2685821657736338717 + 1} }

func (s *splitmix) next() uint64 {
	s.x += 0x9e3779b97f4a7c15
	z := s.x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// TestRandomizedCrossValidation runs a battery of query shapes over random
// graphs and checks every mode agrees with the brute-force oracle.
func TestRandomizedCrossValidation(t *testing.T) {
	shapes := []string{
		"MATCH a-[e]->b",
		"MATCH a-[e:EL0]->b WHERE e.amt > 500",
		"MATCH a-[e1]->b-[e2]->c WHERE e1.date < e2.date",
		"MATCH a-[e1]->b-[e2]->c, c-[e3]->a",
		"MATCH a-[e1]->b, a-[e2]->c WHERE b.city = c.city",
		"MATCH (a:VL0)-[e1]->(b:VL0)-[e2]->(c:VL1)",
		"MATCH a-[e1]->b-[e2]->c WHERE e1.amt > e2.amt, b.acc = 'CQ'",
		"MATCH a-[e1]->b<-[e2]-c-[e3]->d WHERE a.city = 'SF'",
	}
	for trial := 0; trial < 4; trial++ {
		g := randomGraph(25+trial*10, 120+trial*60, 2, 2, int64(trial+1))
		s, err := index.NewStore(g, index.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		// Add a city-sorted secondary and a date EP to widen the plan space.
		if _, err := s.CreateVertexPartitioned(index.VPDef{
			View: index.View1Hop{Name: "VPc"},
			Dirs: []index.Direction{index.FW, index.BW},
			Cfg: index.Config{
				Partitions: index.DefaultConfig().Partitions,
				Sorts:      []index.SortKey{{Var: pred.VarNbr, Prop: storage.PropCity}},
			},
		}); err != nil {
			t.Fatal(err)
		}
		if _, err := s.CreateEdgePartitioned(index.EPDef{
			View: index.View2Hop{
				Name: "LaterFlow",
				Dir:  index.DestinationFW,
				Pred: pred.Predicate{}.And(pred.VarTerm(pred.VarBound, storage.PropDate, pred.LT, pred.VarAdj, storage.PropDate)),
			},
			Cfg: index.DefaultConfig(),
		}); err != nil {
			t.Fatal(err)
		}
		for _, src := range shapes {
			checkAgainstOracle(t, s, src, ModeDefault, ModePrimaryOnly, ModeBinaryJoin,
				Mode{DisableSegments: true}, Mode{DisableMultiExtend: true})
		}
	}
}
