package opt

import (
	"github.com/aplusdb/aplus/internal/pred"
	"github.com/aplusdb/aplus/internal/query"
	"github.com/aplusdb/aplus/internal/storage"
)

// eqOp mirrors pred.EQ for readability in this package.
const eqOp = pred.EQ

// ReferenceCount is a brute-force matcher used as a correctness oracle in
// tests and experiment validation: it enumerates assignments edge-by-edge
// with no indexes and evaluates every predicate on complete assignments.
// It is exponential and intended for small graphs only.
func ReferenceCount(g *storage.Graph, q *query.Graph) int64 {
	m := &refMatcher{g: g, q: q}
	m.vAssign = make([]storage.VertexID, len(q.Vertices))
	m.vBound = make([]bool, len(q.Vertices))
	m.eAssign = make([]storage.EdgeID, len(q.Edges))
	m.recurseEdges(0)
	return m.count
}

type refMatcher struct {
	g       *storage.Graph
	q       *query.Graph
	vAssign []storage.VertexID
	vBound  []bool
	eAssign []storage.EdgeID
	count   int64
}

func (m *refMatcher) recurseEdges(qe int) {
	if qe == len(m.q.Edges) {
		m.recurseIsolated(0)
		return
	}
	e := m.q.Edges[qe]
	si, _ := m.q.VertexIndex(e.Src)
	di, _ := m.q.VertexIndex(e.Dst)
	for i := 0; i < m.g.NumEdges(); i++ {
		ge := storage.EdgeID(i)
		if m.g.EdgeDeleted(ge) {
			continue
		}
		if e.Label != "" && m.g.Catalog().EdgeLabelName(m.g.EdgeLabel(ge)) != e.Label {
			continue
		}
		gs, gd := m.g.Src(ge), m.g.Dst(ge)
		if m.vBound[si] && m.vAssign[si] != gs {
			continue
		}
		if m.vBound[di] && m.vAssign[di] != gd {
			continue
		}
		sWas, dWas := m.vBound[si], m.vBound[di]
		m.vAssign[si], m.vBound[si] = gs, true
		m.vAssign[di], m.vBound[di] = gd, true
		m.eAssign[qe] = ge
		if m.labelsOK(si) && m.labelsOK(di) {
			m.recurseEdges(qe + 1)
		}
		m.vBound[si], m.vBound[di] = sWas, dWas
	}
}

func (m *refMatcher) labelsOK(vi int) bool {
	want := m.q.Vertices[vi].Label
	if want == "" {
		return true
	}
	return m.g.Catalog().VertexLabelName(m.g.VertexLabel(m.vAssign[vi])) == want
}

func (m *refMatcher) recurseIsolated(vi int) {
	if vi == len(m.q.Vertices) {
		if m.predsOK() {
			m.count++
		}
		return
	}
	if m.vBound[vi] {
		m.recurseIsolated(vi + 1)
		return
	}
	for v := 0; v < m.g.NumVertices(); v++ {
		m.vAssign[vi], m.vBound[vi] = storage.VertexID(v), true
		if m.labelsOK(vi) {
			m.recurseIsolated(vi + 1)
		}
		m.vBound[vi] = false
	}
}

func (m *refMatcher) predsOK() bool {
	for _, p := range m.q.Preds {
		l := m.valueOf(p.LeftVar, p.LeftProp)
		var r storage.Value
		if p.IsConst() {
			r = p.Const
		} else {
			r = pred.ApplyShift(m.valueOf(p.RightVar, p.RightProp), p.RightShift)
		}
		if !pred.Compare(l, p.Op, r) {
			return false
		}
	}
	return true
}

func (m *refMatcher) valueOf(name, prop string) storage.Value {
	prop = normalizeProp(prop)
	if vi, ok := m.q.VertexIndex(name); ok {
		v := m.vAssign[vi]
		switch prop {
		case pred.PropID:
			return storage.Int(int64(v))
		case pred.PropLabel:
			return storage.Str(m.g.Catalog().VertexLabelName(m.g.VertexLabel(v)))
		default:
			return m.g.VertexProp(v, prop)
		}
	}
	ei, _ := m.q.EdgeIndex(name)
	e := m.eAssign[ei]
	switch prop {
	case pred.PropID:
		return storage.Int(int64(e))
	case pred.PropLabel:
		return storage.Str(m.g.Catalog().EdgeLabelName(m.g.EdgeLabel(e)))
	default:
		return m.g.EdgeProp(e, prop)
	}
}
