package opt

import (
	"fmt"
	"math"
	"math/bits"
	"sort"
	"strings"

	"github.com/aplusdb/aplus/internal/exec"
	"github.com/aplusdb/aplus/internal/index"
	"github.com/aplusdb/aplus/internal/pred"
	"github.com/aplusdb/aplus/internal/query"
	"github.com/aplusdb/aplus/internal/storage"
)

// planner carries the optimization context.
type planner struct {
	s     *index.Store
	g     *storage.Graph
	q     *query.Graph
	mode  Mode
	stats stats
}

// state is a DP entry: the cheapest known pipeline binding a set of query
// vertices (and, implied, every query edge between them).
type state struct {
	mask    uint32 // bound query vertices
	emask   uint64 // bound query edges
	applied []bool // query predicates already enforced
	cost    float64
	card    float64
	ops     []exec.Op
	// extraTerms carries label residuals between beginExtend and the
	// trailing filter application.
	extraTerms []exec.CompiledTerm
}

func (st *state) boundV(i int) bool { return st.mask&(1<<uint(i)) != 0 }
func (st *state) boundE(j int) bool { return st.emask&(1<<uint(j)) != 0 }

func (st *state) clone() *state {
	ns := *st
	ns.applied = append([]bool(nil), st.applied...)
	ns.ops = append([]exec.Op(nil), st.ops...)
	return &ns
}

// Optimize produces the lowest-i-cost plan for q over the store's indexes
// under the given mode.
func Optimize(s *index.Store, q *query.Graph, mode Mode) (*exec.Plan, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	if len(q.Vertices) > 16 {
		return nil, fmt.Errorf("opt: queries with more than 16 vertices are not supported")
	}
	for _, e := range q.Edges {
		if e.Src == e.Dst {
			return nil, fmt.Errorf("opt: self-loop query edges are not supported")
		}
	}
	pl := &planner{s: s, g: s.Graph(), q: q, mode: mode, stats: newStats(s.Graph())}

	table := make(map[uint32]*state)
	consider := func(ns *state) {
		if cur, ok := table[ns.mask]; !ok || ns.cost < cur.cost {
			table[ns.mask] = ns
		}
	}
	for i := range q.Vertices {
		consider(pl.scanState(i))
	}
	for j := range q.Edges {
		if ns := pl.scanEdgeState(j); ns != nil {
			consider(ns)
		}
	}

	n := len(q.Vertices)
	full := uint32(1)<<uint(n) - 1
	for pc := 1; pc < n; pc++ {
		var masks []uint32
		for m := range table {
			if bits.OnesCount32(m) == pc {
				masks = append(masks, m)
			}
		}
		sort.Slice(masks, func(i, j int) bool { return masks[i] < masks[j] })
		for _, m := range masks {
			st := table[m]
			pl.extendAll(st, consider)
			if !pl.mode.DisableMultiExtend && !pl.mode.DisableWCOJ {
				pl.multiExtendAll(st, consider)
			}
		}
	}
	best, ok := table[full]
	if !ok {
		return nil, fmt.Errorf("opt: no plan found (disconnected pattern?)")
	}
	plan := &exec.Plan{
		Ops:            sinkIndependentExtends(best.ops, len(q.Vertices), len(q.Edges)),
		NumV:           len(q.Vertices),
		NumE:           len(q.Edges),
		EstimatedICost: best.cost,
	}
	for _, v := range q.Vertices {
		plan.VertexNames = append(plan.VertexNames, v.Name)
	}
	for _, e := range q.Edges {
		plan.EdgeNames = append(plan.EdgeNames, e.Name)
	}
	return plan, nil
}

// sinkIndependentExtends moves interior pure EXTENDs (one list, no sorted
// segment) whose bound variable and matched edge are never referenced by a
// later operator to the plan tail, preserving relative order. Such
// independent fan-outs contribute a pure multiplicity to every downstream
// tuple; at the tail they land inside the counting/aggregate fold boundary
// (exec's countFoldStart), which turns their enumeration into arithmetic.
// The match multiset is unchanged — the sunk operator's extensions are
// independent of everything that now runs before it — while the enumerated
// i-cost drops to exactly what the fold charges for the reordered pipeline.
func sinkIndependentExtends(ops []exec.Op, numV, numE int) []exec.Op {
	n := len(ops)
	if n < 3 {
		return ops // nothing interior to move
	}
	readV := make([]bool, numV)
	readE := make([]bool, numE)
	sinkable := make([]bool, n)
	any := false
	// Walk tail-first: at index i the masks hold the slots operators i+1..
	// read, so an operator is sinkable when nothing later reads what it
	// binds. Operator 0 (the partitioned root scan) never sinks.
	for i := n - 1; i >= 1; i-- {
		if e, ok := ops[i].(*exec.ExtendIntersectOp); ok && len(e.Lists) == 1 && e.Lists[0].Seg == nil {
			if !readV[e.TargetSlot] && !readE[e.Lists[0].EdgeSlot] {
				sinkable[i] = true
				any = true
			}
		}
		markOpReads(ops[i], readV, readE)
	}
	if !any || trailingSinkableRun(sinkable) {
		return ops // nothing moves: the sinkable ops already form the tail
	}
	body := make([]exec.Op, 0, n)
	tail := make([]exec.Op, 0, n)
	for i, op := range ops {
		if sinkable[i] {
			tail = append(tail, op)
		} else {
			body = append(body, op)
		}
	}
	return append(body, tail...)
}

// trailingSinkableRun reports whether every sinkable operator already sits
// in one contiguous run at the end of the plan (so sinking is a no-op).
func trailingSinkableRun(sinkable []bool) bool {
	i := len(sinkable) - 1
	for i >= 0 && sinkable[i] {
		i--
	}
	for ; i >= 0; i-- {
		if sinkable[i] {
			return false
		}
	}
	return true
}

// markOpReads marks the binding slots op reads under a bound prefix.
func markOpReads(op exec.Op, readV, readE []bool) {
	ref := func(r *exec.ListRef) {
		if r.Kind == exec.ListEP {
			readE[r.OwnerEdgeSlot] = true
		} else {
			readV[r.OwnerVertexSlot] = true
		}
		if r.Seg != nil && r.Seg.DynEq != nil {
			markOperandRead(*r.Seg.DynEq, readV, readE)
		}
	}
	terms := func(ts []exec.CompiledTerm) {
		for _, t := range ts {
			markOperandRead(t.Left, readV, readE)
			markOperandRead(t.Right, readV, readE)
		}
	}
	switch o := op.(type) {
	case *exec.ExtendIntersectOp:
		for i := range o.Lists {
			ref(&o.Lists[i])
		}
	case *exec.MultiExtendOp:
		for gi := range o.Groups {
			for i := range o.Groups[gi].Lists {
				ref(&o.Groups[gi].Lists[i])
			}
		}
	case *exec.CloseEdgeOp:
		readV[o.TargetSlot] = true
		r := o.List
		ref(&r)
	case *exec.FilterOp:
		terms(o.Terms)
	case *exec.ScanVertexOp:
		terms(o.Terms) // scans only ever lead a plan, but stay conservative
	case *exec.ScanEdgeOp:
		terms(o.Terms)
	default:
		// Unknown operator: assume it reads everything, so nothing sinks
		// past it.
		for i := range readV {
			readV[i] = true
		}
		for i := range readE {
			readE[i] = true
		}
	}
}

func markOperandRead(o exec.Operand, readV, readE []bool) {
	if o.IsConst {
		return
	}
	if o.IsEdge {
		readE[o.Slot] = true
	} else {
		readV[o.Slot] = true
	}
}

// scanState builds the initial state scanning query vertex i.
func (pl *planner) scanState(i int) *state {
	q := pl.q
	st := &state{
		mask:    1 << uint(i),
		applied: make([]bool, len(q.Preds)),
		card:    pl.stats.numV,
		cost:    pl.stats.numV,
	}
	op := &exec.ScanVertexOp{Slot: i}
	if lbl := q.Vertices[i].Label; lbl != "" {
		if lid, ok := pl.g.Catalog().LookupVertexLabel(lbl); ok {
			op.HasLabel, op.Label = true, lid
			st.card = pl.stats.vLabelCounts[lid]
		} else {
			op.HasLabel, op.Label = true, 0xffff
			st.card = 0
		}
	}
	for pi, p := range q.Preds {
		if !p.IsConst() || p.LeftVar != q.Vertices[i].Name {
			continue
		}
		prop := normalizeProp(p.LeftProp)
		if prop == pred.PropID && p.Op == pred.EQ && p.Const.Kind == storage.KindInt {
			v := storage.VertexID(p.Const.I)
			op.ExactID = &v
			st.cost = 1
			st.card = 1
			st.applied[pi] = true
			continue
		}
		op.Terms = append(op.Terms, exec.CompiledTerm{
			Left: exec.VertexOperand(i, prop), Op: p.Op, Right: exec.ConstOperand(p.Const),
		})
		st.card *= termSelectivity(p.Op)
		st.applied[pi] = true
	}
	st.ops = []exec.Op{op}
	if st.card < 1 {
		st.card = 1
	}
	return st
}

// scanEdgeState builds an initial state anchored at a query edge with an
// exact-ID predicate (Example 7's r1.eID = t13), or nil when j has none.
func (pl *planner) scanEdgeState(j int) *state {
	q := pl.q
	e := q.Edges[j]
	var exact *storage.EdgeID
	var exactPred int
	for pi, p := range q.Preds {
		if p.IsConst() && p.LeftVar == e.Name && normalizeProp(p.LeftProp) == pred.PropID &&
			p.Op == pred.EQ && p.Const.Kind == storage.KindInt {
			id := storage.EdgeID(p.Const.I)
			exact = &id
			exactPred = pi
			break
		}
	}
	if exact == nil {
		return nil
	}
	si, _ := q.VertexIndex(e.Src)
	di, _ := q.VertexIndex(e.Dst)
	st := &state{
		mask:    1<<uint(si) | 1<<uint(di),
		emask:   1 << uint(j),
		applied: make([]bool, len(q.Preds)),
		card:    1,
		cost:    1,
	}
	st.applied[exactPred] = true
	op := &exec.ScanEdgeOp{EdgeSlot: j, SrcSlot: si, DstSlot: di, ExactID: exact}
	// Label and local predicate checks.
	if e.Label != "" {
		op.Terms = append(op.Terms, exec.CompiledTerm{
			Left: exec.EdgeOperand(j, pred.PropLabel), Op: pred.EQ, Right: exec.ConstOperand(storage.Str(e.Label)),
		})
	}
	for _, vi := range []int{si, di} {
		if lbl := q.Vertices[vi].Label; lbl != "" {
			op.Terms = append(op.Terms, exec.CompiledTerm{
				Left: exec.VertexOperand(vi, pred.PropLabel), Op: pred.EQ, Right: exec.ConstOperand(storage.Str(lbl)),
			})
		}
	}
	st.ops = []exec.Op{op}
	// Close any parallel query edges between the same endpoints.
	for k, other := range q.Edges {
		if k == j || st.boundE(k) {
			continue
		}
		os, _ := q.VertexIndex(other.Src)
		od, _ := q.VertexIndex(other.Dst)
		if st.mask&(1<<uint(os)) != 0 && st.mask&(1<<uint(od)) != 0 {
			pl.closeEdge(st, k, os, od)
		}
	}
	pl.applyReadyFilters(st, nil)
	return st
}

// closeEdge appends a CLOSE operator matching query edge k whose endpoints
// (slots os -> od) are both bound.
func (pl *planner) closeEdge(st *state, k, os, od int) {
	p := pl.s.Primary()
	ref := exec.ListRef{
		Kind: exec.ListPrimary, Dir: index.FW, OwnerVertexSlot: os, EdgeSlot: k,
	}
	sorted := len(p.SortKeys()) == 0
	if lbl := pl.q.Edges[k].Label; lbl != "" {
		if codes, ok := p.ResolveCodes([]storage.Value{storage.Str(lbl)}); ok && matchesLabelLevel(p.PartitionKeys()) {
			ref.Codes = codes
		} else {
			// Label not consumable: filter below.
			defer func() {
				st.ops = append(st.ops, &exec.FilterOp{Terms: []exec.CompiledTerm{{
					Left: exec.EdgeOperand(k, pred.PropLabel), Op: pred.EQ, Right: exec.ConstOperand(storage.Str(lbl)),
				}}})
			}()
		}
	}
	if len(ref.Codes) < len(p.LevelCards()) {
		ref.Expand = exec.ExpandChoices(ref.Codes, p.LevelCards())
	}
	st.ops = append(st.ops, &exec.CloseEdgeOp{List: ref, TargetSlot: od, Sorted: sorted})
	st.emask |= 1 << uint(k)
	st.cost += st.card * pl.stats.avgPrimaryList(false, 0)
	st.card *= selCloseEdge
	if st.card < 0.01 {
		st.card = 0.01
	}
}

func matchesLabelLevel(parts []index.PartitionKey) bool {
	return len(parts) > 0 && parts[0].Var == pred.VarAdj && parts[0].Prop == pred.PropLabel
}

// applyReadyFilters appends a FILTER for every predicate whose variables
// are now bound and that no index access guaranteed. extraTerms are label
// residuals from the current step.
func (pl *planner) applyReadyFilters(st *state, extraTerms []exec.CompiledTerm) {
	var terms []exec.CompiledTerm
	terms = append(terms, extraTerms...)
	for pi, p := range pl.q.Preds {
		if st.applied[pi] || !pl.predReady(st, p) {
			continue
		}
		terms = append(terms, pl.compileQPred(p))
		st.applied[pi] = true
		st.card *= termSelectivity(p.Op)
	}
	if len(terms) > 0 {
		st.ops = append(st.ops, &exec.FilterOp{Terms: terms})
	}
	if st.card < 0.01 {
		st.card = 0.01
	}
}

func (pl *planner) predReady(st *state, p query.Pred) bool {
	if !pl.varBound(st, p.LeftVar) {
		return false
	}
	if !p.IsConst() && !pl.varBound(st, p.RightVar) {
		return false
	}
	return true
}

func (pl *planner) varBound(st *state, name string) bool {
	if i, ok := pl.q.VertexIndex(name); ok {
		return st.boundV(i)
	}
	if j, ok := pl.q.EdgeIndex(name); ok {
		return st.boundE(j)
	}
	return false
}

func (pl *planner) compileQPred(p query.Pred) exec.CompiledTerm {
	t := exec.CompiledTerm{Op: p.Op, Left: pl.operandFor(p.LeftVar, p.LeftProp)}
	if p.IsConst() {
		t.Right = exec.ConstOperand(p.Const)
	} else {
		t.Right = pl.operandFor(p.RightVar, p.RightProp)
		t.Right.Shift = p.RightShift
	}
	return t
}

func (pl *planner) operandFor(name, prop string) exec.Operand {
	prop = normalizeProp(prop)
	if i, ok := pl.q.VertexIndex(name); ok {
		return exec.VertexOperand(i, prop)
	}
	j, _ := pl.q.EdgeIndex(name)
	return exec.EdgeOperand(j, prop)
}

// edgeCands enumerates the candidate access paths for one query-edge
// extension from bound vertex slot u toward w.
func (pl *planner) edgeCands(st *state, qe, w, u int, dir index.Direction) []cand {
	var out []cand
	p := pl.s.Primary()
	d := idxDesc{
		kind: exec.ListPrimary, dir: dir,
		parts: p.PartitionKeys(), sorts: p.SortKeys(), cards: p.LevelCards(),
		baseSize:   pl.stats.avgPrimaryList(false, 0),
		resolve:    p.ResolveCodes,
		ownerVSlot: u, ownerESlot: -1,
	}
	if c, ok := pl.buildCand(st, d, pl.localTerms(qe, w, u, d, -1), qe, w); ok {
		out = append(out, c)
	}
	if pl.mode.DisableSecondary {
		return out
	}
	for _, vp := range pl.s.VertexIndexes() {
		if !vp.HasDirection(dir) {
			continue
		}
		vp := vp
		dirCopy := dir
		d := idxDesc{
			kind: exec.ListVP, dir: dir, vp: vp,
			resolved: vp.ResolvedPred(dir),
			parts:    vp.Config().Partitions, sorts: vp.Config().Sorts, cards: vp.LevelCards(dir),
			baseSize: pl.stats.avgVPList(vp, len(vp.Def().Dirs)),
			resolve: func(vals []storage.Value) ([]uint16, bool) {
				return vp.ResolveCodes(dirCopy, vals)
			},
			ownerVSlot: u, ownerESlot: -1,
		}
		if c, ok := pl.buildCand(st, d, pl.localTerms(qe, w, u, d, -1), qe, w); ok {
			out = append(out, c)
		}
	}
	// Edge-partitioned candidates need a matched bound edge adjacent at u.
	uName := pl.q.Vertices[u].Name
	for _, ep := range pl.s.EdgeIndexes() {
		if ep.EPDir().AdjDirection() != dir {
			continue
		}
		for qb := range pl.q.Edges {
			if !st.boundE(qb) {
				continue
			}
			qbe := pl.q.Edges[qb]
			if ep.EPDir().BoundIsDst() {
				if qbe.Dst != uName {
					continue
				}
			} else if qbe.Src != uName {
				continue
			}
			ep := ep
			d := idxDesc{
				kind: exec.ListEP, dir: dir, ep: ep,
				resolved: ep.ResolvedPred(),
				parts:    ep.Config().Partitions, sorts: ep.Config().Sorts, cards: ep.LevelCards(),
				baseSize:   pl.stats.avgEPList(ep),
				resolve:    ep.ResolveCodes,
				ownerVSlot: u, ownerESlot: qb,
			}
			if c, ok := pl.buildCand(st, d, pl.localTerms(qe, w, u, d, qb), qe, w); ok {
				out = append(out, c)
			}
		}
	}
	return out
}

// extendAll generates every single-target extension from st.
func (pl *planner) extendAll(st *state, consider func(*state)) {
	q := pl.q
	for w := range q.Vertices {
		if st.boundV(w) {
			continue
		}
		type edgeInfo struct {
			qe, u int
			dir   index.Direction
		}
		var infos []edgeInfo
		for qe, e := range q.Edges {
			si, _ := q.VertexIndex(e.Src)
			di, _ := q.VertexIndex(e.Dst)
			switch {
			case si == w && st.boundV(di):
				infos = append(infos, edgeInfo{qe, di, index.BW})
			case di == w && st.boundV(si):
				infos = append(infos, edgeInfo{qe, si, index.FW})
			}
			// Edges touching w whose other endpoint is unbound are matched
			// when that endpoint is extended later.
		}
		if len(infos) == 0 {
			continue
		}
		perEdge := make([][]cand, len(infos))
		for i, info := range infos {
			perEdge[i] = pl.edgeCands(st, info.qe, w, info.u, info.dir)
			if len(perEdge[i]) == 0 {
				perEdge[i] = nil
			}
		}
		viable := true
		for _, cs := range perEdge {
			if cs == nil {
				viable = false
			}
		}
		if !viable {
			continue
		}
		if len(infos) == 1 {
			for _, c := range perEdge[0] {
				pl.emitExtend(st, w, []cand{c}, consider)
			}
			continue
		}
		if pl.mode.DisableWCOJ {
			// Binary joins: extend along one edge, close the rest.
			for ext := range infos {
				chosen := bestCand(perEdge[ext], "")
				if chosen == nil {
					continue
				}
				ns := pl.beginExtend(st, w, []cand{*chosen})
				if ns == nil {
					consider(pl.emptyState(st))
					continue
				}
				extra := ns.extraTerms
				ns.extraTerms = nil
				for o := range infos {
					if o == ext {
						continue
					}
					qe := infos[o].qe
					si, _ := pl.q.VertexIndex(pl.q.Edges[qe].Src)
					di, _ := pl.q.VertexIndex(pl.q.Edges[qe].Dst)
					pl.closeEdge(ns, qe, si, di)
				}
				pl.applyReadyFilters(ns, extra)
				consider(ns)
			}
			continue
		}
		// WCOJ: all lists neighbour-sorted.
		if combo := pickAll(perEdge, "vnbr.ID"); combo != nil {
			pl.emitExtend(st, w, combo, consider)
		}
		// MULTI-EXTEND on a shared property sort. Only neighbour-property
		// sorts qualify: a neighbour has one value of a vnbr property, so
		// it sits in the same ordinal run of every list, whereas an edge
		// property varies per list and would drop matches.
		if !pl.mode.DisableMultiExtend {
			for _, sig := range sigsOf(perEdge[0]) {
				if sig == "vnbr.ID" || !strings.HasPrefix(sig, "vnbr.") {
					continue
				}
				if combo := pickAll(perEdge, sig); combo != nil {
					pl.emitExtend(st, w, combo, consider)
				}
			}
		}
	}
}

func sigsOf(cs []cand) []string {
	seen := map[string]bool{}
	var out []string
	for _, c := range cs {
		if !seen[c.sig] {
			seen[c.sig] = true
			out = append(out, c.sig)
		}
	}
	sort.Strings(out)
	return out
}

// bestCand returns the smallest candidate, optionally restricted to a sort
// signature ("" = any).
func bestCand(cs []cand, sig string) *cand {
	var best *cand
	for i := range cs {
		c := &cs[i]
		if sig != "" && c.sig != sig && !c.empty {
			continue
		}
		if best == nil || c.size < best.size {
			best = c
		}
	}
	return best
}

// pickAll picks one candidate per edge, all with the given signature;
// nil when some edge has none.
func pickAll(perEdge [][]cand, sig string) []cand {
	out := make([]cand, len(perEdge))
	for i, cs := range perEdge {
		b := bestCand(cs, sig)
		if b == nil {
			return nil
		}
		out[i] = *b
	}
	return out
}

// beginExtend clones st and appends the extension operator; nil signals a
// provably empty extension.
func (pl *planner) beginExtend(st *state, w int, chosen []cand) *state {
	for _, c := range chosen {
		if c.empty {
			return nil
		}
	}
	ns := st.clone()
	ns.mask |= 1 << uint(w)
	var stepCost float64
	var sizes []float64
	sameSigProp := chosen[0].sig != "vnbr.ID" && len(chosen) > 1
	var refs []exec.ListRef
	var extraTerms []exec.CompiledTerm
	vertexLabelCovered := false
	anyVertexLabelFilter := false
	for _, c := range chosen {
		ns.emask |= 1 << uint(c.ref.EdgeSlot)
		stepCost += c.size
		sizes = append(sizes, c.size)
		for _, pi := range c.guaranteed {
			ns.applied[pi] = true
		}
		refs = append(refs, c.ref)
		hasVtxFilter := false
		for _, t := range c.labelFilter {
			if t.Left.IsEdge {
				extraTerms = append(extraTerms, t)
			} else {
				hasVtxFilter = true
			}
		}
		if hasVtxFilter {
			anyVertexLabelFilter = true
		} else {
			vertexLabelCovered = true
		}
	}
	if anyVertexLabelFilter && !vertexLabelCovered {
		extraTerms = append(extraTerms, exec.CompiledTerm{
			Left: exec.VertexOperand(w, pred.PropLabel), Op: pred.EQ,
			Right: exec.ConstOperand(storage.Str(pl.q.Vertices[w].Label)),
		})
	}
	if sameSigProp {
		// Single-group MULTI-EXTEND on a property sort.
		sk, ok := sortKeyOfSig(chosen[0].sig)
		if !ok {
			return nil
		}
		ns.ops = append(ns.ops, &exec.MultiExtendOp{Key: sk, Groups: []exec.MEGroup{{TargetSlot: w, Lists: refs}}})
	} else {
		ns.ops = append(ns.ops, &exec.ExtendIntersectOp{TargetSlot: w, Lists: refs})
	}
	ns.cost += ns.card * stepCost
	if len(chosen) == 1 {
		ns.card *= math.Max(sizes[0], 0.05)
	} else {
		ns.card *= pl.stats.intersectCard(sizes)
	}
	ns.extraTerms = extraTerms
	return ns
}

// emitExtend finishes an extension option and offers it to the DP table.
func (pl *planner) emitExtend(st *state, w int, chosen []cand, consider func(*state)) {
	ns := pl.beginExtend(st, w, chosen)
	if ns == nil {
		consider(pl.emptyState(st))
		return
	}
	pl.applyReadyFilters(ns, ns.extraTerms)
	ns.extraTerms = nil
	consider(ns)
}

// emptyState short-circuits a provably empty result: the stream is empty,
// so the remaining query is trivially satisfied.
func (pl *planner) emptyState(st *state) *state {
	ns := st.clone()
	ns.mask = uint32(1)<<uint(len(pl.q.Vertices)) - 1
	ns.emask = uint64(1)<<uint(len(pl.q.Edges)) - 1
	for i := range ns.applied {
		ns.applied[i] = true
	}
	f := exec.CompiledTerm{Left: exec.ConstOperand(storage.Int(1)), Op: pred.EQ, Right: exec.ConstOperand(storage.Int(0))}
	ns.ops = append(ns.ops, &exec.FilterOp{Terms: []exec.CompiledTerm{f}})
	ns.card = 0
	return ns
}

func sortKeyOfSig(sig string) (index.SortKey, bool) {
	for _, v := range []pred.Var{pred.VarNbr, pred.VarAdj} {
		prefix := v.String() + "."
		if len(sig) > len(prefix) && sig[:len(prefix)] == prefix {
			return index.SortKey{Var: v, Prop: sig[len(prefix):]}, true
		}
	}
	return index.SortKey{}, false
}
