// Package opt implements the system's join optimizer: a GraphflowDB-style
// bottom-up dynamic-programming enumerator that grows sub-queries one query
// vertex at a time (or several at once through MULTI-EXTEND), consulting
// the INDEX STORE for vertex- and edge-partitioned A+ indexes whose
// predicates subsume the query's predicates (Section IV-A of the paper).
// The cost metric is i-cost: the total estimated size of the adjacency
// lists a plan accesses.
package opt

// Mode restricts the plan space, used both for ablations and to emulate
// systems with fixed adjacency-list indexes (Table V's baselines).
type Mode struct {
	// DisableWCOJ removes multiway intersections: every extension uses one
	// list and cycle-closing edges are matched by probing (binary joins
	// only, as in Neo4j-class systems).
	DisableWCOJ bool
	// DisableSecondary hides secondary A+ indexes from the planner.
	DisableSecondary bool
	// DisableSegments forbids binary-searched sorted-segment access.
	DisableSegments bool
	// DisableMultiExtend forbids MULTI-EXTEND operators.
	DisableMultiExtend bool
}

// ModeDefault is the full A+ plan space.
var ModeDefault = Mode{}

// ModeBinaryJoin emulates a fixed-index binary-join system: primary
// adjacency lists partitioned by vertex ID and edge label only, no
// secondary indexes, no intersections, no sorted segments.
var ModeBinaryJoin = Mode{
	DisableWCOJ:        true,
	DisableSecondary:   true,
	DisableSegments:    true,
	DisableMultiExtend: true,
}

// ModePrimaryOnly keeps WCOJ plans but hides secondary indexes — the
// paper's "D" configuration when secondary indexes exist in the store.
var ModePrimaryOnly = Mode{DisableSecondary: true}
