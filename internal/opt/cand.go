package opt

import (
	"github.com/aplusdb/aplus/internal/exec"
	"github.com/aplusdb/aplus/internal/index"
	"github.com/aplusdb/aplus/internal/pred"
	"github.com/aplusdb/aplus/internal/query"
	"github.com/aplusdb/aplus/internal/storage"
)

// cand is one way to read the adjacency list for a query-edge extension.
type cand struct {
	ref  exec.ListRef
	size float64
	// sig is the effective remaining sort signature after any equality
	// segment: "vnbr.ID" for neighbour-sorted lists, "vnbr.<p>" etc.
	sig string
	// guaranteed are query-predicate indices this access path already
	// enforces (via the view predicate, partition codes or segments).
	guaranteed []int
	// labelFilter holds residual label checks the access path does not
	// enforce (the edge's label, and possibly the target vertex's).
	labelFilter []exec.CompiledTerm
	// empty marks a provably empty list (a partition value that occurs
	// nowhere in the graph).
	empty bool
}

// qterm is a query predicate translated into the extension-local variable
// space (VarAdj / VarSrc / VarDst / VarBound).
type qterm struct {
	term  pred.Term
	qpred int // index into q.Preds, or -1 for label constraints
}

// idxDesc abstracts over the three index kinds for candidate construction.
type idxDesc struct {
	kind     exec.ListKind
	dir      index.Direction // list direction (resolves vnbr)
	vp       *index.VertexPartitioned
	ep       *index.EdgePartitioned
	resolved pred.Predicate // index predicate in resolved space
	parts    []index.PartitionKey
	sorts    []index.SortKey
	cards    []int
	baseSize float64
	resolve  func(vals []storage.Value) ([]uint16, bool)

	ownerVSlot int
	ownerESlot int
}

// nbrVar returns the resolved variable of the neighbour for this list.
func (d idxDesc) nbrVar() pred.Var {
	if d.dir == index.FW {
		return pred.VarDst
	}
	return pred.VarSrc
}

// ownerVar returns the resolved variable of the owner-side endpoint.
func (d idxDesc) ownerVar() pred.Var {
	if d.dir == index.FW {
		return pred.VarSrc
	}
	return pred.VarDst
}

// localTerms translates the query predicates relevant to extending query
// edge qe from bound vertex u to target w into resolved-space terms.
// boundQE >= 0 adds the bound edge's terms for edge-partitioned candidates.
func (pl *planner) localTerms(qe, w, u int, d idxDesc, boundQE int) []qterm {
	q := pl.q
	var out []qterm
	e := q.Edges[qe]
	if e.Label != "" {
		out = append(out, qterm{pred.ConstTerm(pred.VarAdj, pred.PropLabel, pred.EQ, storage.Str(e.Label)), -1})
	}
	if q.Vertices[w].Label != "" {
		out = append(out, qterm{pred.ConstTerm(d.nbrVar(), pred.PropLabel, pred.EQ, storage.Str(q.Vertices[w].Label)), -1})
	}
	for pi, p := range q.Preds {
		if !p.IsConst() {
			if boundQE >= 0 {
				// Inter-edge predicates between the bound edge and qe.
				if t, ok := interEdgeTerm(p, q, boundQE, qe); ok {
					out = append(out, qterm{t, pi})
				}
			}
			continue
		}
		prop := normalizeProp(p.LeftProp)
		switch p.LeftVar {
		case e.Name:
			out = append(out, qterm{pred.ConstTerm(pred.VarAdj, prop, p.Op, p.Const), pi})
		case q.Vertices[w].Name:
			out = append(out, qterm{pred.ConstTerm(d.nbrVar(), prop, p.Op, p.Const), pi})
		case q.Vertices[u].Name:
			out = append(out, qterm{pred.ConstTerm(d.ownerVar(), prop, p.Op, p.Const), pi})
		default:
			if boundQE >= 0 && p.LeftVar == q.Edges[boundQE].Name {
				out = append(out, qterm{pred.ConstTerm(pred.VarBound, prop, p.Op, p.Const), pi})
			}
		}
	}
	return out
}

// interEdgeTerm translates a variable-variable query predicate between the
// bound query edge and the adjacent query edge into (VarBound, VarAdj)
// space.
func interEdgeTerm(p query.Pred, q *query.Graph, boundQE, qe int) (pred.Term, bool) {
	bName, aName := q.Edges[boundQE].Name, q.Edges[qe].Name
	lp, rp := normalizeProp(p.LeftProp), normalizeProp(p.RightProp)
	switch {
	case p.LeftVar == bName && p.RightVar == aName:
		return pred.VarTermShift(pred.VarBound, lp, p.Op, pred.VarAdj, rp, p.RightShift), true
	case p.LeftVar == aName && p.RightVar == bName:
		return pred.VarTermShift(pred.VarAdj, lp, p.Op, pred.VarBound, rp, p.RightShift), true
	}
	return pred.Term{}, false
}

func normalizeProp(p string) string {
	if p == "eID" || p == "vID" {
		return pred.PropID
	}
	return p
}

// buildCand assembles a candidate for one index access path, or reports it
// unusable (the index's predicate is not subsumed by the query's).
func (pl *planner) buildCand(st *state, d idxDesc, qts []qterm, qe, w int) (cand, bool) {
	var qctx pred.Predicate
	for _, qt := range qts {
		qctx.Terms = append(qctx.Terms, qt.term)
	}
	if !pred.Subsumes(d.resolved, qctx) {
		return cand{}, false
	}
	c := cand{size: d.baseSize, sig: "vnbr.ID"}
	guaranteedSet := make(map[int]bool)
	edgeLabelOK := pl.q.Edges[qe].Label == ""
	vtxLabelOK := pl.q.Vertices[w].Label == ""

	markGuaranteed := func(qt qterm) {
		if qt.qpred >= 0 {
			guaranteedSet[qt.qpred] = true
		} else if qt.term.Left.Var == pred.VarAdj && qt.term.Left.Prop == pred.PropLabel {
			edgeLabelOK = true
		} else if qt.term.Left.Prop == pred.PropLabel {
			vtxLabelOK = true
		}
	}

	// Terms already enforced by the view predicate.
	for _, qt := range qts {
		if d.resolved.Implies(qt.term) {
			markGuaranteed(qt)
		}
	}

	// Consume partition levels with equality terms.
	var vals []storage.Value
	for _, key := range d.parts {
		keyVar := pred.VarAdj
		if key.Var == pred.VarNbr {
			keyVar = d.nbrVar()
		}
		found := false
		for _, qt := range qts {
			t := qt.term
			if t.Op == pred.EQ && t.IsConst() && t.Left.Var == keyVar && t.Left.Prop == key.Prop {
				vals = append(vals, t.Const)
				markGuaranteed(qt)
				found = true
				break
			}
		}
		if !found {
			break
		}
	}
	codes, ok := d.resolve(vals)
	if !ok {
		c.empty = true
		return c, true
	}
	c.ref = exec.ListRef{
		Kind: d.kind, Dir: d.dir, VP: d.vp, EP: d.ep,
		OwnerVertexSlot: d.ownerVSlot, OwnerEdgeSlot: d.ownerESlot,
		Codes: codes, EdgeSlot: qe,
	}
	if len(codes) < len(d.cards) {
		c.ref.Expand = exec.ExpandChoices(codes, d.cards)
	}
	// Refine the size for consumed levels.
	for i := range vals {
		if d.parts[i].Var == pred.VarAdj && d.parts[i].Prop == pred.PropLabel && d.kind == exec.ListPrimary {
			if lid, okL := pl.g.Catalog().LookupEdgeLabel(pl.q.Edges[qe].Label); okL {
				c.size = pl.stats.avgPrimaryList(true, lid)
			}
		} else {
			c.size *= selPartitionLevel
		}
	}

	// Segment on the first sort key.
	segEq := false
	if !pl.mode.DisableSegments && len(d.sorts) > 0 {
		seg, eq, used := pl.buildSegment(st, d, qts, w, guaranteedSet)
		if used != nil {
			c.ref.Seg = seg
			segEq = eq
			if eq {
				c.size *= selSegmentEq
			} else {
				c.size *= selSegmentRange
			}
			for _, qt := range used {
				markGuaranteed(qt)
			}
		}
	}

	// Remaining sort signature.
	switch {
	case len(d.sorts) == 0:
		c.sig = "vnbr.ID"
	case segEq && len(d.sorts) == 1:
		c.sig = "vnbr.ID"
	case segEq:
		c.sig = d.sorts[1].String()
	default:
		c.sig = d.sorts[0].String()
	}

	for pi := range guaranteedSet {
		c.guaranteed = append(c.guaranteed, pi)
	}
	if !edgeLabelOK {
		if lid, okL := pl.g.Catalog().LookupEdgeLabel(pl.q.Edges[qe].Label); okL {
			c.labelFilter = append(c.labelFilter, exec.CompiledTerm{
				Left: exec.EdgeOperand(qe, pred.PropLabel), Op: pred.EQ,
				Right: exec.ConstOperand(storage.Str(pl.g.Catalog().EdgeLabelName(lid))),
			})
		} else {
			c.empty = true // label occurs nowhere
		}
	}
	if !vtxLabelOK {
		if _, okL := pl.g.Catalog().LookupVertexLabel(pl.q.Vertices[w].Label); okL {
			c.labelFilter = append(c.labelFilter, exec.CompiledTerm{
				Left: exec.VertexOperand(w, pred.PropLabel), Op: pred.EQ,
				Right: exec.ConstOperand(storage.Str(pl.q.Vertices[w].Label)),
			})
		} else {
			c.empty = true
		}
	}
	return c, true
}

// buildSegment derives a static or dynamic segment on the first sort key
// from the local terms and the query's variable-variable equalities.
// Returns the segment, whether it pins a single key value, and the terms it
// makes redundant (nil segment when nothing applies).
func (pl *planner) buildSegment(st *state, d idxDesc, qts []qterm, w int, already map[int]bool) (*exec.Segment, bool, []qterm) {
	k0 := d.sorts[0]
	keyVar := pred.VarAdj
	if k0.Var == pred.VarNbr {
		keyVar = d.nbrVar()
	}
	// Dynamic equality: w.p = x.p with x bound (vertex sort keys only).
	if k0.Var == pred.VarNbr {
		for pi, p := range pl.q.Preds {
			if already[pi] || p.IsConst() || p.Op != pred.EQ {
				continue
			}
			wName := pl.q.Vertices[w].Name
			var other string
			var otherProp string
			if p.LeftVar == wName && normalizeProp(p.LeftProp) == k0.Prop {
				other, otherProp = p.RightVar, normalizeProp(p.RightProp)
			} else if p.RightVar == wName && normalizeProp(p.RightProp) == k0.Prop {
				other, otherProp = p.LeftVar, normalizeProp(p.LeftProp)
			} else {
				continue
			}
			oi, isV := pl.q.VertexIndex(other)
			if !isV || !st.boundV(oi) {
				continue
			}
			op := exec.VertexOperand(oi, otherProp)
			seg := &exec.Segment{Key: k0, DynEq: &op}
			return seg, true, []qterm{{pred.Term{}, pi}}
		}
	}
	// Static bounds from constant terms on the sort key.
	var seg exec.Segment
	seg.Key = k0
	var used []qterm
	eq := false
	for _, qt := range qts {
		t := qt.term
		if !t.IsConst() || t.Left.Var != keyVar || t.Left.Prop != k0.Prop {
			continue
		}
		if qt.qpred >= 0 && already[qt.qpred] {
			continue
		}
		ord, ok := index.OrdinalOfValue(pl.g, k0, t.Const)
		if !ok {
			continue
		}
		switch t.Op {
		case pred.EQ:
			tightenLo(&seg, ord)
			tightenHi(&seg, ord+1)
			eq = true
		case pred.LT:
			tightenHi(&seg, ord)
		case pred.LE:
			tightenHi(&seg, ord+1)
		case pred.GT:
			tightenLo(&seg, ord+1)
		case pred.GE:
			tightenLo(&seg, ord)
		default:
			continue
		}
		used = append(used, qt)
	}
	if len(used) == 0 {
		return nil, false, nil
	}
	return &seg, eq, used
}

func tightenLo(s *exec.Segment, ord uint64) {
	if !s.HasLo || ord > s.Lo {
		s.Lo = ord
		s.HasLo = true
	}
}

func tightenHi(s *exec.Segment, ord uint64) {
	if !s.HasHi || ord < s.Hi {
		s.Hi = ord
		s.HasHi = true
	}
}
