package opt

import (
	"math"

	"github.com/aplusdb/aplus/internal/exec"
	"github.com/aplusdb/aplus/internal/index"
)

// multiExtendAll generates MULTI-EXTEND transitions binding several query
// vertices at once: sets of unbound vertices connected by property-equality
// predicates (e.g. a2.city = a4.city), each adjacent to the bound set, all
// of whose connecting lists are sorted on that property. This is how the
// paper's MF plans intersect city-sorted lists (Section V-C2, Figure 6).
func (pl *planner) multiExtendAll(st *state, consider func(*state)) {
	q := pl.q
	// Collect the properties that appear in unbound-unbound equality preds.
	props := map[string][]int{} // prop -> pred indices
	for pi, p := range q.Preds {
		if p.IsConst() || p.Op != eqOp {
			continue
		}
		li, lok := q.VertexIndex(p.LeftVar)
		ri, rok := q.VertexIndex(p.RightVar)
		if !lok || !rok || st.boundV(li) || st.boundV(ri) {
			continue
		}
		if normalizeProp(p.LeftProp) != normalizeProp(p.RightProp) {
			continue
		}
		prop := normalizeProp(p.LeftProp)
		props[prop] = append(props[prop], pi)
	}
	for prop, predIdxs := range props {
		// Union-find the equality components among unbound vertices.
		parent := make([]int, len(q.Vertices))
		for i := range parent {
			parent[i] = i
		}
		var find func(int) int
		find = func(x int) int {
			if parent[x] != x {
				parent[x] = find(parent[x])
			}
			return parent[x]
		}
		participates := make(map[int]bool)
		for _, pi := range predIdxs {
			li, _ := q.VertexIndex(q.Preds[pi].LeftVar)
			ri, _ := q.VertexIndex(q.Preds[pi].RightVar)
			parent[find(li)] = find(ri)
			participates[li] = true
			participates[ri] = true
		}
		comps := map[int][]int{}
		for v := range q.Vertices {
			if st.boundV(v) || !participates[v] {
				continue
			}
			comps[find(v)] = append(comps[find(v)], v)
		}
		for _, members := range comps {
			if len(members) < 2 {
				continue
			}
			pl.tryMultiExtend(st, prop, members, predIdxs, consider)
		}
	}
}

// tryMultiExtend attempts one MULTI-EXTEND binding all members at once.
func (pl *planner) tryMultiExtend(st *state, prop string, members []int, predIdxs []int, consider func(*state)) {
	q := pl.q
	inW := make(map[int]bool, len(members))
	for _, w := range members {
		inW[w] = true
	}
	sig := "vnbr." + prop
	type chosenList struct {
		w int
		c cand
	}
	var lists []chosenList
	covered := make(map[int]bool) // members with at least one list
	for qe, e := range q.Edges {
		si, _ := q.VertexIndex(e.Src)
		di, _ := q.VertexIndex(e.Dst)
		var w, u int
		var dir index.Direction
		switch {
		case inW[si] && inW[di]:
			return // edges inside W are not supported
		case inW[si] && st.boundV(di):
			w, u, dir = si, di, index.BW
		case inW[di] && st.boundV(si):
			w, u, dir = di, si, index.FW
		default:
			continue
		}
		cs := pl.edgeCands(st, qe, w, u, dir)
		b := bestCand(cs, sig)
		if b == nil {
			return // some connecting edge has no property-sorted list
		}
		lists = append(lists, chosenList{w, *b})
		covered[w] = true
	}
	for _, w := range members {
		if !covered[w] {
			return
		}
	}

	ns := st.clone()
	var stepCost float64
	groups := map[int]*exec.MEGroup{}
	var order []int
	var extraTerms []exec.CompiledTerm
	groupSizes := map[int][]float64{}
	for _, cl := range lists {
		if cl.c.empty {
			consider(pl.emptyState(st))
			return
		}
		g, ok := groups[cl.w]
		if !ok {
			g = &exec.MEGroup{TargetSlot: cl.w}
			groups[cl.w] = g
			order = append(order, cl.w)
		}
		g.Lists = append(g.Lists, cl.c.ref)
		ns.emask |= 1 << uint(cl.c.ref.EdgeSlot)
		stepCost += cl.c.size
		groupSizes[cl.w] = append(groupSizes[cl.w], cl.c.size)
		for _, pi := range cl.c.guaranteed {
			ns.applied[pi] = true
		}
		extraTerms = append(extraTerms, cl.c.labelFilter...)
	}
	sk, ok := sortKeyOfSig(sig)
	if !ok {
		return
	}
	op := &exec.MultiExtendOp{Key: sk}
	for _, w := range order {
		op.Groups = append(op.Groups, *groups[w])
		ns.mask |= 1 << uint(w)
	}
	ns.ops = append(ns.ops, op)
	// The equality predicates joining members of W are enforced by the
	// shared sort-key value.
	for _, pi := range predIdxs {
		li, _ := q.VertexIndex(q.Preds[pi].LeftVar)
		ri, _ := q.VertexIndex(q.Preds[pi].RightVar)
		if inW[li] && inW[ri] {
			ns.applied[pi] = true
		}
	}
	ns.cost += ns.card * stepCost
	mult := 1.0
	for _, w := range order {
		mult *= pl.stats.intersectCard(groupSizes[w])
	}
	mult *= math.Pow(selJoinKey, float64(len(order)-1))
	ns.card *= math.Max(mult, 0.01)
	pl.applyReadyFilters(ns, extraTerms)
	consider(ns)
}
