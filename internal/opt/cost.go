package opt

import (
	"github.com/aplusdb/aplus/internal/index"
	"github.com/aplusdb/aplus/internal/pred"
	"github.com/aplusdb/aplus/internal/storage"
)

// stats caches the coarse statistics the cost model uses. The model only
// needs to rank plans, not predict runtimes, so the estimates are
// deliberately simple: average list sizes per index refined by fixed
// selectivity factors per consumed partition level or segment.
type stats struct {
	numV, numE   float64
	labelCounts  map[storage.LabelID]float64
	vLabelCounts map[storage.LabelID]float64
	// corr is the degree-correlation multiplier for intersection-size
	// estimates: nv * E[deg^2] / E[deg]^2-style second-moment correction.
	// It is 1 for uniform graphs and grows with degree skew, which is what
	// makes common-neighbour counts on power-law graphs much larger than
	// the independence assumption predicts.
	corr float64
}

func newStats(g *storage.Graph) stats {
	st := stats{
		numV:         float64(g.NumVertices()),
		numE:         float64(g.NumLiveEdges()),
		labelCounts:  make(map[storage.LabelID]float64),
		vLabelCounts: make(map[storage.LabelID]float64),
		corr:         1,
	}
	if st.numV == 0 {
		st.numV = 1
	}
	outDeg := make([]float64, g.NumVertices())
	inDeg := make([]float64, g.NumVertices())
	for i := 0; i < g.NumEdges(); i++ {
		e := storage.EdgeID(i)
		if g.EdgeDeleted(e) {
			continue
		}
		st.labelCounts[g.EdgeLabel(e)]++
		outDeg[g.Src(e)]++
		inDeg[g.Dst(e)]++
	}
	for i := 0; i < g.NumVertices(); i++ {
		st.vLabelCounts[g.VertexLabel(storage.VertexID(i))]++
	}
	if st.numE > 0 {
		var m2 float64
		for i := range outDeg {
			m2 += (outDeg[i]*outDeg[i] + inDeg[i]*inDeg[i]) / 2
		}
		st.corr = st.numV * m2 / (st.numE * st.numE)
		if st.corr < 1 {
			st.corr = 1
		}
	}
	return st
}

// intersectCard estimates the output size of intersecting lists of the
// given sizes: independence (product over nv per extra list) corrected by
// the degree-skew factor.
func (st stats) intersectCard(sizes []float64) float64 {
	minIdx := 0
	for i := range sizes {
		if sizes[i] < sizes[minIdx] {
			minIdx = i
		}
	}
	out := sizes[minIdx]
	for i, s := range sizes {
		if i == minIdx {
			continue
		}
		// corr appears squared: once for the hub bias of the candidate
		// elements, once for the hub bias of the list owners (vertices
		// reached via edges are degree-biased).
		out *= s * st.corr * st.corr / st.numV
	}
	// An intersection can never exceed its smallest input.
	if out > sizes[minIdx] {
		out = sizes[minIdx]
	}
	if out < 0.01 {
		out = 0.01
	}
	return out
}

// Selectivity factors. Only relative order matters.
const (
	selPartitionLevel = 0.34 // each consumed partition level beyond a label
	selSegmentRange   = 0.25 // static range segment
	selSegmentEq      = 0.08 // equality / dynamic-equality segment
	selIntersect      = 0.2  // each additional intersected list
	selJoinKey        = 0.1  // each additional MULTI-EXTEND group
	selCloseEdge      = 0.1  // probability a probed edge exists
)

// termSelectivity estimates how much of a stream a residual filter term
// passes. Workload predicates with constants (the α bounds, city/account
// equalities) are deliberately selective in the paper's experiments, so
// equality and range comparisons are treated as strong filters.
func termSelectivity(op pred.Op) float64 {
	switch op {
	case pred.EQ:
		return 0.08
	case pred.NE:
		return 0.9
	default:
		return 0.1
	}
}

// avgPrimaryList estimates the list size of a primary lookup with a label
// consumed (or not). Vertices reached through extensions are degree-biased
// (the friendship paradox), so the size-biased mean degree — corr times
// the plain mean — is the better per-list estimate on skewed graphs.
func (st stats) avgPrimaryList(labelled bool, label storage.LabelID) float64 {
	if labelled {
		return st.labelCounts[label] / st.numV * st.corr
	}
	return st.numE / st.numV * st.corr
}

// avgVPList estimates a secondary vertex-partitioned list size.
func (st stats) avgVPList(v *index.VertexPartitioned, dirs int) float64 {
	if dirs == 0 {
		dirs = 1
	}
	return float64(v.NumIndexedEdges()) / float64(dirs) / st.numV * st.corr
}

// avgEPList estimates a secondary edge-partitioned list size: the bound
// edge's endpoint is degree-biased by construction.
func (st stats) avgEPList(ep *index.EdgePartitioned) float64 {
	if st.numE == 0 {
		return 0
	}
	return float64(ep.NumIndexedEdges()) / st.numE * st.corr
}
