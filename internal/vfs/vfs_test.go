package vfs

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"
)

func writeAll(t *testing.T, f File, b []byte) {
	t.Helper()
	n, err := f.Write(b)
	if err != nil || n != len(b) {
		t.Fatalf("write: n=%d err=%v", n, err)
	}
}

func TestMemWriteSyncReadBack(t *testing.T) {
	m := NewMem()
	if err := m.MkdirAll("/db"); err != nil {
		t.Fatal(err)
	}
	f, err := m.OpenFile("/db/wal.log", os.O_RDWR|os.O_CREATE)
	if err != nil {
		t.Fatal(err)
	}
	writeAll(t, f, []byte("hello "))
	writeAll(t, f, []byte("world"))
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	got, err := m.ReadFile("/db/wal.log")
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "hello world" {
		t.Fatalf("got %q", got)
	}
	if sz, err := m.Stat("/db/wal.log"); err != nil || sz != 11 {
		t.Fatalf("stat: %d %v", sz, err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestMemCrashDropsUnsyncedBytes(t *testing.T) {
	m := NewMem()
	f, _ := m.OpenFile("/wal.log", os.O_RDWR|os.O_CREATE)
	writeAll(t, f, []byte("durable"))
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	writeAll(t, f, []byte(" volatile"))
	m.Crash()
	got, err := m.ReadFile("/wal.log")
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "durable" {
		t.Fatalf("after crash got %q, want synced prefix only", got)
	}
}

func TestMemCrashDropsNeverSyncedFile(t *testing.T) {
	m := NewMem()
	f, _ := m.OpenFile("/scratch", os.O_RDWR|os.O_CREATE)
	writeAll(t, f, []byte("gone"))
	m.Crash()
	if _, err := m.ReadFile("/scratch"); !os.IsNotExist(err) {
		t.Fatalf("want not-exist after crash, got %v", err)
	}
}

func TestMemFileSyncDurablizesNameBinding(t *testing.T) {
	// fsync of a newly created file persists the file itself, not just
	// anonymous bytes (journaling-FS behavior the WAL relies on).
	m := NewMem()
	f, _ := m.OpenFile("/wal.log", os.O_RDWR|os.O_CREATE)
	writeAll(t, f, []byte("x"))
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	m.Crash()
	if got, err := m.ReadFile("/wal.log"); err != nil || string(got) != "x" {
		t.Fatalf("after crash: %q %v", got, err)
	}
}

func TestMemTornRename(t *testing.T) {
	m := NewMem()
	f, _ := m.OpenFile("/a", os.O_RDWR|os.O_CREATE)
	writeAll(t, f, []byte("old"))
	f.Sync()
	f.Close()

	// Rename without SyncDir: live view moves, crash tears it back.
	if err := m.Rename("/a", "/b"); err != nil {
		t.Fatal(err)
	}
	if _, err := m.ReadFile("/a"); !os.IsNotExist(err) {
		t.Fatalf("live /a should be gone, got %v", err)
	}
	m.Crash()
	if got, err := m.ReadFile("/a"); err != nil || string(got) != "old" {
		t.Fatalf("torn rename should revert: %q %v", got, err)
	}
	if _, err := m.ReadFile("/b"); !os.IsNotExist(err) {
		t.Fatalf("/b should not survive torn rename, got %v", err)
	}

	// Rename + SyncDir: durable.
	if err := m.Rename("/a", "/b"); err != nil {
		t.Fatal(err)
	}
	if err := m.SyncDir("/"); err != nil {
		t.Fatal(err)
	}
	m.Crash()
	if _, err := m.ReadFile("/a"); !os.IsNotExist(err) {
		t.Fatalf("/a should be durably gone, got %v", err)
	}
	if got, err := m.ReadFile("/b"); err != nil || string(got) != "old" {
		t.Fatalf("durable rename lost: %q %v", got, err)
	}
}

func TestMemRemoveDurableOnlyAfterSyncDir(t *testing.T) {
	m := NewMem()
	f, _ := m.OpenFile("/a", os.O_RDWR|os.O_CREATE)
	writeAll(t, f, []byte("x"))
	f.Sync()
	f.Close()
	if err := m.Remove("/a"); err != nil {
		t.Fatal(err)
	}
	m.Crash()
	if got, err := m.ReadFile("/a"); err != nil || string(got) != "x" {
		t.Fatalf("un-dir-synced remove should resurrect: %q %v", got, err)
	}
	if err := m.Remove("/a"); err != nil {
		t.Fatal(err)
	}
	if err := m.SyncDir("/"); err != nil {
		t.Fatal(err)
	}
	m.Crash()
	if _, err := m.ReadFile("/a"); !os.IsNotExist(err) {
		t.Fatalf("durably removed file came back: %v", err)
	}
}

func TestMemTruncateAndReadAt(t *testing.T) {
	m := NewMem()
	f, _ := m.OpenFile("/a", os.O_RDWR|os.O_CREATE)
	writeAll(t, f, []byte("0123456789"))
	if err := f.Truncate(4); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4)
	if n, err := f.ReadAt(buf, 0); err != nil && err != io.EOF || n != 4 {
		t.Fatalf("readat: n=%d err=%v", n, err)
	}
	if string(buf) != "0123" {
		t.Fatalf("got %q", buf)
	}
	if _, err := f.ReadAt(buf, 10); err != io.EOF {
		t.Fatalf("want EOF past end, got %v", err)
	}
	if off, err := f.Seek(0, io.SeekEnd); err != nil || off != 4 {
		t.Fatalf("seek end: %d %v", off, err)
	}
}

func TestMemReadDirAndCreateTemp(t *testing.T) {
	m := NewMem()
	m.MkdirAll("/db")
	f1, p1, err := m.CreateTemp("/db", "ckpt.tmp-*")
	if err != nil {
		t.Fatal(err)
	}
	f1.Close()
	f2, p2, err := m.CreateTemp("/db", "ckpt.tmp-*")
	if err != nil {
		t.Fatal(err)
	}
	f2.Close()
	if p1 == p2 {
		t.Fatalf("temp names collide: %s", p1)
	}
	if filepath.Dir(p1) != "/db" {
		t.Fatalf("temp outside dir: %s", p1)
	}
	names, err := m.ReadDir("/db")
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 2 {
		t.Fatalf("readdir: %v", names)
	}
}

func TestFaultyRecordThenFailAt(t *testing.T) {
	mem := NewMem()
	rec := NewFaulty(mem)
	rec.Record()
	run := func(f FS) error {
		h, err := f.OpenFile("/wal.log", os.O_RDWR|os.O_CREATE)
		if err != nil {
			return err
		}
		if _, err := h.Write([]byte("abc")); err != nil {
			return err
		}
		if err := h.Sync(); err != nil {
			return err
		}
		return h.Close()
	}
	if err := run(rec); err != nil {
		t.Fatal(err)
	}
	trace := rec.Trace()
	want := []string{"open", "write", "sync", "close"}
	if len(trace) != len(want) {
		t.Fatalf("trace %v", trace)
	}
	for i, k := range want {
		if trace[i].Kind != k {
			t.Fatalf("trace[%d]=%v want kind %s", i, trace[i], k)
		}
	}

	// Fail each site in turn: the op at site k errors with ErrInjected.
	for k := 1; k <= len(trace); k++ {
		fi := NewFaulty(NewMem())
		fi.FailAt(int64(k))
		err := run(fi)
		if !errors.Is(err, ErrInjected) {
			t.Fatalf("site %d: want ErrInjected, got %v", k, err)
		}
	}
}

func TestFaultyOneShotVsSticky(t *testing.T) {
	mem := NewMem()
	f := NewFaulty(mem)
	h, err := f.OpenFile("/a", os.O_RDWR|os.O_CREATE) // op 1
	if err != nil {
		t.Fatal(err)
	}
	f.FailAt(2)
	if err := h.Sync(); !errors.Is(err, ErrInjected) { // op 2: fails once
		t.Fatalf("want injected, got %v", err)
	}
	if err := h.Sync(); err != nil { // op 3: recovered
		t.Fatalf("one-shot fault should clear: %v", err)
	}

	g := NewFaulty(NewMem())
	h2, _ := g.OpenFile("/a", os.O_RDWR|os.O_CREATE) // op 1
	g.StickyAt(2)
	if err := h2.Sync(); !errors.Is(err, ErrInjected) { // op 2
		t.Fatalf("want injected, got %v", err)
	}
	if err := h2.Sync(); !errors.Is(err, ErrInjected) { // op 3: still failing
		t.Fatalf("sticky fault should persist: %v", err)
	}
	if _, err := h2.Write([]byte("x")); err != nil { // different kind: fine
		t.Fatalf("sticky is per (kind,path): %v", err)
	}
}

func TestFaultyCrashAt(t *testing.T) {
	f := NewFaulty(NewMem())
	h, _ := f.OpenFile("/a", os.O_RDWR|os.O_CREATE) // op 1
	f.CrashAt(2)
	if _, err := h.Write([]byte("x")); !errors.Is(err, ErrCrashed) { // op 2
		t.Fatalf("want crashed, got %v", err)
	}
	if err := h.Sync(); !errors.Is(err, ErrCrashed) { // everything after dies
		t.Fatalf("want crashed, got %v", err)
	}
	if _, err := f.ReadFile("/a"); !errors.Is(err, ErrCrashed) {
		t.Fatalf("want crashed, got %v", err)
	}
}

func TestFaultyShortWrite(t *testing.T) {
	mem := NewMem()
	f := NewFaulty(mem)
	h, _ := f.OpenFile("/a", os.O_RDWR|os.O_CREATE) // op 1
	f.FailAt(2)
	f.ShortWrite(3)
	n, err := h.Write([]byte("abcdef")) // op 2: 3 bytes land, then error
	if !errors.Is(err, ErrInjected) || n != 3 {
		t.Fatalf("n=%d err=%v", n, err)
	}
	got, err := mem.ReadFile("/a")
	if err != nil || string(got) != "abc" {
		t.Fatalf("inner content %q %v", got, err)
	}
}

func TestFaultyWriteBudgetENOSPC(t *testing.T) {
	mem := NewMem()
	f := NewFaulty(mem)
	f.SetWriteBudget(5)
	h, _ := f.OpenFile("/a", os.O_RDWR|os.O_CREATE)
	if _, err := h.Write([]byte("abc")); err != nil { // 3 of 5
		t.Fatal(err)
	}
	n, err := h.Write([]byte("defg")) // crosses: 2 fit, then ENOSPC
	if !errors.Is(err, ErrNoSpace) || n != 2 {
		t.Fatalf("n=%d err=%v", n, err)
	}
	if _, err := h.Write([]byte("h")); !errors.Is(err, ErrNoSpace) {
		t.Fatalf("disk should stay full: %v", err)
	}
	got, _ := mem.ReadFile("/a")
	if string(got) != "abcde" {
		t.Fatalf("prefix %q", got)
	}
}

func TestOSRoundTrip(t *testing.T) {
	dir := t.TempDir()
	var f OS
	if err := f.MkdirAll(filepath.Join(dir, "db")); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "db", "wal.log")
	h, err := f.OpenFile(path, os.O_RDWR|os.O_CREATE)
	if err != nil {
		t.Fatal(err)
	}
	writeAll(t, h, []byte("payload"))
	if err := h.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := h.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := f.ReadFile(path)
	if err != nil || string(got) != "payload" {
		t.Fatalf("%q %v", got, err)
	}
	names, err := f.ReadDir(filepath.Join(dir, "db"))
	if err != nil || len(names) != 1 || names[0] != "wal.log" {
		t.Fatalf("%v %v", names, err)
	}
	tmp, tmpPath, err := f.CreateTemp(filepath.Join(dir, "db"), "x.tmp-*")
	if err != nil {
		t.Fatal(err)
	}
	tmp.Close()
	if err := f.Rename(tmpPath, filepath.Join(dir, "db", "x")); err != nil {
		t.Fatal(err)
	}
	if err := f.SyncDir(filepath.Join(dir, "db")); err != nil {
		t.Fatal(err)
	}
	if err := f.Remove(filepath.Join(dir, "db", "x")); err != nil {
		t.Fatal(err)
	}
}
