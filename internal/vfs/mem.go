package vfs

import (
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Mem is a deterministic in-memory filesystem that models what a real disk
// guarantees across a crash, so recovery code can be tested against the
// adversarial-but-legal outcomes a power cut produces:
//
//   - every file has a live view (what the page cache serves the writing
//     process) and a synced view (what is guaranteed to be on the platter:
//     the content as of the file's last successful Sync);
//   - the namespace (name -> file bindings) likewise has a live view and a
//     durable view: creates, renames, and removes become durable only when
//     the containing directory is synced — with one concession to how
//     journaling filesystems actually behave: a file's Sync also makes its
//     current name binding durable (fsync of a newly created file persists
//     the file, not just anonymous bytes);
//   - Crash() discards everything volatile: every file's content reverts
//     to its synced view and the namespace reverts to its durable view, so
//     an un-dir-synced rename is torn back and unsynced appended bytes are
//     gone.
//
// All methods are safe for concurrent use.
type Mem struct {
	mu      sync.Mutex
	live    map[string]*memFile
	durable map[string]*memFile
	dirs    map[string]bool
	tmpSeq  int
}

type memFile struct {
	data   []byte
	synced []byte
}

// NewMem returns an empty in-memory filesystem.
func NewMem() *Mem {
	return &Mem{
		live:    make(map[string]*memFile),
		durable: make(map[string]*memFile),
		dirs:    make(map[string]bool),
	}
}

// Crash simulates a power cut: every file's content reverts to its last
// synced view and the namespace reverts to its durable view. Handles open
// before the crash keep writing into orphaned files; callers are expected
// to close (or abandon) the pre-crash engine before reopening.
func (m *Mem) Crash() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.live = make(map[string]*memFile, len(m.durable))
	for name, f := range m.durable {
		f.data = append([]byte(nil), f.synced...)
		m.live[name] = f
	}
}

func notExist(op, path string) error {
	return &fs.PathError{Op: op, Path: path, Err: fs.ErrNotExist}
}

// MkdirAll implements FS. Directory creation is treated as immediately
// durable (metadata journaling): the stack never depends on losing one.
func (m *Mem) MkdirAll(path string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	for p := filepath.Clean(path); p != "." && p != string(filepath.Separator); p = filepath.Dir(p) {
		m.dirs[p] = true
	}
	return nil
}

// OpenFile implements FS.
func (m *Mem) OpenFile(path string, flag int) (File, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	f, ok := m.live[path]
	if !ok {
		if flag&os.O_CREATE == 0 {
			return nil, notExist("open", path)
		}
		f = &memFile{}
		m.live[path] = f
	}
	return &memHandle{m: m, f: f, name: path}, nil
}

// ReadFile implements FS.
func (m *Mem) ReadFile(path string) ([]byte, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	f, ok := m.live[path]
	if !ok {
		return nil, notExist("read", path)
	}
	return append([]byte(nil), f.data...), nil
}

// ReadDir implements FS.
func (m *Mem) ReadDir(dir string) ([]string, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	dir = filepath.Clean(dir)
	var names []string
	for name := range m.live {
		if filepath.Dir(name) == dir {
			names = append(names, filepath.Base(name))
		}
	}
	sort.Strings(names)
	return names, nil
}

// Stat implements FS.
func (m *Mem) Stat(path string) (int64, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	f, ok := m.live[path]
	if !ok {
		return 0, notExist("stat", path)
	}
	return int64(len(f.data)), nil
}

// Rename implements FS. The new binding is live immediately but durable
// only after SyncDir — until then a crash tears the rename back.
func (m *Mem) Rename(oldPath, newPath string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	f, ok := m.live[oldPath]
	if !ok {
		return notExist("rename", oldPath)
	}
	delete(m.live, oldPath)
	m.live[newPath] = f
	return nil
}

// Remove implements FS. Like Rename, the unlink is durable only after
// SyncDir; a crash before then resurrects the name with synced content.
func (m *Mem) Remove(path string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.live[path]; !ok {
		return notExist("remove", path)
	}
	delete(m.live, path)
	return nil
}

// CreateTemp implements FS with deterministic names, so fault-sweep runs
// replay the exact same operation trace.
func (m *Mem) CreateTemp(dir, pattern string) (File, string, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.tmpSeq++
	name := strings.ReplaceAll(pattern, "*", fmt.Sprintf("%06d", m.tmpSeq))
	path := filepath.Join(dir, name)
	if _, ok := m.live[path]; ok {
		return nil, "", fmt.Errorf("vfs: temp file %s already exists", path)
	}
	f := &memFile{}
	m.live[path] = f
	return &memHandle{m: m, f: f, name: path}, path, nil
}

// SyncDir implements FS: every live binding directly inside dir becomes
// the durable binding (and durably-removed names stay gone).
func (m *Mem) SyncDir(dir string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	dir = filepath.Clean(dir)
	for name := range m.durable {
		if filepath.Dir(name) == dir {
			if _, ok := m.live[name]; !ok {
				delete(m.durable, name)
			}
		}
	}
	for name, f := range m.live {
		if filepath.Dir(name) == dir {
			m.durable[name] = f
		}
	}
	return nil
}

// memHandle is one open handle: a private offset over a shared memFile.
type memHandle struct {
	m      *Mem
	f      *memFile
	name   string
	offset int64
	closed bool
}

func (h *memHandle) Write(p []byte) (int, error) {
	h.m.mu.Lock()
	defer h.m.mu.Unlock()
	if h.closed {
		return 0, fs.ErrClosed
	}
	end := h.offset + int64(len(p))
	if grow := end - int64(len(h.f.data)); grow > 0 {
		h.f.data = append(h.f.data, make([]byte, grow)...)
	}
	copy(h.f.data[h.offset:end], p)
	h.offset = end
	return len(p), nil
}

func (h *memHandle) ReadAt(p []byte, off int64) (int, error) {
	h.m.mu.Lock()
	defer h.m.mu.Unlock()
	if h.closed {
		return 0, fs.ErrClosed
	}
	if off >= int64(len(h.f.data)) {
		return 0, io.EOF
	}
	n := copy(p, h.f.data[off:])
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

func (h *memHandle) Seek(offset int64, whence int) (int64, error) {
	h.m.mu.Lock()
	defer h.m.mu.Unlock()
	if h.closed {
		return 0, fs.ErrClosed
	}
	switch whence {
	case io.SeekStart:
		h.offset = offset
	case io.SeekCurrent:
		h.offset += offset
	case io.SeekEnd:
		h.offset = int64(len(h.f.data)) + offset
	default:
		return 0, fmt.Errorf("vfs: bad whence %d", whence)
	}
	if h.offset < 0 {
		return 0, fmt.Errorf("vfs: negative offset")
	}
	return h.offset, nil
}

func (h *memHandle) Truncate(size int64) error {
	h.m.mu.Lock()
	defer h.m.mu.Unlock()
	if h.closed {
		return fs.ErrClosed
	}
	switch {
	case size < int64(len(h.f.data)):
		h.f.data = h.f.data[:size]
	case size > int64(len(h.f.data)):
		h.f.data = append(h.f.data, make([]byte, size-int64(len(h.f.data)))...)
	}
	return nil
}

// Sync makes the file's current content durable, and — journaling-FS
// style — its current name binding with it.
func (h *memHandle) Sync() error {
	h.m.mu.Lock()
	defer h.m.mu.Unlock()
	if h.closed {
		return fs.ErrClosed
	}
	h.f.synced = append(h.f.synced[:0], h.f.data...)
	for name, f := range h.m.live {
		if f == h.f {
			h.m.durable[name] = f
		}
	}
	return nil
}

func (h *memHandle) Close() error {
	h.m.mu.Lock()
	defer h.m.mu.Unlock()
	if h.closed {
		return fs.ErrClosed
	}
	h.closed = true
	return nil
}
