// Package vfs abstracts the filesystem operations the durability stack
// performs, so the same write-ahead-log and checkpoint code can run against
// the real disk (OS), a deterministic in-memory disk with crash simulation
// (Mem), or a fault injector layered over either (Faulty).
//
// The interface is deliberately small: it contains exactly the operations
// internal/wal issues — nothing speculative — which keeps every
// implementation honest about covering the whole durability surface. Every
// method that can touch the disk is a single injectable "site" for the
// fault-sweep harness (internal/harness.FaultSweep), which enumerates the
// sites a reference workload executes and re-runs the workload with a
// crash or fault injected at each one.
package vfs

import "io"

// FS is the filesystem surface the durability stack runs on.
//
// Path semantics follow the os package: paths are slash-joined by the
// caller, missing files report errors satisfying os.IsNotExist, and Rename
// over an existing destination replaces it atomically.
type FS interface {
	// MkdirAll creates a directory (and parents) if missing.
	MkdirAll(path string) error
	// OpenFile opens path for reading and writing. Flags are the os
	// package's: the stack uses os.O_RDWR|os.O_CREATE for the log.
	OpenFile(path string, flag int) (File, error)
	// ReadFile returns the file's current contents (the live view — bytes
	// written but not yet synced are visible, exactly as the page cache
	// would serve them to the writing process).
	ReadFile(path string) ([]byte, error)
	// ReadDir returns the names (not full paths) of the entries in dir,
	// sorted.
	ReadDir(dir string) ([]string, error)
	// Stat returns the file's current size.
	Stat(path string) (int64, error)
	// Rename atomically replaces newPath with oldPath's file.
	Rename(oldPath, newPath string) error
	// Remove deletes a file.
	Remove(path string) error
	// CreateTemp creates a new file in dir whose name derives from pattern
	// (a trailing '*' is replaced to make it unique) and returns the open
	// handle plus the full path.
	CreateTemp(dir, pattern string) (File, string, error)
	// SyncDir fsyncs a directory, making renames, creates, and removes
	// inside it durable.
	SyncDir(dir string) error
}

// File is one open file. Writes land at the handle's current offset
// (advanced by Write and Seek); ReadAt is offset-independent.
type File interface {
	io.Writer
	io.ReaderAt
	// Seek repositions the write offset (os.File semantics).
	Seek(offset int64, whence int) (int64, error)
	// Truncate cuts the file to size without moving the offset.
	Truncate(size int64) error
	// Sync flushes written bytes to durable storage.
	Sync() error
	// Close releases the handle. It does NOT imply Sync.
	Close() error
}
