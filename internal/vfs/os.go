package vfs

import "os"

// OS is the pass-through FS over the real filesystem — the default for
// every durable database.
type OS struct{}

// MkdirAll implements FS.
func (OS) MkdirAll(path string) error { return os.MkdirAll(path, 0o755) }

// OpenFile implements FS.
func (OS) OpenFile(path string, flag int) (File, error) {
	f, err := os.OpenFile(path, flag, 0o644)
	if err != nil {
		return nil, err
	}
	return f, nil
}

// ReadFile implements FS.
func (OS) ReadFile(path string) ([]byte, error) { return os.ReadFile(path) }

// ReadDir implements FS.
func (OS) ReadDir(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, len(ents))
	for i, ent := range ents {
		names[i] = ent.Name()
	}
	return names, nil
}

// Stat implements FS.
func (OS) Stat(path string) (int64, error) {
	fi, err := os.Stat(path)
	if err != nil {
		return 0, err
	}
	return fi.Size(), nil
}

// Rename implements FS.
func (OS) Rename(oldPath, newPath string) error { return os.Rename(oldPath, newPath) }

// Remove implements FS.
func (OS) Remove(path string) error { return os.Remove(path) }

// CreateTemp implements FS.
func (OS) CreateTemp(dir, pattern string) (File, string, error) {
	f, err := os.CreateTemp(dir, pattern)
	if err != nil {
		return nil, "", err
	}
	return f, f.Name(), nil
}

// SyncDir implements FS.
func (OS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}
