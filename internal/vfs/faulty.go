package vfs

import (
	"errors"
	"fmt"
	"sync"
)

// Injected fault sentinels. Callers distinguish them with errors.Is; the
// wrapped messages carry the op index, kind, and path for diagnostics.
var (
	// ErrInjected is a scripted I/O failure (the op did not happen, or —
	// for a short write — happened partially).
	ErrInjected = errors.New("vfs: injected fault")
	// ErrCrashed means the simulated process died: the failing op and
	// every op after it return it unconditionally.
	ErrCrashed = errors.New("vfs: crashed (injected)")
	// ErrNoSpace is the injected out-of-disk condition: writes past the
	// byte budget fail after writing what fits, like a real ENOSPC.
	ErrNoSpace = errors.New("vfs: no space left on device (injected)")
)

// Op is one recorded filesystem operation: the injectable site the
// fault-sweep enumerates.
type Op struct {
	Kind string // mkdir|open|create|read|readdir|stat|rename|remove|syncdir|write|sync|truncate|close|readat
	Path string
}

// Faulty wraps another FS and injects deterministic, scriptable faults.
// Every disk-touching operation (FS methods and file Write/ReadAt/Sync/
// Truncate/Close) increments a global op counter; the scripted fault fires
// when the counter hits the configured index:
//
//   - FailAt(k): the k-th op fails once with ErrInjected; later ops run
//     normally (a transient error).
//   - StickyAt(k): the k-th op fails and every later op with the same
//     (kind, path) keeps failing — a persistent per-site error, e.g. a
//     file whose fsync never succeeds again.
//   - CrashAt(k): the k-th op and every op after it fail with ErrCrashed,
//     simulating the process dying mid-operation. Pair with Mem.Crash()
//     and a reopen to test recovery.
//   - ShortWrite(n): when the failing op is a write, n bytes reach the
//     inner FS before the error — a torn write.
//   - SetWriteBudget(b): independent of the op counter, cumulative write
//     bytes are capped at b; the write that crosses the budget stores the
//     prefix that fits and returns ErrNoSpace, as do all writes after it.
//
// With Record(), every op is appended to a trace instead — run the
// workload once fault-free to enumerate the sites, then once per site with
// a fault scripted at it.
type Faulty struct {
	inner FS

	mu     sync.Mutex
	n      int64
	record bool
	trace  []Op

	failAt     int64
	sticky     bool
	crash      bool
	shortWrite int

	crashed    bool
	stickyOn   bool
	stickyKind string
	stickyPath string

	budget    int64
	budgetSet bool
}

// NewFaulty wraps inner with no faults scripted.
func NewFaulty(inner FS) *Faulty { return &Faulty{inner: inner} }

// Record makes the wrapper trace every op (and inject nothing).
func (f *Faulty) Record() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.record = true
}

// Trace returns the ops recorded so far.
func (f *Faulty) Trace() []Op {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]Op(nil), f.trace...)
}

// OpCount returns the number of ops executed (or recorded) so far.
func (f *Faulty) OpCount() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.n
}

// FailAt scripts a one-shot ErrInjected at the k-th op (1-based).
func (f *Faulty) FailAt(k int64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.failAt, f.sticky, f.crash = k, false, false
}

// StickyAt scripts ErrInjected at the k-th op, persisting for every later
// op on the same (kind, path).
func (f *Faulty) StickyAt(k int64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.failAt, f.sticky, f.crash = k, true, false
}

// CrashAt scripts a process death at the k-th op: it and every later op
// fail with ErrCrashed.
func (f *Faulty) CrashAt(k int64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.failAt, f.sticky, f.crash = k, false, true
}

// ShortWrite makes the scripted failing op — when it is a write — store n
// bytes before erroring.
func (f *Faulty) ShortWrite(n int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.shortWrite = n
}

// SetWriteBudget caps cumulative written bytes at b; the crossing write
// stores the prefix that fits and fails with ErrNoSpace, as does every
// write after it.
func (f *Faulty) SetWriteBudget(b int64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.budget, f.budgetSet = b, true
}

// gate counts one op and returns the scripted error for it, if any, plus
// the number of bytes a failing write should still store (short write).
func (f *Faulty) gate(kind, path string) (error, int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.n++
	if f.record {
		f.trace = append(f.trace, Op{Kind: kind, Path: path})
		return nil, 0
	}
	if f.crashed {
		return fmt.Errorf("%w: op %d (%s %s)", ErrCrashed, f.n, kind, path), 0
	}
	if f.stickyOn && kind == f.stickyKind && path == f.stickyPath {
		return fmt.Errorf("%w: op %d (%s %s, sticky)", ErrInjected, f.n, kind, path), 0
	}
	if f.failAt != 0 && f.n == f.failAt {
		if f.crash {
			f.crashed = true
			return fmt.Errorf("%w: op %d (%s %s)", ErrCrashed, f.n, kind, path), 0
		}
		if f.sticky {
			f.stickyOn, f.stickyKind, f.stickyPath = true, kind, path
		}
		return fmt.Errorf("%w: op %d (%s %s)", ErrInjected, f.n, kind, path), f.shortWrite
	}
	return nil, 0
}

// consumeBudget reserves up to want write bytes, reporting how many fit.
func (f *Faulty) consumeBudget(want int) (int, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.record || !f.budgetSet {
		return want, true
	}
	if int64(want) <= f.budget {
		f.budget -= int64(want)
		return want, true
	}
	n := int(f.budget)
	f.budget = 0
	return n, false
}

// MkdirAll implements FS.
func (f *Faulty) MkdirAll(path string) error {
	if err, _ := f.gate("mkdir", path); err != nil {
		return err
	}
	return f.inner.MkdirAll(path)
}

// OpenFile implements FS.
func (f *Faulty) OpenFile(path string, flag int) (File, error) {
	if err, _ := f.gate("open", path); err != nil {
		return nil, err
	}
	h, err := f.inner.OpenFile(path, flag)
	if err != nil {
		return nil, err
	}
	return &faultyFile{f: f, inner: h, path: path}, nil
}

// ReadFile implements FS.
func (f *Faulty) ReadFile(path string) ([]byte, error) {
	if err, _ := f.gate("read", path); err != nil {
		return nil, err
	}
	return f.inner.ReadFile(path)
}

// ReadDir implements FS.
func (f *Faulty) ReadDir(dir string) ([]string, error) {
	if err, _ := f.gate("readdir", dir); err != nil {
		return nil, err
	}
	return f.inner.ReadDir(dir)
}

// Stat implements FS.
func (f *Faulty) Stat(path string) (int64, error) {
	if err, _ := f.gate("stat", path); err != nil {
		return 0, err
	}
	return f.inner.Stat(path)
}

// Rename implements FS.
func (f *Faulty) Rename(oldPath, newPath string) error {
	if err, _ := f.gate("rename", newPath); err != nil {
		return err
	}
	return f.inner.Rename(oldPath, newPath)
}

// Remove implements FS.
func (f *Faulty) Remove(path string) error {
	if err, _ := f.gate("remove", path); err != nil {
		return err
	}
	return f.inner.Remove(path)
}

// CreateTemp implements FS.
func (f *Faulty) CreateTemp(dir, pattern string) (File, string, error) {
	if err, _ := f.gate("create", dir+"/"+pattern); err != nil {
		return nil, "", err
	}
	h, name, err := f.inner.CreateTemp(dir, pattern)
	if err != nil {
		return nil, "", err
	}
	return &faultyFile{f: f, inner: h, path: name}, name, nil
}

// SyncDir implements FS.
func (f *Faulty) SyncDir(dir string) error {
	if err, _ := f.gate("syncdir", dir); err != nil {
		return err
	}
	return f.inner.SyncDir(dir)
}

// faultyFile threads file ops through the shared op counter.
type faultyFile struct {
	f     *Faulty
	inner File
	path  string
}

func (h *faultyFile) Write(p []byte) (int, error) {
	err, short := h.f.gate("write", h.path)
	if err != nil {
		n := 0
		if short > 0 {
			if short > len(p) {
				short = len(p)
			}
			n, _ = h.inner.Write(p[:short])
		}
		return n, err
	}
	fit, ok := h.f.consumeBudget(len(p))
	if !ok {
		var n int
		if fit > 0 {
			n, _ = h.inner.Write(p[:fit])
		}
		return n, fmt.Errorf("%w: %s", ErrNoSpace, h.path)
	}
	return h.inner.Write(p)
}

func (h *faultyFile) ReadAt(p []byte, off int64) (int, error) {
	if err, _ := h.f.gate("readat", h.path); err != nil {
		return 0, err
	}
	return h.inner.ReadAt(p, off)
}

// Seek only moves the handle's offset — no disk touch, no fault site.
func (h *faultyFile) Seek(offset int64, whence int) (int64, error) {
	return h.inner.Seek(offset, whence)
}

func (h *faultyFile) Truncate(size int64) error {
	if err, _ := h.f.gate("truncate", h.path); err != nil {
		return err
	}
	return h.inner.Truncate(size)
}

func (h *faultyFile) Sync() error {
	if err, _ := h.f.gate("sync", h.path); err != nil {
		return err
	}
	return h.inner.Sync()
}

func (h *faultyFile) Close() error {
	if err, _ := h.f.gate("close", h.path); err != nil {
		return err
	}
	return h.inner.Close()
}
