// Package govbench measures the cost of query governance through the
// public aplus API: the steady-state overhead of running every query with
// an armed governor and an admission gate versus the ungoverned path, and
// the latency from canceling an in-flight query to its return. It lives
// outside internal/harness (like the fault sweep) because it drives the
// public aplus package, which internal/harness cannot import — the root
// package's own benchmarks import harness.
package govbench

import (
	"context"
	"fmt"
	"io"
	"runtime"
	"sort"
	"time"

	aplus "github.com/aplusdb/aplus"
	"github.com/aplusdb/aplus/internal/harness"
)

const (
	triangleQ = "MATCH a1-[e1]->a2-[e2]->a3, a3-[e3]->a1"
	star3Q    = "MATCH a1-[e1]->a2, a1-[e2]->a3, a1-[e3]->a4"
)

// overheadBar is the acceptance bar for governed-vs-baseline runtime
// overhead on the triangle ablation query: the per-morsel and per-1024-
// tuple governor ticks plus the admission gate must stay within 2%.
const overheadBar = 0.02

// Governed runs the governance-overhead experiment and the
// cancellation-latency experiment, printing a summary and returning rows.
// Overhead rows are timing-noisy and deliberately excluded from "-exp all"
// (and so from stored-baseline gating), like mixed and merge.
func Governed(o harness.Options) []harness.Row {
	w := io.Writer(io.Discard)
	if o.Out != nil {
		w = o.Out
	}
	rows := overhead(w, o)
	rows = append(rows, stealOverhead(w, o)...)
	return append(rows, cancelLatency(w, o)...)
}

// overhead compares the triangle ablation query on the BerkStan financial
// graph under (a) the plain ungoverned path (nil governor, no gate),
// (b) a cancelable context plus an admission gate — the full governed
// prologue every production query pays — and (c) the same governed run
// with per-operator tracing armed (EXPLAIN ANALYZE). Both (a) and (b)
// run with tracing disarmed, so the 2% bar also guards the disarmed
// trace check on the execution hot loop; the armed-tracing row is
// advisory (tracing is a diagnostic the caller opts into per query).
func overhead(w io.Writer, o harness.Options) []harness.Row {
	fmt.Fprintf(w, "\n=== Governance overhead: triangle on BerkStan (scale %.2f) ===\n", scaleOf(o))
	db := benchDB(o)
	db.MaxConcurrentQueries = runtime.GOMAXPROCS(0)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	// Warm both paths (index build, planner caches) before timing.
	want, err := db.Count(triangleQ)
	if err != nil {
		panic(err)
	}
	if _, err := db.CountCtx(ctx, triangleQ); err != nil {
		panic(err)
	}
	if t, err := db.ExplainAnalyze(triangleQ); err != nil || t.Count != want {
		panic(fmt.Sprintf("traced warm-up: err=%v", err))
	}

	// Interleave the three paths rep by rep so clock drift, thermal ramps,
	// and background scheduling hit all distributions alike.
	const reps = 21
	baseLat := make([]time.Duration, reps)
	govLat := make([]time.Duration, reps)
	traceLat := make([]time.Duration, reps)
	for i := 0; i < reps; i++ {
		start := time.Now()
		if n, err := db.Count(triangleQ); err != nil || n != want {
			panic(fmt.Sprintf("baseline run: n=%d err=%v", n, err))
		}
		baseLat[i] = time.Since(start)
		start = time.Now()
		if n, err := db.CountCtx(ctx, triangleQ); err != nil || n != want {
			panic(fmt.Sprintf("governed run: n=%d err=%v", n, err))
		}
		govLat[i] = time.Since(start)
		start = time.Now()
		if t, err := db.ExplainAnalyze(triangleQ); err != nil || t.Count != want {
			panic(fmt.Sprintf("traced run: err=%v", err))
		}
		traceLat[i] = time.Since(start)
	}
	// Compare best-case runs: the work is deterministic, so the minimum is
	// the measurement least polluted by scheduler and GC noise.
	base, gov, traced := minOf(baseLat), minOf(govLat), minOf(traceLat)
	pct := gov.Seconds()/base.Seconds() - 1
	verdict := "PASS"
	if pct > overheadBar {
		verdict = fmt.Sprintf("WARN (bar %.0f%%)", overheadBar*100)
	}
	fmt.Fprintf(w, "baseline %12v   governed %12v   overhead %+6.2f%%  %s\n",
		base, gov, pct*100, verdict)
	fmt.Fprintf(w, "traced   %12v   vs governed %+6.2f%%  (armed per-operator tracing; advisory)\n",
		traced, (traced.Seconds()/gov.Seconds()-1)*100)
	return []harness.Row{
		{Table: "governed", Dataset: "Brk", Config: "baseline", Query: "tri", Seconds: base.Seconds(), Count: want},
		{Table: "governed", Dataset: "Brk", Config: "governed", Query: "tri", Seconds: gov.Seconds(), Count: want},
		{Table: "governed", Dataset: "Brk", Config: "traced", Query: "tri", Seconds: traced.Seconds(), Count: want},
	}
}

// stealOverhead measures the governed prologue plus the per-morsel governor
// ticks on the work-stealing path: a super-hub 2-hop count at 8 workers
// whose oversized first-EXTEND list is re-partitioned onto the steal queue
// (asserted via the trace's stolen counter before timing). The timing rows
// are advisory like the other overhead rows — on an oversubscribed box wall
// time reflects scheduling — but every run, governed or not, must return
// the bit-identical count, which is asserted on each rep.
func stealOverhead(w io.Writer, o harness.Options) []harness.Row {
	const hub2Q = "MATCH a1-[e1]->a2-[e2]->a3"
	fmt.Fprintf(w, "\n=== Governance overhead on the steal path: super-hub 2-hop, 8 workers ===\n")
	db := aplus.New()
	const nv, hubDeg = 64, 20000
	for i := 0; i < nv; i++ {
		if _, err := db.AddVertex("V", nil); err != nil {
			panic(err)
		}
	}
	for i := 0; i < nv; i++ {
		for _, d := range []int{1, 7} {
			if _, err := db.AddEdge(aplus.VertexID(i), aplus.VertexID((i+d)%nv), "E", nil); err != nil {
				panic(err)
			}
		}
	}
	for k := 0; k < hubDeg; k++ {
		if _, err := db.AddEdge(0, aplus.VertexID(k*11%nv), "E", nil); err != nil {
			panic(err)
		}
	}
	db.Parallelism = 8
	// Small morsels: the 64-vertex root scan must yield more morsels than
	// workers, leaving the hub's list as the only imbalance to steal.
	db.MorselSize = 8
	db.MaxConcurrentQueries = runtime.GOMAXPROCS(0)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	want, wantM, err := db.CountProfiled(hub2Q) // warm + reference metrics
	if err != nil {
		panic(err)
	}
	tr, err := db.ExplainAnalyze(hub2Q)
	if err != nil {
		panic(err)
	}
	if tr.Stolen == 0 {
		panic("steal-overhead shape did not engage the steal queue")
	}
	if n, m, err := db.CountProfiledCtx(ctx, hub2Q); err != nil || n != want || m.ICost != wantM.ICost {
		panic(fmt.Sprintf("governed steal run diverged: n=%d want %d err=%v", n, want, err))
	}

	const reps = 21
	baseLat := make([]time.Duration, reps)
	govLat := make([]time.Duration, reps)
	for i := 0; i < reps; i++ {
		start := time.Now()
		if n, err := db.Count(hub2Q); err != nil || n != want {
			panic(fmt.Sprintf("baseline steal run: n=%d err=%v", n, err))
		}
		baseLat[i] = time.Since(start)
		start = time.Now()
		if n, err := db.CountCtx(ctx, hub2Q); err != nil || n != want {
			panic(fmt.Sprintf("governed steal run: n=%d err=%v", n, err))
		}
		govLat[i] = time.Since(start)
	}
	base, gov := minOf(baseLat), minOf(govLat)
	pct := gov.Seconds()/base.Seconds() - 1
	verdict := "PASS"
	if pct > overheadBar {
		verdict = fmt.Sprintf("WARN (bar %.0f%%; advisory)", overheadBar*100)
	}
	fmt.Fprintf(w, "baseline %12v   governed %12v   overhead %+6.2f%%  %s  (stolen sub-morsels: %d)\n",
		base, gov, pct*100, verdict, tr.Stolen)
	return []harness.Row{
		{Table: "governed", Dataset: "hub", Config: "steal-baseline", Query: "hub2", Seconds: base.Seconds(), Count: want},
		{Table: "governed", Dataset: "hub", Config: "steal-governed", Query: "hub2", Seconds: gov.Seconds(), Count: want},
	}
}

// cancelLatency measures, on a hub-dominated star3 shape whose enumeration
// would run far longer than the experiment, the time from firing a cancel
// to QueryCtx returning — the bound the governor's per-morsel and
// per-CheckEvery-tuple ticks are meant to enforce.
func cancelLatency(w io.Writer, o harness.Options) []harness.Row {
	const fan = 200 // star3 from the hub enumerates fan^3 = 8M rows
	fmt.Fprintf(w, "\n=== Cancellation latency: star3 hub fan-out (%d spokes) ===\n", fan)
	db := aplus.New()
	hub, err := db.AddVertex("H", nil)
	if err != nil {
		panic(err)
	}
	for i := 0; i < fan; i++ {
		s, err := db.AddVertex("S", nil)
		if err != nil {
			panic(err)
		}
		if _, err := db.AddEdge(hub, s, "E", nil); err != nil {
			panic(err)
		}
	}
	if _, err := db.Count(star3Q); err != nil { // build indexes
		panic(err)
	}

	const iters = 100
	lat := make([]time.Duration, 0, iters)
	for i := 0; i < iters; i++ {
		ctx, cancel := context.WithCancel(context.Background())
		fired := make(chan time.Time, 1)
		go func() {
			time.Sleep(time.Millisecond)
			fired <- time.Now()
			cancel()
		}()
		err := db.QueryCtx(ctx, star3Q, func(aplus.Row) bool { return true })
		ret := time.Now()
		if err == nil {
			panic("hub star3 completed before cancel; shape too small")
		}
		lat = append(lat, ret.Sub(<-fired))
		cancel()
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	p50, p99 := lat[len(lat)/2], lat[len(lat)*99/100]
	fmt.Fprintf(w, "cancel->return over %d runs: p50 %10v  p99 %10v\n", iters, p50, p99)
	return []harness.Row{
		{Table: "governed", Dataset: "hub", Config: "cancel", Query: "p50", Seconds: p50.Seconds()},
		{Table: "governed", Dataset: "hub", Config: "cancel", Query: "p99", Seconds: p99.Seconds()},
	}
}

// benchDB generates the financial BerkStan graph the ablation experiments
// use, at the harness scale.
func benchDB(o harness.Options) *aplus.DB {
	db, err := aplus.Generate(aplus.DatasetConfig{
		Preset: "berkstan", Scale: scaleOf(o), Seed: 11, Financial: true,
	})
	if err != nil {
		panic(err)
	}
	return db
}

func scaleOf(o harness.Options) float64 {
	if o.Scale <= 0 {
		return 1.0
	}
	return o.Scale
}

func minOf(ds []time.Duration) time.Duration {
	m := ds[0]
	for _, d := range ds[1:] {
		if d < m {
			m = d
		}
	}
	return m
}
