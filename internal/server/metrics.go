package server

// The serving layer's observability endpoint: an optional HTTP listener
// (aplusd -metrics) exporting the cluster's stats as Prometheus text
// exposition, plus the Go runtime's expvar and pprof handlers. The endpoint
// is pull-only and read-only — it takes cluster snapshots via Stats(), never
// touching the query path.

import (
	"expvar"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"sync"

	"github.com/aplusdb/aplus"
	"github.com/aplusdb/aplus/internal/shard"
)

// MetricsServer serves /metrics (Prometheus text), /debug/vars (expvar),
// and /debug/pprof/ for one cluster.
type MetricsServer struct {
	c   *shard.Cluster
	ln  net.Listener
	srv *http.Server
}

// expvarOnce publishes the cluster-stats expvar exactly once per process
// (expvar.Publish panics on duplicate names); the variable reads through
// metricsCluster, so tests that start several metrics servers see the most
// recent one's stats.
var (
	expvarOnce     sync.Once
	metricsMu      sync.Mutex
	metricsCluster *shard.Cluster
)

func setMetricsCluster(c *shard.Cluster) {
	metricsMu.Lock()
	metricsCluster = c
	metricsMu.Unlock()
	expvarOnce.Do(func() {
		expvar.Publish("aplus_cluster", expvar.Func(func() any {
			metricsMu.Lock()
			c := metricsCluster
			metricsMu.Unlock()
			if c == nil {
				return nil
			}
			return c.Stats()
		}))
	})
}

// StartMetrics binds addr and serves the observability endpoint in the
// background until Close.
func StartMetrics(c *shard.Cluster, addr string) (*MetricsServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	setMetricsCluster(c)
	m := &MetricsServer{c: c, ln: ln}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", m.serveMetrics)
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	m.srv = &http.Server{Handler: mux}
	go m.srv.Serve(ln)
	return m, nil
}

// Addr reports the bound address.
func (m *MetricsServer) Addr() string { return m.ln.Addr().String() }

// Close stops the listener and in-flight handlers.
func (m *MetricsServer) Close() error { return m.srv.Close() }

// serveMetrics renders the cluster's stats in Prometheus text exposition
// format: per-shard series labeled shard="N" plus cluster-aggregated series
// labeled shard="cluster".
func (m *MetricsServer) serveMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	st := m.c.Stats()
	writeProm(w, st)
}

// histSeries maps the Stats latency histograms to metric names.
var histSeries = []struct {
	name string
	get  func(*aplus.Stats) aplus.LatencyStats
}{
	{"aplus_query_latency_seconds", func(s *aplus.Stats) aplus.LatencyStats { return s.QueryLatency }},
	{"aplus_admission_wait_seconds", func(s *aplus.Stats) aplus.LatencyStats { return s.AdmissionWait }},
	{"aplus_wal_fsync_seconds", func(s *aplus.Stats) aplus.LatencyStats { return s.WALFsync }},
	{"aplus_fold_seconds", func(s *aplus.Stats) aplus.LatencyStats { return s.FoldDuration }},
}

// gaugeSeries maps the Stats counters and gauges to metric names.
var gaugeSeries = []struct {
	name string
	get  func(*aplus.Stats) int64
}{
	{"aplus_vertices", func(s *aplus.Stats) int64 { return int64(s.NumVertices) }},
	{"aplus_edges", func(s *aplus.Stats) int64 { return int64(s.NumEdges) }},
	{"aplus_pending_writes", func(s *aplus.Stats) int64 { return int64(s.PendingWrites) }},
	{"aplus_wal_bytes", func(s *aplus.Stats) int64 { return s.WALBytes }},
	{"aplus_queries_in_flight", func(s *aplus.Stats) int64 { return s.QueriesInFlight }},
	{"aplus_queries_rejected_total", func(s *aplus.Stats) int64 { return s.QueriesRejected }},
	{"aplus_queries_canceled_total", func(s *aplus.Stats) int64 { return s.QueriesCanceled }},
	{"aplus_queries_timed_out_total", func(s *aplus.Stats) int64 { return s.QueriesTimedOut }},
	{"aplus_slow_queries_total", func(s *aplus.Stats) int64 { return s.SlowQueries }},
	{"aplus_queries_panicked_total", func(s *aplus.Stats) int64 { return s.QueriesPanicked }},
	{"aplus_plan_cache_hits_total", func(s *aplus.Stats) int64 { return s.PlanCacheHits }},
	{"aplus_plan_cache_misses_total", func(s *aplus.Stats) int64 { return s.PlanCacheMisses }},
	{"aplus_folds_total", func(s *aplus.Stats) int64 { return s.FoldsTotal }},
	{"aplus_degraded", func(s *aplus.Stats) int64 { return boolGauge(s.Degraded) }},
}

func boolGauge(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// writeProm renders one cluster stats snapshot: every series once per shard
// and once aggregated under shard="cluster".
func writeProm(w io.Writer, st shard.Stats) {
	label := func(i int) string {
		if i < 0 {
			return `shard="cluster"`
		}
		return fmt.Sprintf("shard=%s", strconv.Quote(strconv.Itoa(i)))
	}
	each := func(f func(label string, s *aplus.Stats)) {
		for i := range st.Shards {
			f(label(i), &st.Shards[i])
		}
		f(label(-1), &st.Aggregate)
	}
	for _, h := range histSeries {
		fmt.Fprintf(w, "# TYPE %s histogram\n", h.name)
		each(func(label string, s *aplus.Stats) {
			h.get(s).WriteProm(w, h.name, label)
		})
	}
	for _, g := range gaugeSeries {
		fmt.Fprintf(w, "# TYPE %s gauge\n", g.name)
		each(func(label string, s *aplus.Stats) {
			fmt.Fprintf(w, "%s{%s} %d\n", g.name, label, g.get(s))
		})
	}
	fmt.Fprintf(w, "# TYPE aplus_diverged gauge\naplus_diverged %d\n", boolGauge(st.Diverged))
}
