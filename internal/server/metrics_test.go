package server

import (
	"context"
	"io"
	"net/http"
	"strings"
	"testing"

	"github.com/aplusdb/aplus"
	"github.com/aplusdb/aplus/internal/shard"
)

// TestServedAnalyzeVerb round-trips EXPLAIN ANALYZE over the wire and
// checks the cluster-merged trace against the profile verb's metrics —
// the same bit-identical contract the embedded API pins.
func TestServedAnalyzeVerb(t *testing.T) {
	_, _, cl := startServer(t, shard.Options{Shards: 2}, Options{})
	seed(t, cl, 30)

	want, wantM, err := cl.CountProfiled(context.Background(), triangleQ)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := cl.Analyze(context.Background(), triangleQ, aplus.QueryLimits{})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Count != want {
		t.Errorf("trace count = %d, want %d", tr.Count, want)
	}
	if tr.Metrics.ICost != wantM.ICost || tr.Metrics.PredEvals != wantM.PredEvals {
		t.Errorf("trace metrics = %+v, want %+v", tr.Metrics, wantM)
	}
	var sumICost int64
	for _, sp := range tr.Spans {
		sumICost += sp.ICost
	}
	if sumICost != wantM.ICost {
		t.Errorf("span i-cost sum = %d, want %d", sumICost, wantM.ICost)
	}
	if !strings.Contains(tr.Render(), "EXPLAIN ANALYZE") {
		t.Error("trace does not render")
	}
}

// TestMetricsEndpoint serves a cluster's /metrics over HTTP and asserts the
// Prometheus exposition carries per-shard and cluster-aggregated series for
// the latency histograms and key gauges.
func TestMetricsEndpoint(t *testing.T) {
	c, _, cl := startServer(t, shard.Options{Shards: 2}, Options{})
	seed(t, cl, 30)
	if _, err := cl.Count(context.Background(), pathQ); err != nil {
		t.Fatal(err)
	}

	m, err := StartMetrics(c, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	resp, err := http.Get("http://" + m.Addr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: %s", resp.Status)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	for _, want := range []string{
		"# TYPE aplus_query_latency_seconds histogram",
		`aplus_query_latency_seconds_count{shard="0"}`,
		`aplus_query_latency_seconds_count{shard="1"}`,
		`aplus_query_latency_seconds_count{shard="cluster"}`,
		`aplus_query_latency_seconds_bucket{shard="cluster",le="+Inf"}`,
		"# TYPE aplus_wal_fsync_seconds histogram",
		"# TYPE aplus_vertices gauge",
		`aplus_vertices{shard="cluster"} 30`,
		`aplus_plan_cache_hits_total{shard="cluster"}`,
		`aplus_degraded{shard="cluster"} 0`,
		"aplus_diverged 0",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q\n%s", want, text)
		}
	}

	// The aggregate histogram count must equal the sum of the shards'.
	st := c.Stats()
	var perShard int64
	for _, s := range st.Shards {
		perShard += s.QueryLatency.Count
	}
	if perShard == 0 || st.Aggregate.QueryLatency.Count != perShard {
		t.Errorf("aggregate latency count %d, shard sum %d",
			st.Aggregate.QueryLatency.Count, perShard)
	}

	// expvar and pprof ride on the same listener.
	for _, path := range []string{"/debug/vars", "/debug/pprof/"} {
		r, err := http.Get("http://" + m.Addr() + path)
		if err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
		if r.StatusCode != http.StatusOK {
			t.Errorf("GET %s: %s", path, r.Status)
		}
	}
}
