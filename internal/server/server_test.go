package server

// End-to-end tests over a real TCP loopback: a shard.Cluster behind a
// Server, driven by the wire client. The bar is behavioral parity with the
// embedded API — identical counts and metrics, the same errors.Is-matchable
// sentinels for governance failures, mid-stream cancellation that drains
// every shard, and typed property round-trips.

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/aplusdb/aplus"
	"github.com/aplusdb/aplus/internal/client"
	"github.com/aplusdb/aplus/internal/proto"
	"github.com/aplusdb/aplus/internal/shard"
)

const (
	pathQ     = "MATCH a-[e]->b, b-[f]->c"
	triangleQ = "MATCH a1-[e1]->a2-[e2]->a3, a3-[e3]->a1"
)

type writer interface {
	AddVertex(label string, props aplus.Props) (aplus.VertexID, error)
	AddEdge(src, dst aplus.VertexID, label string, props aplus.Props) (aplus.EdgeID, error)
}

// seed writes the same deterministic graph through any write path.
func seed(t *testing.T, w writer, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		if _, err := w.AddVertex("P", nil); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		for _, d := range []int{1, 2, 5} {
			if _, err := w.AddEdge(aplus.VertexID(i), aplus.VertexID((i+d)%n), "K", nil); err != nil {
				t.Fatal(err)
			}
		}
	}
}

// startServer brings up a cluster + server + connected client on loopback.
func startServer(t *testing.T, copt shard.Options, sopt Options) (*shard.Cluster, *Server, *client.Client) {
	t.Helper()
	c, err := shard.New(copt)
	if err != nil {
		t.Fatal(err)
	}
	sopt.Addr = "127.0.0.1:0"
	srv := New(c, sopt)
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	cl, err := client.Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		cl.Close()
		srv.Close()
		c.Close()
	})
	return c, srv, cl
}

func TestServedParityWithEmbedded(t *testing.T) {
	_, _, cl := startServer(t, shard.Options{Shards: 2}, Options{})
	if cl.NumShards() != 2 {
		t.Fatalf("handshake shards = %d, want 2", cl.NumShards())
	}
	// Seed through the wire so the remote write path is what's under test.
	seed(t, cl, 30)
	ref := aplus.New()
	seed(t, refWriter{ref}, 30)

	for _, q := range []string{pathQ, triangleQ} {
		want, wantM, err := ref.CountProfiledCtx(context.Background(), q)
		if err != nil {
			t.Fatal(err)
		}
		got, err := cl.Count(context.Background(), q)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("%s: served count %d, embedded %d", q, got, want)
		}
		gotN, gotM, err := cl.CountProfiled(context.Background(), q)
		if err != nil {
			t.Fatal(err)
		}
		if gotN != want || gotM.ICost != wantM.ICost || gotM.PredEvals != wantM.PredEvals {
			t.Fatalf("%s: served profile (%d, %+v), embedded (%d, %+v)", q, gotN, gotM, want, wantM)
		}
	}

	// Row parity: same multiset of bindings, shard order notwithstanding.
	var remote []string
	res, err := cl.Query(context.Background(), pathQ, 0, func(r proto.Row) bool {
		remote = append(remote, rowKeyWire(r))
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	var local []string
	if err := ref.Query(pathQ, func(r aplus.Row) bool {
		local = append(local, rowKeyLocal(r))
		return true
	}); err != nil {
		t.Fatal(err)
	}
	sort.Strings(remote)
	sort.Strings(local)
	if len(remote) != len(local) || int64(len(remote)) != res.Rows {
		t.Fatalf("row counts: remote %d (res %d), local %d", len(remote), res.Rows, len(local))
	}
	for i := range remote {
		if remote[i] != local[i] {
			t.Fatalf("row %d: remote %s, local %s", i, remote[i], local[i])
		}
	}
}

// TestServedAggregateParity asserts the aggregate verb round-trips: every
// function served over the wire matches the embedded DB bit for bit, and a
// bad function name maps to the bad-request error.
func TestServedAggregateParity(t *testing.T) {
	_, _, cl := startServer(t, shard.Options{Shards: 2}, Options{})
	seedProps := func(w writer) {
		for i := 0; i < 30; i++ {
			if _, err := w.AddVertex("P", aplus.Props{"x": i*3 - 10}); err != nil {
				t.Fatal(err)
			}
		}
		for i := 0; i < 30; i++ {
			for _, d := range []int{1, 2, 5} {
				if _, err := w.AddEdge(aplus.VertexID(i), aplus.VertexID((i+d)%30), "K", nil); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	seedProps(cl)
	ref := aplus.New()
	seedProps(refWriter{ref})

	for _, fn := range []aplus.AggFunc{aplus.AggCount, aplus.AggSum, aplus.AggMin, aplus.AggMax} {
		want, wantM, err := ref.AggregateLimited(context.Background(), pathQ, fn, "c", "x", aplus.QueryLimits{})
		if err != nil {
			t.Fatal(err)
		}
		got, m, err := cl.Aggregate(context.Background(), pathQ, fn, "c", "x", aplus.QueryLimits{})
		if err != nil {
			t.Fatalf("%s: %v", fn, err)
		}
		if got != want {
			t.Errorf("%s: served %+v, embedded %+v", fn, got, want)
		}
		if m.ICost != wantM.ICost || m.PredEvals != wantM.PredEvals {
			t.Errorf("%s: served metrics (%d,%d), embedded (%d,%d)", fn, m.ICost, m.PredEvals, wantM.ICost, wantM.PredEvals)
		}
	}
	if _, _, err := cl.Aggregate(context.Background(), pathQ, "median", "c", "x", aplus.QueryLimits{}); err == nil {
		t.Error("unknown aggregate function did not error over the wire")
	}
}

// refWriter adapts *aplus.DB to the writer interface (method sets match,
// but seed takes the interface).
type refWriter struct{ db *aplus.DB }

func (w refWriter) AddVertex(l string, p aplus.Props) (aplus.VertexID, error) {
	return w.db.AddVertex(l, p)
}

func (w refWriter) AddEdge(s, d aplus.VertexID, l string, p aplus.Props) (aplus.EdgeID, error) {
	return w.db.AddEdge(s, d, l, p)
}

func rowKeyWire(r proto.Row) string {
	return bindKey(func(emit func(string, uint64)) {
		for k, v := range r.V {
			emit("v:"+k, uint64(v))
		}
		for k, e := range r.E {
			emit("e:"+k, uint64(e))
		}
	})
}

func rowKeyLocal(r aplus.Row) string {
	return bindKey(func(emit func(string, uint64)) {
		for k, v := range r.Vertices {
			emit("v:"+k, uint64(v))
		}
		for k, e := range r.Edges {
			emit("e:"+k, uint64(e))
		}
	})
}

func bindKey(visit func(emit func(string, uint64))) string {
	var parts []string
	visit(func(k string, id uint64) { parts = append(parts, fmt.Sprintf("%s=%d", k, id)) })
	sort.Strings(parts)
	return strings.Join(parts, ",")
}

func TestServedTypedPropsRoundTrip(t *testing.T) {
	c, _, cl := startServer(t, shard.Options{Shards: 2}, Options{})
	v, err := cl.AddVertex("P", aplus.Props{"name": "ada", "age": int64(36), "score": 2.5, "ok": true})
	if err != nil {
		t.Fatal(err)
	}
	// JSON must not have coerced the int to float64 on its way through.
	if got := c.VertexProp(v, "age"); got != int64(36) {
		t.Fatalf("age round-tripped as %T(%v), want int64(36)", got, got)
	}
	if got := c.VertexProp(v, "score"); got != 2.5 {
		t.Fatalf("score = %v", got)
	}
	if got := c.VertexProp(v, "name"); got != "ada" {
		t.Fatalf("name = %v", got)
	}
	if got := c.VertexProp(v, "ok"); got != true {
		t.Fatalf("ok = %v", got)
	}
}

func TestServedCancelMidStream(t *testing.T) {
	c, _, cl := startServer(t, shard.Options{Shards: 2}, Options{})
	// A dense hub produces a long row stream to cancel into.
	hub, err := cl.AddVertex("H", nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		v, err := cl.AddVertex("P", nil)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := cl.AddEdge(hub, v, "K", nil); err != nil {
			t.Fatal(err)
		}
		if _, err := cl.AddEdge(v, hub, "K", nil); err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var rows int
	_, err = cl.Query(ctx, pathQ, 0, func(proto.Row) bool {
		rows++
		if rows == 10 {
			cancel()
			// Give the cancel a moment to land server-side; the ~40k-row
			// stream is far larger than the socket buffers, so the query
			// cannot have completed already.
			time.Sleep(50 * time.Millisecond)
		}
		return true
	})
	if !errors.Is(err, aplus.ErrQueryCanceled) {
		t.Fatalf("err = %v, want ErrQueryCanceled", err)
	}
	// Every shard must drain: no query may stay in flight after the wire
	// round-trip reports cancellation.
	deadline := time.Now().Add(5 * time.Second)
	for {
		inFlight := int64(0)
		for i := 0; i < c.NumShards(); i++ {
			inFlight += c.DB(i).Stats().QueriesInFlight
		}
		if inFlight == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("%d queries still in flight after cancel", inFlight)
		}
		time.Sleep(5 * time.Millisecond)
	}
	// The connection survives cancellation: the next request works.
	if _, err := cl.Count(context.Background(), pathQ); err != nil {
		t.Fatalf("count after cancel: %v", err)
	}
}

func TestServedEarlyStopAndRowCap(t *testing.T) {
	_, _, cl := startServer(t, shard.Options{Shards: 2}, Options{})
	seed(t, cl, 30)

	// fn returning false stops the stream without error.
	var rows int64
	res, err := cl.Query(context.Background(), pathQ, 0, func(proto.Row) bool {
		rows++
		return rows < 3
	})
	if err != nil {
		t.Fatalf("early stop: %v", err)
	}
	if res.Rows != 3 {
		t.Fatalf("early stop rows = %d, want 3", res.Rows)
	}

	// A server-side cap truncates cleanly and says so.
	res, err = cl.Query(context.Background(), pathQ, 5, func(proto.Row) bool { return true })
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows != 5 || !res.Truncated {
		t.Fatalf("cap: rows=%d truncated=%v, want 5/true", res.Rows, res.Truncated)
	}

	// The stream stays in sync afterwards.
	if _, err := cl.Count(context.Background(), pathQ); err != nil {
		t.Fatalf("count after capped query: %v", err)
	}
}

func TestServedGovernanceSentinels(t *testing.T) {
	_, _, cl := startServer(t, shard.Options{Shards: 2}, Options{})
	seed(t, cl, 30)

	if _, err := cl.CountLimited(context.Background(), triangleQ, aplus.QueryLimits{MaxICost: 1}); !errors.Is(err, aplus.ErrBudgetExceeded) {
		t.Fatalf("budget err = %v, want ErrBudgetExceeded", err)
	}
	if _, err := cl.QueryLimited(context.Background(), pathQ, aplus.QueryLimits{MaxRows: 2}, 0, func(proto.Row) bool { return true }); !errors.Is(err, aplus.ErrBudgetExceeded) {
		t.Fatalf("row budget err = %v, want ErrBudgetExceeded", err)
	}
	if _, err := cl.Count(context.Background(), "MATCH not valid cypher ("); err == nil {
		t.Fatal("parse error did not propagate")
	}
	// The connection survives every failure mode above.
	if _, err := cl.Count(context.Background(), pathQ); err != nil {
		t.Fatalf("count after errors: %v", err)
	}
}

func TestServedBackpressure(t *testing.T) {
	_, _, cl := startServer(t,
		shard.Options{Shards: 2, MergeThreshold: 1 << 20},
		Options{MaxPendingWrites: 6},
	)
	// Edge writes only flow through the fold-pending delta once a first
	// snapshot exists (the load phase builds the frozen graph directly),
	// so seed vertices and publish a snapshot with one read first.
	for i := 0; i < 4; i++ {
		if _, err := cl.AddVertex("P", nil); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := cl.Count(context.Background(), "MATCH a-[e]->b"); err != nil {
		t.Fatal(err)
	}
	// Each logical edge lands on both replicas, so aggregate pending
	// climbs by ~2 per AddEdge; past the threshold writes must bounce.
	var saw error
	for i := 0; i < 20; i++ {
		if _, err := cl.AddEdge(0, 1, "K", nil); err != nil {
			saw = err
			break
		}
	}
	if !errors.Is(saw, proto.ErrBackpressure) {
		t.Fatalf("err = %v, want ErrBackpressure", saw)
	}
	// Folding the backlog reopens the gate.
	if err := cl.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.AddEdge(0, 1, "K", nil); err != nil {
		t.Fatalf("write after flush: %v", err)
	}
	// Reads were never gated.
	if _, err := cl.Count(context.Background(), "MATCH a-[e]->b"); err != nil {
		t.Fatal(err)
	}
}

func TestServedStatsHealthExplainExec(t *testing.T) {
	_, _, cl := startServer(t, shard.Options{Shards: 2}, Options{})
	seed(t, cl, 20)
	if _, err := cl.Count(context.Background(), pathQ); err != nil {
		t.Fatal(err)
	}
	st, err := cl.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Shards != 2 || len(st.PerShard) != 2 {
		t.Fatalf("stats shards: %d/%d", st.Shards, len(st.PerShard))
	}
	if st.Aggregate.NumVertices != 20 {
		t.Fatalf("aggregate vertices = %d", st.Aggregate.NumVertices)
	}
	if st.PerShard[0].NumVertices != 20 || st.PerShard[1].NumVertices != 20 {
		t.Fatalf("replica vertices: %d/%d", st.PerShard[0].NumVertices, st.PerShard[1].NumVertices)
	}
	h, err := cl.Health()
	if err != nil {
		t.Fatal(err)
	}
	if !h.OK || h.Degraded || h.Diverged {
		t.Fatalf("health: %+v", h)
	}
	if err := cl.Exec("CREATE 1-HOP VIEW V MATCH vs-[eadj]->vd INDEX AS FW PARTITION BY eadj.label"); err != nil {
		t.Fatal(err)
	}
	plan, err := cl.Explain(pathQ)
	if err != nil {
		t.Fatal(err)
	}
	if plan == "" {
		t.Fatal("empty plan")
	}
	// DDL applied on every replica.
	st, err = cl.Stats()
	if err != nil {
		t.Fatal(err)
	}
	for i, per := range st.PerShard {
		if per.SecondaryIndexBytes == 0 {
			t.Fatalf("shard %d has no secondary index after broadcast DDL", i)
		}
	}
}

func TestServedConcurrentClients(t *testing.T) {
	_, srv, cl := startServer(t, shard.Options{Shards: 2}, Options{})
	seed(t, cl, 30)
	want, err := cl.Count(context.Background(), pathQ)
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	errs := make(chan error, 64)
	// Several goroutines share one client (serialized internally)...
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				if got, err := cl.Count(context.Background(), pathQ); err != nil || got != want {
					errs <- fmt.Errorf("shared client: %d, %v", got, err)
					return
				}
			}
		}()
	}
	// ...while separate connections run queries and writes concurrently.
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			own, err := client.Dial(srv.Addr())
			if err != nil {
				errs <- err
				return
			}
			defer own.Close()
			for i := 0; i < 5; i++ {
				if _, err := own.Query(context.Background(), pathQ, 10, func(proto.Row) bool { return true }); err != nil {
					errs <- fmt.Errorf("client %d query: %w", g, err)
					return
				}
				if _, err := own.AddVertex("W", nil); err != nil {
					errs <- fmt.Errorf("client %d write: %w", g, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestServedDurableShutdownAndReopen(t *testing.T) {
	dir := t.TempDir()
	c, err := shard.New(shard.Options{Shards: 2, Dir: dir, NoFsync: true})
	if err != nil {
		t.Fatal(err)
	}
	srv := New(c, Options{Addr: "127.0.0.1:0"})
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	cl, err := client.Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	seed(t, cl, 20)
	want, err := cl.Count(context.Background(), pathQ)
	if err != nil {
		t.Fatal(err)
	}
	cl.Close()
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen the same directory and serve again: recovery must preserve
	// the graph on every replica.
	c2, err := shard.New(shard.Options{Shards: 2, Dir: dir, NoFsync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	srv2 := New(c2, Options{Addr: "127.0.0.1:0"})
	if err := srv2.Start(); err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()
	cl2, err := client.Dial(srv2.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cl2.Close()
	got, err := cl2.Count(context.Background(), pathQ)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("count after reopen: %d, want %d", got, want)
	}
	// And the reopened cluster still accepts writes through the server.
	if _, err := cl2.AddVertex("P", nil); err != nil {
		t.Fatal(err)
	}
}

func TestServedProtocolRobustness(t *testing.T) {
	_, srv, _ := startServer(t, shard.Options{Shards: 1}, Options{})
	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// A stray cancel gets no response; the next verb still answers —
	// proving the stream cannot desync.
	if _, err := conn.Write([]byte("cancel\nbogus {}\nhealth\n")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4096)
	var got string
	deadline := time.Now().Add(5 * time.Second)
	for strings.Count(got, "\n") < 2 {
		conn.SetReadDeadline(deadline)
		n, err := conn.Read(buf)
		if err != nil {
			t.Fatalf("read: %v (got %q)", err, got)
		}
		got += string(buf[:n])
	}
	lines := strings.Split(strings.TrimSpace(got), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d response lines: %q", len(lines), got)
	}
	if !strings.HasPrefix(lines[0], "err ") || !strings.Contains(lines[0], proto.CodeBadRequest) {
		t.Fatalf("bogus verb answered %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "ok ") {
		t.Fatalf("health after bogus verb answered %q", lines[1])
	}
}
